# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_collision[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_bib[1]_include.cmake")
include("/root/repo/build/tests/test_queueing[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_weighted[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_dist[1]_include.cmake")
include("/root/repo/build/tests/test_gossip[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
