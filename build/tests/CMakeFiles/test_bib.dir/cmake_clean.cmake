file(REMOVE_RECURSE
  "CMakeFiles/test_bib.dir/bib_test.cpp.o"
  "CMakeFiles/test_bib.dir/bib_test.cpp.o.d"
  "test_bib"
  "test_bib.pdb"
  "test_bib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
