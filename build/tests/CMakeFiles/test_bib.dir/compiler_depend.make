# Empty compiler generated dependencies file for test_bib.
# This may be replaced when dependencies are built.
