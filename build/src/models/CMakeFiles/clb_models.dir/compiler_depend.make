# Empty compiler generated dependencies file for clb_models.
# This may be replaced when dependencies are built.
