file(REMOVE_RECURSE
  "libclb_models.a"
)
