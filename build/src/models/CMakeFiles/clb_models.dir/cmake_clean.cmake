file(REMOVE_RECURSE
  "CMakeFiles/clb_models.dir/adversarial.cpp.o"
  "CMakeFiles/clb_models.dir/adversarial.cpp.o.d"
  "CMakeFiles/clb_models.dir/burst.cpp.o"
  "CMakeFiles/clb_models.dir/burst.cpp.o.d"
  "CMakeFiles/clb_models.dir/geometric.cpp.o"
  "CMakeFiles/clb_models.dir/geometric.cpp.o.d"
  "CMakeFiles/clb_models.dir/multi.cpp.o"
  "CMakeFiles/clb_models.dir/multi.cpp.o.d"
  "CMakeFiles/clb_models.dir/onoff.cpp.o"
  "CMakeFiles/clb_models.dir/onoff.cpp.o.d"
  "CMakeFiles/clb_models.dir/poisson_batch.cpp.o"
  "CMakeFiles/clb_models.dir/poisson_batch.cpp.o.d"
  "CMakeFiles/clb_models.dir/single.cpp.o"
  "CMakeFiles/clb_models.dir/single.cpp.o.d"
  "CMakeFiles/clb_models.dir/weighted.cpp.o"
  "CMakeFiles/clb_models.dir/weighted.cpp.o.d"
  "libclb_models.a"
  "libclb_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clb_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
