
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/adversarial.cpp" "src/models/CMakeFiles/clb_models.dir/adversarial.cpp.o" "gcc" "src/models/CMakeFiles/clb_models.dir/adversarial.cpp.o.d"
  "/root/repo/src/models/burst.cpp" "src/models/CMakeFiles/clb_models.dir/burst.cpp.o" "gcc" "src/models/CMakeFiles/clb_models.dir/burst.cpp.o.d"
  "/root/repo/src/models/geometric.cpp" "src/models/CMakeFiles/clb_models.dir/geometric.cpp.o" "gcc" "src/models/CMakeFiles/clb_models.dir/geometric.cpp.o.d"
  "/root/repo/src/models/multi.cpp" "src/models/CMakeFiles/clb_models.dir/multi.cpp.o" "gcc" "src/models/CMakeFiles/clb_models.dir/multi.cpp.o.d"
  "/root/repo/src/models/onoff.cpp" "src/models/CMakeFiles/clb_models.dir/onoff.cpp.o" "gcc" "src/models/CMakeFiles/clb_models.dir/onoff.cpp.o.d"
  "/root/repo/src/models/poisson_batch.cpp" "src/models/CMakeFiles/clb_models.dir/poisson_batch.cpp.o" "gcc" "src/models/CMakeFiles/clb_models.dir/poisson_batch.cpp.o.d"
  "/root/repo/src/models/single.cpp" "src/models/CMakeFiles/clb_models.dir/single.cpp.o" "gcc" "src/models/CMakeFiles/clb_models.dir/single.cpp.o.d"
  "/root/repo/src/models/weighted.cpp" "src/models/CMakeFiles/clb_models.dir/weighted.cpp.o" "gcc" "src/models/CMakeFiles/clb_models.dir/weighted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/clb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/clb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/clb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
