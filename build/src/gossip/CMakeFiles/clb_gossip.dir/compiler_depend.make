# Empty compiler generated dependencies file for clb_gossip.
# This may be replaced when dependencies are built.
