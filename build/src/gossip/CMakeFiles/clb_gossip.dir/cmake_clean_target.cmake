file(REMOVE_RECURSE
  "libclb_gossip.a"
)
