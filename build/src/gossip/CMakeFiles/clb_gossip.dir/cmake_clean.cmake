file(REMOVE_RECURSE
  "CMakeFiles/clb_gossip.dir/push_sum.cpp.o"
  "CMakeFiles/clb_gossip.dir/push_sum.cpp.o.d"
  "libclb_gossip.a"
  "libclb_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clb_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
