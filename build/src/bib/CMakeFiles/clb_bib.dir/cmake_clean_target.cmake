file(REMOVE_RECURSE
  "libclb_bib.a"
)
