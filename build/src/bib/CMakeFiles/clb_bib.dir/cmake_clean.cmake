file(REMOVE_RECURSE
  "CMakeFiles/clb_bib.dir/bib.cpp.o"
  "CMakeFiles/clb_bib.dir/bib.cpp.o.d"
  "libclb_bib.a"
  "libclb_bib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clb_bib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
