# Empty dependencies file for clb_bib.
# This may be replaced when dependencies are built.
