
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bib/bib.cpp" "src/bib/CMakeFiles/clb_bib.dir/bib.cpp.o" "gcc" "src/bib/CMakeFiles/clb_bib.dir/bib.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/clb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
