file(REMOVE_RECURSE
  "CMakeFiles/clb_sim.dir/engine.cpp.o"
  "CMakeFiles/clb_sim.dir/engine.cpp.o.d"
  "libclb_sim.a"
  "libclb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
