file(REMOVE_RECURSE
  "libclb_sim.a"
)
