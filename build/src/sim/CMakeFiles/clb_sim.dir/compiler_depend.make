# Empty compiler generated dependencies file for clb_sim.
# This may be replaced when dependencies are built.
