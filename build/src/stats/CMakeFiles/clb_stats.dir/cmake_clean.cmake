file(REMOVE_RECURSE
  "CMakeFiles/clb_stats.dir/histogram.cpp.o"
  "CMakeFiles/clb_stats.dir/histogram.cpp.o.d"
  "libclb_stats.a"
  "libclb_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clb_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
