# Empty compiler generated dependencies file for clb_stats.
# This may be replaced when dependencies are built.
