file(REMOVE_RECURSE
  "libclb_stats.a"
)
