# Empty dependencies file for clb_dist.
# This may be replaced when dependencies are built.
