file(REMOVE_RECURSE
  "libclb_dist.a"
)
