file(REMOVE_RECURSE
  "CMakeFiles/clb_dist.dir/dist_balancer.cpp.o"
  "CMakeFiles/clb_dist.dir/dist_balancer.cpp.o.d"
  "CMakeFiles/clb_dist.dir/network.cpp.o"
  "CMakeFiles/clb_dist.dir/network.cpp.o.d"
  "libclb_dist.a"
  "libclb_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clb_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
