file(REMOVE_RECURSE
  "CMakeFiles/clb_net.dir/topology.cpp.o"
  "CMakeFiles/clb_net.dir/topology.cpp.o.d"
  "libclb_net.a"
  "libclb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
