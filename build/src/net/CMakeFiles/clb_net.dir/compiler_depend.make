# Empty compiler generated dependencies file for clb_net.
# This may be replaced when dependencies are built.
