file(REMOVE_RECURSE
  "libclb_net.a"
)
