file(REMOVE_RECURSE
  "CMakeFiles/clb_queueing.dir/supermarket.cpp.o"
  "CMakeFiles/clb_queueing.dir/supermarket.cpp.o.d"
  "libclb_queueing.a"
  "libclb_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clb_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
