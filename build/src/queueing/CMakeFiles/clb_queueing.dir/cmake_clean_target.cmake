file(REMOVE_RECURSE
  "libclb_queueing.a"
)
