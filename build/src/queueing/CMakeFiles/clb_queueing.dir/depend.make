# Empty dependencies file for clb_queueing.
# This may be replaced when dependencies are built.
