file(REMOVE_RECURSE
  "libclb_util.a"
)
