# Empty compiler generated dependencies file for clb_util.
# This may be replaced when dependencies are built.
