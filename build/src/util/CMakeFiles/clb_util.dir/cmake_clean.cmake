file(REMOVE_RECURSE
  "CMakeFiles/clb_util.dir/cli.cpp.o"
  "CMakeFiles/clb_util.dir/cli.cpp.o.d"
  "CMakeFiles/clb_util.dir/table.cpp.o"
  "CMakeFiles/clb_util.dir/table.cpp.o.d"
  "CMakeFiles/clb_util.dir/thread_pool.cpp.o"
  "CMakeFiles/clb_util.dir/thread_pool.cpp.o.d"
  "libclb_util.a"
  "libclb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
