
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/all_in_air.cpp" "src/baselines/CMakeFiles/clb_baselines.dir/all_in_air.cpp.o" "gcc" "src/baselines/CMakeFiles/clb_baselines.dir/all_in_air.cpp.o.d"
  "/root/repo/src/baselines/lauer.cpp" "src/baselines/CMakeFiles/clb_baselines.dir/lauer.cpp.o" "gcc" "src/baselines/CMakeFiles/clb_baselines.dir/lauer.cpp.o.d"
  "/root/repo/src/baselines/lm.cpp" "src/baselines/CMakeFiles/clb_baselines.dir/lm.cpp.o" "gcc" "src/baselines/CMakeFiles/clb_baselines.dir/lm.cpp.o.d"
  "/root/repo/src/baselines/random_seeking.cpp" "src/baselines/CMakeFiles/clb_baselines.dir/random_seeking.cpp.o" "gcc" "src/baselines/CMakeFiles/clb_baselines.dir/random_seeking.cpp.o.d"
  "/root/repo/src/baselines/rsu.cpp" "src/baselines/CMakeFiles/clb_baselines.dir/rsu.cpp.o" "gcc" "src/baselines/CMakeFiles/clb_baselines.dir/rsu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/clb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gossip/CMakeFiles/clb_gossip.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/clb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/clb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
