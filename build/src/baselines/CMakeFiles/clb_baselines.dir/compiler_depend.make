# Empty compiler generated dependencies file for clb_baselines.
# This may be replaced when dependencies are built.
