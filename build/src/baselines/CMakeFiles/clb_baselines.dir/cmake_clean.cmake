file(REMOVE_RECURSE
  "CMakeFiles/clb_baselines.dir/all_in_air.cpp.o"
  "CMakeFiles/clb_baselines.dir/all_in_air.cpp.o.d"
  "CMakeFiles/clb_baselines.dir/lauer.cpp.o"
  "CMakeFiles/clb_baselines.dir/lauer.cpp.o.d"
  "CMakeFiles/clb_baselines.dir/lm.cpp.o"
  "CMakeFiles/clb_baselines.dir/lm.cpp.o.d"
  "CMakeFiles/clb_baselines.dir/random_seeking.cpp.o"
  "CMakeFiles/clb_baselines.dir/random_seeking.cpp.o.d"
  "CMakeFiles/clb_baselines.dir/rsu.cpp.o"
  "CMakeFiles/clb_baselines.dir/rsu.cpp.o.d"
  "libclb_baselines.a"
  "libclb_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clb_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
