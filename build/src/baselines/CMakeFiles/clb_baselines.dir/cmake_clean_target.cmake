file(REMOVE_RECURSE
  "libclb_baselines.a"
)
