file(REMOVE_RECURSE
  "CMakeFiles/clb_analysis.dir/markov.cpp.o"
  "CMakeFiles/clb_analysis.dir/markov.cpp.o.d"
  "libclb_analysis.a"
  "libclb_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clb_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
