file(REMOVE_RECURSE
  "libclb_analysis.a"
)
