# Empty dependencies file for clb_analysis.
# This may be replaced when dependencies are built.
