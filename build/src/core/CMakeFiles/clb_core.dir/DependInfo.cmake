
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/params.cpp" "src/core/CMakeFiles/clb_core.dir/params.cpp.o" "gcc" "src/core/CMakeFiles/clb_core.dir/params.cpp.o.d"
  "/root/repo/src/core/threshold_balancer.cpp" "src/core/CMakeFiles/clb_core.dir/threshold_balancer.cpp.o" "gcc" "src/core/CMakeFiles/clb_core.dir/threshold_balancer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/clb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/collision/CMakeFiles/clb_collision.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/clb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/clb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
