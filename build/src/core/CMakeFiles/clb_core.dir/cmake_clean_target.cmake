file(REMOVE_RECURSE
  "libclb_core.a"
)
