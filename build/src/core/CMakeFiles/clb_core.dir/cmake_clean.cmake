file(REMOVE_RECURSE
  "CMakeFiles/clb_core.dir/params.cpp.o"
  "CMakeFiles/clb_core.dir/params.cpp.o.d"
  "CMakeFiles/clb_core.dir/threshold_balancer.cpp.o"
  "CMakeFiles/clb_core.dir/threshold_balancer.cpp.o.d"
  "libclb_core.a"
  "libclb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
