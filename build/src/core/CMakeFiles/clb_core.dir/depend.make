# Empty dependencies file for clb_core.
# This may be replaced when dependencies are built.
