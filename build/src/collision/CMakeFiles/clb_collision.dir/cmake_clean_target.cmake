file(REMOVE_RECURSE
  "libclb_collision.a"
)
