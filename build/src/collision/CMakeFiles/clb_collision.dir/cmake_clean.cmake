file(REMOVE_RECURSE
  "CMakeFiles/clb_collision.dir/collision.cpp.o"
  "CMakeFiles/clb_collision.dir/collision.cpp.o.d"
  "libclb_collision.a"
  "libclb_collision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clb_collision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
