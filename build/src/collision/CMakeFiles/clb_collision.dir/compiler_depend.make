# Empty compiler generated dependencies file for clb_collision.
# This may be replaced when dependencies are built.
