
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/clb_models.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/clb_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/clb_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/clb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/collision/CMakeFiles/clb_collision.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/clb_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/clb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/clb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/gossip/CMakeFiles/clb_gossip.dir/DependInfo.cmake"
  "/root/repo/build/src/bib/CMakeFiles/clb_bib.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/clb_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/clb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/clb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
