# Empty dependencies file for heterogeneous_jobs.
# This may be replaced when dependencies are built.
