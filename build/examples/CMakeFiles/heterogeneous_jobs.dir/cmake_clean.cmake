file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_jobs.dir/heterogeneous_jobs.cpp.o"
  "CMakeFiles/heterogeneous_jobs.dir/heterogeneous_jobs.cpp.o.d"
  "heterogeneous_jobs"
  "heterogeneous_jobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
