file(REMOVE_RECURSE
  "CMakeFiles/collision_playground.dir/collision_playground.cpp.o"
  "CMakeFiles/collision_playground.dir/collision_playground.cpp.o.d"
  "collision_playground"
  "collision_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collision_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
