# Empty compiler generated dependencies file for collision_playground.
# This may be replaced when dependencies are built.
