file(REMOVE_RECURSE
  "CMakeFiles/webserver_farm.dir/webserver_farm.cpp.o"
  "CMakeFiles/webserver_farm.dir/webserver_farm.cpp.o.d"
  "webserver_farm"
  "webserver_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webserver_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
