# Empty dependencies file for webserver_farm.
# This may be replaced when dependencies are built.
