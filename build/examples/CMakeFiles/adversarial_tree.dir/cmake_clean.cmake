file(REMOVE_RECURSE
  "CMakeFiles/adversarial_tree.dir/adversarial_tree.cpp.o"
  "CMakeFiles/adversarial_tree.dir/adversarial_tree.cpp.o.d"
  "adversarial_tree"
  "adversarial_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
