# Empty dependencies file for adversarial_tree.
# This may be replaced when dependencies are built.
