file(REMOVE_RECURSE
  "CMakeFiles/bench_expected_requests.dir/bench_expected_requests.cpp.o"
  "CMakeFiles/bench_expected_requests.dir/bench_expected_requests.cpp.o.d"
  "bench_expected_requests"
  "bench_expected_requests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_expected_requests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
