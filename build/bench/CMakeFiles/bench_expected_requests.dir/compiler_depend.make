# Empty compiler generated dependencies file for bench_expected_requests.
# This may be replaced when dependencies are built.
