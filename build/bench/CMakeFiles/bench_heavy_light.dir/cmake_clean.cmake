file(REMOVE_RECURSE
  "CMakeFiles/bench_heavy_light.dir/bench_heavy_light.cpp.o"
  "CMakeFiles/bench_heavy_light.dir/bench_heavy_light.cpp.o.d"
  "bench_heavy_light"
  "bench_heavy_light.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heavy_light.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
