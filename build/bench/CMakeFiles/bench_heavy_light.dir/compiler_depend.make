# Empty compiler generated dependencies file for bench_heavy_light.
# This may be replaced when dependencies are built.
