# Empty dependencies file for bench_partner_search.
# This may be replaced when dependencies are built.
