file(REMOVE_RECURSE
  "CMakeFiles/bench_partner_search.dir/bench_partner_search.cpp.o"
  "CMakeFiles/bench_partner_search.dir/bench_partner_search.cpp.o.d"
  "bench_partner_search"
  "bench_partner_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partner_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
