# Empty dependencies file for bench_waiting_time.
# This may be replaced when dependencies are built.
