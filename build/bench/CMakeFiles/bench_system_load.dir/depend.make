# Empty dependencies file for bench_system_load.
# This may be replaced when dependencies are built.
