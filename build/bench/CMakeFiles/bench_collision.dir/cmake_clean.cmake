file(REMOVE_RECURSE
  "CMakeFiles/bench_collision.dir/bench_collision.cpp.o"
  "CMakeFiles/bench_collision.dir/bench_collision.cpp.o.d"
  "bench_collision"
  "bench_collision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_collision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
