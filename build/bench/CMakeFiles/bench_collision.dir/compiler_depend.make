# Empty compiler generated dependencies file for bench_collision.
# This may be replaced when dependencies are built.
