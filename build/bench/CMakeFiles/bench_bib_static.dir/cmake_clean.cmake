file(REMOVE_RECURSE
  "CMakeFiles/bench_bib_static.dir/bench_bib_static.cpp.o"
  "CMakeFiles/bench_bib_static.dir/bench_bib_static.cpp.o.d"
  "bench_bib_static"
  "bench_bib_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bib_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
