# Empty dependencies file for bench_bib_static.
# This may be replaced when dependencies are built.
