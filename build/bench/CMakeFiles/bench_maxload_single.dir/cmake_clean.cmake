file(REMOVE_RECURSE
  "CMakeFiles/bench_maxload_single.dir/bench_maxload_single.cpp.o"
  "CMakeFiles/bench_maxload_single.dir/bench_maxload_single.cpp.o.d"
  "bench_maxload_single"
  "bench_maxload_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_maxload_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
