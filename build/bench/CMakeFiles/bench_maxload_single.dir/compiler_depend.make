# Empty compiler generated dependencies file for bench_maxload_single.
# This may be replaced when dependencies are built.
