# Empty dependencies file for bench_unbalanced_tail.
# This may be replaced when dependencies are built.
