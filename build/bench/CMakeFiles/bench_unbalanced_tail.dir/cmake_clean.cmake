file(REMOVE_RECURSE
  "CMakeFiles/bench_unbalanced_tail.dir/bench_unbalanced_tail.cpp.o"
  "CMakeFiles/bench_unbalanced_tail.dir/bench_unbalanced_tail.cpp.o.d"
  "bench_unbalanced_tail"
  "bench_unbalanced_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unbalanced_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
