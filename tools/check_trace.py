#!/usr/bin/env python3
"""Validates a run's observability outputs end to end.

Run by ctest (obs_trace_check) against files produced by a real bench
invocation, and usable by hand against any run:

    tools/check_trace.py --chrome t.trace.json --jsonl t.trace.jsonl \
                         --metrics m.json --manifest run.json

Checks, per file:
  * chrome  - parses; has displayTimeUnit + traceEvents; every event carries
              name/ph/pid/tid/ts as Perfetto requires for its type; "X"
              slices have dur >= 1; "i" instants have scope "t"; phase
              slices do not overlap per thread.
  * jsonl   - every line parses to an object with a "kind" and integer
              "step"; steps are non-decreasing; "worker" (when present) is a
              non-negative integer, and is required for the worker-lane
              kinds (barrier_wait, mailbox_drain, worker_step).
  * snapshots - rt telemetry snapshot timeline (bench_rt --telemetry-jsonl):
              every line is an rt_telemetry object with the full counter
              schema; per tag steps are non-decreasing, and per (tag,
              worker) the cumulative counters never go backwards.
  * metrics - parses; counters/gauges/histograms maps with numeric leaves;
              histogram records carry count/mean/p50/p90/p99/p999/max.
  * manifest- parses; schema clb.run.v1; has tool/command/build; every
              listed output file exists on disk (next to the manifest or
              absolute).

Exit status 0 = all good, 1 = any check failed (details on stderr).
"""
from __future__ import annotations

import argparse
import json
import os
import sys

FAILURES: list[str] = []

# Event kinds rendered on per-worker lanes; their worker attribution is
# load-bearing (rt telemetry), so the field is required, not optional.
WORKER_LANE_KINDS = {"barrier_wait", "mailbox_drain", "worker_step"}

# Cumulative per-worker counters in an rt_telemetry snapshot line.
SNAPSHOT_COUNTERS = (
    "steps", "step_ns", "stall_ns", "work_ns", "barrier_waits",
    "enq_self", "enq_remote", "deq", "drains", "generated", "consumed",
    "phases",
)


def fail(msg: str) -> None:
    FAILURES.append(msg)
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)


def load_json(path: str):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
        return None


def check_chrome(path: str) -> None:
    doc = load_json(path)
    if doc is None:
        return
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        fail(f"{path}: displayTimeUnit missing or invalid")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: traceEvents is not a list")
        return
    slices_by_tid: dict[tuple, list[tuple]] = {}
    counts = {"X": 0, "i": 0, "C": 0, "M": 0}
    for i, e in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(e, dict):
            fail(f"{where}: not an object")
            continue
        ph = e.get("ph")
        if ph not in counts:
            fail(f"{where}: unexpected ph {ph!r}")
            continue
        counts[ph] += 1
        if not isinstance(e.get("name"), str) or not e["name"]:
            fail(f"{where}: missing name")
        for k in ("pid", "tid"):
            if not isinstance(e.get(k), int):
                fail(f"{where}: missing integer {k}")
        if ph == "M":
            continue
        if not isinstance(e.get("ts"), (int, float)):
            fail(f"{where}: missing ts")
            continue
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 1:
                fail(f"{where}: X slice needs dur >= 1, got {dur!r}")
            else:
                key = (e.get("pid"), e.get("tid"))
                slices_by_tid.setdefault(key, []).append((e["ts"], dur))
        elif ph == "i" and e.get("s") != "t":
            fail(f"{where}: instant must carry scope s='t'")
        elif ph == "C" and not isinstance(e.get("args"), dict):
            fail(f"{where}: counter event needs args")
    for key, slices in slices_by_tid.items():
        slices.sort()
        for (ts_a, dur_a), (ts_b, _) in zip(slices, slices[1:]):
            if ts_a + dur_a > ts_b:
                fail(f"{path}: overlapping slices on pid/tid {key} "
                     f"at ts={ts_a} (dur={dur_a}) and ts={ts_b}")
                break
    print(f"check_trace: {path}: "
          + ", ".join(f"{v} {k}" for k, v in counts.items()))


def check_jsonl(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"{path}: {e}")
        return
    last_step = -1
    kinds: dict[str, int] = {}
    for i, line in enumerate(lines, 1):
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{i}: {e}")
            return
        if not isinstance(rec, dict) or not isinstance(rec.get("kind"), str):
            fail(f"{path}:{i}: record needs a string 'kind'")
            return
        step = rec.get("step")
        if not isinstance(step, int) or step < 0:
            fail(f"{path}:{i}: record needs a non-negative integer 'step'")
            return
        if step < last_step:
            fail(f"{path}:{i}: steps went backwards ({last_step} -> {step})")
            return
        last_step = step
        worker = rec.get("worker")
        if worker is not None and (not isinstance(worker, int) or worker < 0):
            fail(f"{path}:{i}: 'worker' must be a non-negative integer")
            return
        if rec["kind"] in WORKER_LANE_KINDS and worker is None:
            fail(f"{path}:{i}: worker-lane kind {rec['kind']!r} "
                 f"needs a 'worker' field")
            return
        kinds[rec["kind"]] = kinds.get(rec["kind"], 0) + 1
    print(f"check_trace: {path}: {sum(kinds.values())} records, "
          f"kinds: {dict(sorted(kinds.items()))}")


def check_snapshots(path: str) -> None:
    """rt telemetry snapshot timeline: schema + per-(tag, worker) monotony.

    Timelines may concatenate several runs (distinguished by 'tag'), so the
    global non-decreasing-step rule of check_jsonl does not apply; instead
    steps must be non-decreasing per tag and cumulative counters must never
    go backwards per (tag, worker).
    """
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"{path}: {e}")
        return
    records = 0
    last_step: dict[str, int] = {}
    last_counters: dict[tuple, dict[str, int]] = {}
    workers_seen: dict[str, set] = {}
    for i, line in enumerate(lines, 1):
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{i}: {e}")
            return
        if not isinstance(rec, dict) or rec.get("kind") != "rt_telemetry":
            fail(f"{path}:{i}: snapshot line must have kind 'rt_telemetry'")
            return
        for field in ("step", "worker", "workers", "shard_load",
                      *SNAPSHOT_COUNTERS):
            v = rec.get(field)
            if not isinstance(v, int) or v < 0:
                fail(f"{path}:{i}: field {field!r} must be a non-negative "
                     f"integer, got {v!r}")
                return
        tag = rec.get("tag", "")
        if not isinstance(tag, str):
            fail(f"{path}:{i}: 'tag' must be a string")
            return
        step, worker = rec["step"], rec["worker"]
        if rec["worker"] >= rec["workers"]:
            fail(f"{path}:{i}: worker {worker} out of range "
                 f"(workers={rec['workers']})")
            return
        if step < last_step.get(tag, -1):
            fail(f"{path}:{i}: steps went backwards within tag {tag!r} "
                 f"({last_step[tag]} -> {step})")
            return
        last_step[tag] = step
        key = (tag, worker)
        prev = last_counters.get(key)
        if prev is not None:
            for field in SNAPSHOT_COUNTERS:
                if rec[field] < prev[field]:
                    fail(f"{path}:{i}: cumulative counter {field!r} went "
                         f"backwards for {key} ({prev[field]} -> "
                         f"{rec[field]})")
                    return
        last_counters[key] = {f: rec[f] for f in SNAPSHOT_COUNTERS}
        workers_seen.setdefault(tag, set()).add(worker)
        records += 1
    if records == 0:
        fail(f"{path}: no snapshot records")
        return
    print(f"check_trace: {path}: {records} snapshots, "
          f"{len(workers_seen)} tag(s), "
          f"workers per tag: "
          f"{ {t: len(w) for t, w in sorted(workers_seen.items())} }")


def check_metrics(path: str) -> None:
    doc = load_json(path)
    if doc is None:
        return
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            fail(f"{path}: missing object section '{section}'")
            return
    for name, v in doc["counters"].items():
        if not isinstance(v, int) or v < 0:
            fail(f"{path}: counter {name} not a non-negative integer: {v!r}")
    for name, v in doc["gauges"].items():
        if not isinstance(v, (int, float)) and v is not None:
            fail(f"{path}: gauge {name} not numeric/null: {v!r}")
    required = {"count", "mean", "p50", "p90", "p99", "p999", "max"}
    for name, h in doc["histograms"].items():
        if not isinstance(h, dict) or not required.issubset(h):
            fail(f"{path}: histogram {name} missing {required - set(h)}")
    print(f"check_trace: {path}: {len(doc['counters'])} counters, "
          f"{len(doc['gauges'])} gauges, {len(doc['histograms'])} histograms")


def check_manifest(path: str) -> None:
    doc = load_json(path)
    if doc is None:
        return
    if doc.get("schema") != "clb.run.v1":
        fail(f"{path}: schema is {doc.get('schema')!r}, want 'clb.run.v1'")
    if not isinstance(doc.get("tool"), str) or not doc["tool"]:
        fail(f"{path}: missing tool")
    cmd = doc.get("command")
    if not isinstance(cmd, list) or not all(isinstance(c, str) for c in cmd):
        fail(f"{path}: command must be a list of strings")
    build = doc.get("build")
    if not isinstance(build, dict) or not isinstance(build.get("git_sha"), str):
        fail(f"{path}: missing build provenance")
    base = os.path.dirname(os.path.abspath(path))
    for out in doc.get("outputs", []):
        p = out.get("path", "")
        resolved = p if os.path.isabs(p) else os.path.join(base, p)
        if not os.path.exists(resolved):
            fail(f"{path}: listed output does not exist: {p}")
    print(f"check_trace: {path}: tool={doc.get('tool')} "
          f"outputs={len(doc.get('outputs', []))}")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--chrome", help="Chrome trace_event JSON file")
    ap.add_argument("--jsonl", help="JSONL event trace file")
    ap.add_argument("--snapshots",
                    help="rt telemetry snapshot JSONL (bench_rt "
                         "--telemetry-jsonl)")
    ap.add_argument("--metrics", help="metrics registry JSON file")
    ap.add_argument("--manifest", help="run manifest JSON file")
    args = ap.parse_args()
    if not any(vars(args).values()):
        ap.error("nothing to check; pass at least one file")
    if args.chrome:
        check_chrome(args.chrome)
    if args.jsonl:
        check_jsonl(args.jsonl)
    if args.snapshots:
        check_snapshots(args.snapshots)
    if args.metrics:
        check_metrics(args.metrics)
    if args.manifest:
        check_manifest(args.manifest)
    if FAILURES:
        print(f"check_trace: {len(FAILURES)} failure(s)", file=sys.stderr)
        return 1
    print("check_trace: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
