#!/usr/bin/env python3
"""rt_report: per-worker performance report from rt telemetry.

Consumes the snapshot timeline written by `bench_rt --telemetry
--telemetry-jsonl=...` (one rt_telemetry JSON object per worker per
interval, cumulative counters) and/or a metrics registry export carrying
`<run>.telemetry.*` gauges, and prints the runtime's health report:
per-worker utilization, queue imbalance, and barrier-stall breakdown.

    tools/rt_report.py --snapshots build/rt_telemetry/snapshots.jsonl
    tools/rt_report.py --metrics bench_rt.metrics.json
    tools/rt_report.py --snapshots s.jsonl --metrics m.json

A timeline may concatenate several runs; each run is distinguished by its
'tag' field and reported separately. Within a run the report uses the
*last* snapshot per worker (counters are cumulative), and the interval
count tells how much timeline resolution is behind it.

Exit status: 0 = report printed, 1 = malformed or empty input.
"""
from __future__ import annotations

import argparse
import json
import sys

COUNTER_FIELDS = (
    "steps", "step_ns", "stall_ns", "work_ns", "barrier_waits",
    "enq_self", "enq_remote", "deq", "drains", "generated", "consumed",
    "phases",
)


def fail(msg: str) -> "sys.NoReturn":
    print(f"rt_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def ratio(num: float, den: float) -> float:
    return num / den if den > 0 else 0.0


def load_snapshots(path: str) -> dict:
    """Returns {tag: {"last": {worker: rec}, "intervals": int}}."""
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"{path}: {e}")
    tags: dict = {}
    for i, line in enumerate(lines, 1):
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{i}: {e}")
        if not isinstance(rec, dict) or rec.get("kind") != "rt_telemetry":
            fail(f"{path}:{i}: expected kind 'rt_telemetry'")
        for field in ("step", "worker", "workers", "shard_load",
                      *COUNTER_FIELDS):
            if not isinstance(rec.get(field), int):
                fail(f"{path}:{i}: missing integer field {field!r}")
        tag = rec.get("tag", "")
        entry = tags.setdefault(tag, {"last": {}, "steps_seen": set()})
        entry["last"][rec["worker"]] = rec
        entry["steps_seen"].add(rec["step"])
    if not tags:
        fail(f"{path}: no snapshot records")
    for entry in tags.values():
        entry["intervals"] = len(entry.pop("steps_seen"))
    return tags


def fmt_row(cells: list, widths: list) -> str:
    return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))


def print_table(header: list, rows: list) -> None:
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(header)]
    print(fmt_row(header, widths))
    print(fmt_row(["-" * w for w in widths], widths))
    for r in rows:
        print(fmt_row(r, widths))


def report_tag(tag: str, entry: dict) -> None:
    last = entry["last"]
    workers = sorted(last)
    declared = last[workers[0]]["workers"]
    if len(workers) != declared:
        fail(f"tag {tag!r}: timeline covers {len(workers)} workers but "
             f"declares {declared}")
    title = tag if tag else "(untagged run)"
    print(f"\n== rt report: {title} — {declared} workers, "
          f"{entry['intervals']} snapshot interval(s), "
          f"through step {max(r['step'] for r in last.values())} ==")

    rows = []
    for w in workers:
        r = last[w]
        rows.append([
            w,
            r["steps"],
            f"{100.0 * ratio(r['work_ns'], r['step_ns']):.1f}%",
            f"{100.0 * ratio(r['stall_ns'], r['step_ns']):.1f}%",
            r["consumed"],
            r["shard_load"],
            f"{ratio(r['deq'], r['drains']):.2f}",
            f"{ratio(r['stall_ns'], r['barrier_waits']) / 1e3:.1f}",
        ])
    print_table(["worker", "steps", "util", "stall", "consumed", "load",
                 "drain mean", "wait us/barrier"], rows)

    consumed = [last[w]["consumed"] for w in workers]
    step_ns = sum(last[w]["step_ns"] for w in workers)
    stall_ns = sum(last[w]["stall_ns"] for w in workers)
    utils = [ratio(last[w]["work_ns"], last[w]["step_ns"]) for w in workers]
    mean_consumed = sum(consumed) / len(consumed)
    imbalance = ratio(max(consumed), mean_consumed) if mean_consumed else 1.0
    enq = sum(last[w]["enq_self"] + last[w]["enq_remote"] for w in workers)
    deq = sum(last[w]["deq"] for w in workers)
    remote = sum(last[w]["enq_remote"] for w in workers)
    print(f"  utilization      mean {100.0 * sum(utils) / len(utils):.1f}%  "
          f"min {100.0 * min(utils):.1f}%  max {100.0 * max(utils):.1f}%")
    print(f"  barrier stall    {100.0 * ratio(stall_ns, step_ns):.1f}% of "
          f"worker time "
          f"({sum(last[w]['barrier_waits'] for w in workers)} waits)")
    print(f"  queue imbalance  {imbalance:.3f} "
          f"(max/mean consumed; 1.000 = perfectly even)")
    print(f"  mailbox          {enq} enq / {deq} deq "
          f"({100.0 * ratio(remote, enq):.1f}% remote, "
          f"backlog {enq - deq})")
    # Snapshots land at step boundaries, so a same-step send may still be
    # undrained (enq > deq); draining more than was enqueued is impossible.
    if deq > enq:
        fail(f"tag {tag!r}: mailbox conservation violated "
             f"(enq={enq}, deq={deq})")


def report_metrics(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    gauges = doc.get("gauges", {})
    if not isinstance(gauges, dict):
        fail(f"{path}: no gauges section")
    marker = ".telemetry."
    prefixes = sorted({name[:name.index(marker) + len(marker)]
                       for name in gauges if marker in name})
    if not prefixes:
        fail(f"{path}: no *.telemetry.* gauges (was the bench run with "
             f"--telemetry on a CLB_TELEMETRY=ON build?)")
    print(f"\n== rt report: derived gauges from {path} ==")
    rows = []
    for p in prefixes:
        def g(name: str, default: float = 0.0) -> float:
            v = gauges.get(p + name, default)
            return v if isinstance(v, (int, float)) else default
        rows.append([
            p[:-len(marker)],
            f"{100.0 * g('utilization_mean'):.1f}%",
            f"{100.0 * g('barrier_stall_fraction'):.1f}%",
            f"{g('queue_imbalance'):.3f}",
            f"{g('drain_batch_mean'):.2f}",
            f"{g('barrier_wait_p99_ns') / 1e3:.1f}",
        ])
    print_table(["run", "util mean", "stall", "imbalance", "drain mean",
                 "barrier p99 us"], rows)


def main() -> int:
    ap = argparse.ArgumentParser(
        description="Per-worker performance report from rt telemetry")
    ap.add_argument("--snapshots",
                    help="snapshot JSONL from bench_rt --telemetry-jsonl")
    ap.add_argument("--metrics",
                    help="metrics JSON with <run>.telemetry.* gauges")
    args = ap.parse_args()
    if not args.snapshots and not args.metrics:
        ap.error("pass --snapshots and/or --metrics")
    if args.snapshots:
        for tag, entry in sorted(load_snapshots(args.snapshots).items()):
            report_tag(tag, entry)
    if args.metrics:
        report_metrics(args.metrics)
    print("\nrt_report: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
