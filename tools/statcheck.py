#!/usr/bin/env python3
"""statcheck: machine-checked tolerance bands over bench --metrics-json output.

Each band distils one claim from EXPERIMENTS.md into a numeric tolerance
evaluated against the gauges a bench harness exported:

  EXP-03 (Theorem 1)   balanced worst-case max load <= T at every swept n,
                       and flat in n (max/min ratio across sizes).
  EXP-07 (Lemma 7)     mean collision-game requests per heavy root is a
                       small constant (~1.5 measured), flat in n.
  EXP-13 (Section 1.2) the threshold algorithm beats all-in-air
                       redistribution on messages per task and locality,
                       at bounded max load.
  EXP-22 (extension)   rt::Runtime's latency fabric: mean phase duration
                       grows linearly with the message latency on real
                       worker threads (the EXP-19 dist/ result), at a held
                       match rate and no forced phase ends.
  EXP-24 (extension)   the link model on the same fabric: lossy links pay
                       retransmit RTOs and bandwidth caps pay per-link
                       queueing — both stretch phase durations while the
                       match rate holds; lossless uncapped rows pay neither.
  EXP-25 (extension)   the production workload zoo: on every zoo model the
                       load-oblivious threshold protocol and local search
                       beat the unbalanced control on max load, the
                       stale-information shortest-queue baseline herds onto
                       stale minima (max load blows up past the control),
                       and crashed processors re-home every queued task.
  EXP-27 (extension)   the million-processor scaling grid: the arena and
                       fifo queue layouts of every (n, workers) point agree
                       exactly on all counters (deterministic and
                       worker-count invariant), steal rows actually steal,
                       and the arena layout is not catastrophically slower
                       than the fifo baseline (the real >= 1.05x speedup
                       gate lives in perfbench --exp27).

Usage (ctest runs this against fixture-generated metrics):

  statcheck.py --exp03 exp03.metrics.json --exp07 exp07.metrics.json \\
               --exp13 exp13.metrics.json --exp22 exp22.metrics.json \\
               --exp24 exp24.metrics.json --exp25 exp25.metrics.json \\
               --exp27 exp27.metrics.json

Every band's limit can be perturbed with --override BAND=VALUE; the
statcheck_selftest ctest entry uses an absurd override to prove a violated
band actually fails the build.

Exit status: 0 iff every evaluated band passed and at least one file was
checked.
"""

import argparse
import json
import re
import sys

# Band limits distilled from EXPERIMENTS.md (measured at the reduced ctest
# fixture sizes: EXP-03/07 sweep n=1024,4096 at 1500 steps; EXP-13 runs
# n=2048). Margins are ~2-3x the observed values so seed-to-seed noise
# cannot flake the build, while regressions of the *shape* still trip.
DEFAULT_LIMITS = {
    # balanced_max_worst <= limit * T, per size  (measured 7 vs T=16)
    "exp03.balanced_max_le_T": 1.0,
    # max/min of balanced_max_worst across sizes (measured 1.0)
    "exp03.balanced_flat": 1.6,
    # unbalanced control must exceed balanced max (measured 26-30 vs 7)
    "exp03.unbalanced_above": 1.5,
    # mean requests per heavy root, per size     (measured ~1.52-1.54)
    "exp07.req_per_root_lo": 1.0,
    "exp07.req_per_root_hi": 2.5,
    # max/min across sizes                       (measured ~1.02)
    "exp07.req_per_root_flat": 1.3,
    # threshold protocol messages per task       (measured ~0.095)
    "exp13.threshold_msgs_hi": 0.3,
    # all-in-air pays >= 1 message per task by construction (measured ~1.02)
    "exp13.allinair_msgs_lo": 0.5,
    # threshold locality                         (measured ~0.979)
    "exp13.threshold_locality_lo": 0.9,
    # all-in-air scatters tasks                  (measured ~0.33)
    "exp13.allinair_locality_hi": 0.6,
    # threshold max load stays within T          (measured 7 vs T=16)
    "exp13.threshold_max_load_hi": 16.0,
    # EXP-22 slope: duration(max lat) / duration(min lat) must reach this
    # fraction of the latency ratio itself       (measured 0.94 of ideal)
    "exp22.duration_ratio_lo": 0.5,
    # per-latency normalised duration, steps/lat (measured ~3.0-3.2)
    "exp22.duration_per_latency_lo": 1.5,
    "exp22.duration_per_latency_hi": 8.0,
    # phases doing heavy work per sweep point    (measured 19-26)
    "exp22.phases_min": 8.0,
    # heavy-processor match rate, percent        (measured 100)
    "exp22.match_pct_lo": 60.0,
    # failsafe-forced phase ends                 (measured 0)
    "exp22.forced_hi": 0.0,
    # EXP-24 (fixture: n=128, lat-steps=512, latency 2, jitter 1,
    # loss grid 0,4096,16384 /64k, bandwidth grid 0,1):
    # phases doing heavy work per grid point     (measured 22-25)
    "exp24.phases_min": 8.0,
    # heavy-processor match rate, percent        (measured 100)
    "exp24.match_pct_lo": 60.0,
    # failsafe-forced phase ends                 (measured 0)
    "exp24.forced_hi": 0.0,
    # lossless rows must not retransmit or schedule duplicates (measured 0)
    "exp24.lossless_retransmits_hi": 0.0,
    # every lossy row must actually retransmit   (measured 24-119)
    "exp24.lossy_retransmits_min": 1.0,
    # uncapped rows must not queue behind links  (measured 0)
    "exp24.uncapped_queued_hi": 0.0,
    # every capped row must actually queue       (measured 93-101)
    "exp24.capped_queued_min": 1.0,
    # duration(max loss) / duration(lossless), same cap (measured 2.5-2.9)
    "exp24.loss_duration_ratio_lo": 1.3,
    # duration(capped) / duration(uncapped), same loss  (measured 1.05-1.24)
    "exp24.bw_duration_ratio_lo": 1.0,
    # EXP-25 (fixture: n=256, zoo-steps=192, staleness 8; deterministic, so
    # the measured values are exact constants, not noisy samples):
    # local-search max load / unbalanced max load  (measured 0.01-0.56)
    "exp25.ls_improves_max_load": 0.8,
    # threshold max load / unbalanced max load     (measured 0.12-0.80)
    "exp25.threshold_improves_max_load": 0.95,
    # stale-SQ max load / unbalanced max load: herding onto the stale
    # minimum must blow the max load UP            (measured 3.5-233)
    "exp25.stale_herds_min": 2.0,
    # every balancing policy actually moves tasks  (measured 1340-113261)
    "exp25.balancer_moved_min": 1.0,
    # the unbalanced control moves none            (measured 0)
    "exp25.none_moved_hi": 0.0,
    # threshold protocol messages per task         (measured 0.46-2.94)
    "exp25.threshold_msgs_hi": 6.0,
    # crash pass: both scheduled crash events re-home (measured 2 exactly)
    "exp25.crash_rehomed_events": 2.0,
    # crash pass: re-homed queues carry tasks      (measured 2-9)
    "exp25.crash_rehomed_tasks_min": 1.0,
    # every zoo run consumes work                  (measured 5249-17936)
    "exp25.consumed_min": 1.0,
    # EXP-27 (fixture: bench_rt --scaling-grid --smoke, so the grid runs
    # n=16384 at workers 1,2 for 32 steps; deterministic, so every counter
    # is an exact constant — only the throughput ratio is timing-noisy):
    # fifo and arena rows of one point agree on consumed + max load exactly
    "exp27.layout_divergence_hi": 0.0,
    # every grid run consumes work                 (measured 107500-108279)
    "exp27.consumed_min": 1.0,
    # steal rows actually steal                    (measured 256 events)
    "exp27.steal_events_min": 1.0,
    # each steal event carries at least this many tasks (measured 4.0)
    "exp27.stolen_per_event_min": 1.0,
    # arena rows report a non-zero arena footprint (measured ~5.2 MB)
    "exp27.arena_bytes_min": 1.0,
    # loose floor on the arena/fifo throughput ratio: the real >= 1.05x
    # speedup gate lives in perfbench --exp27; this band only trips a
    # catastrophic inversion               (measured 1.5-1.9 on one core)
    "exp27.arena_over_fifo_lo": 0.5,
    # EXP-20b --recovery-time (fixture: n=1024, crash-step 64, crash-down
    # 128, 8 crashed procs x 48 pre-loaded tasks; deterministic):
    # every crashed processor re-homes exactly once (measured 8)
    "recovery.rehomed_events": 8.0,
    # re-homed queues carry at least the pre-loaded tasks (measured 390-5396)
    "recovery.rehomed_tasks_min": 384.0,
    # the burst actually spikes: peak >= this multiple of the pre-crash band
    # for the non-herding policies              (measured 197/4 and 397/16)
    "recovery.peak_over_band_min": 2.0,
    # local-search re-enters its band fast         (measured 9 steps)
    "recovery.ls_steps_hi": 64.0,
    # the unbalanced control drains only at eps/step (measured 3734 steps)
    "recovery.none_steps_min": 500.0,
    # local-search beats the control by an order of magnitude
    # (measured 9/3734 ~= 0.0024)
    "recovery.ls_vs_none_hi": 0.1,
}

RESULTS = []


def check(band, ok, detail):
    RESULTS.append(ok)
    print(f"  [{'PASS' if ok else 'FAIL'}] {band}: {detail}")


def gauges(path):
    with open(path) as f:
        return json.load(f).get("gauges", {})


def sweep_sizes(g, pattern):
    """Sizes n for which a gauge matching pattern % n exists, ascending."""
    sizes = []
    rx = re.compile("^" + pattern.replace("%d", r"(\d+)") + "$")
    for name in g:
        m = rx.match(name)
        if m:
            sizes.append(int(m.group(1)))
    return sorted(sizes)


def check_exp03(g, limit):
    sizes = sweep_sizes(g, r"exp03\.n%d\.T")
    if not sizes:
        check("exp03.present", False, "no exp03.* gauges found")
        return
    worst = []
    for n in sizes:
        bal = g[f"exp03.n{n}.balanced_max_worst"]
        t = g[f"exp03.n{n}.T"]
        unbal = g[f"exp03.n{n}.unbalanced_max"]
        lim = limit("exp03.balanced_max_le_T")
        check("exp03.balanced_max_le_T", bal <= lim * t,
              f"n={n}: balanced max {bal:g} <= {lim:g} * T({t:g})")
        lim = limit("exp03.unbalanced_above")
        check("exp03.unbalanced_above", unbal >= lim * bal,
              f"n={n}: unbalanced max {unbal:g} >= {lim:g} * balanced {bal:g}")
        worst.append(bal)
    lim = limit("exp03.balanced_flat")
    ratio = max(worst) / max(min(worst), 1.0)
    check("exp03.balanced_flat", ratio <= lim,
          f"balanced max across n {worst}: max/min {ratio:.3f} <= {lim:g}")


def check_exp07(g, limit):
    sizes = sweep_sizes(g, r"exp07\.n%d\.req_per_root_mean")
    if not sizes:
        check("exp07.present", False, "no exp07.* gauges found")
        return
    means = []
    for n in sizes:
        mean = g[f"exp07.n{n}.req_per_root_mean"]
        lo = limit("exp07.req_per_root_lo")
        hi = limit("exp07.req_per_root_hi")
        check("exp07.req_per_root_lo", mean >= lo,
              f"n={n}: mean req/root {mean:.3f} >= {lo:g}")
        check("exp07.req_per_root_hi", mean <= hi,
              f"n={n}: mean req/root {mean:.3f} <= {hi:g}")
        means.append(mean)
    lim = limit("exp07.req_per_root_flat")
    ratio = max(means) / min(means)
    check("exp07.req_per_root_flat", ratio <= lim,
          f"req/root across n: max/min {ratio:.3f} <= {lim:g} (Lemma 7 "
          "constant)")


def check_exp13(g, limit):
    need = ["exp13.threshold.msgs_per_task", "exp13.all_in_air.msgs_per_task",
            "exp13.threshold.locality", "exp13.all_in_air.locality",
            "exp13.threshold.max_load"]
    missing = [k for k in need if k not in g]
    if missing:
        check("exp13.present", False, f"missing gauges: {missing}")
        return
    thr_msgs = g["exp13.threshold.msgs_per_task"]
    air_msgs = g["exp13.all_in_air.msgs_per_task"]
    lim = limit("exp13.threshold_msgs_hi")
    check("exp13.threshold_msgs_hi", thr_msgs <= lim,
          f"threshold {thr_msgs:.4f} msgs/task <= {lim:g}")
    lim = limit("exp13.allinair_msgs_lo")
    check("exp13.allinair_msgs_lo", air_msgs >= lim,
          f"all-in-air {air_msgs:.4f} msgs/task >= {lim:g}")
    check("exp13.threshold_beats_allinair", thr_msgs < air_msgs,
          f"threshold {thr_msgs:.4f} < all-in-air {air_msgs:.4f} msgs/task")
    lim = limit("exp13.threshold_locality_lo")
    loc = g["exp13.threshold.locality"]
    check("exp13.threshold_locality_lo", loc >= lim,
          f"threshold locality {loc:.3f} >= {lim:g}")
    lim = limit("exp13.allinair_locality_hi")
    loc = g["exp13.all_in_air.locality"]
    check("exp13.allinair_locality_hi", loc <= lim,
          f"all-in-air locality {loc:.3f} <= {lim:g}")
    lim = limit("exp13.threshold_max_load_hi")
    ml = g["exp13.threshold.max_load"]
    check("exp13.threshold_max_load_hi", ml <= lim,
          f"threshold max load {ml:g} <= {lim:g}")


def check_exp22(g, limit):
    lats = sweep_sizes(g, r"exp22\.lat%d\.phase_duration_mean")
    if len(lats) < 2:
        check("exp22.present", False,
              "need gauges for at least two latencies, found "
              f"{lats or 'none'}")
        return
    durs = {}
    for lat in lats:
        dur = g[f"exp22.lat{lat}.phase_duration_mean"]
        durs[lat] = dur
        phases = g[f"exp22.lat{lat}.phases"]
        lim = limit("exp22.phases_min")
        check("exp22.phases_min", phases >= lim,
              f"lat={lat}: {phases:g} heavy phases >= {lim:g}")
        per = dur / lat
        lo = limit("exp22.duration_per_latency_lo")
        hi = limit("exp22.duration_per_latency_hi")
        check("exp22.duration_per_latency_lo", per >= lo,
              f"lat={lat}: duration/latency {per:.2f} >= {lo:g}")
        check("exp22.duration_per_latency_hi", per <= hi,
              f"lat={lat}: duration/latency {per:.2f} <= {hi:g}")
        lim = limit("exp22.match_pct_lo")
        match = g[f"exp22.lat{lat}.match_pct"]
        check("exp22.match_pct_lo", match >= lim,
              f"lat={lat}: match rate {match:.1f}% >= {lim:g}%")
        lim = limit("exp22.forced_hi")
        forced = g[f"exp22.lat{lat}.forced"]
        check("exp22.forced_hi", forced <= lim,
              f"lat={lat}: {forced:g} forced phase ends <= {lim:g}")
    lo_lat, hi_lat = min(lats), max(lats)
    ratio = durs[hi_lat] / max(durs[lo_lat], 1e-9)
    lat_ratio = hi_lat / lo_lat
    lim = limit("exp22.duration_ratio_lo")
    check("exp22.duration_ratio_lo", ratio >= lim * lat_ratio,
          f"duration(lat {hi_lat})/duration(lat {lo_lat}) = {ratio:.2f} >= "
          f"{lim:g} * latency ratio {lat_ratio:g} (duration ∝ latency)")


def check_exp24(g, limit):
    rx = re.compile(r"^exp24\.loss(\d+)\.bw(\d+)\.phase_duration_mean$")
    points = sorted((int(m.group(1)), int(m.group(2)))
                    for name in g if (m := rx.match(name)))
    losses = sorted({p[0] for p in points})
    bws = sorted({p[1] for p in points})
    if len(losses) < 2 or len(bws) < 2 or 0 not in losses or 0 not in bws:
        check("exp24.present", False,
              "need a loss x bandwidth grid including lossless/uncapped "
              f"rows, found losses={losses or 'none'} bws={bws or 'none'}")
        return
    for loss, bw in points:
        p = f"exp24.loss{loss}.bw{bw}."
        tag = f"loss={loss}/bw={bw}"
        lim = limit("exp24.phases_min")
        phases = g[p + "phases"]
        check("exp24.phases_min", phases >= lim,
              f"{tag}: {phases:g} heavy phases >= {lim:g}")
        lim = limit("exp24.match_pct_lo")
        match = g[p + "match_pct"]
        check("exp24.match_pct_lo", match >= lim,
              f"{tag}: match rate {match:.1f}% >= {lim:g}%")
        lim = limit("exp24.forced_hi")
        forced = g[p + "forced"]
        check("exp24.forced_hi", forced <= lim,
              f"{tag}: {forced:g} forced phase ends <= {lim:g}")
        retrans = g[p + "retransmits"]
        dups = g[p + "dup_suppressed"]
        queued = g[p + "queued_delay"]
        if loss == 0:
            lim = limit("exp24.lossless_retransmits_hi")
            check("exp24.lossless_retransmits_hi",
                  retrans <= lim and dups <= lim,
                  f"{tag}: lossless retransmits {retrans:g} / dups "
                  f"{dups:g} <= {lim:g}")
        else:
            lim = limit("exp24.lossy_retransmits_min")
            check("exp24.lossy_retransmits_min", retrans >= lim,
                  f"{tag}: lossy retransmits {retrans:g} >= {lim:g}")
        if bw == 0:
            lim = limit("exp24.uncapped_queued_hi")
            check("exp24.uncapped_queued_hi", queued <= lim,
                  f"{tag}: uncapped queued delay {queued:g} <= {lim:g}")
        else:
            lim = limit("exp24.capped_queued_min")
            check("exp24.capped_queued_min", queued >= lim,
                  f"{tag}: capped queued delay {queued:g} >= {lim:g}")
    hi_loss, hi_bw = max(losses), max(bws)
    for bw in bws:
        base = g[f"exp24.loss0.bw{bw}.phase_duration_mean"]
        dur = g[f"exp24.loss{hi_loss}.bw{bw}.phase_duration_mean"]
        ratio = dur / max(base, 1e-9)
        lim = limit("exp24.loss_duration_ratio_lo")
        check("exp24.loss_duration_ratio_lo", ratio >= lim,
              f"bw={bw}: duration(loss {hi_loss})/duration(lossless) = "
              f"{ratio:.2f} >= {lim:g} (retransmit RTOs stretch phases)")
    for loss in losses:
        base = g[f"exp24.loss{loss}.bw0.phase_duration_mean"]
        dur = g[f"exp24.loss{loss}.bw{hi_bw}.phase_duration_mean"]
        ratio = dur / max(base, 1e-9)
        lim = limit("exp24.bw_duration_ratio_lo")
        check("exp24.bw_duration_ratio_lo", ratio >= lim,
              f"loss={loss}: duration(bw {hi_bw})/duration(uncapped) = "
              f"{ratio:.2f} >= {lim:g} (link queueing stretches phases)")


def check_exp25(g, limit):
    rx = re.compile(r"^exp25\.([a-z-]+)\.([a-z-]+)\.max_load$")
    models = sorted({m.group(1) for name in g
                     if (m := rx.match(name)) and m.group(1) != "crash"})
    crash_policies = sorted({m.group(2) for name in g
                             if (m := rx.match(name))
                             and m.group(1) == "crash"})
    if not models:
        check("exp25.present", False, "no exp25.<model>.<policy>.* gauges")
        return
    for model in models:
        p = f"exp25.{model}."
        none_max = g[p + "none.max_load"]
        for policy in ("none", "stale-sq", "local-search", "threshold"):
            lim = limit("exp25.consumed_min")
            consumed = g[p + policy + ".consumed"]
            check("exp25.consumed_min", consumed >= lim,
                  f"{model}/{policy}: consumed {consumed:g} >= {lim:g}")
            moved = g[p + policy + ".tasks_moved"]
            if policy == "none":
                lim = limit("exp25.none_moved_hi")
                check("exp25.none_moved_hi", moved <= lim,
                      f"{model}/none: moved {moved:g} <= {lim:g}")
            else:
                lim = limit("exp25.balancer_moved_min")
                check("exp25.balancer_moved_min", moved >= lim,
                      f"{model}/{policy}: moved {moved:g} >= {lim:g}")
        lim = limit("exp25.ls_improves_max_load")
        ls = g[p + "local-search.max_load"]
        check("exp25.ls_improves_max_load", ls <= lim * none_max,
              f"{model}: local-search max {ls:g} <= {lim:g} * "
              f"unbalanced {none_max:g}")
        lim = limit("exp25.threshold_improves_max_load")
        thr = g[p + "threshold.max_load"]
        check("exp25.threshold_improves_max_load", thr <= lim * none_max,
              f"{model}: threshold max {thr:g} <= {lim:g} * "
              f"unbalanced {none_max:g}")
        lim = limit("exp25.stale_herds_min")
        stale = g[p + "stale-sq.max_load"]
        check("exp25.stale_herds_min", stale >= lim * none_max,
              f"{model}: stale-SQ max {stale:g} >= {lim:g} * unbalanced "
              f"{none_max:g} (herding onto the stale minimum)")
        lim = limit("exp25.threshold_msgs_hi")
        msgs = g[p + "threshold.msgs_per_task"]
        check("exp25.threshold_msgs_hi", msgs <= lim,
              f"{model}: threshold {msgs:.4f} msgs/task <= {lim:g}")
    if not crash_policies:
        check("exp25.crash_present", False, "no exp25.crash.* gauges")
        return
    for policy in crash_policies:
        p = f"exp25.crash.{policy}."
        lim = limit("exp25.crash_rehomed_events")
        events = g[p + "rehomed_events"]
        check("exp25.crash_rehomed_events", events == lim,
              f"crash/{policy}: {events:g} re-home events == {lim:g}")
        lim = limit("exp25.crash_rehomed_tasks_min")
        tasks = g[p + "rehomed_tasks"]
        check("exp25.crash_rehomed_tasks_min", tasks >= lim,
              f"crash/{policy}: {tasks:g} re-homed tasks >= {lim:g}")


def check_exp27(g, limit):
    rx = re.compile(
        r"^exp27\.n(\d+)\.w(\d+)\.(fifo|arena|arena_steal)\.tasks_per_sec$")
    points = sorted((int(m.group(1)), int(m.group(2)), m.group(3))
                    for name in g if (m := rx.match(name)))
    if not points:
        check("exp27.present", False, "no exp27.* gauges found")
        return
    for gn, w, layout in points:
        p = f"exp27.n{gn}.w{w}.{layout}."
        tag = f"n={gn}/w={w}/{layout}"
        lim = limit("exp27.consumed_min")
        consumed = g[p + "consumed"]
        check("exp27.consumed_min", consumed >= lim,
              f"{tag}: consumed {consumed:g} >= {lim:g}")
        if layout != "fifo":
            lim = limit("exp27.arena_bytes_min")
            ab = g[p + "arena_bytes"]
            check("exp27.arena_bytes_min", ab >= lim,
                  f"{tag}: arena bytes {ab:g} >= {lim:g}")
        if layout == "arena":
            fifo = f"exp27.n{gn}.w{w}.fifo."
            lim = limit("exp27.layout_divergence_hi")
            div = (abs(consumed - g[fifo + "consumed"]) +
                   abs(g[p + "max_load"] - g[fifo + "max_load"]))
            check("exp27.layout_divergence_hi", div <= lim,
                  f"{tag}: |arena - fifo| counter divergence {div:g} <= "
                  f"{lim:g} (layouts are bit-equivalent)")
            lim = limit("exp27.arena_over_fifo_lo")
            ratio = g[f"exp27.n{gn}.w{w}.arena_over_fifo"]
            check("exp27.arena_over_fifo_lo", ratio >= lim,
                  f"{tag}: arena/fifo throughput {ratio:.2f} >= {lim:g} "
                  "(real speedup gate: perfbench --exp27)")
        if layout == "arena_steal":
            lim = limit("exp27.steal_events_min")
            events = g[p + "steal_events"]
            check("exp27.steal_events_min", events >= lim,
                  f"{tag}: {events:g} steal events >= {lim:g}")
            lim = limit("exp27.stolen_per_event_min")
            stolen = g[p + "stolen_tasks"]
            check("exp27.stolen_per_event_min", stolen >= lim * events,
                  f"{tag}: {stolen:g} stolen tasks >= {lim:g} * "
                  f"{events:g} events")
    # Deterministic worker-count invariance: every layout's counters are
    # identical at each worker count of the same n.
    for gn in sorted({p[0] for p in points}):
        for layout in ("fifo", "arena", "arena_steal"):
            vals = sorted({g[f"exp27.n{gn}.w{w}.{layout}.consumed"]
                           for pn, w, pl in points
                           if pn == gn and pl == layout})
            if len(vals) > 1:
                check("exp27.worker_invariant", False,
                      f"n={gn}/{layout}: consumed varies with workers "
                      f"{vals}")
            elif vals:
                check("exp27.worker_invariant", True,
                      f"n={gn}/{layout}: consumed {vals[0]:g} at every "
                      "worker count")


def check_recovery(g, limit):
    policies = sorted({m.group(1) for name in g
                       if (m := re.match(r"^recovery\.([a-z-]+)\.steps$",
                                         name))})
    if not policies:
        check("recovery.present", False, "no recovery.<policy>.* gauges")
        return
    for policy in policies:
        p = f"recovery.{policy}."
        lim = limit("recovery.rehomed_events")
        events = g[p + "rehomed_events"]
        check("recovery.rehomed_events", events == lim,
              f"{policy}: {events:g} re-home events == {lim:g}")
        lim = limit("recovery.rehomed_tasks_min")
        tasks = g[p + "rehomed_tasks"]
        check("recovery.rehomed_tasks_min", tasks >= lim,
              f"{policy}: {tasks:g} re-homed tasks >= {lim:g}")
        if policy != "stale-sq":  # herding inflates the pre-crash band
            lim = limit("recovery.peak_over_band_min")
            peak, band = g[p + "peak"], g[p + "band"]
            check("recovery.peak_over_band_min", peak >= lim * band,
                  f"{policy}: peak {peak:g} >= {lim:g} * band {band:g}")
    if "local-search" in policies:
        lim = limit("recovery.ls_steps_hi")
        ls = g["recovery.local-search.steps"]
        check("recovery.ls_steps_hi", ls <= lim,
              f"local-search recovers in {ls:g} steps <= {lim:g}")
    if "none" in policies:
        lim = limit("recovery.none_steps_min")
        none = g["recovery.none.steps"]
        check("recovery.none_steps_min", none >= lim,
              f"unbalanced control needs {none:g} steps >= {lim:g}")
        if "local-search" in policies:
            lim = limit("recovery.ls_vs_none_hi")
            ls = g["recovery.local-search.steps"]
            check("recovery.ls_vs_none_hi", ls <= lim * none,
                  f"local-search {ls:g} <= {lim:g} * control {none:g} steps")


def main():
    ap = argparse.ArgumentParser(
        description="Evaluate EXPERIMENTS.md tolerance bands against bench "
                    "--metrics-json output.")
    ap.add_argument("--exp03", help="bench_maxload_single metrics JSON")
    ap.add_argument("--exp07", help="bench_expected_requests metrics JSON")
    ap.add_argument("--exp13", help="bench_baselines metrics JSON")
    ap.add_argument("--exp22", help="bench_rt latency-sweep metrics JSON")
    ap.add_argument("--exp24", help="bench_rt link-model-sweep metrics JSON")
    ap.add_argument("--exp25", help="bench_rt workload-grid metrics JSON")
    ap.add_argument("--exp27", help="bench_rt scaling-grid metrics JSON")
    ap.add_argument("--recovery",
                    help="bench_recovery --recovery-time metrics JSON")
    ap.add_argument("--override", action="append", default=[],
                    metavar="BAND=VALUE",
                    help="perturb a band limit (self-test hook)")
    args = ap.parse_args()

    limits = dict(DEFAULT_LIMITS)
    for ov in args.override:
        band, _, value = ov.partition("=")
        if band not in limits:
            print(f"unknown band in --override: {band}", file=sys.stderr)
            print(f"known bands: {', '.join(sorted(limits))}", file=sys.stderr)
            return 2
        limits[band] = float(value)

    def limit(band):
        return limits[band]

    if not (args.exp03 or args.exp07 or args.exp13 or args.exp22 or
            args.exp24 or args.exp25 or args.exp27 or args.recovery):
        ap.error("at least one of --exp03/--exp07/--exp13/--exp22/--exp24/"
                 "--exp25/--exp27/--recovery is required")

    if args.exp03:
        print(f"exp03 bands ({args.exp03}):")
        check_exp03(gauges(args.exp03), limit)
    if args.exp07:
        print(f"exp07 bands ({args.exp07}):")
        check_exp07(gauges(args.exp07), limit)
    if args.exp13:
        print(f"exp13 bands ({args.exp13}):")
        check_exp13(gauges(args.exp13), limit)
    if args.exp22:
        print(f"exp22 bands ({args.exp22}):")
        check_exp22(gauges(args.exp22), limit)
    if args.exp24:
        print(f"exp24 bands ({args.exp24}):")
        check_exp24(gauges(args.exp24), limit)
    if args.exp25:
        print(f"exp25 bands ({args.exp25}):")
        check_exp25(gauges(args.exp25), limit)
    if args.exp27:
        print(f"exp27 bands ({args.exp27}):")
        check_exp27(gauges(args.exp27), limit)
    if args.recovery:
        print(f"recovery bands ({args.recovery}):")
        check_recovery(gauges(args.recovery), limit)

    passed = sum(RESULTS)
    failed = len(RESULTS) - passed
    print(f"statcheck: {passed} bands passed, {failed} failed")
    return 0 if failed == 0 and RESULTS else 1


if __name__ == "__main__":
    sys.exit(main())
