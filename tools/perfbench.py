#!/usr/bin/env python3
"""perfbench: drives bench_rt (EXP-21) and distils the runtime's scaling
profile into BENCH_rt.json.

One bench_rt invocation sweeps worker counts for each (model, policy)
configuration and exports per-run gauges via --metrics-json; this tool runs
it, reshapes the gauges into a stable, diff-friendly document, derives the
scaling ratios, and (optionally) gates on them:

    tools/perfbench.py --bench build/bench/bench_rt --out BENCH_rt.json
    tools/perfbench.py --smoke          # reduced matrix, schema gate only

Document schema (clb.bench_rt.v1):

  {
    "schema": "clb.bench_rt.v1",
    "host": {"hardware_concurrency": <int>},
    "config": {"n": .., "steps": .., "spin": .., "seed": ..,
               "workers": [..], "models": [..], "policies": [..],
               "smoke": <bool>},
    "runs": [{"model": .., "policy": .., "workers": ..,
              "tasks_per_sec": .., "wall_seconds": ..,
              "sojourn_p50_us": .., "sojourn_p95_us": ..,
              "sojourn_p99_us": .., "remote_push_fraction": ..,
              "msgs_per_task": .., "consumed": ..,
              # with --telemetry (and a CLB_TELEMETRY=ON build):
              "utilization_mean": .., "barrier_stall_fraction": ..,
              "queue_imbalance": ..}, ...],
    "derived": {"<model>.<policy>.speedup_at_max_workers": .., ...},
    # with --exp24: the EXP-24 link-model sweep (loss x bandwidth grid)
    "exp24": [{"loss": .., "bw": .., "phase_duration_mean": ..,
               "phases": .., "match_pct": .., "forced": ..,
               "retransmits": .., "dup_suppressed": ..,
               "queued_delay": ..}, ...],
    # with --exp25: the EXP-25 workload-zoo grid (model x policy, plus the
    # crash/recovery pass under model "crash"; crash rows also carry the
    # rehomed_tasks / rehomed_events gauges)
    "exp25": [{"model": .., "policy": .., "max_load": ..,
               "final_mean_load": .., "tasks_moved": ..,
               "msgs_per_task": .., "consumed": ..}, ...],
    # with --exp26: the cross-process transport sweep (bench_transport:
    # in-proc vs UDS/TCP at each shard count). Only recorded when the
    # bench's shadow cross-check proved the socket run bit-identical to
    # the in-memory runtime (exp26.shadow_ok); wire_* fields appear on
    # socket substrates only.
    "exp26": [{"substrate": "inproc"|"uds"|"tcp", "workers": ..,
               "tasks_per_sec": .., "wall_seconds": .., "vs_inproc": ..,
               "sojourn_p50_us": .., "sojourn_p95_us": ..,
               "sojourn_p99_us": .., "consumed": ..,
               "running_max_load": ..,
               # socket substrates only:
               "wire_bytes_sent": .., "wire_frames_sent": ..,
               "wire_barriers": .., "wire_barrier_rtt_mean_us": ..,
               "wire_barrier_rtt_p99_us": .., "wire_kb_per_step": ..},
              ...],
    # with --exp27: the EXP-27 million-processor scaling grid (bench_rt
    # --scaling-grid: n x workers x queue layout, deterministic). Arena
    # rows also carry arena_bytes and the arena_over_fifo throughput
    # ratio against the fifo row of the same point; arena_steal rows add
    # steal_events / stolen_tasks.
    "exp27": [{"n": .., "workers": .., "layout": "fifo"|"arena"|
               "arena_steal", "tasks_per_sec": .., "wall_seconds": ..,
               "consumed": .., "max_load": ..}, ...]
  }

The exp24/exp25/exp26/exp27 sections are optional (schema stays
clb.bench_rt.v1); baselines recorded without them keep comparing cleanly —
--compare only reads "runs".

The >1.5x speedup gate (threshold policy, max vs 1 worker) only arms when
the host has at least --min-cores-for-gate real cores: worker threads on a
single-core CI box are concurrency, not parallelism, and a throughput
assertion there measures the scheduler, not the runtime.

The EXP-27 arena gate is different: the arena-over-fifo ratio compares two
same-host, same-shape runs that differ only in queue layout, so it is a
cache-layout measurement, not a parallelism one — it arms regardless of
core count whenever --exp27 ran (outside --smoke). At the largest grid n,
the best arena row must beat the fifo baseline by --min-arena-ratio
(default 1.05x).

--compare OLD.json turns the run into a perf-trajectory gate: each fresh
run's tasks_per_sec is checked against the matching (model, policy,
workers) run in the committed baseline, and a drop beyond the tolerance
fails the build. The tolerance defaults to 0.35 (fresh >= 0.65x baseline)
because CI hosts are shared and noisy; tune it per-host with
--compare-tolerance or the CLB_PERF_TOLERANCE environment variable (the
flag wins). The comparison disarms itself — with a warning, not a failure —
when the baseline was recorded on a host with a different
hardware_concurrency or when the current host is below
--min-cores-for-gate: comparing throughput across machine shapes gates the
hardware, not the code.

Exit status: 0 = document written (and every armed gate passed);
1 = bench failed, schema invalid, or an armed gate tripped.
"""
from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

SCHEMA = "clb.bench_rt.v1"

RUN_FIELDS = [
    "tasks_per_sec",
    "wall_seconds",
    "sojourn_p50_us",
    "sojourn_p95_us",
    "sojourn_p99_us",
    "remote_push_fraction",
    "msgs_per_task",
    "consumed",
]

# Optional per-run telemetry gauges (--telemetry): present in the document
# only when bench_rt ran with telemetry compiled in and enabled.
TELEMETRY_FIELDS = [
    "utilization_mean",
    "barrier_stall_fraction",
    "queue_imbalance",
]

# Per-grid-point gauges of the EXP-24 link-model sweep (--exp24).
EXP24_FIELDS = [
    "phase_duration_mean",
    "phases",
    "match_pct",
    "forced",
    "retransmits",
    "dup_suppressed",
    "queued_delay",
]

# Per-grid-point gauges of the EXP-25 workload-zoo grid (--exp25).
EXP25_FIELDS = [
    "max_load",
    "final_mean_load",
    "tasks_moved",
    "msgs_per_task",
    "consumed",
]

# Per-run gauges of the EXP-26 cross-process transport sweep (--exp26,
# driven by bench_transport rather than bench_rt).
EXP26_FIELDS = [
    "tasks_per_sec",
    "wall_seconds",
    "vs_inproc",
    "sojourn_p50_us",
    "sojourn_p95_us",
    "sojourn_p99_us",
    "consumed",
    "running_max_load",
]

# Per-grid-point gauges of the EXP-27 scaling grid (--exp27). Every layout
# row carries these; arena rows add arena_bytes (+ arena_over_fifo), and
# arena_steal rows add steal_events / stolen_tasks.
EXP27_FIELDS = [
    "tasks_per_sec",
    "wall_seconds",
    "consumed",
    "max_load",
]

# Wire accounting, present only on socket-backed substrates (uds/tcp).
EXP26_WIRE_FIELDS = [
    "wire.bytes_sent",
    "wire.frames_sent",
    "wire.barriers",
    "wire.barrier_rtt_mean_us",
    "wire.barrier_rtt_p99_us",
    "wire.kb_per_step",
]


def fail(msg: str) -> "sys.NoReturn":
    print(f"perfbench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_bench(bench: str, args: argparse.Namespace, metrics_path: str) -> None:
    cmd = [
        bench,
        f"--n={args.n}",
        f"--steps={args.steps}",
        f"--spin={args.spin}",
        f"--seed={args.seed}",
        f"--workers={','.join(str(w) for w in args.worker_list)}",
        f"--models={','.join(args.model_list)}",
        f"--policies={','.join(args.policy_list)}",
        "--latencies=",  # EXP-22 sweep is statcheck's domain, skip it here
        f"--metrics-json={metrics_path}",
    ]
    if args.exp24:
        # Let bench_rt's default loss x bandwidth grid run (EXP-24).
        pass
    else:
        cmd.append("--link-loss-grid=")  # skip the EXP-24 sweep
    if args.exp25:
        cmd.append("--workload-grid")
    if args.exp27:
        cmd.append("--scaling-grid")
        if args.smoke:
            # Mirror bench_rt's own --smoke shrink of the grid.
            cmd += ["--grid-n=16384", "--grid-workers=1,2", "--grid-steps=32"]
    if args.telemetry:
        cmd.append("--telemetry")
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    if proc.returncode != 0:
        print(proc.stdout, file=sys.stderr)
        fail(f"bench_rt exited {proc.returncode}")


def run_bench_transport(args: argparse.Namespace, metrics_path: str) -> dict:
    cmd = [
        args.bench_transport,
        f"--seed={args.seed}",
        f"--workers={args.exp26_workers}",
        f"--metrics-json={metrics_path}",
    ]
    if args.smoke:
        cmd.append("--smoke")
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    if proc.returncode != 0:
        print(proc.stdout, file=sys.stderr)
        fail(f"bench_transport exited {proc.returncode}")
    try:
        with open(metrics_path, encoding="utf-8") as f:
            return json.load(f).get("gauges", {})
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read bench_transport metrics: {e}")


def assemble_exp26(gauges: dict) -> list:
    if gauges.get("exp26.shadow_ok") != 1.0:
        fail("bench_transport's shadow cross-check gauge is missing or not "
             "1.0 — the transport run was not proven bit-identical")
    rx = re.compile(r"^exp26\.([a-z]+)\.w(\d+)\.tasks_per_sec$")
    points = sorted((m.group(1), int(m.group(2)))
                    for name in gauges if (m := rx.match(name)))
    if not points:
        fail("--exp26 requested but bench_transport emitted no exp26.* "
             "run gauges")
    exp26 = []
    for substrate, w in points:
        prefix = f"exp26.{substrate}.w{w}."
        point = {"substrate": substrate, "workers": w}
        for field in EXP26_FIELDS:
            point[field] = gauges[prefix + field]
        for field in EXP26_WIRE_FIELDS:
            if prefix + field in gauges:
                point[field.replace(".", "_")] = gauges[prefix + field]
        exp26.append(point)
    return exp26


def assemble(gauges: dict, args: argparse.Namespace) -> dict:
    hw = int(gauges.get("rt.hardware_concurrency", 0))
    runs = []
    for model in args.model_list:
        for policy in args.policy_list:
            for w in args.worker_list:
                prefix = f"rt.{model}.{policy}.w{w}."
                if prefix + "tasks_per_sec" not in gauges:
                    fail(f"bench_rt emitted no gauges for {prefix}*")
                run = {"model": model, "policy": policy, "workers": w}
                for field in RUN_FIELDS:
                    run[field] = gauges[prefix + field]
                if args.telemetry:
                    for field in TELEMETRY_FIELDS:
                        key = prefix + "telemetry." + field
                        if key in gauges:
                            run[field] = gauges[key]
                runs.append(run)
    if args.telemetry and runs and TELEMETRY_FIELDS[0] not in runs[0]:
        print("perfbench: warning: --telemetry requested but bench_rt "
              "exported no telemetry gauges (CLB_TELEMETRY=OFF build?)",
              file=sys.stderr)

    derived = {}
    for model in args.model_list:
        for policy in args.policy_list:
            rates = {
                r["workers"]: r["tasks_per_sec"]
                for r in runs
                if r["model"] == model and r["policy"] == policy
            }
            base = rates.get(min(rates))
            peak = rates.get(max(rates))
            if base and base > 0:
                derived[f"{model}.{policy}.speedup_at_max_workers"] = (
                    peak / base)

    doc = {
        "schema": SCHEMA,
        "host": {"hardware_concurrency": hw},
        "config": {
            "n": args.n,
            "steps": args.steps,
            "spin": args.spin,
            "seed": args.seed,
            "workers": args.worker_list,
            "models": args.model_list,
            "policies": args.policy_list,
            "smoke": bool(args.smoke),
        },
        "runs": runs,
        "derived": derived,
    }
    if args.exp24:
        rx = re.compile(r"^exp24\.loss(\d+)\.bw(\d+)\.phase_duration_mean$")
        points = sorted((int(m.group(1)), int(m.group(2)))
                        for name in gauges if (m := rx.match(name)))
        if not points:
            fail("--exp24 requested but bench_rt emitted no exp24.* gauges")
        exp24 = []
        for loss, bw in points:
            prefix = f"exp24.loss{loss}.bw{bw}."
            point = {"loss": loss, "bw": bw}
            for field in EXP24_FIELDS:
                point[field] = gauges[prefix + field]
            exp24.append(point)
        doc["exp24"] = exp24
    if args.exp25:
        rx = re.compile(r"^exp25\.([a-z-]+)\.([a-z-]+)\.max_load$")
        points = sorted((m.group(1), m.group(2))
                        for name in gauges if (m := rx.match(name)))
        if not points:
            fail("--exp25 requested but bench_rt emitted no exp25.* gauges")
        exp25 = []
        for model, policy in points:
            prefix = f"exp25.{model}.{policy}."
            point = {"model": model, "policy": policy}
            for field in EXP25_FIELDS:
                point[field] = gauges[prefix + field]
            for field in ("rehomed_tasks", "rehomed_events"):
                if prefix + field in gauges:
                    point[field] = gauges[prefix + field]
            exp25.append(point)
        doc["exp25"] = exp25
    if args.exp27:
        rx = re.compile(
            r"^exp27\.n(\d+)\.w(\d+)\.(fifo|arena|arena_steal)"
            r"\.tasks_per_sec$")
        points = sorted((int(m.group(1)), int(m.group(2)), m.group(3))
                        for name in gauges if (m := rx.match(name)))
        if not points:
            fail("--exp27 requested but bench_rt emitted no exp27.* gauges")
        exp27 = []
        for gn, w, layout in points:
            prefix = f"exp27.n{gn}.w{w}.{layout}."
            point = {"n": gn, "workers": w, "layout": layout}
            for field in EXP27_FIELDS:
                point[field] = gauges[prefix + field]
            for field in ("arena_bytes", "steal_events", "stolen_tasks"):
                if prefix + field in gauges:
                    point[field] = gauges[prefix + field]
            ratio_key = f"exp27.n{gn}.w{w}.arena_over_fifo"
            if layout == "arena" and ratio_key in gauges:
                point["arena_over_fifo"] = gauges[ratio_key]
            exp27.append(point)
        doc["exp27"] = exp27
    return doc


def validate(doc: dict) -> None:
    if doc.get("schema") != SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    hw = doc.get("host", {}).get("hardware_concurrency")
    if not isinstance(hw, int) or hw < 0:
        fail("host.hardware_concurrency missing or not an int")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail("runs missing or empty")
    for i, run in enumerate(runs):
        for key in ("model", "policy", "workers", *RUN_FIELDS):
            if key not in run:
                fail(f"runs[{i}] missing {key!r}")
        for field in RUN_FIELDS:
            if not isinstance(run[field], (int, float)):
                fail(f"runs[{i}].{field} is not numeric")
        if run["tasks_per_sec"] < 0 or run["wall_seconds"] <= 0:
            fail(f"runs[{i}] has nonsensical throughput/wall time")
    if not isinstance(doc.get("derived"), dict):
        fail("derived missing")
    if "exp24" in doc:
        points = doc["exp24"]
        if not isinstance(points, list) or not points:
            fail("exp24 present but not a non-empty list")
        for i, point in enumerate(points):
            for key in ("loss", "bw", *EXP24_FIELDS):
                if not isinstance(point.get(key), (int, float)):
                    fail(f"exp24[{i}].{key} missing or not numeric")
    if "exp25" in doc:
        points = doc["exp25"]
        if not isinstance(points, list) or not points:
            fail("exp25 present but not a non-empty list")
        for i, point in enumerate(points):
            for key in ("model", "policy"):
                if not isinstance(point.get(key), str):
                    fail(f"exp25[{i}].{key} missing or not a string")
            for key in EXP25_FIELDS:
                if not isinstance(point.get(key), (int, float)):
                    fail(f"exp25[{i}].{key} missing or not numeric")
            if point["model"] == "crash":
                for key in ("rehomed_tasks", "rehomed_events"):
                    if not isinstance(point.get(key), (int, float)):
                        fail(f"exp25[{i}].{key} missing on a crash row")
    if "exp27" in doc:
        points = doc["exp27"]
        if not isinstance(points, list) or not points:
            fail("exp27 present but not a non-empty list")
        for i, point in enumerate(points):
            if point.get("layout") not in ("fifo", "arena", "arena_steal"):
                fail(f"exp27[{i}].layout missing or unknown")
            for key in ("n", "workers", *EXP27_FIELDS):
                if not isinstance(point.get(key), (int, float)):
                    fail(f"exp27[{i}].{key} missing or not numeric")
            if point["layout"] == "arena":
                for key in ("arena_bytes", "arena_over_fifo"):
                    if not isinstance(point.get(key), (int, float)):
                        fail(f"exp27[{i}].{key} missing on an arena row")
            if point["layout"] == "arena_steal":
                for key in ("steal_events", "stolen_tasks"):
                    if not isinstance(point.get(key), (int, float)):
                        fail(f"exp27[{i}].{key} missing on a steal row")
    if "exp26" in doc:
        points = doc["exp26"]
        if not isinstance(points, list) or not points:
            fail("exp26 present but not a non-empty list")
        for i, point in enumerate(points):
            if not isinstance(point.get("substrate"), str):
                fail(f"exp26[{i}].substrate missing or not a string")
            for key in ("workers", *EXP26_FIELDS):
                if not isinstance(point.get(key), (int, float)):
                    fail(f"exp26[{i}].{key} missing or not numeric")
            if point["substrate"] != "inproc":
                for key in EXP26_WIRE_FIELDS:
                    flat = key.replace(".", "_")
                    if not isinstance(point.get(flat), (int, float)):
                        fail(f"exp26[{i}].{flat} missing on a socket row")


def gate(doc: dict, args: argparse.Namespace) -> None:
    hw = doc["host"]["hardware_concurrency"]
    if hw < args.min_cores_for_gate:
        print(f"perfbench: speedup gate disarmed "
              f"({hw} cores < {args.min_cores_for_gate} required)")
        return
    for model in args.model_list:
        key = f"{model}.threshold.speedup_at_max_workers"
        speedup = doc["derived"].get(key)
        if speedup is None:
            continue
        if speedup < args.min_speedup:
            fail(f"{key} = {speedup:.2f} < required {args.min_speedup}")
        print(f"perfbench: {key} = {speedup:.2f} (>= {args.min_speedup}) ok")


def gate_exp27(doc: dict, args: argparse.Namespace) -> None:
    """The arena-over-fifo gate: same host, same shape, only the queue
    layout differs — a cache-layout measurement that needs no parallelism,
    so (unlike the speedup gate) it arms regardless of core count."""
    points = doc.get("exp27", [])
    ratios = {}
    for p in points:
        if p["layout"] == "arena":
            ratios.setdefault(p["n"], []).append(p["arena_over_fifo"])
    if not ratios:
        fail("exp27 gate: no arena rows recorded")
    top_n = max(ratios)
    best = max(ratios[top_n])
    if best < args.min_arena_ratio:
        fail(f"exp27 arena gate: best arena_over_fifo at n={top_n} is "
             f"{best:.2f}x < required {args.min_arena_ratio}x — the arena "
             f"layout no longer beats the pointer-FIFO baseline")
    print(f"perfbench: exp27 arena gate armed — arena_over_fifo at "
          f"n={top_n} is {best:.2f}x (>= {args.min_arena_ratio}x) ok")


def compare(doc: dict, args: argparse.Namespace) -> None:
    try:
        with open(args.compare, encoding="utf-8") as f:
            base = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read baseline {args.compare!r}: {e}")
    if base.get("schema") != SCHEMA:
        fail(f"baseline schema is {base.get('schema')!r}, want {SCHEMA!r}")

    hw_now = doc["host"]["hardware_concurrency"]
    hw_base = base.get("host", {}).get("hardware_concurrency")
    refresh = (f"python3 tools/perfbench.py --bench {args.bench} "
               f"--out {args.compare}")
    if hw_now != hw_base:
        print(f"perfbench: compare disarmed — baseline {args.compare!r} was "
              f"recorded on a {hw_base}-core host, this host has {hw_now} "
              f"cores; comparing throughput across machine shapes gates the "
              f"hardware, not the code. Refresh the baseline on a "
              f">= {args.min_cores_for_gate}-core runner with: {refresh}")
        return
    if hw_now < args.min_cores_for_gate:
        print(f"perfbench: compare disarmed — this host has {hw_now} cores, "
              f"below the {args.min_cores_for_gate}-core floor (worker "
              f"threads there are concurrency, not parallelism). Record and "
              f"compare baselines on a >= {args.min_cores_for_gate}-core "
              f"runner with: {refresh}")
        return

    tol = args.compare_tolerance
    if tol is None:
        env = os.environ.get("CLB_PERF_TOLERANCE", "")
        try:
            tol = float(env) if env else 0.35
        except ValueError:
            fail(f"CLB_PERF_TOLERANCE={env!r} is not a number")
    if not 0.0 <= tol < 1.0:
        fail(f"compare tolerance {tol} outside [0, 1)")

    baseline = {
        (r["model"], r["policy"], r["workers"]): r["tasks_per_sec"]
        for r in base.get("runs", [])
    }
    compared = 0
    worst = None
    for run in doc["runs"]:
        key = (run["model"], run["policy"], run["workers"])
        old = baseline.get(key)
        if old is None or old <= 0:
            continue
        compared += 1
        ratio = run["tasks_per_sec"] / old
        label = f"{key[0]}.{key[1]}.w{key[2]}"
        if worst is None or ratio < worst[1]:
            worst = (label, ratio)
        if ratio < 1.0 - tol:
            fail(f"throughput regression: {label} tasks_per_sec "
                 f"{run['tasks_per_sec']:.0f} is {ratio:.2f}x baseline "
                 f"{old:.0f} (floor {1.0 - tol:.2f}x; raise the tolerance "
                 f"via --compare-tolerance or CLB_PERF_TOLERANCE if this "
                 f"host is known-noisy)")
    if compared == 0:
        fail(f"baseline {args.compare!r} shares no (model, policy, workers) "
             f"runs with this configuration — nothing compared")
    print(f"perfbench: compare ok — {compared} runs within {tol:.2f} of "
          f"baseline (worst {worst[0]} at {worst[1]:.2f}x)")


def main() -> int:
    ap = argparse.ArgumentParser(
        description="Run bench_rt and write BENCH_rt.json")
    ap.add_argument("--bench", default="build/bench/bench_rt",
                    help="path to the bench_rt binary")
    ap.add_argument("--out", default="BENCH_rt.json",
                    help="output document path")
    ap.add_argument("--smoke", action="store_true",
                    help="reduced matrix; schema validation only")
    ap.add_argument("--telemetry", action="store_true",
                    help="run bench_rt with --telemetry and record "
                         "utilization/stall/imbalance per run")
    ap.add_argument("--exp24", action="store_true",
                    help="also run the EXP-24 link-model sweep (loss x "
                         "bandwidth grid) and record it under 'exp24'")
    ap.add_argument("--exp25", action="store_true",
                    help="also run the EXP-25 workload-zoo grid (zoo model "
                         "x policy + crash pass) and record it under "
                         "'exp25'")
    ap.add_argument("--exp26", action="store_true",
                    help="also run the EXP-26 cross-process transport sweep "
                         "(bench_transport: in-proc vs UDS, shadow-checked) "
                         "and record it under 'exp26'")
    ap.add_argument("--exp27", action="store_true",
                    help="also run the EXP-27 million-processor scaling grid "
                         "(bench_rt --scaling-grid: n x workers x queue "
                         "layout) and record it under 'exp27'; arms the "
                         "arena-over-fifo gate outside --smoke")
    ap.add_argument("--min-arena-ratio", type=float, default=1.05,
                    help="required arena-over-fifo throughput ratio at the "
                         "largest exp27 grid n (armed on any core count)")
    ap.add_argument("--bench-transport", default="build/bench/bench_transport",
                    help="path to the bench_transport binary (--exp26)")
    ap.add_argument("--exp26-workers", default="2,4",
                    help="shard counts for the EXP-26 sweep")
    ap.add_argument("--n", type=int, default=4096)
    ap.add_argument("--steps", type=int, default=2000)
    ap.add_argument("--spin", type=int, default=64)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--workers", default="",
                    help="comma-separated worker counts "
                         "(default: 1,2,4,..,hardware_concurrency)")
    ap.add_argument("--models", default="single,burst")
    ap.add_argument("--policies", default="threshold,none,all-in-air")
    ap.add_argument("--min-speedup", type=float, default=1.5,
                    help="required threshold-policy speedup, max vs 1 worker")
    ap.add_argument("--min-cores-for-gate", type=int, default=8,
                    help="arm the speedup gate only at this many real cores")
    ap.add_argument("--compare", default="",
                    help="baseline BENCH_rt.json; fail if any matching run's "
                         "tasks_per_sec drops by more than the tolerance")
    ap.add_argument("--compare-tolerance", type=float, default=None,
                    help="allowed fractional throughput drop vs baseline "
                         "(default 0.35; CLB_PERF_TOLERANCE overrides the "
                         "default, the flag overrides both)")
    args = ap.parse_args()

    if args.smoke:
        args.n = 512
        args.steps = 96
        args.models = "single"
        if not args.workers:
            args.workers = "1,2"

    if args.workers:
        args.worker_list = [int(w) for w in args.workers.split(",") if w]
    else:
        hw = os.cpu_count() or 1
        ws = []
        k = 1
        while k <= hw:
            ws.append(k)
            k *= 2
        if ws[-1] != hw:
            ws.append(hw)
        if len(ws) < 2:
            ws.append(2)
        args.worker_list = ws
    args.model_list = [m for m in args.models.split(",") if m]
    args.policy_list = [p for p in args.policies.split(",") if p]

    with tempfile.TemporaryDirectory() as tmp:
        metrics_path = os.path.join(tmp, "bench_rt.metrics.json")
        run_bench(args.bench, args, metrics_path)
        try:
            with open(metrics_path, encoding="utf-8") as f:
                gauges = json.load(f).get("gauges", {})
        except (OSError, json.JSONDecodeError) as e:
            fail(f"cannot read bench metrics: {e}")
        transport_gauges = None
        if args.exp26:
            transport_gauges = run_bench_transport(
                args, os.path.join(tmp, "bench_transport.metrics.json"))

    doc = assemble(gauges, args)
    if transport_gauges is not None:
        doc["exp26"] = assemble_exp26(transport_gauges)
    validate(doc)
    if not args.smoke:
        gate(doc, args)
        if "exp27" in doc:
            gate_exp27(doc, args)
    if args.compare:
        compare(doc, args)

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"perfbench: wrote {args.out} "
          f"({len(doc['runs'])} runs, schema {SCHEMA})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
