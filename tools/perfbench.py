#!/usr/bin/env python3
"""perfbench: drives bench_rt (EXP-21) and distils the runtime's scaling
profile into BENCH_rt.json.

One bench_rt invocation sweeps worker counts for each (model, policy)
configuration and exports per-run gauges via --metrics-json; this tool runs
it, reshapes the gauges into a stable, diff-friendly document, derives the
scaling ratios, and (optionally) gates on them:

    tools/perfbench.py --bench build/bench/bench_rt --out BENCH_rt.json
    tools/perfbench.py --smoke          # reduced matrix, schema gate only

Document schema (clb.bench_rt.v1):

  {
    "schema": "clb.bench_rt.v1",
    "host": {"hardware_concurrency": <int>},
    "config": {"n": .., "steps": .., "spin": .., "seed": ..,
               "workers": [..], "models": [..], "policies": [..],
               "smoke": <bool>},
    "runs": [{"model": .., "policy": .., "workers": ..,
              "tasks_per_sec": .., "wall_seconds": ..,
              "sojourn_p50_us": .., "sojourn_p95_us": ..,
              "sojourn_p99_us": .., "remote_push_fraction": ..,
              "msgs_per_task": .., "consumed": ..}, ...],
    "derived": {"<model>.<policy>.speedup_at_max_workers": .., ...}
  }

The >1.5x speedup gate (threshold policy, max vs 1 worker) only arms when
the host has at least --min-cores-for-gate real cores: worker threads on a
single-core CI box are concurrency, not parallelism, and a throughput
assertion there measures the scheduler, not the runtime.

Exit status: 0 = document written (and every armed gate passed);
1 = bench failed, schema invalid, or an armed gate tripped.
"""
from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

SCHEMA = "clb.bench_rt.v1"

RUN_FIELDS = [
    "tasks_per_sec",
    "wall_seconds",
    "sojourn_p50_us",
    "sojourn_p95_us",
    "sojourn_p99_us",
    "remote_push_fraction",
    "msgs_per_task",
    "consumed",
]


def fail(msg: str) -> "sys.NoReturn":
    print(f"perfbench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_bench(bench: str, args: argparse.Namespace, metrics_path: str) -> None:
    cmd = [
        bench,
        f"--n={args.n}",
        f"--steps={args.steps}",
        f"--spin={args.spin}",
        f"--seed={args.seed}",
        f"--workers={','.join(str(w) for w in args.worker_list)}",
        f"--models={','.join(args.model_list)}",
        f"--policies={','.join(args.policy_list)}",
        f"--metrics-json={metrics_path}",
    ]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    if proc.returncode != 0:
        print(proc.stdout, file=sys.stderr)
        fail(f"bench_rt exited {proc.returncode}")


def assemble(gauges: dict, args: argparse.Namespace) -> dict:
    hw = int(gauges.get("rt.hardware_concurrency", 0))
    runs = []
    for model in args.model_list:
        for policy in args.policy_list:
            for w in args.worker_list:
                prefix = f"rt.{model}.{policy}.w{w}."
                if prefix + "tasks_per_sec" not in gauges:
                    fail(f"bench_rt emitted no gauges for {prefix}*")
                run = {"model": model, "policy": policy, "workers": w}
                for field in RUN_FIELDS:
                    run[field] = gauges[prefix + field]
                runs.append(run)

    derived = {}
    for model in args.model_list:
        for policy in args.policy_list:
            rates = {
                r["workers"]: r["tasks_per_sec"]
                for r in runs
                if r["model"] == model and r["policy"] == policy
            }
            base = rates.get(min(rates))
            peak = rates.get(max(rates))
            if base and base > 0:
                derived[f"{model}.{policy}.speedup_at_max_workers"] = (
                    peak / base)

    return {
        "schema": SCHEMA,
        "host": {"hardware_concurrency": hw},
        "config": {
            "n": args.n,
            "steps": args.steps,
            "spin": args.spin,
            "seed": args.seed,
            "workers": args.worker_list,
            "models": args.model_list,
            "policies": args.policy_list,
            "smoke": bool(args.smoke),
        },
        "runs": runs,
        "derived": derived,
    }


def validate(doc: dict) -> None:
    if doc.get("schema") != SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    hw = doc.get("host", {}).get("hardware_concurrency")
    if not isinstance(hw, int) or hw < 0:
        fail("host.hardware_concurrency missing or not an int")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail("runs missing or empty")
    for i, run in enumerate(runs):
        for key in ("model", "policy", "workers", *RUN_FIELDS):
            if key not in run:
                fail(f"runs[{i}] missing {key!r}")
        for field in RUN_FIELDS:
            if not isinstance(run[field], (int, float)):
                fail(f"runs[{i}].{field} is not numeric")
        if run["tasks_per_sec"] < 0 or run["wall_seconds"] <= 0:
            fail(f"runs[{i}] has nonsensical throughput/wall time")
    if not isinstance(doc.get("derived"), dict):
        fail("derived missing")


def gate(doc: dict, args: argparse.Namespace) -> None:
    hw = doc["host"]["hardware_concurrency"]
    if hw < args.min_cores_for_gate:
        print(f"perfbench: speedup gate disarmed "
              f"({hw} cores < {args.min_cores_for_gate} required)")
        return
    for model in args.model_list:
        key = f"{model}.threshold.speedup_at_max_workers"
        speedup = doc["derived"].get(key)
        if speedup is None:
            continue
        if speedup < args.min_speedup:
            fail(f"{key} = {speedup:.2f} < required {args.min_speedup}")
        print(f"perfbench: {key} = {speedup:.2f} (>= {args.min_speedup}) ok")


def main() -> int:
    ap = argparse.ArgumentParser(
        description="Run bench_rt and write BENCH_rt.json")
    ap.add_argument("--bench", default="build/bench/bench_rt",
                    help="path to the bench_rt binary")
    ap.add_argument("--out", default="BENCH_rt.json",
                    help="output document path")
    ap.add_argument("--smoke", action="store_true",
                    help="reduced matrix; schema validation only")
    ap.add_argument("--n", type=int, default=4096)
    ap.add_argument("--steps", type=int, default=2000)
    ap.add_argument("--spin", type=int, default=64)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--workers", default="",
                    help="comma-separated worker counts "
                         "(default: 1,2,4,..,hardware_concurrency)")
    ap.add_argument("--models", default="single,burst")
    ap.add_argument("--policies", default="threshold,none,all-in-air")
    ap.add_argument("--min-speedup", type=float, default=1.5,
                    help="required threshold-policy speedup, max vs 1 worker")
    ap.add_argument("--min-cores-for-gate", type=int, default=8,
                    help="arm the speedup gate only at this many real cores")
    args = ap.parse_args()

    if args.smoke:
        args.n = 512
        args.steps = 96
        args.models = "single"
        if not args.workers:
            args.workers = "1,2"

    if args.workers:
        args.worker_list = [int(w) for w in args.workers.split(",") if w]
    else:
        hw = os.cpu_count() or 1
        ws = []
        k = 1
        while k <= hw:
            ws.append(k)
            k *= 2
        if ws[-1] != hw:
            ws.append(hw)
        if len(ws) < 2:
            ws.append(2)
        args.worker_list = ws
    args.model_list = [m for m in args.models.split(",") if m]
    args.policy_list = [p for p in args.policies.split(",") if p]

    with tempfile.TemporaryDirectory() as tmp:
        metrics_path = os.path.join(tmp, "bench_rt.metrics.json")
        run_bench(args.bench, args, metrics_path)
        try:
            with open(metrics_path, encoding="utf-8") as f:
                gauges = json.load(f).get("gauges", {})
        except (OSError, json.JSONDecodeError) as e:
            fail(f"cannot read bench metrics: {e}")

    doc = assemble(gauges, args)
    validate(doc)
    if not args.smoke:
        gate(doc, args)

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"perfbench: wrote {args.out} "
          f"({len(doc['runs'])} runs, schema {SCHEMA})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
