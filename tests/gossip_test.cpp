// Tests for the push-sum gossip averaging substrate and its use inside the
// Lauer baseline's estimate_average mode.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/lauer.hpp"
#include "gossip/push_sum.hpp"
#include "models/single.hpp"
#include "models/trace.hpp"
#include "sim/engine.hpp"

namespace clb::gossip {
namespace {

TEST(PushSum, MassConservation) {
  const std::uint64_t n = 256;
  PushSumEstimator est(n);
  std::vector<double> values(n);
  double total = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    values[i] = static_cast<double>((i * 13) % 31);
    total += values[i];
  }
  est.restart(values);
  for (std::uint64_t r = 0; r < 50; ++r) {
    est.round(1, r);
    double sum = 0, weight = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      // Reconstruct invariants through estimates is lossy; instead check
      // the public error metric shrinks (below) and the estimate is finite.
      ASSERT_TRUE(std::isfinite(est.estimate(i)));
    }
    (void)sum;
    (void)weight;
  }
  // After O(log n) rounds every estimate is near the true average.
  EXPECT_LT(est.max_relative_error(total / static_cast<double>(n)), 0.02);
}

TEST(PushSum, ConvergesInLogNRounds) {
  const std::uint64_t n = 1024;
  PushSumEstimator est(n);
  std::vector<double> values(n, 0.0);
  values[0] = static_cast<double>(n);  // all mass on one node: worst case
  est.restart(values);
  std::uint64_t rounds = 0;
  while (est.max_relative_error(1.0) > 0.05 && rounds < 200) {
    est.round(7, rounds++);
  }
  // Push-sum converges in O(log n + log 1/eps) rounds; allow slack.
  EXPECT_LT(rounds, 60u);
}

TEST(PushSum, TracksDriftingValues) {
  const std::uint64_t n = 512;
  PushSumEstimator est(n);
  std::vector<double> values(n, 2.0);
  est.restart(values);
  for (std::uint64_t r = 0; r < 40; ++r) est.round(3, r);
  // Inject +1 everywhere (average rises to 3) and keep gossiping.
  std::vector<double> drift(n, 1.0);
  est.round(3, 100, &drift);
  for (std::uint64_t r = 101; r < 140; ++r) est.round(3, r);
  EXPECT_LT(est.max_relative_error(3.0), 0.05);
}

TEST(PushSum, RejectsBadSizes) {
  PushSumEstimator est(16);
  std::vector<double> wrong(8, 1.0);
  EXPECT_DEATH(est.restart(wrong), "mismatch");
}

TEST(LauerEstimated, BalancesWithoutOracleAverage) {
  const std::uint64_t n = 256;
  // Alternating 0/8 loads: true average 4.
  std::vector<std::uint32_t> row(n, 0);
  for (std::uint64_t p = 0; p < n; p += 2) row[p] = 8;
  models::TraceModel model({row}, {});
  baselines::LauerBalancer balancer(
      {.c = 0.5, .max_probes = 8, .min_band = 2.0, .estimate_average = true,
       .restart_every = 40});
  sim::Engine eng({.n = n, .seed = 5}, &model, &balancer);
  eng.run(120);
  EXPECT_LT(balancer.estimation_error(eng), 0.1);
  EXPECT_LE(eng.step_max_load(), 6u);  // flattened like the oracle version
  EXPECT_EQ(eng.total_load(), 8u * n / 2);
}

TEST(LauerEstimated, StableUnderContinuousLoad) {
  const std::uint64_t n = 512;
  models::SingleModel model(0.4, 0.1);
  baselines::LauerBalancer balancer(
      {.estimate_average = true, .restart_every = 48});
  sim::Engine eng({.n = n, .seed = 6}, &model, &balancer);
  eng.run(2000);
  EXPECT_EQ(eng.total_generated(), eng.total_consumed() + eng.total_load());
  EXPECT_LT(eng.step_max_load(), 30u);
  // The estimate keeps tracking the (drifting) true average.
  EXPECT_LT(balancer.estimation_error(eng), 0.5);
}

}  // namespace
}  // namespace clb::gossip
