// Unit + statistical tests for the load generation models (§1.2).
#include <gtest/gtest.h>

#include <cmath>

#include "models/adversarial.hpp"
#include "models/burst.hpp"
#include "models/geometric.hpp"
#include "models/multi.hpp"
#include "models/onoff.hpp"
#include "models/poisson_batch.hpp"
#include "models/single.hpp"
#include "sim/engine.hpp"

namespace clb::models {
namespace {

TEST(Single, GenerationFrequencyMatchesP) {
  SingleModel m(0.4, 0.1);
  std::uint64_t generated = 0;
  const std::uint64_t kTrials = 100000;
  for (std::uint64_t i = 0; i < kTrials; ++i) {
    generated += m.step_action(1, i % 64, i / 64, 0, 0).generate;
  }
  EXPECT_NEAR(static_cast<double>(generated) / kTrials, 0.4, 0.01);
}

TEST(Single, ConsumptionFrequencyMatchesQ) {
  SingleModel m(0.4, 0.1);
  std::uint64_t consumed = 0;
  const std::uint64_t kTrials = 100000;
  for (std::uint64_t i = 0; i < kTrials; ++i) {
    consumed += m.step_action(1, i % 64, i / 64, 0, 0).consume;
  }
  EXPECT_NEAR(static_cast<double>(consumed) / kTrials, 0.5, 0.01);
}

TEST(Single, GenerationAndConsumptionIndependent) {
  SingleModel m(0.5, 0.25);
  std::uint64_t both = 0;
  const std::uint64_t kTrials = 100000;
  for (std::uint64_t i = 0; i < kTrials; ++i) {
    const auto act = m.step_action(1, i, 0, 0, 0);
    const bool g = act.generate > 0;
    const bool c = act.consume > 0;
    both += (g && c) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(both) / kTrials, 0.5 * 0.75, 0.01);
}

TEST(Single, DeterministicPerSeedProcStep) {
  SingleModel m(0.4, 0.1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(m.step_action(9, 5, 17, 0, 0).generate,
              m.step_action(9, 5, 17, 0, 0).generate);
  }
}

TEST(Single, ExpectedLoadMatchesChain) {
  SingleModel m(0.4, 0.1);
  // rho = 0.2/0.3; E[load] = rho/(1-rho) = 2.
  EXPECT_NEAR(m.expected_load_per_processor(), 2.0, 1e-9);
}

TEST(Single, RejectsBadParameters) {
  EXPECT_DEATH(SingleModel(0.0, 0.1), "p in");
  EXPECT_DEATH(SingleModel(0.5, 0.0), "eps");
  EXPECT_DEATH(SingleModel(0.9, 0.2), "eps");
}

TEST(Geometric, PmfMatchesPaper) {
  GeometricModel m(5);
  std::uint64_t counts[8] = {};
  const std::uint64_t kTrials = 200000;
  for (std::uint64_t i = 0; i < kTrials; ++i) {
    ++counts[m.step_action(1, i, 0, 0, 0).generate];
  }
  for (std::uint32_t i = 1; i <= 5; ++i) {
    const double expect = std::pow(2.0, -(static_cast<double>(i) + 1));
    EXPECT_NEAR(static_cast<double>(counts[i]) / kTrials, expect, 0.01);
  }
}

TEST(Geometric, MeanGeneratedBelowOne) {
  GeometricModel m(4);
  EXPECT_LT(m.mean_generated(), 1.0);
  EXPECT_GT(m.mean_generated(), 0.8);
  EXPECT_EQ(m.step_action(1, 0, 0, 0, 0).consume, 1u);
}

TEST(Geometric, StationaryPredictionMatchesSimulation) {
  GeometricModel m(4);
  const double predicted = m.expected_load_per_processor();
  sim::Engine eng({.n = 4096, .seed = 7}, &m, nullptr);
  eng.run(2500);
  const double measured = static_cast<double>(eng.total_load()) / 4096.0;
  EXPECT_NEAR(measured, predicted, 0.15 * predicted + 0.1);
}

TEST(Multi, StationaryPredictionMatchesSimulation) {
  MultiModel m({0.5, 0.3, 0.2});
  const double predicted = m.expected_load_per_processor();
  EXPECT_GT(predicted, 0.0);
  sim::Engine eng({.n = 4096, .seed = 8}, &m, nullptr);
  eng.run(2500);
  const double measured = static_cast<double>(eng.total_load()) / 4096.0;
  EXPECT_NEAR(measured, predicted, 0.15 * predicted + 0.1);
}

TEST(Multi, RespectsPmfAndMean) {
  MultiModel m({0.55, 0.3, 0.15});
  EXPECT_NEAR(m.mean_generated(), 0.6, 1e-9);
  std::uint64_t counts[3] = {};
  const std::uint64_t kTrials = 100000;
  for (std::uint64_t i = 0; i < kTrials; ++i) {
    const auto v = m.step_action(1, i, 0, 0, 0).generate;
    ASSERT_LT(v, 3u);
    ++counts[v];
  }
  EXPECT_NEAR(static_cast<double>(counts[1]) / kTrials, 0.3, 0.01);
}

TEST(Multi, RejectsSupercriticalMean) {
  EXPECT_DEATH(MultiModel({0.0, 0.0, 1.0}), "must be < 1");
}

TEST(Adversarial, RespectsGlobalCap) {
  AdversarialConfig cfg;
  cfg.cap = 100;
  cfg.p_spawn = 1.0;  // always branch
  cfg.p_seed = 1.0;   // always seed
  cfg.branch = 3;
  cfg.per_window_budget = 1000;
  AdversarialModel model(cfg, 64);
  sim::Engine eng({.n = 64, .seed = 5}, &model, nullptr);
  eng.run(50);
  EXPECT_LE(eng.total_load(), 100u);
}

TEST(Adversarial, RespectsPerWindowBudget) {
  AdversarialConfig cfg;
  cfg.cap = 1 << 20;
  cfg.p_spawn = 1.0;
  cfg.p_seed = 1.0;
  cfg.branch = 4;
  cfg.window = 8;
  cfg.per_window_budget = 8;
  AdversarialModel model(cfg, 4);
  sim::Engine eng({.n = 4, .seed = 5}, &model, nullptr);
  eng.run(8);  // exactly one window
  // Each proc generated at most 8 and consumed at most 8.
  for (std::uint64_t p = 0; p < 4; ++p) {
    EXPECT_LE(eng.processor(p).generated, 8u);
  }
}

TEST(Adversarial, SerialGenerationDeclared) {
  AdversarialModel model({}, 16);
  EXPECT_TRUE(model.serial_generation());
}

TEST(Burst, HotGroupGeneratesBurstRate) {
  BurstConfig cfg;
  cfg.period = 10;
  cfg.burst_len = 2;
  cfg.hot_fraction = 0.25;
  cfg.burst_rate = 5;
  cfg.rotate_hotspot = false;
  BurstModel m(cfg, 16);
  // Steps 0,1 are burst steps; procs 0..3 are hot.
  EXPECT_TRUE(m.is_hot(0, 0));
  EXPECT_TRUE(m.is_hot(3, 1));
  EXPECT_FALSE(m.is_hot(4, 0));
  EXPECT_FALSE(m.is_hot(0, 2));  // outside burst window
  EXPECT_EQ(m.step_action(1, 0, 0, 0, 0).generate, 5u);
}

TEST(PoissonBatch, MeanMatchesLambda) {
  PoissonBatchModel m(0.7);
  std::uint64_t total = 0;
  const std::uint64_t kTrials = 200000;
  for (std::uint64_t i = 0; i < kTrials; ++i) {
    total += m.step_action(1, i % 128, i / 128, 0, 0).generate;
  }
  EXPECT_NEAR(static_cast<double>(total) / kTrials, 0.7, 0.01);
}

TEST(PoissonBatch, VarianceMatchesPoisson) {
  PoissonBatchModel m(0.5);
  const std::uint64_t kTrials = 200000;
  double sum = 0, sumsq = 0;
  for (std::uint64_t i = 0; i < kTrials; ++i) {
    const double x = m.step_action(2, i % 128, i / 128, 0, 0).generate;
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / kTrials;
  const double var = sumsq / kTrials - mean * mean;
  EXPECT_NEAR(var, 0.5, 0.02);  // Poisson: variance == mean
}

TEST(PoissonBatch, RejectsSupercriticalLambda) {
  EXPECT_DEATH(PoissonBatchModel(1.2), "lambda");
}

TEST(OnOff, StationaryOnFraction) {
  OnOffConfig cfg;
  cfg.p_on_to_off = 0.05;
  cfg.p_off_to_on = 0.02;
  OnOffModel m(cfg, 4096);
  EXPECT_NEAR(m.on_fraction(), 0.02 / 0.07, 1e-12);
  // Drive the chain and compare the empirical ON fraction at equilibrium.
  for (std::uint64_t step = 0; step < 400; ++step) {
    for (std::uint64_t p = 0; p < 4096; ++p) {
      (void)m.step_action(3, p, step, 0, 0);
    }
  }
  std::uint64_t on = 0;
  for (std::uint64_t p = 0; p < 4096; ++p) on += m.is_on(p) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(on) / 4096.0, m.on_fraction(), 0.05);
}

TEST(OnOff, GeneratesOnlyWhenOn) {
  OnOffConfig cfg;
  cfg.p_on = 1.0;  // ON processors always generate
  cfg.p_on_to_off = 0.2;
  cfg.p_off_to_on = 0.2;
  cfg.p_consume = 0.9;
  OnOffModel m(cfg, 64);
  for (std::uint64_t step = 0; step < 200; ++step) {
    for (std::uint64_t p = 0; p < 64; ++p) {
      const bool was_on = step == 0 ? true : m.is_on(p);
      const auto act = m.step_action(4, p, step, 0, 0);
      if (step > 0 && !was_on) {
        EXPECT_EQ(act.generate, 0u);
      }
    }
  }
}

TEST(OnOff, RejectsUnstableConfig) {
  OnOffConfig cfg;
  cfg.p_on = 0.9;
  cfg.p_consume = 0.3;
  cfg.p_on_to_off = 0.01;
  cfg.p_off_to_on = 0.5;  // almost always ON -> rate ~0.88 > 0.3
  EXPECT_DEATH(OnOffModel(cfg, 16), "below consumption");
}

TEST(OnOff, StableUnderEngine) {
  OnOffConfig cfg;  // defaults: rate = 0.8 * 2/7 = 0.23 < 0.5
  OnOffModel m(cfg, 512);
  sim::Engine eng({.n = 512, .seed = 5}, &m, nullptr);
  eng.run(2000);
  EXPECT_LT(static_cast<double>(eng.total_load()) / 512.0, 6.0);
  EXPECT_EQ(eng.total_generated(), eng.total_consumed() + eng.total_load());
}

TEST(Burst, RotationMovesHotGroup) {
  BurstConfig cfg;
  cfg.period = 10;
  cfg.burst_len = 1;
  cfg.hot_fraction = 0.25;
  cfg.rotate_hotspot = true;
  BurstModel m(cfg, 16);
  EXPECT_TRUE(m.is_hot(0, 0));
  EXPECT_TRUE(m.is_hot(4, 10));   // window 1 starts at proc 4
  EXPECT_FALSE(m.is_hot(0, 10));
}

}  // namespace
}  // namespace clb::models
