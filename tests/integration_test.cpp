// End-to-end integration tests: the full stack (model -> engine -> threshold
// balancer -> collision protocol) exercised on small machines, checking the
// paper's headline claims at test scale.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/markov.hpp"
#include "core/threshold_balancer.hpp"
#include "models/adversarial.hpp"
#include "models/geometric.hpp"
#include "models/multi.hpp"
#include "models/single.hpp"
#include "sim/engine.hpp"

namespace clb {
namespace {

using core::Fractions;
using core::PhaseParams;
using core::ThresholdBalancer;
using core::ThresholdBalancerConfig;

TEST(Integration, Theorem1SmallScale) {
  // Single model on n = 2^12, 4000 steps: balanced max load must stay within
  // a small multiple of T while the unbalanced system (same seed) drifts to
  // Theta(log n) levels.
  const std::uint64_t n = 1 << 12;
  models::SingleModel model(0.4, 0.1);
  const auto params = PhaseParams::from_n(n);
  ThresholdBalancer balancer({.params = params});
  sim::Engine eng({.n = n, .seed = 1}, &model, &balancer);
  eng.run(4000);
  EXPECT_LE(eng.running_max_load(), 2 * params.T)
      << "balanced max load should be O(T)";

  models::SingleModel model_u(0.4, 0.1);
  sim::Engine unbalanced({.n = n, .seed = 1}, &model_u, nullptr);
  unbalanced.run(4000);
  EXPECT_GT(unbalanced.running_max_load(), eng.running_max_load());
}

TEST(Integration, Lemma3SystemLoadStaysLinear) {
  const std::uint64_t n = 1 << 12;
  models::SingleModel model(0.4, 0.1);
  ThresholdBalancer balancer({.params = PhaseParams::from_n(n)});
  sim::Engine eng({.n = n, .seed = 2}, &model, &balancer);
  eng.run(3000);
  const double per_proc = static_cast<double>(eng.total_load()) /
                          static_cast<double>(n);
  // Stationary mean is rho/(1-rho) = 2; allow generous slack.
  EXPECT_LT(per_proc, 4.0);
  // Balancing conserves tasks.
  EXPECT_EQ(eng.total_generated(), eng.total_consumed() + eng.total_load());
}

TEST(Integration, Lemma4FewHeavyManyLight) {
  const std::uint64_t n = 1 << 12;
  models::SingleModel model(0.4, 0.1);
  ThresholdBalancer balancer({.params = PhaseParams::from_n(n)});
  sim::Engine eng({.n = n, .seed = 3}, &model, &balancer);
  eng.run(3000);
  const auto& agg = balancer.aggregate();
  // Heavy processors are a vanishing fraction; light are the vast majority.
  EXPECT_LT(agg.heavy_per_phase.mean(), 0.01 * static_cast<double>(n));
  EXPECT_GT(agg.light_per_phase.mean(), 0.5 * static_cast<double>(n));
}

TEST(Integration, Lemma6HeavyAlmostAlwaysFindsPartner) {
  // Lemma 6 is a w.h.p. statement; at n = 2^12 with the realised depth-3
  // query trees the per-search failure probability is ~1e-5, so over
  // thousands of phases the match rate must be essentially 1.
  const std::uint64_t n = 1 << 12;
  models::SingleModel model(0.4, 0.1);
  ThresholdBalancer balancer({.params = PhaseParams::from_n(n)});
  sim::Engine eng({.n = n, .seed = 4}, &model, &balancer);
  eng.run(3000);
  const auto& agg = balancer.aggregate();
  EXPECT_LE(agg.total_unmatched, 5u);
  if (agg.phases_with_heavy > 0) {
    EXPECT_GE(agg.match_rate.mean(), 0.999);
  }
}

TEST(Integration, Lemma7RequestsPerHeavyConstant) {
  const std::uint64_t n = 1 << 12;
  models::SingleModel model(0.4, 0.1);
  ThresholdBalancer balancer({.params = PhaseParams::from_n(n)});
  sim::Engine eng({.n = n, .seed = 5}, &model, &balancer);
  eng.run(3000);
  const auto& agg = balancer.aggregate();
  if (agg.phases_with_heavy > 0) {
    EXPECT_LT(agg.requests_per_heavy.mean(), 4.0);
  }
}

TEST(Integration, Corollary1WaitingTimesBounded) {
  const std::uint64_t n = 1 << 10;
  models::GeometricModel model(4);  // constant running time variant
  const auto params = PhaseParams::from_n(n, Fractions{.scale = 4.0});
  ThresholdBalancer balancer({.params = params});
  sim::Engine eng({.n = n, .seed = 6, .track_sojourn = true}, &model,
                  &balancer);
  eng.run(3000);
  const auto& h = eng.sojourn_histogram();
  ASSERT_GT(h.total(), 0u);
  // 99.9th percentile sojourn is O(T).
  EXPECT_LE(h.quantile(0.999), 3 * params.T);
}

TEST(Integration, GeometricModelBoundScalesWithK) {
  const std::uint64_t n = 1 << 10;
  models::GeometricModel model(4);
  const auto params = PhaseParams::from_n(n, Fractions{.scale = 4.0});
  ThresholdBalancer balancer({.params = params});
  sim::Engine eng({.n = n, .seed = 7}, &model, &balancer);
  eng.run(2000);
  EXPECT_LE(eng.running_max_load(), 2 * params.T);
}

TEST(Integration, MultiModelStaysBounded) {
  const std::uint64_t n = 1 << 10;
  models::MultiModel model({0.5, 0.3, 0.15, 0.05});  // mean 0.75, c = 4
  const auto params = PhaseParams::from_n(n, Fractions{.scale = 4.0});
  ThresholdBalancer balancer({.params = params});
  sim::Engine eng({.n = n, .seed = 8}, &model, &balancer);
  eng.run(2000);
  EXPECT_LE(eng.running_max_load(), 2 * params.T);
}

TEST(Integration, AdversarialBoundedByCapPlusT) {
  const std::uint64_t n = 1 << 10;
  models::AdversarialConfig acfg;
  acfg.cap = 4 * n;
  acfg.window = 16;
  acfg.per_window_budget = 16;
  models::AdversarialModel model(acfg, n);
  const auto params = PhaseParams::from_n(n);
  ThresholdBalancer balancer(
      {.params = params, .one_shot_preround = true});
  sim::Engine eng({.n = n, .seed = 9}, &model, &balancer);
  eng.run(2000);
  // O(B/n + T): with B = 4n the per-processor bound is ~4 + T ~ 20; slack 3x.
  EXPECT_LE(eng.running_max_load(), 3 * (4 + params.T));
}

TEST(Integration, FullStackDeterministicAcrossThreads) {
  const std::uint64_t n = 1 << 10;
  models::SingleModel m1(0.4, 0.1), m2(0.4, 0.1);
  ThresholdBalancer b1({.params = PhaseParams::from_n(n)});
  ThresholdBalancer b2({.params = PhaseParams::from_n(n)});
  sim::Engine e1({.n = n, .seed = 10, .threads = 1}, &m1, &b1);
  sim::Engine e2({.n = n, .seed = 10, .threads = 4}, &m2, &b2);
  e1.run(1000);
  e2.run(1000);
  EXPECT_EQ(e1.total_load(), e2.total_load());
  EXPECT_EQ(e1.running_max_load(), e2.running_max_load());
  EXPECT_EQ(e1.messages().queries, e2.messages().queries);
  EXPECT_EQ(e1.messages().tasks_moved, e2.messages().tasks_moved);
}

TEST(Integration, CommunicationFarBelowBallsIntoBins) {
  // §1.2: parallel balls-into-bins spends >= 1 message per generated task;
  // the threshold scheme's protocol messages per generated task vanish.
  const std::uint64_t n = 1 << 12;
  models::SingleModel model(0.4, 0.1);
  ThresholdBalancer balancer({.params = PhaseParams::from_n(n)});
  sim::Engine eng({.n = n, .seed = 11}, &model, &balancer);
  eng.run(3000);
  const double per_task =
      static_cast<double>(eng.messages().protocol_total()) /
      static_cast<double>(eng.total_generated());
  EXPECT_LT(per_task, 0.5);
}

TEST(Integration, LocalityStaysHigh) {
  // The paper's motivation: tasks stay on their generating processor.
  const std::uint64_t n = 1 << 12;
  models::SingleModel model(0.4, 0.1);
  ThresholdBalancer balancer({.params = PhaseParams::from_n(n)});
  sim::Engine eng({.n = n, .seed = 12}, &model, &balancer);
  eng.run(3000);
  EXPECT_GT(eng.locality_fraction(), 0.9);
}

TEST(Integration, RecoversFromWorstCaseSpikeFasterThanUnbalanced) {
  // Concluding Remarks: the balanced system recovers from worst-case
  // scenarios (at least as fast as the unbalanced one, which drains at the
  // eps surplus). The threshold drains transfer_amount per phase, ~10x
  // faster here.
  const std::uint64_t n = 1 << 11;
  const auto params = PhaseParams::from_n(n);
  const std::uint64_t spike = 512;
  auto recover = [&](bool balanced) {
    models::SingleModel model(0.4, 0.1);
    std::unique_ptr<ThresholdBalancer> b;
    if (balanced) {
      b = std::make_unique<ThresholdBalancer>(
          ThresholdBalancerConfig{.params = params});
    }
    sim::Engine eng({.n = n, .seed = 14}, &model, b.get());
    for (std::uint64_t i = 0; i < spike; ++i) {
      eng.deposit(0, sim::Task{0, 0, 1});
    }
    // step_max_load is refreshed at step boundaries, so step at least once
    // before checking (deposits alone don't update the aggregate).
    std::uint64_t steps = 0;
    do {
      eng.step_once();
      ++steps;
    } while (eng.step_max_load() > 2 * params.T && steps < 20000);
    return steps;
  };
  const std::uint64_t balanced_steps = recover(true);
  const std::uint64_t unbalanced_steps = recover(false);
  EXPECT_LT(balanced_steps, 20000u);  // actually recovered
  EXPECT_LT(5 * balanced_steps, unbalanced_steps);
}

TEST(Integration, UnbalancedTailMatchesMarkovChain) {
  // Lemma 2: the unbalanced per-processor load is geometric with ratio rho.
  const std::uint64_t n = 1 << 13;
  models::SingleModel model(0.4, 0.1);
  sim::Engine eng({.n = n, .seed = 13}, &model, nullptr);
  eng.run(2000);  // past mixing for rho = 2/3
  const auto h = eng.load_histogram();
  analysis::SingleModelChain chain(0.4, 0.1);
  for (std::uint64_t k = 0; k <= 6; ++k) {
    EXPECT_NEAR(h.tail_at_least(k), chain.tail_at_least(k), 0.05)
        << "tail at " << k;
  }
}

}  // namespace
}  // namespace clb
