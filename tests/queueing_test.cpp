// Tests for the DES kernel and the supermarket model.
#include <gtest/gtest.h>

#include <vector>

#include "queueing/event_queue.hpp"
#include "queueing/supermarket.hpp"

namespace clb::queueing {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(2); });
  q.schedule(1.0, [&] { order.push_back(3); });
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] {
    ++fired;
    q.schedule_in(1.0, [&] { ++fired; });
  });
  q.run_until(10.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueue, RunUntilLeavesLaterEventsQueued) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(5.0, [&] { ++fired; });
  q.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueue, RejectsSchedulingIntoPast) {
  EventQueue q;
  q.schedule(2.0, [] {});
  q.run_next();
  EXPECT_DEATH(q.schedule(1.0, [] {}), "past");
}

TEST(Supermarket, ThroughputMatchesLambda) {
  SupermarketConfig cfg;
  cfg.n = 512;
  cfg.lambda = 0.7;
  cfg.horizon = 50.0;
  cfg.warmup = 10.0;
  const auto r = run_supermarket(cfg);
  // Arrivals over [0, horizon] ~ Poisson(lambda * n * horizon).
  const double expected =
      cfg.lambda * static_cast<double>(cfg.n) * cfg.horizon;
  EXPECT_NEAR(static_cast<double>(r.arrivals), expected, 0.1 * expected);
  EXPECT_GT(r.departures, 0u);
}

TEST(Supermarket, TwoChoicesBeatOne) {
  SupermarketConfig cfg;
  cfg.n = 1024;
  cfg.lambda = 0.9;
  cfg.horizon = 60.0;
  cfg.warmup = 20.0;
  cfg.seed = 11;
  cfg.d = 1;
  const auto one = run_supermarket(cfg);
  cfg.d = 2;
  const auto two = run_supermarket(cfg);
  EXPECT_LT(two.max_queue, one.max_queue);
  EXPECT_LT(two.mean_sojourn, one.mean_sojourn);
}

TEST(Supermarket, MaxQueueIsLogLogScaleForD2) {
  SupermarketConfig cfg;
  cfg.n = 1 << 12;
  cfg.lambda = 0.9;
  cfg.d = 2;
  cfg.horizon = 50.0;
  cfg.warmup = 10.0;
  const auto r = run_supermarket(cfg);
  EXPECT_LE(r.max_queue, 8u);  // O(log log n) per [Mit96]
}

TEST(Supermarket, MeanQueueMatchesTheoryForD1) {
  // d = 1 is n independent M/M/1 queues: E[len] = lambda / (1 - lambda).
  SupermarketConfig cfg;
  cfg.n = 2048;
  cfg.lambda = 0.5;
  cfg.d = 1;
  cfg.horizon = 200.0;
  cfg.warmup = 50.0;
  const auto r = run_supermarket(cfg);
  EXPECT_NEAR(r.mean_queue, 1.0, 0.15);
}

TEST(Supermarket, DeterministicServiceRuns) {
  SupermarketConfig cfg;
  cfg.n = 256;
  cfg.lambda = 0.8;
  cfg.deterministic_service = true;
  cfg.horizon = 30.0;
  cfg.warmup = 5.0;
  const auto r = run_supermarket(cfg);
  EXPECT_GT(r.departures, 0u);
  EXPECT_EQ(r.messages, r.arrivals * 3);  // d probes + 1 join
}

TEST(Supermarket, RejectsBadConfig) {
  SupermarketConfig cfg;
  cfg.lambda = 1.5;
  EXPECT_DEATH(run_supermarket(cfg), "lambda");
}

}  // namespace
}  // namespace clb::queueing
