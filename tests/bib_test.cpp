// Tests for the static balls-into-bins games (§1.1 known results).
#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "bib/bib.hpp"

namespace clb::bib {
namespace {

TEST(SingleChoice, ConservesBallsAndCountsMessages) {
  const auto r = single_choice(10000, 1000, 1);
  EXPECT_EQ(r.messages, 10000u);
  EXPECT_GE(r.max_load, 10u);  // at least the average
}

TEST(SingleChoice, MaxLoadNearLogOverLogLog) {
  const std::uint64_t n = 1 << 16;
  std::uint64_t worst = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    worst = std::max(worst, single_choice(n, n, seed).max_load);
  }
  const double predicted = analysis::bib_single_choice_max(n);
  EXPECT_GT(static_cast<double>(worst), 0.5 * predicted);
  EXPECT_LT(static_cast<double>(worst), 3.0 * predicted);
}

TEST(GreedyD, BeatsSingleChoiceSubstantially) {
  const std::uint64_t n = 1 << 16;
  const auto one = single_choice(n, n, 7);
  const auto two = greedy_d(n, n, 2, 7);
  EXPECT_LT(two.max_load, one.max_load);
  EXPECT_LE(two.max_load, 5u);  // log log n / log 2 + O(1)
}

TEST(GreedyD, MoreChoicesLowerLoad) {
  const std::uint64_t n = 1 << 14;
  const auto d2 = greedy_d(n, n, 2, 3);
  const auto d4 = greedy_d(n, n, 4, 3);
  EXPECT_LE(d4.max_load, d2.max_load);
}

TEST(GreedyD, MessageCostIsDPlusOnePerBall) {
  const auto r = greedy_d(1000, 1000, 3, 1);
  EXPECT_EQ(r.messages, 1000u * 4);
}

TEST(WeightedGreedyD, UniformWeightsMatchUnweighted) {
  const std::uint64_t n = 4096;
  std::vector<double> w(n, 1.0);
  const auto weighted = weighted_greedy_d(w, n, 2, 9);
  const auto plain = greedy_d(n, n, 2, 9);
  EXPECT_EQ(weighted.max_load, plain.max_load);
}

TEST(WeightedGreedyD, HeavyBallDominates) {
  std::vector<double> w(100, 0.1);
  w[0] = 50.0;
  const auto r = weighted_greedy_d(w, 100, 2, 1);
  EXPECT_GE(r.max_load, 50u);
}

TEST(Acmr, AllBallsPlaceWithDefaultThreshold) {
  const std::uint64_t n = 1 << 14;
  const auto r = acmr_parallel(n, n, {.rounds = 2}, 5);
  EXPECT_EQ(r.unallocated, 0u);
  EXPECT_LE(r.rounds, 2u);
  // max load <= r * T by construction.
  EXPECT_GT(r.max_load, 0u);
}

TEST(Acmr, TinyThresholdLeavesLeftovers) {
  const std::uint64_t n = 4096;
  const auto r = acmr_parallel(n, n, {.rounds = 1, .threshold = 1}, 5);
  EXPECT_GT(r.unallocated, 0u);
  EXPECT_LE(r.max_load, 1u);
}

TEST(Acmr, MoreRoundsPlaceMore) {
  const std::uint64_t n = 4096;
  const auto r1 = acmr_parallel(n, n, {.rounds = 1, .threshold = 2}, 5);
  const auto r3 = acmr_parallel(n, n, {.rounds = 3, .threshold = 2}, 5);
  EXPECT_LE(r3.unallocated, r1.unallocated);
}

TEST(AcmrGreedy2Round, AllBallsPlaceWithLowLoad) {
  const std::uint64_t n = 1 << 14;
  const auto r = acmr_greedy_2round(n, n, 2, 5);
  EXPECT_EQ(r.rounds, 2u);
  // Two-round bound O(sqrt(log n / log log n)): single digits at this n,
  // and strictly better than single-choice.
  EXPECT_LT(r.max_load, single_choice(n, n, 5).max_load);
  EXPECT_LE(r.max_load, 8u);
  EXPECT_EQ(r.messages, n * 5);  // 2 announces + 2 rank replies + 1 commit
}

TEST(AcmrGreedy2Round, RankCommitBeatsBlindCommit) {
  // Committing to the lower-rank bin must not be worse than committing to
  // the first choice blindly (which is single-choice placement).
  const std::uint64_t n = 1 << 13;
  std::uint64_t greedy = 0, blind = 0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    greedy = std::max(greedy, acmr_greedy_2round(n, n, 2, s).max_load);
    blind = std::max(blind, single_choice(n, n, s).max_load);
  }
  EXPECT_LT(greedy, blind);
}

TEST(Stemann, TerminatesWithLowLoadForMEqualsN) {
  const std::uint64_t n = 1 << 14;
  const auto r = stemann_collision(n, n, 32, 3);
  EXPECT_EQ(r.unallocated, 0u);
  // Constant-ish rounds, max load <= rounds.
  EXPECT_LE(r.max_load, static_cast<std::uint64_t>(r.rounds));
  EXPECT_LE(r.rounds, 8u);
}

TEST(InfiniteGreedyD, StationaryMaxIsLogLogScale) {
  const std::uint64_t n = 1 << 12;
  const auto r = infinite_greedy_d(n, 2, 20 * n, 3);
  // ABKU: log log n / log d + O(1) ~ 3.6 + O(1) for n = 2^12.
  EXPECT_LE(r.max_load, 8u);
  EXPECT_GE(r.max_load, 2u);
}

TEST(InfiniteGreedyD, MoreChoicesFlatter) {
  const std::uint64_t n = 1 << 12;
  const auto d2 = infinite_greedy_d(n, 2, 10 * n, 4);
  const auto d4 = infinite_greedy_d(n, 4, 10 * n, 4);
  EXPECT_LE(d4.max_load, d2.max_load);
}

TEST(Bib, DeterministicForFixedSeed) {
  const auto a = greedy_d(10000, 10000, 2, 42);
  const auto b = greedy_d(10000, 10000, 2, 42);
  EXPECT_EQ(a.max_load, b.max_load);
  EXPECT_EQ(a.messages, b.messages);
}

}  // namespace
}  // namespace clb::bib
