// Tests for the weighted-task extension (BMS97 carried to the continuous
// setting): weight accounting in queue/engine, the weighted model, and the
// weight-based threshold balancer.
#include <gtest/gtest.h>

#include "core/threshold_balancer.hpp"
#include "models/single.hpp"
#include "models/trace.hpp"
#include "models/weighted.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace clb {
namespace {

TEST(WeightedQueue, TransferReportsMovedWeight) {
  sim::FifoQueue a, b;
  for (std::uint32_t i = 1; i <= 5; ++i) {
    a.push_back(sim::Task{0, 0, i});  // weights 1..5
  }
  const std::uint64_t moved = b.append_from_back_of(a, 2);  // weights 4, 5
  EXPECT_EQ(moved, 9u);
  EXPECT_EQ(b.at(0).weight, 4u);
  EXPECT_EQ(b.at(1).weight, 5u);
}

TEST(WeightedQueue, CountFromBackForWeight) {
  sim::FifoQueue q;
  for (const std::uint32_t w : {1u, 1u, 8u, 2u, 3u}) {
    q.push_back(sim::Task{0, 0, w});
  }
  // From the back: 3, 2, 8, 1, 1.
  EXPECT_EQ(q.count_from_back_for_weight(1), 1u);
  EXPECT_EQ(q.count_from_back_for_weight(3), 1u);
  EXPECT_EQ(q.count_from_back_for_weight(4), 2u);
  EXPECT_EQ(q.count_from_back_for_weight(6), 3u);
  EXPECT_EQ(q.count_from_back_for_weight(100), 5u);  // capped at size
  sim::FifoQueue empty;
  EXPECT_EQ(empty.count_from_back_for_weight(1), 0u);
}

TEST(WeightedEngine, TracksWeightLoads) {
  // Unit-weight trace: weight metrics must equal count metrics.
  models::TraceModel model({{3, 1}}, {{1, 0}});
  sim::Engine eng({.n = 2, .seed = 1}, &model, nullptr);
  eng.step_once();
  EXPECT_EQ(eng.weight_load(0), eng.load(0));
  EXPECT_EQ(eng.total_weight(), eng.total_load());
  EXPECT_EQ(eng.step_max_weight(), eng.step_max_load());
}

TEST(WeightedModel, WeightsFollowPmf) {
  models::WeightedSingleModel m(0.5, 0.2, {0.5, 0.25, 0.25});
  EXPECT_NEAR(m.mean_weight(), 1.75, 1e-9);
  EXPECT_EQ(m.max_weight(), 3u);
  EXPECT_NEAR(m.uniformity(), 1.75 / 3.0, 1e-9);
  std::uint64_t weight_counts[4] = {};
  std::uint64_t generated = 0;
  const std::uint64_t kTrials = 100000;
  for (std::uint64_t i = 0; i < kTrials; ++i) {
    const auto act = m.step_action(1, i, 0, 0, 0);
    if (act.generate) {
      ASSERT_GE(act.weight, 1u);
      ASSERT_LE(act.weight, 3u);
      ++weight_counts[act.weight];
      ++generated;
    }
  }
  EXPECT_NEAR(static_cast<double>(generated) / kTrials, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(weight_counts[1]) / generated, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(weight_counts[3]) / generated, 0.25, 0.02);
}

TEST(WeightedEngine, WeightedModelAccumulatesWeight) {
  models::WeightedSingleModel m(0.4, 0.1, {0.0, 0.0, 0.0, 1.0});  // weight 4
  sim::Engine eng({.n = 64, .seed = 2}, &m, nullptr);
  eng.run(500);
  EXPECT_EQ(eng.total_weight(), 4 * eng.total_load());
}

core::PhaseParams weighted_params(std::uint64_t n, double mean_weight) {
  return core::PhaseParams::from_n(n, core::Fractions{.scale = mean_weight});
}

TEST(WeightedBalancer, BoundsWeightedLoad) {
  const std::uint64_t n = 1 << 11;
  // Skewed weights: mostly 1, occasionally 8 (uniformity 0.23).
  models::WeightedSingleModel model(
      0.4, 0.1, {0.85, 0, 0, 0, 0, 0, 0, 0.15});
  const auto params = weighted_params(n, model.mean_weight());
  core::ThresholdBalancer balancer(
      {.params = params, .weight_based = true});
  sim::Engine eng({.n = n, .seed = 3}, &model, &balancer);
  eng.run(2500);
  EXPECT_LE(eng.running_max_weight(), 2 * params.T);
  EXPECT_EQ(eng.total_generated(), eng.total_consumed() + eng.total_load());
}

TEST(WeightedBalancer, CountBasedMisjudgesSkewedWeights) {
  // The point of the extension: with skewed weights, the count-based
  // balancer lets weighted hot spots grow past what the weight-based one
  // allows (same model, same seed).
  const std::uint64_t n = 1 << 11;
  auto make_model = [] {
    return models::WeightedSingleModel(
        0.4, 0.1, {0.85, 0, 0, 0, 0, 0, 0, 0.15});
  };
  auto m1 = make_model();
  auto m2 = make_model();
  const auto params = weighted_params(n, m1.mean_weight());
  core::ThresholdBalancer by_weight({.params = params, .weight_based = true});
  core::ThresholdBalancer by_count({.params = params, .weight_based = false});
  sim::Engine e1({.n = n, .seed = 4}, &m1, &by_weight);
  sim::Engine e2({.n = n, .seed = 4}, &m2, &by_count);
  e1.run(2500);
  e2.run(2500);
  EXPECT_LT(e1.running_max_weight(), e2.running_max_weight());
}

TEST(WeightedBalancer, UnitWeightsIdenticalToCountMode) {
  const std::uint64_t n = 1 << 10;
  models::SingleModel m1(0.4, 0.1), m2(0.4, 0.1);
  const auto params = core::PhaseParams::from_n(n);
  core::ThresholdBalancer by_weight({.params = params, .weight_based = true});
  core::ThresholdBalancer by_count({.params = params, .weight_based = false});
  sim::Engine e1({.n = n, .seed = 5}, &m1, &by_weight);
  sim::Engine e2({.n = n, .seed = 5}, &m2, &by_count);
  e1.run(800);
  e2.run(800);
  EXPECT_EQ(e1.total_load(), e2.total_load());
  EXPECT_EQ(e1.running_max_load(), e2.running_max_load());
  EXPECT_EQ(e1.messages().tasks_moved, e2.messages().tasks_moved);
}

TEST(WeightedBalancer, TransferRespectsWeightBudget) {
  // One heavy processor with weight-4 tasks: a weight budget of
  // transfer_amount moves ceil(transfer_amount / 4) tasks.
  const std::uint64_t n = 512;
  const auto params = core::PhaseParams::from_n(n);
  std::vector<std::vector<std::uint32_t>> gen(1,
      std::vector<std::uint32_t>(n, 0));
  gen[0][0] = static_cast<std::uint32_t>(params.heavy_threshold);  // count
  // TraceModel emits weight-1 tasks; use a small custom weighted trace via
  // deposit instead.
  models::TraceModel model({}, {});
  core::ThresholdBalancer balancer({.params = params, .weight_based = true});
  sim::Engine eng({.n = n, .seed = 6}, &model, &balancer);
  const auto tasks_needed = (params.heavy_threshold + 3) / 4;
  for (std::uint64_t i = 0; i < tasks_needed; ++i) {
    eng.deposit(0, sim::Task{0, 0, 4});
  }
  eng.step_once();  // phase runs; proc 0 has weight >= heavy threshold
  const auto moved = eng.messages().tasks_moved;
  EXPECT_EQ(moved, (params.transfer_amount + 3) / 4);
}

}  // namespace
}  // namespace clb
