// Unit tests for clb::stats.
#include <gtest/gtest.h>

#include "stats/histogram.hpp"
#include "stats/moments.hpp"
#include "stats/timeseries.hpp"
#include "stats/trial_set.hpp"

namespace clb::stats {
namespace {

TEST(Histogram, BasicCountsAndTotal) {
  IntHistogram h;
  h.add(3, 2);
  h.add(0);
  h.add(10);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count_at(3), 2u);
  EXPECT_EQ(h.count_at(7), 0u);
  EXPECT_EQ(h.max_value(), 10u);
}

TEST(Histogram, MeanAndTail) {
  IntHistogram h;
  h.add(1, 5);
  h.add(3, 5);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_DOUBLE_EQ(h.tail_at_least(2), 0.5);
  EXPECT_DOUBLE_EQ(h.tail_at_least(0), 1.0);
  EXPECT_DOUBLE_EQ(h.tail_at_least(4), 0.0);
}

TEST(Histogram, Quantiles) {
  IntHistogram h;
  for (std::uint64_t v = 0; v < 100; ++v) h.add(v);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), 49.0, 1.0);
  EXPECT_EQ(h.quantile(1.0), 99u);
  EXPECT_EQ(h.quantile(0.0), 0u);
}

TEST(Histogram, MergeAddsCounts) {
  IntHistogram a, b;
  a.add(1, 3);
  b.add(1, 2);
  b.add(5);
  a.merge(b);
  EXPECT_EQ(a.count_at(1), 5u);
  EXPECT_EQ(a.count_at(5), 1u);
  EXPECT_EQ(a.total(), 6u);
}

TEST(Histogram, EmptyBehaviour) {
  IntHistogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.max_value(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.tail_at_least(1), 0.0);
}

TEST(Moments, MeanVarianceMinMax) {
  OnlineMoments m;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.add(x);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_NEAR(m.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(m.min(), 2.0);
  EXPECT_DOUBLE_EQ(m.max(), 9.0);
  EXPECT_EQ(m.count(), 8u);
}

TEST(Moments, MergeEqualsSequential) {
  OnlineMoments all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = static_cast<double>(i * i % 37);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Moments, CiShrinksWithSamples) {
  OnlineMoments small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 3);
  for (int i = 0; i < 1000; ++i) large.add(i % 3);
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(TimeSeries, RecordsAtStride) {
  TimeSeries ts(10);
  for (std::uint64_t s = 0; s < 100; ++s) ts.record(s, static_cast<double>(s));
  EXPECT_EQ(ts.steps().size(), 10u);
  EXPECT_EQ(ts.steps()[3], 30u);
}

TEST(TimeSeries, ThinsWhenFull) {
  TimeSeries ts(1, /*max_points=*/64);
  for (std::uint64_t s = 0; s < 1000; ++s) ts.record(s, 1.0);
  EXPECT_LT(ts.steps().size(), 70u);
  EXPECT_GT(ts.stride(), 1u);
}

TEST(TrialSet, AggregatesNamedMetrics) {
  TrialSet set;
  set.add("max_load", 10);
  set.add("max_load", 14);
  set.add("messages", 100);
  EXPECT_DOUBLE_EQ(set.get("max_load").mean(), 12.0);
  EXPECT_EQ(set.get("messages").count(), 1u);
  EXPECT_TRUE(set.has("messages"));
  EXPECT_FALSE(set.has("absent"));
  EXPECT_EQ(set.get("absent").count(), 0u);
}

}  // namespace
}  // namespace clb::stats
