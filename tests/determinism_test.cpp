// Cross-thread determinism: the same seed must produce byte-identical
// results for any worker-pool size. The engine's generation pass keys all
// randomness on (seed, proc, step) via counter RNG precisely so the thread
// count cannot leak into results; these tests pin that contract through the
// obs metrics JSON export — the same artefact the bench harnesses and
// statcheck consume.
#include <gtest/gtest.h>

#include "clb.hpp"

namespace {

using namespace clb;

std::string engine_metrics_json(unsigned threads, std::uint64_t seed) {
  models::SingleModel model(0.4, 0.1);
  core::ThresholdBalancer balancer(
      {.params = core::PhaseParams::from_n(512)});
  sim::Engine engine({.n = 512, .seed = seed, .threads = threads}, &model,
                     &balancer);
  engine.run(400);
  obs::MetricsRegistry m;
  obs::snapshot_engine(m, engine, "det.");
  m.counter("det.phase_messages") = balancer.aggregate().total_messages;
  m.counter("det.phases") = balancer.aggregate().phases;
  return m.to_json();
}

TEST(Determinism, EngineMetricsJsonIdenticalAcrossThreadPools) {
  const std::string one = engine_metrics_json(1, 7);
  EXPECT_EQ(one, engine_metrics_json(2, 7));
  EXPECT_EQ(one, engine_metrics_json(8, 7));
}

TEST(Determinism, DifferentSeedsActuallyDiffer) {
  // Guards the test above against vacuity (e.g. an export that ignores the
  // run entirely would also be "identical").
  EXPECT_NE(engine_metrics_json(1, 7), engine_metrics_json(1, 8));
}

TEST(Determinism, AllInAirImmediateModeIdenticalAcrossThreadPools) {
  const auto fingerprint = [](unsigned threads) {
    models::SingleModel model(0.4, 0.1);
    baselines::AllInAirBalancer balancer;
    sim::Engine engine({.n = 256, .seed = 3, .threads = threads}, &model,
                       &balancer);
    engine.run(300);
    obs::MetricsRegistry m;
    obs::snapshot_engine(m, engine, "det.");
    return m.to_json();
  };
  const std::string one = fingerprint(1);
  EXPECT_EQ(one, fingerprint(2));
  EXPECT_EQ(one, fingerprint(8));
}

TEST(Determinism, CollisionGameReplaysIdentically) {
  collision::CollisionConfig cfg{5, 2, 1, 0};
  std::vector<std::uint32_t> reqs;
  for (std::uint32_t p = 0; p < 96; p += 3) reqs.push_back(p);

  collision::CollisionGame g1(1024, cfg);
  collision::CollisionGame g2(1024, cfg);
  const auto o1 = g1.run(reqs, 99);
  const auto o2 = g2.run(reqs, 99);
  EXPECT_EQ(o1.valid, o2.valid);
  EXPECT_EQ(o1.rounds_used, o2.rounds_used);
  EXPECT_EQ(o1.query_messages, o2.query_messages);
  EXPECT_EQ(o1.accept_messages, o2.accept_messages);
  EXPECT_EQ(o1.accepted, o2.accepted);
  EXPECT_EQ(o1.per_proc_accepts, o2.per_proc_accepts);

  // A reused game (stamp-based scratch state) must behave like a fresh one.
  const auto o3 = g1.run(reqs, 99);
  EXPECT_EQ(o1.accepted, o3.accepted);
}

}  // namespace
