// Unit tests for clb::analysis — Markov steady state and paper bounds.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/batch_chain.hpp"
#include "analysis/bounds.hpp"
#include "analysis/markov.hpp"
#include "analysis/occupancy.hpp"

namespace clb::analysis {
namespace {

TEST(Markov, GainLoseProbabilities) {
  SingleModelChain chain(0.4, 0.1);
  // p_gain = p(1-q) = 0.4*0.5 = 0.2; p_lose = q(1-p) = 0.5*0.6 = 0.3.
  EXPECT_NEAR(chain.p_gain(), 0.2, 1e-12);
  EXPECT_NEAR(chain.p_lose(), 0.3, 1e-12);
  EXPECT_NEAR(chain.rho(), 2.0 / 3.0, 1e-12);
}

TEST(Markov, StationaryIsProbabilityDistribution) {
  SingleModelChain chain(0.3, 0.2);
  double sum = 0;
  for (std::uint64_t i = 0; i < 400; ++i) sum += chain.stationary(i);
  EXPECT_NEAR(sum, 1.0, 1e-10);
}

TEST(Markov, TailIsGeometric) {
  SingleModelChain chain(0.4, 0.1);
  EXPECT_NEAR(chain.tail_at_least(0), 1.0, 1e-12);
  EXPECT_NEAR(chain.tail_at_least(3), std::pow(chain.rho(), 3.0), 1e-12);
  // Tail and pmf are consistent: P[X>=k] - P[X>=k+1] = v_k.
  EXPECT_NEAR(chain.tail_at_least(5) - chain.tail_at_least(6),
              chain.stationary(5), 1e-12);
}

TEST(Markov, ExpectedLoadMatchesGeometricMean) {
  SingleModelChain chain(0.4, 0.1);
  double mean = 0;
  for (std::uint64_t i = 1; i < 1000; ++i) {
    mean += static_cast<double>(i) * chain.stationary(i);
  }
  EXPECT_NEAR(chain.expected_load(), mean, 1e-9);
}

TEST(Markov, NumericMatchesClosedForm) {
  SingleModelChain chain(0.35, 0.15);
  const auto v = chain.stationary_numeric(200);
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(v[i], chain.stationary(i), 1e-6) << "state " << i;
  }
}

TEST(Markov, ExpectedMaxLoadGrowsLogarithmically) {
  SingleModelChain chain(0.4, 0.1);
  const double m1 = chain.expected_max_load(1 << 10);
  const double m2 = chain.expected_max_load(1 << 20);
  EXPECT_NEAR(m2 / m1, 2.0, 1e-9);  // log n doubles
}

TEST(Bounds, PaperTKnownValues) {
  EXPECT_NEAR(paper_T(65536), 16.0, 1e-9);          // (log2 log2 2^16)^2 = 16
  EXPECT_NEAR(paper_T(1ULL << 32), 25.0, 1e-9);     // 5^2
}

TEST(Bounds, BalancedBeatsUnbalancedForLargeN) {
  // Theorem 1's (log log n)^2 must grow slower than the unbalanced
  // Theta(log n) max load; crossover confirmed at n = 2^32.
  const std::uint64_t n = 1ULL << 32;
  EXPECT_LT(max_load_bound_single(n), unbalanced_max_load(n, 2.0 / 3.0));
}

TEST(Bounds, HeavyFractionVanishes) {
  EXPECT_LT(heavy_fraction_bound(1 << 20), 1e-5);
  EXPECT_GT(heavy_fraction_bound(1 << 20), 0.0);
  EXPECT_LT(heavy_fraction_bound(1ULL << 32), heavy_fraction_bound(1 << 16));
}

TEST(Bounds, CollisionRoundBoundLemma1Shape) {
  // (a,b,c) = (5,2,1): log log n / log 3 + 3.
  const double r = collision_round_bound(1 << 16, 5, 2, 1);
  EXPECT_NEAR(r, 4.0 / std::log2(3.0) + 3.0, 1e-9);
  EXPECT_LE(collision_step_bound_lemma1(1 << 16), 5.0 * 4.0 + 1e-9);
}

TEST(Bounds, ExpectedRequestsBoundIsSmallConstant) {
  // Lemma 7: a constant independent of n.
  const double small_n = expected_requests_bound(1 << 12);
  const double large_n = expected_requests_bound(1ULL << 40);
  EXPECT_LT(large_n, 64.0);
  EXPECT_NEAR(small_n, large_n, 8.0);  // levels differ but the series tails off
}

TEST(Bounds, MessagesPerPhaseSublinear) {
  const double frac20 = messages_per_phase_bound(1 << 20) / (1 << 20);
  const double frac12 = messages_per_phase_bound(1 << 12) / (1 << 12);
  EXPECT_LT(frac20, frac12);
  EXPECT_LT(frac20, 0.01);
}

TEST(Bounds, BibFormulas) {
  EXPECT_GT(bib_single_choice_max(1 << 20), bib_greedy_d_max(1 << 20, 2));
  EXPECT_GT(bib_greedy_d_max(1 << 20, 2), bib_greedy_d_max(1 << 20, 4));
}

TEST(BatchChain, StationaryIsDistribution) {
  const auto v = batch_chain_stationary({0.6, 0.25, 0.15}, 1, 128);
  double sum = 0;
  for (const double p : v) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(BatchChain, DegenerateBernoulliMatchesIntuition) {
  // G in {0, 1} with consume 1: L' = max(0, L + G - 1) never leaves 0.
  const auto v = batch_chain_stationary({0.6, 0.4}, 1, 32);
  EXPECT_NEAR(v[0], 1.0, 1e-9);
}

TEST(BatchChain, GeometricPmfHelper) {
  const auto pmf = geometric_model_pmf(4);
  EXPECT_NEAR(pmf[1], 0.25, 1e-12);
  EXPECT_NEAR(pmf[4], 1.0 / 32.0, 1e-12);
  // sum_{i=1..4} i 2^-(i+1) = 1/4 + 1/4 + 3/16 + 1/8 = 13/16.
  EXPECT_NEAR(pmf_mean(pmf), 13.0 / 16.0, 1e-12);
}

TEST(BatchChain, TailDecaysGeometrically) {
  const auto v = batch_chain_stationary(geometric_model_pmf(4), 1, 256);
  // Subcritical: the tail must decay; ratio roughly constant (geometric).
  const double r1 = pmf_tail_at_least(v, 10) / pmf_tail_at_least(v, 5);
  const double r2 = pmf_tail_at_least(v, 15) / pmf_tail_at_least(v, 10);
  EXPECT_LT(r1, 1.0);
  EXPECT_NEAR(r1, r2, 0.1);
}

TEST(BatchChain, RejectsSupercritical) {
  EXPECT_DEATH(batch_chain_stationary({0.0, 0.0, 1.0}, 1, 32),
               "subcritical");
}

TEST(Occupancy, PoissonTailBasics) {
  EXPECT_NEAR(poisson_tail_at_least(1.0, 0), 1.0, 1e-12);
  EXPECT_NEAR(poisson_tail_at_least(1.0, 1), 1.0 - std::exp(-1.0), 1e-12);
  // P[Poisson(1) >= 2] = 1 - 2/e.
  EXPECT_NEAR(poisson_tail_at_least(1.0, 2), 1.0 - 2.0 * std::exp(-1.0),
              1e-12);
  EXPECT_LT(poisson_tail_at_least(1.0, 20), 1e-15);
}

TEST(Occupancy, ExpectedMaxGrowsWithN) {
  const double m1 = expected_max_single_choice(1 << 10, 1 << 10);
  const double m2 = expected_max_single_choice(1 << 20, 1 << 20);
  EXPECT_GT(m2, m1);
  // Known ballpark for n = m = 2^16: max around 8 (log n / log log n * c).
  const double m16 = expected_max_single_choice(1 << 16, 1 << 16);
  EXPECT_GT(m16, 6.0);
  EXPECT_LT(m16, 11.0);
}

TEST(Occupancy, TypicalMaxConsistentWithExpectation) {
  for (const std::uint64_t n : {1u << 12, 1u << 16}) {
    const double e = expected_max_single_choice(n, n);
    const auto typical = typical_max_single_choice(n, n);
    EXPECT_NEAR(static_cast<double>(typical), e, 2.5) << n;
  }
}

TEST(Bounds, ChernoffAndHoeffdingDecay) {
  EXPECT_LT(chernoff_upper(10000, 0.5, 0.1), 1e-5);
  EXPECT_GT(chernoff_upper(100, 0.5, 0.1), chernoff_upper(10000, 0.5, 0.1));
  EXPECT_LT(hoeffding(10000, 0.05), 1e-10);
}

}  // namespace
}  // namespace clb::analysis
