// Telemetry layer contracts: the Pow2Histogram arithmetic, multi-threaded
// single-writer merge discipline (TSan target), conservation of runtime
// totals, the bit-identity guarantee (telemetry only observes — a
// deterministic run's outputs do not change when it is switched on), the
// snapshot JSONL emitter, the registry export, and worker attribution on
// trace events. All suites are named Telemetry* so the TSan CI job can
// select them with a single -R regex.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/params.hpp"
#include "models/single.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "rt/runtime.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace clb;

TEST(TelemetryHistogram, CountSumMeanMax) {
  obs::Pow2Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  h.add(0);
  h.add(1);
  h.add(7);
  h.add(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1008u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 252.0);
  // Buckets by bit_width: 0 -> bucket 0, 1 -> 1, 7 -> 3, 1000 -> 10.
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(10), 1u);
}

TEST(TelemetryHistogram, QuantileHitsBucketMidpoint) {
  obs::Pow2Histogram h;
  for (int i = 0; i < 99; ++i) h.add(4);  // bucket 3 = [4, 7]
  h.add(1 << 20);
  // p50 falls in the [4, 7] bucket; the midpoint is (4 + 7) / 2 = 5.
  EXPECT_EQ(h.quantile(0.50), 5u);
  // The maximum falls in the single-sample top bucket [2^20, 2^21 - 1]
  // (2^20 has bit_width 21, so it is the bottom of that bucket).
  EXPECT_GE(h.quantile(1.0), 1u << 20);
  EXPECT_LE(h.quantile(1.0), (1u << 21) - 1);
}

TEST(TelemetryHistogram, MergeConservesAndClearResets) {
  obs::Pow2Histogram a;
  obs::Pow2Histogram b;
  for (std::uint64_t v : {1u, 2u, 3u}) a.add(v);
  for (std::uint64_t v : {100u, 200u}) b.add(v);
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.sum(), 306u);
  EXPECT_EQ(a.max(), 200u);
  a.clear();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.sum(), 0u);
  EXPECT_EQ(a.max(), 0u);
  EXPECT_EQ(a.quantile(0.99), 0u);
}

TEST(TelemetryWorker, DerivedRatiosAndMerge) {
  obs::WorkerTelemetry t;
  t.steps = 10;
  t.step_ns = 1000;
  t.stall_ns = 250;
  EXPECT_EQ(t.work_ns(), 750u);
  EXPECT_DOUBLE_EQ(t.utilization(), 0.75);
  EXPECT_DOUBLE_EQ(t.stall_fraction(), 0.25);

  obs::WorkerTelemetry u;
  u.steps = 5;
  u.step_ns = 500;
  u.stall_ns = 500;
  u.consumed = 42;
  u.fabric_max_in_flight = 9;
  t.merge(u);
  EXPECT_EQ(t.steps, 15u);
  EXPECT_EQ(t.step_ns, 1500u);
  EXPECT_EQ(t.stall_ns, 750u);
  EXPECT_EQ(t.consumed, 42u);
  EXPECT_EQ(t.fabric_max_in_flight, 9u);  // maxes, not adds
  EXPECT_DOUBLE_EQ(t.utilization(), 0.5);
}

TEST(TelemetryWorker, ZeroStepsHasZeroRatios) {
  const obs::WorkerTelemetry t;
  EXPECT_EQ(t.work_ns(), 0u);
  EXPECT_DOUBLE_EQ(t.utilization(), 0.0);
  EXPECT_DOUBLE_EQ(t.stall_fraction(), 0.0);
}

// The runtime's concurrency pattern under TSan: 8 threads each own one
// WorkerTelemetry (single writer, no atomics), publish via a barrier, and
// the leader merges everyone's struct between cycles — exactly how the
// snapshot emitter reads foreign telemetry.
TEST(TelemetryMergeHammer, EightWorkersBarrierPublished) {
  constexpr unsigned kWorkers = 8;
  constexpr int kCycles = 50;
  constexpr int kAddsPerCycle = 200;
  std::vector<obs::WorkerTelemetry> telems(kWorkers);
  obs::WorkerTelemetry observed_total;  // leader-owned scratch
  util::PhaseBarrier barrier(kWorkers);
  std::vector<std::thread> threads;
  threads.reserve(kWorkers);
  for (unsigned w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      util::ThreadPool::bind_worker_index(w);
      obs::WorkerTelemetry& t = telems[w];
      for (int c = 0; c < kCycles; ++c) {
        for (int i = 0; i < kAddsPerCycle; ++i) {
          ++t.enq_self;
          ++t.deq;
          t.step_ns += 3;
          t.stall_ns += 1;
          t.stall_ns_hist.add(static_cast<std::uint64_t>(i));
        }
        ++t.steps;
        // Barrier-wait accounting writes into the worker's own struct
        // AFTER the timed barrier returns, so a separate publish barrier
        // must order them before the leader's read — the same
        // copy-publish-read-fence dance the runtime's snapshot emitter
        // does (reading right after the timed barrier is a data race;
        // TSan convicts it if this test gets that order wrong).
        t.stall_ns += barrier.arrive_and_wait_timed();
        ++t.barrier_waits;
        barrier.arrive_and_wait();  // publish the post-wait writes
        if (w == 0) {
          obs::WorkerTelemetry sum;
          for (const obs::WorkerTelemetry& other : telems) sum.merge(other);
          observed_total = sum;
        }
        barrier.arrive_and_wait();  // fence the leader's read
      }
    });
  }
  for (std::thread& t : threads) t.join();
  util::ThreadPool::bind_worker_index(0);

  obs::WorkerTelemetry total;
  for (const obs::WorkerTelemetry& t : telems) total.merge(t);
  const std::uint64_t expect_adds =
      static_cast<std::uint64_t>(kWorkers) * kCycles * kAddsPerCycle;
  EXPECT_EQ(total.enq_self, expect_adds);
  EXPECT_EQ(total.deq, expect_adds);
  EXPECT_EQ(total.steps, static_cast<std::uint64_t>(kWorkers) * kCycles);
  EXPECT_EQ(total.step_ns, expect_adds * 3);
  EXPECT_EQ(total.stall_ns_hist.count(), expect_adds);
  // The leader's last mid-run observation saw the same totals.
  EXPECT_EQ(observed_total.enq_self, expect_adds);
}

TEST(TelemetryBarrier, TimedWaitReportsBlockedTime) {
  util::PhaseBarrier barrier(2);
  std::uint64_t fast_ns = 0;
  std::thread fast([&] { fast_ns = barrier.arrive_and_wait_timed(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  barrier.arrive_and_wait_timed();
  fast.join();
  // The early arriver blocked for roughly the sleep (very loose floor —
  // shared CI boxes oversleep, they don't undersleep).
  EXPECT_GE(fast_ns, 1'000'000u);
}

TEST(TelemetryBarrier, BindWorkerIndexAdoptsThread) {
  std::thread t([] {
    EXPECT_EQ(util::ThreadPool::worker_index(), 0u);  // default off-pool
    util::ThreadPool::bind_worker_index(3);
    EXPECT_EQ(util::ThreadPool::worker_index(), 3u);
  });
  t.join();
}

// ---- runtime integration ----

rt::RtConfig det_config(std::uint64_t n, unsigned workers, bool telemetry,
                        std::uint32_t latency = 0) {
  rt::RtConfig cfg;
  cfg.n = n;
  cfg.seed = 7;
  cfg.workers = workers;
  cfg.deterministic = true;
  cfg.policy = rt::RtPolicy::kThreshold;
  core::Fractions fr;
  fr.t_min = 32;
  cfg.params = core::PhaseParams::from_n(n, fr);
  cfg.latency = latency;
  cfg.telemetry = telemetry;
  return cfg;
}

void spike(rt::Runtime& run, std::uint64_t n, std::uint64_t step) {
  const auto proc = static_cast<std::uint32_t>((7 + step * 13) % n);
  for (std::uint32_t i = 0; i < 40; ++i) {
    run.deposit(proc, sim::Task{static_cast<std::uint32_t>(step), proc, 1});
  }
}

TEST(TelemetryRuntime, TotalsConserved) {
  constexpr std::uint64_t kN = 256;
  constexpr unsigned kWorkers = 4;
  models::SingleModel model(0.45, 0.1);
  rt::Runtime run(det_config(kN, kWorkers, /*telemetry=*/true), &model);
  ASSERT_EQ(run.telemetry_enabled(), obs::kTelemetryCompiled);
  for (std::uint64_t s = 0; s < 96; s += 24) {
    spike(run, kN, s);
    run.run(24);
  }
  if (!obs::kTelemetryCompiled) GTEST_SKIP() << "built with CLB_TELEMETRY=OFF";

  const obs::WorkerTelemetry total = run.telemetry_total();
  EXPECT_EQ(total.consumed, run.total_consumed());
  EXPECT_EQ(total.generated, run.total_generated());
  // Every mailbox push was drained by run end (the step barrier orders
  // sends before the next drain, and the run ended on a step boundary).
  EXPECT_EQ(total.enq_self + total.enq_remote, total.deq);
  EXPECT_EQ(total.steps, static_cast<std::uint64_t>(kWorkers) * 96);
  EXPECT_GE(total.step_ns, total.stall_ns);
  EXPECT_EQ(total.step_ns_hist.count(), total.steps);

  // Workers march in lockstep: per-worker steps and phases are identical.
  for (unsigned w = 0; w < kWorkers; ++w) {
    const obs::WorkerTelemetry& t = run.worker_telemetry(w);
    EXPECT_EQ(t.steps, 96u) << "worker " << w;
    EXPECT_EQ(t.phases, run.worker_telemetry(0).phases) << "worker " << w;
  }
}

TEST(TelemetryRuntime, DisabledRunsRecordNothing) {
  constexpr std::uint64_t kN = 128;
  models::SingleModel model(0.45, 0.1);
  rt::Runtime run(det_config(kN, 2, /*telemetry=*/false), &model);
  EXPECT_FALSE(run.telemetry_enabled());
  run.run(32);
  const obs::WorkerTelemetry total = run.telemetry_total();
  EXPECT_EQ(total.steps, 0u);
  EXPECT_EQ(total.step_ns, 0u);
  EXPECT_EQ(total.deq, 0u);
  EXPECT_TRUE(run.telemetry_jsonl().empty());
}

struct Outputs {
  std::vector<std::uint64_t> consumed;
  std::vector<std::uint64_t> loads;
  std::vector<rt::LedgerEntry> ledger;
  std::uint64_t running_max = 0;
  std::uint64_t protocol_msgs = 0;
  std::size_t phases = 0;
};

Outputs run_and_collect(std::uint64_t n, unsigned workers, bool telemetry,
                        std::uint32_t latency) {
  models::SingleModel model(0.45, 0.1);
  rt::RtConfig cfg = det_config(n, workers, telemetry, latency);
  cfg.telemetry_interval = telemetry ? 16 : 0;
  rt::Runtime run(cfg, &model);
  for (std::uint64_t s = 0; s < 96; s += 24) {
    spike(run, n, s);
    run.run(24);
  }
  Outputs o;
  for (std::uint64_t p = 0; p < n; ++p) {
    o.consumed.push_back(run.processor(p).consumed);
    o.loads.push_back(run.load(p));
  }
  o.ledger = run.ledger();
  o.running_max = run.running_max_load();
  o.protocol_msgs = run.messages().protocol_total();
  o.phases = run.phases().size();
  return o;
}

void expect_identical(const Outputs& a, const Outputs& b) {
  EXPECT_EQ(a.consumed, b.consumed);
  EXPECT_EQ(a.loads, b.loads);
  EXPECT_EQ(a.running_max, b.running_max);
  EXPECT_EQ(a.protocol_msgs, b.protocol_msgs);
  EXPECT_EQ(a.phases, b.phases);
  ASSERT_EQ(a.ledger.size(), b.ledger.size());
  for (std::size_t i = 0; i < a.ledger.size(); ++i) {
    EXPECT_EQ(a.ledger[i].step, b.ledger[i].step) << "ledger[" << i << "]";
    EXPECT_EQ(a.ledger[i].from, b.ledger[i].from) << "ledger[" << i << "]";
    EXPECT_EQ(a.ledger[i].to, b.ledger[i].to) << "ledger[" << i << "]";
  }
}

// Telemetry only observes: a deterministic run's protocol outputs are
// bit-identical with telemetry (and its snapshot emitter) on or off.
TEST(TelemetryDeterminism, InstantModeBitIdenticalOnVsOff) {
  const Outputs off = run_and_collect(256, 3, false, 0);
  const Outputs on = run_and_collect(256, 3, true, 0);
  expect_identical(off, on);
}

TEST(TelemetryDeterminism, LatencyFabricBitIdenticalOnVsOff) {
  const Outputs off = run_and_collect(256, 3, false, 2);
  const Outputs on = run_and_collect(256, 3, true, 2);
  expect_identical(off, on);
}

TEST(TelemetryDeterminism, CountersReproduceAcrossRuns) {
  if (!obs::kTelemetryCompiled) GTEST_SKIP() << "built with CLB_TELEMETRY=OFF";
  for (const std::uint32_t latency : {0u, 2u}) {
    models::SingleModel m1(0.45, 0.1);
    models::SingleModel m2(0.45, 0.1);
    rt::Runtime a(det_config(256, 2, true, latency), &m1);
    rt::Runtime b(det_config(256, 2, true, latency), &m2);
    a.run(64);
    b.run(64);
    for (unsigned w = 0; w < 2; ++w) {
      const obs::WorkerTelemetry& ta = a.worker_telemetry(w);
      const obs::WorkerTelemetry& tb = b.worker_telemetry(w);
      // Everything except wall-clock nanoseconds is deterministic.
      EXPECT_EQ(ta.steps, tb.steps);
      EXPECT_EQ(ta.enq_self, tb.enq_self);
      EXPECT_EQ(ta.enq_remote, tb.enq_remote);
      EXPECT_EQ(ta.deq, tb.deq);
      EXPECT_EQ(ta.drains, tb.drains);
      EXPECT_EQ(ta.generated, tb.generated);
      EXPECT_EQ(ta.consumed, tb.consumed);
      EXPECT_EQ(ta.phases, tb.phases);
      EXPECT_EQ(ta.drain_batch_hist.sum(), tb.drain_batch_hist.sum());
      EXPECT_EQ(ta.phase_steps_hist.sum(), tb.phase_steps_hist.sum());
    }
  }
}

TEST(TelemetrySnapshots, EmitterWritesOneLinePerWorkerPerInterval) {
  if (!obs::kTelemetryCompiled) GTEST_SKIP() << "built with CLB_TELEMETRY=OFF";
  constexpr unsigned kWorkers = 2;
  models::SingleModel model(0.45, 0.1);
  rt::RtConfig cfg = det_config(128, kWorkers, /*telemetry=*/true);
  cfg.telemetry_interval = 8;
  cfg.telemetry_tag = "snaptest";
  rt::Runtime run(cfg, &model);
  run.run(32);  // snapshots after steps 7, 15, 23, 31
  const std::string jsonl = run.telemetry_jsonl();
  std::size_t lines = 0;
  std::size_t tagged = 0;
  for (std::size_t pos = 0; (pos = jsonl.find('\n', pos)) != std::string::npos;
       ++pos) {
    ++lines;
  }
  for (std::size_t pos = 0;
       (pos = jsonl.find("\"tag\":\"snaptest\"", pos)) != std::string::npos;
       ++pos) {
    ++tagged;
  }
  EXPECT_EQ(lines, 4u * kWorkers);
  EXPECT_EQ(tagged, 4u * kWorkers);
  EXPECT_NE(jsonl.find("\"kind\":\"rt_telemetry\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"worker\":1"), std::string::npos);
}

TEST(TelemetryExport, RegistryGaugesMatchTotals) {
  if (!obs::kTelemetryCompiled) GTEST_SKIP() << "built with CLB_TELEMETRY=OFF";
  constexpr unsigned kWorkers = 3;
  models::SingleModel model(0.45, 0.1);
  rt::Runtime run(det_config(256, kWorkers, /*telemetry=*/true), &model);
  for (std::uint64_t s = 0; s < 64; s += 16) {
    spike(run, 256, s);
    run.run(16);
  }
  obs::MetricsRegistry m;
  run.export_telemetry(m, "t.");
  EXPECT_EQ(m.counter("t.consumed"), run.total_consumed());
  EXPECT_EQ(m.counter("t.steps"),
            static_cast<std::uint64_t>(kWorkers) * 64);
  EXPECT_EQ(m.counter("t.w0.steps"), 64u);
  EXPECT_EQ(m.counter("t.w2.steps"), 64u);
  EXPECT_EQ(m.gauge("t.workers"), static_cast<double>(kWorkers));
  EXPECT_GE(m.gauge("t.utilization_mean"), 0.0);
  EXPECT_LE(m.gauge("t.utilization_mean"), 1.0);
  EXPECT_GE(m.gauge("t.queue_imbalance"), 1.0);
  EXPECT_GE(m.gauge("t.barrier_stall_fraction"), 0.0);
  EXPECT_LE(m.gauge("t.barrier_stall_fraction"), 1.0);
}

TEST(TelemetryExport, SnapshotLineCarriesFullSchema) {
  obs::WorkerTelemetry t;
  t.steps = 3;
  t.consumed = 11;
  std::string out;
  obs::append_telemetry_snapshot(out, "tagx", 42, 1, 2, 99, t);
  for (const char* key :
       {"\"kind\":\"rt_telemetry\"", "\"tag\":\"tagx\"", "\"step\":42",
        "\"worker\":1", "\"workers\":2", "\"shard_load\":99", "\"steps\":3",
        "\"consumed\":11", "\"phases\":0"}) {
    EXPECT_NE(out.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_EQ(out.back(), '\n');
  // Untagged lines omit the tag key entirely.
  std::string bare;
  obs::append_telemetry_snapshot(bare, "", 0, 0, 1, 0, t);
  EXPECT_EQ(bare.find("\"tag\""), std::string::npos);
}

#if CLB_TRACE_ENABLED
TEST(TelemetryTrace, RtEventsCarryWorkerLanes) {
  if (!obs::kTelemetryCompiled) GTEST_SKIP() << "built with CLB_TELEMETRY=OFF";
  obs::TraceSink sink;
  models::SingleModel model(0.45, 0.1);
  rt::RtConfig cfg = det_config(128, 2, /*telemetry=*/true);
  cfg.trace = &sink;
  rt::Runtime run(cfg, &model);
  run.run(16);
  bool saw_worker1_lane = false;
  std::uint64_t lane_events = 0;
  for (const obs::TraceEvent& e : sink.snapshot()) {
    if (!obs::event_kind_worker_lane(e.kind)) continue;
    ++lane_events;
    EXPECT_LT(e.worker, 2u);
    if (e.worker == 1) saw_worker1_lane = true;
  }
  EXPECT_GT(lane_events, 0u);
  EXPECT_TRUE(saw_worker1_lane);
  const std::string jsonl = sink.to_jsonl();
  EXPECT_NE(jsonl.find("\"kind\":\"worker_step\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"barrier_wait\""), std::string::npos);
  const std::string chrome = sink.to_chrome_trace();
  EXPECT_NE(chrome.find("worker 1"), std::string::npos);  // lane metadata
}
#endif  // CLB_TRACE_ENABLED

}  // namespace
