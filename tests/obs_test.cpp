// Tests for the observability layer (src/obs): trace sink semantics and
// emitted-format validity, metrics registry, run manifests, and the
// Recorder bundle, plus an engine integration check that traced event
// counts match the simulator's own accounting.
//
// The JSON the emitters produce is validated with a small recursive-descent
// parser defined below — we parse everything we emit, so a syntax error in
// any writer fails here rather than in chrome://tracing.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/threshold_balancer.hpp"
#include "models/single.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "obs/views.hpp"
#include "sim/engine.hpp"

namespace clb::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser (objects, arrays, strings, numbers, booleans, null).
// Only what the tests need: structural validity plus lookups.
// ---------------------------------------------------------------------------

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  [[nodiscard]] const Json& at(const std::string& k) const {
    auto it = object.find(k);
    EXPECT_NE(it, object.end()) << "missing key: " << k;
    static const Json null_json;
    return it == object.end() ? null_json : it->second;
  }
  [[nodiscard]] bool has(const std::string& k) const {
    return object.count(k) != 0;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  bool parse(Json* out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value(Json* out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': out->type = Json::Type::kString; return string(&out->string);
      case 't': out->type = Json::Type::kBool; out->boolean = true;
                return literal("true");
      case 'f': out->type = Json::Type::kBool; out->boolean = false;
                return literal("false");
      case 'n': out->type = Json::Type::kNull; return literal("null");
      default:  return number(out);
    }
  }
  bool object(Json* out) {
    out->type = Json::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (peek('}')) { ++pos_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      Json v;
      if (!value(&v)) return false;
      out->object.emplace(std::move(key), std::move(v));
      skip_ws();
      if (peek(',')) { ++pos_; continue; }
      return expect('}');
    }
  }
  bool array(Json* out) {
    out->type = Json::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (peek(']')) { ++pos_; return true; }
    while (true) {
      skip_ws();
      Json v;
      if (!value(&v)) return false;
      out->array.push_back(std::move(v));
      skip_ws();
      if (peek(',')) { ++pos_; continue; }
      return expect(']');
    }
  }
  bool string(std::string* out) {
    if (!expect('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (pos_ + 4 >= s_.size()) return false;
            *out += '?';  // escaped code point; content not needed by tests
            pos_ += 4;
            break;
          }
          default: return false;
        }
        ++pos_;
      } else {
        *out += s_[pos_++];
      }
    }
    return expect('"');
  }
  bool number(Json* out) {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->type = Json::Type::kNumber;
    out->number = std::stod(std::string(s_.substr(start, pos_ - start)));
    return true;
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool peek(char c) const { return pos_ < s_.size() && s_[pos_] == c; }
  bool expect(char c) {
    if (!peek(c)) return false;
    ++pos_;
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

Json parse_or_fail(const std::string& text) {
  Json j;
  EXPECT_TRUE(JsonParser(text).parse(&j)) << "invalid JSON: " << text;
  return j;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

std::string read_file(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << "cannot open " << path;
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

TEST(JsonWriter, NestedStructuresRoundTrip) {
  JsonWriter w;
  w.begin_object()
      .member("name", "tr\"icky\\\n")
      .member("count", std::uint64_t{42})
      .member("neg", std::int64_t{-7})
      .member("pi", 3.25)
      .member("flag", true)
      .key("nan");
  w.value(0.0 / 0.0);
  w.key("list").begin_array().value(std::uint64_t{1}).value(std::uint64_t{2});
  w.begin_object().member("deep", "yes").end_object();
  w.end_array().end_object();

  const Json j = parse_or_fail(w.str());
  EXPECT_EQ(j.at("name").string, "tr\"icky\\\n");
  EXPECT_EQ(j.at("count").number, 42);
  EXPECT_EQ(j.at("neg").number, -7);
  EXPECT_EQ(j.at("pi").number, 3.25);
  EXPECT_TRUE(j.at("flag").boolean);
  EXPECT_EQ(j.at("nan").type, Json::Type::kNull);  // NaN must not leak out
  ASSERT_EQ(j.at("list").array.size(), 3u);
  EXPECT_EQ(j.at("list").array[2].at("deep").string, "yes");
}

// ---------------------------------------------------------------------------
// TraceSink semantics
// ---------------------------------------------------------------------------

TEST(TraceSink, RecordsAndSortsByStep) {
  TraceSink sink;
  sink.emit(EventKind::kTransfer, /*step=*/9, 1, 2, 3);
  sink.emit(EventKind::kPhaseBegin, /*step=*/0, 0, 0, 0, 5, 10);
  sink.emit(EventKind::kQuery, /*step=*/4, 7, 8);
#if CLB_TRACE_ENABLED
  EXPECT_EQ(sink.event_count(), 3u);

  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].step, 0u);
  EXPECT_EQ(events[1].step, 4u);
  EXPECT_EQ(events[2].step, 9u);
  EXPECT_EQ(events[2].kind, EventKind::kTransfer);
#endif

  sink.clear();
  EXPECT_EQ(sink.event_count(), 0u);
}

TEST(TraceSink, TimeBaseShiftsSubsequentEvents) {
  TraceSink sink;
  sink.emit(EventKind::kQuery, 3);
  sink.set_time_base(100);
  sink.emit(EventKind::kQuery, 3);
#if CLB_TRACE_ENABLED
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].step, 3u);
  EXPECT_EQ(events[1].step, 103u);
#endif
}

TEST(TraceSink, DisabledSinkRecordsNothing) {
  TraceSink sink({.enabled = false});
  sink.emit(EventKind::kTransfer, 1, 2, 3);
  CLB_TRACE_EVENT(&sink, EventKind::kQuery, 1, 2, 3);
  EXPECT_EQ(sink.event_count(), 0u);
  EXPECT_EQ(sink.events_seen(), 0u);
}

TEST(TraceSink, NullSinkMacroIsSafe) {
  [[maybe_unused]] TraceSink* sink = nullptr;
  CLB_TRACE_EVENT(sink, EventKind::kTransfer, 1, 2, 3);  // must not crash
}

TEST(TraceSink, SamplingKeepsEveryKthButAllPhaseEvents) {
  TraceSink sink({.enabled = true, .sample_every = 4});
  for (int i = 0; i < 100; ++i) {
    sink.emit(EventKind::kQuery, static_cast<std::uint64_t>(i));
  }
  for (int i = 0; i < 10; ++i) {
    sink.emit(EventKind::kPhaseBegin, static_cast<std::uint64_t>(i));
    sink.emit(EventKind::kPhaseEnd, static_cast<std::uint64_t>(i));
  }
#if CLB_TRACE_ENABLED
  std::uint64_t queries = 0, phases = 0;
  for (const auto& e : sink.snapshot()) {
    (e.kind == EventKind::kQuery ? queries : phases)++;
  }
  EXPECT_EQ(phases, 20u);  // structural events are exempt from sampling
  EXPECT_NEAR(static_cast<double>(queries), 25.0, 1.0);
  EXPECT_EQ(sink.events_seen(), 120u);
#endif
}

TEST(TraceSink, MultiThreadedEmitsAllArrive) {
  TraceSink sink;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink, t] {
      for (int i = 0; i < kPerThread; ++i) {
        sink.emit(EventKind::kTransfer, static_cast<std::uint64_t>(i),
                  static_cast<std::uint32_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
#if CLB_TRACE_ENABLED
  EXPECT_EQ(sink.event_count(), kThreads * kPerThread);
  const auto events = sink.snapshot();
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].step, events[i].step);  // snapshot stays sorted
  }
#endif
}

// ---------------------------------------------------------------------------
// Emitted formats
// ---------------------------------------------------------------------------

TEST(TraceFormats, JsonlLinesAreSelfDescribingObjects) {
  TraceSink sink;
  sink.emit(EventKind::kPhaseBegin, 0, 0, 0, /*phase=*/0, /*heavy=*/3,
            /*light=*/5);
  sink.emit(EventKind::kQuery, 1, /*src=*/2, /*dst=*/9, /*phase=*/0,
            /*level=*/1);
  sink.emit(EventKind::kTransfer, 2, /*from=*/2, /*to=*/9, /*count=*/4);
  sink.emit(EventKind::kPhaseEnd, 3, 0, 0, /*phase=*/0, /*matched=*/3,
            /*unmatched=*/0);

  const auto lines = split_lines(sink.to_jsonl());
#if CLB_TRACE_ENABLED
  ASSERT_EQ(lines.size(), 4u);
  const Json begin = parse_or_fail(lines[0]);
  EXPECT_EQ(begin.at("kind").string, "phase_begin");
  EXPECT_EQ(begin.at("step").number, 0);
  EXPECT_EQ(begin.at("heavy").number, 3);
  EXPECT_EQ(begin.at("light").number, 5);

  const Json query = parse_or_fail(lines[1]);
  EXPECT_EQ(query.at("kind").string, "query");
  EXPECT_EQ(query.at("src").number, 2);
  EXPECT_EQ(query.at("dst").number, 9);

  const Json transfer = parse_or_fail(lines[2]);
  EXPECT_EQ(transfer.at("kind").string, "transfer");
  EXPECT_EQ(transfer.at("from").number, 2);
  EXPECT_EQ(transfer.at("to").number, 9);
  EXPECT_EQ(transfer.at("count").number, 4);
#else
  EXPECT_TRUE(lines.empty());
#endif
}

TEST(TraceFormats, ChromeTraceIsValidAndPairsPhases) {
  TraceSink sink;
  sink.emit(EventKind::kPhaseBegin, 0, 0, 0, 0, 3, 5);
  sink.emit(EventKind::kQuery, 2, 2, 9, 0, 1);
  sink.emit(EventKind::kPhaseEnd, 7, 0, 0, 0, 3, 0);
  sink.emit(EventKind::kPhaseBegin, 8, 0, 0, 1, 2, 6);
  sink.emit(EventKind::kPhaseEnd, 8, 0, 0, 1, 2, 0);  // zero-length phase

  const Json trace = parse_or_fail(sink.to_chrome_trace());
  EXPECT_EQ(trace.at("displayTimeUnit").string, "ms");
  const auto& events = trace.at("traceEvents").array;
#if CLB_TRACE_ENABLED
  std::uint64_t slices = 0, instants = 0, metadata = 0;
  for (const auto& e : events) {
    const std::string& ph = e.at("ph").string;
    if (ph == "X") {
      ++slices;
      EXPECT_GE(e.at("dur").number, 1) << "slices must be visible";
      EXPECT_TRUE(e.has("ts"));
    } else if (ph == "i") {
      ++instants;
      EXPECT_EQ(e.at("s").string, "t");
    } else if (ph == "M") {
      ++metadata;
    }
  }
  EXPECT_EQ(slices, 2u);    // one per begin/end pair
  EXPECT_EQ(instants, 1u);  // the query
  EXPECT_GE(metadata, 1u);  // process/thread names
#else
  for (const auto& e : events) {
    EXPECT_EQ(e.at("ph").string, "M");  // metadata only, no recorded events
  }
#endif
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CreateOrGetReturnsSameObject) {
  MetricsRegistry reg;
  std::uint64_t& a = reg.counter("requests");
  a += 3;
  std::uint64_t& b = reg.counter("requests");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.counter_value("requests"), 3u);
  EXPECT_EQ(reg.size(), 1u);

  reg.gauge("load") = 2.5;
  EXPECT_EQ(reg.gauge_value("load"), 2.5);
  EXPECT_TRUE(reg.contains("load"));
  EXPECT_FALSE(reg.contains("absent"));
}

TEST(MetricsRegistryDeathTest, KindChangeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_DEATH(reg.gauge("x"), "re-registered");
}

TEST(MetricsRegistry, ViewsReadLiveValues) {
  MetricsRegistry reg;
  std::uint64_t backing = 0;
  double ratio = 0.0;
  reg.expose_counter("live.count", &backing);
  reg.expose_gauge("live.ratio", [&ratio] { return ratio; });

  backing = 11;
  ratio = 0.5;
  EXPECT_EQ(reg.counter_value("live.count"), 11u);
  EXPECT_EQ(reg.gauge_value("live.ratio"), 0.5);

  backing = 12;  // the registry must not have copied
  const Json j = parse_or_fail(reg.to_json());
  EXPECT_EQ(j.at("counters").at("live.count").number, 12);
  EXPECT_EQ(j.at("gauges").at("live.ratio").number, 0.5);
}

TEST(MetricsRegistry, HistogramExportCarriesQuantiles) {
  MetricsRegistry reg;
  auto& h = reg.histogram("latency");
  for (std::uint64_t v = 1; v <= 100; ++v) h.add(v);

  const Json j = parse_or_fail(reg.to_json());
  const Json& lat = j.at("histograms").at("latency");
  EXPECT_EQ(lat.at("count").number, 100);
  EXPECT_EQ(lat.at("max").number, 100);
  EXPECT_NEAR(lat.at("mean").number, 50.5, 0.01);
  EXPECT_NEAR(lat.at("p50").number, 50, 2);
  EXPECT_NEAR(lat.at("p99").number, 99, 2);
  EXPECT_TRUE(lat.has("p90"));
  EXPECT_TRUE(lat.has("p999"));
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

TEST(Manifest, RoundTripsThroughJson) {
  Manifest man("bench_test");
  man.set_command({"bench_test", "--n=1024", "--seed=7"});
  man.set_seed(7);
  man.set_param("n", std::uint64_t{1024});
  man.set_param("beta", 0.01);
  man.set_param("model", "single");
  man.set_param("weighted", false);
  man.set_param("n", std::uint64_t{2048});  // overwrite, not duplicate
  man.add_output("metrics", "runs/m.json");
  man.set_wall_seconds(1.5);

  const Json j = parse_or_fail(man.to_json());
  EXPECT_EQ(j.at("schema").string, "clb.run.v1");
  EXPECT_EQ(j.at("tool").string, "bench_test");
  ASSERT_EQ(j.at("command").array.size(), 3u);
  EXPECT_EQ(j.at("command").array[1].string, "--n=1024");
  EXPECT_EQ(j.at("seed").number, 7);
  EXPECT_EQ(j.at("params").at("n").number, 2048);
  EXPECT_EQ(j.at("params").at("beta").number, 0.01);
  EXPECT_EQ(j.at("params").at("model").string, "single");
  EXPECT_FALSE(j.at("params").at("weighted").boolean);
  ASSERT_EQ(j.at("outputs").array.size(), 1u);
  EXPECT_EQ(j.at("outputs").array[0].at("kind").string, "metrics");
  EXPECT_EQ(j.at("wall_seconds").number, 1.5);

  // Build provenance is always present.
  EXPECT_FALSE(j.at("build").at("git_sha").string.empty());
  EXPECT_EQ(j.at("build").at("trace_compiled").boolean,
            CLB_TRACE_ENABLED != 0);
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

TEST(Recorder, JsonlSiblingSwapsExtension) {
  EXPECT_EQ(jsonl_sibling("runs/a.trace.json"), "runs/a.trace.jsonl");
  EXPECT_EQ(jsonl_sibling("trace"), "trace.jsonl");
  EXPECT_EQ(jsonl_sibling("a.b/c"), "a.b/c.jsonl");
}

TEST(Recorder, InactiveWithoutPathsButSinkUsable) {
  RecorderConfig cfg;
  cfg.tool = "t";
  Recorder rec(std::move(cfg));
  EXPECT_FALSE(rec.active());
  ASSERT_NE(rec.trace(), nullptr);
  EXPECT_FALSE(rec.trace()->enabled());
  CLB_TRACE_EVENT(rec.trace(), EventKind::kQuery, 1);
  EXPECT_EQ(rec.trace()->event_count(), 0u);
  EXPECT_TRUE(rec.finish());  // nothing to write, nothing to fail
}

TEST(Recorder, FinishWritesEveryRequestedOutput) {
  const std::string dir = ::testing::TempDir() + "clb_obs_recorder";
  RecorderConfig cfg;
  cfg.tool = "test_tool";
  cfg.command = {"test_tool", "--x=1"};
  cfg.trace_path = dir + "/t.trace.json";
  cfg.metrics_path = dir + "/m.json";
  cfg.manifest_path = dir + "/run.json";
  Recorder rec(cfg);
  EXPECT_TRUE(rec.active());
  // The runtime switch follows the requested path; with CLB_TRACE=OFF the
  // sink is enabled but records nothing, so the files stay valid-but-empty.
  EXPECT_TRUE(rec.trace()->enabled());

  rec.trace()->emit(EventKind::kPhaseBegin, 0);
  rec.trace()->emit(EventKind::kPhaseEnd, 5);
  rec.metrics().counter("done") = 1;
  rec.manifest().set_seed(3);
  ASSERT_TRUE(rec.finish());

  const Json trace = parse_or_fail(read_file(cfg.trace_path));
  EXPECT_EQ(trace.at("displayTimeUnit").string, "ms");
  const Json metrics = parse_or_fail(read_file(cfg.metrics_path));
  EXPECT_EQ(metrics.at("counters").at("done").number, 1);
  const Json man = parse_or_fail(read_file(cfg.manifest_path));
  EXPECT_EQ(man.at("tool").string, "test_tool");
  EXPECT_GE(man.at("wall_seconds").number, 0.0);
  // The manifest lists the trace, its JSONL twin, and the metrics file.
  EXPECT_EQ(man.at("outputs").array.size(), 3u);
  for (const auto& line : split_lines(read_file(jsonl_sibling(cfg.trace_path)))) {
    parse_or_fail(line);
  }
}

// ---------------------------------------------------------------------------
// Engine + balancer integration
// ---------------------------------------------------------------------------

TEST(ObsIntegration, TracedRunMatchesEngineAccounting) {
  constexpr std::uint64_t kN = 1 << 10;
  TraceSink sink;  // sample_every = 1: every event must arrive
  MetricsRegistry reg;
  models::SingleModel model(0.4, 0.1);
  core::ThresholdBalancer balancer({.params = core::PhaseParams::from_n(kN),
                                    .trace = &sink,
                                    .metrics = &reg});
  sim::Engine eng({.n = kN, .seed = 11, .trace = &sink}, &model, &balancer);
  eng.run(300);

#if CLB_TRACE_ENABLED
  std::uint64_t begins = 0, ends = 0, transfers = 0, id_msgs = 0;
  for (const auto& e : sink.snapshot()) {
    switch (e.kind) {
      case EventKind::kPhaseBegin: ++begins; break;
      case EventKind::kPhaseEnd: ++ends; break;
      case EventKind::kTransfer: ++transfers; break;
      case EventKind::kIdMessage: ++id_msgs; break;
      default: break;
    }
  }
  // Every closed phase traced exactly once; one phase may still be open.
  EXPECT_EQ(ends, balancer.aggregate().phases);
  EXPECT_GE(begins, ends);
  EXPECT_LE(begins, ends + 1);
  // One transfer event per transfer message the engine counted.
  EXPECT_EQ(transfers, eng.messages().transfers);
  EXPECT_EQ(id_msgs, eng.messages().id_messages);

  // The attached registry collected per-phase distributions.
  EXPECT_TRUE(reg.contains("core.phase.heavy"));
  const Json j = parse_or_fail(reg.to_json());
  EXPECT_EQ(j.at("histograms").at("core.phase.messages").at("count").number,
            static_cast<double>(balancer.aggregate().phases));
#endif

  // Live views over the same run export cleanly.
  expose_engine(reg, eng);
  expose_aggregate_stats(reg, balancer.aggregate());
  const Json live = parse_or_fail(reg.to_json());
  EXPECT_EQ(live.at("counters").at("sim.engine.messages.transfers").number,
            static_cast<double>(eng.messages().transfers));
  EXPECT_EQ(live.at("counters").at("core.phases.count").number,
            static_cast<double>(balancer.aggregate().phases));
}

TEST(ObsIntegration, IdenticalRunsProduceIdenticalTraces) {
  auto run_trace = [] {
    TraceSink sink;
    models::SingleModel model(0.4, 0.1);
    core::ThresholdBalancer balancer(
        {.params = core::PhaseParams::from_n(512), .trace = &sink});
    sim::Engine eng({.n = 512, .seed = 5, .trace = &sink}, &model, &balancer);
    eng.run(200);
    return sink.to_jsonl();
  };
  EXPECT_EQ(run_trace(), run_trace());  // counter-RNG: bit-for-bit replay
}

}  // namespace
}  // namespace clb::obs
