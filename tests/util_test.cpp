// Unit tests for clb::util — math helpers, tables, CLI, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace clb::util {
namespace {

TEST(Math, Ilog2ExactPowers) {
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(1024), 10u);
  EXPECT_EQ(ilog2(1ULL << 63), 63u);
}

TEST(Math, Ilog2Floors) {
  EXPECT_EQ(ilog2(3), 1u);
  EXPECT_EQ(ilog2(1023), 9u);
  EXPECT_EQ(ilog2(1025), 10u);
}

TEST(Math, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(65));
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
}

TEST(Math, Log2Log2KnownValues) {
  EXPECT_NEAR(log2log2(16), 2.0, 1e-12);        // log2(4)
  EXPECT_NEAR(log2log2(65536), 4.0, 1e-12);     // log2(16)
  EXPECT_NEAR(log2log2(1ULL << 32), 5.0, 1e-12);
}

TEST(Math, RoundAtLeast) {
  EXPECT_EQ(round_at_least(3.4, 1), 3u);
  EXPECT_EQ(round_at_least(3.6, 1), 4u);
  EXPECT_EQ(round_at_least(0.2, 5), 5u);
  EXPECT_EQ(round_at_least(-1.0, 2), 2u);
}

TEST(Math, SatSub) {
  EXPECT_EQ(sat_sub(5, 3), 2u);
  EXPECT_EQ(sat_sub(3, 5), 0u);
}

TEST(Table, AlignsColumnsAndCountsRows) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::uint64_t{42});
  t.row().cell("b").cell(3.14159, 2);
  EXPECT_EQ(t.num_rows(), 2u);
  const std::string s = t.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_NE(s.find("value"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().cell(std::uint64_t{1}).cell(std::uint64_t{2});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, FormatDoublePrecision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Cli, ParsesTypedFlags) {
  Cli cli("test");
  auto n = cli.flag_u64("n", 7, "count");
  auto x = cli.flag_f64("x", 0.5, "ratio");
  auto s = cli.flag_str("s", "dflt", "label");
  auto b = cli.flag_bool("b", false, "toggle");
  const char* argv[] = {"prog", "--n=123", "--x", "2.5", "--s=hello", "--b"};
  cli.parse(6, const_cast<char**>(argv));
  EXPECT_EQ(*n, 123u);
  EXPECT_DOUBLE_EQ(*x, 2.5);
  EXPECT_EQ(*s, "hello");
  EXPECT_TRUE(*b);
}

TEST(Cli, DefaultsSurviveEmptyArgv) {
  Cli cli("test");
  auto n = cli.flag_u64("n", 7, "count");
  const char* argv[] = {"prog"};
  cli.parse(1, const_cast<char**>(argv));
  EXPECT_EQ(*n, 7u);
}

TEST(Cli, ParseU64List) {
  const auto v = Cli::parse_u64_list("1,16,256");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1u);
  EXPECT_EQ(v[2], 256u);
  EXPECT_TRUE(Cli::parse_u64_list("").empty());
}

TEST(ThreadPool, CoversFullRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(0, [&](std::uint64_t, std::uint64_t) { sum += 1; });
  EXPECT_EQ(sum.load(), 0u);
  pool.parallel_for(3, [&](std::uint64_t b, std::uint64_t e) {
    sum += e - b;
  });
  EXPECT_EQ(sum.load(), 3u);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> total{0};
    pool.parallel_for(128, [&](std::uint64_t b, std::uint64_t e) {
      std::uint64_t local = 0;
      for (std::uint64_t i = b; i < e; ++i) local += i;
      total += local;
    });
    EXPECT_EQ(total.load(), 128u * 127u / 2);
  }
}

}  // namespace
}  // namespace clb::util
