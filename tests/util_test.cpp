// Unit tests for clb::util — math helpers, tables, CLI, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <numeric>
#include <set>
#include <thread>

#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace clb::util {
namespace {

TEST(Math, Ilog2ExactPowers) {
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(1024), 10u);
  EXPECT_EQ(ilog2(1ULL << 63), 63u);
}

TEST(Math, Ilog2Floors) {
  EXPECT_EQ(ilog2(3), 1u);
  EXPECT_EQ(ilog2(1023), 9u);
  EXPECT_EQ(ilog2(1025), 10u);
}

TEST(Math, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(65));
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
}

TEST(Math, Log2Log2KnownValues) {
  EXPECT_NEAR(log2log2(16), 2.0, 1e-12);        // log2(4)
  EXPECT_NEAR(log2log2(65536), 4.0, 1e-12);     // log2(16)
  EXPECT_NEAR(log2log2(1ULL << 32), 5.0, 1e-12);
}

TEST(Math, RoundAtLeast) {
  EXPECT_EQ(round_at_least(3.4, 1), 3u);
  EXPECT_EQ(round_at_least(3.6, 1), 4u);
  EXPECT_EQ(round_at_least(0.2, 5), 5u);
  EXPECT_EQ(round_at_least(-1.0, 2), 2u);
}

TEST(Math, SatSub) {
  EXPECT_EQ(sat_sub(5, 3), 2u);
  EXPECT_EQ(sat_sub(3, 5), 0u);
}

TEST(Table, AlignsColumnsAndCountsRows) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::uint64_t{42});
  t.row().cell("b").cell(3.14159, 2);
  EXPECT_EQ(t.num_rows(), 2u);
  const std::string s = t.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_NE(s.find("value"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().cell(std::uint64_t{1}).cell(std::uint64_t{2});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, FormatDoublePrecision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Cli, ParsesTypedFlags) {
  Cli cli("test");
  auto n = cli.flag_u64("n", 7, "count");
  auto x = cli.flag_f64("x", 0.5, "ratio");
  auto s = cli.flag_str("s", "dflt", "label");
  auto b = cli.flag_bool("b", false, "toggle");
  const char* argv[] = {"prog", "--n=123", "--x", "2.5", "--s=hello", "--b"};
  cli.parse(6, const_cast<char**>(argv));
  EXPECT_EQ(*n, 123u);
  EXPECT_DOUBLE_EQ(*x, 2.5);
  EXPECT_EQ(*s, "hello");
  EXPECT_TRUE(*b);
}

TEST(Cli, DefaultsSurviveEmptyArgv) {
  Cli cli("test");
  auto n = cli.flag_u64("n", 7, "count");
  const char* argv[] = {"prog"};
  cli.parse(1, const_cast<char**>(argv));
  EXPECT_EQ(*n, 7u);
}

TEST(Cli, ParseU64List) {
  const auto v = Cli::parse_u64_list("1,16,256");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1u);
  EXPECT_EQ(v[2], 256u);
  EXPECT_TRUE(Cli::parse_u64_list("").empty());
}

TEST(ThreadPool, CoversFullRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(0, [&](std::uint64_t, std::uint64_t) { sum += 1; });
  EXPECT_EQ(sum.load(), 0u);
  pool.parallel_for(3, [&](std::uint64_t b, std::uint64_t e) {
    sum += e - b;
  });
  EXPECT_EQ(sum.load(), 3u);
}

TEST(BlockRange, PartitionsInOrderWithBalancedSizes) {
  // Concatenating blocks 0..parts-1 must walk [0, count) in order, with
  // sizes differing by at most one and larger blocks first — the property
  // the rt shard layout relies on for "worker order = processor order".
  for (std::uint64_t count : {0ull, 1ull, 7ull, 64ull, 97ull, 1000ull}) {
    for (unsigned parts : {1u, 2u, 3u, 8u, 13u}) {
      std::uint64_t expect_begin = 0;
      std::uint64_t prev_size = ~0ull;
      for (unsigned i = 0; i < parts; ++i) {
        const auto [b, e] = block_range(count, parts, i);
        EXPECT_EQ(b, expect_begin) << count << "/" << parts << " blk " << i;
        EXPECT_GE(e, b);
        EXPECT_LE(e - b, prev_size);
        EXPECT_LE(prev_size - (e - b), prev_size == ~0ull ? ~0ull : 1ull);
        prev_size = e - b;
        expect_begin = e;
      }
      EXPECT_EQ(expect_begin, count);
    }
  }
}

TEST(PhaseBarrier, SinglePartyNeverBlocks) {
  PhaseBarrier b(1);
  for (int i = 0; i < 10; ++i) b.arrive_and_wait();
  EXPECT_EQ(b.generation(), 10u);
}

TEST(PhaseBarrier, SeparatesWritePhasesAcrossThreads) {
  // Each of 4 threads increments a plain (non-atomic) counter once per
  // cycle; the barrier's happens-before must make every increment of cycle
  // k visible before any thread starts cycle k+1.
  constexpr unsigned kParties = 4;
  constexpr int kCycles = 200;
  PhaseBarrier barrier(kParties);
  std::uint64_t slots[kParties] = {};
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (unsigned t = 0; t < kParties; ++t) {
    threads.emplace_back([&, t] {
      for (int cycle = 1; cycle <= kCycles; ++cycle) {
        slots[t] += 1;
        barrier.arrive_and_wait();
        std::uint64_t sum = 0;
        for (const std::uint64_t s : slots) sum += s;
        if (sum != static_cast<std::uint64_t>(cycle) * kParties)
          mismatches.fetch_add(1);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(barrier.generation(), 2u * kCycles);
}

TEST(ThreadPool, WorkerIndexIsStableAndCoversAllWorkers) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.worker_count(), 4u);
  // The caller is worker 0, pool threads are 1..3, and a given thread must
  // report the same index on every job (IDs pinned at spawn).
  std::mutex mu;
  std::map<std::thread::id, std::set<unsigned>> seen;
  for (int round = 0; round < 20; ++round) {
    // count >= 2 * workers, or the small-range fast path runs inline on the
    // caller and no pool thread ever participates.
    pool.parallel_for(64, [&](std::uint64_t, std::uint64_t) {
      std::lock_guard lock(mu);
      seen[std::this_thread::get_id()].insert(ThreadPool::worker_index());
    });
  }
  std::set<unsigned> indices;
  for (const auto& [tid, idx] : seen) {
    EXPECT_EQ(idx.size(), 1u) << "a thread changed its worker index";
    indices.insert(*idx.begin());
  }
  EXPECT_EQ(indices, (std::set<unsigned>{0, 1, 2, 3}));
  EXPECT_EQ(ThreadPool::worker_index(), 0u);  // main thread = worker 0
}

TEST(ThreadPool, WorkerIndexMatchesBlockIndex) {
  ThreadPool pool(3);
  std::vector<std::atomic<unsigned>> owner(300);
  pool.parallel_for(300, [&](std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i)
      owner[i].store(ThreadPool::worker_index());
  });
  for (unsigned i = 0; i < 3; ++i) {
    const auto [b, e] = block_range(300, 3, i);
    for (std::uint64_t j = b; j < e; ++j) {
      EXPECT_EQ(owner[j].load(), i) << "index " << j;
    }
  }
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> total{0};
    pool.parallel_for(128, [&](std::uint64_t b, std::uint64_t e) {
      std::uint64_t local = 0;
      for (std::uint64_t i = b; i < e; ++i) local += i;
      total += local;
    });
    EXPECT_EQ(total.load(), 128u * 127u / 2);
  }
}

}  // namespace
}  // namespace clb::util
