// Tests for the interconnect topology substrate.
#include <gtest/gtest.h>

#include <memory>

#include "net/topology.hpp"

namespace clb::net {
namespace {

TEST(Complete, UnitHops) {
  CompleteTopology t(64);
  EXPECT_EQ(t.hops(0, 0), 0u);
  EXPECT_EQ(t.hops(0, 63), 1u);
  EXPECT_EQ(t.diameter(), 1u);
  EXPECT_NEAR(t.mean_hops(), 63.0 / 64.0, 1e-12);
}

TEST(Ring, WrapAroundDistance) {
  RingTopology t(10);
  EXPECT_EQ(t.hops(0, 1), 1u);
  EXPECT_EQ(t.hops(0, 9), 1u);  // wraps
  EXPECT_EQ(t.hops(0, 5), 5u);  // diameter
  EXPECT_EQ(t.hops(2, 8), 4u);
  EXPECT_EQ(t.diameter(), 5u);
}

TEST(Ring, MeanHopsClosedFormEven) {
  RingTopology t(16);
  // Exhaustive mean over ordered pairs.
  double total = 0;
  for (std::uint64_t i = 0; i < 16; ++i) {
    for (std::uint64_t j = 0; j < 16; ++j) total += t.hops(i, j);
  }
  EXPECT_NEAR(t.mean_hops(), total / 256.0, 1e-12);
}

TEST(Ring, MeanHopsClosedFormOdd) {
  RingTopology t(11);
  double total = 0;
  for (std::uint64_t i = 0; i < 11; ++i) {
    for (std::uint64_t j = 0; j < 11; ++j) total += t.hops(i, j);
  }
  EXPECT_NEAR(t.mean_hops(), total / 121.0, 1e-12);
}

TEST(Hypercube, XorPopcount) {
  HypercubeTopology t(16);
  EXPECT_EQ(t.hops(0b0000, 0b1111), 4u);
  EXPECT_EQ(t.hops(0b0101, 0b0100), 1u);
  EXPECT_EQ(t.degree(), 4u);
  EXPECT_EQ(t.diameter(), 4u);
  EXPECT_NEAR(t.mean_hops(), 2.0, 1e-12);
}

TEST(Hypercube, RejectsNonPowerOfTwo) {
  EXPECT_DEATH(HypercubeTopology(24), "power-of-two");
}

TEST(Torus, ManhattanWithWrap) {
  Torus2D t(4, 8);  // rows x cols
  EXPECT_EQ(t.hops(0, 0), 0u);
  // (0,0) -> (3,0): row distance min(3,1) = 1.
  EXPECT_EQ(t.hops(0, 3 * 8), 1u);
  // (0,0) -> (2,4): 2 + 4.
  EXPECT_EQ(t.hops(0, 2 * 8 + 4), 6u);
  EXPECT_EQ(t.diameter(), 2u + 4u);
}

TEST(Torus, MeanHopsMatchesExhaustive) {
  Torus2D t(4, 6);
  double total = 0;
  const std::uint64_t n = t.n();
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) total += t.hops(i, j);
  }
  EXPECT_NEAR(t.mean_hops(), total / static_cast<double>(n * n), 1e-12);
}

TEST(AllTopologies, SymmetricAndSelfZero) {
  std::unique_ptr<Topology> tops[] = {
      std::make_unique<CompleteTopology>(32),
      std::make_unique<RingTopology>(32),
      std::make_unique<HypercubeTopology>(32),
      std::make_unique<Torus2D>(4, 8),
  };
  for (const auto& t : tops) {
    for (std::uint64_t i = 0; i < t->n(); i += 3) {
      EXPECT_EQ(t->hops(i, i), 0u) << t->name();
      for (std::uint64_t j = 0; j < t->n(); j += 5) {
        EXPECT_EQ(t->hops(i, j), t->hops(j, i)) << t->name();
        EXPECT_LE(t->hops(i, j), t->diameter()) << t->name();
      }
    }
  }
}

TEST(AllTopologies, MonteCarloValidatesClosedForm) {
  std::unique_ptr<Topology> tops[] = {
      std::make_unique<CompleteTopology>(256),
      std::make_unique<RingTopology>(256),
      std::make_unique<HypercubeTopology>(256),
      std::make_unique<Torus2D>(16, 16),
  };
  for (const auto& t : tops) {
    const double sampled = t->mean_hops_sampled(200000, 7);
    EXPECT_NEAR(sampled, t->mean_hops(), 0.05 * t->mean_hops() + 0.02)
        << t->name();
  }
}

}  // namespace
}  // namespace clb::net
