// Property-based suites (parameterized gtest): invariants that must hold
// across sweeps of machine size, seeds, model parameters and protocol
// configurations.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <tuple>

#include "collision/collision.hpp"
#include "dist/dist_balancer.hpp"
#include "rng/dist.hpp"
#include "rng/xoshiro.hpp"
#include "core/threshold_balancer.hpp"
#include "models/geometric.hpp"
#include "models/multi.hpp"
#include "models/single.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace clb {
namespace {

// ---------------------------------------------------------------- FIFO ---
// Property: for any interleaving of push/pop/transfer, the queue behaves
// like an ideal FIFO deque (checked against std::deque).
class FifoProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FifoProperty, MatchesReferenceDeque) {
  const std::uint64_t seed = GetParam();
  rng::Xoshiro256 rng(seed);
  sim::FifoQueue q;
  std::deque<std::uint32_t> ref;
  std::uint32_t next_id = 0;
  for (int op = 0; op < 5000; ++op) {
    switch (rng::bounded(rng, 4)) {
      case 0:
      case 1: {  // push (biased so queues grow)
        q.push_back(sim::Task{next_id, 0});
        ref.push_back(next_id);
        ++next_id;
        break;
      }
      case 2: {
        if (!ref.empty()) {
          ASSERT_EQ(q.pop_front().birth_step, ref.front());
          ref.pop_front();
        }
        break;
      }
      case 3: {
        if (!ref.empty()) {
          ASSERT_EQ(q.pop_back().birth_step, ref.back());
          ref.pop_back();
        }
        break;
      }
    }
    ASSERT_EQ(q.size(), ref.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FifoProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ----------------------------------------------------------- collision ---
// Property: for any (a, b, c) with c(a-b) >= 2 and light request load, the
// protocol yields a valid assignment respecting both Figure 1 conditions.
class CollisionProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CollisionProperty, ValidAssignmentUnderLightLoad) {
  const auto [a, b, c] = GetParam();
  const std::uint64_t n = 1 << 13;
  collision::CollisionGame game(
      n, {.a = static_cast<std::uint32_t>(a),
          .b = static_cast<std::uint32_t>(b),
          .c = static_cast<std::uint32_t>(c),
          .max_rounds = 24});
  std::vector<std::uint32_t> requesters;
  for (std::uint32_t i = 0; i < n / 128; ++i) {
    requesters.push_back(i * 128);
  }
  const auto out = game.run(requesters, 17);
  ASSERT_TRUE(out.valid) << "a=" << a << " b=" << b << " c=" << c;
  for (const auto& acc : out.accepted) {
    EXPECT_GE(acc.size(), static_cast<std::size_t>(b));
  }
  for (const auto& [proc, count] : out.per_proc_accepts) {
    EXPECT_LE(count, static_cast<std::uint32_t>(c));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CollisionProperty,
    ::testing::Values(std::make_tuple(5, 2, 1), std::make_tuple(4, 2, 1),
                      std::make_tuple(6, 3, 1), std::make_tuple(5, 2, 2),
                      std::make_tuple(4, 1, 1), std::make_tuple(3, 1, 2)));

// ------------------------------------------------------- conservation ---
// Property: for every model and seed, generated = consumed + in-system, and
// the balanced system never loses or duplicates a task.
class ConservationProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(ConservationProperty, TasksConserved) {
  const auto [model_id, seed] = GetParam();
  const std::uint64_t n = 1 << 10;
  std::unique_ptr<sim::LoadModel> model;
  double scale = 1.0;
  switch (model_id) {
    case 0: model = std::make_unique<models::SingleModel>(0.4, 0.1); break;
    case 1:
      model = std::make_unique<models::GeometricModel>(3);
      scale = 3.0;
      break;
    default:
      model = std::make_unique<models::MultiModel>(
          std::vector<double>{0.6, 0.25, 0.15});
      scale = 3.0;
      break;
  }
  core::ThresholdBalancer balancer(
      {.params = core::PhaseParams::from_n(n, {.scale = scale})});
  sim::Engine eng({.n = n, .seed = seed}, model.get(), &balancer);
  eng.run(1500);
  EXPECT_EQ(eng.total_generated(), eng.total_consumed() + eng.total_load());
  EXPECT_EQ(eng.clamped_transfers(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndSeeds, ConservationProperty,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values<std::uint64_t>(1, 42, 999)));

// ------------------------------------------------- threshold invariant ---
// Property: across fraction configurations, a processor that received a
// balancing transfer never exceeds light + transfer + (phase generation cap)
// at the end of the transfer step.
class ThresholdInvariantProperty
    : public ::testing::TestWithParam<double> {};  // heavy fraction

TEST_P(ThresholdInvariantProperty, ReceiversStayBelowHeavy) {
  const double heavy_frac = GetParam();
  const std::uint64_t n = 1 << 10;
  core::Fractions f;
  f.heavy = heavy_frac;
  const auto params = core::PhaseParams::from_n(n, f);
  models::SingleModel model(0.4, 0.1);
  core::ThresholdBalancer balancer({.params = params});
  sim::Engine eng({.n = n, .seed = 7}, &model, &balancer);
  for (int s = 0; s < 600; ++s) {
    eng.step_once();
    // Invariant: nobody can sit above heavy + transfer (a heavy sheds load,
    // a receiver was light) + 1 (this step's generation).
    EXPECT_LE(eng.step_max_load(),
              2 * params.heavy_threshold + params.transfer_amount + 1)
        << "step " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(HeavyFractions, ThresholdInvariantProperty,
                         ::testing::Values(0.5, 0.625, 0.75));

// ----------------------------------------------------- phase determinism ---
// Property: phase statistics are identical across repeated runs for any
// seed (full replay determinism of the balancer + collision stack).
class DeterminismProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismProperty, PhaseStatsReplay) {
  const std::uint64_t seed = GetParam();
  const std::uint64_t n = 1 << 10;
  auto run = [&](std::uint64_t s) {
    models::SingleModel model(0.4, 0.1);
    core::ThresholdBalancer balancer(
        {.params = core::PhaseParams::from_n(n)});
    sim::Engine eng({.n = n, .seed = s}, &model, &balancer);
    eng.run(800);
    return std::make_tuple(eng.total_load(), eng.running_max_load(),
                           eng.messages().queries,
                           balancer.aggregate().heavy_per_phase.mean(),
                           balancer.aggregate().messages_per_phase.mean());
  };
  EXPECT_EQ(run(seed), run(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismProperty,
                         ::testing::Values<std::uint64_t>(3, 17, 2026));

// -------------------------------------------------- execution variants ---
// Property: every execution variant of the threshold balancer (atomic,
// spread, streaming, preround, pruning — and their combinations) conserves
// tasks and keeps the max load within a small multiple of T.
class VariantProperty : public ::testing::TestWithParam<int> {};

TEST_P(VariantProperty, ConservativeAndBounded) {
  const int variant = GetParam();
  const std::uint64_t n = 1 << 10;
  auto params = core::PhaseParams::from_n(n);
  core::ThresholdBalancerConfig cfg{.params = params};
  switch (variant) {
    case 0: break;  // paper defaults
    case 1:
      cfg.params.phase_len = 4;
      cfg.execution = core::PhaseExecution::kSpread;
      break;
    case 2: cfg.streaming_transfers = true; break;
    case 3: cfg.one_shot_preround = true; break;
    case 4: cfg.prune_satisfied = true; break;
    case 5:
      cfg.params.phase_len = 8;
      cfg.execution = core::PhaseExecution::kSpread;
      cfg.streaming_transfers = true;
      cfg.one_shot_preround = true;
      cfg.prune_satisfied = true;
      break;
    default: break;
  }
  models::SingleModel model(0.4, 0.1);
  core::ThresholdBalancer balancer(cfg);
  sim::Engine eng({.n = n, .seed = 31}, &model, &balancer);
  eng.run(1500);
  EXPECT_EQ(eng.total_generated(), eng.total_consumed() + eng.total_load());
  EXPECT_LE(eng.running_max_load(), 3 * params.T);
}

INSTANTIATE_TEST_SUITE_P(Variants, VariantProperty,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

// --------------------------------------------------- distributed sweep ---
// Property: the distributed protocol is conservative, never forces a phase
// end, and matches essentially every heavy, for any message latency.
class DistLatencyProperty : public ::testing::TestWithParam<int> {};

TEST_P(DistLatencyProperty, ConservativeAndMatching) {
  const auto latency = static_cast<std::uint32_t>(GetParam());
  const std::uint64_t n = 1 << 10;
  models::SingleModel model(0.4, 0.1);
  dist::DistThresholdBalancer balancer(
      {.params = core::PhaseParams::from_n(n), .latency = latency});
  sim::Engine eng({.n = n, .seed = 37}, &model, &balancer);
  eng.run(1500);
  EXPECT_EQ(eng.total_generated(), eng.total_consumed() + eng.total_load());
  const auto& st = balancer.stats();
  EXPECT_EQ(st.forced_phase_ends, 0u);
  if (st.matched + st.unmatched > 100) {
    EXPECT_GT(static_cast<double>(st.matched) /
                  static_cast<double>(st.matched + st.unmatched),
              0.98);
  }
}

INSTANTIATE_TEST_SUITE_P(Latencies, DistLatencyProperty,
                         ::testing::Values(1, 2, 3, 5, 8));

// ------------------------------------------------ threaded equivalence ---
// Property: for every model that allows parallel generation, thread count
// never changes the trajectory.
class ThreadEquivalenceProperty : public ::testing::TestWithParam<int> {};

TEST_P(ThreadEquivalenceProperty, SameTrajectoryAnyThreads) {
  const int model_id = GetParam();
  const std::uint64_t n = 512;
  auto make_model = [&]() -> std::unique_ptr<sim::LoadModel> {
    switch (model_id) {
      case 0: return std::make_unique<models::SingleModel>(0.4, 0.1);
      case 1: return std::make_unique<models::GeometricModel>(3);
      default:
        return std::make_unique<models::MultiModel>(
            std::vector<double>{0.6, 0.25, 0.15});
    }
  };
  auto m1 = make_model();
  auto m2 = make_model();
  core::ThresholdBalancer b1(
      {.params = core::PhaseParams::from_n(n, {.scale = 3.0})});
  core::ThresholdBalancer b2(
      {.params = core::PhaseParams::from_n(n, {.scale = 3.0})});
  sim::Engine e1({.n = n, .seed = 41, .threads = 1}, m1.get(), &b1);
  sim::Engine e2({.n = n, .seed = 41, .threads = 3}, m2.get(), &b2);
  e1.run(600);
  e2.run(600);
  for (std::uint64_t p = 0; p < n; ++p) {
    ASSERT_EQ(e1.load(p), e2.load(p)) << "model " << model_id << " proc " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Models, ThreadEquivalenceProperty,
                         ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace clb
