// Unit coverage of the shared delivery layer both fabrics are built on:
// net::DeliveryPolicy (delay math: uniform, per-hop topology, seeded
// per-link jitter), net::SeqKey (the canonical total order on sends),
// net::Fabric (the delay queue itself: filing, maturation, far-future
// overflow, discard, the due > now replay guarantee) and net::LinkModel
// (bandwidth micro-slot clocks, loss/retransmit schedules, determinism).
//
// The lockstep tier (test_rt_latency_equivalence) proves the two fabrics
// agree end to end; this file pins the primitives' contracts directly, so
// a regression points at the exact rule that broke.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/delivery.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"

namespace {

using namespace clb;
using net::DeliveryPolicy;
using net::Fabric;
using net::LinkModel;
using net::NetConfig;
using net::SendPlan;
using net::SendStage;
using net::SeqKey;

// ---- DeliveryPolicy -------------------------------------------------------

TEST(DeliveryPolicy, UniformDelayIsLatencyForEveryPair) {
  DeliveryPolicy p(64, 3);
  for (std::uint32_t from : {0u, 17u, 63u}) {
    for (std::uint32_t to : {1u, 31u, 62u}) {
      EXPECT_EQ(p.delay(from, to), 3u);
    }
  }
  EXPECT_EQ(p.max_delay(), 3u);
  EXPECT_EQ(p.slots(), 4u);
  EXPECT_EQ(p.jitter(), 0u);
}

TEST(DeliveryPolicy, TopologyDelayScalesWithHops) {
  net::HypercubeTopology cube(16);
  DeliveryPolicy p(16, 2, &cube);
  // Hypercube hops = popcount(from ^ to); delay = max(1, latency * hops).
  EXPECT_EQ(p.delay(0, 1), 2u);    // 1 hop
  EXPECT_EQ(p.delay(0, 3), 4u);    // 2 hops
  EXPECT_EQ(p.delay(0, 15), 8u);   // 4 hops (diameter)
  EXPECT_EQ(p.max_delay(), 2u * cube.diameter());
}

TEST(DeliveryPolicy, JitterIsBoundedPerLinkAndSeedDeterministic) {
  const std::uint32_t jitter = 5;
  DeliveryPolicy a(64, 2, jitter, /*seed=*/42);
  DeliveryPolicy b(64, 2, jitter, /*seed=*/42);
  DeliveryPolicy c(64, 2, jitter, /*seed=*/43);
  bool any_extra = false;
  bool any_cross_seed_diff = false;
  for (std::uint32_t from = 0; from < 16; ++from) {
    for (std::uint32_t to = 0; to < 16; ++to) {
      const std::uint64_t d = a.delay(from, to);
      EXPECT_GE(d, 2u);
      EXPECT_LE(d, 2u + jitter);
      // The same link is always equally slow, and two policies built from
      // the same (seed, jitter) agree bit for bit.
      EXPECT_EQ(d, a.delay(from, to));
      EXPECT_EQ(d, b.delay(from, to));
      any_extra |= d > 2u;
      any_cross_seed_diff |= d != c.delay(from, to);
    }
  }
  EXPECT_TRUE(any_extra) << "jitter drew zero for all 256 links";
  EXPECT_TRUE(any_cross_seed_diff) << "seed does not feed the jitter stream";
  EXPECT_EQ(a.max_delay(), 2u + jitter);
  EXPECT_EQ(a.slots(), 2u + jitter + 1u);
}

TEST(DeliveryPolicy, JitterZeroIsTheExactUniformCase) {
  DeliveryPolicy plain(64, 4);
  DeliveryPolicy seeded(64, 4, /*jitter=*/0u, /*seed=*/99);
  for (std::uint32_t from = 0; from < 8; ++from) {
    for (std::uint32_t to = 0; to < 8; ++to) {
      EXPECT_EQ(plain.delay(from, to), seeded.delay(from, to));
    }
  }
  EXPECT_EQ(plain.max_delay(), seeded.max_delay());
}

TEST(DeliveryPolicy, JitterComposesWithTopology) {
  net::HypercubeTopology cube(16);
  DeliveryPolicy p(16, 1, &cube, /*jitter=*/3, /*seed=*/7);
  for (std::uint32_t to = 1; to < 16; ++to) {
    const std::uint64_t base = p.hops(0, to);  // latency 1: base == hops
    const std::uint64_t d = p.delay(0, to);
    EXPECT_GE(d, base);
    EXPECT_LE(d, base + 3);
  }
  EXPECT_EQ(p.max_delay(), cube.diameter() + 3);
}

// ---- SeqKey ---------------------------------------------------------------

TEST(SeqKey, TotalOrderMatchesFieldSignificance) {
  const SeqKey base{10, SendStage::kDeliver, 5, 2};
  // Identical keys: neither orders before the other.
  EXPECT_FALSE(base < base);
  EXPECT_TRUE(base == base);
  // minor is the least significant tiebreak ...
  EXPECT_LT(base, (SeqKey{10, SendStage::kDeliver, 5, 3}));
  // ... then major ...
  EXPECT_LT(base, (SeqKey{10, SendStage::kDeliver, 6, 0}));
  // ... then stage (enum order = processing order within a step) ...
  EXPECT_LT(base, (SeqKey{10, SendStage::kEvaluate, 0, 0}));
  EXPECT_LT((SeqKey{10, SendStage::kEvaluate, 99, 99}),
            (SeqKey{10, SendStage::kPhaseStart, 0, 0}));
  // ... then the send step dominates everything.
  EXPECT_LT((SeqKey{10, SendStage::kPhaseStart, 99, 99}),
            (SeqKey{11, SendStage::kDeliver, 0, 0}));
}

TEST(SeqKey, EvaluateMajorOrdersByActivationStepThenProcessor) {
  EXPECT_LT(net::evaluate_major(3, 100), net::evaluate_major(4, 0));
  EXPECT_LT(net::evaluate_major(3, 5), net::evaluate_major(3, 6));
  EXPECT_EQ(net::evaluate_major(0, 7), 7u);
  EXPECT_EQ(net::evaluate_major(1, 0), 1ULL << 32);
}

// ---- Fabric ---------------------------------------------------------------

TEST(Fabric, FilesAndMaturesInFilingOrder) {
  Fabric<int> f(4);
  f.file(0, 2, 10);
  f.file(0, 1, 20);
  f.file(0, 2, 30);
  EXPECT_EQ(f.filed(), 3u);
  EXPECT_EQ(f.pending(), 3u);
  EXPECT_FALSE(f.empty());

  std::vector<int> out;
  f.take_due(1, out);
  EXPECT_EQ(out, (std::vector<int>{20}));
  out.clear();
  f.take_due(2, out);
  EXPECT_EQ(out, (std::vector<int>{10, 30}));  // filing order preserved
  EXPECT_EQ(f.matured(), 3u);
  EXPECT_TRUE(f.empty());
}

TEST(Fabric, FarFutureDuesSpillAndComeBack) {
  Fabric<int> f(2);  // horizon 2: dues beyond now + 2 overflow
  f.file(0, 1, 1);
  f.file(0, 9, 9);    // far future (bandwidth backlog / retransmit schedule)
  f.file(0, 12, 12);  // farther still
  EXPECT_EQ(f.pending(), 3u);

  std::vector<int> out;
  for (std::uint64_t now = 1; now <= 12; ++now) f.take_due(now, out);
  EXPECT_EQ(out, (std::vector<int>{1, 9, 12}));
  EXPECT_TRUE(f.empty());
}

TEST(Fabric, DiscardPendingInvokesHookAndCounts) {
  Fabric<int> f(3);
  f.file(0, 1, 1);
  f.file(0, 2, 2);
  f.file(0, 50, 3);  // overflow entry must be discarded too
  int sum = 0;
  f.discard_pending([&](int& v) { sum += v; });
  EXPECT_EQ(sum, 6);
  EXPECT_EQ(f.discarded(), 3u);
  EXPECT_EQ(f.pending(), 0u);
  // Cumulative counters survive the discard (a forced phase end discards
  // messages, it does not unsend them).
  EXPECT_EQ(f.filed(), 3u);
}

TEST(Fabric, ReinitOnlyWhenEmpty) {
  Fabric<int> f(2);
  f.file(0, 1, 7);
  std::vector<int> out;
  f.take_due(1, out);
  f.init(8);  // legal: nothing in flight
  EXPECT_EQ(f.horizon(), 8u);
  f.file(0, 8, 1);
  out.clear();
  f.take_due(8, out);
  EXPECT_EQ(out, (std::vector<int>{1}));
}

// The deterministic-replay guarantee: a message can never be filed with a
// due step at or before the current one. CLB_DCHECK compiles out under
// NDEBUG, so the death test only runs in assert-enabled builds.
TEST(FabricDeathTest, FilingDueNowAborts) {
#ifdef NDEBUG
  GTEST_SKIP() << "CLB_DCHECK compiled out (NDEBUG)";
#else
  Fabric<int> f(4);
  EXPECT_DEATH(f.file(5, 5, 1), "due step <= now");
  EXPECT_DEATH(f.file(5, 3, 1), "due step <= now");
#endif
}

// ---- LinkModel ------------------------------------------------------------

TEST(LinkModel, InactiveByDefaultAndPlansPlainWireDelay) {
  LinkModel lm;
  lm.configure(NetConfig{}, /*run_seed=*/1, /*max_delay=*/4);
  EXPECT_FALSE(lm.active());
  EXPECT_EQ(lm.worst_extra(), 0u);
  const SendPlan p = lm.plan(0, 1, 10, 4);
  EXPECT_EQ(p.due, 14u);
  EXPECT_EQ(p.attempts, 1u);
  EXPECT_FALSE(p.dup);
  EXPECT_EQ(lm.retransmits(), 0u);
  EXPECT_EQ(lm.queued_delay(), 0u);
}

TEST(LinkModel, BandwidthCapQueuesFifoPerLink) {
  NetConfig cfg;
  cfg.bandwidth = 1;  // one message per link per step
  LinkModel lm;
  lm.configure(cfg, 1, 4);
  // Three sends on the same link in the same step: the first departs now,
  // the others queue one micro-slot (= one step at cap 1) apiece.
  EXPECT_EQ(lm.plan(0, 1, 10, 4).due, 14u);
  EXPECT_EQ(lm.plan(0, 1, 10, 4).due, 15u);
  EXPECT_EQ(lm.plan(0, 1, 10, 4).due, 16u);
  // A different link has its own clock.
  EXPECT_EQ(lm.plan(0, 2, 10, 4).due, 14u);
  // The reverse direction is a different (ordered) link.
  EXPECT_EQ(lm.plan(1, 0, 10, 4).due, 14u);
  EXPECT_EQ(lm.queued_delay(), 3u);  // 1 + 2 steps on (0,1), 0 elsewhere

  // Cap 2: two sends share a step, the third rolls over.
  LinkModel lm2;
  cfg.bandwidth = 2;
  lm2.configure(cfg, 1, 4);
  EXPECT_EQ(lm2.plan(0, 1, 10, 4).due, 14u);
  EXPECT_EQ(lm2.plan(0, 1, 10, 4).due, 14u);
  EXPECT_EQ(lm2.plan(0, 1, 10, 4).due, 15u);
}

TEST(LinkModel, BandwidthClockDrainsWhenIdle) {
  NetConfig cfg;
  cfg.bandwidth = 1;
  LinkModel lm;
  lm.configure(cfg, 1, 2);
  EXPECT_EQ(lm.plan(0, 1, 0, 2).due, 2u);
  EXPECT_EQ(lm.plan(0, 1, 0, 2).due, 3u);
  // By step 5 the backlog has drained; the wire is free again.
  EXPECT_EQ(lm.plan(0, 1, 5, 2).due, 7u);
}

TEST(LinkModel, CertainLossAlwaysDeliversTheFinalAttempt) {
  NetConfig cfg;
  cfg.loss_per_64k = 65535;  // every draw loses (max allowed)
  cfg.max_attempts = 4;
  cfg.rto = 10;
  LinkModel lm;
  lm.configure(cfg, 1, 4);
  const SendPlan p = lm.plan(0, 1, 100, 4);
  // Attempts 1..3 lost, attempt 4 forced through: due = now + 3*rto + wire.
  EXPECT_EQ(p.attempts, 4u);
  EXPECT_EQ(p.due, 100u + 3u * 10u + 4u);
  EXPECT_EQ(lm.retransmits(), 3u);
  EXPECT_EQ(lm.worst_extra(), 3u * 10u);
}

TEST(LinkModel, RtoDefaultsToARoundTrip) {
  NetConfig cfg;
  cfg.loss_per_64k = 1000;
  LinkModel lm;
  lm.configure(cfg, 1, /*max_delay=*/6);
  EXPECT_EQ(lm.rto(), 12u);
}

TEST(LinkModel, PlansAreSeedDeterministicAndResetReplays) {
  NetConfig cfg;
  cfg.loss_per_64k = 20000;
  cfg.bandwidth = 2;
  cfg.jitter = 0;
  LinkModel a;
  LinkModel b;
  a.configure(cfg, 77, 4);
  b.configure(cfg, 77, 4);
  std::vector<SendPlan> first;
  for (int i = 0; i < 32; ++i) {
    const SendPlan pa = a.plan(3, 9, 50, 4);
    const SendPlan pb = b.plan(3, 9, 50, 4);
    EXPECT_EQ(pa.due, pb.due) << i;
    EXPECT_EQ(pa.attempts, pb.attempts) << i;
    EXPECT_EQ(pa.dup, pb.dup) << i;
    first.push_back(pa);
  }
  // reset() forgets the wire (clocks AND per-link sequences): the same send
  // sequence replays bit for bit, like a forced phase end starting over.
  a.reset();
  for (int i = 0; i < 32; ++i) {
    const SendPlan pa = a.plan(3, 9, 50, 4);
    EXPECT_EQ(pa.due, first[static_cast<std::size_t>(i)].due) << i;
    EXPECT_EQ(pa.attempts, first[static_cast<std::size_t>(i)].attempts) << i;
  }
  // Cumulative counters survive reset (they mirror the fabric's filed()).
  EXPECT_GT(a.retransmits(), 0u);
}

TEST(LinkModel, LossDrawsDifferBySeed) {
  NetConfig cfg;
  cfg.loss_per_64k = 20000;
  LinkModel a;
  LinkModel b;
  a.configure(cfg, 1, 4);
  b.configure(cfg, 2, 4);
  bool any_diff = false;
  for (int i = 0; i < 64 && !any_diff; ++i) {
    any_diff = a.plan(0, 1, 10, 4).attempts != b.plan(0, 1, 10, 4).attempts;
  }
  EXPECT_TRUE(any_diff) << "run seed does not feed the loss stream";
}

TEST(LinkModel, DupSchedulesOneRtoAfterDelivery) {
  NetConfig cfg;
  cfg.loss_per_64k = 30000;
  cfg.rto = 7;
  LinkModel lm;
  lm.configure(cfg, 5, 4);
  bool saw_dup = false;
  for (int i = 0; i < 256; ++i) {
    const SendPlan p = lm.plan(0, 1, 10, 4);
    if (p.dup) {
      saw_dup = true;
      EXPECT_EQ(p.dup_due, p.due + 7u);
      // A final-attempt delivery cannot duplicate: the sender is out of
      // timeouts. dup implies attempts < max_attempts.
      EXPECT_LT(p.attempts, cfg.max_attempts);
    }
  }
  EXPECT_TRUE(saw_dup) << "no ack loss in 256 draws at ~46%";
  EXPECT_EQ(lm.dup_suppressed(),
            static_cast<std::uint64_t>(saw_dup ? lm.dup_suppressed() : 0));
  EXPECT_GT(lm.dup_suppressed(), 0u);
}

TEST(LinkModel, MutationDrawIsDeterministic) {
  NetConfig cfg;
  cfg.loss_per_64k = 32768;  // 50%
  LinkModel a;
  LinkModel b;
  a.configure(cfg, 9, 4);
  b.configure(cfg, 9, 4);
  int lost = 0;
  for (int i = 0; i < 64; ++i) {
    const bool la = a.mutation_lose_first_attempt(2, 3);
    EXPECT_EQ(la, b.mutation_lose_first_attempt(2, 3)) << i;
    lost += la ? 1 : 0;
  }
  EXPECT_GT(lost, 0) << "50% loss never lost in 64 draws";
  EXPECT_LT(lost, 64) << "50% loss always lost in 64 draws";
  // Lossless config: the mutation can never fire.
  LinkModel clean;
  clean.configure(NetConfig{}, 9, 4);
  EXPECT_FALSE(clean.mutation_lose_first_attempt(2, 3));
}

// ---- phase_failsafe -------------------------------------------------------

TEST(PhaseFailsafe, MatchesTheHistoricalBoundWhenUnshaped) {
  // The pre-link-model dist:: formula, verbatim, at worst_extra = 0.
  const std::uint64_t depth = 7, budget = 11, max_delay = 3;
  EXPECT_EQ(net::phase_failsafe(depth, budget, max_delay, 0),
            4 * depth * budget * (2 * max_delay) + 4 * max_delay + 8);
  // Retransmit slack widens the bound monotonically.
  EXPECT_GT(net::phase_failsafe(depth, budget, max_delay, 5),
            net::phase_failsafe(depth, budget, max_delay, 0));
}

}  // namespace
