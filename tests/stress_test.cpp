// Stress and failure-injection tests: regimes far outside the paper's
// assumptions, where the algorithm cannot succeed — it must degrade
// gracefully (no crashes, no task loss, accurate failure reporting).
#include <gtest/gtest.h>

#include "baselines/all_in_air.hpp"
#include "core/threshold_balancer.hpp"
#include "models/single.hpp"
#include "models/trace.hpp"
#include "models/weighted.hpp"
#include "sim/engine.hpp"

namespace clb {
namespace {

using core::PhaseParams;
using core::ThresholdBalancer;

TEST(Stress, EveryProcessorHeavyNoLightsAvailable) {
  // All processors start far above threshold: there is no light partner in
  // the whole machine. Every search must fail, be reported as unmatched,
  // and nothing may move or be lost.
  const std::uint64_t n = 1024;
  const auto params = PhaseParams::from_n(n);
  std::vector<std::uint32_t> row(
      n, static_cast<std::uint32_t>(2 * params.heavy_threshold));
  models::TraceModel model({row}, {});
  ThresholdBalancer balancer({.params = params});
  sim::Engine eng({.n = n, .seed = 1}, &model, &balancer);
  eng.step_once();
  const auto& ps = balancer.last_phase();
  EXPECT_EQ(ps.num_heavy, n);
  EXPECT_EQ(ps.num_light, 0u);
  EXPECT_EQ(ps.matched_heavy, 0u);
  EXPECT_EQ(ps.unmatched_heavy, n);
  EXPECT_EQ(eng.messages().transfers, 0u);
  EXPECT_EQ(eng.total_load(), n * 2 * params.heavy_threshold);
}

TEST(Stress, MassiveOverloadCollisionGamesSaturate) {
  // Half the machine heavy: the collision game's capacity condition
  // (m * b <= n * c) is violated at deeper levels. The balancer must report
  // failed requests rather than looping or crashing.
  const std::uint64_t n = 1024;
  const auto params = PhaseParams::from_n(n);
  std::vector<std::uint32_t> row(n, 0);
  for (std::uint64_t p = 0; p < n; p += 2) {
    row[p] = static_cast<std::uint32_t>(2 * params.heavy_threshold);
  }
  models::TraceModel model({row}, {});
  ThresholdBalancer balancer({.params = params});
  sim::Engine eng({.n = n, .seed = 2}, &model, &balancer);
  eng.step_once();
  const auto& ps = balancer.last_phase();
  EXPECT_EQ(ps.num_heavy, n / 2);
  // Capacity: at most num_light lights can be reserved.
  EXPECT_LE(ps.matched_heavy, ps.num_light);
  EXPECT_EQ(ps.matched_heavy + ps.unmatched_heavy, n / 2);
  EXPECT_EQ(eng.total_load(), (n / 2) * 2 * params.heavy_threshold);
}

TEST(Stress, SupercriticalGenerationStaysConservative) {
  // p ~ q - tiny: the system hovers near instability. Loads grow large but
  // accounting must stay exact.
  const std::uint64_t n = 512;
  models::SingleModel model(0.49, 0.02);
  ThresholdBalancer balancer({.params = PhaseParams::from_n(n)});
  sim::Engine eng({.n = n, .seed = 3}, &model, &balancer);
  eng.run(3000);
  EXPECT_EQ(eng.total_generated(), eng.total_consumed() + eng.total_load());
  EXPECT_EQ(eng.clamped_transfers(), 0u);
}

TEST(Stress, TinyMachine) {
  // The smallest n the parameterisation accepts.
  const std::uint64_t n = 8;
  models::SingleModel model(0.4, 0.1);
  ThresholdBalancer balancer({.params = PhaseParams::from_n(n)});
  sim::Engine eng({.n = n, .seed = 4}, &model, &balancer);
  eng.run(2000);
  EXPECT_EQ(eng.total_generated(), eng.total_consumed() + eng.total_load());
}

TEST(Stress, SingleStepPhasesWithAllOptionsOn) {
  // Kitchen-sink config: spread + streaming + preround + prune + weighted,
  // long run, must stay conservative and bounded.
  const std::uint64_t n = 1024;
  models::WeightedSingleModel model(0.4, 0.1, {0.7, 0.2, 0.1});
  auto params = PhaseParams::from_n(
      n, core::Fractions{.scale = model.mean_weight()});
  params.phase_len = 4;
  ThresholdBalancer balancer({.params = params,
                              .execution = core::PhaseExecution::kSpread,
                              .one_shot_preround = true,
                              .prune_satisfied = true,
                              .streaming_transfers = true,
                              .weight_based = true});
  sim::Engine eng({.n = n, .seed = 5}, &model, &balancer);
  eng.run(3000);
  EXPECT_EQ(eng.total_generated(), eng.total_consumed() + eng.total_load());
  EXPECT_LE(eng.running_max_weight(), 4 * params.T);
}

TEST(Stress, WeightLoadAlwaysMatchesQueueContents) {
  // Internal consistency: the engine's incremental weight counters must
  // equal a from-scratch walk of every queue, even after many transfers.
  const std::uint64_t n = 256;
  models::WeightedSingleModel model(0.45, 0.1, {0.5, 0.3, 0.2});
  ThresholdBalancer balancer(
      {.params = PhaseParams::from_n(
           n, core::Fractions{.scale = model.mean_weight()}),
       .weight_based = true});
  sim::Engine eng({.n = n, .seed = 6}, &model, &balancer);
  for (int round = 0; round < 20; ++round) {
    eng.run(50);
    for (std::uint64_t p = 0; p < n; ++p) {
      const auto& proc = eng.processor(p);
      std::uint64_t walked = 0;
      for (std::uint64_t i = 0; i < proc.queue.size(); ++i) {
        walked += proc.queue.at(i).weight;
      }
      ASSERT_EQ(walked, proc.weight_load) << "proc " << p;
    }
  }
}

TEST(Stress, AllInAirPreservesTaskIdentities) {
  // Global rescatter must be a permutation of the task multiset: the sum of
  // birth steps and origins is invariant.
  const std::uint64_t n = 512;
  std::vector<std::uint32_t> row(n, 3);
  models::TraceModel model({row}, {});
  baselines::AllInAirBalancer balancer({.interval = 1});
  sim::Engine eng({.n = n, .seed = 7}, &model, &balancer);
  eng.step_once();
  std::uint64_t origin_sum = 0, count = 0;
  for (std::uint64_t p = 0; p < n; ++p) {
    const auto& q = eng.processor(p).queue;
    for (std::uint64_t i = 0; i < q.size(); ++i) {
      origin_sum += q.at(i).origin;
      ++count;
    }
  }
  EXPECT_EQ(count, 3 * n);
  // Each origin appears exactly 3 times: sum = 3 * (0 + 1 + ... + n-1).
  EXPECT_EQ(origin_sum, 3 * n * (n - 1) / 2);
}

TEST(Stress, SojournTracksTransferredTasks) {
  // A task moved by balancing must still report its true end-to-end wait.
  const std::uint64_t n = 2048;
  const auto params = PhaseParams::from_n(n);
  // One heavy processor, consumption only on others (trace): heavy's tasks
  // get shipped and consumed remotely.
  std::vector<std::vector<std::uint32_t>> gen(
      1, std::vector<std::uint32_t>(n, 0));
  gen[0][0] = static_cast<std::uint32_t>(2 * params.heavy_threshold);
  std::vector<std::vector<std::uint32_t>> con(
      10, std::vector<std::uint32_t>(n, 1));
  con[0].assign(n, 0);  // nothing consumed at step 0
  models::TraceModel model(gen, con);
  ThresholdBalancer balancer({.params = params});
  sim::Engine eng({.n = n, .seed = 8, .track_sojourn = true}, &model,
                  &balancer);
  eng.run(10);
  const auto& h = eng.sojourn_histogram();
  EXPECT_GT(h.total(), 0u);
  // Tasks born at step 0 and consumed from step 1 onwards: waits >= 1.
  EXPECT_GE(h.quantile(0.01), 1u);
}

}  // namespace
}  // namespace clb
