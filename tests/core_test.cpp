// Tests for the paper's balancing algorithm (Figure 2) and its parameter
// realisation.
#include <gtest/gtest.h>

#include "core/params.hpp"
#include "core/threshold_balancer.hpp"
#include "models/single.hpp"
#include "models/trace.hpp"
#include "sim/engine.hpp"

namespace clb::core {
namespace {

TEST(Params, PaperDefaultsRealised) {
  // n = 2^16: log2 log2 n = 4, T_real = 16, floored to t_min = 16.
  const auto p = PhaseParams::from_n(1 << 16);
  EXPECT_EQ(p.T, 16u);
  EXPECT_EQ(p.phase_len, 1u);
  EXPECT_EQ(p.heavy_threshold, 8u);   // ceil(T/2)
  EXPECT_EQ(p.light_threshold, 1u);   // floor(T/16)
  EXPECT_EQ(p.transfer_amount, 4u);   // round(T/4)
  EXPECT_GE(p.tree_depth, 2u);        // depth floor
}

TEST(Params, ScaleMultipliesT) {
  Fractions f;
  f.scale = 3.0;
  const auto p = PhaseParams::from_n(1 << 16, f);
  EXPECT_EQ(p.T, 48u);
  EXPECT_EQ(p.heavy_threshold, 24u);
}

TEST(Params, LargerNGrowsT) {
  Fractions f;
  f.t_min = 1;
  const auto small = PhaseParams::from_n(1 << 8, f);
  const auto large = PhaseParams::from_n(1ULL << 32, f);
  EXPECT_LT(small.T, large.T);
  EXPECT_EQ(large.T, 25u);  // (log2 log2 2^32)^2 = 25
}

TEST(Params, InvariantLightPlusTransferBelowHeavy) {
  // The Remark before the Main Theorem: a balanced-into processor ends the
  // phase below 6T/16 < T/2.
  for (const std::uint64_t n : {1u << 10, 1u << 14, 1u << 20}) {
    const auto p = PhaseParams::from_n(n);
    EXPECT_LT(p.light_threshold + p.transfer_amount, p.heavy_threshold)
        << "n=" << n;
  }
}

TEST(Params, DescribeMentionsAllFields) {
  const auto p = PhaseParams::from_n(1 << 16);
  const auto s = p.describe();
  EXPECT_NE(s.find("T=16"), std::string::npos);
  EXPECT_NE(s.find("heavy>=8"), std::string::npos);
}

TEST(Params, RejectsBadFractions) {
  Fractions f;
  f.heavy = 0.05;  // below light
  EXPECT_DEATH(PhaseParams::from_n(1 << 16, f), "");
}

// --- Balancer behaviour on scripted loads -------------------------------

// Builds an engine where exactly `heavy_count` processors start with
// `heavy_load` tasks (generated at step 0) and everything else is empty.
struct Fixture {
  Fixture(std::uint64_t n, std::uint64_t heavy_count, std::uint32_t heavy_load,
          ThresholdBalancerConfig cfg)
      : model(make_tables(n, heavy_count, heavy_load), {}),
        balancer(cfg),
        eng({.n = n, .seed = 123}, &model, &balancer) {}

  static std::vector<std::vector<std::uint32_t>> make_tables(
      std::uint64_t n, std::uint64_t heavy_count, std::uint32_t heavy_load) {
    std::vector<std::uint32_t> row(n, 0);
    for (std::uint64_t i = 0; i < heavy_count; ++i) {
      row[i * (n / heavy_count)] = heavy_load;
    }
    return {row};
  }

  models::TraceModel model;
  ThresholdBalancer balancer;
  sim::Engine eng;
};

ThresholdBalancerConfig config_for(std::uint64_t n) {
  return ThresholdBalancerConfig{.params = PhaseParams::from_n(n)};
}

TEST(Balancer, HeavyProcessorsAreRelievedInOnePhase) {
  const std::uint64_t n = 4096;
  auto cfg = config_for(n);
  Fixture fx(n, 8, 2 * static_cast<std::uint32_t>(cfg.params.heavy_threshold),
             cfg);
  fx.eng.step_once();  // phase runs at step 0
  const auto& ps = fx.balancer.last_phase();
  EXPECT_EQ(ps.num_heavy, 8u);
  EXPECT_EQ(ps.matched_heavy, 8u);
  EXPECT_EQ(ps.unmatched_heavy, 0u);
  // Each heavy shed transfer_amount tasks.
  EXPECT_EQ(fx.eng.messages().tasks_moved,
            8u * cfg.params.transfer_amount);
}

TEST(Balancer, NoHeavyMeansNoMessages) {
  const std::uint64_t n = 1024;
  auto cfg = config_for(n);
  Fixture fx(n, 4, 1, cfg);  // loads of 1: nobody heavy
  fx.eng.step_once();
  EXPECT_EQ(fx.balancer.last_phase().num_heavy, 0u);
  EXPECT_EQ(fx.eng.messages().protocol_total(), 0u);
  EXPECT_EQ(fx.eng.messages().transfers, 0u);
}

TEST(Balancer, LightCountsReported) {
  const std::uint64_t n = 1024;
  auto cfg = config_for(n);
  Fixture fx(n, 4, 2 * static_cast<std::uint32_t>(cfg.params.heavy_threshold),
             cfg);
  fx.eng.step_once();
  const auto& ps = fx.balancer.last_phase();
  // Everyone except the 4 heavies has load 0 <= light threshold.
  EXPECT_EQ(ps.num_light, n - 4);
}

TEST(Balancer, TransferGoesToALightProcessor) {
  const std::uint64_t n = 2048;
  auto cfg = config_for(n);
  Fixture fx(n, 1, 3 * static_cast<std::uint32_t>(cfg.params.heavy_threshold),
             cfg);
  fx.eng.step_once();
  // Exactly one receiver; its load equals transfer_amount.
  std::uint64_t receivers = 0;
  for (std::uint64_t p = 0; p < n; ++p) {
    if (p != 0 && fx.eng.load(p) > 0) {
      ++receivers;
      EXPECT_EQ(fx.eng.load(p), cfg.params.transfer_amount);
    }
  }
  EXPECT_EQ(receivers, 1u);
  EXPECT_EQ(fx.eng.load(0),
            3 * cfg.params.heavy_threshold - cfg.params.transfer_amount);
}

TEST(Balancer, ReceiverNotAboveThresholdAfterPhase) {
  // Lemma 4's invariant: a balanced-into processor never exceeds 6T/16.
  const std::uint64_t n = 2048;
  auto cfg = config_for(n);
  Fixture fx(n, 32, 2 * static_cast<std::uint32_t>(cfg.params.heavy_threshold),
             cfg);
  fx.eng.step_once();
  for (std::uint64_t p = 0; p < n; ++p) {
    const bool was_heavy = fx.eng.processor(p).balance_initiations > 0;
    if (!was_heavy) {
      EXPECT_LE(fx.eng.load(p),
                cfg.params.light_threshold + cfg.params.transfer_amount);
    }
  }
}

TEST(Balancer, RequestsPerRootHistogramPopulated) {
  const std::uint64_t n = 2048;
  auto cfg = config_for(n);
  Fixture fx(n, 16, 2 * static_cast<std::uint32_t>(cfg.params.heavy_threshold),
             cfg);
  fx.eng.step_once();
  EXPECT_EQ(fx.balancer.requests_per_root().total(), 16u);
  // With nearly everyone light, each root should need exactly 1 request.
  EXPECT_NEAR(fx.balancer.requests_per_root().mean(), 1.0, 0.5);
}

TEST(Balancer, PhaseRunsEveryPhaseLenSteps) {
  const std::uint64_t n = 1024;
  auto cfg = config_for(n);
  cfg.params.phase_len = 4;
  models::SingleModel model(0.4, 0.1);
  ThresholdBalancer balancer(cfg);
  sim::Engine eng({.n = n, .seed = 9}, &model, &balancer);
  eng.run(17);  // phases at steps 0,4,8,12,16
  EXPECT_EQ(balancer.aggregate().phases, 5u);
}

TEST(Balancer, OneShotPreroundMatchesSomeHeavies) {
  const std::uint64_t n = 4096;
  auto cfg = config_for(n);
  cfg.one_shot_preround = true;
  Fixture fx(n, 16, 2 * static_cast<std::uint32_t>(cfg.params.heavy_threshold),
             cfg);
  fx.eng.step_once();
  const auto& ps = fx.balancer.last_phase();
  EXPECT_EQ(ps.matched_heavy, 16u);
  // With 16 heavies on 4096 procs, collisions in the pre-round are rare.
  EXPECT_GE(ps.preround_matched, 12u);
}

TEST(Balancer, PruneSatisfiedReducesRequests) {
  // With very few lights, trees grow deep; pruning after a match must not
  // increase the request count.
  const std::uint64_t n = 512;
  auto base_cfg = config_for(n);
  auto prune_cfg = base_cfg;
  prune_cfg.prune_satisfied = true;
  // Make everyone mid-loaded (not light, not heavy) except a few heavies.
  const auto mid =
      static_cast<std::uint32_t>(base_cfg.params.light_threshold + 1);
  std::vector<std::uint32_t> row(n, mid);
  for (std::uint64_t i = 0; i < 4; ++i) {
    row[i * (n / 4)] = static_cast<std::uint32_t>(
        2 * base_cfg.params.heavy_threshold);
  }
  models::TraceModel m1({row}, {}), m2({row}, {});
  ThresholdBalancer b1(base_cfg), b2(prune_cfg);
  sim::Engine e1({.n = n, .seed = 4}, &m1, &b1);
  sim::Engine e2({.n = n, .seed = 4}, &m2, &b2);
  e1.step_once();
  e2.step_once();
  EXPECT_LE(b2.last_phase().requests, b1.last_phase().requests);
}

TEST(BalancerSpread, EquivalentToAtomicAtPhaseLenOne) {
  // With phase_len = 1 every step is a phase boundary, so spreading levels
  // over the phase degenerates to the atomic execution: the load evolution
  // must be identical.
  const std::uint64_t n = 1024;
  auto atomic_cfg = config_for(n);
  auto spread_cfg = atomic_cfg;
  spread_cfg.execution = PhaseExecution::kSpread;
  models::SingleModel m1(0.4, 0.1), m2(0.4, 0.1);
  ThresholdBalancer b1(atomic_cfg), b2(spread_cfg);
  sim::Engine e1({.n = n, .seed = 5}, &m1, &b1);
  sim::Engine e2({.n = n, .seed = 5}, &m2, &b2);
  e1.run(500);
  e2.run(500);
  EXPECT_EQ(e1.total_load(), e2.total_load());
  EXPECT_EQ(e1.running_max_load(), e2.running_max_load());
  EXPECT_EQ(e1.messages().tasks_moved, e2.messages().tasks_moved);
  for (std::uint64_t p = 0; p < n; ++p) {
    ASSERT_EQ(e1.load(p), e2.load(p)) << "proc " << p;
  }
}

TEST(BalancerSpread, LongPhasesStillBoundLoad) {
  const std::uint64_t n = 1024;
  auto cfg = config_for(n);
  cfg.params.phase_len = 8;  // levels spread over 8 steps
  cfg.execution = PhaseExecution::kSpread;
  models::SingleModel model(0.4, 0.1);
  ThresholdBalancer balancer(cfg);
  sim::Engine eng({.n = n, .seed = 6}, &model, &balancer);
  eng.run(2000);
  EXPECT_LE(eng.running_max_load(), 3 * cfg.params.T);
  EXPECT_EQ(eng.total_generated(), eng.total_consumed() + eng.total_load());
  const auto& agg = balancer.aggregate();
  EXPECT_GT(agg.phases, 200u);
  if (agg.phases_with_heavy > 0) {
    EXPECT_GE(agg.match_rate.mean(), 0.95);
  }
}

TEST(BalancerSpread, LightSnapshotUsedNotLiveLoad) {
  // A processor light at phase start must still be a valid partner later in
  // the phase even if its load has grown past the live light threshold —
  // the paper classifies "at the beginning of the phase".
  const std::uint64_t n = 512;
  auto cfg = config_for(n);
  cfg.params.phase_len = 4;
  cfg.execution = PhaseExecution::kSpread;
  // Everyone generates steadily so mid-phase loads drift upward.
  models::SingleModel model(0.45, 0.05);
  ThresholdBalancer balancer(cfg);
  sim::Engine eng({.n = n, .seed = 7}, &model, &balancer);
  eng.run(1000);  // must not trip any invariant checks
  EXPECT_EQ(eng.total_generated(), eng.total_consumed() + eng.total_load());
}

TEST(BalancerStreaming, MovesSameTotalAsAtomicTransfers) {
  const std::uint64_t n = 2048;
  auto block_cfg = config_for(n);
  auto stream_cfg = block_cfg;
  stream_cfg.streaming_transfers = true;
  // Exactly at the threshold: after shedding one unit (streamed) or the
  // whole block, the sender drops below heavy and never re-triggers, so
  // both modes perform exactly one balancing action per heavy.
  const auto heavy_load =
      static_cast<std::uint32_t>(block_cfg.params.heavy_threshold);
  Fixture block(n, 8, heavy_load, block_cfg);
  Fixture stream(n, 8, heavy_load, stream_cfg);
  // Give the streams time to drain (transfer_amount steps).
  block.eng.run(1 + block_cfg.params.transfer_amount);
  stream.eng.run(1 + block_cfg.params.transfer_amount);
  EXPECT_EQ(block.eng.messages().tasks_moved,
            stream.eng.messages().tasks_moved);
  // Streaming splits one block into transfer_amount unit transfers.
  EXPECT_GT(stream.eng.messages().transfers,
            block.eng.messages().transfers);
  EXPECT_EQ(stream.eng.clamped_transfers(), 0u);
}

TEST(BalancerStreaming, StableUnderContinuousLoad) {
  const std::uint64_t n = 1024;
  auto cfg = config_for(n);
  cfg.streaming_transfers = true;
  models::SingleModel model(0.4, 0.1);
  ThresholdBalancer balancer(cfg);
  sim::Engine eng({.n = n, .seed = 8}, &model, &balancer);
  eng.run(2000);
  EXPECT_LE(eng.running_max_load(), 2 * cfg.params.T);
  EXPECT_EQ(eng.total_generated(), eng.total_consumed() + eng.total_load());
}

TEST(Balancer, ResetClearsAggregates) {
  const std::uint64_t n = 1024;
  models::SingleModel model(0.4, 0.1);
  ThresholdBalancer balancer(config_for(n));
  sim::Engine eng({.n = n, .seed = 2}, &model, &balancer);
  eng.run(10);
  EXPECT_GT(balancer.aggregate().phases, 0u);
  eng.reset();
  EXPECT_EQ(balancer.aggregate().phases, 0u);
}

TEST(Balancer, MismatchedNDies) {
  models::SingleModel model(0.4, 0.1);
  ThresholdBalancer balancer(config_for(2048));
  EXPECT_DEATH(sim::Engine({.n = 1024, .seed = 1}, &model, &balancer), "");
}

}  // namespace
}  // namespace clb::core
