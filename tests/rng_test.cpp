// Unit + statistical tests for clb::rng.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "rng/dist.hpp"
#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro.hpp"

namespace clb::rng {
namespace {

TEST(SplitMix, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64_next(s);
  const std::uint64_t b = splitmix64_next(s);
  EXPECT_NE(a, b);
  // Regression pin: the reference SplitMix64 sequence from seed 0.
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64_next(s2), a);
}

TEST(SplitMix, HashCombineSeparatesNeighbours) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seen.insert(hash_combine(42, i));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Xoshiro, DistinctSeedsDistinctStreams) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, JumpDecorrelates) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  b.jump();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Philox, SameKeyCounterSameOutput) {
  CounterRng a(123, 5, 9);
  CounterRng b(123, 5, 9);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

TEST(Philox, DifferentStreamsDiffer) {
  CounterRng a(123, 5, 9);
  CounterRng b(123, 6, 9);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Philox, SetEventRepositionsDeterministically) {
  CounterRng a(1, 2, 0);
  std::vector<std::uint64_t> first;
  a.set_event(77);
  for (int i = 0; i < 8; ++i) first.push_back(a());
  a.set_event(78);
  (void)a();
  a.set_event(77);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a(), first[i]);
}

TEST(Philox, OutputLooksUniform) {
  // Mean of 2^16 draws scaled to [0,1) should be 0.5 +- ~4/sqrt(12*2^16).
  CounterRng rng(99, 1, 0);
  double sum = 0;
  const int kDraws = 1 << 16;
  for (int i = 0; i < kDraws; ++i) sum += uniform01(rng);
  EXPECT_NEAR(sum / kDraws, 0.5, 0.005);
}

TEST(Dist, BoundedStaysInRangeAndHitsAll) {
  Xoshiro256 rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = bounded(rng, 7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Dist, BoundedIsUnbiasedApprox) {
  Xoshiro256 rng(4);
  const std::uint64_t kN = 5;
  std::uint64_t counts[5] = {};
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[bounded(rng, kN)];
  for (const auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.2, 0.01);
  }
}

TEST(Dist, BernoulliFrequencies) {
  Xoshiro256 rng(5);
  const BernoulliDraw draw(0.3);
  int hits = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += draw(rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Dist, BernoulliEdgeCases) {
  Xoshiro256 rng(6);
  const BernoulliDraw never(0.0);
  const BernoulliDraw always(1.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(never(rng));
    EXPECT_TRUE(always(rng));
  }
}

TEST(Dist, TruncatedGeometricMatchesPaperPmf) {
  // P[i] = 2^-(i+1) for i in 1..k; P[0] = remainder.
  Xoshiro256 rng(7);
  const std::uint32_t k = 4;
  const int kDraws = 200000;
  std::uint64_t counts[8] = {};
  for (int i = 0; i < kDraws; ++i) {
    const std::uint32_t v = truncated_geometric(rng, k);
    ASSERT_LE(v, k);
    ++counts[v];
  }
  for (std::uint32_t i = 1; i <= k; ++i) {
    const double expect = std::pow(2.0, -(static_cast<double>(i) + 1));
    EXPECT_NEAR(static_cast<double>(counts[i]) / kDraws, expect, 0.01)
        << "i=" << i;
  }
  EXPECT_GT(static_cast<double>(counts[0]) / kDraws, 0.5);
}

TEST(Dist, DiscreteDrawMatchesPmf) {
  Xoshiro256 rng(8);
  const DiscreteDraw draw({0.5, 0.25, 0.25});
  const int kDraws = 100000;
  std::uint64_t counts[3] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[draw(rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / kDraws, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / kDraws, 0.25, 0.01);
  EXPECT_NEAR(draw.mean(), 0.75, 1e-12);
}

TEST(Dist, ExponentialMeanMatchesRate) {
  Xoshiro256 rng(9);
  double sum = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += exponential(rng, 2.0);
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Dist, GeometricCapRespected) {
  Xoshiro256 rng(10);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(geometric(rng, 0.01, 5), 5u);
  }
}

}  // namespace
}  // namespace clb::rng
