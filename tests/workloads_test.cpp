// Production workload zoo: distribution sanity for the five new models
// (seeded moment checks — no statistical flakiness, every draw is counter-
// RNG), crash/recovery conservation, and engine↔rt lockstep grids proving
// the zoo models and both information baselines stay bit-identical on
// rt::Runtime at 1/2/8 workers. Each worker count is validated against the
// same serial sim::Engine, so the grid transitively proves cross-worker
// bit-identity (ledger, message counters, per-queue task identity).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/liveness.hpp"
#include "models/diurnal.hpp"
#include "models/flash_crowd.hpp"
#include "models/hetero.hpp"
#include "models/pareto.hpp"
#include "models/zipf.hpp"
#include "sim/engine.hpp"
#include "testing/oracle.hpp"
#include "testing/scenario.hpp"

namespace {

using namespace clb;
namespace ct = clb::testing;

// ---------------------------------------------------------------------------
// Distribution sanity: Pareto tail
// ---------------------------------------------------------------------------

TEST(ParetoModel, InverseCdfShapeAndTail) {
  models::ParetoConfig cfg;  // alpha=1.5, xm=1, cap=64
  models::ParetoModel m(cfg);

  EXPECT_EQ(m.job_size(0.0), 1u);          // floor(xm) at u=0
  EXPECT_EQ(m.job_size(0.9999999), 64u);   // cap clamps the extreme tail
  // Monotone non-decreasing in u.
  std::uint32_t prev = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t sz = m.job_size(static_cast<double>(i) / 1000.0);
    EXPECT_GE(sz, prev);
    prev = sz;
  }

  // Moment check over a dense uniform grid (deterministic): the truncated,
  // floored Pareto(1.5, 1) mean sits well below the continuous 3.0 but well
  // above the all-mice 1.0; the P(X >= 16) tail mass is 16^-1.5 ~ 1.6%.
  double sum = 0;
  int tail = 0;
  const int kGrid = 100000;
  for (int i = 0; i < kGrid; ++i) {
    const std::uint32_t sz = m.job_size((static_cast<double>(i) + 0.5) / kGrid);
    sum += sz;
    if (sz >= 16) ++tail;
  }
  const double mean = sum / kGrid;
  EXPECT_GT(mean, 1.8);
  EXPECT_LT(mean, 3.2);
  const double tail_frac = static_cast<double>(tail) / kGrid;
  EXPECT_GT(tail_frac, 0.005);
  EXPECT_LT(tail_frac, 0.03);
}

TEST(ParetoModel, EngineRateMatchesArrivalTimesMeanSize) {
  models::ParetoConfig cfg;
  models::ParetoModel m(cfg);
  // Analytic per-processor-step rate = p_arrival * E[size]; E[size] from the
  // same inverse CDF the model samples through.
  double esize = 0;
  for (int i = 0; i < 10000; ++i) {
    esize += m.job_size((static_cast<double>(i) + 0.5) / 10000.0);
  }
  esize /= 10000.0;
  const double expect_rate = cfg.p_arrival * esize;

  sim::Engine eng({.n = 256, .seed = 11}, &m, nullptr);
  eng.run(512);
  std::uint64_t gen = 0;
  for (std::uint64_t p = 0; p < eng.n(); ++p) gen += eng.processor(p).generated;
  const double emp = static_cast<double>(gen) / (256.0 * 512.0);
  EXPECT_NEAR(emp, expect_rate, 0.25 * expect_rate);
  EXPECT_TRUE(eng.conservation_holds());
}

// ---------------------------------------------------------------------------
// Distribution sanity: diurnal period
// ---------------------------------------------------------------------------

TEST(DiurnalModel, RateIsPeriodicAndBounded) {
  models::DiurnalConfig cfg;
  cfg.period = 64;
  models::DiurnalModel m(cfg);
  double lo = 1.0, hi = 0.0;
  for (std::uint64_t s = 0; s < cfg.period; ++s) {
    const double r = m.rate_at(0, s);
    EXPECT_GE(r, cfg.p_trough - 1e-9);
    EXPECT_LE(r, cfg.p_peak + 1e-9);
    lo = std::min(lo, r);
    hi = std::max(hi, r);
    // Exact periodicity, several cycles out.
    EXPECT_DOUBLE_EQ(r, m.rate_at(0, s + cfg.period));
    EXPECT_DOUBLE_EQ(r, m.rate_at(0, s + 5 * cfg.period));
  }
  // The cycle actually reaches (near) both extremes.
  EXPECT_NEAR(lo, cfg.p_trough, 0.02);
  EXPECT_NEAR(hi, cfg.p_peak, 0.02);
}

TEST(DiurnalModel, ProcSkewSweepsThePeak) {
  models::DiurnalConfig cfg;
  cfg.period = 64;
  cfg.proc_skew = 1.0 / 64.0;  // peak sweeps a 64-proc machine once/period
  models::DiurnalModel m(cfg);
  // Skew advances the cycle position by proc_skew per processor index, so
  // with proc_skew * period = 1 step/proc, processor p at step 0 sits where
  // processor 0 sits at step p: the peak sweeps the machine once per period.
  for (std::uint64_t p : {1ull, 7ull, 33ull}) {
    EXPECT_NEAR(m.rate_at(p, 0), m.rate_at(0, p), 1e-9) << p;
  }
}

TEST(DiurnalModel, EmpiricalMeanNearCycleMidpoint) {
  models::DiurnalConfig cfg;
  cfg.period = 64;
  models::DiurnalModel m(cfg);
  sim::Engine eng({.n = 256, .seed = 5}, &m, nullptr);
  eng.run(256);  // four full cycles
  std::uint64_t gen = 0;
  for (std::uint64_t p = 0; p < eng.n(); ++p) gen += eng.processor(p).generated;
  const double emp = static_cast<double>(gen) / (256.0 * 256.0);
  const double mid = 0.5 * (cfg.p_peak + cfg.p_trough);
  EXPECT_NEAR(emp, mid, 0.05);
}

// ---------------------------------------------------------------------------
// Distribution sanity: zipf skew
// ---------------------------------------------------------------------------

TEST(ZipfModel, RatesFollowThePowerLawAndSumToBudget) {
  models::ZipfConfig cfg;  // s=1.2, mean_rate=0.3, static ranks
  const std::uint64_t n = 128;
  models::ZipfModel m(cfg, n);
  double total = 0;
  std::vector<double> by_rank(n);
  for (std::uint64_t p = 0; p < n; ++p) {
    const double r = m.rate_for(p, 0);
    total += r;
    by_rank[m.rank_of(p, 0)] = r;
  }
  EXPECT_NEAR(total, cfg.mean_rate * static_cast<double>(n), 1e-6);
  // Monotone in rank; consecutive ranks obey ((k+2)/(k+1))^s exactly.
  for (std::uint64_t k = 0; k + 1 < n; ++k) {
    EXPECT_GT(by_rank[k], by_rank[k + 1]);
  }
  EXPECT_NEAR(by_rank[0] / by_rank[1], std::pow(2.0, cfg.s), 1e-9);
}

TEST(ZipfModel, RotationMovesTheHotRank) {
  models::ZipfConfig cfg;
  cfg.rotate_period = 16;
  const std::uint64_t n = 64;
  models::ZipfModel m(cfg, n);
  const std::uint64_t hot0 = [&] {
    for (std::uint64_t p = 0; p < n; ++p) {
      if (m.rank_of(p, 0) == 0) return p;
    }
    return n;
  }();
  const std::uint64_t hot1 = [&] {
    for (std::uint64_t p = 0; p < n; ++p) {
      if (m.rank_of(p, cfg.rotate_period) == 0) return p;
    }
    return n;
  }();
  ASSERT_LT(hot0, n);
  ASSERT_LT(hot1, n);
  EXPECT_NE(hot0, hot1);
  // Within a rotation window the assignment is stable.
  for (std::uint64_t p = 0; p < n; ++p) {
    EXPECT_EQ(m.rank_of(p, 0), m.rank_of(p, cfg.rotate_period - 1));
  }
}

TEST(ZipfModel, EmpiricalSkewShowsUpInGeneration) {
  models::ZipfConfig cfg;  // static ranks
  const std::uint64_t n = 64;
  models::ZipfModel m(cfg, n);
  sim::Engine eng({.n = n, .seed = 9}, &m, nullptr);
  eng.run(512);
  std::uint64_t hottest = 0, coldest = ~0ULL;
  std::uint64_t gen = 0;
  for (std::uint64_t p = 0; p < n; ++p) {
    const std::uint64_t g = eng.processor(p).generated;
    gen += g;
    hottest = std::max(hottest, g);
    coldest = std::min(coldest, g);
  }
  // Total volume near the configured budget, and rank 0 dwarfs the tail.
  const double emp = static_cast<double>(gen) / (static_cast<double>(n) * 512.0);
  EXPECT_NEAR(emp, cfg.mean_rate, 0.2 * cfg.mean_rate);
  EXPECT_GT(hottest, 8 * std::max<std::uint64_t>(coldest, 1));
}

// ---------------------------------------------------------------------------
// Distribution sanity: flash crowds and heterogeneous speeds
// ---------------------------------------------------------------------------

TEST(FlashCrowdModel, OneFlashPerWindowOfTheConfiguredLength) {
  models::FlashCrowdConfig cfg;  // interval=48, flash_len=6
  const std::uint64_t n = 128;
  models::FlashCrowdModel m(cfg, n);
  const std::uint64_t seed = 21;
  for (std::uint64_t w = 0; w < 6; ++w) {
    std::uint64_t active = 0;
    for (std::uint64_t s = w * cfg.interval; s < (w + 1) * cfg.interval; ++s) {
      const std::int64_t pos = m.flash_pos(seed, s);
      if (pos >= 0) {
        ++active;
        EXPECT_LT(pos, static_cast<std::int64_t>(cfg.flash_len));
        // The hot group is a non-trivial contiguous slice of the machine.
        std::uint64_t hot = 0;
        for (std::uint64_t p = 0; p < n; ++p) {
          if (m.is_hot(seed, p, s)) ++hot;
        }
        EXPECT_GT(hot, 0u);
        EXPECT_LT(hot, n / 2);
      }
    }
    EXPECT_EQ(active, cfg.flash_len) << "window " << w;
  }
}

TEST(HeteroModel, SpeedClassesAreSeededStableAndSlowClassesAccumulate) {
  models::HeteroConfig cfg;  // 3 classes, base_consume=0.2
  models::HeteroModel m(cfg);
  const std::uint64_t n = 256, seed = 17;
  for (std::uint64_t p = 0; p < n; ++p) {
    const std::uint32_t k = m.speed_class(seed, p);
    EXPECT_LT(k, cfg.speed_classes);
    EXPECT_EQ(k, m.speed_class(seed, p));  // pure function of (seed, proc)
  }
  sim::Engine eng({.n = n, .seed = seed}, &m, nullptr);
  eng.run(384);
  double load_by_class[3] = {0, 0, 0};
  std::uint64_t count_by_class[3] = {0, 0, 0};
  for (std::uint64_t p = 0; p < n; ++p) {
    const std::uint32_t k = m.speed_class(seed, p);
    load_by_class[k] += static_cast<double>(eng.load(p));
    ++count_by_class[k];
  }
  for (std::uint64_t k = 0; k < 3; ++k) ASSERT_GT(count_by_class[k], 0u);
  // Class 0 consumes at 0.2 < gen 0.35: unbounded backlog. The top class
  // consumes at 0.6 > 0.35: load stays O(1). Average final loads must be
  // strongly ordered.
  const double slow = load_by_class[0] / static_cast<double>(count_by_class[0]);
  const double fast = load_by_class[2] / static_cast<double>(count_by_class[2]);
  EXPECT_GT(slow, 4.0 * (fast + 1.0));
}

// ---------------------------------------------------------------------------
// Crash / recovery conservation
// ---------------------------------------------------------------------------

TEST(CrashRecovery, RehomePreservesEveryTaskAndDeadProcessorsIdle) {
  models::DiurnalConfig dc;
  dc.period = 32;
  models::DiurnalModel m(dc);
  const std::uint64_t n = 64;
  const std::uint32_t victim = 7;
  core::LivenessSchedule live(n, {{10, victim, 12}});
  sim::Engine eng({.n = n, .seed = 3, .liveness = &live}, &m, nullptr);

  // Guarantee the victim's queue is non-empty at the crash.
  for (int i = 0; i < 25; ++i) {
    eng.deposit(victim, sim::Task{0, victim, 1});
  }
  std::uint64_t victim_gen_at_crash = 0;
  for (std::uint64_t step = 0; step < 48; ++step) {
    eng.step_once();
    ASSERT_TRUE(eng.conservation_holds()) << "step " << step;
    if (step == 10) {
      victim_gen_at_crash = eng.processor(victim).generated;
      EXPECT_EQ(eng.load(victim), 0u);  // queue re-homed wholesale
      // 25 deposited minus the few consumed before the crash.
      EXPECT_GE(eng.rehomed_tasks(), 10u);
      EXPECT_EQ(eng.rehomed_events(), 1u);
      // FIFO re-home target: first alive processor cyclically above.
      EXPECT_EQ(live.rehome_target(victim, 10), victim + 1);
    }
    if (step > 10 && step < 10 + 12) {
      // Dead: no generation, no consumption, queue stays empty.
      EXPECT_EQ(eng.load(victim), 0u);
      EXPECT_EQ(eng.processor(victim).generated, victim_gen_at_crash);
    }
  }
  // Recovered: the victim generates again after its down window.
  EXPECT_GT(eng.processor(victim).generated, victim_gen_at_crash);
}

TEST(CrashRecovery, ScheduleRejectsUnservableEvents) {
  // proc out of range, zero down time, re-crash while dead, and a crash
  // that would leave nobody alive are all dropped at construction.
  core::LivenessSchedule live(4, {
                                     {1, 9, 4},   // out of range
                                     {2, 1, 0},   // zero down time
                                     {3, 2, 8},   // accepted
                                     {5, 2, 4},   // re-crash while dead
                                 });
  EXPECT_FALSE(live.empty());
  EXPECT_TRUE(live.alive(9 % 4, 1));
  EXPECT_TRUE(live.alive(1, 2));
  EXPECT_FALSE(live.alive(2, 3));
  EXPECT_FALSE(live.alive(2, 10));
  EXPECT_TRUE(live.alive(2, 11));  // recovered
  EXPECT_EQ(live.crashes_at(3).size(), 1u);
  EXPECT_EQ(live.crashes_at(5).size(), 0u);
}

// ---------------------------------------------------------------------------
// Engine↔rt lockstep grids (workers 1/2/8) — the oracle is the proof: it
// compares ledger, message counters, clamp/re-home accounting, and per-queue
// task identity against a serial sim::Engine shadow every 8th step.
// ---------------------------------------------------------------------------

ct::Scenario zoo_scenario(ct::ModelKind model,
                               ct::BalancerKind balancer,
                               unsigned workers) {
  ct::Scenario s;
  s.n = 32;
  s.steps = 48;
  s.engine_seed = 1234 + static_cast<std::uint64_t>(workers);
  s.threads = workers;
  s.threads_replay = workers;
  s.runtime = true;
  s.model = model;
  s.balancer = balancer;
  s.stale_staleness = 4;
  s.stale_gap = 2;
  s.ls_min_load = 2;
  // A spike guarantees imbalance, so the baselines actually move tasks.
  s.faults.push_back(ct::FaultEvent{4, 3, 48});
  return s;
}

class ZooLockstep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ZooLockstep, EveryZooModelUnderBothBaselines) {
  const unsigned workers = GetParam();
  const ct::ModelKind models[] = {
      ct::ModelKind::kDiurnal, ct::ModelKind::kFlashCrowd,
      ct::ModelKind::kPareto,  ct::ModelKind::kZipf,
      ct::ModelKind::kHetero,
  };
  const ct::BalancerKind baselines[] = {
      ct::BalancerKind::kStaleSq,
      ct::BalancerKind::kLocalSearch,
  };
  for (const auto model : models) {
    for (const auto balancer : baselines) {
      const ct::Scenario s = zoo_scenario(model, balancer, workers);
      const ct::OracleReport r = ct::run_rt_scenario(s);
      EXPECT_TRUE(r.ok) << ct::to_string(model) << " + "
                        << ct::to_string(balancer) << " @ " << workers
                        << " workers: step " << r.fail_step << ": " << r.what;
    }
  }
}

TEST_P(ZooLockstep, ZooModelsUnderTheThresholdProtocol) {
  const unsigned workers = GetParam();
  for (const auto model :
       {ct::ModelKind::kPareto, ct::ModelKind::kZipf}) {
    const ct::Scenario s =
        zoo_scenario(model, ct::BalancerKind::kThreshold, workers);
    const ct::OracleReport r = ct::run_rt_scenario(s);
    EXPECT_TRUE(r.ok) << ct::to_string(model) << " @ " << workers
                      << " workers: step " << r.fail_step << ": " << r.what;
  }
}

TEST_P(ZooLockstep, CrashRecoveryStaysLockstepAcrossWorkerCounts) {
  const unsigned workers = GetParam();
  const ct::BalancerKind balancers[] = {
      ct::BalancerKind::kNone,
      ct::BalancerKind::kStaleSq,
      ct::BalancerKind::kLocalSearch,
  };
  for (const auto balancer : balancers) {
    ct::Scenario s =
        zoo_scenario(ct::ModelKind::kDiurnal, balancer, workers);
    // Crash the spiked processor mid-run (non-empty queue guaranteed) and a
    // second one later; both recover before the run ends.
    s.crashes.push_back(core::CrashEvent{8, 3, 10});
    s.crashes.push_back(core::CrashEvent{20, 11, 6});
    const ct::OracleReport r = ct::run_rt_scenario(s);
    EXPECT_TRUE(r.ok) << ct::to_string(balancer) << " @ " << workers
                      << " workers: step " << r.fail_step << ": " << r.what;
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, ZooLockstep, ::testing::Values(1u, 2u, 8u),
                         [](const auto& param_info) {
                           return "w" + std::to_string(param_info.param);
                         });

// The engine-side fuzz oracle handles zoo scenarios with crashes too: the
// shadow-deque replay re-homes FIFO-whole exactly like the engine.
TEST(ZooOracle, EngineScenarioWithCrashesPasses) {
  ct::Scenario s;
  s.n = 48;
  s.steps = 64;
  s.engine_seed = 77;
  s.model = ct::ModelKind::kPareto;
  s.balancer = ct::BalancerKind::kLocalSearch;
  s.faults.push_back(ct::FaultEvent{2, 5, 40});
  s.crashes.push_back(core::CrashEvent{9, 5, 8});
  const ct::OracleReport r = ct::run_engine_scenario(s);
  EXPECT_TRUE(r.ok) << "step " << r.fail_step << ": " << r.what;
}

}  // namespace
