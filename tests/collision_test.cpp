// Tests for the (n, beta, a, b, c)-collision protocol (Figure 1, Lemma 1).
#include <gtest/gtest.h>

#include <set>

#include "analysis/bounds.hpp"
#include "analysis/collision_meanfield.hpp"
#include "collision/collision.hpp"

namespace clb::collision {
namespace {

std::vector<std::uint32_t> make_requesters(std::uint64_t count,
                                           std::uint64_t n) {
  std::vector<std::uint32_t> r(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    r[i] = static_cast<std::uint32_t>((i * 37) % n);
  }
  std::set<std::uint32_t> dedup(r.begin(), r.end());
  return {dedup.begin(), dedup.end()};
}

TEST(Collision, EmptyRequestSetIsTriviallyValid) {
  CollisionGame game(1024, {});
  const auto out = game.run({}, 1);
  EXPECT_TRUE(out.valid);
  EXPECT_EQ(out.rounds_used, 0u);
  EXPECT_EQ(out.query_messages, 0u);
}

TEST(Collision, Lemma1ParametersProduceValidAssignment) {
  // (a,b,c) = (5,2,1): each request gets >= 2 accepts, each processor
  // accepts at most 1 query.
  const std::uint64_t n = 1 << 14;
  CollisionGame game(n, {.a = 5, .b = 2, .c = 1});
  const auto requesters = make_requesters(n / 64, n);
  const auto out = game.run(requesters, 42);
  ASSERT_TRUE(out.valid);
  for (const auto& acc : out.accepted) {
    EXPECT_GE(acc.size(), 2u);
  }
  for (const auto& [proc, count] : out.per_proc_accepts) {
    EXPECT_LE(count, 1u) << "proc " << proc;
  }
}

TEST(Collision, RoundsWithinPaperBound) {
  const std::uint64_t n = 1 << 14;
  CollisionGame game(n, {.a = 5, .b = 2, .c = 1});
  const auto requesters = make_requesters(n / 64, n);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto out = game.run(requesters, seed);
    ASSERT_TRUE(out.valid) << "seed " << seed;
    EXPECT_LE(out.rounds_used, game.paper_round_bound());
  }
}

TEST(Collision, AcceptedTargetsAreDistinctPerRequest) {
  const std::uint64_t n = 4096;
  CollisionGame game(n, {.a = 5, .b = 2, .c = 1});
  const auto requesters = make_requesters(n / 32, n);
  const auto out = game.run(requesters, 7);
  ASSERT_TRUE(out.valid);
  for (const auto& acc : out.accepted) {
    std::set<std::uint32_t> s(acc.begin(), acc.end());
    EXPECT_EQ(s.size(), acc.size());
  }
}

TEST(Collision, TargetsExcludeRequester) {
  const std::uint64_t n = 256;
  CollisionGame game(n, {.a = 5, .b = 2, .c = 1});
  std::vector<std::uint32_t> requesters = {17};
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const auto out = game.run(requesters, seed);
    for (const auto q : out.accepted[0]) EXPECT_NE(q, 17u);
  }
}

TEST(Collision, DeterministicForFixedSeed) {
  const std::uint64_t n = 2048;
  CollisionGame game(n, {.a = 5, .b = 2, .c = 1});
  const auto requesters = make_requesters(64, n);
  const auto a = game.run(requesters, 99);
  const auto b = game.run(requesters, 99);
  EXPECT_EQ(a.rounds_used, b.rounds_used);
  EXPECT_EQ(a.query_messages, b.query_messages);
  ASSERT_EQ(a.accepted.size(), b.accepted.size());
  for (std::size_t r = 0; r < a.accepted.size(); ++r) {
    EXPECT_EQ(a.accepted[r], b.accepted[r]);
  }
}

TEST(Collision, HigherCAllowsMoreAcceptsPerProcessor) {
  const std::uint64_t n = 512;
  CollisionGame game(n, {.a = 4, .b = 2, .c = 3});
  const auto requesters = make_requesters(128, n);
  const auto out = game.run(requesters, 5);
  std::uint32_t max_accepts = 0;
  for (const auto& [proc, count] : out.per_proc_accepts) {
    EXPECT_LE(count, 3u);
    max_accepts = std::max(max_accepts, count);
  }
  EXPECT_TRUE(out.valid);
}

TEST(Collision, MessageCountIsNearAMPerRound) {
  // First round sends exactly a messages per request.
  const std::uint64_t n = 1 << 14;
  CollisionGame game(n, {.a = 5, .b = 2, .c = 1});
  const auto requesters = make_requesters(128, n);
  const auto out = game.run(requesters, 3);
  EXPECT_GE(out.query_messages, 5 * requesters.size());
  // The paper says O(n/a) requests need O(n) messages overall; with few
  // requests the total must stay within a small multiple of a*m.
  EXPECT_LE(out.query_messages, 5 * requesters.size() * out.rounds_used);
}

TEST(Collision, OverloadedGameReportsInvalid) {
  // More requests than capacity (m * b > n * c) can never all be satisfied.
  const std::uint64_t n = 64;
  CollisionGame game(n, {.a = 5, .b = 2, .c = 1, .max_rounds = 8});
  std::vector<std::uint32_t> requesters;
  for (std::uint32_t i = 0; i < 60; ++i) requesters.push_back(i);
  const auto out = game.run(requesters, 1);
  EXPECT_FALSE(out.valid);
}

TEST(Collision, ConditionsHoldForLemma1Parameters) {
  CollisionGame game(1 << 16, {.a = 5, .b = 2, .c = 1});
  EXPECT_TRUE(game.conditions_hold(0.01));
  // a too large relative to sqrt(log n) for a tiny machine:
  CollisionGame tiny(64, {.a = 5, .b = 2, .c = 1});
  EXPECT_FALSE(tiny.conditions_hold(0.01));  // sqrt(log2 64) < 5
}

TEST(Collision, PaperRoundBoundMatchesFormula) {
  CollisionGame game(1 << 16, {.a = 5, .b = 2, .c = 1});
  const double expect = analysis::collision_round_bound(1 << 16, 5, 2, 1);
  EXPECT_EQ(game.paper_round_bound(),
            static_cast<std::uint32_t>(std::ceil(expect)));
}

TEST(CollisionMeanField, UnfinishedFractionDecreasesMonotonically) {
  const auto mf = analysis::collision_meanfield(1 << 14, 1 << 8, 5, 2, 10);
  ASSERT_FALSE(mf.unfinished.empty());
  for (std::size_t r = 1; r < mf.unfinished.size(); ++r) {
    EXPECT_LE(mf.unfinished[r], mf.unfinished[r - 1] + 1e-12);
  }
  EXPECT_GT(mf.rounds_to_finish, 0u);
  EXPECT_LE(mf.rounds_to_finish, 6u);
}

TEST(CollisionMeanField, LowDensityFinishesInOneRound) {
  // With m << n almost every query lands alone: ~all requests finish in
  // round one and the cost is ~a queries per request.
  const auto mf = analysis::collision_meanfield(1 << 16, 16, 5, 2, 5);
  EXPECT_LT(mf.unfinished[0], 1e-3);
  EXPECT_NEAR(mf.queries_per_request, 5.0, 0.2);
}

TEST(CollisionMeanField, PredictsSimulatedRoundCount) {
  // The mean-field rounds-to-finish must match the simulated protocol's
  // rounds within one round at moderate density.
  const std::uint64_t n = 1 << 14;
  const std::uint64_t m = n / 16;  // beta ~ 0.06
  const auto mf = analysis::collision_meanfield(n, m, 5, 2, 12,
                                                /*target=*/0.5 / m);
  CollisionGame game(n, {.a = 5, .b = 2, .c = 1, .max_rounds = 12});
  std::vector<std::uint32_t> requesters;
  for (std::uint64_t i = 0; i < m; ++i) {
    requesters.push_back(static_cast<std::uint32_t>(i * (n / m)));
  }
  std::uint32_t worst = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto out = game.run(requesters, seed);
    ASSERT_TRUE(out.valid);
    worst = std::max(worst, out.rounds_used);
  }
  EXPECT_NEAR(static_cast<double>(mf.rounds_to_finish),
              static_cast<double>(worst), 1.5);
}

TEST(CollisionMeanField, PredictsQueriesPerRequest) {
  const std::uint64_t n = 1 << 14;
  const std::uint64_t m = n / 8;
  const auto mf = analysis::collision_meanfield(n, m, 5, 2, 12);
  CollisionGame game(n, {.a = 5, .b = 2, .c = 1, .max_rounds = 12});
  std::vector<std::uint32_t> requesters;
  for (std::uint64_t i = 0; i < m; ++i) {
    requesters.push_back(static_cast<std::uint32_t>(i * (n / m)));
  }
  const auto out = game.run(requesters, 3);
  const double measured =
      static_cast<double>(out.query_messages) / static_cast<double>(m);
  EXPECT_NEAR(mf.queries_per_request, measured, 0.15 * measured);
}

TEST(Collision, RejectsDegenerateConfigs) {
  EXPECT_DEATH(CollisionGame(8, {.a = 1, .b = 0, .c = 1}), "");
  EXPECT_DEATH(CollisionGame(8, {.a = 3, .b = 3, .c = 1}), "");
  EXPECT_DEATH(CollisionGame(4, {.a = 5, .b = 2, .c = 1}), "");
}

}  // namespace
}  // namespace clb::collision
