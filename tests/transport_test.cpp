// Unit tests for the cross-process transport's wire layer: the length-
// prefixed frame codec (truncation, CRC, magic, version, sequence
// violations), the payload Writer/Reader codecs, and a live Endpoint pair
// ping over both socket kinds. The end-to-end lockstep runs live in
// transport_equivalence_test.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/wire.hpp"
#include "transport/endpoint.hpp"
#include "transport/frame.hpp"
#include "transport/shard_engine.hpp"
#include "transport/wire.hpp"

namespace {

using namespace clb;
using namespace clb::transport;

std::vector<std::uint8_t> bytes(std::initializer_list<int> v) {
  std::vector<std::uint8_t> out;
  for (int x : v) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

// ---------------------------------------------------------------------------
// net::wire primitives
// ---------------------------------------------------------------------------

TEST(NetWire, PutGetRoundTrip) {
  std::vector<std::uint8_t> buf;
  net::wire::put_u16(buf, 0xBEEF);
  net::wire::put_u32(buf, 0xDEADBEEFu);
  net::wire::put_u64(buf, 0x0123456789ABCDEFull);
  ASSERT_EQ(buf.size(), 14u);
  EXPECT_EQ(net::wire::get_u16(buf.data()), 0xBEEF);
  EXPECT_EQ(net::wire::get_u32(buf.data() + 2), 0xDEADBEEFu);
  EXPECT_EQ(net::wire::get_u64(buf.data() + 6), 0x0123456789ABCDEFull);
  // Little-endian on the wire, byte for byte.
  EXPECT_EQ(buf[0], 0xEF);
  EXPECT_EQ(buf[1], 0xBE);
}

TEST(NetWire, Crc32KnownVectorAndChaining) {
  // The canonical CRC-32 ("check" vector): crc32("123456789") = 0xCBF43926.
  const char* s = "123456789";
  const auto* p = reinterpret_cast<const std::uint8_t*>(s);
  EXPECT_EQ(net::wire::crc32(p, 9), 0xCBF43926u);
  // Chaining must equal one-shot.
  const std::uint32_t part = net::wire::crc32(p, 4);
  EXPECT_EQ(net::wire::crc32(p + 4, 5, part), 0xCBF43926u);
}

TEST(NetWire, SeqKeyRoundTrip) {
  net::SeqKey k;
  k.send_step = 0xAABBCCDDEEFF0011ull;
  k.stage = net::SendStage::kDeliver;
  k.major = 42;
  k.minor = 7;
  std::vector<std::uint8_t> buf;
  net::wire::put_seq_key(buf, k);
  ASSERT_EQ(buf.size(), net::wire::kSeqKeyWireSize);
  const net::SeqKey back = net::wire::get_seq_key(buf.data());
  EXPECT_EQ(back.send_step, k.send_step);
  EXPECT_EQ(back.stage, k.stage);
  EXPECT_EQ(back.major, k.major);
  EXPECT_EQ(back.minor, k.minor);
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

TEST(FrameCodec, EncodeDecodeRoundTrip) {
  const std::vector<std::uint8_t> payload = bytes({1, 2, 3, 4, 5});
  const auto wire = encode_frame(FrameType::kBatch, 1, payload);
  ASSERT_EQ(wire.size(), kFrameHeaderSize + payload.size());
  const DecodeResult r = decode_frame(wire.data(), wire.size());
  ASSERT_EQ(r.status, DecodeStatus::kOk);
  EXPECT_EQ(r.consumed, wire.size());
  EXPECT_EQ(r.frame.type, FrameType::kBatch);
  EXPECT_EQ(r.frame.seq, 1u);
  EXPECT_EQ(r.frame.payload, payload);
}

TEST(FrameCodec, EmptyPayload) {
  const auto wire = encode_frame(FrameType::kDone, 9, nullptr, 0);
  const DecodeResult r = decode_frame(wire.data(), wire.size());
  ASSERT_EQ(r.status, DecodeStatus::kOk);
  EXPECT_TRUE(r.frame.payload.empty());
  EXPECT_EQ(r.frame.seq, 9u);
}

TEST(FrameCodec, TruncatedFrameNeedsMore) {
  const auto wire = encode_frame(FrameType::kState, 1, bytes({7, 8, 9}));
  // Every strict prefix is incomplete, not an error.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const DecodeResult r = decode_frame(wire.data(), cut);
    EXPECT_EQ(r.status, DecodeStatus::kNeedMore) << "cut=" << cut;
  }
}

TEST(FrameCodec, BadMagicConvicted) {
  auto wire = encode_frame(FrameType::kRun, 1, bytes({1}));
  wire[0] ^= 0xFF;
  EXPECT_EQ(decode_frame(wire.data(), wire.size()).status,
            DecodeStatus::kBadMagic);
}

TEST(FrameCodec, BadVersionConvicted) {
  auto wire = encode_frame(FrameType::kRun, 1, bytes({1}));
  wire[4] = kWireVersion + 1;
  EXPECT_EQ(decode_frame(wire.data(), wire.size()).status,
            DecodeStatus::kBadVersion);
}

TEST(FrameCodec, CorruptPayloadFailsCrc) {
  auto wire = encode_frame(FrameType::kBatch, 3, bytes({10, 20, 30, 40}));
  wire[kFrameHeaderSize + 2] ^= 0x01;  // flip one payload bit
  EXPECT_EQ(decode_frame(wire.data(), wire.size()).status,
            DecodeStatus::kBadCrc);
}

TEST(FrameCodec, CorruptHeaderFailsCrc) {
  auto wire = encode_frame(FrameType::kBatch, 3, bytes({10, 20}));
  wire[8] ^= 0x01;  // flip a seq bit: header is covered by the CRC too
  EXPECT_EQ(decode_frame(wire.data(), wire.size()).status,
            DecodeStatus::kBadCrc);
}

TEST(FrameCodec, OversizedLengthConvicted) {
  auto wire = encode_frame(FrameType::kBatch, 1, bytes({1}));
  // Forge a giant length field; must be rejected before any allocation.
  const std::uint32_t huge = kMaxFramePayload + 1;
  wire[16] = static_cast<std::uint8_t>(huge);
  wire[17] = static_cast<std::uint8_t>(huge >> 8);
  wire[18] = static_cast<std::uint8_t>(huge >> 16);
  wire[19] = static_cast<std::uint8_t>(huge >> 24);
  EXPECT_EQ(decode_frame(wire.data(), wire.size()).status,
            DecodeStatus::kTooLong);
}

TEST(FrameReaderTest, ReassemblesSplitFeeds) {
  FrameReader reader;
  const auto w1 = encode_frame(FrameType::kBarrier, 1, bytes({1, 2}));
  const auto w2 = encode_frame(FrameType::kRelease, 2, bytes({3, 4, 5}));
  std::vector<std::uint8_t> stream = w1;
  stream.insert(stream.end(), w2.begin(), w2.end());

  Frame f;
  // Drip-feed one byte at a time; frames must pop out exactly at the seams.
  std::size_t got = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    reader.feed(&stream[i], 1);
    while (reader.next(f) == DecodeStatus::kOk) {
      ++got;
      if (got == 1) {
        EXPECT_EQ(f.type, FrameType::kBarrier);
        EXPECT_EQ(f.payload, bytes({1, 2}));
      } else {
        EXPECT_EQ(f.type, FrameType::kRelease);
        EXPECT_EQ(f.payload, bytes({3, 4, 5}));
      }
    }
  }
  EXPECT_EQ(got, 2u);
  EXPECT_EQ(reader.frames_decoded(), 2u);
}

TEST(FrameReaderTest, DuplicateSequenceConvicted) {
  FrameReader reader;
  const auto w1 = encode_frame(FrameType::kBatch, 1, bytes({1}));
  reader.feed(w1.data(), w1.size());
  Frame f;
  ASSERT_EQ(reader.next(f), DecodeStatus::kOk);
  // Replay the same frame: seq 1 again is a duplicate, a poisoned stream.
  reader.feed(w1.data(), w1.size());
  EXPECT_EQ(reader.next(f), kDupSeq);
  EXPECT_NE(reader.error().find("duplicate"), std::string::npos)
      << reader.error();
  // Poisoned: further reads stay failed.
  EXPECT_NE(reader.next(f), DecodeStatus::kOk);
}

TEST(FrameReaderTest, SequenceGapConvicted) {
  FrameReader reader;
  const auto w1 = encode_frame(FrameType::kBatch, 1, bytes({1}));
  const auto w3 = encode_frame(FrameType::kBatch, 3, bytes({3}));
  reader.feed(w1.data(), w1.size());
  Frame f;
  ASSERT_EQ(reader.next(f), DecodeStatus::kOk);
  reader.feed(w3.data(), w3.size());  // seq 2 went missing
  EXPECT_EQ(reader.next(f), kGapSeq);
  EXPECT_NE(reader.error().find("gap"), std::string::npos) << reader.error();
}

TEST(FrameReaderTest, FirstFrameMustBeSeqOne) {
  FrameReader reader;
  const auto w2 = encode_frame(FrameType::kBatch, 2, bytes({1}));
  reader.feed(w2.data(), w2.size());
  Frame f;
  EXPECT_EQ(reader.next(f), kGapSeq);
}

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

TEST(PayloadCodec, MsgRoundTrip) {
  Msg m;
  m.kind = rt::MsgKind::kTransfer;
  m.key = 0x1234567890ABCDEFull;
  m.a = 17;
  m.b = 91;
  m.c = 3;
  m.payload.push_back(rt::RtTask{sim::Task{12, 17, 1}, 400});
  m.payload.push_back(rt::RtTask{sim::Task{13, 18, 2}, 500});

  Writer w;
  serialize_msg(w, m);
  Reader r(w.data());
  const Msg back = deserialize_msg(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back.kind, m.kind);
  EXPECT_EQ(back.key, m.key);
  EXPECT_EQ(back.a, m.a);
  EXPECT_EQ(back.b, m.b);
  EXPECT_EQ(back.c, m.c);
  ASSERT_EQ(back.payload.size(), 2u);
  EXPECT_EQ(back.payload[0].task.birth_step, 12u);
  EXPECT_EQ(back.payload[0].task.origin, 17u);
  EXPECT_EQ(back.payload[0].birth_us, 400u);
  EXPECT_EQ(back.payload[1].task.weight, 2u);
}

TEST(PayloadCodec, ShardRunConfigRoundTrip) {
  ShardRunConfig c;
  c.n = 192;
  c.seed = 3;
  c.workers = 4;
  c.index = 2;
  c.deterministic = true;
  c.policy = rt::RtPolicy::kThreshold;
  core::Fractions f;
  f.t_min = 64;
  c.params = core::PhaseParams::from_n(192, f);
  c.game.max_rounds = 9;
  c.spin_work = 5;
  c.track_sojourn = true;
  c.corrupt_transfer_frame = 7;
  models::BurstConfig bc;
  bc.period = 16;
  bc.burst_rate = 6;
  c.model = ModelSpec::bursty(bc);

  Writer w;
  c.serialize(w);
  Reader r(w.data());
  const ShardRunConfig back = ShardRunConfig::deserialize(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back.n, c.n);
  EXPECT_EQ(back.seed, c.seed);
  EXPECT_EQ(back.workers, c.workers);
  EXPECT_EQ(back.index, c.index);
  EXPECT_EQ(back.policy, c.policy);
  EXPECT_EQ(back.params.T, c.params.T);
  EXPECT_EQ(back.params.phase_len, c.params.phase_len);
  EXPECT_EQ(back.params.heavy_threshold, c.params.heavy_threshold);
  EXPECT_EQ(back.game.a, c.game.a);
  EXPECT_EQ(back.game.max_rounds, c.game.max_rounds);
  EXPECT_EQ(back.spin_work, c.spin_work);
  EXPECT_EQ(back.track_sojourn, c.track_sojourn);
  EXPECT_EQ(back.corrupt_transfer_frame, c.corrupt_transfer_frame);
  EXPECT_EQ(back.model.kind, ModelSpec::Kind::kBurst);
  EXPECT_EQ(back.model.burst.period, 16u);
  EXPECT_EQ(back.model.burst.burst_rate, 6u);
}

TEST(PayloadCodec, ShardStateRoundTrip) {
  ShardState s;
  s.begin = 10;
  s.end = 12;
  s.procs.resize(2);
  s.procs[0].queue.push_back(rt::RtTask{sim::Task{1, 10, 1}, 0});
  s.procs[0].generated = 5;
  s.procs[1].consumed = 3;
  s.procs[1].tasks_received = 2;
  s.msg.queries = 11;
  s.msg.tasks_moved = 4;
  s.clamped = 1;
  s.deposited = 2;
  s.ledger.push_back(rt::LedgerEntry{8, 10, 11, 4});
  s.sojourn_steps.add(3, 2);
  s.sojourn_steps.add(900, 1);  // sparse far tail
  s.running_max = 77;
  rt::RtPhaseSummary ps;
  ps.phase_index = 1;
  ps.matched = 2;
  ps.heavy_procs = {10, 11};
  ps.completed = true;
  s.phases.push_back(ps);
  s.wire.bytes_sent = 123;
  s.wire.barriers = 9;
  s.wire.barrier_rtt_us.add(15, 3);

  Writer w;
  s.serialize(w);
  Reader r(w.data());
  const ShardState back = ShardState::deserialize(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back.begin, 10u);
  ASSERT_EQ(back.procs.size(), 2u);
  ASSERT_EQ(back.procs[0].queue.size(), 1u);
  EXPECT_EQ(back.procs[0].queue[0].task.origin, 10u);
  EXPECT_EQ(back.procs[0].generated, 5u);
  EXPECT_EQ(back.procs[1].consumed, 3u);
  EXPECT_EQ(back.msg.queries, 11u);
  EXPECT_EQ(back.clamped, 1u);
  EXPECT_EQ(back.deposited, 2u);
  ASSERT_EQ(back.ledger.size(), 1u);
  EXPECT_EQ(back.ledger[0].count, 4u);
  EXPECT_EQ(back.sojourn_steps.total(), 3u);
  EXPECT_EQ(back.sojourn_steps.count_at(900), 1u);
  EXPECT_EQ(back.running_max, 77u);
  ASSERT_EQ(back.phases.size(), 1u);
  EXPECT_EQ(back.phases[0].matched, 2u);
  EXPECT_EQ(back.phases[0].heavy_procs, (std::vector<std::uint32_t>{10, 11}));
  EXPECT_EQ(back.wire.bytes_sent, 123u);
  EXPECT_EQ(back.wire.barrier_rtt_us.total(), 3u);
}

// ---------------------------------------------------------------------------
// Endpoint pairs (live sockets)
// ---------------------------------------------------------------------------

class EndpointPair : public ::testing::TestWithParam<WireKind> {};

TEST_P(EndpointPair, PingPongWithSequenceAndAccounting) {
  auto [a, b] = make_stream_pair(GetParam());
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());

  const auto ping = bytes({1, 2, 3});
  a.send_frame(FrameType::kRun, ping);
  a.send_frame(FrameType::kCollect, nullptr, 0);

  Frame f1 = b.recv_frame();
  EXPECT_EQ(f1.type, FrameType::kRun);
  EXPECT_EQ(f1.seq, 1u);
  EXPECT_EQ(f1.payload, ping);
  Frame f2 = b.recv_frame();
  EXPECT_EQ(f2.type, FrameType::kCollect);
  EXPECT_EQ(f2.seq, 2u);

  b.send_frame(FrameType::kDone, nullptr, 0);
  Frame f3 = a.recv_frame();
  EXPECT_EQ(f3.type, FrameType::kDone);

  EXPECT_EQ(a.frames_sent(), 2u);
  EXPECT_EQ(b.frames_received(), 2u);
  EXPECT_EQ(a.frames_received(), 1u);
  EXPECT_EQ(a.bytes_sent(), 2 * kFrameHeaderSize + ping.size());
  EXPECT_EQ(b.bytes_received(), a.bytes_sent());

  obs::WireStats ws;
  a.account_into(ws);
  b.account_into(ws);
  EXPECT_EQ(ws.frames_sent, 3u);
  EXPECT_EQ(ws.frames_received, 3u);
}

INSTANTIATE_TEST_SUITE_P(Wires, EndpointPair,
                         ::testing::Values(WireKind::kUds, WireKind::kTcp),
                         [](const auto& param_info) {
                           return param_info.param == WireKind::kUds ? "uds"
                                                                     : "tcp";
                         });

}  // namespace
