// Bit-for-bit equivalence of rt::Runtime (deterministic mode) against
// sim::Engine + core::ThresholdBalancer: same seed must yield identical
// heavy/light classifications, transfer ledger, message counters, and final
// per-task queue contents — for ANY worker count. The sim side replays the
// engine's clamp rule on the transfers a CaptureBalancer snapshots, so the
// two ledgers are directly comparable.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "core/threshold_balancer.hpp"
#include "models/burst.hpp"
#include "models/single.hpp"
#include "rt/runtime.hpp"
#include "sim/engine.hpp"
#include "testing/oracle.hpp"

namespace {

using namespace clb;

enum class WhichModel { kSingle, kBurst };

const char* model_name(WhichModel m) {
  return m == WhichModel::kSingle ? "single" : "burst";
}

std::unique_ptr<sim::LoadModel> make_model(WhichModel m, std::uint64_t n) {
  if (m == WhichModel::kSingle) {
    return std::make_unique<models::SingleModel>(0.45, 0.1);
  }
  models::BurstConfig bc;
  bc.period = 16;
  bc.burst_len = 8;
  bc.hot_fraction = 0.1;
  bc.burst_rate = 6;
  return std::make_unique<models::BurstModel>(bc, n);
}

/// Load spikes deposited before a step executes, identically on both sides
/// (guarantees heavy processors, so transfers actually happen).
struct Spike {
  std::uint64_t step;
  std::uint32_t proc;
  std::uint32_t tasks;
};

std::vector<Spike> spikes_for(std::uint64_t seed, std::uint64_t n) {
  const auto p = [&](std::uint64_t k) {
    return static_cast<std::uint32_t>((seed * 7 + k * 13) % n);
  };
  return {{4, p(0), 40}, {9, p(1), 56}, {17, p(2), 48}};
}

struct PhaseRecord {
  std::uint64_t start_step = 0;
  std::uint64_t num_heavy = 0;
  std::uint64_t num_light = 0;
  std::uint64_t matched = 0;
  std::uint64_t unmatched = 0;
  std::uint64_t requests = 0;
  std::uint32_t levels_used = 0;
  std::uint64_t collision_rounds = 0;
  std::vector<std::uint32_t> heavy_procs;
};

struct RunRecord {
  std::vector<std::vector<sim::Task>> queues;
  std::vector<std::uint64_t> generated;
  std::vector<std::uint64_t> consumed;
  std::vector<std::uint64_t> consumed_on_origin;
  std::vector<std::uint64_t> initiations;
  sim::MessageCounters msg;
  std::uint64_t clamped = 0;
  std::uint64_t running_max = 0;
  std::uint64_t total_load = 0;
  std::uint64_t steal_events = 0;
  std::uint64_t stolen = 0;
  std::vector<rt::LedgerEntry> ledger;
  std::vector<PhaseRecord> phases;
};

RunRecord run_sim(std::uint64_t n, std::uint64_t seed, std::uint64_t steps,
                  WhichModel which, const core::PhaseParams& params,
                  const sim::StealConfig& steal = {}) {
  auto model = make_model(which, n);
  core::ThresholdBalancer inner({.params = params});
  clb::testing::CaptureBalancer cap(&inner);
  sim::Engine eng({.n = n, .seed = seed, .steal = steal}, model.get(), &cap);

  RunRecord r;
  cap.set_post_capture_hook([&](sim::Engine& e) {
    // The hook runs after on_step, before apply_transfers: loads are still
    // the post-generation loads the balancer classified, and the scheduled
    // counts can be clamped exactly like Engine::apply_transfers will.
    for (const sim::Transfer& t : cap.captured()) {
      const std::uint64_t cnt = std::min<std::uint64_t>(t.count, e.load(t.from));
      r.ledger.push_back({e.step(), t.from, t.to,
                          static_cast<std::uint32_t>(cnt)});
    }
    if (e.step() % params.phase_len == 0) {
      // Atomic execution finalises the phase inside the same on_step, so
      // last_phase() is the phase that just ran at this very step.
      const core::PhaseStats& ps = inner.last_phase();
      PhaseRecord pr;
      pr.start_step = ps.start_step;
      pr.num_heavy = ps.num_heavy;
      pr.num_light = ps.num_light;
      pr.matched = ps.matched_heavy;
      pr.unmatched = ps.unmatched_heavy;
      pr.requests = ps.requests;
      pr.levels_used = ps.levels_used;
      pr.collision_rounds = ps.collision_rounds;
      for (std::uint64_t p = 0; p < n; ++p) {
        if (e.load(p) >= params.heavy_threshold) {
          pr.heavy_procs.push_back(static_cast<std::uint32_t>(p));
        }
      }
      r.phases.push_back(std::move(pr));
    }
  });

  const std::vector<Spike> spikes = spikes_for(seed, n);
  for (std::uint64_t s = 0; s < steps; ++s) {
    for (const Spike& sp : spikes) {
      if (sp.step != s) continue;
      for (std::uint32_t i = 0; i < sp.tasks; ++i) {
        eng.deposit(sp.proc, sim::Task{static_cast<std::uint32_t>(s), sp.proc, 1});
      }
    }
    eng.step_once();
  }

  for (std::uint64_t p = 0; p < n; ++p) {
    const sim::Processor& proc = eng.processor(p);
    std::vector<sim::Task> q;
    for (std::uint64_t i = 0; i < proc.queue.size(); ++i) {
      q.push_back(proc.queue.at(i));
    }
    r.queues.push_back(std::move(q));
    r.generated.push_back(proc.generated);
    r.consumed.push_back(proc.consumed);
    r.consumed_on_origin.push_back(proc.consumed_on_origin);
    r.initiations.push_back(proc.balance_initiations);
  }
  r.msg = eng.messages();
  r.clamped = eng.clamped_transfers();
  r.running_max = eng.running_max_load();
  r.total_load = eng.total_load();
  r.steal_events = eng.steal_events();
  r.stolen = eng.stolen_tasks();
  // The engine books steals into a separate log (the runtime folds them
  // into its ledger alongside balancer transfers); merge before sorting so
  // the two event sets match.
  for (const sim::StealRecord& t : eng.steal_log()) {
    r.ledger.push_back({t.step, t.from, t.to, t.count});
  }
  // The engine schedules transfers in id-delivery order, which leaves root
  // order once trees deepen; rt::Runtime::ledger() is canonically sorted by
  // (step, from, to, count) — count joins the key because a steal and a
  // phase transfer may share the same (step, from, to).
  std::sort(r.ledger.begin(), r.ledger.end(),
            [](const rt::LedgerEntry& a, const rt::LedgerEntry& b) {
              if (a.step != b.step) return a.step < b.step;
              if (a.from != b.from) return a.from < b.from;
              if (a.to != b.to) return a.to < b.to;
              return a.count < b.count;
            });
  EXPECT_TRUE(eng.conservation_holds());
  return r;
}

RunRecord run_rt(std::uint64_t n, std::uint64_t seed, std::uint64_t steps,
                 WhichModel which, const core::PhaseParams& params,
                 unsigned workers, bool arena = false,
                 const sim::StealConfig& steal = {}) {
  auto model = make_model(which, n);
  rt::RtConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.workers = workers;
  cfg.deterministic = true;
  cfg.policy = rt::RtPolicy::kThreshold;
  cfg.params = params;
  cfg.arena = arena;
  cfg.steal = steal;
  rt::Runtime run(cfg, model.get());

  const std::vector<Spike> spikes = spikes_for(seed, n);
  std::uint64_t done = 0;
  for (const Spike& sp : spikes) {
    if (sp.step > done) {
      run.run(sp.step - done);
      done = sp.step;
    }
    for (std::uint32_t i = 0; i < sp.tasks; ++i) {
      run.deposit(sp.proc,
                  sim::Task{static_cast<std::uint32_t>(sp.step), sp.proc, 1});
    }
  }
  run.run(steps - done);

  RunRecord r;
  for (std::uint64_t p = 0; p < n; ++p) {
    const rt::RtProcessor& proc = run.processor(p);
    std::vector<sim::Task> q;
    for (const rt::RtTask& t : proc.queue) q.push_back(t.task);
    r.queues.push_back(std::move(q));
    r.generated.push_back(proc.generated);
    r.consumed.push_back(proc.consumed);
    r.consumed_on_origin.push_back(proc.consumed_on_origin);
    r.initiations.push_back(proc.balance_initiations);
  }
  r.msg = run.messages();
  r.clamped = run.clamped_transfers();
  r.running_max = run.running_max_load();
  r.total_load = run.total_load();
  r.steal_events = run.steal_events();
  r.stolen = run.stolen_tasks();
  r.ledger = run.ledger();
  for (const rt::RtPhaseSummary& ps : run.phases()) {
    PhaseRecord pr;
    pr.start_step = ps.start_step;
    pr.num_heavy = ps.num_heavy;
    pr.num_light = ps.num_light;
    pr.matched = ps.matched;
    pr.unmatched = ps.unmatched;
    pr.requests = ps.requests;
    pr.levels_used = ps.levels_used;
    pr.collision_rounds = ps.collision_rounds;
    pr.heavy_procs = ps.heavy_procs;
    r.phases.push_back(std::move(pr));
  }
  EXPECT_TRUE(run.conservation_holds());
  return r;
}

void expect_equal(const RunRecord& sim_r, const RunRecord& rt_r,
                  const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(sim_r.queues.size(), rt_r.queues.size());
  for (std::size_t p = 0; p < sim_r.queues.size(); ++p) {
    const auto& a = sim_r.queues[p];
    const auto& b = rt_r.queues[p];
    ASSERT_EQ(a.size(), b.size()) << "queue length, proc " << p;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].birth_step, b[i].birth_step)
          << "proc " << p << " pos " << i;
      EXPECT_EQ(a[i].origin, b[i].origin) << "proc " << p << " pos " << i;
    }
    EXPECT_EQ(sim_r.generated[p], rt_r.generated[p]) << "generated, proc " << p;
    EXPECT_EQ(sim_r.consumed[p], rt_r.consumed[p]) << "consumed, proc " << p;
    EXPECT_EQ(sim_r.consumed_on_origin[p], rt_r.consumed_on_origin[p])
        << "consumed_on_origin, proc " << p;
    EXPECT_EQ(sim_r.initiations[p], rt_r.initiations[p])
        << "initiations, proc " << p;
  }

  EXPECT_EQ(sim_r.msg.queries, rt_r.msg.queries);
  EXPECT_EQ(sim_r.msg.accepts, rt_r.msg.accepts);
  EXPECT_EQ(sim_r.msg.id_messages, rt_r.msg.id_messages);
  EXPECT_EQ(sim_r.msg.control, rt_r.msg.control);
  EXPECT_EQ(sim_r.msg.transfers, rt_r.msg.transfers);
  EXPECT_EQ(sim_r.msg.tasks_moved, rt_r.msg.tasks_moved);
  EXPECT_EQ(sim_r.clamped, rt_r.clamped);
  EXPECT_EQ(sim_r.running_max, rt_r.running_max);
  EXPECT_EQ(sim_r.total_load, rt_r.total_load);
  EXPECT_EQ(sim_r.steal_events, rt_r.steal_events);
  EXPECT_EQ(sim_r.stolen, rt_r.stolen);

  ASSERT_EQ(sim_r.ledger.size(), rt_r.ledger.size());
  for (std::size_t i = 0; i < sim_r.ledger.size(); ++i) {
    EXPECT_EQ(sim_r.ledger[i].step, rt_r.ledger[i].step) << "ledger " << i;
    EXPECT_EQ(sim_r.ledger[i].from, rt_r.ledger[i].from) << "ledger " << i;
    EXPECT_EQ(sim_r.ledger[i].to, rt_r.ledger[i].to) << "ledger " << i;
    EXPECT_EQ(sim_r.ledger[i].count, rt_r.ledger[i].count) << "ledger " << i;
  }

  ASSERT_EQ(sim_r.phases.size(), rt_r.phases.size());
  for (std::size_t i = 0; i < sim_r.phases.size(); ++i) {
    const PhaseRecord& a = sim_r.phases[i];
    const PhaseRecord& b = rt_r.phases[i];
    EXPECT_EQ(a.start_step, b.start_step) << "phase " << i;
    EXPECT_EQ(a.num_heavy, b.num_heavy) << "phase " << i;
    EXPECT_EQ(a.num_light, b.num_light) << "phase " << i;
    EXPECT_EQ(a.matched, b.matched) << "phase " << i;
    EXPECT_EQ(a.unmatched, b.unmatched) << "phase " << i;
    EXPECT_EQ(a.requests, b.requests) << "phase " << i;
    EXPECT_EQ(a.levels_used, b.levels_used) << "phase " << i;
    EXPECT_EQ(a.collision_rounds, b.collision_rounds) << "phase " << i;
    EXPECT_EQ(a.heavy_procs, b.heavy_procs) << "phase " << i;
  }
}

class RtEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, WhichModel>> {};

TEST_P(RtEquivalence, MatchesEngineForAllWorkerCounts) {
  const std::uint64_t seed = std::get<0>(GetParam());
  const WhichModel which = std::get<1>(GetParam());
  const std::uint64_t n = 192;
  const std::uint64_t steps = 48;
  core::Fractions f;
  f.t_min = 64;  // phase_len 4: phases interleave with plain steps
  const core::PhaseParams params = core::PhaseParams::from_n(n, f);

  const RunRecord sim_r = run_sim(n, seed, steps, which, params);
  for (unsigned workers : {1u, 2u, 8u}) {
    const RunRecord rt_r = run_rt(n, seed, steps, which, params, workers);
    expect_equal(sim_r, rt_r,
                 std::string(model_name(which)) + " seed=" +
                     std::to_string(seed) + " workers=" +
                     std::to_string(workers));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndModels, RtEquivalence,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(WhichModel::kSingle,
                                         WhichModel::kBurst)),
    [](const auto& param_info) {
      return std::string(model_name(std::get<1>(param_info.param))) + "_seed" +
             std::to_string(std::get<0>(param_info.param));
    });

// Densest schedule: T floor 16 makes phase_len 1 — a phase every step, the
// maximum barrier pressure per step. Catches slot-reuse bugs that need
// back-to-back phases.
TEST(RtEquivalenceDense, PhaseEveryStep) {
  const std::uint64_t n = 96;
  const std::uint64_t steps = 24;
  const core::PhaseParams params = core::PhaseParams::from_n(n);
  ASSERT_EQ(params.phase_len, 1u);
  const RunRecord sim_r = run_sim(n, 5, steps, WhichModel::kSingle, params);
  for (unsigned workers : {1u, 3u, 8u}) {
    const RunRecord rt_r =
        run_rt(n, 5, steps, WhichModel::kSingle, params, workers);
    expect_equal(sim_r, rt_r, "dense workers=" + std::to_string(workers));
  }
}

// NoBalancing policy: generation/consumption alone must already match the
// engine exactly (same per-processor Philox streams, any worker count).
TEST(RtEquivalenceNone, UnbalancedMatchesEngine) {
  const std::uint64_t n = 128;
  const std::uint64_t steps = 64;
  auto sim_model = make_model(WhichModel::kBurst, n);
  sim::Engine eng({.n = n, .seed = 11}, sim_model.get(), nullptr);
  eng.run(steps);

  auto rt_model = make_model(WhichModel::kBurst, n);
  rt::RtConfig cfg;
  cfg.n = n;
  cfg.seed = 11;
  cfg.workers = 4;
  cfg.policy = rt::RtPolicy::kNone;
  rt::Runtime run(cfg, rt_model.get());
  run.run(steps);

  EXPECT_EQ(eng.total_load(), run.total_load());
  EXPECT_EQ(eng.total_generated(), run.total_generated());
  EXPECT_EQ(eng.total_consumed(), run.total_consumed());
  EXPECT_EQ(eng.running_max_load(), run.running_max_load());
  for (std::uint64_t p = 0; p < n; ++p) {
    ASSERT_EQ(eng.load(p), run.load(p)) << "proc " << p;
  }
  EXPECT_TRUE(run.conservation_holds());
}

// Deterministic mode must be bit-identical across worker counts for the
// AllInAir policy too (sim::baselines::AllInAir uses one global scatter
// stream, so the rt variant is compared against itself, not the engine —
// the per-processor scatter streams are a documented difference).
TEST(RtEquivalenceAir, ScatterDeterministicAcrossWorkers) {
  const std::uint64_t n = 128;
  const std::uint64_t steps = 48;

  auto fingerprint = [&](unsigned workers) {
    auto model = make_model(WhichModel::kSingle, n);
    rt::RtConfig cfg;
    cfg.n = n;
    cfg.seed = 7;
    cfg.workers = workers;
    cfg.policy = rt::RtPolicy::kAllInAir;
    rt::Runtime run(cfg, model.get());
    run.run(steps);
    EXPECT_TRUE(run.conservation_holds());
    std::vector<std::uint64_t> fp;
    for (std::uint64_t p = 0; p < n; ++p) {
      fp.push_back(run.load(p));
      const rt::RtProcessor& proc = run.processor(p);
      fp.push_back(proc.tasks_sent);
      fp.push_back(proc.tasks_received);
    }
    const sim::MessageCounters m = run.messages();
    fp.push_back(m.control);
    fp.push_back(m.transfers);
    fp.push_back(m.tasks_moved);
    return fp;
  };

  const auto base = fingerprint(1);
  EXPECT_EQ(base, fingerprint(2));
  EXPECT_EQ(base, fingerprint(8));
}

// Scale knobs (the million-processor tentpole): the arena-backed SoA queue
// layout must be invisible to every observable, and deterministic work
// stealing must match a shadow engine running the same pure rule — both
// for any worker count, in every on/off combination.
class RtEquivalenceScale
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(RtEquivalenceScale, ArenaAndStealMatchEngine) {
  const bool arena = std::get<0>(GetParam());
  const bool steal_on = std::get<1>(GetParam());
  const std::uint64_t n = 192;
  const std::uint64_t steps = 48;
  core::Fractions f;
  f.t_min = 64;  // phase_len 4: phases interleave with steal-active steps
  const core::PhaseParams params = core::PhaseParams::from_n(n, f);
  sim::StealConfig steal;
  steal.enabled = steal_on;

  const RunRecord sim_r = run_sim(n, 2, steps, WhichModel::kBurst, params,
                                  steal);
  if (steal_on) {
    // The burst spikes guarantee loaded victims while quiet processors run
    // dry, so an all-green run with zero steals would be vacuous.
    EXPECT_GT(sim_r.steal_events, 0u);
  }
  for (unsigned workers : {1u, 2u, 8u}) {
    const RunRecord rt_r = run_rt(n, 2, steps, WhichModel::kBurst, params,
                                  workers, arena, steal);
    expect_equal(sim_r, rt_r,
                 std::string("scale arena=") + (arena ? "on" : "off") +
                     " steal=" + (steal_on ? "on" : "off") +
                     " workers=" + std::to_string(workers));
  }
}

INSTANTIATE_TEST_SUITE_P(
    ArenaSteal, RtEquivalenceScale,
    ::testing::Combine(::testing::Bool(), ::testing::Bool()),
    [](const auto& param_info) {
      return std::string("arena_") +
             (std::get<0>(param_info.param) ? "on" : "off") + "_steal_" +
             (std::get<1>(param_info.param) ? "on" : "off");
    });

// One 2^16-processor point: the tentpole's target regime (scaled down in
// steps) with arena and stealing both on stays bit-identical to the engine.
TEST(RtEquivalenceScale64k, ArenaStealMatchesEngine) {
  const std::uint64_t n = 1ULL << 16;
  const std::uint64_t steps = 24;
  core::Fractions f;
  f.t_min = 64;
  const core::PhaseParams params = core::PhaseParams::from_n(n, f);
  sim::StealConfig steal;
  steal.enabled = true;

  const RunRecord sim_r = run_sim(n, 3, steps, WhichModel::kBurst, params,
                                  steal);
  EXPECT_GT(sim_r.steal_events, 0u);
  for (unsigned workers : {1u, 4u}) {
    const RunRecord rt_r = run_rt(n, 3, steps, WhichModel::kBurst, params,
                                  workers, true, steal);
    expect_equal(sim_r, rt_r, "n64k workers=" + std::to_string(workers));
  }
}

}  // namespace
