// Tests for the src/testing fuzz subsystem itself: scenario sampling,
// override materialisation, the invariant oracle (clean pass + seeded
// mutation conviction), shrinking, and repro-command round-trips.
#include <gtest/gtest.h>

#include "testing/fuzzer.hpp"
#include "testing/oracle.hpp"
#include "testing/scenario.hpp"

namespace {

// clb::testing clashes with gtest's ::testing inside `using namespace clb`,
// so everything here goes through an explicit alias instead.
namespace fuzz = clb::testing;
using fuzz::FuzzOptions;
using fuzz::MutationKind;
using fuzz::Scenario;

TEST(Scenario, SamplingIsDeterministic) {
  for (std::uint64_t i = 0; i < 16; ++i) {
    const Scenario a = Scenario::sample(42, i);
    const Scenario b = Scenario::sample(42, i);
    EXPECT_EQ(a.describe(), b.describe());
    EXPECT_EQ(a.n, b.n);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.engine_seed, b.engine_seed);
    EXPECT_EQ(a.faults.size(), b.faults.size());
  }
}

TEST(Scenario, SamplingCoversCollisionAndEngineScenarios) {
  bool saw_collision = false, saw_engine = false, saw_faults = false;
  for (std::uint64_t i = 0; i < 32; ++i) {
    const Scenario s = Scenario::sample(1, i);
    (s.collision_only ? saw_collision : saw_engine) = true;
    saw_faults = saw_faults || !s.faults.empty();
    EXPECT_GE(s.n, 16u);
    EXPECT_GE(s.steps, 1u);
    EXPECT_LT(s.b, s.a);
  }
  EXPECT_TRUE(saw_collision);
  EXPECT_TRUE(saw_engine);
  EXPECT_TRUE(saw_faults);
}

TEST(Fuzzer, MaterializeAppliesOverrides) {
  FuzzOptions opt;
  opt.scenario_seed = 1;
  opt.n = 4;  // below the floor of 16
  opt.steps = 3;
  opt.max_faults = 0;
  const Scenario s = fuzz::materialize(opt, 0);
  EXPECT_EQ(s.n, 16u);
  EXPECT_EQ(s.steps, 3u);
  EXPECT_TRUE(s.faults.empty());
}

TEST(Fuzzer, MaterializeForcedMutationKeepsBalancerConfigValid) {
  // Collision-only scenarios sample b up to a-1; a forced mutation converts
  // them to engine scenarios whose threshold balancer CLB_CHECKs b in {1,2}.
  FuzzOptions opt;
  opt.scenario_seed = 1;
  opt.mutate = MutationKind::kDropTask;
  for (std::uint64_t i = 0; i < 24; ++i) {
    const Scenario s = fuzz::materialize(opt, i);
    EXPECT_FALSE(s.collision_only);
    EXPECT_GE(s.a, 4u);
    EXPECT_LE(s.b, 2u);
    EXPECT_LE(s.c, 2u);
    EXPECT_EQ(s.mutation, MutationKind::kDropTask);
  }
}

TEST(Oracle, CleanScenariosPass) {
  for (std::uint64_t i = 0; i < 12; ++i) {
    const Scenario s = Scenario::sample(7, i);
    const auto report = fuzz::check_scenario(s);
    EXPECT_TRUE(report.ok) << "index " << i << ": " << report.what;
  }
}

TEST(Oracle, ConvictsEveryMutationKind) {
  const MutationKind kinds[] = {
      MutationKind::kDropTask, MutationKind::kDupTask,
      MutationKind::kReorder, MutationKind::kPhantomMessage};
  for (const MutationKind kind : kinds) {
    FuzzOptions opt;
    opt.scenario_seed = 1;
    opt.mutate = kind;
    bool convicted = false;
    for (std::uint64_t i = 0; i < 8 && !convicted; ++i) {
      const Scenario s = fuzz::materialize(opt, i);
      const auto report = fuzz::check_scenario(s);
      convicted = !report.ok;
      if (!report.ok) {
        EXPECT_TRUE(report.mutation_applied);
      }
    }
    EXPECT_TRUE(convicted)
        << "mutation " << fuzz::to_string(kind) << " never caught";
  }
}

TEST(Oracle, ShrinkProducesSmallerStillFailingScenario) {
  FuzzOptions opt;
  opt.scenario_seed = 1;
  opt.mutate = MutationKind::kDropTask;
  // Find a failing index first.
  for (std::uint64_t i = 0; i < 8; ++i) {
    FuzzOptions replay = opt;
    replay.index = i;
    const Scenario s = fuzz::materialize(replay, i);
    if (fuzz::check_scenario(s).ok) continue;
    const Scenario small = fuzz::shrink_failure(replay, s);
    EXPECT_FALSE(fuzz::check_scenario(small).ok);
    EXPECT_LE(small.n, s.n);
    EXPECT_LE(small.steps, s.steps);
    EXPECT_LE(small.faults.size(), s.faults.size());
    return;
  }
  FAIL() << "no failing scenario found to shrink";
}

TEST(Fuzzer, ReproCommandRoundTrips) {
  const Scenario s = Scenario::sample(5, 3);
  const std::string cmd = s.repro_command();
  EXPECT_NE(cmd.find("--scenario-seed=5"), std::string::npos);
  EXPECT_NE(cmd.find("--index=3"), std::string::npos);
  EXPECT_NE(cmd.find("--n=" + std::to_string(s.n)), std::string::npos);
  EXPECT_NE(cmd.find("--steps=" + std::to_string(s.steps)),
            std::string::npos);
}

TEST(Fuzzer, RunFuzzCleanBatchReturnsZero) {
  FuzzOptions opt;
  opt.scenario_seed = 11;
  opt.count = 25;
  EXPECT_EQ(fuzz::run_fuzz(opt), 0);
}

TEST(Fuzzer, RunFuzzExpectFailureConvictsMutant) {
  FuzzOptions opt;
  opt.scenario_seed = 1;
  opt.count = 8;
  opt.mutate = MutationKind::kDupTask;
  opt.expect_failure = true;
  opt.shrink = false;
  EXPECT_EQ(fuzz::run_fuzz(opt), 0);
}

}  // namespace
