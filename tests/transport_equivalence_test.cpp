// End-to-end lockstep runs of the cross-process transport: shard processes
// over UDS (and TCP) must be bit-identical — ledger, counters, phase log,
// per-queue task identity — to the in-memory rt::Runtime shadow for every
// seed x model x shard-count combination, and the frame-corrupt mutation
// (a payload corrupted BEFORE the frame is signed, so the CRC accepts it)
// must be convicted by the shadow cross-check and by nothing weaker.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "models/burst.hpp"
#include "transport/process_runtime.hpp"
#include "transport/shadow.hpp"

namespace {

using namespace clb;
using namespace clb::transport;

enum class WhichModel { kSingle, kBurst };

const char* model_name(WhichModel m) {
  return m == WhichModel::kSingle ? "single" : "burst";
}

ModelSpec spec_for(WhichModel m) {
  if (m == WhichModel::kSingle) return ModelSpec::single(0.45, 0.1);
  models::BurstConfig bc;
  bc.period = 16;
  bc.burst_len = 8;
  bc.hot_fraction = 0.1;
  bc.burst_rate = 6;
  return ModelSpec::bursty(bc);
}

/// Same spike schedule as rt_equivalence_test.cpp: deposits guarantee heavy
/// processors, so transfers (and with >= 2 shards, cross-process transfers)
/// actually happen.
struct Spike {
  std::uint64_t step;
  std::uint32_t proc;
  std::uint32_t tasks;
};

std::vector<Spike> spikes_for(std::uint64_t seed, std::uint64_t n) {
  const auto p = [&](std::uint64_t k) {
    return static_cast<std::uint32_t>((seed * 7 + k * 13) % n);
  };
  return {{4, p(0), 40}, {9, p(1), 56}, {17, p(2), 48}};
}

ShardRunConfig make_cfg(std::uint64_t n, std::uint64_t seed,
                        std::uint32_t workers, WhichModel which) {
  ShardRunConfig c;
  c.n = n;
  c.seed = seed;
  c.workers = workers;
  c.deterministic = true;
  c.policy = rt::RtPolicy::kThreshold;
  core::Fractions f;
  f.t_min = 64;  // phase_len 4: phases interleave with plain steps
  c.params = core::PhaseParams::from_n(n, f);
  c.model = spec_for(which);
  return c;
}

/// Drives the run()/deposit() interleave of rt_equivalence_test's run_rt.
void drive(ProcessRuntime& pr, std::uint64_t steps, std::uint64_t seed,
           std::uint64_t n) {
  const std::vector<Spike> spikes = spikes_for(seed, n);
  std::uint64_t done = 0;
  for (const Spike& sp : spikes) {
    if (sp.step > done) {
      pr.run(sp.step - done);
      done = sp.step;
    }
    for (std::uint32_t i = 0; i < sp.tasks; ++i) {
      pr.deposit(sp.proc,
                 sim::Task{static_cast<std::uint32_t>(sp.step), sp.proc, 1});
    }
  }
  pr.run(steps - done);
}

/// Full-state fingerprint for the cross-shard-count identity check: queue
/// task identities, counters, the sorted ledger, and the phase log.
std::vector<std::uint64_t> fingerprint(ProcessRuntime& pr) {
  std::vector<std::uint64_t> fp;
  for (std::uint64_t p = 0; p < pr.n(); ++p) {
    const rt::RtProcessor& proc = pr.processor(p);
    fp.push_back(proc.queue.size());
    for (const rt::RtTask& t : proc.queue) {
      fp.push_back((static_cast<std::uint64_t>(t.task.birth_step) << 32) |
                   t.task.origin);
    }
    fp.push_back(proc.generated);
    fp.push_back(proc.consumed);
    fp.push_back(proc.balance_initiations);
  }
  const sim::MessageCounters m = pr.messages();
  fp.insert(fp.end(), {m.queries, m.accepts, m.id_messages, m.control,
                       m.transfers, m.tasks_moved});
  fp.push_back(pr.clamped_transfers());
  fp.push_back(pr.running_max_load());
  for (const rt::LedgerEntry& e : pr.ledger()) {
    fp.insert(fp.end(), {e.step, e.from, e.to, e.count});
  }
  for (const rt::RtPhaseSummary& ps : pr.phases()) {
    fp.insert(fp.end(), {ps.phase_index, ps.start_step, ps.num_heavy,
                         ps.num_light, ps.matched, ps.unmatched, ps.requests,
                         ps.levels_used, ps.collision_rounds});
    for (std::uint32_t h : ps.heavy_procs) fp.push_back(h);
  }
  return fp;
}

class TransportEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, WhichModel>> {
};

TEST_P(TransportEquivalence, UdsMatchesShadowForAllShardCounts) {
  const std::uint64_t seed = std::get<0>(GetParam());
  const WhichModel which = std::get<1>(GetParam());
  const std::uint64_t n = 192;
  const std::uint64_t steps = 48;

  std::vector<std::uint64_t> base_fp;
  for (std::uint32_t shards : {2u, 4u}) {
    SCOPED_TRACE(std::string(model_name(which)) + " seed=" +
                 std::to_string(seed) + " shards=" + std::to_string(shards));
    ProcessRuntime pr(make_cfg(n, seed, shards, which), WireKind::kUds);
    drive(pr, steps, seed, n);

    const ShadowReport rep = shadow_check(pr);
    EXPECT_TRUE(rep.ok) << rep.divergence;
    EXPECT_TRUE(pr.conservation_holds());
    EXPECT_FALSE(pr.phases().empty());

    // The wire actually carried the run: frames in both planes, one barrier
    // wave per superstep, RTTs measured.
    const obs::WireStats& ws = pr.wire_stats();
    EXPECT_GT(ws.bytes_sent, 0u);
    EXPECT_GT(ws.frames_sent, 0u);
    EXPECT_GT(ws.barriers, 0u);
    EXPECT_EQ(ws.barrier_rtt_us.total(), ws.barriers);

    // Shard-count invariance, directly: 2 and 4 processes produce the same
    // bits, not merely the same shadow verdict.
    const std::vector<std::uint64_t> fp = fingerprint(pr);
    if (base_fp.empty()) {
      base_fp = fp;
    } else {
      EXPECT_EQ(base_fp, fp) << "2-shard vs 4-shard state diverged";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndModels, TransportEquivalence,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(WhichModel::kSingle,
                                         WhichModel::kBurst)),
    [](const auto& param_info) {
      return std::string(model_name(std::get<1>(param_info.param))) + "_seed" +
             std::to_string(std::get<0>(param_info.param));
    });

// Same codec, same protocol, different socket: one TCP run must pass the
// identical shadow check.
TEST(TransportTcp, MatchesShadow) {
  const std::uint64_t n = 192;
  ProcessRuntime pr(make_cfg(n, 1, 2, WhichModel::kSingle), WireKind::kTcp);
  drive(pr, 48, 1, n);
  const ShadowReport rep = shadow_check(pr);
  EXPECT_TRUE(rep.ok) << rep.divergence;
  EXPECT_GT(pr.wire_stats().barriers, 0u);
}

// kNone policy: no data plane at all (no kBatch frames), only the lockstep
// barrier; generation/consumption must still match the shadow exactly.
TEST(TransportNone, UnbalancedMatchesShadow) {
  ShardRunConfig cfg = make_cfg(128, 11, 3, WhichModel::kBurst);
  cfg.policy = rt::RtPolicy::kNone;
  ProcessRuntime pr(cfg, WireKind::kUds);
  pr.run(64);
  const ShadowReport rep = shadow_check(pr);
  EXPECT_TRUE(rep.ok) << rep.divergence;
  const sim::MessageCounters m = pr.messages();
  EXPECT_EQ(m.transfers, 0u);
}

// The RtConfig seam: constructing from an rt::RtConfig with
// transport = kUds must behave identically to the native constructor.
TEST(TransportSeam, RtConfigConstructor) {
  rt::RtConfig cfg;
  cfg.n = 192;
  cfg.seed = 2;
  cfg.workers = 2;
  cfg.deterministic = true;
  cfg.policy = rt::RtPolicy::kThreshold;
  core::Fractions f;
  f.t_min = 64;
  cfg.params = core::PhaseParams::from_n(cfg.n, f);
  cfg.transport = rt::Transport::kUds;
  ProcessRuntime pr(cfg, spec_for(WhichModel::kSingle));
  drive(pr, 48, 2, cfg.n);
  const ShadowReport rep = shadow_check(pr);
  EXPECT_TRUE(rep.ok) << rep.divergence;
}

// The frame-corrupt mutation: worker 0 flips one bit in the first task of
// its first remote kTransfer payload BEFORE the frame is signed. The CRC
// accepts the frame, sequence numbers stay clean, every counter remains
// self-consistent — only the shadow-fabric cross-check can convict it,
// through task identity (still queued) or the sojourn histogram (consumed).
TEST(TransportMutation, FrameCorruptConvictedByShadowOnly) {
  const std::uint64_t n = 192;
  ShardRunConfig cfg = make_cfg(n, 1, 2, WhichModel::kSingle);
  cfg.corrupt_transfer_frame = 1;
  cfg.track_sojourn = true;  // convicts even if the corrupted task was consumed
  ProcessRuntime pr(cfg, WireKind::kUds);
  drive(pr, 48, 1, n);

  // The transport itself is oblivious: the run completes, conservation holds
  // (the task still exists, just with a forged birth identity), counters are
  // plausible.
  EXPECT_TRUE(pr.conservation_holds());

  const ShadowReport rep = shadow_check(pr);
  EXPECT_FALSE(rep.ok)
      << "a corrupted-before-signing frame must not survive the shadow check";
  EXPECT_FALSE(rep.divergence.empty());
}

// Control for the mutation test: the identical scenario with the fault
// injection off passes — so the conviction above is the corruption, not the
// scenario.
TEST(TransportMutation, SameScenarioCleanPasses) {
  const std::uint64_t n = 192;
  ShardRunConfig cfg = make_cfg(n, 1, 2, WhichModel::kSingle);
  cfg.track_sojourn = true;
  ProcessRuntime pr(cfg, WireKind::kUds);
  drive(pr, 48, 1, n);
  const ShadowReport rep = shadow_check(pr);
  EXPECT_TRUE(rep.ok) << rep.divergence;
}

}  // namespace
