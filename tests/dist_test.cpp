// Tests for the distributed protocol implementation: the Network fabric and
// the per-processor DistThresholdBalancer state machines.
#include <gtest/gtest.h>

#include "core/params.hpp"
#include "core/threshold_balancer.hpp"
#include "dist/dist_balancer.hpp"
#include "dist/network.hpp"
#include "models/single.hpp"
#include "net/topology.hpp"
#include "models/trace.hpp"
#include "sim/engine.hpp"

namespace clb::dist {
namespace {

TEST(Network, DeliversAfterLatency) {
  Network net(8, 3);
  net.send(Message{MsgKind::kQuery, 0, 5, 0, 0}, /*now=*/10);
  EXPECT_EQ(net.in_flight(), 1u);
  EXPECT_TRUE(net.deliver(11).empty());
  EXPECT_TRUE(net.deliver(12).empty());
  const auto& due = net.deliver(13);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].to, 5u);
  EXPECT_EQ(net.in_flight(), 0u);
}

TEST(Network, GroupsByRecipientKeepingSendOrder) {
  Network net(8, 1);
  net.send(Message{MsgKind::kQuery, 0, 3, 100, 0}, 0);
  net.send(Message{MsgKind::kQuery, 1, 2, 200, 0}, 0);
  net.send(Message{MsgKind::kQuery, 2, 3, 300, 0}, 0);
  const auto& due = net.deliver(1);
  ASSERT_EQ(due.size(), 3u);
  EXPECT_EQ(due[0].to, 2u);
  EXPECT_EQ(due[1].to, 3u);
  EXPECT_EQ(due[1].payload_a, 100u);  // send order preserved within proc 3
  EXPECT_EQ(due[2].payload_a, 300u);
}

TEST(Network, ResetDropsEverything) {
  Network net(8, 2);
  net.send(Message{}, 0);
  net.reset();
  EXPECT_EQ(net.in_flight(), 0u);
  EXPECT_TRUE(net.deliver(2).empty());
  EXPECT_EQ(net.total_sent(), 1u);  // lifetime counter survives
}

DistConfig config_for(std::uint64_t n, std::uint32_t latency = 1) {
  return DistConfig{.params = core::PhaseParams::from_n(n),
                    .latency = latency};
}

TEST(DistBalancer, RelievesHeavyProcessors) {
  // One heavy spike, everyone else empty: within a few steps (round trips)
  // the heavy must have matched and shed transfer_amount tasks.
  const std::uint64_t n = 2048;
  const auto cfg = config_for(n);
  std::vector<std::uint32_t> row(n, 0);
  row[7] = static_cast<std::uint32_t>(3 * cfg.params.heavy_threshold);
  models::TraceModel model({row}, {});
  DistThresholdBalancer balancer(cfg);
  sim::Engine eng({.n = n, .seed = 1}, &model, &balancer);
  // The processor stays heavy after each T/4 transfer and re-triggers in
  // successive (variable-length) phases until it drops below T/2.
  eng.run(60);
  EXPECT_GE(balancer.stats().matched, 1u);
  EXPECT_LT(eng.load(7), cfg.params.heavy_threshold);
  EXPECT_EQ(eng.messages().tasks_moved % cfg.params.transfer_amount, 0u);
  EXPECT_EQ(eng.load(7) + eng.messages().tasks_moved,
            3 * cfg.params.heavy_threshold);
}

TEST(DistBalancer, BoundsLoadUnderContinuousGeneration) {
  const std::uint64_t n = 1 << 12;
  const auto cfg = config_for(n);
  models::SingleModel model(0.4, 0.1);
  DistThresholdBalancer balancer(cfg);
  sim::Engine eng({.n = n, .seed = 2}, &model, &balancer);
  eng.run(3000);
  EXPECT_LE(eng.running_max_load(), 2 * cfg.params.T);
  EXPECT_EQ(eng.total_generated(), eng.total_consumed() + eng.total_load());
  const auto& st = balancer.stats();
  EXPECT_GT(st.phases, 100u);
  EXPECT_EQ(st.forced_phase_ends, 0u);
  // Nearly every heavy finds a partner.
  EXPECT_GT(st.matched, 0u);
  EXPECT_LT(static_cast<double>(st.unmatched),
            0.02 * static_cast<double>(st.matched + st.unmatched) + 3.0);
}

TEST(DistBalancer, PhaseDurationScalesWithLatency) {
  const std::uint64_t n = 1 << 11;
  models::SingleModel m1(0.4, 0.1), m2(0.4, 0.1);
  DistThresholdBalancer b1(config_for(n, 1));
  DistThresholdBalancer b4(config_for(n, 4));
  sim::Engine e1({.n = n, .seed = 3}, &m1, &b1);
  sim::Engine e4({.n = n, .seed = 3}, &m2, &b4);
  e1.run(2000);
  e4.run(2000);
  // A collision round costs 2*latency steps, so mean phase duration must
  // grow with latency.
  EXPECT_GT(b4.stats().phase_duration.mean(),
            1.5 * b1.stats().phase_duration.mean());
}

TEST(DistBalancer, HigherLatencyStillStable) {
  const std::uint64_t n = 1 << 11;
  const auto cfg = config_for(n, 8);
  models::SingleModel model(0.4, 0.1);
  DistThresholdBalancer balancer(cfg);
  sim::Engine eng({.n = n, .seed = 4}, &model, &balancer);
  eng.run(3000);
  EXPECT_LE(eng.running_max_load(), 3 * cfg.params.T);
  EXPECT_EQ(eng.total_generated(), eng.total_consumed() + eng.total_load());
}

TEST(DistBalancer, DeterministicReplay) {
  const std::uint64_t n = 1 << 10;
  auto run = [&] {
    models::SingleModel model(0.4, 0.1);
    DistThresholdBalancer balancer(config_for(n, 2));
    sim::Engine eng({.n = n, .seed = 5}, &model, &balancer);
    eng.run(1500);
    return std::make_tuple(eng.total_load(), eng.running_max_load(),
                           eng.messages().queries, eng.messages().accepts,
                           balancer.stats().matched,
                           balancer.network().total_sent());
  };
  EXPECT_EQ(run(), run());
}

TEST(DistBalancer, NoLightPartnersReportsUnmatched) {
  // Everyone heavy: requests exhaust their round budgets / dead-end and the
  // phase still completes without forcing.
  const std::uint64_t n = 512;
  const auto cfg = config_for(n);
  std::vector<std::uint32_t> row(
      n, static_cast<std::uint32_t>(2 * cfg.params.heavy_threshold));
  models::TraceModel model({row}, {});
  DistThresholdBalancer balancer(cfg);
  sim::Engine eng({.n = n, .seed = 6}, &model, &balancer);
  eng.run(200);
  const auto& st = balancer.stats();
  EXPECT_GT(st.phases, 0u);
  EXPECT_EQ(st.matched, 0u);
  EXPECT_GT(st.unmatched, 0u);
  EXPECT_EQ(eng.messages().transfers, 0u);
}

TEST(DistBalancer, ForcedPhaseEndRecoversCleanly) {
  // An absurdly small phase budget forces mid-protocol aborts; the balancer
  // must report them, drop in-flight state, and keep the system consistent.
  const std::uint64_t n = 512;
  auto cfg = config_for(n, 4);  // long round trips
  cfg.max_phase_steps = 3;      // < one round trip: every phase is forced
  models::SingleModel model(0.4, 0.1);
  DistThresholdBalancer balancer(cfg);
  sim::Engine eng({.n = n, .seed = 9}, &model, &balancer);
  eng.run(500);
  const auto& st = balancer.stats();
  EXPECT_GT(st.phases, 50u);
  EXPECT_GT(st.forced_phase_ends, 0u);
  EXPECT_EQ(eng.total_generated(), eng.total_consumed() + eng.total_load());
  // After each forced end the fabric was reset.
  EXPECT_LE(balancer.network().in_flight(), 5000u);
}

TEST(DistBalancer, MessageAccountingConsistent) {
  const std::uint64_t n = 1 << 11;
  models::SingleModel model(0.4, 0.1);
  DistThresholdBalancer balancer(config_for(n));
  sim::Engine eng({.n = n, .seed = 7}, &model, &balancer);
  eng.run(1000);
  const auto& mc = eng.messages();
  // Queries/accepts/ids/forwards are counted at send time; transfers are
  // counted by the engine at delivery, so any gap is exactly the transfer
  // payloads still in flight when the run stopped.
  const std::uint64_t counted = mc.queries + mc.accepts + mc.id_messages +
                                mc.control + mc.transfers;
  EXPECT_GE(balancer.network().total_sent(), counted);
  EXPECT_LE(balancer.network().total_sent() - counted,
            balancer.network().in_flight());
  // Each accept answers one query; accepts can never exceed queries.
  EXPECT_LE(mc.accepts, mc.queries);
}

TEST(NetworkTopology, RoutedDelayScalesWithHops) {
  net::HypercubeTopology cube(16);
  Network netw(16, 2, &cube);
  EXPECT_EQ(netw.delay(0, 1), 2u);        // 1 hop
  EXPECT_EQ(netw.delay(0, 0b1111), 8u);   // 4 hops
  EXPECT_EQ(netw.max_delay(), 8u);
  netw.send(Message{MsgKind::kQuery, 0, 15, 0, 0}, 0);
  EXPECT_TRUE(netw.deliver(7).empty());
  EXPECT_EQ(netw.deliver(8).size(), 1u);
  EXPECT_EQ(netw.total_hops(), 4u);
}

TEST(DistBalancerTopology, StableOnHypercube) {
  const std::uint64_t n = 1 << 10;
  net::HypercubeTopology cube(n);
  models::SingleModel model(0.4, 0.1);
  DistThresholdBalancer balancer({.params = core::PhaseParams::from_n(n),
                                  .latency = 1,
                                  .topology = &cube});
  sim::Engine eng({.n = n, .seed = 10}, &model, &balancer);
  eng.run(2500);
  EXPECT_EQ(eng.total_generated(), eng.total_consumed() + eng.total_load());
  EXPECT_LE(eng.running_max_load(),
            3 * core::PhaseParams::from_n(n).T);
  const auto& st = balancer.stats();
  EXPECT_EQ(st.forced_phase_ends, 0u);
  // Round trips average ~2 * (diameter/2) hops: phases are slower than on
  // the complete graph with the same per-hop latency.
  models::SingleModel m2(0.4, 0.1);
  DistThresholdBalancer flat({.params = core::PhaseParams::from_n(n),
                              .latency = 1});
  sim::Engine e2({.n = n, .seed = 10}, &m2, &flat);
  e2.run(2500);
  EXPECT_GT(st.phase_duration.mean(), flat.stats().phase_duration.mean());
  // Link-traversal accounting is live.
  EXPECT_GT(balancer.network().total_hops(),
            balancer.network().total_sent());
}

TEST(DistBalancer, ComparableToOracleImplementation) {
  // The distributed run must land in the same max-load regime as the
  // oracle (atomic) implementation — not identical trajectories, but the
  // same bounded behaviour on the same workload.
  const std::uint64_t n = 1 << 12;
  const auto params = core::PhaseParams::from_n(n);
  models::SingleModel m1(0.4, 0.1), m2(0.4, 0.1);
  core::ThresholdBalancer oracle({.params = params});
  DistThresholdBalancer distributed(config_for(n));
  sim::Engine e1({.n = n, .seed = 8}, &m1, &oracle);
  sim::Engine e2({.n = n, .seed = 8}, &m2, &distributed);
  e1.run(2500);
  e2.run(2500);
  // The distributed run reacts 2*latency steps later per round, so peaks
  // run a few tasks higher — but stay within one T of the oracle.
  EXPECT_LE(e2.running_max_load(), e1.running_max_load() + params.T);
  EXPECT_NEAR(static_cast<double>(e2.total_load()),
              static_cast<double>(e1.total_load()),
              0.2 * static_cast<double>(e1.total_load()));
}

}  // namespace
}  // namespace clb::dist
