// Tests for the comparison balancers (§1.1 related work realisations).
#include <gtest/gtest.h>

#include "baselines/all_in_air.hpp"
#include "baselines/lauer.hpp"
#include "baselines/lm.hpp"
#include "baselines/random_seeking.hpp"
#include "baselines/rsu.hpp"
#include "models/single.hpp"
#include "models/trace.hpp"
#include "sim/engine.hpp"

namespace clb::baselines {
namespace {

// One processor starts with 64 tasks, the rest idle; no further generation.
std::vector<std::vector<std::uint32_t>> spike_table(std::uint64_t n,
                                                    std::uint32_t load) {
  std::vector<std::uint32_t> row(n, 0);
  row[0] = load;
  return {row};
}

TEST(Rsu, SpreadsASpike) {
  models::TraceModel model(spike_table(64, 64), {});
  RsuBalancer balancer({.p_attempt = 1.0, .min_diff = 2, .load_scaled = true});
  sim::Engine eng({.n = 64, .seed = 3}, &model, &balancer);
  eng.run(50);
  EXPECT_LT(eng.step_max_load(), 16u);
  EXPECT_EQ(eng.total_load(), 64u);  // balancing conserves tasks
}

TEST(Rsu, CountsProbeMessages) {
  models::TraceModel model(spike_table(64, 64), {});
  RsuBalancer balancer({.p_attempt = 1.0, .min_diff = 2, .load_scaled = true});
  sim::Engine eng({.n = 64, .seed = 3}, &model, &balancer);
  eng.run(5);
  EXPECT_GT(eng.messages().control, 0u);
}

TEST(Rsu, StableUnderContinuousLoad) {
  models::SingleModel model(0.4, 0.1);
  RsuBalancer balancer;
  sim::Engine eng({.n = 256, .seed = 5}, &model, &balancer);
  eng.run(2000);
  EXPECT_LT(eng.step_max_load(), 40u);
  EXPECT_LT(eng.total_load(), 256u * 8);
}

TEST(Lm, TriggersOnDoubling) {
  models::TraceModel model(spike_table(64, 64), {});
  LmBalancer balancer({.partners = 2, .min_trigger = 4});
  sim::Engine eng({.n = 64, .seed = 3}, &model, &balancer);
  eng.run(30);
  EXPECT_LT(eng.step_max_load(), 64u);
  EXPECT_EQ(eng.total_load(), 64u);
}

TEST(Lm, QuietSystemStaysQuiet) {
  models::TraceModel model({{0, 0, 0, 0}}, {});
  LmBalancer balancer;
  sim::Engine eng({.n = 4, .seed = 1}, &model, &balancer);
  eng.run(10);
  EXPECT_EQ(eng.messages().control, 0u);
}

TEST(Lauer, EqualizesAlternatingLoads) {
  // Alternating 0/8 loads: av = 4, band = 2; any (8, 0) pair equalizes to
  // (4, 4), which is applicative, so the system flattens quickly.
  const std::uint64_t n = 64;
  std::vector<std::uint32_t> row(n, 0);
  for (std::uint64_t p = 0; p < n; p += 2) row[p] = 8;
  models::TraceModel model({row}, {});
  LauerBalancer balancer({.c = 0.5, .max_probes = 8, .min_band = 2.0});
  sim::Engine eng({.n = n, .seed = 3}, &model, &balancer);
  eng.run(30);
  EXPECT_LE(eng.step_max_load(), 6u);
  EXPECT_EQ(eng.total_load(), 8u * n / 2);
}

TEST(Lauer, StrictApplicativeRuleStallsOnExtremeSpike) {
  // The limitation the paper points out: Lauer's scheme only helps when
  // av is large enough. A spike of 64*av has no applicative partner
  // (equalizing leaves both sides active), so nothing moves.
  models::TraceModel model(spike_table(64, 128), {});
  LauerBalancer balancer({.c = 0.5, .max_probes = 8, .min_band = 2.0});
  sim::Engine eng({.n = 64, .seed = 3}, &model, &balancer);
  eng.run(20);
  EXPECT_EQ(eng.step_max_load(), 128u);
  EXPECT_EQ(eng.messages().transfers, 0u);
}

TEST(AllInAir, FlattensCompletely) {
  models::TraceModel model(spike_table(256, 256), {});
  AllInAirBalancer balancer({.interval = 1});
  sim::Engine eng({.n = 256, .seed = 3}, &model, &balancer);
  eng.run(2);
  // 256 tasks over 256 procs scattered randomly: max is ~log n/log log n.
  EXPECT_LE(eng.step_max_load(), 8u);
  EXPECT_EQ(eng.total_load(), 256u);
}

TEST(AllInAir, MessageCostIsTotalLoadPerInterval) {
  models::TraceModel model(spike_table(128, 100), {});
  AllInAirBalancer balancer({.interval = 1});
  sim::Engine eng({.n = 128, .seed = 3}, &model, &balancer);
  eng.step_once();
  EXPECT_GE(eng.messages().control, 100u);  // one routing message per task
  EXPECT_EQ(eng.messages().tasks_moved, 100u);
}

TEST(AllInAir, TwoChoiceTightensMaxLoad) {
  models::TraceModel m1(spike_table(4096, 4096), {});
  models::TraceModel m2(spike_table(4096, 4096), {});
  AllInAirBalancer scatter({.interval = 1, .two_choice = false});
  AllInAirBalancer twochoice({.interval = 1, .two_choice = true});
  sim::Engine e1({.n = 4096, .seed = 3}, &m1, &scatter);
  sim::Engine e2({.n = 4096, .seed = 3}, &m2, &twochoice);
  e1.step_once();
  e2.step_once();
  EXPECT_LE(e2.step_max_load(), e1.step_max_load());
  EXPECT_LE(e2.step_max_load(), 4u);  // ~log log n
}

TEST(RandomSeeking, MovesLoadFromSourceToSinks) {
  models::TraceModel model(spike_table(64, 64), {});
  RandomSeekingBalancer balancer(
      {.hi_watermark = 8, .lo_watermark = 2, .hop_limit = 8});
  sim::Engine eng({.n = 64, .seed = 3}, &model, &balancer);
  eng.run(20);
  EXPECT_LT(eng.step_max_load(), 16u);
  EXPECT_EQ(eng.total_load(), 64u);
  EXPECT_GT(balancer.mean_visits_to_sink(), 0.9);
}

TEST(RandomSeeking, MeanVisitsNearOneWhenSinksAbound) {
  // Nearly every processor is a sink, so the first probe should hit.
  models::TraceModel model(spike_table(256, 64), {});
  RandomSeekingBalancer balancer(
      {.hi_watermark = 8, .lo_watermark = 2, .hop_limit = 8});
  sim::Engine eng({.n = 256, .seed = 3}, &model, &balancer);
  eng.run(10);
  EXPECT_NEAR(balancer.mean_visits_to_sink(), 1.0, 0.2);
}

TEST(Baselines, AllConservativeUnderContinuousLoad) {
  // Every baseline must conserve tasks: total consumed + in-system equals
  // total generated.
  models::SingleModel model(0.4, 0.1);
  RsuBalancer rsu;
  LmBalancer lm;
  LauerBalancer lauer;
  RandomSeekingBalancer seek;
  for (sim::Balancer* b :
       std::initializer_list<sim::Balancer*>{&rsu, &lm, &lauer, &seek}) {
    sim::Engine eng({.n = 128, .seed = 17}, &model, b);
    eng.run(500);
    EXPECT_EQ(eng.total_generated(), eng.total_consumed() + eng.total_load())
        << b->name();
  }
}

}  // namespace
}  // namespace clb::baselines
