// Unit tests for clb::sim — FIFO queue semantics, engine stepping,
// transfers, counters, determinism across thread counts.
#include <gtest/gtest.h>

#include "models/single.hpp"
#include "models/trace.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace clb::sim {
namespace {

Task mk(std::uint32_t birth, std::uint32_t origin) {
  return Task{birth, origin};
}

TEST(FifoQueue, PushPopOrder) {
  FifoQueue q;
  for (std::uint32_t i = 0; i < 100; ++i) q.push_back(mk(i, 0));
  EXPECT_EQ(q.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(q.pop_front().birth_step, i);
  }
  EXPECT_TRUE(q.empty());
}

TEST(FifoQueue, GrowPreservesOrderAcrossWrap) {
  FifoQueue q;
  // Interleave pushes/pops so head wraps before growth.
  for (std::uint32_t i = 0; i < 6; ++i) q.push_back(mk(i, 0));
  for (std::uint32_t i = 0; i < 5; ++i) (void)q.pop_front();
  for (std::uint32_t i = 6; i < 40; ++i) q.push_back(mk(i, 0));
  for (std::uint32_t i = 5; i < 40; ++i) {
    ASSERT_EQ(q.pop_front().birth_step, i);
  }
}

TEST(FifoQueue, BackAndPopBack) {
  FifoQueue q;
  q.push_back(mk(1, 0));
  q.push_back(mk(2, 0));
  EXPECT_EQ(q.back().birth_step, 2u);
  EXPECT_EQ(q.pop_back().birth_step, 2u);
  EXPECT_EQ(q.back().birth_step, 1u);
}

TEST(FifoQueue, TransferTakesNewestPreservingOrder) {
  FifoQueue a, b;
  for (std::uint32_t i = 0; i < 10; ++i) a.push_back(mk(i, 7));
  b.push_back(mk(100, 3));
  // Move the 4 newest (6,7,8,9) to the back of b, keeping their order.
  b.append_from_back_of(a, 4);
  EXPECT_EQ(a.size(), 6u);
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(a.back().birth_step, 5u);
  EXPECT_EQ(b.at(0).birth_step, 100u);
  EXPECT_EQ(b.at(1).birth_step, 6u);
  EXPECT_EQ(b.at(4).birth_step, 9u);
}

TEST(FifoQueue, TransferWholeQueue) {
  FifoQueue a, b;
  for (std::uint32_t i = 0; i < 5; ++i) a.push_back(mk(i, 0));
  b.append_from_back_of(a, 5);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(b.at(0).birth_step, 0u);
}

// --- Engine with a scripted trace model --------------------------------

TEST(Engine, TraceGenerationAndConsumption) {
  // 3 procs; step 0: proc0 generates 3; step 1: proc0 consumes 2.
  models::TraceModel model({{3, 0, 0}, {0, 0, 0}},
                           {{0, 0, 0}, {2, 0, 0}});
  Engine eng({.n = 3, .seed = 1}, &model, nullptr);
  eng.step_once();
  EXPECT_EQ(eng.load(0), 3u);
  EXPECT_EQ(eng.total_load(), 3u);
  EXPECT_EQ(eng.step_max_load(), 3u);
  eng.step_once();
  EXPECT_EQ(eng.load(0), 1u);
  EXPECT_EQ(eng.total_consumed(), 2u);
  EXPECT_EQ(eng.running_max_load(), 3u);
}

TEST(Engine, ConsumptionClampedByQueue) {
  models::TraceModel model({{1}}, {{5}});
  Engine eng({.n = 1, .seed = 1}, &model, nullptr);
  eng.step_once();
  EXPECT_EQ(eng.load(0), 0u);
  EXPECT_EQ(eng.total_consumed(), 1u);  // only the generated task existed
}

TEST(Engine, SameStepGenerationConsumable) {
  // The paper's chain semantics: a task generated this step can be consumed
  // this step (gain prob p(1-q)).
  models::TraceModel model({{1}}, {{1}});
  Engine eng({.n = 1, .seed = 1}, &model, nullptr);
  eng.step_once();
  EXPECT_EQ(eng.load(0), 0u);
}

// A balancer that moves 2 tasks from proc 0 to proc 1 at step 1.
class OneShotMover final : public Balancer {
 public:
  [[nodiscard]] std::string name() const override { return "mover"; }
  void on_step(Engine& eng) override {
    if (eng.step() == 1) eng.schedule_transfer(0, 1, 2);
  }
};

TEST(Engine, TransfersMoveBackOfQueue) {
  models::TraceModel model({{4, 0}}, {{}});
  OneShotMover mover;
  Engine eng({.n = 2, .seed = 1}, &model, &mover);
  eng.run(2);
  EXPECT_EQ(eng.load(0), 2u);
  EXPECT_EQ(eng.load(1), 2u);
  EXPECT_EQ(eng.messages().transfers, 1u);
  EXPECT_EQ(eng.messages().tasks_moved, 2u);
  EXPECT_EQ(eng.processor(0).tasks_sent, 2u);
  EXPECT_EQ(eng.processor(1).tasks_received, 2u);
}

TEST(Engine, OversizedTransferClamps) {
  models::TraceModel model({{1, 0}}, {{}});
  OneShotMover mover;  // asks for 2, only 1 present
  Engine eng({.n = 2, .seed = 1}, &model, &mover);
  eng.run(2);
  EXPECT_EQ(eng.load(0), 0u);
  EXPECT_EQ(eng.load(1), 1u);
  EXPECT_EQ(eng.clamped_transfers(), 1u);
}

TEST(Engine, LocalityTracksOrigin) {
  // proc0 generates 4 tasks; 2 move to proc1; both consume everything.
  models::TraceModel model({{4, 0}, {0, 0}, {0, 0}, {0, 0}},
                           {{0, 0}, {0, 0}, {2, 2}, {2, 2}});
  OneShotMover mover;
  Engine eng({.n = 2, .seed = 1}, &model, &mover);
  eng.run(4);
  EXPECT_EQ(eng.total_consumed(), 4u);
  // proc0 consumed 2 of its own; proc1 consumed 2 foreign ones.
  EXPECT_DOUBLE_EQ(eng.locality_fraction(), 0.5);
}

TEST(Engine, SojournHistogramRecordsWaits) {
  // One task born step 0, consumed step 2 -> sojourn 2.
  models::TraceModel model({{1}}, {{0}, {0}, {1}});
  Engine eng({.n = 1, .seed = 1, .track_sojourn = true}, &model, nullptr);
  eng.run(3);
  EXPECT_EQ(eng.sojourn_histogram().total(), 1u);
  EXPECT_EQ(eng.sojourn_histogram().count_at(2), 1u);
}

TEST(Engine, ResetRestoresPristineState) {
  models::SingleModel model(0.4, 0.1);
  Engine eng({.n = 64, .seed = 3}, &model, nullptr);
  eng.run(100);
  EXPECT_GT(eng.total_generated(), 0u);
  eng.reset();
  EXPECT_EQ(eng.step(), 0u);
  EXPECT_EQ(eng.total_load(), 0u);
  EXPECT_EQ(eng.total_generated(), 0u);
  EXPECT_EQ(eng.running_max_load(), 0u);
}

TEST(Engine, DeterministicAcrossThreadCounts) {
  models::SingleModel m1(0.4, 0.1), m2(0.4, 0.1);
  Engine serial({.n = 256, .seed = 7, .threads = 1}, &m1, nullptr);
  Engine threaded({.n = 256, .seed = 7, .threads = 4}, &m2, nullptr);
  serial.run(200);
  threaded.run(200);
  EXPECT_EQ(serial.total_load(), threaded.total_load());
  EXPECT_EQ(serial.running_max_load(), threaded.running_max_load());
  for (std::uint64_t p = 0; p < 256; ++p) {
    ASSERT_EQ(serial.load(p), threaded.load(p)) << "proc " << p;
  }
}

TEST(Engine, DeterministicAcrossRuns) {
  models::SingleModel m1(0.3, 0.2), m2(0.3, 0.2);
  Engine a({.n = 128, .seed = 11}, &m1, nullptr);
  Engine b({.n = 128, .seed = 11}, &m2, nullptr);
  a.run(500);
  b.run(500);
  EXPECT_EQ(a.total_generated(), b.total_generated());
  EXPECT_EQ(a.total_load(), b.total_load());
}

TEST(Engine, DifferentSeedsDiverge) {
  models::SingleModel m1(0.3, 0.2), m2(0.3, 0.2);
  Engine a({.n = 128, .seed = 1}, &m1, nullptr);
  Engine b({.n = 128, .seed = 2}, &m2, nullptr);
  a.run(200);
  b.run(200);
  EXPECT_NE(a.total_generated(), b.total_generated());
}

TEST(Engine, SojournTrackingForcesSerialButKeepsResults) {
  // track_sojourn disables the thread pool; the trajectory must still match
  // a plain serial run exactly.
  models::SingleModel m1(0.4, 0.1), m2(0.4, 0.1);
  Engine plain({.n = 128, .seed = 21, .threads = 1}, &m1, nullptr);
  Engine tracked({.n = 128, .seed = 21, .threads = 4, .track_sojourn = true},
                 &m2, nullptr);
  plain.run(300);
  tracked.run(300);
  EXPECT_EQ(plain.total_load(), tracked.total_load());
  EXPECT_EQ(plain.running_max_load(), tracked.running_max_load());
  EXPECT_GT(tracked.sojourn_histogram().total(), 0u);
}

TEST(Engine, SingleProcessorMachine) {
  models::SingleModel model(0.4, 0.1);
  Engine eng({.n = 1, .seed = 22}, &model, nullptr);
  eng.run(500);
  EXPECT_EQ(eng.total_generated(), eng.total_consumed() + eng.total_load());
  EXPECT_EQ(eng.step_max_load(), eng.total_load());
}

TEST(Engine, LoadHistogramMatchesLoads) {
  models::TraceModel model({{2, 1, 0}}, {{}});
  Engine eng({.n = 3, .seed = 1}, &model, nullptr);
  eng.step_once();
  const auto h = eng.load_histogram();
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.count_at(1), 1u);
  EXPECT_EQ(h.count_at(2), 1u);
}

TEST(Engine, DrainAllAndDeposit) {
  models::TraceModel model({{2, 3}}, {{}});
  Engine eng({.n = 2, .seed = 1}, &model, nullptr);
  eng.step_once();
  auto tasks = eng.drain_all();
  EXPECT_EQ(tasks.size(), 5u);
  for (const auto& t : tasks) eng.deposit(1, t);
  eng.step_once();  // refresh aggregates
  EXPECT_EQ(eng.load(0), 0u);
  EXPECT_EQ(eng.load(1), 5u);
}

}  // namespace
}  // namespace clb::sim
