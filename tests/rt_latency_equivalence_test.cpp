// Lockstep cross-validation of rt::Runtime's latency fabric (deterministic
// mode) against sim::Engine + dist::DistThresholdBalancer: with the same
// seed, latency and game parameters, the two fabrics must produce identical
// transfer ledgers, final per-task queue contents, message counters and
// per-phase records (start/end step, heavy count, matched/unmatched,
// forced) — for ANY worker count, for uniform latencies and for per-hop
// topology routing. Both fabrics derive delivery times from the shared
// net::DeliveryPolicy and order deliveries by the shared net::SeqKey, so a
// divergence here means one of them broke the contract.
//
// Also covered, per the latency tier's charter:
//   * the dist phase-duration ∝ latency result reproduced on real threads;
//   * the delay-skew fault (one message delivered a superstep early) is
//     convicted by exactly this cross-check;
//   * drop_transfer_message picks its victim by canonical (step, source)
//     order — the same victim at every worker count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "dist/dist_balancer.hpp"
#include "models/single.hpp"
#include "net/topology.hpp"
#include "rt/runtime.hpp"
#include "sim/engine.hpp"
#include "testing/oracle.hpp"

namespace {

using namespace clb;

std::unique_ptr<sim::LoadModel> make_model() {
  return std::make_unique<models::SingleModel>(0.45, 0.1);
}

/// Load spikes deposited before a step executes, identically on both sides
/// (guarantees heavy processors, so phases do real matching work).
struct Spike {
  std::uint64_t step;
  std::uint32_t proc;
  std::uint32_t tasks;
};

std::vector<Spike> spikes_for(std::uint64_t seed, std::uint64_t n) {
  const auto p = [&](std::uint64_t k) {
    return static_cast<std::uint32_t>((seed * 7 + k * 13) % n);
  };
  return {{0, p(0), 48}, {11, p(1), 56}, {29, p(2), 64}};
}

struct PhaseRecord {
  std::uint64_t phase_index = 0;
  std::uint64_t start_step = 0;
  std::uint64_t end_step = 0;
  std::uint64_t num_heavy = 0;
  std::uint64_t matched = 0;
  std::uint64_t unmatched = 0;
  bool forced = false;
};

struct RunRecord {
  std::vector<std::vector<sim::Task>> queues;
  std::vector<std::uint64_t> generated;
  std::vector<std::uint64_t> consumed;
  std::vector<std::uint64_t> initiations;
  sim::MessageCounters msg;
  std::uint64_t clamped = 0;
  std::uint64_t running_max = 0;
  std::uint64_t total_load = 0;
  // Link-model counters (all zero on an unshaped fabric). Both fabrics plan
  // every link's sends in the same order, so these must agree exactly.
  std::uint64_t retransmits = 0;
  std::uint64_t dup_suppressed = 0;
  std::uint64_t queued_delay = 0;
  std::vector<rt::LedgerEntry> ledger;
  std::vector<PhaseRecord> phases;
};

struct Lockstep {
  std::uint64_t n = 128;
  std::uint64_t seed = 1;
  std::uint64_t steps = 160;
  std::uint32_t latency = 1;
  const net::Topology* topology = nullptr;
  net::NetConfig link{};
  core::PhaseParams params;

  explicit Lockstep(std::uint64_t n_procs) : n(n_procs) {
    core::Fractions f;
    f.t_min = 64;
    params = core::PhaseParams::from_n(n, f);
  }
};

RunRecord run_dist(const Lockstep& su) {
  auto model = make_model();
  dist::DistConfig dc;
  dc.params = su.params;
  dc.latency = su.latency;
  dc.topology = su.topology;
  dc.link = su.link;
  dist::DistThresholdBalancer inner(dc);
  clb::testing::CaptureBalancer cap(&inner);
  sim::Engine eng({.n = su.n, .seed = su.seed}, model.get(), &cap);

  RunRecord r;
  cap.set_post_capture_hook([&](sim::Engine& e) {
    // After on_step, before apply_transfers: loads are what the protocol
    // saw, so the scheduled counts can be clamped exactly like
    // Engine::apply_transfers will (sources are distinct within a step).
    for (const sim::Transfer& t : cap.captured()) {
      const std::uint64_t cnt =
          std::min<std::uint64_t>(t.count, e.load(t.from));
      r.ledger.push_back(
          {e.step(), t.from, t.to, static_cast<std::uint32_t>(cnt)});
    }
  });

  const std::vector<Spike> spikes = spikes_for(su.seed, su.n);
  for (std::uint64_t s = 0; s < su.steps; ++s) {
    for (const Spike& sp : spikes) {
      if (sp.step != s) continue;
      for (std::uint32_t i = 0; i < sp.tasks; ++i) {
        eng.deposit(sp.proc,
                    sim::Task{static_cast<std::uint32_t>(s), sp.proc, 1});
      }
    }
    eng.step_once();
  }

  for (std::uint64_t p = 0; p < su.n; ++p) {
    const sim::Processor& proc = eng.processor(p);
    std::vector<sim::Task> q;
    for (std::uint64_t i = 0; i < proc.queue.size(); ++i) {
      q.push_back(proc.queue.at(i));
    }
    r.queues.push_back(std::move(q));
    r.generated.push_back(proc.generated);
    r.consumed.push_back(proc.consumed);
    r.initiations.push_back(proc.balance_initiations);
  }
  r.msg = eng.messages();
  r.clamped = eng.clamped_transfers();
  r.running_max = eng.running_max_load();
  r.total_load = eng.total_load();
  r.retransmits = inner.network().retransmits();
  r.dup_suppressed = inner.network().dup_suppressed();
  r.queued_delay = inner.network().link_queued_delay();
  std::sort(r.ledger.begin(), r.ledger.end(),
            [](const rt::LedgerEntry& a, const rt::LedgerEntry& b) {
              if (a.step != b.step) return a.step < b.step;
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });
  for (const dist::DistPhaseRecord& pr : inner.stats().phase_log) {
    r.phases.push_back({pr.phase_index, pr.start_step, pr.end_step,
                        pr.num_heavy, pr.matched, pr.unmatched, pr.forced});
  }
  EXPECT_TRUE(eng.conservation_holds());
  return r;
}

RunRecord run_rt(const Lockstep& su, unsigned workers,
                 std::uint64_t skew_message = 0, bool arena = false) {
  auto model = make_model();
  rt::RtConfig cfg;
  cfg.n = su.n;
  cfg.seed = su.seed;
  cfg.workers = workers;
  cfg.deterministic = true;
  cfg.policy = rt::RtPolicy::kThreshold;
  cfg.params = su.params;
  cfg.latency = su.latency;
  cfg.topology = su.topology;
  cfg.link = su.link;
  cfg.delay_skew_message = skew_message;
  cfg.arena = arena;
  rt::Runtime run(cfg, model.get());

  const std::vector<Spike> spikes = spikes_for(su.seed, su.n);
  std::uint64_t done = 0;
  for (const Spike& sp : spikes) {
    if (sp.step > done) {
      run.run(sp.step - done);
      done = sp.step;
    }
    for (std::uint32_t i = 0; i < sp.tasks; ++i) {
      run.deposit(sp.proc,
                  sim::Task{static_cast<std::uint32_t>(sp.step), sp.proc, 1});
    }
  }
  run.run(su.steps - done);

  RunRecord r;
  for (std::uint64_t p = 0; p < su.n; ++p) {
    const rt::RtProcessor& proc = run.processor(p);
    std::vector<sim::Task> q;
    for (const rt::RtTask& t : proc.queue) q.push_back(t.task);
    r.queues.push_back(std::move(q));
    r.generated.push_back(proc.generated);
    r.consumed.push_back(proc.consumed);
    r.initiations.push_back(proc.balance_initiations);
  }
  r.msg = run.messages();
  r.clamped = run.clamped_transfers();
  r.running_max = run.running_max_load();
  r.total_load = run.total_load();
  r.retransmits = run.fabric_retransmits();
  r.dup_suppressed = run.fabric_dup_suppressed();
  r.queued_delay = run.fabric_queued_delay();
  r.ledger = run.ledger();
  for (const rt::RtPhaseSummary& ps : run.phases()) {
    if (!ps.completed) continue;  // run ended mid-phase
    r.phases.push_back({ps.phase_index, ps.start_step, ps.end_step,
                        ps.num_heavy, ps.matched, ps.unmatched, ps.forced});
    EXPECT_EQ(ps.heavy_procs.size(), ps.num_heavy);
    EXPECT_TRUE(std::is_sorted(ps.heavy_procs.begin(), ps.heavy_procs.end()));
  }
  EXPECT_TRUE(run.conservation_holds());
  EXPECT_EQ(run.fabric_in_flight(), 0u) << "undelivered messages at exit";
  return r;
}

void expect_equal(const RunRecord& dist_r, const RunRecord& rt_r,
                  const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(dist_r.queues.size(), rt_r.queues.size());
  for (std::size_t p = 0; p < dist_r.queues.size(); ++p) {
    const auto& a = dist_r.queues[p];
    const auto& b = rt_r.queues[p];
    ASSERT_EQ(a.size(), b.size()) << "queue length, proc " << p;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].birth_step, b[i].birth_step)
          << "proc " << p << " pos " << i;
      EXPECT_EQ(a[i].origin, b[i].origin) << "proc " << p << " pos " << i;
    }
    EXPECT_EQ(dist_r.generated[p], rt_r.generated[p]) << "generated " << p;
    EXPECT_EQ(dist_r.consumed[p], rt_r.consumed[p]) << "consumed " << p;
    EXPECT_EQ(dist_r.initiations[p], rt_r.initiations[p])
        << "initiations " << p;
  }

  EXPECT_EQ(dist_r.msg.queries, rt_r.msg.queries);
  EXPECT_EQ(dist_r.msg.accepts, rt_r.msg.accepts);
  EXPECT_EQ(dist_r.msg.id_messages, rt_r.msg.id_messages);
  EXPECT_EQ(dist_r.msg.control, rt_r.msg.control);
  EXPECT_EQ(dist_r.msg.transfers, rt_r.msg.transfers);
  EXPECT_EQ(dist_r.msg.tasks_moved, rt_r.msg.tasks_moved);
  EXPECT_EQ(dist_r.clamped, rt_r.clamped);
  EXPECT_EQ(dist_r.running_max, rt_r.running_max);
  EXPECT_EQ(dist_r.total_load, rt_r.total_load);
  EXPECT_EQ(dist_r.retransmits, rt_r.retransmits);
  EXPECT_EQ(dist_r.dup_suppressed, rt_r.dup_suppressed);
  EXPECT_EQ(dist_r.queued_delay, rt_r.queued_delay);

  ASSERT_EQ(dist_r.ledger.size(), rt_r.ledger.size());
  for (std::size_t i = 0; i < dist_r.ledger.size(); ++i) {
    EXPECT_EQ(dist_r.ledger[i].step, rt_r.ledger[i].step) << "ledger " << i;
    EXPECT_EQ(dist_r.ledger[i].from, rt_r.ledger[i].from) << "ledger " << i;
    EXPECT_EQ(dist_r.ledger[i].to, rt_r.ledger[i].to) << "ledger " << i;
    EXPECT_EQ(dist_r.ledger[i].count, rt_r.ledger[i].count) << "ledger " << i;
  }

  ASSERT_EQ(dist_r.phases.size(), rt_r.phases.size());
  for (std::size_t i = 0; i < dist_r.phases.size(); ++i) {
    const PhaseRecord& a = dist_r.phases[i];
    const PhaseRecord& b = rt_r.phases[i];
    EXPECT_EQ(a.phase_index, b.phase_index) << "phase " << i;
    EXPECT_EQ(a.start_step, b.start_step) << "phase " << i;
    EXPECT_EQ(a.end_step, b.end_step) << "phase " << i;
    EXPECT_EQ(a.num_heavy, b.num_heavy) << "phase " << i;
    EXPECT_EQ(a.matched, b.matched) << "phase " << i;
    EXPECT_EQ(a.unmatched, b.unmatched) << "phase " << i;
    EXPECT_EQ(a.forced, b.forced) << "phase " << i;
  }
}

double mean_duration(const RunRecord& r) {
  double sum = 0;
  std::size_t count = 0;
  for (const PhaseRecord& p : r.phases) {
    if (p.num_heavy == 0) continue;  // idle phases finish in one step anyway
    sum += static_cast<double>(p.end_step - p.start_step);
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

std::uint64_t total_transferred(const RunRecord& r) {
  std::uint64_t total = 0;
  for (const auto& e : r.ledger) total += e.count;
  return total;
}

class RtLatencyEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t>> {
};

TEST_P(RtLatencyEquivalence, MatchesDistForAllWorkerCounts) {
  Lockstep su(128);
  su.seed = std::get<0>(GetParam());
  su.latency = std::get<1>(GetParam());

  const RunRecord dist_r = run_dist(su);
  // The protocol must actually move tasks, or the test proves nothing.
  ASSERT_GT(total_transferred(dist_r), 0u);
  for (unsigned workers : {1u, 2u, 8u}) {
    const RunRecord rt_r = run_rt(su, workers);
    expect_equal(dist_r, rt_r,
                 "latency=" + std::to_string(su.latency) + " seed=" +
                     std::to_string(su.seed) + " workers=" +
                     std::to_string(workers));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndLatencies, RtLatencyEquivalence,
    ::testing::Combine(::testing::Values(1u, 2u),
                       ::testing::Values(1u, 2u, 8u)),
    [](const auto& param_info) {
      return "seed" + std::to_string(std::get<0>(param_info.param)) +
             "_latency" + std::to_string(std::get<1>(param_info.param));
    });

// Per-hop routing: the same lockstep equivalence on a hypercube, where
// delays differ per (src, dst) pair — exercises the Topology constructor of
// the shared DeliveryPolicy on both sides.
TEST(RtLatencyTopology, MatchesDistOnHypercube) {
  Lockstep su(128);
  su.seed = 3;
  su.latency = 1;
  su.steps = 192;
  net::HypercubeTopology cube(su.n);
  su.topology = &cube;

  const RunRecord dist_r = run_dist(su);
  ASSERT_GT(total_transferred(dist_r), 0u);
  for (unsigned workers : {1u, 4u}) {
    const RunRecord rt_r = run_rt(su, workers);
    expect_equal(dist_r, rt_r, "hypercube workers=" + std::to_string(workers));
  }
}

// Link-model lockstep grid: the same bit-identical equivalence with each of
// the net::LinkModel knobs live — heterogeneous per-link jitter, per-link
// bandwidth caps (FIFO queueing) and loss + retransmit. Each test asserts
// its knob actually bit (nonzero jitter spread / queued delay / retransmit
// count), so the equivalence is never vacuous.
TEST(RtLatencyLinks, HeterogeneousJitterMatchesDist) {
  Lockstep su(128);
  su.seed = 1;
  su.latency = 2;
  su.link.jitter = 3;
  const RunRecord dist_r = run_dist(su);
  ASSERT_GT(total_transferred(dist_r), 0u);
  for (unsigned workers : {1u, 2u, 8u}) {
    expect_equal(dist_r, run_rt(su, workers),
                 "jitter workers=" + std::to_string(workers));
  }
}

TEST(RtLatencyLinks, BandwidthCapMatchesDist) {
  Lockstep su(128);
  su.seed = 2;
  su.latency = 2;
  su.link.bandwidth = 1;  // one message per link per step; bursts queue
  const RunRecord dist_r = run_dist(su);
  ASSERT_GT(total_transferred(dist_r), 0u);
  ASSERT_GT(dist_r.queued_delay, 0u) << "the cap never queued anything";
  for (unsigned workers : {1u, 2u, 8u}) {
    expect_equal(dist_r, run_rt(su, workers),
                 "bandwidth workers=" + std::to_string(workers));
  }
}

TEST(RtLatencyLinks, LossRetransmitMatchesDist) {
  Lockstep su(128);
  su.seed = 1;
  su.latency = 2;
  su.link.loss_per_64k = 16384;  // 25% per transmission
  const RunRecord dist_r = run_dist(su);
  ASSERT_GT(total_transferred(dist_r), 0u);
  ASSERT_GT(dist_r.retransmits, 0u) << "the wire never lost anything";
  for (unsigned workers : {1u, 2u, 8u}) {
    expect_equal(dist_r, run_rt(su, workers),
                 "loss workers=" + std::to_string(workers));
  }
}

TEST(RtLatencyLinks, AllKnobsTogetherMatchesDist) {
  Lockstep su(128);
  su.seed = 2;
  su.latency = 1;
  su.steps = 224;  // shaped phases run longer; leave room to quiesce
  su.link.jitter = 2;
  su.link.bandwidth = 1;
  su.link.loss_per_64k = 8192;  // 12.5%
  const RunRecord dist_r = run_dist(su);
  ASSERT_GT(total_transferred(dist_r), 0u);
  for (unsigned workers : {1u, 2u, 8u}) {
    expect_equal(dist_r, run_rt(su, workers),
                 "all-knobs workers=" + std::to_string(workers));
  }
}

// The arena-backed queue layout must be invisible under the latency fabric
// too, shaped links included. (Work stealing is instant-fabric only, so the
// latency tier carries just the arena dimension of the scale grid.)
TEST(RtLatencyArena, ArenaMatchesDistForAllWorkerCounts) {
  Lockstep su(128);
  su.seed = 2;
  su.latency = 2;
  su.link.jitter = 2;
  const RunRecord dist_r = run_dist(su);
  ASSERT_GT(total_transferred(dist_r), 0u);
  for (unsigned workers : {1u, 2u, 8u}) {
    expect_equal(dist_r, run_rt(su, workers, 0, /*arena=*/true),
                 "arena workers=" + std::to_string(workers));
  }
}

// The paper's EXP-19 effect on real threads: a round trip costs 2*latency
// steps, so phases with actual matching work take proportionally longer at
// higher latency. (Durations are bit-identical to dist's by the equivalence
// tests above; this pins the trend itself.)
TEST(RtLatencyScaling, PhaseDurationGrowsWithLatency) {
  Lockstep lo(128);
  Lockstep hi(128);
  hi.latency = 8;
  const double d1 = mean_duration(run_rt(lo, 4));
  const double d8 = mean_duration(run_rt(hi, 4));
  ASSERT_GT(d1, 0.0);
  EXPECT_GE(d8, 3.0 * d1) << "latency 8 phases should dominate latency 1";
}

// Free-running latency mode: no canonical sorts, but the fabric contract
// (deliver at due step, conserve tasks, complete phases) must still hold.
TEST(RtLatencyFreeRunning, ConservesAndCompletesPhases) {
  Lockstep su(128);
  su.latency = 2;
  auto model = make_model();
  rt::RtConfig cfg;
  cfg.n = su.n;
  cfg.seed = 9;
  cfg.workers = 4;
  cfg.deterministic = false;
  cfg.policy = rt::RtPolicy::kThreshold;
  cfg.params = su.params;
  cfg.latency = su.latency;
  rt::Runtime run(cfg, model.get());
  for (std::uint32_t i = 0; i < 48; ++i) {
    run.deposit(0, sim::Task{0, 0, 1});
  }
  run.run(su.steps);
  EXPECT_TRUE(run.conservation_holds());
  EXPECT_EQ(run.fabric_in_flight(), 0u);
  std::uint64_t completed = 0;
  for (const rt::RtPhaseSummary& ps : run.phases()) {
    if (ps.completed) ++completed;
  }
  EXPECT_GT(completed, 4u);
}

// The delay-skew fault: one message delivered a superstep early must make
// the lockstep cross-check diverge — ledger, counters, or phase log. This
// is the conviction the fuzzer's delay-skew mutation relies on.
TEST(RtLatencySkew, EarlyDeliveryDivergesFromDist) {
  Lockstep su(128);
  su.seed = 1;
  su.latency = 4;
  const RunRecord dist_r = run_dist(su);
  ASSERT_GT(total_transferred(dist_r), 0u);

  // Sanity: with no skew the fabrics agree (same setup as the suite above).
  expect_equal(dist_r, run_rt(su, 1), "skew baseline");

  // Skewing an early message must produce an observable divergence. Any
  // single ordinal can happen to be immaterial (e.g. an accept that was not
  // on the phase's critical path), so probe the first few sends and require
  // that at least one convicts — the fuzzer's mutation path does the same.
  bool diverged = false;
  for (std::uint64_t k = 1; k <= 8 && !diverged; ++k) {
    const RunRecord skewed = run_rt(su, 1, /*skew_message=*/k);
    diverged = skewed.ledger.size() != dist_r.ledger.size() ||
               !std::equal(skewed.ledger.begin(), skewed.ledger.end(),
                           dist_r.ledger.begin(),
                           [](const rt::LedgerEntry& a,
                              const rt::LedgerEntry& b) {
                             return a.step == b.step && a.from == b.from &&
                                    a.to == b.to && a.count == b.count;
                           }) ||
               skewed.phases.size() != dist_r.phases.size();
    if (!diverged) {
      for (std::size_t i = 0; i < skewed.phases.size() && !diverged; ++i) {
        diverged = skewed.phases[i].end_step != dist_r.phases[i].end_step ||
                   skewed.phases[i].matched != dist_r.phases[i].matched;
      }
    }
  }
  EXPECT_TRUE(diverged)
      << "a fabric delivering early should not survive the cross-check";
}

// drop_transfer_message in latency mode: the victim is the k-th transfer in
// canonical (step, source) order, so every worker count convicts the same
// message — and it is exactly the k-th entry of the clean run's ledger.
TEST(RtLatencyDrop, VictimIsWorkerCountInvariant) {
  Lockstep su(128);
  su.seed = 2;
  su.latency = 2;
  const RunRecord clean = run_rt(su, 1);
  ASSERT_GE(clean.ledger.size(), 3u);
  const rt::LedgerEntry victim = clean.ledger[2];  // k = 3

  auto run_dropped = [&](unsigned workers) {
    auto model = make_model();
    rt::RtConfig cfg;
    cfg.n = su.n;
    cfg.seed = su.seed;
    cfg.workers = workers;
    cfg.deterministic = true;
    cfg.policy = rt::RtPolicy::kThreshold;
    cfg.params = su.params;
    cfg.latency = su.latency;
    cfg.drop_transfer_message = 3;
    rt::Runtime run(cfg, model.get());
    const std::vector<Spike> spikes = spikes_for(su.seed, su.n);
    std::uint64_t done = 0;
    for (const Spike& sp : spikes) {
      if (sp.step > done) {
        run.run(sp.step - done);
        done = sp.step;
      }
      for (std::uint32_t i = 0; i < sp.tasks; ++i) {
        run.deposit(sp.proc, sim::Task{static_cast<std::uint32_t>(sp.step),
                                       sp.proc, 1});
      }
    }
    run.run(su.steps - done);
    EXPECT_EQ(run.dropped_messages(), 1u) << "workers=" << workers;
    // Count-based conservation books the dropped tasks and stays green —
    // only the fuzzer's identity oracle convicts the drop (by design).
    EXPECT_TRUE(run.conservation_holds()) << "workers=" << workers;
    EXPECT_EQ(run.dropped_tasks(), victim.count) << "workers=" << workers;
    const std::vector<rt::LedgerEntry> log = run.dropped_log();
    ASSERT_EQ(log.size(), 1u) << "workers=" << workers;
    EXPECT_EQ(log[0].step, victim.step) << "workers=" << workers;
    EXPECT_EQ(log[0].from, victim.from) << "workers=" << workers;
    EXPECT_EQ(log[0].to, victim.to) << "workers=" << workers;
    EXPECT_EQ(log[0].count, victim.count) << "workers=" << workers;
  };
  for (unsigned workers : {1u, 2u, 8u}) run_dropped(workers);
}

}  // namespace
