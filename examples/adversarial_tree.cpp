// Scenario: tree-structured parallel computation (branch-and-bound /
// divide-and-conquer), the paper's Adversarial model: every task being
// performed may spawn a constant number of children, the total system load
// is capped by B, and each processor may change its own load by O(T) per
// window. Shows the O(B + (log log n)^2) bound and the §4.3 one-shot
// pre-round variant.
//
//   ./adversarial_tree [--n 4096] [--steps 20000] [--cap-per-proc 4]
#include <cstdio>

#include "clb.hpp"

int main(int argc, char** argv) {
  clb::util::Cli cli("adversarial_tree: tree-structured task spawning");
  const auto n = cli.flag_u64("n", 4096, "number of processors");
  const auto steps = cli.flag_u64("steps", 20000, "simulation steps");
  const auto cap_per_proc =
      cli.flag_u64("cap-per-proc", 4, "system load cap B as multiple of n");
  const auto branch = cli.flag_u64("branch", 3, "children per spawning task");
  const auto seed = cli.flag_u64("seed", 11, "random seed");
  cli.parse(argc, argv);

  const auto params = clb::core::PhaseParams::from_n(*n);
  clb::models::AdversarialConfig ac;
  ac.window = params.T;
  ac.per_window_budget = params.T;
  ac.branch = static_cast<std::uint32_t>(*branch);
  ac.p_spawn = 0.35;
  ac.p_seed = 0.05;
  ac.cap = *cap_per_proc * *n;

  clb::util::print_banner("adversarial tree-spawn workload");
  std::printf("parameters: %s, B = %llu (%llu per proc)\n",
              params.describe().c_str(),
              static_cast<unsigned long long>(ac.cap),
              static_cast<unsigned long long>(*cap_per_proc));

  clb::util::Table table({"policy", "max_load", "bound B/n + T", "mean_load",
                          "msgs/phase", "unmatched"});
  for (const bool preround : {false, true}) {
    clb::models::AdversarialModel model(ac, *n);
    clb::core::ThresholdBalancer balancer(
        {.params = params, .one_shot_preround = preround});
    clb::sim::Engine eng({.n = *n, .seed = *seed}, &model, &balancer);
    eng.run(*steps);
    table.row()
        .cell(preround ? "threshold+preround (§4.3)" : "threshold")
        .cell(eng.running_max_load())
        .cell(*cap_per_proc + params.T)
        .cell(static_cast<double>(eng.total_load()) /
                  static_cast<double>(*n),
              2)
        .cell(balancer.aggregate().messages_per_phase.mean(), 1)
        .cell(balancer.aggregate().total_unmatched);
  }
  // Unbalanced reference.
  {
    clb::models::AdversarialModel model(ac, *n);
    clb::sim::Engine eng({.n = *n, .seed = *seed}, &model, nullptr);
    eng.run(*steps);
    table.row()
        .cell("none")
        .cell(eng.running_max_load())
        .cell("-")
        .cell(static_cast<double>(eng.total_load()) /
                  static_cast<double>(*n),
              2)
        .cell("-")
        .cell("-");
  }
  std::fputs(table.str().c_str(), stdout);
  clb::util::print_note(
      "max load stays O(B/n + T) with balancing; the one-shot pre-round "
      "drains most heavies with a single message each.");
  return 0;
}
