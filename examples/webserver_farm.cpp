// Scenario: a server farm with rotating hot spots — the workload the
// paper's introduction motivates (load generated "in place", correlated,
// with related tasks that should stay together).
//
// A fraction of the farm periodically receives request bursts. We compare
// three policies side by side:
//   * none        — requests queue up where they land,
//   * threshold   — the paper's algorithm,
//   * all-in-air  — global rescatter (flat load, no locality, huge traffic).
//
//   ./webserver_farm [--n 8192] [--steps 20000]
#include <cstdio>
#include <memory>

#include "clb.hpp"

namespace {

struct Row {
  std::string policy;
  std::uint64_t max_load;
  double mean_load;
  double sojourn_p99;
  double locality_pct;
  double msgs_per_task;
};

Row run_policy(const std::string& policy, std::uint64_t n,
               std::uint64_t steps, std::uint64_t seed) {
  clb::models::BurstConfig bc;
  bc.p_base = 0.25;
  bc.p_consume = 0.6;
  bc.period = 128;
  bc.burst_len = 8;
  bc.hot_fraction = 0.03;
  bc.burst_rate = 4;
  clb::models::BurstModel model(bc, n);

  std::unique_ptr<clb::sim::Balancer> balancer;
  if (policy == "threshold") {
    balancer = std::make_unique<clb::core::ThresholdBalancer>(
        clb::core::ThresholdBalancerConfig{
            .params = clb::core::PhaseParams::from_n(n)});
  } else if (policy == "all-in-air") {
    balancer = std::make_unique<clb::baselines::AllInAirBalancer>(
        clb::baselines::AllInAirConfig{});
  }

  clb::sim::Engine eng({.n = n, .seed = seed, .track_sojourn = true}, &model,
                       balancer.get());
  eng.run(steps);
  const auto& soj = eng.sojourn_histogram();
  return Row{policy,
             eng.running_max_load(),
             static_cast<double>(eng.total_load()) / static_cast<double>(n),
             static_cast<double>(soj.quantile(0.99)),
             100.0 * eng.locality_fraction(),
             static_cast<double>(eng.messages().protocol_total() +
                                 eng.messages().control) /
                 static_cast<double>(eng.total_generated())};
}

}  // namespace

int main(int argc, char** argv) {
  clb::util::Cli cli("webserver_farm: bursty hot spots, three policies");
  const auto n = cli.flag_u64("n", 8192, "number of servers");
  const auto steps = cli.flag_u64("steps", 20000, "simulation steps");
  const auto seed = cli.flag_u64("seed", 7, "random seed");
  cli.parse(argc, argv);

  clb::util::print_banner("server farm with rotating hot spots");
  clb::util::Table table({"policy", "max_load", "mean_load", "p99_sojourn",
                          "locality_%", "msgs/task"});
  for (const char* policy : {"none", "threshold", "all-in-air"}) {
    const Row r = run_policy(policy, *n, *steps, *seed);
    table.row()
        .cell(r.policy)
        .cell(r.max_load)
        .cell(r.mean_load, 2)
        .cell(r.sojourn_p99, 0)
        .cell(r.locality_pct, 1)
        .cell(r.msgs_per_task, 3);
  }
  std::fputs(table.str().c_str(), stdout);
  clb::util::print_note(
      "threshold keeps bursts bounded at a tiny message cost and high "
      "locality; all-in-air flattens harder but ships every task around.");
  return 0;
}
