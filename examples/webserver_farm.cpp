// Scenario: a server farm with rotating hot spots — the workload the
// paper's introduction motivates (load generated "in place", correlated,
// with related tasks that should stay together) — now served by the real
// concurrent runtime: worker threads own server shards, exchange the
// protocol's messages through lock-free mailboxes, and burn actual CPU per
// request (--spin), so the printed sojourn is wall-clock microseconds, not
// simulator steps.
//
// Three policies side by side:
//   * none        — requests queue up where they land,
//   * threshold   — the paper's algorithm,
//   * all-in-air  — global rescatter (flat load, no locality, huge traffic).
//
//   ./webserver_farm [--n 4096] [--steps 4000] [--workers 0] [--spin 128]
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "clb.hpp"

namespace {

struct Row {
  std::string policy;
  double tasks_per_sec;
  std::uint64_t max_load;
  std::uint64_t p50_us;
  std::uint64_t p99_us;
  double remote_pct;
  double msgs_per_task;
};

Row run_policy(const std::string& policy, std::uint64_t n,
               std::uint64_t steps, std::uint64_t seed, unsigned workers,
               std::uint32_t spin) {
  clb::models::BurstConfig bc;
  bc.p_base = 0.25;
  bc.p_consume = 0.6;
  bc.period = 128;
  bc.burst_len = 8;
  bc.hot_fraction = 0.03;
  bc.burst_rate = 4;
  clb::models::BurstModel model(bc, n);

  clb::rt::RtConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.workers = workers;
  cfg.deterministic = false;  // free-running: measure, don't replay
  cfg.spin_work = spin;
  cfg.time_sojourn = true;
  if (policy == "threshold") {
    cfg.policy = clb::rt::RtPolicy::kThreshold;
    cfg.params = clb::core::PhaseParams::from_n(n);
  } else if (policy == "all-in-air") {
    cfg.policy = clb::rt::RtPolicy::kAllInAir;
  } else {
    cfg.policy = clb::rt::RtPolicy::kNone;
  }

  clb::rt::Runtime run(cfg, &model);
  run.run(steps);

  const clb::stats::IntHistogram soj = run.sojourn_us();
  const std::uint64_t remote = run.remote_pushes();
  const std::uint64_t self = run.self_pushes();
  return Row{
      policy,
      static_cast<double>(run.total_consumed()) /
          (run.wall_seconds() > 0 ? run.wall_seconds() : 1e-9),
      run.running_max_load(),
      soj.quantile(0.50),
      soj.quantile(0.99),
      remote + self > 0 ? 100.0 * static_cast<double>(remote) /
                              static_cast<double>(remote + self)
                        : 0.0,
      run.total_generated() > 0
          ? static_cast<double>(run.messages().protocol_total() +
                                run.messages().control) /
                static_cast<double>(run.total_generated())
          : 0.0};
}

}  // namespace

int main(int argc, char** argv) {
  clb::util::Cli cli(
      "webserver_farm: bursty hot spots on the concurrent runtime");
  const auto n = cli.flag_u64("n", 4096, "number of servers");
  const auto steps = cli.flag_u64("steps", 4000, "runtime steps");
  const auto seed = cli.flag_u64("seed", 7, "random seed");
  const auto workers =
      cli.flag_u64("workers", 0, "worker threads (0 = hardware concurrency)");
  const auto spin =
      cli.flag_u64("spin", 128, "spin-work iterations per served request");
  cli.parse(argc, argv);

  const unsigned w = *workers != 0
                         ? static_cast<unsigned>(*workers)
                         : std::max(1u, std::thread::hardware_concurrency());
  clb::util::print_banner("server farm with rotating hot spots (rt::Runtime)");
  std::printf("  workers=%u  spin=%llu iterations/request\n\n", w,
              static_cast<unsigned long long>(*spin));

  clb::util::Table table({"policy", "tasks/sec", "max_load", "p50 us",
                          "p99 us", "remote_%", "msgs/task"});
  for (const char* policy : {"none", "threshold", "all-in-air"}) {
    const Row r = run_policy(policy, *n, *steps, *seed, w,
                             static_cast<std::uint32_t>(*spin));
    table.row()
        .cell(r.policy)
        .cell(r.tasks_per_sec, 0)
        .cell(r.max_load)
        .cell(r.p50_us)
        .cell(r.p99_us)
        .cell(r.remote_pct, 1)
        .cell(r.msgs_per_task, 3);
  }
  std::fputs(table.str().c_str(), stdout);
  clb::util::print_note(
      "threshold pulls the p99 sojourn toward the unbalanced p50 for a few "
      "percent of remote messages; all-in-air flattens harder but ships "
      "every task across a mailbox. docs/runtime.md explains the machinery.");
  return 0;
}
