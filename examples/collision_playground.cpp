// Scenario: the collision protocol as a standalone primitive (its original
// use in [MSS95] was assigning shared-memory access requests). Sweeps the
// request fraction beta and prints rounds/messages/validity, illustrating
// Lemma 1's (a, b, c) = (5, 2, 1) regime and where the protocol breaks.
//
//   ./collision_playground [--n 65536]
#include <cstdio>

#include "clb.hpp"

int main(int argc, char** argv) {
  clb::util::Cli cli("collision_playground: standalone collision protocol");
  const auto n = cli.flag_u64("n", 1 << 16, "number of processors");
  const auto seed = cli.flag_u64("seed", 5, "random seed");
  cli.parse(argc, argv);

  clb::collision::CollisionGame game(*n, {.a = 5, .b = 2, .c = 1});
  clb::util::print_banner("(n, beta, 5, 2, 1)-collision protocol");
  std::printf("n = %llu, paper round bound = %u (Lemma 1: <= loglog n/log 3 + 3)\n",
              static_cast<unsigned long long>(*n), game.paper_round_bound());

  clb::util::Table table({"beta", "requests", "valid", "rounds", "queries",
                          "queries/request", "max_accepts/proc"});
  for (const double beta : {0.001, 0.01, 0.05, 0.1, 0.2, 0.4}) {
    const auto m = static_cast<std::uint64_t>(beta * static_cast<double>(*n));
    std::vector<std::uint32_t> requesters;
    requesters.reserve(m);
    const std::uint64_t stride = *n / (m ? m : 1);
    for (std::uint64_t i = 0; i < m; ++i) {
      requesters.push_back(static_cast<std::uint32_t>(i * stride));
    }
    const auto out = game.run(requesters, *seed);
    std::uint32_t max_accepts = 0;
    for (const auto& [proc, count] : out.per_proc_accepts) {
      max_accepts = std::max(max_accepts, count);
    }
    table.row()
        .cell(beta, 3)
        .cell(static_cast<std::uint64_t>(m))
        .cell(out.valid ? "yes" : "NO")
        .cell(static_cast<std::uint64_t>(out.rounds_used))
        .cell(out.query_messages)
        .cell(m ? static_cast<double>(out.query_messages) /
                      static_cast<double>(m)
                : 0.0,
              2)
        .cell(static_cast<std::uint64_t>(max_accepts));
  }
  std::fputs(table.str().c_str(), stdout);
  clb::util::print_note(
      "with c = 1 every processor answers at most one query; validity holds "
      "for light request fractions and degrades as beta grows.");
  return 0;
}
