// Quickstart: run the paper's balancing algorithm on a machine of n
// processors under the Single(p, eps) generation model and print the
// headline quantities of Theorem 1.
//
//   ./quickstart [--n 16384] [--steps 20000] [--p 0.4] [--eps 0.1]
#include <cstdio>

#include "clb.hpp"

int main(int argc, char** argv) {
  clb::util::Cli cli("quickstart: threshold balancing under the Single model");
  const auto n = cli.flag_u64("n", 1 << 14, "number of processors");
  const auto steps = cli.flag_u64("steps", 20000, "simulation steps");
  const auto p = cli.flag_f64("p", 0.4, "per-step generation probability");
  const auto eps = cli.flag_f64("eps", 0.1, "consumption surplus (q = p+eps)");
  const auto seed = cli.flag_u64("seed", 42, "random seed");
  cli.parse(argc, argv);

  // 1. Pick a load model (who creates/consumes tasks).
  clb::models::SingleModel model(*p, *eps);

  // 2. Realise the paper's parameters for this machine size.
  const auto params = clb::core::PhaseParams::from_n(*n);
  std::printf("parameters: %s\n", params.describe().c_str());

  // 3. Plug the threshold balancer into the engine and run.
  clb::core::ThresholdBalancer balancer({.params = params});
  clb::sim::Engine engine({.n = *n, .seed = *seed}, &model, &balancer);
  engine.run(*steps);

  // 4. Inspect the quantities the paper bounds.
  const auto& agg = balancer.aggregate();
  std::printf("\nafter %llu steps:\n",
              static_cast<unsigned long long>(engine.step()));
  std::printf("  max load ever seen          : %llu   (Theorem 1 bound ~ T = %llu)\n",
              static_cast<unsigned long long>(engine.running_max_load()),
              static_cast<unsigned long long>(params.T));
  std::printf("  mean load per processor     : %.3f (stationary prediction %.3f)\n",
              static_cast<double>(engine.total_load()) /
                  static_cast<double>(*n),
              model.expected_load_per_processor());
  std::printf("  heavy processors per phase  : %.2f of %llu\n",
              agg.heavy_per_phase.mean(),
              static_cast<unsigned long long>(*n));
  std::printf("  requests per heavy processor: %.2f   (Lemma 7: constant)\n",
              agg.requests_per_heavy.mean());
  std::printf("  unmatched heavies (total)   : %llu (Lemma 6: ~0)\n",
              static_cast<unsigned long long>(agg.total_unmatched));
  std::printf("  protocol messages / task    : %.4f (balls-into-bins: >= 1)\n",
              static_cast<double>(engine.messages().protocol_total()) /
                  static_cast<double>(engine.total_generated()));
  std::printf("  locality (consumed at home) : %.1f%%\n",
              100.0 * engine.locality_fraction());
  return 0;
}
