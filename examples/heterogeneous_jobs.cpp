// Scenario: a render farm with heterogeneous job sizes — most frames are
// cheap, some are huge. Demonstrates the weighted extension (EXP-17): the
// same threshold algorithm, but classifying and shipping load by total job
// *weight* rather than job count.
//
//   ./heterogeneous_jobs [--n 4096] [--steps 15000]
#include <cstdio>

#include "clb.hpp"

int main(int argc, char** argv) {
  clb::util::Cli cli("heterogeneous_jobs: weighted threshold balancing");
  const auto n = cli.flag_u64("n", 4096, "number of workers");
  const auto steps = cli.flag_u64("steps", 15000, "simulation steps");
  const auto seed = cli.flag_u64("seed", 9, "random seed");
  cli.parse(argc, argv);

  // 90% weight-1 frames, 10% weight-10 "hero" frames.
  std::vector<double> pmf(10, 0.0);
  pmf[0] = 0.9;
  pmf[9] = 0.1;

  clb::util::print_banner("render farm with mixed job sizes");
  clb::util::Table table({"classification", "max weight on a worker",
                          "max job count", "p99 sojourn", "msgs/job"});
  for (const bool by_weight : {false, true}) {
    clb::models::WeightedSingleModel model(0.4, 0.1, pmf);
    const auto params = clb::core::PhaseParams::from_n(
        *n, clb::core::Fractions{.scale = model.mean_weight()});
    clb::core::ThresholdBalancer balancer(
        {.params = params, .weight_based = by_weight});
    clb::sim::Engine eng({.n = *n, .seed = *seed, .track_sojourn = true},
                         &model, &balancer);
    eng.run(*steps);
    table.row()
        .cell(by_weight ? "by weight (extension)" : "by count (paper)")
        .cell(eng.running_max_weight())
        .cell(eng.running_max_load())
        .cell(eng.sojourn_histogram().quantile(0.99))
        .cell(static_cast<double>(eng.messages().protocol_total()) /
                  static_cast<double>(eng.total_generated()),
              4);
  }
  std::fputs(table.str().c_str(), stdout);
  clb::util::print_note(
      "counting jobs hides the hero frames: a worker with three weight-10 "
      "jobs looks light. Weight-based thresholds keep the per-worker "
      "backlog (and hence the tail latency) bounded.");
  return 0;
}
