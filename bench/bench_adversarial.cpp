// EXP-11 — §1.2 Adversarial model: with a system-load cap B and O(T)
// per-window self-generation, the maximum load is O(B/n + (log log n)^2)
// w.h.p.; the §4.3 one-shot pre-round keeps the collision games small.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace clb;
  util::Cli cli("EXP-11: adversarial tree-spawn model");
  const auto n = cli.flag_u64("n", 1 << 13, "processors");
  const auto steps = cli.flag_u64("steps", 1500, "steps per run");
  const auto seed = cli.flag_u64("seed", 1, "seed");
  const auto link_latency = cli.flag_u64(
      "link-latency", 2, "dist row: message latency over the net:: fabric");
  const auto link_jitter = cli.flag_u64(
      "link-jitter", 0, "dist row: per-link extra-delay span");
  const auto link_bw = cli.flag_u64(
      "link-bw", 0, "dist row: per-link bandwidth cap (0 = uncapped)");
  const auto link_loss = cli.flag_u64(
      "link-loss", 0, "dist row: loss numerator over 65536 (0 = lossless)");
  bench::SmokeFlag smoke(cli);
  cli.parse(argc, argv);
  smoke.apply();

  // The dist row runs the adversary over the full net:: fabric, so the
  // O(B/n + T) bound can be re-checked on degraded links.
  net::NetConfig link;
  link.jitter = static_cast<std::uint32_t>(*link_jitter);
  link.bandwidth = static_cast<std::uint32_t>(*link_bw);
  link.loss_per_64k = static_cast<std::uint32_t>(*link_loss);

  util::print_banner("EXP-11  adversarial model: max load vs cap B (§1.2)");
  util::print_note("expect: balanced max ~ O(B/n + T) for every B; "
                   "unbalanced grows with B unboundedly");

  const auto params = core::PhaseParams::from_n(*n);
  util::Table table({"B/n", "policy", "max load", "O(B/n + T) scale",
                     "mean load", "msgs/phase", "preround matched %"});
  for (const std::uint64_t cap_per_proc : {2, 4, 8, 16}) {
    // A supercritical adversary (E[children per performed task] = 1.5) so
    // the system presses against the cap B — the regime the bound is about.
    models::AdversarialConfig ac;
    ac.window = params.T;
    ac.per_window_budget = params.T;
    ac.branch = 3;
    ac.p_spawn = 0.5;
    ac.p_seed = 0.1;
    ac.cap = cap_per_proc * *n;

    // 0 none, 1 threshold, 2 +preround, 3 dist over the net:: fabric
    for (const int policy : {0, 1, 2, 3}) {
      models::AdversarialModel model(ac, *n);
      std::unique_ptr<core::ThresholdBalancer> balancer;
      std::unique_ptr<dist::DistThresholdBalancer> dist_balancer;
      if (policy == 3) {
        dist_balancer = std::make_unique<dist::DistThresholdBalancer>(
            dist::DistConfig{.params = params,
                             .latency =
                                 static_cast<std::uint32_t>(*link_latency),
                             .link = link});
      } else if (policy > 0) {
        balancer = std::make_unique<core::ThresholdBalancer>(
            core::ThresholdBalancerConfig{
                .params = params, .one_shot_preround = policy == 2});
      }
      sim::Engine eng({.n = *n, .seed = *seed}, &model,
                      policy == 3 ? static_cast<sim::Balancer*>(
                                        dist_balancer.get())
                                  : balancer.get());
      eng.run(*steps);
      double preround_pct = 0;
      if (balancer) {
        const auto& agg = balancer->aggregate();
        if (agg.total_matched > 0) {
          preround_pct = 100.0 *
                         static_cast<double>(agg.total_preround_matched) /
                         static_cast<double>(agg.total_matched);
        }
      }
      table.row()
          .cell(cap_per_proc)
          .cell(policy == 0
                    ? "none"
                    : (policy == 1
                           ? "threshold"
                           : (policy == 2 ? "threshold+preround"
                                          : (link.shaped()
                                                 ? "dist+shaped-link"
                                                 : "dist"))))
          .cell(eng.running_max_load())
          .cell(static_cast<double>(cap_per_proc + params.T), 0)
          .cell(static_cast<double>(eng.total_load()) /
                    static_cast<double>(*n),
                2)
          .cell(balancer ? util::format_double(
                               balancer->aggregate().messages_per_phase.mean(),
                               1)
                         : std::string("-"))
          .cell(balancer ? util::format_double(preround_pct, 1)
                         : std::string("-"));
    }
  }
  clb::bench::emit(table, "adversarial_1");
  return 0;
}
