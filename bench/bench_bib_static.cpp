// EXP-12 — §1.1 known results, m = n balls into n bins:
//   single choice   Theta(log n / log log n)
//   ABKU greedy-d   log log n / log d + Theta(1)
//   ACMR parallel   r rounds, max load <= r * T
//   Stemann         collision-based, O(sqrt[r]{log n / log log n}) per round
//   BMS weighted    weighted greedy-d
//   ABKU infinite   stationary max < log log n / log d + O(1)
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace clb;
  util::Cli cli("EXP-12: static balls-into-bins reference table");
  const auto trials = cli.flag_u64("trials", 5, "independent trials");
  const auto seed = cli.flag_u64("seed", 1, "base seed");
  bench::SmokeFlag smoke(cli);
  cli.parse(argc, argv);
  smoke.apply();

  util::print_banner("EXP-12  known results: m = n balls into n bins (§1.1)");
  util::print_note("expect: single-choice ~ log n/log log n; greedy-2 ~ "
                   "log log n; parallel games match with few rounds");

  util::Table table({"n", "single (worst)", "pred", "greedy-2 (worst)",
                     "pred", "greedy-4", "ACMR r=2 max", "ACMR rank-2r",
                     "Stemann max/rounds", "infinite-2 max"});
  for (const std::uint64_t n : bench::default_sizes()) {
    std::uint64_t single = 0, g2 = 0, g4 = 0, acmr = 0, acmr_rank = 0,
                  stem = 0, stem_rounds = 0, inf2 = 0;
    bench::for_trials(*trials, *seed, [&](std::uint64_t s) {
      single = std::max(single, bib::single_choice(n, n, s).max_load);
      g2 = std::max(g2, bib::greedy_d(n, n, 2, s).max_load);
      g4 = std::max(g4, bib::greedy_d(n, n, 4, s).max_load);
      acmr = std::max(acmr, bib::acmr_parallel(n, n, {.rounds = 2}, s).max_load);
      acmr_rank = std::max(acmr_rank,
                           bib::acmr_greedy_2round(n, n, 2, s).max_load);
      const auto st = bib::stemann_collision(n, n, 32, s);
      stem = std::max(stem, st.max_load);
      stem_rounds = std::max<std::uint64_t>(stem_rounds, st.rounds);
      inf2 = std::max(inf2, bib::infinite_greedy_d(n, 2, 5 * n, s).max_load);
    });
    table.row()
        .cell(n)
        .cell(single)
        .cell(analysis::expected_max_single_choice(n, n), 1)
        .cell(g2)
        .cell(analysis::bib_greedy_d_max(n, 2), 1)
        .cell(g4)
        .cell(acmr)
        .cell(acmr_rank)
        .cell(std::to_string(stem) + "/" + std::to_string(stem_rounds))
        .cell(inf2);
  }
  clb::bench::emit(table, "bib_static_1");

  // Communication/ max-load trade-off across rounds (the ACMR lower bound's
  // shape: more rounds buy a lower max load).
  util::print_banner("EXP-12c  rounds vs max load trade-off, n = 2^16");
  {
    const std::uint64_t n = 1 << 16;
    util::Table t({"r", "ACMR max (worst)", "ACMR unallocated",
                   "ACMR msgs/ball", "Stemann max", "lower-bound shape"});
    for (const std::uint32_t r : {1u, 2u, 3u, 4u, 5u}) {
      std::uint64_t acmr_max = 0, acmr_left = 0, acmr_msgs = 0;
      std::uint64_t stem_max = 0;
      bench::for_trials(*trials, *seed, [&](std::uint64_t s) {
        const auto ar = bib::acmr_parallel(n, n, {.rounds = r}, s);
        acmr_max = std::max(acmr_max, ar.max_load);
        acmr_left = std::max(acmr_left, ar.unallocated);
        acmr_msgs = std::max(acmr_msgs, ar.messages);
        const auto st = bib::stemann_collision(n, n, r, s);
        stem_max = std::max(stem_max, st.max_load + st.unallocated / n);
      });
      const double lg = std::log2(static_cast<double>(n));
      const double shape = std::pow(lg / std::log2(lg), 1.0 / r);
      t.row()
          .cell(static_cast<std::uint64_t>(r))
          .cell(acmr_max)
          .cell(acmr_left)
          .cell(static_cast<double>(acmr_msgs) / static_cast<double>(n), 2)
          .cell(stem_max)
          .cell(shape, 2);
    }
    clb::bench::emit(t, "bib_static_2");
    util::print_note("ACMR's threshold shrinks as the r-th root; Stemann "
                     "trades leftover balls for flat per-round acceptance.");
  }

  // Weighted balls (BMS97): uniformity ratio sweep.
  util::print_banner("EXP-12b  weighted greedy-2 (BMS97), n = 2^14 balls");
  const std::uint64_t n = 1 << 14;
  util::Table wtable({"weight distribution", "avg W", "max W",
                      "max bin weight", "bound-ish m/n*WA + WM"});
  auto run_weighted = [&](const std::string& label,
                          std::vector<double> weights) {
    double wa = 0, wm = 0;
    for (const double w : weights) {
      wa += w;
      wm = std::max(wm, w);
    }
    wa /= static_cast<double>(weights.size());
    std::uint64_t worst = 0;
    bench::for_trials(*trials, *seed, [&](std::uint64_t s) {
      worst = std::max(worst,
                       bib::weighted_greedy_d(weights, n, 2, s).max_load);
    });
    wtable.row()
        .cell(label)
        .cell(wa, 2)
        .cell(wm, 2)
        .cell(worst)
        .cell(wa + wm, 2);
  };
  {
    std::vector<double> uniform(n, 1.0);
    run_weighted("uniform 1.0", uniform);
  }
  {
    rng::Xoshiro256 r(*seed);
    std::vector<double> skew(n);
    for (auto& w : skew) w = rng::exponential(r, 1.0);
    run_weighted("Exp(1)", skew);
  }
  {
    rng::Xoshiro256 r(*seed + 1);
    std::vector<double> heavy(n, 0.5);
    for (std::size_t i = 0; i < n / 100; ++i) {
      heavy[rng::bounded(r, n)] = 20.0;
    }
    run_weighted("0.5 + 1% x20.0", heavy);
  }
  clb::bench::emit(wtable, "bib_static_3");
  return 0;
}
