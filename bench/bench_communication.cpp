// EXP-09 — §1.2 communication claim: the threshold algorithm needs
// O(n / (log n)^{log log n - 1}) messages per phase, while parallel
// balls-into-bins allocation needs Theta(n) messages per *step* (>= 1
// message per generated task, since every task is shipped somewhere).
//
// Measures protocol messages per phase / per generated task for the
// threshold scheme against greedy-d allocation of the same task stream.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace clb;
  util::Cli cli("EXP-09: communication cost (threshold vs balls-into-bins)");
  const auto steps = cli.flag_u64("steps", 3000, "steps per run");
  const auto seed = cli.flag_u64("seed", 1, "seed");
  const auto sizes_csv = cli.flag_str(
      "sizes", "1024,4096,16384,65536", "comma-separated machine sizes n");
  bench::ObsFlags obs_flags(cli);
  bench::SmokeFlag smoke(cli);
  cli.parse(argc, argv);
  smoke.apply();

  obs::Recorder rec(obs_flags.config("bench_communication", argc, argv));
  rec.manifest().set_seed(*seed);
  rec.manifest().set_param("steps", *steps);
  rec.manifest().set_param("sizes", *sizes_csv);
  const std::vector<std::uint64_t> sizes = util::Cli::parse_u64_list(*sizes_csv);

  util::print_banner("EXP-09  messages per phase / per task (Section 1.2)");
  util::print_note("expect: ours -> 0 msgs/task as n grows; d-choice "
                   "allocation pays (d+1) msgs/task always");

  util::Table table({"n", "ours msgs/phase", "paper bound-ish", "ours msgs/task",
                     "bib msgs/task (d=2)", "ours tasks moved/task",
                     "locality ours", "locality bib"});
  std::uint64_t trace_window = 0;
  for (const std::uint64_t n : sizes) {
    // Each size gets its own window on the shared trace timeline.
    rec.trace()->set_time_base(trace_window);
    trace_window += *steps + 16;
    bench::ThresholdRun run(n, *seed, 0.4, 0.1, {}, false, rec.trace(),
                            &rec.metrics());
    run.engine.run(*steps);
    obs::snapshot_engine(rec.metrics(), run.engine,
                         "exp09.n" + std::to_string(n) + ".");
    const auto& msg = run.engine.messages();
    const auto generated = run.engine.total_generated();
    const double msgs_per_task =
        static_cast<double>(msg.protocol_total()) /
        static_cast<double>(generated);

    // Balls-into-bins counterpart: every generated task is allocated via
    // greedy-2 (d probes + 1 placement per task) and executed remotely.
    const double bib_msgs_per_task = 3.0;
    // Locality: a ball placed i.u.a.r.-ish lands on its generator with
    // probability ~1/n.
    const double bib_locality = 1.0 / static_cast<double>(n);

    table.row()
        .cell(n)
        .cell(bench::mean_ci(run.balancer.aggregate().messages_per_phase, 1))
        .cell(analysis::messages_per_phase_bound(n), 2)
        .cell(msgs_per_task, 4)
        .cell(bib_msgs_per_task, 1)
        .cell(static_cast<double>(msg.tasks_moved) /
                  static_cast<double>(generated),
              4)
        .cell(run.engine.locality_fraction(), 3)
        .cell(bib_locality, 5);
  }
  clb::bench::emit(table, "communication_1");

  // With T clamped at t_min the heavy fraction — and hence the message rate
  // — is flat in n; the paper's vanishing rate needs T to grow. Lift the
  // clamp to show the shape.
  util::print_banner("EXP-09c  msgs/task with T unclamped (t_min = 4)");
  util::Table decline({"n", "T", "msgs/task", "heavy frac"});
  for (const std::uint64_t n : sizes) {
    bench::ThresholdRun run(n, *seed, 0.4, 0.1, core::Fractions{.t_min = 4});
    run.engine.run(*steps);
    decline.row()
        .cell(n)
        .cell(run.balancer.params().T)
        .cell(static_cast<double>(run.engine.messages().protocol_total()) /
                  static_cast<double>(run.engine.total_generated()),
              4)
        .cell(run.balancer.aggregate().heavy_per_phase.mean() /
                  static_cast<double>(n),
              6);
  }
  clb::bench::emit(decline, "communication_2");
  util::print_note("message rate falls as T grows with n — the mechanism "
                   "behind the O(n/(log n)^{log log n - 1}) phase bound.");

  util::print_banner("EXP-09b  message breakdown at n = 2^14");
  bench::ThresholdRun run(1 << 14, *seed);
  run.engine.run(*steps);
  const auto& m = run.engine.messages();
  util::Table detail({"category", "count"});
  detail.row().cell("queries").cell(m.queries);
  detail.row().cell("accepts").cell(m.accepts);
  detail.row().cell("id messages").cell(m.id_messages);
  detail.row().cell("control (sibling checks)").cell(m.control);
  detail.row().cell("balancing transfers").cell(m.transfers);
  detail.row().cell("task payloads moved").cell(m.tasks_moved);
  clb::bench::emit(detail, "communication_3");
  util::print_note("a processor initiates balancing only after generating "
                   "~T/8 tasks on its own, hence the sublinear message rate "
                   "(final paragraph of Section 1.2).");
  rec.finish();
  return 0;
}
