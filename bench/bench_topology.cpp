// EXP-16 (extension) — hop-weighted communication cost on real machine
// graphs. The paper charges one unit per message (complete graph); on a
// ring / torus / hypercube each message to an i.u.a.r. partner costs
// mean_hops() links in expectation, so the link-level gap between the
// threshold algorithm and balls-into-bins allocation widens by exactly that
// factor. (Every partner choice in both schemes is i.u.a.r., making the
// re-weighting exact, not an approximation.)
#include <memory>

#include "common.hpp"
#include "net/topology.hpp"

int main(int argc, char** argv) {
  using namespace clb;
  util::Cli cli("EXP-16: hop-weighted communication on machine graphs");
  const auto n = cli.flag_u64("n", 1 << 14, "processors (power of two)");
  const auto steps = cli.flag_u64("steps", 3000, "steps per run");
  const auto seed = cli.flag_u64("seed", 1, "seed");
  bench::SmokeFlag smoke(cli);
  cli.parse(argc, argv);
  smoke.apply();
  CLB_CHECK(util::is_pow2(*n), "n must be a power of two (hypercube)");

  util::print_banner("EXP-16  link traffic: threshold vs balls-into-bins");
  util::print_note("expect: per-link-hop costs scale with mean hops; the "
                   "threshold scheme's advantage is preserved (or widened) "
                   "on sparse graphs");

  // One threshold run provides the message counts; the greedy-2 comparator
  // ships every task (3 messages + 1 payload per task).
  bench::ThresholdRun run(*n, *seed);
  run.engine.run(*steps);
  const auto generated = run.engine.total_generated();
  const double ours_msgs =
      static_cast<double>(run.engine.messages().protocol_total());
  const double ours_payload =
      static_cast<double>(run.engine.messages().tasks_moved);
  const double bib_msgs = 3.0 * static_cast<double>(generated);
  const double bib_payload = static_cast<double>(generated);

  const std::uint64_t side = 1ULL << (util::ilog2(*n) / 2);
  std::unique_ptr<net::Topology> tops[] = {
      std::make_unique<net::CompleteTopology>(*n),
      std::make_unique<net::HypercubeTopology>(*n),
      std::make_unique<net::Torus2D>(side, *n / side),
      std::make_unique<net::RingTopology>(*n),
  };
  util::Table table({"topology", "degree", "mean hops",
                     "ours link-units/task", "bib link-units/task",
                     "advantage x"});
  for (const auto& t : tops) {
    const double h = t->mean_hops();
    const double ours =
        h * (ours_msgs + ours_payload) / static_cast<double>(generated);
    const double bib =
        h * (bib_msgs + bib_payload) / static_cast<double>(generated);
    table.row()
        .cell(t->name())
        .cell(static_cast<std::uint64_t>(t->degree()))
        .cell(h, 2)
        .cell(ours, 3)
        .cell(bib, 3)
        .cell(bib / ours, 1);
  }
  clb::bench::emit(table, "topology_1");
  util::print_note("the advantage factor is hop-independent for uniform "
                   "partners; what changes is the absolute link budget a "
                   "machine must provision — tiny for the threshold scheme "
                   "even on a ring.");
  return 0;
}
