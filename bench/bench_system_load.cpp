// EXP-04 — Lemma 3: the balanced system's total load stays O(n) w.h.p.
// (balancing does not destabilise the system; Section 4.2's coupling
// argument says it consumes at least as fast as the unbalanced system).
//
// Tracks total load over time for balanced vs unbalanced runs, and prints
// the worst per-processor average over checkpoints.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace clb;
  util::Cli cli("EXP-04: total system load over time (Lemma 3)");
  const auto n = cli.flag_u64("n", 1 << 14, "processors");
  const auto steps = cli.flag_u64("steps", 6000, "steps");
  const auto checkpoints = cli.flag_u64("checkpoints", 12, "rows printed");
  const auto seed = cli.flag_u64("seed", 1, "seed");
  bench::SmokeFlag smoke(cli);
  cli.parse(argc, argv);
  smoke.apply();

  util::print_banner("EXP-04  system load stays O(n) (Lemma 3)");
  util::print_note("expect: both columns hover near E[load]*n = 2n; the "
                   "balanced one never exceeds the unbalanced trend");

  models::SingleModel bm(0.4, 0.1);
  core::ThresholdBalancer balancer(
      {.params = core::PhaseParams::from_n(*n)});
  sim::Engine balanced({.n = *n, .seed = *seed}, &bm, &balancer);
  models::SingleModel um(0.4, 0.1);
  sim::Engine unbalanced({.n = *n, .seed = *seed}, &um, nullptr);

  util::Table table({"step", "balanced load/n", "unbalanced load/n",
                     "balanced max", "unbalanced max"});
  const std::uint64_t stride = *steps / *checkpoints;
  std::uint64_t worst_bal = 0;
  for (std::uint64_t c = 1; c <= *checkpoints; ++c) {
    balanced.run(stride);
    unbalanced.run(stride);
    worst_bal = std::max(worst_bal, balanced.total_load());
    table.row()
        .cell(balanced.step())
        .cell(static_cast<double>(balanced.total_load()) /
                  static_cast<double>(*n),
              3)
        .cell(static_cast<double>(unbalanced.total_load()) /
                  static_cast<double>(*n),
              3)
        .cell(balanced.step_max_load())
        .cell(unbalanced.step_max_load());
  }
  clb::bench::emit(table, "system_load_1");
  std::printf("\n  worst balanced load/n over run: %.3f (prediction %.3f)\n",
              static_cast<double>(worst_bal) / static_cast<double>(*n),
              bm.expected_load_per_processor());
  std::printf("  conservation check: generated %llu = consumed %llu + "
              "in-system %llu\n",
              static_cast<unsigned long long>(balanced.total_generated()),
              static_cast<unsigned long long>(balanced.total_consumed()),
              static_cast<unsigned long long>(balanced.total_load()));
  return 0;
}
