// EXP-21 (extension) — the concurrent runtime: scaling and latency.
//
// rt::Runtime executes the paper's protocol on real worker threads
// (shared-nothing shards, lock-free MPSC mailboxes, barrier-separated
// supersteps). This bench free-runs it — no determinism sequencing, spin
// work attached to every consumed task so "consume" costs real CPU — and
// sweeps worker counts for Threshold vs NoBalancing vs AllInAir under the
// Single and Burst models. Measured: wall-clock throughput (tasks/sec),
// speedup over the 1-worker run of the same configuration, task sojourn
// latency (p50/p95/p99 in microseconds), and mailbox contention exposure
// (fraction of messages pushed into another worker's mailbox).
//
// tools/perfbench.py drives this binary once per worker count and distils
// the emitted metrics into BENCH_rt.json; run it directly for tables.
//
// EXP-22 (second section) — the latency fabric on real threads. With
// --latencies the runtime re-runs in deterministic mode with a message
// latency attached to every protocol send (the dist:: delay-queue policy,
// executed by worker threads), and the table reports per-phase durations:
// EXP-19's phase-duration ∝ latency result, reproduced on the concurrent
// runtime. tools/statcheck.py --exp22 gates the exp22.* gauges.
//
// EXP-24 (third section) — the link model on the same fabric. A loss ×
// bandwidth grid (heterogeneous jitter on every point) re-runs the
// deterministic latency sweep with lossy, shaped links: lost attempts are
// retransmitted after an RTO, ack losses schedule (suppressed) duplicates,
// and bandwidth caps serialize each link's sends. The table reports how
// phase durations stretch with the retransmit/queueing delay while the
// match rate holds. tools/statcheck.py --exp24 gates the exp24.* gauges.
//
// EXP-25 (--workload-grid) — the production workload zoo. Every zoo model
// (diurnal, flash-crowd, pareto, zipf, hetero) runs deterministically under
// four policies: unbalanced control, the stale-information shortest-queue
// baseline, Berenbrink–Kling local search, and the paper's threshold
// protocol. A crash/recovery pass re-runs the liveness-aware policies with
// processors dying mid-run. Deterministic mode makes every gauge an exact
// replayable constant; tools/statcheck.py --exp25 gates the exp25.* bands.
//
// EXP-27 (--scaling-grid) — million-processor scale. A throughput grid over
// n x workers x queue layout: the pointer-chasing FIFO baseline vs the
// arena-backed SoA layout (RtConfig::arena), plus an arena run with
// deterministic work stealing live (RtConfig::steal). Runs are
// deterministic, so the fifo and arena rows of the same (n, workers) point
// must agree on every counter — the bench FATALs if the layouts diverge —
// and the arena-over-fifo throughput ratio is a pure queue-layout effect
// that perfbench.py --exp27 gates even on a single-core host (it compares
// two same-host runs, not parallelism). tools/statcheck.py --exp27 bands
// the exp27.* gauges.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "obs/json.hpp"

namespace {

using namespace clb;

std::unique_ptr<sim::LoadModel> make_zoo_model(const std::string& name,
                                               std::uint64_t n) {
  if (name == "diurnal") {
    models::DiurnalConfig dc;
    dc.period = 64;
    dc.proc_skew = 1.0 / static_cast<double>(n);  // peak sweeps the machine
    return std::make_unique<models::DiurnalModel>(dc);
  }
  if (name == "flash-crowd") {
    return std::make_unique<models::FlashCrowdModel>(
        models::FlashCrowdConfig{}, n);
  }
  if (name == "pareto") {
    return std::make_unique<models::ParetoModel>(models::ParetoConfig{});
  }
  if (name == "zipf") {
    models::ZipfConfig zc;
    zc.rotate_period = 96;  // hot-shard migration
    return std::make_unique<models::ZipfModel>(zc, n);
  }
  return std::make_unique<models::HeteroModel>(models::HeteroConfig{});
}

rt::RtPolicy zoo_policy_of(const std::string& name) {
  if (name == "none") return rt::RtPolicy::kNone;
  if (name == "stale-sq") return rt::RtPolicy::kStaleSq;
  if (name == "local-search") return rt::RtPolicy::kLocalSearch;
  return rt::RtPolicy::kThreshold;
}

std::unique_ptr<sim::LoadModel> make_model(const std::string& name,
                                           std::uint64_t n) {
  if (name == "burst") {
    models::BurstConfig bc;
    bc.period = 64;
    bc.burst_len = 16;
    bc.hot_fraction = 0.05;
    bc.burst_rate = 8;
    return std::make_unique<models::BurstModel>(bc, n);
  }
  return std::make_unique<models::SingleModel>(0.45, 0.1);
}

rt::RtPolicy policy_of(const std::string& name) {
  if (name == "none") return rt::RtPolicy::kNone;
  if (name == "all-in-air") return rt::RtPolicy::kAllInAir;
  return rt::RtPolicy::kThreshold;
}

/// Worker counts to sweep: powers of two up to hardware_concurrency, plus
/// the concurrency itself when it is not a power of two. Always includes 2
/// so mailbox traffic is exercised even on a single-core host.
std::vector<unsigned> auto_workers() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  std::vector<unsigned> w;
  for (unsigned k = 1; k <= hw; k *= 2) w.push_back(k);
  if (w.back() != hw) w.push_back(hw);
  if (w.size() < 2) w.push_back(2);
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("EXP-21: concurrent runtime scaling (threads + mailboxes)");
  const auto n = cli.flag_u64("n", 1 << 12, "logical processors");
  const auto steps = cli.flag_u64("steps", 2000, "runtime steps per run");
  const auto seed = cli.flag_u64("seed", 1, "seed");
  const auto spin = cli.flag_u64(
      "spin", 64, "spin-work iterations per consumed task (free-running)");
  const auto workers_csv = cli.flag_str(
      "workers", "", "comma-separated worker counts (default: 1,2,4,..,hw)");
  const auto models_csv =
      cli.flag_str("models", "single,burst", "models: single,burst");
  const auto policies_csv = cli.flag_str(
      "policies", "threshold,none,all-in-air",
      "policies: threshold,none,all-in-air");
  const auto latencies_csv = cli.flag_str(
      "latencies", "1,2,4,8",
      "EXP-22 deterministic latency sweep (empty disables)");
  const auto lat_steps = cli.flag_u64(
      "lat-steps", 512, "runtime steps per latency-sweep run");
  const auto lat_workers =
      cli.flag_u64("lat-workers", 4, "worker threads in the latency sweep");
  const auto link_loss_csv = cli.flag_str(
      "link-loss-grid", "0,4096,16384",
      "EXP-24 loss grid, /65536 numerators (empty disables)");
  const auto link_bw_csv = cli.flag_str(
      "link-bw-grid", "0,1",
      "EXP-24 bandwidth-cap grid, msgs/step per link (0 = uncapped)");
  const auto link_jitter = cli.flag_u64(
      "link-jitter", 1, "EXP-24 per-link extra-delay span (heterogeneous)");
  const auto link_latency = cli.flag_u64(
      "link-latency", 2, "EXP-24 base fabric latency");
  const auto workload_grid = cli.flag_bool(
      "workload-grid", false,
      "EXP-25 production workload zoo: every zoo model under the "
      "unbalanced/stale-SQ/local-search/threshold policies, plus a "
      "crash/recovery pass (deterministic; statcheck --exp25)");
  const auto scaling_grid = cli.flag_bool(
      "scaling-grid", false,
      "EXP-27 million-processor scale: n x workers x queue-layout "
      "throughput grid (fifo vs arena vs arena+steal, deterministic; "
      "perfbench --exp27 / statcheck --exp27)");
  const auto grid_n_csv = cli.flag_str(
      "grid-n", "65536,262144,1048576",
      "EXP-27 processor counts (default 2^16, 2^18, 2^20)");
  const auto grid_workers_csv =
      cli.flag_str("grid-workers", "1,2,4", "EXP-27 worker counts");
  const auto grid_steps =
      cli.flag_u64("grid-steps", 48, "steps per EXP-27 grid run");
  const auto zoo_steps =
      cli.flag_u64("zoo-steps", 384, "steps per workload-zoo run");
  const auto zoo_staleness = cli.flag_u64(
      "zoo-staleness", 8, "stale-SQ broadcast interval in the zoo grid");
  const auto telemetry = cli.flag_bool(
      "telemetry", false,
      "per-worker hot-path telemetry: utilization/stall/imbalance table, "
      "rt.*.telemetry.* gauges, snapshot timeline (--telemetry-jsonl)");
  const auto telemetry_interval = cli.flag_u64(
      "telemetry-interval", 64, "steps between telemetry snapshots");
  const auto telemetry_jsonl = cli.flag_str(
      "telemetry-jsonl", "",
      "write the snapshot timeline here (tools/rt_report.py reads it)");
  bench::SmokeFlag smoke(cli);
  bench::ObsFlags obs_flags(cli);
  cli.parse(argc, argv);
  smoke.apply();
  if (smoke.on()) {
    cli.override_str("workers", "1,2");
    cli.override_str("models", "single");
    cli.override_str("latencies", "1,4");
    cli.override_u64("lat-steps", 192);
    cli.override_str("link-loss-grid", "0,16384");
    cli.override_str("link-bw-grid", "0,1");
    cli.override_u64("zoo-steps", 128);
    cli.override_str("grid-n", "16384");
    cli.override_str("grid-workers", "1,2");
    cli.override_u64("grid-steps", 32);
  }

  obs::Recorder rec(obs_flags.config("bench_rt", argc, argv));
  rec.manifest().set_seed(*seed);
  rec.manifest().set_param("n", *n);
  rec.manifest().set_param("steps", *steps);
  rec.manifest().set_param("spin", *spin);

  std::vector<unsigned> workers;
  if (workers_csv->empty()) {
    workers = auto_workers();
  } else {
    for (std::uint64_t w : util::Cli::parse_u64_list(*workers_csv)) {
      workers.push_back(static_cast<unsigned>(w));
    }
  }

  std::vector<std::string> model_names;
  for (const std::string& m : {std::string("single"), std::string("burst")}) {
    if (models_csv->find(m) != std::string::npos) model_names.push_back(m);
  }
  std::vector<std::string> policy_names;
  for (const std::string& p :
       {std::string("threshold"), std::string("none"),
        std::string("all-in-air")}) {
    if (policies_csv->find(p) != std::string::npos) policy_names.push_back(p);
  }

  util::print_banner("EXP-21  runtime scaling: threads, mailboxes, supersteps");
  util::print_note("expect: tasks/sec grows with workers until the core "
                   "count; threshold holds p99 sojourn near the unbalanced "
                   "p50 at a few percent remote-message overhead");

  util::Table table({"model", "policy", "workers", "tasks/sec", "speedup",
                     "p50 us", "p95 us", "p99 us", "remote %", "msgs/task"});
  util::Table ttable({"model", "policy", "workers", "util mean", "stall %",
                      "imbalance", "drain mean", "barrier p99 us"});
  std::string telemetry_timeline;
  if (*telemetry && !obs::kTelemetryCompiled) {
    util::print_note("--telemetry requested but the binary was built with "
                     "-DCLB_TELEMETRY=OFF; telemetry output will be empty");
  }

  // Runs share one trace timeline; each gets its own step window so the
  // JSONL steps stay globally non-decreasing (same idiom as the sim benches).
  std::uint64_t trace_window = 0;

  for (const std::string& model_name : model_names) {
    for (const std::string& policy_name : policy_names) {
      double base_rate = 0;
      for (unsigned w : workers) {
        auto model = make_model(model_name, *n);
        rt::RtConfig cfg;
        cfg.n = *n;
        cfg.seed = *seed;
        cfg.workers = w;
        cfg.deterministic = false;  // free-running: arrival order wins
        cfg.policy = policy_of(policy_name);
        if (cfg.policy == rt::RtPolicy::kThreshold) {
          cfg.params = core::PhaseParams::from_n(*n);
        }
        cfg.spin_work = static_cast<std::uint32_t>(*spin);
        cfg.time_sojourn = true;
        cfg.telemetry = *telemetry;
        cfg.telemetry_interval = *telemetry ? *telemetry_interval : 0;
        cfg.telemetry_tag =
            model_name + "." + policy_name + ".w" + std::to_string(w);
        cfg.trace = rec.trace();
        rec.trace()->set_time_base(trace_window);
        trace_window += *steps + 16;
        rt::Runtime run(cfg, model.get());
        run.run(*steps);

        const double secs = std::max(run.wall_seconds(), 1e-9);
        const double rate =
            static_cast<double>(run.total_consumed()) / secs;
        if (w == workers.front()) base_rate = rate;
        const stats::IntHistogram soj = run.sojourn_us();
        const std::uint64_t remote = run.remote_pushes();
        const std::uint64_t self = run.self_pushes();
        const double remote_pct =
            remote + self > 0
                ? 100.0 * static_cast<double>(remote) /
                      static_cast<double>(remote + self)
                : 0.0;
        const double msgs_per_task =
            run.total_generated() > 0
                ? static_cast<double>(run.messages().protocol_total()) /
                      static_cast<double>(run.total_generated())
                : 0.0;

        table.row()
            .cell(model_name)
            .cell(policy_name)
            .cell(static_cast<std::uint64_t>(w))
            .cell(rate, 0)
            .cell(base_rate > 0 ? rate / base_rate : 1.0, 2)
            .cell(soj.quantile(0.50))
            .cell(soj.quantile(0.95))
            .cell(soj.quantile(0.99))
            .cell(remote_pct, 2)
            .cell(msgs_per_task, 4);

        const std::string prefix = "rt." + model_name + "." + policy_name +
                                   ".w" + std::to_string(w) + ".";
        rec.metrics().gauge(prefix + "tasks_per_sec") = rate;
        rec.metrics().gauge(prefix + "wall_seconds") = secs;
        rec.metrics().gauge(prefix + "sojourn_p50_us") =
            static_cast<double>(soj.quantile(0.50));
        rec.metrics().gauge(prefix + "sojourn_p95_us") =
            static_cast<double>(soj.quantile(0.95));
        rec.metrics().gauge(prefix + "sojourn_p99_us") =
            static_cast<double>(soj.quantile(0.99));
        rec.metrics().gauge(prefix + "remote_push_fraction") =
            remote_pct / 100.0;
        rec.metrics().gauge(prefix + "msgs_per_task") = msgs_per_task;
        rec.metrics().gauge(prefix + "consumed") =
            static_cast<double>(run.total_consumed());

        if (run.telemetry_enabled()) {
          run.export_telemetry(rec.metrics(), prefix + "telemetry.");
          telemetry_timeline += run.telemetry_jsonl();
          auto& m = rec.metrics();
          ttable.row()
              .cell(model_name)
              .cell(policy_name)
              .cell(static_cast<std::uint64_t>(w))
              .cell(m.gauge(prefix + "telemetry.utilization_mean"), 3)
              .cell(100.0 * m.gauge(prefix + "telemetry.barrier_stall_fraction"),
                    2)
              .cell(m.gauge(prefix + "telemetry.queue_imbalance"), 2)
              .cell(m.gauge(prefix + "telemetry.drain_batch_mean"), 2)
              .cell(m.gauge(prefix + "telemetry.barrier_wait_p99_ns") / 1000.0,
                    1);
        }

        if (!run.conservation_holds()) {
          std::fprintf(stderr, "FATAL: conservation violated (%s/%s/w%u)\n",
                       model_name.c_str(), policy_name.c_str(), w);
          return 1;
        }
      }
    }
  }
  clb::bench::emit(table, "rt_1");

  // ---- EXP-22: the latency fabric on real threads (deterministic) ----
  // Same protocol, but every send is delayed by the dist:: delivery policy;
  // phases span supersteps and their duration tracks the message latency
  // (EXP-19's result, executed by worker threads instead of the simulator).
  std::vector<std::uint32_t> latencies;
  for (std::uint64_t l : util::Cli::parse_u64_list(*latencies_csv)) {
    latencies.push_back(static_cast<std::uint32_t>(l));
  }
  if (!latencies.empty()) {
    util::print_banner(
        "EXP-22  latency fabric: phase duration on real threads");
    util::print_note("expect: mean phase duration grows ~linearly with the "
                     "message latency while the match rate holds; runs are "
                     "deterministic and worker-count invariant (lockstep "
                     "with dist/, see rt_latency_equivalence)");
    util::Table lt({"latency", "phases", "phase steps (mean)", "match %",
                    "forced", "max load"});
    core::Fractions lat_fr;
    lat_fr.t_min = 64;
    const core::PhaseParams lat_params = core::PhaseParams::from_n(*n, lat_fr);
    for (const std::uint32_t latency : latencies) {
      auto model = make_model("single", *n);
      rt::RtConfig cfg;
      cfg.n = *n;
      cfg.seed = *seed;
      cfg.workers = static_cast<unsigned>(*lat_workers);
      cfg.deterministic = true;
      cfg.policy = rt::RtPolicy::kThreshold;
      cfg.params = lat_params;
      cfg.latency = latency;
      cfg.telemetry = *telemetry;
      cfg.telemetry_interval = *telemetry ? *telemetry_interval : 0;
      cfg.telemetry_tag = "exp22.lat" + std::to_string(latency);
      cfg.trace = rec.trace();
      rec.trace()->set_time_base(trace_window);
      // Window must cover the bounded drain overrun below (<= 4096 steps).
      trace_window += *lat_steps + 4096 + 64;
      rt::Runtime run(cfg, model.get());

      // Periodic load spikes guarantee heavy processors, so every phase
      // does real matching work — the same pattern at every latency.
      std::uint64_t done = 0;
      for (std::uint64_t s = 0; s < *lat_steps; s += 37) {
        if (s > done) {
          run.run(s - done);
          done = s;
        }
        const std::uint32_t proc =
            static_cast<std::uint32_t>((*seed * 7 + s * 13) % *n);
        for (std::uint32_t i = 0; i < 48; ++i) {
          run.deposit(proc,
                      sim::Task{static_cast<std::uint32_t>(s), proc, 1});
        }
      }
      run.run(*lat_steps - done);
      // A phase may be mid-flight at the nominal end (task payloads riding
      // the fabric are neither queued nor consumed); step on to the next
      // phase boundary so the conservation check sees a drained fabric.
      for (std::uint64_t extra = 0;
           run.fabric_in_flight() != 0 && extra < 4096; ++extra) {
        run.run(1);
      }

      std::uint64_t phases = 0, duration = 0, matched = 0, unmatched = 0,
                    forced = 0;
      for (const rt::RtPhaseSummary& ps : run.phases()) {
        if (!ps.completed || ps.num_heavy == 0) continue;
        ++phases;
        duration += ps.end_step - ps.start_step;
        matched += ps.matched;
        unmatched += ps.unmatched;
        if (ps.forced) ++forced;
      }
      const double mean_dur =
          phases > 0
              ? static_cast<double>(duration) / static_cast<double>(phases)
              : 0.0;
      const double total_heavy = static_cast<double>(matched + unmatched);
      const double match_pct =
          total_heavy > 0
              ? 100.0 * static_cast<double>(matched) / total_heavy
              : 100.0;

      lt.row()
          .cell(static_cast<std::uint64_t>(latency))
          .cell(phases)
          .cell(mean_dur, 2)
          .cell(match_pct, 2)
          .cell(forced)
          .cell(run.running_max_load());

      const std::string prefix = "exp22.lat" + std::to_string(latency) + ".";
      rec.metrics().gauge(prefix + "phase_duration_mean") = mean_dur;
      rec.metrics().gauge(prefix + "phases") = static_cast<double>(phases);
      rec.metrics().gauge(prefix + "match_pct") = match_pct;
      rec.metrics().gauge(prefix + "forced") = static_cast<double>(forced);

      if (run.telemetry_enabled()) {
        run.export_telemetry(rec.metrics(), prefix + "telemetry.");
        telemetry_timeline += run.telemetry_jsonl();
      }

      if (!run.conservation_holds() || run.fabric_in_flight() != 0) {
        std::fprintf(stderr,
                     "FATAL: latency-sweep invariants violated (lat=%u)\n",
                     latency);
        return 1;
      }
    }
    clb::bench::emit(lt, "rt_2");
  }

  // ---- EXP-24: the link model (loss/retransmit, bandwidth, jitter) ----
  // Same deterministic driver as EXP-22 at a fixed base latency, sweeping a
  // loss × bandwidth grid with heterogeneous per-link jitter everywhere:
  // the single fabric absorbs retransmit and queueing delay as longer
  // phases, not lost work.
  std::vector<std::uint32_t> losses;
  for (std::uint64_t l : util::Cli::parse_u64_list(*link_loss_csv)) {
    losses.push_back(static_cast<std::uint32_t>(l));
  }
  std::vector<std::uint32_t> bws;
  for (std::uint64_t b : util::Cli::parse_u64_list(*link_bw_csv)) {
    bws.push_back(static_cast<std::uint32_t>(b));
  }
  if (!losses.empty() && !bws.empty()) {
    util::print_banner(
        "EXP-24  link model: loss/retransmit + bandwidth caps + jitter");
    util::print_note("expect: phase duration stretches with the loss rate "
                     "(retransmit RTOs) and with bandwidth caps (per-link "
                     "FIFO queueing) while the match rate holds; lossless "
                     "uncapped rows pay neither");
    util::Table kt({"loss/64k", "bw cap", "phases", "phase steps (mean)",
                    "match %", "forced", "retrans", "dups supp",
                    "queued delay"});
    core::Fractions link_fr;
    link_fr.t_min = 64;
    const core::PhaseParams link_params =
        core::PhaseParams::from_n(*n, link_fr);
    for (const std::uint32_t loss : losses) {
      for (const std::uint32_t bw : bws) {
        auto model = make_model("single", *n);
        rt::RtConfig cfg;
        cfg.n = *n;
        cfg.seed = *seed;
        cfg.workers = static_cast<unsigned>(*lat_workers);
        cfg.deterministic = true;
        cfg.policy = rt::RtPolicy::kThreshold;
        cfg.params = link_params;
        cfg.latency = static_cast<std::uint32_t>(*link_latency);
        cfg.link.jitter = static_cast<std::uint32_t>(*link_jitter);
        cfg.link.bandwidth = bw;
        cfg.link.loss_per_64k = loss;
        cfg.telemetry = *telemetry;
        cfg.telemetry_interval = *telemetry ? *telemetry_interval : 0;
        cfg.telemetry_tag =
            "exp24.loss" + std::to_string(loss) + ".bw" + std::to_string(bw);
        cfg.trace = rec.trace();
        rec.trace()->set_time_base(trace_window);
        trace_window += *lat_steps + 4096 + 64;
        rt::Runtime run(cfg, model.get());

        // The same periodic-spike pattern as EXP-22, so rows only differ in
        // their link model.
        std::uint64_t done = 0;
        for (std::uint64_t s = 0; s < *lat_steps; s += 37) {
          if (s > done) {
            run.run(s - done);
            done = s;
          }
          const std::uint32_t proc =
              static_cast<std::uint32_t>((*seed * 7 + s * 13) % *n);
          for (std::uint32_t i = 0; i < 48; ++i) {
            run.deposit(proc,
                        sim::Task{static_cast<std::uint32_t>(s), proc, 1});
          }
        }
        run.run(*lat_steps - done);
        for (std::uint64_t extra = 0;
             run.fabric_in_flight() != 0 && extra < 4096; ++extra) {
          run.run(1);
        }

        std::uint64_t phases = 0, duration = 0, matched = 0, unmatched = 0,
                      forced = 0;
        for (const rt::RtPhaseSummary& ps : run.phases()) {
          if (!ps.completed || ps.num_heavy == 0) continue;
          ++phases;
          duration += ps.end_step - ps.start_step;
          matched += ps.matched;
          unmatched += ps.unmatched;
          if (ps.forced) ++forced;
        }
        const double mean_dur =
            phases > 0
                ? static_cast<double>(duration) / static_cast<double>(phases)
                : 0.0;
        const double total_heavy = static_cast<double>(matched + unmatched);
        const double match_pct =
            total_heavy > 0
                ? 100.0 * static_cast<double>(matched) / total_heavy
                : 100.0;

        kt.row()
            .cell(static_cast<std::uint64_t>(loss))
            .cell(static_cast<std::uint64_t>(bw))
            .cell(phases)
            .cell(mean_dur, 2)
            .cell(match_pct, 2)
            .cell(forced)
            .cell(run.fabric_retransmits())
            .cell(run.fabric_dup_suppressed())
            .cell(run.fabric_queued_delay());

        const std::string prefix = "exp24.loss" + std::to_string(loss) +
                                   ".bw" + std::to_string(bw) + ".";
        rec.metrics().gauge(prefix + "phase_duration_mean") = mean_dur;
        rec.metrics().gauge(prefix + "phases") = static_cast<double>(phases);
        rec.metrics().gauge(prefix + "match_pct") = match_pct;
        rec.metrics().gauge(prefix + "forced") = static_cast<double>(forced);
        rec.metrics().gauge(prefix + "retransmits") =
            static_cast<double>(run.fabric_retransmits());
        rec.metrics().gauge(prefix + "dup_suppressed") =
            static_cast<double>(run.fabric_dup_suppressed());
        rec.metrics().gauge(prefix + "queued_delay") =
            static_cast<double>(run.fabric_queued_delay());

        if (run.telemetry_enabled()) {
          run.export_telemetry(rec.metrics(), prefix + "telemetry.");
          telemetry_timeline += run.telemetry_jsonl();
        }

        if (!run.conservation_holds() || run.fabric_in_flight() != 0) {
          std::fprintf(stderr,
                       "FATAL: link-sweep invariants violated "
                       "(loss=%u bw=%u)\n",
                       loss, bw);
          return 1;
        }
      }
    }
    clb::bench::emit(kt, "rt_3");
  }

  // ---- EXP-25: the production workload zoo (--workload-grid) ----
  // Deterministic runs, so every gauge is an exact replayable constant:
  // each zoo model under the unbalanced control, the stale-information
  // shortest-queue baseline, Berenbrink–Kling local search, and the paper's
  // threshold protocol; then a crash/recovery pass over the liveness-aware
  // policies with two processors dying mid-run.
  if (*workload_grid) {
    util::print_banner(
        "EXP-25  workload zoo: heavy tails, diurnal skew, crash/recovery");
    util::print_note("expect: the load-oblivious threshold protocol holds "
                     "max load within a small constant of the informed "
                     "baselines on every model without load broadcasts; "
                     "stale-SQ herds onto stale minima; crashes re-home "
                     "every task (conservation is FATAL-checked)");
    util::Table zt({"model", "policy", "max load", "final mean", "moved",
                    "msgs/task", "consumed", "rehomed"});
    // One zoo run -> one table row + one exp25.<prefix>.* gauge group.
    // Returns false on an invariant violation (caller aborts the bench).
    auto zoo_run = [&](const std::string& model_name,
                       const std::string& policy_name,
                       const std::vector<core::CrashEvent>& crashes,
                       const std::string& prefix) -> bool {
      auto model = make_zoo_model(model_name, *n);
      rt::RtConfig cfg;
      cfg.n = *n;
      cfg.seed = *seed;
      cfg.workers = static_cast<unsigned>(*lat_workers);
      cfg.deterministic = true;
      cfg.policy = zoo_policy_of(policy_name);
      if (cfg.policy == rt::RtPolicy::kThreshold) {
        cfg.params = core::PhaseParams::from_n(*n);
      }
      cfg.stale.staleness = *zoo_staleness;
      cfg.crashes = crashes;
      cfg.trace = rec.trace();
      rec.trace()->set_time_base(trace_window);
      trace_window += *zoo_steps + 16;
      rt::Runtime run(cfg, model.get());
      run.run(*zoo_steps);

      const double final_mean =
          static_cast<double>(run.total_load()) / static_cast<double>(*n);
      const std::uint64_t moved = run.messages().tasks_moved;
      const double msgs_per_task =
          run.total_generated() > 0
              ? static_cast<double>(run.messages().protocol_total()) /
                    static_cast<double>(run.total_generated())
              : 0.0;

      zt.row()
          .cell(model_name)
          .cell(policy_name)
          .cell(run.running_max_load())
          .cell(final_mean, 2)
          .cell(moved)
          .cell(msgs_per_task, 4)
          .cell(run.total_consumed())
          .cell(run.rehomed_tasks());

      const std::string gp = "exp25." + prefix + ".";
      rec.metrics().gauge(gp + "max_load") =
          static_cast<double>(run.running_max_load());
      rec.metrics().gauge(gp + "final_mean_load") = final_mean;
      rec.metrics().gauge(gp + "tasks_moved") = static_cast<double>(moved);
      rec.metrics().gauge(gp + "msgs_per_task") = msgs_per_task;
      rec.metrics().gauge(gp + "consumed") =
          static_cast<double>(run.total_consumed());
      if (!crashes.empty()) {
        rec.metrics().gauge(gp + "rehomed_tasks") =
            static_cast<double>(run.rehomed_tasks());
        rec.metrics().gauge(gp + "rehomed_events") =
            static_cast<double>(run.rehomed_events());
      }

      if (!run.conservation_holds()) {
        std::fprintf(stderr, "FATAL: zoo conservation violated (%s/%s)\n",
                     model_name.c_str(), policy_name.c_str());
        return false;
      }
      return true;
    };

    const std::vector<std::string> zoo_model_names = {
        "diurnal", "flash-crowd", "pareto", "zipf", "hetero"};
    const std::vector<std::string> zoo_policy_names = {
        "none", "stale-sq", "local-search", "threshold"};
    for (const std::string& mn : zoo_model_names) {
      for (const std::string& pn : zoo_policy_names) {
        if (!zoo_run(mn, pn, {}, mn + "." + pn)) return 1;
      }
    }

    // Crash/recovery pass: the diurnal model under the liveness-aware
    // policies (the threshold protocol predates liveness; see RtConfig),
    // two processors dying mid-run and recovering before the end.
    const std::uint64_t down = std::max<std::uint64_t>(*zoo_steps / 8, 1);
    const std::vector<core::CrashEvent> zoo_crashes = {
        {*zoo_steps / 3, static_cast<std::uint32_t>(*n / 3), down},
        {*zoo_steps / 2, static_cast<std::uint32_t>(2 * *n / 3), down}};
    for (const std::string& pn : {std::string("none"),
                                  std::string("stale-sq"),
                                  std::string("local-search")}) {
      if (!zoo_run("diurnal", pn, zoo_crashes, "crash." + pn)) return 1;
    }
    clb::bench::emit(zt, "rt_4");
  }

  // ---- EXP-27: million-processor scale (--scaling-grid) ----
  // Deterministic throughput grid over n x workers x queue layout. The
  // three layouts per point: the pointer-chasing FIFO baseline, the
  // arena-backed SoA task queues (RtConfig::arena), and arena with
  // deterministic work stealing live (RtConfig::steal). Spin work is off so
  // the queue data path dominates; determinism makes every counter an exact
  // replayable constant, and fifo vs arena must agree on all of them (the
  // layouts are bit-equivalent by construction — any divergence is FATAL).
  // The arena-over-fifo throughput ratio is the same-host queue-layout
  // speedup perfbench.py --exp27 gates; it needs no parallelism, so the
  // gate arms even on a single-core host.
  if (*scaling_grid) {
    util::print_banner(
        "EXP-27  million-processor scale: arena queues, batched drains, "
        "stealing");
    util::print_note("expect: identical consumed/max-load counters for the "
                     "fifo and arena rows of each point (deterministic and "
                     "worker-count invariant), with the arena layout ahead "
                     "on tasks/sec; the steal rows drain dry shards from "
                     "the canonically-ordered hottest victims");
    util::Table gt({"n", "workers", "layout", "tasks/sec", "arena/fifo",
                    "consumed", "max load", "steals", "arena MB"});
    struct GridSig {
      bool set = false;
      std::uint64_t consumed = 0;
      std::uint64_t max_load = 0;
      std::uint64_t total_load = 0;
    };
    const char* layout_names[3] = {"fifo", "arena", "arena_steal"};
    for (std::uint64_t gn : util::Cli::parse_u64_list(*grid_n_csv)) {
      GridSig nosteal_sig;  // shared by fifo + arena at every worker count
      GridSig steal_sig;    // shared by arena_steal at every worker count
      for (std::uint64_t gw : util::Cli::parse_u64_list(*grid_workers_csv)) {
        double fifo_rate = 0;
        for (int layout = 0; layout < 3; ++layout) {
          auto model = make_model("burst", gn);
          rt::RtConfig cfg;
          cfg.n = gn;
          cfg.seed = *seed;
          cfg.workers = static_cast<unsigned>(gw);
          cfg.deterministic = true;
          cfg.policy = rt::RtPolicy::kNone;
          cfg.spin_work = 0;  // measure the queue path, not the payload
          cfg.arena = layout >= 1;
          cfg.steal.enabled = layout == 2;
          cfg.trace = rec.trace();
          rec.trace()->set_time_base(trace_window);
          trace_window += *grid_steps + 16;
          rt::Runtime run(cfg, model.get());
          run.run(*grid_steps);

          const double secs = std::max(run.wall_seconds(), 1e-9);
          const double rate =
              static_cast<double>(run.total_consumed()) / secs;
          if (layout == 0) fifo_rate = rate;
          const double ratio = fifo_rate > 0 ? rate / fifo_rate : 0.0;
          const double arena_mb =
              static_cast<double>(run.arena_bytes_used()) / (1024.0 * 1024.0);

          gt.row()
              .cell(gn)
              .cell(gw)
              .cell(layout_names[layout])
              .cell(rate, 0)
              .cell(layout == 0 ? 1.0 : ratio, 3)
              .cell(run.total_consumed())
              .cell(run.running_max_load())
              .cell(run.steal_events())
              .cell(arena_mb, 1);

          const std::string prefix = "exp27.n" + std::to_string(gn) + ".w" +
                                     std::to_string(gw) + "." +
                                     layout_names[layout] + ".";
          rec.metrics().gauge(prefix + "tasks_per_sec") = rate;
          rec.metrics().gauge(prefix + "wall_seconds") = secs;
          rec.metrics().gauge(prefix + "consumed") =
              static_cast<double>(run.total_consumed());
          rec.metrics().gauge(prefix + "max_load") =
              static_cast<double>(run.running_max_load());
          if (layout >= 1) {
            rec.metrics().gauge(prefix + "arena_bytes") =
                static_cast<double>(run.arena_bytes_used());
          }
          if (layout == 2) {
            rec.metrics().gauge(prefix + "steal_events") =
                static_cast<double>(run.steal_events());
            rec.metrics().gauge(prefix + "stolen_tasks") =
                static_cast<double>(run.stolen_tasks());
          }
          if (layout == 1) {
            rec.metrics().gauge("exp27.n" + std::to_string(gn) + ".w" +
                                std::to_string(gw) + ".arena_over_fifo") =
                ratio;
          }

          if (!run.conservation_holds()) {
            std::fprintf(stderr,
                         "FATAL: scaling-grid conservation violated "
                         "(n=%llu w=%llu %s)\n",
                         static_cast<unsigned long long>(gn),
                         static_cast<unsigned long long>(gw),
                         layout_names[layout]);
            return 1;
          }
          GridSig& sig = layout == 2 ? steal_sig : nosteal_sig;
          if (!sig.set) {
            sig.set = true;
            sig.consumed = run.total_consumed();
            sig.max_load = run.running_max_load();
            sig.total_load = run.total_load();
          } else if (sig.consumed != run.total_consumed() ||
                     sig.max_load != run.running_max_load() ||
                     sig.total_load != run.total_load()) {
            std::fprintf(stderr,
                         "FATAL: scaling-grid layouts diverged "
                         "(n=%llu w=%llu %s)\n",
                         static_cast<unsigned long long>(gn),
                         static_cast<unsigned long long>(gw),
                         layout_names[layout]);
            return 1;
          }
        }
      }
    }
    clb::bench::emit(gt, "rt_5");
  }

  if (*telemetry) {
    util::print_banner("telemetry  per-worker utilization / stall / imbalance");
    clb::bench::emit(ttable, "rt_telemetry");
    if (!telemetry_jsonl->empty()) {
      if (!obs::write_text_file(*telemetry_jsonl, telemetry_timeline)) {
        std::fprintf(stderr, "FATAL: cannot write %s\n",
                     telemetry_jsonl->c_str());
        return 1;
      }
      rec.manifest().add_output("rt_telemetry_snapshots", *telemetry_jsonl);
      util::print_note("snapshot timeline: " + *telemetry_jsonl +
                       " (feed to tools/rt_report.py --snapshots)");
    }
  }
  rec.metrics().gauge("rt.telemetry_compiled") =
      obs::kTelemetryCompiled ? 1.0 : 0.0;
  rec.metrics().gauge("rt.hardware_concurrency") =
      static_cast<double>(std::thread::hardware_concurrency());
  util::print_note("speedup is relative to the first worker count of the "
                   "same (model, policy) row group; on an oversubscribed "
                   "host expect flat or sub-linear curves.");
  rec.finish();
  return 0;
}
