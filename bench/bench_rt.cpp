// EXP-21 (extension) — the concurrent runtime: scaling and latency.
//
// rt::Runtime executes the paper's protocol on real worker threads
// (shared-nothing shards, lock-free MPSC mailboxes, barrier-separated
// supersteps). This bench free-runs it — no determinism sequencing, spin
// work attached to every consumed task so "consume" costs real CPU — and
// sweeps worker counts for Threshold vs NoBalancing vs AllInAir under the
// Single and Burst models. Measured: wall-clock throughput (tasks/sec),
// speedup over the 1-worker run of the same configuration, task sojourn
// latency (p50/p95/p99 in microseconds), and mailbox contention exposure
// (fraction of messages pushed into another worker's mailbox).
//
// tools/perfbench.py drives this binary once per worker count and distils
// the emitted metrics into BENCH_rt.json; run it directly for tables.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"

namespace {

using namespace clb;

std::unique_ptr<sim::LoadModel> make_model(const std::string& name,
                                           std::uint64_t n) {
  if (name == "burst") {
    models::BurstConfig bc;
    bc.period = 64;
    bc.burst_len = 16;
    bc.hot_fraction = 0.05;
    bc.burst_rate = 8;
    return std::make_unique<models::BurstModel>(bc, n);
  }
  return std::make_unique<models::SingleModel>(0.45, 0.1);
}

rt::RtPolicy policy_of(const std::string& name) {
  if (name == "none") return rt::RtPolicy::kNone;
  if (name == "all-in-air") return rt::RtPolicy::kAllInAir;
  return rt::RtPolicy::kThreshold;
}

/// Worker counts to sweep: powers of two up to hardware_concurrency, plus
/// the concurrency itself when it is not a power of two. Always includes 2
/// so mailbox traffic is exercised even on a single-core host.
std::vector<unsigned> auto_workers() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  std::vector<unsigned> w;
  for (unsigned k = 1; k <= hw; k *= 2) w.push_back(k);
  if (w.back() != hw) w.push_back(hw);
  if (w.size() < 2) w.push_back(2);
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("EXP-21: concurrent runtime scaling (threads + mailboxes)");
  const auto n = cli.flag_u64("n", 1 << 12, "logical processors");
  const auto steps = cli.flag_u64("steps", 2000, "runtime steps per run");
  const auto seed = cli.flag_u64("seed", 1, "seed");
  const auto spin = cli.flag_u64(
      "spin", 64, "spin-work iterations per consumed task (free-running)");
  const auto workers_csv = cli.flag_str(
      "workers", "", "comma-separated worker counts (default: 1,2,4,..,hw)");
  const auto models_csv =
      cli.flag_str("models", "single,burst", "models: single,burst");
  const auto policies_csv = cli.flag_str(
      "policies", "threshold,none,all-in-air",
      "policies: threshold,none,all-in-air");
  bench::SmokeFlag smoke(cli);
  bench::ObsFlags obs_flags(cli);
  cli.parse(argc, argv);
  smoke.apply();
  if (smoke.on()) {
    cli.override_str("workers", "1,2");
    cli.override_str("models", "single");
  }

  obs::Recorder rec(obs_flags.config("bench_rt", argc, argv));
  rec.manifest().set_seed(*seed);
  rec.manifest().set_param("n", *n);
  rec.manifest().set_param("steps", *steps);
  rec.manifest().set_param("spin", *spin);

  std::vector<unsigned> workers;
  if (workers_csv->empty()) {
    workers = auto_workers();
  } else {
    for (std::uint64_t w : util::Cli::parse_u64_list(*workers_csv)) {
      workers.push_back(static_cast<unsigned>(w));
    }
  }

  std::vector<std::string> model_names;
  for (const std::string& m : {std::string("single"), std::string("burst")}) {
    if (models_csv->find(m) != std::string::npos) model_names.push_back(m);
  }
  std::vector<std::string> policy_names;
  for (const std::string& p :
       {std::string("threshold"), std::string("none"),
        std::string("all-in-air")}) {
    if (policies_csv->find(p) != std::string::npos) policy_names.push_back(p);
  }

  util::print_banner("EXP-21  runtime scaling: threads, mailboxes, supersteps");
  util::print_note("expect: tasks/sec grows with workers until the core "
                   "count; threshold holds p99 sojourn near the unbalanced "
                   "p50 at a few percent remote-message overhead");

  util::Table table({"model", "policy", "workers", "tasks/sec", "speedup",
                     "p50 us", "p95 us", "p99 us", "remote %", "msgs/task"});

  for (const std::string& model_name : model_names) {
    for (const std::string& policy_name : policy_names) {
      double base_rate = 0;
      for (unsigned w : workers) {
        auto model = make_model(model_name, *n);
        rt::RtConfig cfg;
        cfg.n = *n;
        cfg.seed = *seed;
        cfg.workers = w;
        cfg.deterministic = false;  // free-running: arrival order wins
        cfg.policy = policy_of(policy_name);
        if (cfg.policy == rt::RtPolicy::kThreshold) {
          cfg.params = core::PhaseParams::from_n(*n);
        }
        cfg.spin_work = static_cast<std::uint32_t>(*spin);
        cfg.time_sojourn = true;
        rt::Runtime run(cfg, model.get());
        run.run(*steps);

        const double secs = std::max(run.wall_seconds(), 1e-9);
        const double rate =
            static_cast<double>(run.total_consumed()) / secs;
        if (w == workers.front()) base_rate = rate;
        const stats::IntHistogram soj = run.sojourn_us();
        const std::uint64_t remote = run.remote_pushes();
        const std::uint64_t self = run.self_pushes();
        const double remote_pct =
            remote + self > 0
                ? 100.0 * static_cast<double>(remote) /
                      static_cast<double>(remote + self)
                : 0.0;
        const double msgs_per_task =
            run.total_generated() > 0
                ? static_cast<double>(run.messages().protocol_total()) /
                      static_cast<double>(run.total_generated())
                : 0.0;

        table.row()
            .cell(model_name)
            .cell(policy_name)
            .cell(static_cast<std::uint64_t>(w))
            .cell(rate, 0)
            .cell(base_rate > 0 ? rate / base_rate : 1.0, 2)
            .cell(soj.quantile(0.50))
            .cell(soj.quantile(0.95))
            .cell(soj.quantile(0.99))
            .cell(remote_pct, 2)
            .cell(msgs_per_task, 4);

        const std::string prefix = "rt." + model_name + "." + policy_name +
                                   ".w" + std::to_string(w) + ".";
        rec.metrics().gauge(prefix + "tasks_per_sec") = rate;
        rec.metrics().gauge(prefix + "wall_seconds") = secs;
        rec.metrics().gauge(prefix + "sojourn_p50_us") =
            static_cast<double>(soj.quantile(0.50));
        rec.metrics().gauge(prefix + "sojourn_p95_us") =
            static_cast<double>(soj.quantile(0.95));
        rec.metrics().gauge(prefix + "sojourn_p99_us") =
            static_cast<double>(soj.quantile(0.99));
        rec.metrics().gauge(prefix + "remote_push_fraction") =
            remote_pct / 100.0;
        rec.metrics().gauge(prefix + "msgs_per_task") = msgs_per_task;
        rec.metrics().gauge(prefix + "consumed") =
            static_cast<double>(run.total_consumed());

        if (!run.conservation_holds()) {
          std::fprintf(stderr, "FATAL: conservation violated (%s/%s/w%u)\n",
                       model_name.c_str(), policy_name.c_str(), w);
          return 1;
        }
      }
    }
  }
  clb::bench::emit(table, "rt_1");

  rec.metrics().gauge("rt.hardware_concurrency") =
      static_cast<double>(std::thread::hardware_concurrency());
  util::print_note("speedup is relative to the first worker count of the "
                   "same (model, policy) row group; on an oversubscribed "
                   "host expect flat or sub-linear curves.");
  rec.finish();
  return 0;
}
