// Shared helpers for the experiment harnesses (bench_*).
//
// Every bench prints: a banner naming the paper statement it reproduces, the
// realised parameters, a results table with measured and predicted columns,
// and a SHAPE note saying what to look for. Defaults are sized to finish in
// seconds on one laptop core; --n/--steps/--trials scale up.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "clb.hpp"

namespace clb::bench {

/// Prints the table to stdout and, when the CLB_BENCH_CSV_DIR environment
/// variable names a directory, also writes `<dir>/<id>.csv` so plots and
/// regression dashboards can consume the raw numbers.
inline void emit(const util::Table& table, const std::string& id) {
  std::fputs(table.str().c_str(), stdout);
  if (const char* dir = std::getenv("CLB_BENCH_CSV_DIR")) {
    const std::string path = std::string(dir) + "/" + id + ".csv";
    if (FILE* f = std::fopen(path.c_str(), "w")) {
      std::fputs(table.csv().c_str(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    }
  }
}

/// Standard sweep of machine sizes (powers of two).
inline std::vector<std::uint64_t> default_sizes() {
  return {1u << 10, 1u << 12, 1u << 14, 1u << 16};
}

/// Formats "mean +- ci" from an OnlineMoments.
inline std::string mean_ci(const stats::OnlineMoments& m, int precision = 2) {
  return util::format_double(m.mean(), precision) + " +- " +
         util::format_double(m.ci95_half_width(), precision);
}

/// Runs `fn(seed)` for `trials` distinct seeds derived from `base_seed`.
template <typename Fn>
void for_trials(std::uint64_t trials, std::uint64_t base_seed, Fn&& fn) {
  for (std::uint64_t t = 0; t < trials; ++t) {
    fn(rng::hash_combine(base_seed, t + 1));
  }
}

/// The shared --smoke flag: a seconds-long sanity configuration so ctest
/// can exercise every harness end-to-end on each build (label bench-smoke).
/// Declare before cli.parse(), call apply() right after it; apply() shrinks
/// whichever standard workload knobs the bench declared (explicit flags on
/// the same command line are overridden — smoke means smoke).
class SmokeFlag {
 public:
  explicit SmokeFlag(util::Cli& cli)
      : cli_(&cli),
        on_(cli.flag_bool("smoke", false,
                          "shrink the workload to a sanity run")) {}

  void apply() const {
    if (!*on_) return;
    cli_->override_u64("steps", 96);
    cli_->override_u64("max-steps", 256);
    cli_->override_u64("trials", 1);
    cli_->override_u64("n", 512);
    cli_->override_u64("checkpoints", 2);
    cli_->override_str("sizes", "256,1024");
  }

  [[nodiscard]] bool on() const { return *on_; }

 private:
  util::Cli* cli_;
  const bool* on_;
};

/// Standard observability flags for bench binaries. Declare before
/// cli.parse(), then build the run's Recorder from the parsed values:
///
///   util::Cli cli("...");
///   bench::ObsFlags obs_flags(cli);
///   cli.parse(argc, argv);
///   obs::Recorder rec(obs_flags.config("bench_foo", argc, argv));
///   ... pass rec.trace() into runs, fill rec.metrics()/rec.manifest() ...
///   rec.finish();
class ObsFlags {
 public:
  explicit ObsFlags(util::Cli& cli)
      : trace_(cli.flag_str("trace", "",
                            "write Chrome trace JSON here (JSONL twin lands "
                            "next to it)")),
        metrics_(cli.flag_str("metrics-json", "",
                              "write metrics registry JSON here")),
        manifest_(cli.flag_str("manifest", "",
                               "write a replayable run manifest JSON here")),
        sample_(cli.flag_u64("trace-sample", 1,
                             "keep every k-th high-frequency trace event")) {}

  [[nodiscard]] obs::RecorderConfig config(std::string tool, int argc,
                                           char** argv) const {
    obs::RecorderConfig rc;
    rc.tool = std::move(tool);
    rc.command.assign(argv, argv + argc);
    rc.trace_path = *trace_;
    rc.metrics_path = *metrics_;
    rc.manifest_path = *manifest_;
    rc.trace_sample = static_cast<std::uint32_t>(*sample_);
    return rc;
  }

 private:
  const std::string* trace_;
  const std::string* metrics_;
  const std::string* manifest_;
  const std::uint64_t* sample_;
};

/// Builds a Single-model engine + threshold balancer pair for one run.
struct ThresholdRun {
  models::SingleModel model;
  core::ThresholdBalancer balancer;
  sim::Engine engine;

  ThresholdRun(std::uint64_t n, std::uint64_t seed, double p = 0.4,
               double eps = 0.1, core::Fractions fractions = {},
               bool track_sojourn = false, obs::TraceSink* trace = nullptr,
               obs::MetricsRegistry* metrics = nullptr)
      : model(p, eps),
        balancer({.params = core::PhaseParams::from_n(n, fractions),
                  .trace = trace,
                  .metrics = metrics}),
        engine({.n = n,
                .seed = seed,
                .track_sojourn = track_sojourn,
                .trace = trace},
               &model, &balancer) {}
};

}  // namespace clb::bench
