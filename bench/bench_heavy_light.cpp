// EXP-05 — Lemma 4: at the beginning of a phase there are at most
// O(n / (log n)^{log log n}) heavy processors and at least n(1 - 16c/T)
// light processors, w.h.p.
//
// Measures phase-start heavy/light counts across n. At machine sizes the
// asymptotic heavy bound underflows to ~0; the reproduction target is the
// *shape*: the heavy fraction falls rapidly with n while the light fraction
// stays near the 1 - 16c/T floor.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace clb;
  util::Cli cli("EXP-05: heavy/light processor counts (Lemma 4)");
  const auto steps = cli.flag_u64("steps", 3000, "steps per run");
  const auto seed = cli.flag_u64("seed", 1, "seed");
  bench::SmokeFlag smoke(cli);
  cli.parse(argc, argv);
  smoke.apply();

  util::print_banner("EXP-05  heavy and light processors per phase (Lemma 4)");
  util::print_note("expect: heavy fraction small and shrinking with n; light "
                   "fraction >= the Lemma 4 floor");

  util::Table table({"n", "T", "heavy/phase (mean/max)", "heavy frac",
                     "light frac (mean)", "lemma4 light floor",
                     "unbal P[load>=T/2]*n"});
  analysis::SingleModelChain chain(0.4, 0.1);
  for (const std::uint64_t n : bench::default_sizes()) {
    bench::ThresholdRun run(n, *seed);
    run.engine.run(*steps);
    const auto& agg = run.balancer.aggregate();
    const auto& params = run.balancer.params();
    const double load_per_proc = chain.expected_load();
    table.row()
        .cell(n)
        .cell(params.T)
        .cell(bench::mean_ci(agg.heavy_per_phase, 2) + " / " +
              util::format_double(agg.heavy_per_phase.max(), 0))
        .cell(agg.heavy_per_phase.mean() / static_cast<double>(n), 6)
        .cell(agg.light_per_phase.mean() / static_cast<double>(n), 3)
        .cell(std::max(0.0, analysis::light_fraction_bound(n, load_per_proc)),
              3)
        .cell(chain.tail_at_least(params.heavy_threshold) *
                  static_cast<double>(n),
              2);
  }
  clb::bench::emit(table, "heavy_light_1");
  util::print_note("the last column is the *unbalanced* expectation "
                   "n*rho^{T/2}; Lemma 4 says the balanced system has no "
                   "more heavies than that order (the proof couples the two "
                   "processes), which the heavy/phase column confirms.");
  util::print_note("with T clamped at t_min = 16 the 1 - 16c/T light floor "
                   "is vacuous (16c > T) and the heavy *fraction* is flat in "
                   "n; the asymptotic shrink needs T to grow with n — shown "
                   "below with the clamp lifted.");

  util::print_banner("EXP-05b  heavy fraction with T unclamped (t_min = 4)");
  util::Table growth({"n", "T", "heavy frac measured",
                      "unbal predicted rho^{T/2} shape"});
  for (const std::uint64_t n : bench::default_sizes()) {
    bench::ThresholdRun run(n, *seed, 0.4, 0.1,
                            core::Fractions{.t_min = 4});
    run.engine.run(*steps);
    const auto& params = run.balancer.params();
    growth.row()
        .cell(n)
        .cell(params.T)
        .cell(run.balancer.aggregate().heavy_per_phase.mean() /
                  static_cast<double>(n),
              6)
        .cell(chain.tail_at_least(params.heavy_threshold), 6);
  }
  clb::bench::emit(growth, "heavy_light_2");
  util::print_note("as T grows with n, the heavy fraction falls like "
                   "rho^{T/2} — the mechanism behind Lemma 4's "
                   "n/(log n)^{log log n} bound.");
  return 0;
}
