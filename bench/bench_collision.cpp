// EXP-01 — Lemma 1 / Figure 1: the (n, beta, a, b, c)-collision protocol.
//
// Reproduces: with (a, b, c) = (5, 2, 1) the protocol terminates with a
// valid assignment within log log n / log 3 + 3 rounds (<= 5 log log n
// steps), every processor answers at most c queries, every request gets
// >= b accepts, and the total message count is O(a * m) = O(n).
//
//   ./bench_collision [--trials 10] [--beta 0.01]
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace clb;
  util::Cli cli("EXP-01: collision protocol (Lemma 1, Figure 1)");
  const auto trials = cli.flag_u64("trials", 10, "independent trials");
  const auto beta = cli.flag_f64("beta", 0.01, "request fraction m/n");
  const auto seed = cli.flag_u64("seed", 1, "base seed");
  bench::ObsFlags obs_flags(cli);
  bench::SmokeFlag smoke(cli);
  cli.parse(argc, argv);
  smoke.apply();

  obs::Recorder rec(obs_flags.config("bench_collision", argc, argv));
  rec.manifest().set_seed(*seed);
  rec.manifest().set_param("trials", *trials);
  rec.manifest().set_param("beta", *beta);
  // Trace timeline: each game.run() gets its own window of `max_rounds`
  // microseconds so trials do not overlap in the viewer.
  std::uint64_t trace_window = 0;

  util::print_banner(
      "EXP-01  collision protocol: rounds, validity, messages (Lemma 1)");
  util::print_note("expect: rounds <= bound, valid = trials, accepts/proc <= c,"
                   " queries/request ~ a = 5");

  util::Table table({"n", "requests", "round_bound", "rounds(max)",
                     "mf rounds", "valid", "steps(5*rounds)", "step_bound",
                     "queries/request", "mf q/req", "max_accepts/proc"});
  for (const std::uint64_t n : bench::default_sizes()) {
    collision::CollisionGame game(n, {.a = 5, .b = 2, .c = 1,
                                      .trace = rec.trace()});
    const auto m = static_cast<std::uint64_t>(
        *beta * static_cast<double>(n));
    std::vector<std::uint32_t> requesters;
    for (std::uint64_t i = 0; i < m; ++i) {
      requesters.push_back(static_cast<std::uint32_t>(i * (n / m)));
    }
    std::uint64_t valid = 0, worst_rounds = 0;
    std::uint32_t worst_accepts = 0;
    stats::OnlineMoments queries_per_request;
    bench::for_trials(*trials, *seed, [&](std::uint64_t s) {
      game.set_trace_time(trace_window);
      trace_window += 64;
      const auto out = game.run(requesters, s);
      valid += out.valid ? 1 : 0;
      rec.metrics().counter("exp01.queries") += out.query_messages;
      rec.metrics().counter("exp01.accepts") += out.accept_messages;
      rec.metrics().histogram("exp01.rounds").add(out.rounds_used);
      worst_rounds = std::max<std::uint64_t>(worst_rounds, out.rounds_used);
      queries_per_request.add(static_cast<double>(out.query_messages) /
                              static_cast<double>(m));
      for (const auto& [proc, count] : out.per_proc_accepts) {
        worst_accepts = std::max(worst_accepts, count);
      }
    });
    const auto mf = analysis::collision_meanfield(
        n, m, 5, 2, 16, 0.5 / static_cast<double>(m));
    table.row()
        .cell(n)
        .cell(m)
        .cell(static_cast<std::uint64_t>(game.paper_round_bound()))
        .cell(worst_rounds)
        .cell(static_cast<std::uint64_t>(mf.rounds_to_finish))
        .cell(std::to_string(valid) + "/" + std::to_string(*trials))
        .cell(5 * worst_rounds)
        .cell(analysis::collision_step_bound_lemma1(n), 1)
        .cell(queries_per_request.mean(), 2)
        .cell(mf.queries_per_request, 2)
        .cell(static_cast<std::uint64_t>(worst_accepts));
  }
  clb::bench::emit(table, "collision_1");

  // Second table: (a, b, c) sweep at fixed n, showing the c(a-b) >= 2
  // applicability frontier the paper states.
  util::print_banner("EXP-01b  (a,b,c) sweep at n = 2^16, beta = 0.01");
  util::Table sweep({"a", "b", "c", "conditions", "valid", "rounds(max)",
                     "queries/request"});
  const std::uint64_t n = 1 << 16;
  const auto m = static_cast<std::uint64_t>(*beta * static_cast<double>(n));
  std::vector<std::uint32_t> requesters;
  for (std::uint64_t i = 0; i < m; ++i) {
    requesters.push_back(static_cast<std::uint32_t>(i * (n / m)));
  }
  for (const auto& [a, b, c] :
       std::initializer_list<std::tuple<std::uint32_t, std::uint32_t,
                                        std::uint32_t>>{
           {5, 2, 1}, {4, 2, 1}, {6, 3, 1}, {5, 2, 2}, {3, 2, 1}, {4, 1, 1}}) {
    collision::CollisionGame game(n, {.a = a, .b = b, .c = c,
                                      .max_rounds = 24});
    std::uint64_t valid = 0, worst_rounds = 0;
    stats::OnlineMoments qpr;
    bench::for_trials(*trials, *seed, [&](std::uint64_t s) {
      const auto out = game.run(requesters, s);
      valid += out.valid ? 1 : 0;
      worst_rounds = std::max<std::uint64_t>(worst_rounds, out.rounds_used);
      qpr.add(static_cast<double>(out.query_messages) /
              static_cast<double>(m));
    });
    sweep.row()
        .cell(static_cast<std::uint64_t>(a))
        .cell(static_cast<std::uint64_t>(b))
        .cell(static_cast<std::uint64_t>(c))
        .cell(game.conditions_hold(*beta) ? "hold" : "violated")
        .cell(std::to_string(valid) + "/" + std::to_string(*trials))
        .cell(worst_rounds)
        .cell(qpr.mean(), 2);
  }
  clb::bench::emit(sweep, "collision_2");
  rec.finish();
  return 0;
}
