// EXP-20 (extension) — Concluding Remarks: "we know that the latter
// [unbalanced system] recovers from worst case scenarios, this also holds
// for our system."
//
// Worst case realised: a spike of S tasks pre-loaded onto one processor
// (plus ongoing Single generation everywhere). Measures the number of steps
// until the maximum load first drops to 2T, per policy. The threshold
// algorithm drains the spike at ~transfer_amount per phase; the unbalanced
// system only at the consumption surplus eps per step.
#include <memory>

#include "common.hpp"

namespace {

// Pre-loads `spike` tasks onto processor 0, then runs until recovered.
std::uint64_t steps_to_recover(clb::sim::Engine& eng, std::uint64_t target,
                               std::uint64_t max_steps) {
  for (std::uint64_t s = 0; s < max_steps; ++s) {
    eng.step_once();
    if (eng.step_max_load() <= target) return s + 1;
  }
  return max_steps;  // did not recover within budget
}

}  // namespace

int main(int argc, char** argv) {
  using namespace clb;
  util::Cli cli("EXP-20: recovery from a worst-case spike");
  const auto n = cli.flag_u64("n", 1 << 12, "processors");
  const auto max_steps = cli.flag_u64("max-steps", 30000, "give-up budget");
  const auto seed = cli.flag_u64("seed", 1, "seed");
  const auto link_latency =
      cli.flag_u64("link-latency", 2, "dist column: base message latency");
  const auto link_jitter = cli.flag_u64(
      "link-jitter", 0, "dist column: per-link extra-delay span");
  const auto link_bw = cli.flag_u64(
      "link-bw", 0, "dist column: per-link bandwidth cap (0 = uncapped)");
  const auto link_loss = cli.flag_u64(
      "link-loss", 0, "dist column: loss numerator over 65536 (0 = lossless)");
  bench::SmokeFlag smoke(cli);
  cli.parse(argc, argv);
  smoke.apply();

  // The dist column recovers over the full net:: fabric, so the spike drain
  // can be re-measured on degraded links (lossy, shaped, jittery).
  net::NetConfig link;
  link.jitter = static_cast<std::uint32_t>(*link_jitter);
  link.bandwidth = static_cast<std::uint32_t>(*link_bw);
  link.loss_per_64k = static_cast<std::uint32_t>(*link_loss);

  const auto params = core::PhaseParams::from_n(*n);
  util::print_banner("EXP-20  steps until max load <= 2T after a spike");
  util::print_note("expect: threshold drains ~transfer/phase (linear, "
                   "fast); unbalanced drains at eps/step (~10x slower); "
                   "all-in-air recovers instantly at full message cost");

  const std::string dist_col =
      "dist(lat " + std::to_string(*link_latency) +
      (link.shaped() ? ", shaped" : "") + ")";
  util::Table table({"spike", "threshold", dist_col, "rsu91",
                     "all-in-air", "none", "eps-drain prediction"});
  for (const std::uint64_t spike : {256u, 1024u, 4096u}) {
    std::vector<std::uint64_t> cols;
    for (int policy = 0; policy < 5; ++policy) {
      models::SingleModel model(0.4, 0.1);
      std::unique_ptr<sim::Balancer> balancer;
      switch (policy) {
        case 0:
          balancer = std::make_unique<core::ThresholdBalancer>(
              core::ThresholdBalancerConfig{.params = params});
          break;
        case 1:
          balancer = std::make_unique<dist::DistThresholdBalancer>(
              dist::DistConfig{.params = params,
                               .latency =
                                   static_cast<std::uint32_t>(*link_latency),
                               .link = link});
          break;
        case 2:
          balancer = std::make_unique<baselines::RsuBalancer>();
          break;
        case 3:
          balancer = std::make_unique<baselines::AllInAirBalancer>(
              baselines::AllInAirConfig{});
          break;
        default:
          break;  // none
      }
      sim::Engine eng({.n = *n, .seed = *seed}, &model, balancer.get());
      for (std::uint64_t i = 0; i < spike; ++i) {
        eng.deposit(0, sim::Task{0, 0, 1});
      }
      cols.push_back(steps_to_recover(eng, 2 * params.T, *max_steps));
    }
    table.row()
        .cell(spike)
        .cell(cols[0])
        .cell(cols[1])
        .cell(cols[2])
        .cell(cols[3])
        .cell(cols[4])
        .cell(static_cast<double>(spike) / 0.1, 0);
  }
  clb::bench::emit(table, "recovery_1");
  util::print_note("threshold recovery is linear in the spike at slope "
                   "~phase_len/transfer_amount; 'none' tracks the eps-drain "
                   "prediction.");
  return 0;
}
