// EXP-20 (extension) — Concluding Remarks: "we know that the latter
// [unbalanced system] recovers from worst case scenarios, this also holds
// for our system."
//
// Worst case realised: a spike of S tasks pre-loaded onto one processor
// (plus ongoing Single generation everywhere). Measures the number of steps
// until the maximum load first drops to 2T, per policy. The threshold
// algorithm drains the spike at ~transfer_amount per phase; the unbalanced
// system only at the consumption surplus eps per step.
//
// --recovery-time (second section, ROADMAP open edge) — recovery from a
// CRASH burst instead of a deposit spike: a block of adjacent processors is
// pre-loaded and then crashed simultaneously; core::LivenessSchedule
// re-homes every orphaned queue onto the nearest alive processor scanning
// upward, so the whole burst piles onto one survivor. Measured, for each
// liveness-aware policy (local-search, stale-sq, unbalanced control): the
// steady-state max-load band held before the crash, the re-homing peak, and
// the number of steps until step_max_load first re-enters that band.
// Deterministic; tools/statcheck.py --recovery gates the recovery.* gauges.
#include <algorithm>
#include <memory>
#include <string>

#include "common.hpp"

namespace {

using namespace clb;

// Pre-loads `spike` tasks onto processor 0, then runs until recovered.
std::uint64_t steps_to_recover(sim::Engine& eng, std::uint64_t target,
                               std::uint64_t max_steps) {
  for (std::uint64_t s = 0; s < max_steps; ++s) {
    eng.step_once();
    if (eng.step_max_load() <= target) return s + 1;
  }
  return max_steps;  // did not recover within budget
}

std::unique_ptr<sim::Balancer> liveness_policy(
    const std::string& name, std::uint64_t n,
    const core::LivenessSchedule* sched) {
  if (name == "local-search") {
    return std::make_unique<baselines::LocalSearchBalancer>(
        baselines::LocalSearchConfig{}, n, sched);
  }
  if (name == "stale-sq") {
    return std::make_unique<baselines::StaleShortestQueue>(
        baselines::StaleSqConfig{}, n, sched);
  }
  return nullptr;  // unbalanced control
}

}  // namespace

int main(int argc, char** argv) {
  using namespace clb;
  util::Cli cli("EXP-20: recovery from a worst-case spike");
  const auto n = cli.flag_u64("n", 1 << 12, "processors");
  const auto max_steps = cli.flag_u64("max-steps", 30000, "give-up budget");
  const auto seed = cli.flag_u64("seed", 1, "seed");
  const auto link_latency =
      cli.flag_u64("link-latency", 2, "dist column: base message latency");
  const auto link_jitter = cli.flag_u64(
      "link-jitter", 0, "dist column: per-link extra-delay span");
  const auto link_bw = cli.flag_u64(
      "link-bw", 0, "dist column: per-link bandwidth cap (0 = uncapped)");
  const auto link_loss = cli.flag_u64(
      "link-loss", 0, "dist column: loss numerator over 65536 (0 = lossless)");
  const auto recovery_time = cli.flag_bool(
      "recovery-time", false,
      "crash-burst recovery: crash a pre-loaded block of processors, report "
      "steps until max load re-enters the pre-crash band (statcheck "
      "--recovery gates the recovery.* gauges)");
  const auto crash_procs = cli.flag_u64(
      "crash-procs", 8, "processors crashed simultaneously in the burst");
  const auto crash_step =
      cli.flag_u64("crash-step", 64, "step the burst fires at");
  const auto crash_down =
      cli.flag_u64("crash-down", 128, "steps each crashed processor is dead");
  const auto crash_load = cli.flag_u64(
      "crash-load", 48,
      "tasks pre-loaded onto each crashing processor just before the burst");
  bench::SmokeFlag smoke(cli);
  bench::ObsFlags obs_flags(cli);
  cli.parse(argc, argv);
  smoke.apply();
  if (smoke.on()) {
    cli.override_u64("crash-step", 32);
    cli.override_u64("crash-down", 64);
  }

  obs::Recorder rec(obs_flags.config("bench_recovery", argc, argv));
  rec.manifest().set_seed(*seed);
  rec.manifest().set_param("n", *n);

  // The dist column recovers over the full net:: fabric, so the spike drain
  // can be re-measured on degraded links (lossy, shaped, jittery).
  net::NetConfig link;
  link.jitter = static_cast<std::uint32_t>(*link_jitter);
  link.bandwidth = static_cast<std::uint32_t>(*link_bw);
  link.loss_per_64k = static_cast<std::uint32_t>(*link_loss);

  const auto params = core::PhaseParams::from_n(*n);

  // ---- --recovery-time: crash-burst recovery (ROADMAP open edge) --------
  // A standalone mode: the deposit-spike table below measures a different
  // scenario on different policies and would dominate the fixture's budget.
  if (*recovery_time) {
    const std::uint64_t k = std::min(*crash_procs, *n - 1);
    util::print_banner(
        "EXP-20b  crash burst: steps until max load re-enters the band");
    util::print_note("expect: the burst re-homes every pre-loaded queue onto "
                     "one survivor (peak ~= crash-procs * crash-load); "
                     "local-search drains it in a few steps, the unbalanced "
                     "control only at the consumption surplus");

    util::Table rt_table({"policy", "band", "peak", "recovery steps",
                          "rehomed tasks", "rehomed events"});
    for (const std::string& policy :
         {std::string("local-search"), std::string("stale-sq"),
          std::string("none")}) {
      // The burst: k adjacent processors die at crash-step, all at once.
      std::vector<core::CrashEvent> events;
      for (std::uint64_t p = 0; p < k; ++p) {
        events.push_back({*crash_step, static_cast<std::uint32_t>(p),
                          *crash_down});
      }
      core::LivenessSchedule sched(*n, std::move(events));

      models::SingleModel model(0.4, 0.1);
      auto balancer = liveness_policy(policy, *n, &sched);
      sim::Engine eng({.n = *n, .seed = *seed, .liveness = &sched},
                      &model, balancer.get());

      // Pre-crash: run to the burst, recording the steady-state band as the
      // max of step_max_load over the second half of the warmup (the first
      // half washes out the empty start).
      std::uint64_t band = 0;
      for (std::uint64_t s = 0; s < *crash_step; ++s) {
        eng.step_once();
        if (s >= *crash_step / 2) band = std::max(band, eng.step_max_load());
      }
      // Load the victims moments before they die: these queues exist only
      // to be orphaned, so the burst's re-homing is the spike.
      for (std::uint64_t p = 0; p < k; ++p) {
        for (std::uint64_t i = 0; i < *crash_load; ++i) {
          eng.deposit(p, sim::Task{static_cast<std::uint32_t>(*crash_step),
                                   static_cast<std::uint32_t>(p), 1});
        }
      }
      // The crash step itself: re-homing happens at its start.
      eng.step_once();
      const std::uint64_t peak = eng.step_max_load();
      const std::uint64_t steps =
          peak <= band ? 0 : steps_to_recover(eng, band, *max_steps);

      rt_table.row()
          .cell(policy)
          .cell(band)
          .cell(peak)
          .cell(steps)
          .cell(eng.rehomed_tasks())
          .cell(eng.rehomed_events());

      const std::string prefix = "recovery." + policy + ".";
      auto& m = rec.metrics();
      m.gauge(prefix + "band") = static_cast<double>(band);
      m.gauge(prefix + "peak") = static_cast<double>(peak);
      m.gauge(prefix + "steps") = static_cast<double>(steps);
      m.gauge(prefix + "rehomed_tasks") =
          static_cast<double>(eng.rehomed_tasks());
      m.gauge(prefix + "rehomed_events") =
          static_cast<double>(eng.rehomed_events());
      if (!eng.conservation_holds()) {
        std::fprintf(stderr, "FATAL: conservation violated (%s)\n",
                     policy.c_str());
        return 1;
      }
    }
    clb::bench::emit(rt_table, "recovery_2");
    util::print_note("gauges: recovery.<policy>.{band, peak, steps, "
                     "rehomed_tasks, rehomed_events}; tools/statcheck.py "
                     "--recovery gates them");
    rec.finish();
    return 0;
  }

  util::print_banner("EXP-20  steps until max load <= 2T after a spike");
  util::print_note("expect: threshold drains ~transfer/phase (linear, "
                   "fast); unbalanced drains at eps/step (~10x slower); "
                   "all-in-air recovers instantly at full message cost");

  const std::string dist_col =
      "dist(lat " + std::to_string(*link_latency) +
      (link.shaped() ? ", shaped" : "") + ")";
  util::Table table({"spike", "threshold", dist_col, "rsu91",
                     "all-in-air", "none", "eps-drain prediction"});
  for (const std::uint64_t spike : {256u, 1024u, 4096u}) {
    std::vector<std::uint64_t> cols;
    for (int policy = 0; policy < 5; ++policy) {
      models::SingleModel model(0.4, 0.1);
      std::unique_ptr<sim::Balancer> balancer;
      switch (policy) {
        case 0:
          balancer = std::make_unique<core::ThresholdBalancer>(
              core::ThresholdBalancerConfig{.params = params});
          break;
        case 1:
          balancer = std::make_unique<dist::DistThresholdBalancer>(
              dist::DistConfig{.params = params,
                               .latency =
                                   static_cast<std::uint32_t>(*link_latency),
                               .link = link});
          break;
        case 2:
          balancer = std::make_unique<baselines::RsuBalancer>();
          break;
        case 3:
          balancer = std::make_unique<baselines::AllInAirBalancer>(
              baselines::AllInAirConfig{});
          break;
        default:
          break;  // none
      }
      sim::Engine eng({.n = *n, .seed = *seed}, &model, balancer.get());
      for (std::uint64_t i = 0; i < spike; ++i) {
        eng.deposit(0, sim::Task{0, 0, 1});
      }
      cols.push_back(steps_to_recover(eng, 2 * params.T, *max_steps));
    }
    table.row()
        .cell(spike)
        .cell(cols[0])
        .cell(cols[1])
        .cell(cols[2])
        .cell(cols[3])
        .cell(cols[4])
        .cell(static_cast<double>(spike) / 0.1, 0);
  }
  clb::bench::emit(table, "recovery_1");
  util::print_note("threshold recovery is linear in the spike at slope "
                   "~phase_len/transfer_amount; 'none' tracks the eps-drain "
                   "prediction.");

  rec.finish();
  return 0;
}
