// EXP-06 — Lemmas 5 and 6: each heavy processor finds a light balancing
// partner within the phase, w.h.p., building query trees of depth
// o(log log n).
//
// Measures: match rate, tree levels actually used, collision rounds per
// phase, and the phase step budget (the paper charges 5 log log n steps per
// level, total <= (1/16)(log log n)^2).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace clb;
  util::Cli cli("EXP-06: partner search success and tree depth (Lemmas 5-6)");
  const auto steps = cli.flag_u64("steps", 3000, "steps per run");
  const auto trials = cli.flag_u64("trials", 2, "independent trials");
  const auto seed = cli.flag_u64("seed", 1, "base seed");
  bench::SmokeFlag smoke(cli);
  cli.parse(argc, argv);
  smoke.apply();

  util::print_banner("EXP-06  every heavy finds a light (Lemmas 5-6)");
  util::print_note("expect: match rate ~1.0, unmatched ~0, levels used well "
                   "below the depth budget, rounds <= Lemma 1 bound per level");

  util::Table table({"n", "depth budget", "levels used (mean/max)",
                     "match rate", "unmatched total", "heavy total",
                     "rounds/level", "lemma1 round bound"});
  for (const std::uint64_t n : bench::default_sizes()) {
    const auto params = core::PhaseParams::from_n(n);
    stats::OnlineMoments levels, match_rate;
    std::uint64_t unmatched = 0, heavy_total = 0, max_levels = 0;
    bench::for_trials(*trials, *seed, [&](std::uint64_t s) {
      bench::ThresholdRun run(n, s);
      run.engine.run(*steps);
      const auto& agg = run.balancer.aggregate();
      if (agg.phases_with_heavy > 0) {
        levels.add(agg.levels_per_phase.mean());
        match_rate.add(agg.match_rate.mean());
      }
      max_levels = std::max(max_levels, agg.max_levels_used);
      unmatched += agg.total_unmatched;
      heavy_total += static_cast<std::uint64_t>(
          agg.heavy_per_phase.mean() * static_cast<double>(agg.phases));
    });
    // Rounds per level measured directly from one instrumented run.
    bench::ThresholdRun probe(n, rng::hash_combine(*seed, 777));
    std::uint64_t rounds_sum = 0, levels_sum = 0;
    for (std::uint64_t s = 0; s < *steps; ++s) {
      probe.engine.step_once();
      const auto& ps = probe.balancer.last_phase();
      if (ps.start_step == s && ps.levels_used > 0) {
        rounds_sum += ps.collision_rounds;
        levels_sum += ps.levels_used;
      }
    }
    table.row()
        .cell(n)
        .cell(static_cast<std::uint64_t>(params.tree_depth))
        .cell(util::format_double(levels.mean(), 2) + " / " +
              std::to_string(max_levels))
        .cell(match_rate.mean(), 5)
        .cell(unmatched)
        .cell(heavy_total)
        .cell(levels_sum ? static_cast<double>(rounds_sum) /
                               static_cast<double>(levels_sum)
                         : 0.0,
              2)
        .cell(analysis::collision_round_bound(n, 5, 2, 1), 2);
  }
  clb::bench::emit(table, "partner_search_1");

  // Lemma 5 directly: probability that a batch of k random processors
  // contains no light one, as a function of k (the paper needs
  // k = Theta(log n / log log n) for w.h.p. success).
  util::print_banner("EXP-06b  P[no light among k random procs] (Lemma 5)");
  const std::uint64_t n = 1 << 14;
  bench::ThresholdRun run(n, *seed);
  run.engine.run(*steps);
  const auto light_threshold = run.balancer.params().light_threshold;
  std::uint64_t lights = 0;
  for (std::uint64_t p = 0; p < n; ++p) {
    if (run.engine.load(p) <= light_threshold) ++lights;
  }
  const double p_not_light =
      1.0 - static_cast<double>(lights) / static_cast<double>(n);
  util::Table lemma5({"k asked", "P[all non-light] = (1-frac)^k"});
  for (const std::uint64_t k : {1, 2, 4, 6, 8, 12, 16}) {
    lemma5.row()
        .cell(k)
        .cell(std::pow(p_not_light, static_cast<double>(k)), 6);
  }
  std::printf("  light fraction at n=%llu: %.3f\n",
              static_cast<unsigned long long>(n),
              static_cast<double>(lights) / static_cast<double>(n));
  clb::bench::emit(lemma5, "partner_search_2");
  return 0;
}
