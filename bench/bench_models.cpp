// EXP-10 — §1.2 model suite: under the Geometric(k) model the maximum load
// is bounded by k (log log n)^2 and under Multi(c, pmf) by c (log log n)^2,
// with the same algorithm (thresholds scaled accordingly).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace clb;
  util::Cli cli("EXP-10: Geometric and Multi generation models");
  const auto n = cli.flag_u64("n", 1 << 13, "processors");
  const auto steps = cli.flag_u64("steps", 2500, "steps per run");
  const auto trials = cli.flag_u64("trials", 2, "independent trials");
  const auto seed = cli.flag_u64("seed", 1, "base seed");
  bench::SmokeFlag smoke(cli);
  cli.parse(argc, argv);
  smoke.apply();

  util::print_banner("EXP-10  max load under Geometric(k) / Multi(c)");
  util::print_note("expect: max load tracks the scaled bound k*T0 (resp. "
                   "c*T0) and scales ~linearly in k / c");

  util::Table table({"model", "scale", "T (realised)",
                     "balanced max (mean/worst)", "unbalanced max (worst)",
                     "bound scale*T0", "mean load", "predicted mean"});

  auto run_model = [&](const std::string& label, double scale,
                       auto make_model) {
    const core::Fractions f{.scale = scale};
    const auto params = core::PhaseParams::from_n(*n, f);
    stats::OnlineMoments bal, mean_load;
    std::uint64_t bal_worst = 0, unbal_worst = 0;
    bench::for_trials(*trials, *seed, [&](std::uint64_t s) {
      auto bm = make_model();
      core::ThresholdBalancer balancer({.params = params});
      sim::Engine be({.n = *n, .seed = s}, &bm, &balancer);
      be.run(*steps);
      bal.add(static_cast<double>(be.running_max_load()));
      bal_worst = std::max(bal_worst, be.running_max_load());
      mean_load.add(static_cast<double>(be.total_load()) /
                    static_cast<double>(*n));

      auto um = make_model();
      sim::Engine ue({.n = *n, .seed = s}, &um, nullptr);
      ue.run(*steps);
      unbal_worst = std::max(unbal_worst, ue.running_max_load());
    });
    const double t0 = static_cast<double>(
        core::PhaseParams::from_n(*n).T);
    table.row()
        .cell(label)
        .cell(scale, 1)
        .cell(params.T)
        .cell(bench::mean_ci(bal, 1) + " / " + std::to_string(bal_worst))
        .cell(unbal_worst)
        .cell(scale * t0, 1)
        .cell(mean_load.mean(), 2)
        .cell(make_model().expected_load_per_processor(), 2);
  };

  // k = 1 is degenerate: at most one task per step, matched by the unit
  // consumption, so load never accumulates — start at k = 2.
  for (const std::uint32_t k : {2u, 4u, 6u, 8u}) {
    run_model("geometric(k=" + std::to_string(k) + ")",
              static_cast<double>(k),
              [k] { return models::GeometricModel(k); });
  }
  // Multi models with growing support c and mean < 1 (c = 2 is degenerate
  // for the same reason as k = 1).
  run_model("multi(c=3)", 3.0, [] {
    return models::MultiModel({0.5, 0.3, 0.2});
  });
  run_model("multi(c=4)", 4.0, [] {
    return models::MultiModel({0.55, 0.2, 0.15, 0.1});
  });
  run_model("multi(c=5)", 5.0, [] {
    return models::MultiModel({0.6, 0.15, 0.1, 0.1, 0.05});
  });
  clb::bench::emit(table, "models_1");
  util::print_note("balanced max tracks (and stays under) the scaled k*T0 / "
                   "c*T0 bound and grows ~linearly in the scale, while the "
                   "unbalanced worst case overshoots it increasingly.");
  util::print_note("'predicted mean' is the stationary batch-chain mean "
                   "(analysis/batch_chain.hpp); the k = 8 row is near-"
                   "critical (E[G] = 0.996) and needs ~1/(1-rho)^2 steps to "
                   "mix, so short runs sit below it.");
  return 0;
}
