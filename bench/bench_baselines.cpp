// EXP-13 — head-to-head comparison against every related scheme the paper
// discusses: none, RSU91, LM93, Lauer95, random seeking (MD96), all-in-air
// (Concluding Remarks), and the supermarket model (Mit96) as a
// continuous-time reference. Metrics: max load, mean load, messages per
// consumed task, locality, p99 sojourn.
#include <memory>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace clb;
  util::Cli cli("EXP-13: baseline comparison under the Single model");
  const auto n = cli.flag_u64("n", 1 << 13, "processors");
  const auto steps = cli.flag_u64("steps", 4000, "steps per run");
  const auto seed = cli.flag_u64("seed", 1, "seed");
  bench::ObsFlags obs_flags(cli);
  bench::SmokeFlag smoke(cli);
  cli.parse(argc, argv);
  smoke.apply();

  obs::Recorder rec(obs_flags.config("bench_baselines", argc, argv));
  rec.manifest().set_seed(*seed);
  rec.manifest().set_param("n", *n);
  rec.manifest().set_param("steps", *steps);

  util::print_banner("EXP-13  all policies under Single(0.4, 0.1)");
  util::print_note("expect: threshold ~ all-in-air on max load, but with "
                   "orders-of-magnitude fewer messages and ~1.0 locality; "
                   "none drifts to Theta(log n)");

  util::Table table({"policy", "max load", "mean load", "msgs/task",
                     "moved/task", "locality", "p99 sojourn"});

  // Per-policy gauges (exp13.<slug>.*) feed tools/statcheck.py's
  // relational bands: threshold must beat all-in-air on msgs/task and
  // locality at comparable max load (EXPERIMENTS.md, EXP-13).
  auto report = [&](const std::string& name, const std::string& slug,
                    sim::Engine& eng) {
    const auto tasks = eng.total_generated();
    const std::string prefix = "exp13." + slug + ".";
    rec.metrics().gauge(prefix + "max_load") =
        static_cast<double>(eng.running_max_load());
    rec.metrics().gauge(prefix + "msgs_per_task") =
        static_cast<double>(eng.messages().protocol_total()) /
        static_cast<double>(tasks);
    rec.metrics().gauge(prefix + "moved_per_task") =
        static_cast<double>(eng.messages().tasks_moved) /
        static_cast<double>(tasks);
    rec.metrics().gauge(prefix + "locality") = eng.locality_fraction();
    table.row()
        .cell(name)
        .cell(eng.running_max_load())
        .cell(static_cast<double>(eng.total_load()) /
                  static_cast<double>(*n),
              2)
        .cell(static_cast<double>(eng.messages().protocol_total()) /
                  static_cast<double>(tasks),
              4)
        .cell(static_cast<double>(eng.messages().tasks_moved) /
                  static_cast<double>(tasks),
              4)
        .cell(eng.locality_fraction(), 3)
        .cell(eng.sojourn_histogram().quantile(0.99));
  };

  auto run_with = [&](const std::string& name, const std::string& slug,
                      std::unique_ptr<sim::Balancer> balancer) {
    models::SingleModel model(0.4, 0.1);
    sim::Engine eng({.n = *n, .seed = *seed, .track_sojourn = true}, &model,
                    balancer.get());
    eng.run(*steps);
    report(name, slug, eng);
  };

  run_with("none", "none", nullptr);
  run_with("threshold (ours)", "threshold",
           std::make_unique<core::ThresholdBalancer>(
               core::ThresholdBalancerConfig{
                   .params = core::PhaseParams::from_n(*n)}));
  run_with("rsu91", "rsu91", std::make_unique<baselines::RsuBalancer>());
  run_with("lm93", "lm93", std::make_unique<baselines::LmBalancer>());
  run_with("lauer95", "lauer95", std::make_unique<baselines::LauerBalancer>());
  run_with("lauer95(est. avg)", "lauer95_est_avg",
           std::make_unique<baselines::LauerBalancer>(
               baselines::LauerConfig{.estimate_average = true}));
  run_with("random-seeking", "random_seeking",
           std::make_unique<baselines::RandomSeekingBalancer>());
  run_with("all-in-air", "all_in_air",
           std::make_unique<baselines::AllInAirBalancer>());
  run_with("all-in-air(2-choice)", "all_in_air_2choice",
           std::make_unique<baselines::AllInAirBalancer>(
               baselines::AllInAirConfig{.two_choice = true}));
  clb::bench::emit(table, "baselines_1");

  // Supermarket reference (different machine model: continuous time,
  // sequential placement) for the max-queue shape only.
  queueing::SupermarketConfig sc;
  sc.n = *n;
  sc.lambda = 0.8;
  sc.d = 2;
  sc.horizon = 60.0;
  sc.warmup = 20.0;
  sc.seed = *seed;
  const auto sm = run_supermarket(sc);
  std::printf("\n  supermarket reference (Mit96, lambda=0.8, d=2): max queue "
              "%llu, mean sojourn %.2f, %.1f msgs/customer\n",
              static_cast<unsigned long long>(sm.max_queue), sm.mean_sojourn,
              static_cast<double>(sm.messages) /
                  static_cast<double>(sm.arrivals));
  rec.finish();
  return 0;
}
