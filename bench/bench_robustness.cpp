// EXP-18 (extension) — robustness sweep: the unmodified threshold algorithm
// across every generation model in the library, including the two beyond
// the paper (Poisson batches, On/Off correlated demand). The paper claims
// the analysis carries over to "any model with overall expected system load
// O(n) in which steady-state statements can be made"; this table is the
// empirical version of that sentence.
#include <memory>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace clb;
  util::Cli cli("EXP-18: threshold balancing across all generation models");
  const auto n = cli.flag_u64("n", 1 << 13, "processors");
  const auto steps = cli.flag_u64("steps", 3000, "steps per run");
  const auto seed = cli.flag_u64("seed", 1, "seed");
  bench::SmokeFlag smoke(cli);
  cli.parse(argc, argv);
  smoke.apply();

  util::print_banner("EXP-18  one algorithm, every model");
  util::print_note("expect: balanced max ~ O(T) for every model; unbalanced "
                   "max and tail vary wildly");

  util::Table table({"model", "T", "bal max", "unbal max", "bal mean load",
                     "match rate", "msgs/task", "locality"});

  auto run_model = [&](double scale,
                       auto&& make_model) {
    const auto params =
        core::PhaseParams::from_n(*n, core::Fractions{.scale = scale});
    auto bm = make_model();
    core::ThresholdBalancer balancer({.params = params});
    sim::Engine bal({.n = *n, .seed = *seed}, bm.get(), &balancer);
    bal.run(*steps);

    auto um = make_model();
    sim::Engine unbal({.n = *n, .seed = *seed}, um.get(), nullptr);
    unbal.run(*steps);

    const auto& agg = balancer.aggregate();
    table.row()
        .cell(bm->name())
        .cell(params.T)
        .cell(bal.running_max_load())
        .cell(unbal.running_max_load())
        .cell(static_cast<double>(bal.total_load()) /
                  static_cast<double>(*n),
              2)
        .cell(agg.phases_with_heavy ? agg.match_rate.mean() : 1.0, 4)
        .cell(static_cast<double>(bal.messages().protocol_total()) /
                  static_cast<double>(bal.total_generated()),
              4)
        .cell(bal.locality_fraction(), 3);
  };

  run_model(1.0, [&] {
    return std::unique_ptr<sim::LoadModel>(
        new models::SingleModel(0.4, 0.1));
  });
  run_model(4.0, [&] {
    return std::unique_ptr<sim::LoadModel>(new models::GeometricModel(4));
  });
  run_model(3.0, [&] {
    return std::unique_ptr<sim::LoadModel>(
        new models::MultiModel({0.5, 0.3, 0.2}));
  });
  run_model(2.0, [&] {
    return std::unique_ptr<sim::LoadModel>(
        new models::PoissonBatchModel(0.7));
  });
  run_model(2.0, [&] {
    return std::unique_ptr<sim::LoadModel>(
        new models::OnOffModel(models::OnOffConfig{}, *n));
  });
  run_model(2.0, [&] {
    models::BurstConfig bc;
    bc.p_base = 0.25;
    bc.p_consume = 0.6;
    bc.period = 128;
    bc.burst_len = 8;
    bc.hot_fraction = 0.03;
    bc.burst_rate = 4;
    return std::unique_ptr<sim::LoadModel>(new models::BurstModel(bc, *n));
  });
  clb::bench::emit(table, "robustness_1");
  return 0;
}
