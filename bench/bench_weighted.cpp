// EXP-17 (extension) — weighted tasks: [BMS97]'s weighted balls carried to
// the continuous setting. Tasks carry weights with uniformity
// Delta = W_avg / W_max; the balancer classifies and transfers by weight.
//
// Reproduced shape (mirroring BMS97's weighted-balls result): the
// weight-based balancer bounds the maximum *weighted* load near
// W_avg * (log log n)^2 across uniformity levels, while the count-based
// variant degrades as weights skew.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace clb;
  util::Cli cli("EXP-17: weighted tasks (BMS97 extension)");
  const auto n = cli.flag_u64("n", 1 << 13, "processors");
  const auto steps = cli.flag_u64("steps", 2500, "steps per run");
  const auto seed = cli.flag_u64("seed", 1, "seed");
  bench::SmokeFlag smoke(cli);
  cli.parse(argc, argv);
  smoke.apply();

  util::print_banner("EXP-17  weighted continuous balancing");
  util::print_note("expect: weight-based max weighted load ~ flat across "
                   "uniformity; count-based degrades as Delta shrinks");

  struct WeightMix {
    const char* label;
    std::vector<double> pmf;
  };
  const WeightMix mixes[] = {
      {"unit (Delta=1.00)", {1.0}},
      {"mild  (1..3)", {0.6, 0.3, 0.1}},
      {"skew  (1 | 8)", {0.85, 0, 0, 0, 0, 0, 0, 0.15}},
      {"heavy (1 | 16)", {0.9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                          0.1}},
  };

  util::Table table({"weights", "Delta", "W_avg", "T (W-scaled)",
                     "max W-load (by weight)", "max W-load (by count)",
                     "moved tasks/action (w)", "msgs/task (w)"});
  for (const auto& mix : mixes) {
    auto make_model = [&] {
      return models::WeightedSingleModel(0.4, 0.1, mix.pmf);
    };
    auto probe = make_model();
    const auto params = core::PhaseParams::from_n(
        *n, core::Fractions{.scale = probe.mean_weight()});

    auto m1 = make_model();
    core::ThresholdBalancer by_weight(
        {.params = params, .weight_based = true});
    sim::Engine e1({.n = *n, .seed = *seed}, &m1, &by_weight);
    e1.run(*steps);

    auto m2 = make_model();
    core::ThresholdBalancer by_count(
        {.params = params, .weight_based = false});
    sim::Engine e2({.n = *n, .seed = *seed}, &m2, &by_count);
    e2.run(*steps);

    table.row()
        .cell(mix.label)
        .cell(probe.uniformity(), 2)
        .cell(probe.mean_weight(), 2)
        .cell(params.T)
        .cell(e1.running_max_weight())
        .cell(e2.running_max_weight())
        .cell(e1.messages().transfers
                  ? static_cast<double>(e1.messages().tasks_moved) /
                        static_cast<double>(e1.messages().transfers)
                  : 0.0,
              2)
        .cell(static_cast<double>(e1.messages().protocol_total()) /
                  static_cast<double>(e1.total_generated()),
              4);
  }
  clb::bench::emit(table, "weighted_1");
  util::print_note("count-based classification misses processors whose few "
                   "tasks are huge; weight-based classification is the "
                   "continuous analogue of BMS97's weighted-ball protocol.");
  return 0;
}
