// EXP-07 — Lemma 7: the expected number of balancing requests sent for a
// heavy processor within a phase is constant (independent of n).
//
// Measures the per-root request distribution (one collision-game request =
// the paper's "two balancing requests") across machine sizes, against the
// geometric-series bound from the proof.
//
// With --metrics-json the per-size means land in gauges
// exp07.n<k>.req_per_root_mean for tools/statcheck.py's flatness band.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace clb;
  util::Cli cli("EXP-07: expected requests per heavy processor (Lemma 7)");
  const auto steps = cli.flag_u64("steps", 3000, "steps per run");
  const auto trials = cli.flag_u64("trials", 2, "independent trials");
  const auto seed = cli.flag_u64("seed", 1, "base seed");
  const auto sizes_csv = cli.flag_str(
      "sizes", "1024,4096,16384,65536", "comma-separated machine sizes n");
  bench::ObsFlags obs_flags(cli);
  bench::SmokeFlag smoke(cli);
  cli.parse(argc, argv);
  smoke.apply();

  obs::Recorder rec(obs_flags.config("bench_expected_requests", argc, argv));
  rec.manifest().set_seed(*seed);
  rec.manifest().set_param("steps", *steps);
  rec.manifest().set_param("sizes", *sizes_csv);
  const std::vector<std::uint64_t> sizes = util::Cli::parse_u64_list(*sizes_csv);

  util::print_banner("EXP-07  requests per heavy root (Lemma 7)");
  util::print_note("expect: mean requests/root is a small constant, flat in "
                   "n; distribution mass concentrated at 1");

  util::Table table({"n", "mean req/root", "p50", "p99", "max",
                     "paper bound (x2 for request pairs)"});
  for (const std::uint64_t n : sizes) {
    stats::IntHistogram per_root;
    bench::for_trials(*trials, *seed, [&](std::uint64_t s) {
      bench::ThresholdRun run(n, s);
      run.engine.run(*steps);
      per_root.merge(run.balancer.requests_per_root());
    });
    if (per_root.total() == 0) {
      table.row().cell(n).cell("no heavy processors seen").cell("-").cell(
          "-").cell("-").cell("-");
      continue;
    }
    rec.metrics().gauge("exp07.n" + std::to_string(n) +
                        ".req_per_root_mean") = per_root.mean();
    table.row()
        .cell(n)
        .cell(per_root.mean(), 3)
        .cell(per_root.quantile(0.5))
        .cell(per_root.quantile(0.99))
        .cell(per_root.max_value())
        .cell(analysis::expected_requests_bound(n) / 2.0, 1);
  }
  clb::bench::emit(table, "expected_requests_1");

  // Distribution detail at the largest swept size.
  const std::uint64_t n = sizes.back();
  stats::IntHistogram detail;
  bench::for_trials(*trials, *seed, [&](std::uint64_t s) {
    bench::ThresholdRun run(n, s);
    run.engine.run(*steps);
    detail.merge(run.balancer.requests_per_root());
  });
  util::print_banner("EXP-07b  request-count distribution at n = " +
                     std::to_string(n));
  util::Table dist({"requests sent by root", "fraction of heavy roots"});
  for (std::uint64_t v = 0; v <= detail.max_value() && v <= 16; ++v) {
    if (detail.count_at(v) == 0) continue;
    dist.row().cell(v).cell(
        static_cast<double>(detail.count_at(v)) /
            static_cast<double>(detail.total()),
        5);
  }
  clb::bench::emit(dist, "expected_requests_2");
  util::print_note("geometric decay by level = the active-path argument in "
                   "the Lemma 7 proof.");
  rec.finish();
  return 0;
}
