// EXP-15 — google-benchmark microbenchmarks: engine step throughput, RNG
// throughput, collision-round cost, FIFO queue ops. These guard the
// simulator's performance envelope (everything else runs on top of it).
//
// Accepts the standard observability flags (--trace=, --metrics-json=,
// --manifest=, --trace-sample=) in addition to google-benchmark's own;
// they are stripped from argv before benchmark::Initialize sees them.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "clb.hpp"

namespace {

using namespace clb;

void BM_PhiloxU64(benchmark::State& state) {
  rng::CounterRng rng(1, 2, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_PhiloxU64);

void BM_XoshiroU64(benchmark::State& state) {
  rng::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_XoshiroU64);

void BM_BoundedDraw(benchmark::State& state) {
  rng::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::bounded(rng, 12345));
  }
}
BENCHMARK(BM_BoundedDraw);

void BM_FifoPushPop(benchmark::State& state) {
  sim::FifoQueue q;
  std::uint32_t i = 0;
  for (auto _ : state) {
    q.push_back(sim::Task{i++, 0});
    if (q.size() > 64) benchmark::DoNotOptimize(q.pop_front());
  }
}
BENCHMARK(BM_FifoPushPop);

void BM_EngineStepUnbalanced(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  models::SingleModel model(0.4, 0.1);
  sim::Engine eng({.n = n, .seed = 1}, &model, nullptr);
  eng.run(100);  // reach steady state
  for (auto _ : state) {
    eng.step_once();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EngineStepUnbalanced)->Arg(1 << 10)->Arg(1 << 14);

void BM_EngineStepBalanced(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  models::SingleModel model(0.4, 0.1);
  core::ThresholdBalancer balancer({.params = core::PhaseParams::from_n(n)});
  sim::Engine eng({.n = n, .seed = 1}, &model, &balancer);
  eng.run(100);
  for (auto _ : state) {
    eng.step_once();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EngineStepBalanced)->Arg(1 << 10)->Arg(1 << 14);

void BM_CollisionGame(benchmark::State& state) {
  const std::uint64_t n = 1 << 14;
  const auto m = static_cast<std::uint64_t>(state.range(0));
  collision::CollisionGame game(n, {.a = 5, .b = 2, .c = 1});
  std::vector<std::uint32_t> requesters;
  for (std::uint64_t i = 0; i < m; ++i) {
    requesters.push_back(static_cast<std::uint32_t>(i * (n / m)));
  }
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(game.run(requesters, ++seed));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m));
}
BENCHMARK(BM_CollisionGame)->Arg(64)->Arg(512);

void BM_EngineStepTraced(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  obs::TraceSink sink({.enabled = true, .sample_every = 1});
  models::SingleModel model(0.4, 0.1);
  core::ThresholdBalancer balancer(
      {.params = core::PhaseParams::from_n(n), .trace = &sink});
  sim::Engine eng({.n = n, .seed = 1, .trace = &sink}, &model, &balancer);
  eng.run(100);
  for (auto _ : state) {
    eng.step_once();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EngineStepTraced)->Arg(1 << 10)->Arg(1 << 14);

void BM_TraceEmit(benchmark::State& state) {
  obs::TraceSink sink({.enabled = true, .sample_every = 1});
  [[maybe_unused]] std::uint64_t step = 0;
  for (auto _ : state) {
    CLB_TRACE_EVENT(&sink, obs::EventKind::kTransfer, ++step, 1, 2, 3);
    if (sink.event_count() > (1u << 20)) sink.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmit);

void BM_TraceEmitDisabledSink(benchmark::State& state) {
  [[maybe_unused]] obs::TraceSink sink({.enabled = false});
  [[maybe_unused]] std::uint64_t step = 0;
  for (auto _ : state) {
    CLB_TRACE_EVENT(&sink, obs::EventKind::kTransfer, ++step, 1, 2, 3);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmitDisabledSink);

void BM_TraceEmitNullSink(benchmark::State& state) {
  [[maybe_unused]] obs::TraceSink* sink = nullptr;
  std::uint64_t step = 0;
  for (auto _ : state) {
    CLB_TRACE_EVENT(sink, obs::EventKind::kTransfer, ++step, 1, 2, 3);
    benchmark::DoNotOptimize(step);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmitNullSink);

void BM_SupermarketHorizon(benchmark::State& state) {
  queueing::SupermarketConfig cfg;
  cfg.n = 1024;
  cfg.lambda = 0.9;
  cfg.horizon = 10.0;
  cfg.warmup = 2.0;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    cfg.seed = ++seed;
    benchmark::DoNotOptimize(queueing::run_supermarket(cfg));
  }
}
BENCHMARK(BM_SupermarketHorizon);

// Pulls `--<name>=<v>` or `--<name> <v>` out of argv; returns true and sets
// `value` when found. google-benchmark rejects flags it does not know, so the
// obs flags must be removed before benchmark::Initialize runs.
bool take_flag(std::vector<char*>& argv, const char* name, std::string* value) {
  const std::string prefix = std::string("--") + name + "=";
  const std::string bare = std::string("--") + name;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      *value = argv[i] + prefix.size();
      argv.erase(argv.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
    if (bare == argv[i] && i + 1 < argv.size()) {
      *value = argv[i + 1];
      argv.erase(argv.begin() + static_cast<std::ptrdiff_t>(i),
                 argv.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  obs::RecorderConfig rc;
  rc.tool = "bench_micro";
  rc.command.assign(argv, argv + argc);

  std::vector<char*> args(argv, argv + argc);
  std::string value;
  if (take_flag(args, "trace", &value)) rc.trace_path = value;
  if (take_flag(args, "metrics-json", &value)) rc.metrics_path = value;
  if (take_flag(args, "manifest", &value)) rc.manifest_path = value;
  if (take_flag(args, "trace-sample", &value)) {
    rc.trace_sample = static_cast<std::uint32_t>(std::stoul(value));
  }

  obs::Recorder rec(rc);
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (rec.active()) {
    // A short instrumented run so the requested trace/metrics files have
    // representative content (the microbenchmarks above discard theirs).
    constexpr std::uint64_t kN = 1 << 12;
    models::SingleModel model(0.4, 0.1);
    core::ThresholdBalancer balancer({.params = core::PhaseParams::from_n(kN),
                                      .trace = rec.trace(),
                                      .metrics = &rec.metrics()});
    sim::Engine eng({.n = kN, .seed = 1, .trace = rec.trace()}, &model,
                    &balancer);
    eng.run(512);
    obs::snapshot_engine(rec.metrics(), eng, "micro.");
    rec.manifest().set_seed(1);
    rec.manifest().set_param("n", kN);
    rec.manifest().set_param("steps", std::uint64_t{512});
  }
  rec.finish();
  return 0;
}
