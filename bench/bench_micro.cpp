// EXP-15 — google-benchmark microbenchmarks: engine step throughput, RNG
// throughput, collision-round cost, FIFO queue ops. These guard the
// simulator's performance envelope (everything else runs on top of it).
#include <benchmark/benchmark.h>

#include "clb.hpp"

namespace {

using namespace clb;

void BM_PhiloxU64(benchmark::State& state) {
  rng::CounterRng rng(1, 2, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_PhiloxU64);

void BM_XoshiroU64(benchmark::State& state) {
  rng::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_XoshiroU64);

void BM_BoundedDraw(benchmark::State& state) {
  rng::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::bounded(rng, 12345));
  }
}
BENCHMARK(BM_BoundedDraw);

void BM_FifoPushPop(benchmark::State& state) {
  sim::FifoQueue q;
  std::uint32_t i = 0;
  for (auto _ : state) {
    q.push_back(sim::Task{i++, 0});
    if (q.size() > 64) benchmark::DoNotOptimize(q.pop_front());
  }
}
BENCHMARK(BM_FifoPushPop);

void BM_EngineStepUnbalanced(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  models::SingleModel model(0.4, 0.1);
  sim::Engine eng({.n = n, .seed = 1}, &model, nullptr);
  eng.run(100);  // reach steady state
  for (auto _ : state) {
    eng.step_once();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EngineStepUnbalanced)->Arg(1 << 10)->Arg(1 << 14);

void BM_EngineStepBalanced(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  models::SingleModel model(0.4, 0.1);
  core::ThresholdBalancer balancer({.params = core::PhaseParams::from_n(n)});
  sim::Engine eng({.n = n, .seed = 1}, &model, &balancer);
  eng.run(100);
  for (auto _ : state) {
    eng.step_once();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EngineStepBalanced)->Arg(1 << 10)->Arg(1 << 14);

void BM_CollisionGame(benchmark::State& state) {
  const std::uint64_t n = 1 << 14;
  const auto m = static_cast<std::uint64_t>(state.range(0));
  collision::CollisionGame game(n, {.a = 5, .b = 2, .c = 1});
  std::vector<std::uint32_t> requesters;
  for (std::uint64_t i = 0; i < m; ++i) {
    requesters.push_back(static_cast<std::uint32_t>(i * (n / m)));
  }
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(game.run(requesters, ++seed));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m));
}
BENCHMARK(BM_CollisionGame)->Arg(64)->Arg(512);

void BM_SupermarketHorizon(benchmark::State& state) {
  queueing::SupermarketConfig cfg;
  cfg.n = 1024;
  cfg.lambda = 0.9;
  cfg.horizon = 10.0;
  cfg.warmup = 2.0;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    cfg.seed = ++seed;
    benchmark::DoNotOptimize(queueing::run_supermarket(cfg));
  }
}
BENCHMARK(BM_SupermarketHorizon);

}  // namespace

BENCHMARK_MAIN();
