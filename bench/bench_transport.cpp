// EXP-26 (extension) — the cross-process transport: what does a real wire
// cost?
//
// The same deterministic lockstep protocol runs on three substrates: the
// in-proc rt::Runtime (threads + mailboxes), transport::ProcessRuntime over
// Unix-domain sockets, and optionally over loopback TCP — same seeds, same
// spike schedule, bit-identical outputs (the harness proves it before
// measuring: a shadow-fabric cross-check convicts any divergence and aborts
// the bench). The sweep then reports, per substrate and shard count,
// wall-clock throughput, task sojourn (p50/p95/p99 us), the slowdown versus
// the in-proc run at the same worker count, and the wire bill: bytes and
// frames per step, barrier count, and barrier round-trip latency — the
// cross-process analogue of the in-proc barrier stall.
//
// Gauges land under exp26.<substrate>.w<k>.*; tools/perfbench.py --exp26
// folds them into the perf report.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "transport/process_runtime.hpp"
#include "transport/shadow.hpp"

namespace {

using namespace clb;

/// Deterministic deposit schedule shared by every substrate: guarantees
/// heavy processors so transfers (and cross-shard frames) actually flow.
struct Spike {
  std::uint64_t step;
  std::uint32_t proc;
  std::uint32_t tasks;
};

std::vector<Spike> spikes_for(std::uint64_t seed, std::uint64_t n) {
  const auto p = [&](std::uint64_t k) {
    return static_cast<std::uint32_t>((seed * 7 + k * 13) % n);
  };
  return {{4, p(0), 40}, {9, p(1), 56}, {17, p(2), 48}};
}

struct Outcome {
  double wall = 0;
  std::uint64_t consumed = 0;
  stats::IntHistogram sojourn_us;
  std::uint64_t running_max = 0;
  obs::WireStats wire;  // zero for in-proc
};

transport::ShardRunConfig shard_cfg(std::uint64_t n, std::uint64_t seed,
                                    std::uint32_t workers, std::uint64_t spin,
                                    const core::PhaseParams& params) {
  transport::ShardRunConfig c;
  c.n = n;
  c.seed = seed;
  c.workers = workers;
  c.deterministic = true;
  c.policy = rt::RtPolicy::kThreshold;
  c.params = params;
  c.spin_work = static_cast<std::uint32_t>(spin);
  c.track_sojourn = true;
  c.time_sojourn = true;
  c.model = transport::ModelSpec::single(0.45, 0.1);
  return c;
}

template <typename Runner>
void drive(Runner& run, std::uint64_t steps, std::uint64_t seed,
           std::uint64_t n) {
  const std::vector<Spike> spikes = spikes_for(seed, n);
  std::uint64_t done = 0;
  for (const Spike& sp : spikes) {
    if (sp.step > done) {
      run.run(sp.step - done);
      done = sp.step;
    }
    for (std::uint32_t i = 0; i < sp.tasks; ++i) {
      run.deposit(sp.proc,
                  sim::Task{static_cast<std::uint32_t>(sp.step), sp.proc, 1});
    }
  }
  run.run(steps - done);
}

Outcome run_inproc(std::uint64_t n, std::uint64_t seed, std::uint64_t steps,
                   unsigned workers, std::uint64_t spin,
                   const core::PhaseParams& params) {
  models::SingleModel model(0.45, 0.1);
  rt::RtConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.workers = workers;
  cfg.deterministic = true;
  cfg.policy = rt::RtPolicy::kThreshold;
  cfg.params = params;
  cfg.spin_work = static_cast<std::uint32_t>(spin);
  cfg.track_sojourn = true;
  cfg.time_sojourn = true;
  rt::Runtime run(cfg, &model);
  drive(run, steps, seed, n);
  Outcome o;
  o.wall = run.wall_seconds();
  o.consumed = run.total_consumed();
  o.sojourn_us = run.sojourn_us();
  o.running_max = run.running_max_load();
  return o;
}

Outcome run_process(std::uint64_t n, std::uint64_t seed, std::uint64_t steps,
                    unsigned workers, std::uint64_t spin,
                    const core::PhaseParams& params, transport::WireKind wire) {
  transport::ProcessRuntime run(
      shard_cfg(n, seed, static_cast<std::uint32_t>(workers), spin, params),
      wire);
  drive(run, steps, seed, n);
  Outcome o;
  o.wall = run.wall_seconds();
  o.consumed = run.total_consumed();
  o.sojourn_us = run.sojourn_us();
  o.running_max = run.running_max_load();
  o.wire = run.wire_stats();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("EXP-26: cross-process transport cost (UDS/TCP vs in-proc)");
  const auto n = cli.flag_u64("n", 1 << 11, "logical processors");
  const auto steps = cli.flag_u64("steps", 512, "lockstep steps per run");
  const auto seed = cli.flag_u64("seed", 1, "seed");
  const auto spin = cli.flag_u64(
      "spin", 64, "spin-work iterations per consumed task");
  const auto workers_csv = cli.flag_str(
      "workers", "2,4", "comma-separated shard counts (processes/threads)");
  const auto transports_csv = cli.flag_str(
      "transports", "inproc,uds",
      "substrates to sweep: inproc,uds,tcp (inproc is the baseline)");
  const auto check_steps = cli.flag_u64(
      "check-steps", 48,
      "steps of the shadow-checked conviction run before measuring");
  bench::SmokeFlag smoke(cli);
  bench::ObsFlags obs_flags(cli);
  cli.parse(argc, argv);
  smoke.apply();
  if (smoke.on()) {
    cli.override_u64("steps", 96);
    cli.override_str("workers", "2");
    cli.override_u64("check-steps", 32);
  }

  obs::Recorder rec(obs_flags.config("bench_transport", argc, argv));
  rec.manifest().set_seed(*seed);
  rec.manifest().set_param("n", *n);
  rec.manifest().set_param("steps", *steps);
  rec.manifest().set_param("spin", *spin);

  std::vector<unsigned> workers;
  for (std::uint64_t w : util::Cli::parse_u64_list(*workers_csv)) {
    workers.push_back(static_cast<unsigned>(w));
  }
  const bool want_inproc = transports_csv->find("inproc") != std::string::npos;
  const bool want_uds = transports_csv->find("uds") != std::string::npos;
  const bool want_tcp = transports_csv->find("tcp") != std::string::npos;

  core::Fractions fr;
  fr.t_min = 64;
  const core::PhaseParams params = core::PhaseParams::from_n(*n, fr);

  util::print_banner("EXP-26  cross-process transport: the price of a wire");
  util::print_note("expect: identical protocol outputs on every substrate "
                   "(shadow-checked below); UDS pays per-superstep barrier "
                   "RTTs and frame serialisation, TCP adds loopback stack "
                   "overhead on top — throughput gap narrows as spin work "
                   "grows");

  // ---- Conviction gate: a wire that corrupts or reorders is disqualified
  // before any timing is read. Small run, full shadow cross-check.
  {
    const std::uint64_t cn = std::min<std::uint64_t>(*n, 256);
    const core::PhaseParams cparams = core::PhaseParams::from_n(cn, fr);
    transport::ProcessRuntime pr(shard_cfg(cn, *seed, 2, 0, cparams),
                                 transport::WireKind::kUds);
    drive(pr, *check_steps, *seed, cn);
    const transport::ShadowReport rep = transport::shadow_check(pr);
    if (!rep.ok) {
      std::fprintf(stderr, "FATAL: shadow divergence: %s\n",
                   rep.divergence.c_str());
      return 1;
    }
    util::print_note("shadow cross-check passed: UDS run is bit-identical "
                     "to the in-memory runtime");
    rec.metrics().gauge("exp26.shadow_ok") = 1.0;
  }

  util::Table table({"substrate", "workers", "tasks/sec", "vs inproc",
                     "p50 us", "p99 us", "max load", "KB/step",
                     "barrier rtt p99 us"});

  for (unsigned w : workers) {
    double inproc_rate = 0;
    const auto emit_row = [&](const std::string& name, const Outcome& o,
                              bool has_wire) {
      const double secs = std::max(o.wall, 1e-9);
      const double rate = static_cast<double>(o.consumed) / secs;
      if (name == "inproc") inproc_rate = rate;
      const double rel = inproc_rate > 0 ? rate / inproc_rate : 1.0;
      const double kb_per_step =
          has_wire ? static_cast<double>(o.wire.bytes_sent) / 1024.0 /
                         static_cast<double>(*steps)
                   : 0.0;
      table.row()
          .cell(name)
          .cell(static_cast<std::uint64_t>(w))
          .cell(rate, 0)
          .cell(rel, 3)
          .cell(o.sojourn_us.quantile(0.50))
          .cell(o.sojourn_us.quantile(0.99))
          .cell(o.running_max)
          .cell(kb_per_step, 1)
          .cell(has_wire
                    ? static_cast<std::uint64_t>(
                          o.wire.barrier_rtt_us.quantile(0.99))
                    : 0);

      const std::string prefix =
          "exp26." + name + ".w" + std::to_string(w) + ".";
      auto& m = rec.metrics();
      m.gauge(prefix + "tasks_per_sec") = rate;
      m.gauge(prefix + "wall_seconds") = secs;
      m.gauge(prefix + "vs_inproc") = rel;
      m.gauge(prefix + "sojourn_p50_us") =
          static_cast<double>(o.sojourn_us.quantile(0.50));
      m.gauge(prefix + "sojourn_p95_us") =
          static_cast<double>(o.sojourn_us.quantile(0.95));
      m.gauge(prefix + "sojourn_p99_us") =
          static_cast<double>(o.sojourn_us.quantile(0.99));
      m.gauge(prefix + "consumed") = static_cast<double>(o.consumed);
      m.gauge(prefix + "running_max_load") =
          static_cast<double>(o.running_max);
      if (has_wire) {
        obs::export_wire_stats(m, prefix, o.wire);
        m.gauge(prefix + "wire.kb_per_step") = kb_per_step;
      }
    };

    if (want_inproc) {
      emit_row("inproc", run_inproc(*n, *seed, *steps, w, *spin, params),
               false);
    }
    if (want_uds) {
      emit_row("uds",
               run_process(*n, *seed, *steps, w, *spin, params,
                           transport::WireKind::kUds),
               true);
    }
    if (want_tcp) {
      emit_row("tcp",
               run_process(*n, *seed, *steps, w, *spin, params,
                           transport::WireKind::kTcp),
               true);
    }
  }

  clb::bench::emit(table, "transport_1");
  util::print_note("gauges: exp26.<substrate>.w<k>.{tasks_per_sec, "
                   "vs_inproc, sojourn_p50/p95/p99_us, wire.*}; "
                   "tools/perfbench.py --exp26 folds them into the report");
  rec.finish();
  return 0;
}
