// EXP-14 — design ablations over the knobs DESIGN.md calls out:
//   (a) threshold scale (T multiplier): load bound vs message trade-off,
//   (b) transfer fraction: too little re-triggers, too much overshoots,
//   (c) tree depth: match rate vs request cost,
//   (d) collision (a, b, c) parameters inside the balancer,
//   (e) prune-satisfied optimisation.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace clb;
  util::Cli cli("EXP-14: design ablations");
  const auto n = cli.flag_u64("n", 1 << 13, "processors");
  const auto steps = cli.flag_u64("steps", 3000, "steps per run");
  const auto seed = cli.flag_u64("seed", 1, "seed");
  bench::SmokeFlag smoke(cli);
  cli.parse(argc, argv);
  smoke.apply();

  auto run_cfg = [&](core::ThresholdBalancerConfig cfg, util::Table& table,
                     const std::string& label) {
    models::SingleModel model(0.4, 0.1);
    core::ThresholdBalancer balancer(cfg);
    sim::Engine eng({.n = *n, .seed = *seed}, &model, &balancer);
    eng.run(*steps);
    const auto& agg = balancer.aggregate();
    table.row()
        .cell(label)
        .cell(eng.running_max_load())
        .cell(static_cast<double>(eng.messages().protocol_total()) /
                  static_cast<double>(eng.total_generated()),
              4)
        .cell(agg.heavy_per_phase.mean(), 2)
        .cell(agg.phases_with_heavy ? agg.match_rate.mean() : 1.0, 4)
        .cell(agg.phases_with_heavy ? agg.requests_per_heavy.mean() : 0.0, 2)
        .cell(eng.locality_fraction(), 3);
  };
  const std::vector<std::string> headers = {
      "config", "max load", "msgs/task", "heavy/phase", "match rate",
      "req/heavy", "locality"};

  util::print_banner("EXP-14a  threshold scale (T multiplier)");
  {
    util::Table t(headers);
    for (const double scale : {0.5, 1.0, 2.0, 4.0}) {
      run_cfg({.params = core::PhaseParams::from_n(
                   *n, core::Fractions{.scale = scale, .t_min = 8})},
              t, "T x " + util::format_double(scale, 1));
    }
    clb::bench::emit(t, "ablation_1");
    util::print_note("smaller T: flatter load, more balancing traffic; "
                     "larger T: cheaper but taller peaks.");
  }

  util::print_banner("EXP-14b  transfer fraction (paper: 1/4 T)");
  {
    util::Table t(headers);
    for (const double frac : {0.0625, 0.125, 0.25, 0.375}) {
      core::Fractions f;
      f.transfer = frac;
      run_cfg({.params = core::PhaseParams::from_n(*n, f)}, t,
              "transfer " + util::format_double(frac, 4) + "T");
    }
    clb::bench::emit(t, "ablation_2");
    util::print_note("tiny transfers leave senders heavy (they re-trigger "
                     "next phase: more messages); the paper's T/4 lands "
                     "receivers safely below threshold.");
  }

  util::print_banner("EXP-14c  query-tree depth");
  {
    util::Table t(headers);
    for (const std::uint32_t depth : {1u, 2u, 3u, 5u}) {
      core::Fractions f;
      f.depth_floor = depth;
      run_cfg({.params = core::PhaseParams::from_n(*n, f)}, t,
              "depth " + std::to_string(depth));
    }
    clb::bench::emit(t, "ablation_3");
    util::print_note("depth 1 misses partners when lights are scarce; depth "
                     ">= 3 saturates the match rate at constant extra cost.");
  }

  util::print_banner("EXP-14d  collision parameters (a, b, c)");
  {
    util::Table t(headers);
    for (const auto& [a, b, c] :
         std::initializer_list<std::tuple<std::uint32_t, std::uint32_t,
                                          std::uint32_t>>{
             {5, 2, 1}, {4, 2, 1}, {6, 2, 1}, {5, 2, 2}, {3, 1, 1}}) {
      run_cfg({.params = core::PhaseParams::from_n(*n),
               .game = {.a = a, .b = b, .c = c, .max_rounds = 0}},
              t,
              "(a,b,c)=(" + std::to_string(a) + "," + std::to_string(b) +
                  "," + std::to_string(c) + ")");
    }
    clb::bench::emit(t, "ablation_4");
  }

  util::print_banner("EXP-14e  prune satisfied trees / one-shot pre-round");
  {
    util::Table t(headers);
    run_cfg({.params = core::PhaseParams::from_n(*n)}, t, "figure-2 verbatim");
    run_cfg({.params = core::PhaseParams::from_n(*n), .prune_satisfied = true},
            t, "+prune satisfied");
    run_cfg({.params = core::PhaseParams::from_n(*n),
             .one_shot_preround = true},
            t, "+one-shot preround (4.3)");
    clb::bench::emit(t, "ablation_5");
  }

  util::print_banner(
      "EXP-14f  phase execution: atomic vs spread, block vs streaming");
  {
    util::Table t(headers);
    auto with_phase_len = [&](std::uint64_t len) {
      auto params = core::PhaseParams::from_n(*n);
      params.phase_len = len;
      return params;
    };
    run_cfg({.params = with_phase_len(1)}, t, "atomic, phase_len=1 (paper)");
    run_cfg({.params = with_phase_len(4),
             .execution = core::PhaseExecution::kSpread},
            t, "spread, phase_len=4");
    run_cfg({.params = with_phase_len(8),
             .execution = core::PhaseExecution::kSpread},
            t, "spread, phase_len=8");
    run_cfg({.params = with_phase_len(1), .streaming_transfers = true}, t,
            "atomic + streaming transfer");
    run_cfg({.params = with_phase_len(8),
             .execution = core::PhaseExecution::kSpread,
             .streaming_transfers = true},
            t, "spread 8 + streaming");
    clb::bench::emit(t, "ablation_6");
    util::print_note("longer phases trade reaction latency for fewer "
                     "classification scans; streaming smooths transfer "
                     "bursts at identical total payload (Concluding "
                     "Remarks).");
  }
  return 0;
}
