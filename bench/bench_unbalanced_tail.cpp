// EXP-02 — Lemma 2: in the unbalanced system, a processor's stationary load
// is geometric, P[load = k] = (1-rho) rho^k, and the total system load is
// O(n) w.h.p.
//
// Prints the empirical load pmf/tail next to the closed-form Markov-chain
// prediction, plus the measured max load vs the Theta(log n) prediction
// (expected_max_load), across machine sizes.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace clb;
  util::Cli cli("EXP-02: unbalanced stationary load (Lemma 2)");
  const auto steps = cli.flag_u64("steps", 3000, "steps (must pass mixing)");
  const auto p = cli.flag_f64("p", 0.4, "generation probability");
  const auto eps = cli.flag_f64("eps", 0.1, "consumption surplus");
  const auto seed = cli.flag_u64("seed", 1, "seed");
  bench::SmokeFlag smoke(cli);
  cli.parse(argc, argv);
  smoke.apply();

  analysis::SingleModelChain chain(*p, *eps);
  util::print_banner("EXP-02  unbalanced system: load distribution (Lemma 2)");
  std::printf("  Single(p=%.2f, eps=%.2f): rho = %.4f, E[load] = %.3f\n",
              *p, *eps, chain.rho(), chain.expected_load());
  util::print_note("expect: empirical tail ~ rho^k; max load ~ log n shape; "
                   "system load ~ E[load] * n");

  // Tail table at the largest default size.
  const std::uint64_t n_tail = 1 << 15;
  models::SingleModel model(*p, *eps);
  sim::Engine eng({.n = n_tail, .seed = *seed}, &model, nullptr);
  eng.run(*steps);
  const auto h = eng.load_histogram();
  util::Table tail({"k", "P[load=k] measured", "predicted (1-rho)rho^k",
                    "P[load>=k] measured", "predicted rho^k"});
  for (std::uint64_t k = 0; k <= 12; ++k) {
    tail.row()
        .cell(k)
        .cell(static_cast<double>(h.count_at(k)) /
                  static_cast<double>(h.total()),
              4)
        .cell(chain.stationary(k), 4)
        .cell(h.tail_at_least(k), 4)
        .cell(chain.tail_at_least(k), 4);
  }
  std::printf("\n  load pmf/tail at n = %llu after %llu steps:\n",
              static_cast<unsigned long long>(n_tail),
              static_cast<unsigned long long>(*steps));
  clb::bench::emit(tail, "unbalanced_tail_1");

  // Max-load and system-load scaling across n (mean over trials so the
  // log n growth reads through single-seed outliers).
  const std::uint64_t kScaleTrials = 3;
  util::Table scale({"n", "max_load (mean over trials)",
                     "predicted E[max] (log n)", "system_load/n",
                     "predicted E[load]"});
  for (const std::uint64_t n : bench::default_sizes()) {
    stats::OnlineMoments max_load, sys_load;
    bench::for_trials(kScaleTrials, rng::hash_combine(*seed, n),
                      [&](std::uint64_t s) {
      models::SingleModel m(*p, *eps);
      sim::Engine e({.n = n, .seed = s}, &m, nullptr);
      e.run(*steps);
      max_load.add(static_cast<double>(e.step_max_load()));
      sys_load.add(static_cast<double>(e.total_load()) /
                   static_cast<double>(n));
    });
    scale.row()
        .cell(n)
        .cell(max_load.mean(), 1)
        .cell(chain.expected_max_load(n), 2)
        .cell(sys_load.mean(), 3)
        .cell(chain.expected_load(), 3);
  }
  std::printf("\n  scaling across machine sizes:\n");
  clb::bench::emit(scale, "unbalanced_tail_2");
  return 0;
}
