// EXP-08 — Corollary 1: with constant-length tasks, every task spends at
// most O((log log n)^2) steps in the system, w.h.p. (expected time is
// constant).
//
// Uses the Geometric model (the paper's constant-running-time variant),
// birth-stamps every task and histograms sojourn times, balanced vs
// unbalanced.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace clb;
  util::Cli cli("EXP-08: task waiting times (Corollary 1)");
  const auto steps = cli.flag_u64("steps", 3000, "steps per run");
  const auto k = cli.flag_u64("k", 4, "Geometric model k");
  const auto seed = cli.flag_u64("seed", 1, "seed");
  bench::ObsFlags obs_flags(cli);
  bench::SmokeFlag smoke(cli);
  cli.parse(argc, argv);
  smoke.apply();

  obs::Recorder rec(obs_flags.config("bench_waiting_time", argc, argv));
  rec.manifest().set_seed(*seed);
  rec.manifest().set_param("steps", *steps);
  rec.manifest().set_param("k", *k);

  util::print_banner("EXP-08  sojourn times under Geometric(k) (Corollary 1)");
  util::print_note("expect: balanced p99.9 sojourn = O(T); mean O(1); "
                   "unbalanced tail much longer");

  util::Table table({"n", "T(k-scaled)", "mean wait (bal)", "p99 (bal)",
                     "p99.9 (bal)", "max (bal)", "p99.9 (unbal)",
                     "max (unbal)"});
  std::uint64_t trace_window = 0;
  for (const std::uint64_t n : bench::default_sizes()) {
    const core::Fractions f{.scale = static_cast<double>(*k)};
    const auto params = core::PhaseParams::from_n(n, f);

    // Each size gets its own window on the shared trace timeline.
    rec.trace()->set_time_base(trace_window);
    trace_window += *steps + 16;
    models::GeometricModel bm(static_cast<std::uint32_t>(*k));
    core::ThresholdBalancer balancer({.params = params,
                                      .trace = rec.trace(),
                                      .metrics = &rec.metrics()});
    sim::Engine bal({.n = n,
                     .seed = *seed,
                     .track_sojourn = true,
                     .trace = rec.trace()},
                    &bm, &balancer);
    bal.run(*steps);
    const auto& bh = bal.sojourn_histogram();
    rec.metrics()
        .histogram("exp08.n" + std::to_string(n) + ".sojourn_balanced")
        .merge(bh);

    models::GeometricModel um(static_cast<std::uint32_t>(*k));
    sim::Engine unbal({.n = n, .seed = *seed, .track_sojourn = true}, &um,
                      nullptr);
    unbal.run(*steps);
    const auto& uh = unbal.sojourn_histogram();
    rec.metrics()
        .histogram("exp08.n" + std::to_string(n) + ".sojourn_unbalanced")
        .merge(uh);

    table.row()
        .cell(n)
        .cell(params.T)
        .cell(bh.mean(), 2)
        .cell(bh.quantile(0.99))
        .cell(bh.quantile(0.999))
        .cell(bh.max_value())
        .cell(uh.quantile(0.999))
        .cell(uh.max_value());
  }
  clb::bench::emit(table, "waiting_time_1");
  util::print_note("FIFO + bounded load implies the bound; transferred tasks "
                   "move closer to the front (Section 4.3 argument).");
  rec.finish();
  return 0;
}
