// EXP-19 (extension) — the algorithm as a real distributed protocol.
//
// DistThresholdBalancer runs Figures 1 and 2 as per-processor state
// machines over a fixed-latency message fabric: a collision round costs a
// full round trip, rejection is a timeout, task payloads ride messages, and
// phases have variable length (they end when the fabric drains). This bench
// sweeps the latency and compares against the oracle (atomic) executor the
// analysis assumes.
#include <memory>
#include <string>

#include "common.hpp"
#include "dist/dist_balancer.hpp"
#include "net/topology.hpp"
#include "obs/views.hpp"

int main(int argc, char** argv) {
  using namespace clb;
  util::Cli cli("EXP-19: distributed protocol vs message latency");
  const auto n = cli.flag_u64("n", 1 << 13, "processors");
  const auto steps = cli.flag_u64("steps", 3000, "steps per run");
  const auto seed = cli.flag_u64("seed", 1, "seed");
  const auto latencies_csv = cli.flag_str(
      "latencies", "1,2,4,8", "uniform fabric latencies to sweep");
  const auto link_jitter = cli.flag_u64(
      "link-jitter", 0, "per-link extra-delay span (heterogeneous links)");
  const auto link_bandwidth = cli.flag_u64(
      "link-bandwidth", 0, "per-link bandwidth cap, msgs/step (0 = uncapped)");
  const auto link_loss = cli.flag_u64(
      "link-loss", 0, "i.i.d. loss probability, /65536 numerator");
  bench::ObsFlags obs_flags(cli);
  bench::SmokeFlag smoke(cli);
  cli.parse(argc, argv);
  smoke.apply();

  obs::Recorder rec(obs_flags.config("bench_dist", argc, argv));
  rec.manifest().set_seed(*seed);
  rec.manifest().set_param("n", *n);
  rec.manifest().set_param("steps", *steps);

  util::print_banner("EXP-19  per-processor protocol over a latency fabric");
  util::print_note("expect: max load degrades gracefully (~+latency worth "
                   "of drift) while messages/task stay flat; phase duration "
                   "~ 2*latency per collision round");

  const auto params = core::PhaseParams::from_n(*n);
  util::Table table({"impl", "latency", "max load", "mean load",
                     "phase steps (mean)", "match %", "forced ends",
                     "msgs/task"});

  // Oracle reference.
  {
    bench::ThresholdRun run(*n, *seed);
    run.engine.run(*steps);
    const auto& agg = run.balancer.aggregate();
    table.row()
        .cell("oracle (atomic)")
        .cell("-")
        .cell(run.engine.running_max_load())
        .cell(static_cast<double>(run.engine.total_load()) /
                  static_cast<double>(*n),
              2)
        .cell(static_cast<std::uint64_t>(params.phase_len))
        .cell(agg.phases_with_heavy ? 100.0 * agg.match_rate.mean() : 100.0,
              2)
        .cell("-")
        .cell(static_cast<double>(run.engine.messages().protocol_total()) /
                  static_cast<double>(run.engine.total_generated()),
              4);
  }

  for (const std::uint64_t latency_u64 :
       util::Cli::parse_u64_list(*latencies_csv)) {
    const auto latency = static_cast<std::uint32_t>(latency_u64);
    models::SingleModel model(0.4, 0.1);
    dist::DistConfig dc;
    dc.params = params;
    dc.latency = latency;
    dc.link.jitter = static_cast<std::uint32_t>(*link_jitter);
    dc.link.bandwidth = static_cast<std::uint32_t>(*link_bandwidth);
    dc.link.loss_per_64k = static_cast<std::uint32_t>(*link_loss);
    dist::DistThresholdBalancer balancer(dc);
    sim::Engine eng({.n = *n, .seed = *seed}, &model, &balancer);
    eng.run(*steps);
    const auto& st = balancer.stats();
    const double total_heavy =
        static_cast<double>(st.matched + st.unmatched);
    table.row()
        .cell("distributed")
        .cell(static_cast<std::uint64_t>(latency))
        .cell(eng.running_max_load())
        .cell(static_cast<double>(eng.total_load()) /
                  static_cast<double>(*n),
              2)
        .cell(st.phase_duration.mean(), 2)
        .cell(total_heavy > 0
                  ? 100.0 * static_cast<double>(st.matched) / total_heavy
                  : 100.0,
              2)
        .cell(st.forced_phase_ends)
        .cell(static_cast<double>(eng.messages().protocol_total()) /
                  static_cast<double>(eng.total_generated()),
              4);
    // Fabric depth under the same gauge names the rt latency fabric's
    // telemetry exports — the cross-model comparison the rt report reads.
    obs::snapshot_network(rec.metrics(), balancer.network(),
                          "dist.net.lat" + std::to_string(latency) + ".");
  }
  clb::bench::emit(table, "dist_1");

  // EXP-19b: the same protocol routed over concrete machine graphs (per-hop
  // latency 1): round trips stretch with the graph's mean distance.
  util::print_banner("EXP-19b  topology-routed fabric (per-hop latency 1)");
  util::Table ttable({"topology", "mean hops", "max load",
                      "phase steps (mean)", "match %", "links/msg"});
  const std::uint64_t side = 1ULL << (util::ilog2(*n) / 2);
  std::unique_ptr<net::Topology> tops[] = {
      std::make_unique<net::CompleteTopology>(*n),
      std::make_unique<net::HypercubeTopology>(*n),
      std::make_unique<net::Torus2D>(side, *n / side),
  };
  for (const auto& top : tops) {
    models::SingleModel model(0.4, 0.1);
    dist::DistThresholdBalancer balancer(
        {.params = params, .latency = 1, .topology = top.get()});
    sim::Engine eng({.n = *n, .seed = *seed}, &model, &balancer);
    eng.run(*steps);
    const auto& st = balancer.stats();
    const double total_heavy =
        static_cast<double>(st.matched + st.unmatched);
    ttable.row()
        .cell(top->name())
        .cell(top->mean_hops(), 2)
        .cell(eng.running_max_load())
        .cell(st.phase_duration.mean(), 2)
        .cell(total_heavy > 0
                  ? 100.0 * static_cast<double>(st.matched) / total_heavy
                  : 100.0,
              2)
        .cell(static_cast<double>(balancer.network().total_hops()) /
                  static_cast<double>(balancer.network().total_sent()),
              2);
    obs::snapshot_network(rec.metrics(), balancer.network(),
                          std::string("dist.net.") + top->name() + ".");
  }
  clb::bench::emit(ttable, "dist_2");
  util::print_note("the protocol is latency-robust: classification grows "
                   "staler with the round-trip time, but the threshold "
                   "trigger needs no global clock and message volume is "
                   "unchanged.");
  rec.finish();
  return 0;
}
