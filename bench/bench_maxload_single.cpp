// EXP-03 — Theorem 1: under the Single model the balanced maximum load is
// bounded by (log log n)^2 w.h.p.
//
// Sweeps n, running the full algorithm and the unbalanced control with the
// same seeds. The reproduction target is the *shape*: the balanced curve is
// flat/slowly-growing and tracks T = max(T_min, (log2 log2 n)^2), while the
// unbalanced control grows like log n, with the gap widening in n.
//
// With --metrics-json the per-size results land in gauges
// exp03.n<k>.{balanced_max_worst,T,unbalanced_max}; tools/statcheck.py
// turns them into machine-checked tolerance bands (EXPERIMENTS.md).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace clb;
  util::Cli cli("EXP-03: balanced max load (Theorem 1)");
  const auto steps = cli.flag_u64("steps", 2500, "steps per trial");
  const auto trials = cli.flag_u64("trials", 2, "independent trials");
  const auto p = cli.flag_f64("p", 0.4, "generation probability");
  const auto eps = cli.flag_f64("eps", 0.1, "consumption surplus");
  const auto seed = cli.flag_u64("seed", 1, "base seed");
  const auto sizes_csv = cli.flag_str(
      "sizes", "1024,4096,16384,65536", "comma-separated machine sizes n");
  bench::ObsFlags obs_flags(cli);
  bench::SmokeFlag smoke(cli);
  cli.parse(argc, argv);
  smoke.apply();

  obs::Recorder rec(obs_flags.config("bench_maxload_single", argc, argv));
  rec.manifest().set_seed(*seed);
  rec.manifest().set_param("steps", *steps);
  rec.manifest().set_param("sizes", *sizes_csv);
  const std::vector<std::uint64_t> sizes = util::Cli::parse_u64_list(*sizes_csv);

  util::print_banner("EXP-03  maximum load under Single (Theorem 1)");
  util::print_note("expect: balanced max <= ~T and ~flat in n; unbalanced "
                   "max grows ~log n; balanced << unbalanced at large n");

  analysis::SingleModelChain chain(*p, *eps);
  util::Table table({"n", "T (realised)", "balanced max (mean/worst)",
                     "unbalanced max (mean/worst)", "predicted unbal (log n)",
                     "bal steady mean load"});
  for (const std::uint64_t n : sizes) {
    const auto params = core::PhaseParams::from_n(n);
    stats::OnlineMoments bal, unbal, mean_load;
    std::uint64_t bal_worst = 0, unbal_worst = 0;
    bench::for_trials(*trials, *seed, [&](std::uint64_t s) {
      bench::ThresholdRun run(n, s, *p, *eps);
      run.engine.run(*steps);
      bal.add(static_cast<double>(run.engine.running_max_load()));
      bal_worst = std::max(bal_worst, run.engine.running_max_load());
      mean_load.add(static_cast<double>(run.engine.total_load()) /
                    static_cast<double>(n));
    });
    // One unbalanced control per size (same cost per run as the balanced
    // system; the gap is large enough that one trial shows the shape).
    {
      models::SingleModel um(*p, *eps);
      sim::Engine ue({.n = n, .seed = rng::hash_combine(*seed, n)}, &um,
                     nullptr);
      ue.run(*steps);
      unbal.add(static_cast<double>(ue.running_max_load()));
      unbal_worst = std::max(unbal_worst, ue.running_max_load());
    }
    const std::string prefix = "exp03.n" + std::to_string(n) + ".";
    rec.metrics().gauge(prefix + "balanced_max_worst") =
        static_cast<double>(bal_worst);
    rec.metrics().gauge(prefix + "T") = static_cast<double>(params.T);
    rec.metrics().gauge(prefix + "unbalanced_max") =
        static_cast<double>(unbal_worst);
    table.row()
        .cell(n)
        .cell(params.T)
        .cell(bench::mean_ci(bal, 1) + " / " + std::to_string(bal_worst))
        .cell(bench::mean_ci(unbal, 1) + " / " + std::to_string(unbal_worst))
        .cell(chain.expected_max_load(n), 1)
        .cell(mean_load.mean(), 2);
  }
  clb::bench::emit(table, "maxload_single_1");
  util::print_note("Theorem 1 reproduced if every balanced worst-case entry "
                   "is <= its T and grows visibly slower than the unbalanced "
                   "column.");
  rec.finish();
  return 0;
}
