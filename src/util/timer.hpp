// Wall-clock timing utilities for benches and progress reporting.
#pragma once

#include <chrono>
#include <cstdint>

namespace clb::util {

/// Monotonic stopwatch. `elapsed_*` may be called repeatedly; `reset`
/// restarts the clock.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace clb::util
