// Fixed-size thread pool with a blocking parallel_for.
//
// The simulator's per-step work (task generation, query placement) is data
// parallel over processors. Per-processor counter-based RNG streams make the
// result independent of how the index range is split, so the engine is
// deterministic for any worker count — including the single-threaded
// fallback used when hardware_concurrency() == 1.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace clb::util {

class ThreadPool {
 public:
  /// Creates `workers` threads; 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned worker_count() const {
    return static_cast<unsigned>(threads_.size() + 1);  // workers + caller
  }

  /// Runs body(begin, end) over [0, count) split into contiguous blocks, one
  /// per worker (the calling thread participates). Blocks until all finish.
  /// `body` must be safe to call concurrently on disjoint ranges.
  void parallel_for(std::uint64_t count,
                    const std::function<void(std::uint64_t, std::uint64_t)>& body);

 private:
  void worker_loop(unsigned index);

  struct Job {
    const std::function<void(std::uint64_t, std::uint64_t)>* body = nullptr;
    std::uint64_t count = 0;
    std::uint64_t generation = 0;
  };

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Job job_;
  unsigned pending_ = 0;
  bool stop_ = false;
};

}  // namespace clb::util
