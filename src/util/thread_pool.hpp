// Fixed-size thread pool with a blocking parallel_for, plus the two
// primitives the concurrent runtime (src/rt) builds its supersteps from:
// a reusable phase barrier and stable per-thread worker IDs.
//
// The simulator's per-step work (task generation, query placement) is data
// parallel over processors. Per-processor counter-based RNG streams make the
// result independent of how the index range is split, so the engine is
// deterministic for any worker count — including the single-threaded
// fallback used when hardware_concurrency() == 1.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace clb::util {

/// Splits [0, count) into `parts` contiguous blocks; returns [begin, end) of
/// block `index`. Blocks differ in size by at most 1, and earlier blocks get
/// the larger sizes, so concatenating blocks 0..parts-1 walks [0, count) in
/// order. Both ThreadPool::parallel_for and the rt shard partition use this,
/// which is what makes "worker order = ascending processor order" a property
/// the runtime can rely on.
[[nodiscard]] std::pair<std::uint64_t, std::uint64_t> block_range(
    std::uint64_t count, unsigned parts, unsigned index);

/// Reusable cyclic barrier with std::barrier's core API (arrive_and_wait).
/// All `parties` threads block until the last one arrives, then all proceed;
/// the barrier resets itself for the next cycle (sense-reversing via a
/// generation counter). Unlike std::barrier it is copy-free to embed, has no
/// completion function, and — because it synchronises through one mutex —
/// every write made before arrive_and_wait() happens-before every read made
/// after it in any other party. The rt runtime leans on that: plain (non-
/// atomic) per-worker slots published before a barrier are safe to read
/// after it.
///
/// Deliberately blocking (condvar), not spinning: oversubscribed hosts
/// (CI runners, the 1-core container this repo is often built in) are the
/// common case, and a spinning barrier inverts priorities there.
class PhaseBarrier {
 public:
  explicit PhaseBarrier(unsigned parties);

  PhaseBarrier(const PhaseBarrier&) = delete;
  PhaseBarrier& operator=(const PhaseBarrier&) = delete;

  /// Blocks until all parties have arrived at this cycle.
  void arrive_and_wait();

  /// arrive_and_wait, returning the nanoseconds this thread spent inside
  /// the call (arrive -> release, lock acquisition included). The telemetry
  /// layer's barrier-stall accounting uses this; it costs two steady_clock
  /// reads on top of the plain wait, so callers should only pick it when
  /// they actually record the result.
  std::uint64_t arrive_and_wait_timed();

  [[nodiscard]] unsigned parties() const { return parties_; }

  /// Number of completed cycles. Only meaningful when the caller knows the
  /// barrier is quiescent (e.g. between rt run() commands); used by tests.
  [[nodiscard]] std::uint64_t generation() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  const unsigned parties_;
  unsigned waiting_ = 0;
  std::uint64_t generation_ = 0;
};

class ThreadPool {
 public:
  /// Creates `workers` threads; 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned worker_count() const {
    return static_cast<unsigned>(threads_.size() + 1);  // workers + caller
  }

  /// Stable ID of the calling thread within its owning pool: the caller of
  /// parallel_for is worker 0, spawned threads are 1..worker_count()-1, and
  /// a given pool thread reports the same index for its whole lifetime (IDs
  /// are pinned at spawn, not assigned per job). Threads that belong to no
  /// pool — including the main thread — report 0, matching their role as
  /// "worker 0" when they call parallel_for.
  [[nodiscard]] static unsigned worker_index();

  /// Adopts the calling thread into the worker-ID scheme: worker_index()
  /// returns `index` for this thread from now on. For threads that behave
  /// like pool workers but are spawned elsewhere — rt::Runtime's shard
  /// threads bind their shard index at startup so trace events and
  /// telemetry they emit carry the right lane. Pool threads never need
  /// this (their ID is pinned at spawn).
  static void bind_worker_index(unsigned index);

  /// Runs body(begin, end) over [0, count) split into contiguous blocks, one
  /// per worker (the calling thread participates). Blocks until all finish.
  /// `body` must be safe to call concurrently on disjoint ranges. Inside
  /// `body`, worker_index() identifies the executing worker, and worker i
  /// always receives block i (block_range(count, worker_count(), i)).
  void parallel_for(std::uint64_t count,
                    const std::function<void(std::uint64_t, std::uint64_t)>& body);

 private:
  void worker_loop(unsigned index);

  struct Job {
    const std::function<void(std::uint64_t, std::uint64_t)>* body = nullptr;
    std::uint64_t count = 0;
    std::uint64_t generation = 0;
  };

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Job job_;
  unsigned pending_ = 0;
  bool stop_ = false;
};

}  // namespace clb::util
