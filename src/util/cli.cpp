#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/check.hpp"

namespace clb::util {

Cli::Cli(std::string program_description)
    : description_(std::move(program_description)) {}

Cli::Flag& Cli::declare(const std::string& name, Flag::Kind kind,
                        const std::string& help) {
  CLB_CHECK(!flags_.contains(name), "duplicate flag declaration");
  Flag& f = flags_[name];
  f.kind = kind;
  f.help = help;
  return f;
}

const std::uint64_t* Cli::flag_u64(const std::string& name, std::uint64_t def,
                                   const std::string& help) {
  Flag& f = declare(name, Flag::Kind::U64, help);
  f.u64 = def;
  return &f.u64;
}

const double* Cli::flag_f64(const std::string& name, double def,
                            const std::string& help) {
  Flag& f = declare(name, Flag::Kind::F64, help);
  f.f64 = def;
  return &f.f64;
}

const bool* Cli::flag_bool(const std::string& name, bool def,
                           const std::string& help) {
  Flag& f = declare(name, Flag::Kind::Bool, help);
  f.boolean = def;
  return &f.boolean;
}

const std::string* Cli::flag_str(const std::string& name,
                                 const std::string& def,
                                 const std::string& help) {
  Flag& f = declare(name, Flag::Kind::Str, help);
  f.str = def;
  return &f.str;
}

void Cli::usage_and_exit(int code) const {
  std::fprintf(stderr, "%s\n\nFlags:\n", description_.c_str());
  for (const auto& [name, f] : flags_) {
    const char* kind = "";
    switch (f.kind) {
      case Flag::Kind::U64: kind = "uint"; break;
      case Flag::Kind::F64: kind = "float"; break;
      case Flag::Kind::Bool: kind = "bool"; break;
      case Flag::Kind::Str: kind = "string"; break;
    }
    std::fprintf(stderr, "  --%-18s %-7s %s\n", name.c_str(), kind,
                 f.help.c_str());
  }
  std::exit(code);
}

void Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage_and_exit(0);
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", arg.c_str());
      usage_and_exit(2);
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag: --%s\n", arg.c_str());
      usage_and_exit(2);
    }
    Flag& f = it->second;
    if (!has_value && f.kind != Flag::Kind::Bool) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s needs a value\n", arg.c_str());
        usage_and_exit(2);
      }
      value = argv[++i];
      has_value = true;
    }
    try {
      switch (f.kind) {
        case Flag::Kind::U64: f.u64 = std::stoull(value); break;
        case Flag::Kind::F64: f.f64 = std::stod(value); break;
        case Flag::Kind::Str: f.str = value; break;
        case Flag::Kind::Bool:
          f.boolean = !has_value || value == "1" || value == "true" ||
                      value == "yes" || value == "on";
          break;
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad value for --%s: '%s'\n", arg.c_str(),
                   value.c_str());
      usage_and_exit(2);
    }
  }
}

bool Cli::override_u64(const std::string& name, std::uint64_t value) {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.kind != Flag::Kind::U64) return false;
  it->second.u64 = value;
  return true;
}

bool Cli::override_str(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.kind != Flag::Kind::Str) return false;
  it->second.str = value;
  return true;
}

std::vector<std::uint64_t> Cli::parse_u64_list(const std::string& csv) {
  std::vector<std::uint64_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const std::string tok = csv.substr(pos, comma - pos);
    if (!tok.empty()) out.push_back(std::stoull(tok));
    pos = comma + 1;
  }
  return out;
}

}  // namespace clb::util
