#include "util/thread_pool.hpp"

#include "util/check.hpp"

namespace clb::util {

namespace {

// Splits [0, count) into `parts` contiguous blocks; returns [begin, end) of
// block `index`. Blocks differ in size by at most 1.
std::pair<std::uint64_t, std::uint64_t> block_range(std::uint64_t count,
                                                    unsigned parts,
                                                    unsigned index) {
  const std::uint64_t base = count / parts;
  const std::uint64_t extra = count % parts;
  const std::uint64_t begin =
      index * base + std::min<std::uint64_t>(index, extra);
  const std::uint64_t size = base + (index < extra ? 1 : 0);
  return {begin, begin + size};
}

}  // namespace

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  // The calling thread is worker 0; spawn the rest.
  threads_.reserve(workers - 1);
  for (unsigned i = 1; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::parallel_for(
    std::uint64_t count,
    const std::function<void(std::uint64_t, std::uint64_t)>& body) {
  if (count == 0) return;
  const unsigned parts = worker_count();
  if (parts == 1 || count < 2 * parts) {
    body(0, count);
    return;
  }
  {
    std::lock_guard lock(mu_);
    CLB_CHECK(pending_ == 0, "nested parallel_for is not supported");
    job_.body = &body;
    job_.count = count;
    ++job_.generation;
    pending_ = parts - 1;
  }
  cv_start_.notify_all();

  auto [begin, end] = block_range(count, parts, 0);
  body(begin, end);

  std::unique_lock lock(mu_);
  cv_done_.wait(lock, [this] { return pending_ == 0; });
  job_.body = nullptr;
}

void ThreadPool::worker_loop(unsigned index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::uint64_t, std::uint64_t)>* body = nullptr;
    std::uint64_t count = 0;
    {
      std::unique_lock lock(mu_);
      cv_start_.wait(lock, [&] {
        return stop_ || (job_.body != nullptr && job_.generation > seen_generation);
      });
      if (stop_) return;
      seen_generation = job_.generation;
      body = job_.body;
      count = job_.count;
    }
    auto [begin, end] = block_range(count, worker_count(), index);
    (*body)(begin, end);
    {
      std::lock_guard lock(mu_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

}  // namespace clb::util
