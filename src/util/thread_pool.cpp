#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "util/check.hpp"

namespace clb::util {

namespace {

// Worker ID of the current thread. Pool threads set this once at spawn;
// everything else (main thread, detached helpers) keeps the default 0.
thread_local unsigned t_worker_index = 0;

}  // namespace

std::pair<std::uint64_t, std::uint64_t> block_range(std::uint64_t count,
                                                    unsigned parts,
                                                    unsigned index) {
  const std::uint64_t base = count / parts;
  const std::uint64_t extra = count % parts;
  const std::uint64_t begin =
      index * base + std::min<std::uint64_t>(index, extra);
  const std::uint64_t size = base + (index < extra ? 1 : 0);
  return {begin, begin + size};
}

PhaseBarrier::PhaseBarrier(unsigned parties) : parties_(parties) {
  CLB_CHECK(parties >= 1, "PhaseBarrier needs at least one party");
}

void PhaseBarrier::arrive_and_wait() {
  std::unique_lock lock(mu_);
  const std::uint64_t my_generation = generation_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return generation_ != my_generation; });
}

std::uint64_t PhaseBarrier::arrive_and_wait_timed() {
  const auto t0 = std::chrono::steady_clock::now();
  arrive_and_wait();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

std::uint64_t PhaseBarrier::generation() const {
  std::lock_guard lock(mu_);
  return generation_;
}

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  // The calling thread is worker 0; spawn the rest.
  threads_.reserve(workers - 1);
  for (unsigned i = 1; i < workers; ++i) {
    threads_.emplace_back([this, i] {
      t_worker_index = i;
      worker_loop(i);
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

unsigned ThreadPool::worker_index() { return t_worker_index; }

void ThreadPool::bind_worker_index(unsigned index) { t_worker_index = index; }

void ThreadPool::parallel_for(
    std::uint64_t count,
    const std::function<void(std::uint64_t, std::uint64_t)>& body) {
  if (count == 0) return;
  const unsigned parts = worker_count();
  if (parts == 1 || count < 2 * parts) {
    body(0, count);
    return;
  }
  {
    std::lock_guard lock(mu_);
    CLB_CHECK(pending_ == 0, "nested parallel_for is not supported");
    job_.body = &body;
    job_.count = count;
    ++job_.generation;
    pending_ = parts - 1;
  }
  cv_start_.notify_all();

  auto [begin, end] = block_range(count, parts, 0);
  body(begin, end);

  std::unique_lock lock(mu_);
  cv_done_.wait(lock, [this] { return pending_ == 0; });
  job_.body = nullptr;
}

void ThreadPool::worker_loop(unsigned index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::uint64_t, std::uint64_t)>* body = nullptr;
    std::uint64_t count = 0;
    {
      std::unique_lock lock(mu_);
      cv_start_.wait(lock, [&] {
        return stop_ || (job_.body != nullptr && job_.generation > seen_generation);
      });
      if (stop_) return;
      seen_generation = job_.generation;
      body = job_.body;
      count = job_.count;
    }
    auto [begin, end] = block_range(count, worker_count(), index);
    (*body)(begin, end);
    {
      std::lock_guard lock(mu_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

}  // namespace clb::util
