// Plain-text table rendering for bench output.
//
// Every bench binary prints its results as one or more of these tables: a
// header row, aligned columns, and an optional title/notes block, so that the
// harness output is directly comparable with the paper's statements.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace clb::util {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// a fixed number of significant digits. Rendering pads each column to its
/// widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent `cell` calls fill it left to right.
  Table& row();

  Table& cell(std::string_view text);
  Table& cell(std::uint64_t v);
  Table& cell(std::int64_t v);
  Table& cell(int v) { return cell(static_cast<std::int64_t>(v)); }
  /// Fixed-precision floating cell (default 3 decimal places).
  Table& cell(double v, int precision = 3);

  /// Renders the table with aligned columns, ready to print.
  [[nodiscard]] std::string str() const;

  /// Renders as CSV (headers + rows), for machine consumption.
  [[nodiscard]] std::string csv() const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with `precision` decimal places.
std::string format_double(double v, int precision = 3);

/// Prints a section banner (title surrounded by '=' rules) to stdout.
void print_banner(std::string_view title);

/// Prints a short note line, prefixed with "  # ".
void print_note(std::string_view note);

}  // namespace clb::util
