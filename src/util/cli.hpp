// Minimal command-line flag parser for bench/example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name`. Unknown
// flags are an error so bench invocations fail loudly instead of silently
// running the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace clb::util {

/// Registry-backed flag parser. Declare flags with defaults, then `parse`.
///
///   Cli cli("bench_maxload");
///   auto n      = cli.flag_u64("n", 1u << 14, "number of processors");
///   auto trials = cli.flag_u64("trials", 10, "independent trials");
///   cli.parse(argc, argv);   // exits(2) with usage on error / --help
///   use(*n, *trials);        // values are filled in by parse()
class Cli {
 public:
  explicit Cli(std::string program_description);

  /// Declares a flag; the returned pointer is owned by the Cli and filled in
  /// by parse(). Safe to dereference only after parse().
  const std::uint64_t* flag_u64(const std::string& name, std::uint64_t def,
                                const std::string& help);
  const double* flag_f64(const std::string& name, double def,
                         const std::string& help);
  const bool* flag_bool(const std::string& name, bool def,
                        const std::string& help);
  const std::string* flag_str(const std::string& name, const std::string& def,
                              const std::string& help);

  /// Parses argv. On `--help` prints usage and exits(0); on error prints the
  /// problem plus usage and exits(2).
  void parse(int argc, char** argv);

  /// Comma-separated list helper: parses flag value "1024,4096" into numbers.
  static std::vector<std::uint64_t> parse_u64_list(const std::string& csv);

  /// Overwrites a declared flag's value in place (the pointers handed out by
  /// flag_*() observe the change). Returns false when no flag of that name
  /// and kind exists — used by bench::SmokeFlag to shrink whatever standard
  /// workload knobs a given bench happens to declare.
  bool override_u64(const std::string& name, std::uint64_t value);
  bool override_str(const std::string& name, const std::string& value);

 private:
  struct Flag {
    enum class Kind { U64, F64, Bool, Str } kind;
    std::string help;
    std::uint64_t u64 = 0;
    double f64 = 0;
    bool boolean = false;
    std::string str;
  };

  [[noreturn]] void usage_and_exit(int code) const;
  Flag& declare(const std::string& name, Flag::Kind kind,
                const std::string& help);

  std::string description_;
  std::map<std::string, Flag> flags_;
};

}  // namespace clb::util
