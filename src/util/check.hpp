// Invariant checking macros.
//
// CLB_CHECK   — always-on check used at API boundaries and for invariants
//               whose violation means the simulation result is meaningless.
//               Prints the failing expression and message, then aborts.
// CLB_DCHECK  — debug-only check for hot paths (compiles out in NDEBUG).
//
// We deliberately abort instead of throwing: the library's hot loops are
// exception-free, and a violated invariant in a randomized simulation is not
// recoverable in any meaningful way.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace clb::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "CLB_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg ? msg : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace clb::util

#define CLB_CHECK(expr, msg)                                      \
  do {                                                            \
    if (!(expr)) {                                                \
      ::clb::util::check_failed(#expr, __FILE__, __LINE__, msg);  \
    }                                                             \
  } while (0)

#ifdef NDEBUG
#define CLB_DCHECK(expr, msg) ((void)0)
#else
#define CLB_DCHECK(expr, msg) CLB_CHECK(expr, msg)
#endif
