#include "util/table.hpp"

#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace clb::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CLB_CHECK(!headers_.empty(), "table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(std::string_view text) {
  CLB_CHECK(!rows_.empty(), "call row() before cell()");
  CLB_CHECK(rows_.back().size() < headers_.size(), "row has too many cells");
  rows_.back().emplace_back(text);
  return *this;
}

Table& Table::cell(std::uint64_t v) { return cell(std::to_string(v)); }
Table& Table::cell(std::int64_t v) { return cell(std::to_string(v)); }
Table& Table::cell(double v, int precision) {
  return cell(format_double(v, precision));
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string();
      out << "  " << text;
      for (std::size_t pad = text.size(); pad < width[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(headers_);
  out << "  ";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(width[c], '-') << (c + 1 < headers_.size() ? "  " : "");
  }
  out << '\n';
  for (const auto& r : rows_) emit_row(r);
  return out.str();
}

std::string Table::csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
  return out.str();
}

void print_banner(std::string_view title) {
  std::string rule(title.size() + 4, '=');
  std::printf("\n%s\n= %.*s =\n%s\n", rule.c_str(),
              static_cast<int>(title.size()), title.data(), rule.c_str());
}

void print_note(std::string_view note) {
  std::printf("  # %.*s\n", static_cast<int>(note.size()), note.data());
}

}  // namespace clb::util
