// Small integer/floating math helpers shared by the whole library.
//
// The paper's quantities are all built from `log log n`; these helpers give a
// single, consistent realisation of those expressions on concrete machine
// sizes (see DESIGN.md §2, "Constant realisation").
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

#include "util/check.hpp"

namespace clb::util {

/// Floor of log2(x) for x >= 1.
constexpr std::uint32_t ilog2(std::uint64_t x) {
  CLB_DCHECK(x >= 1, "ilog2 requires x >= 1");
  return 63u - static_cast<std::uint32_t>(std::countl_zero(x));
}

/// True iff x is a power of two (x >= 1).
constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// ceil(a / b) for b > 0.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  CLB_DCHECK(b > 0, "ceil_div by zero");
  return (a + b - 1) / b;
}

/// Real-valued log2(log2(n)); requires n >= 4 so the result is >= 1... well,
/// n >= 3 gives a positive value. Callers clamp as needed.
inline double log2log2(std::uint64_t n) {
  CLB_CHECK(n >= 4, "log2log2 requires n >= 4");
  return std::log2(std::log2(static_cast<double>(n)));
}

/// Real-valued natural log-log, used when a formula in the paper is written
/// with unspecified base (asymptotics only); we standardise on base 2 in the
/// implementation and expose this for sensitivity checks.
inline double lnln(std::uint64_t n) {
  CLB_CHECK(n >= 3, "lnln requires n >= 3");
  return std::log(std::log(static_cast<double>(n)));
}

/// round-to-nearest of a positive double, as u64 (>= `lo`).
inline std::uint64_t round_at_least(double x, std::uint64_t lo) {
  const double r = std::llround(x) < 0 ? 0.0 : static_cast<double>(std::llround(x));
  const auto v = static_cast<std::uint64_t>(r);
  return v < lo ? lo : v;
}

/// Saturating subtraction for unsigned values.
constexpr std::uint64_t sat_sub(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}

}  // namespace clb::util
