// The runtime oracle: drives rt::Runtime scenarios and checks them against
// the strongest reference available.
//
// Threshold / unbalanced scenarios run in lockstep with a shadow
// sim::Engine (same seed, model, phase parameters): after every step the
// total loads must agree, and periodically — plus at the end — every queue
// must match task-by-task in FIFO order, along with message counters and
// the applied-transfer ledger. This is an *identity* check: the
// kMailboxDrop mutation keeps the sender's books consistent (count
// conservation stays green by design, see rt::RtConfig), so only the
// missing tasks on the receiver's queue can convict it.
//
// All-in-air scenarios use per-processor scatter streams that deliberately
// differ from the serial baseline's single global stream, so there is no
// engine to compare against; they are checked for count conservation every
// step and for a bit-identical replay under a different worker count.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "dist/dist_balancer.hpp"
#include "rng/splitmix64.hpp"
#include "rt/runtime.hpp"
#include "sim/engine.hpp"
#include "testing/oracle.hpp"
#include "util/check.hpp"

namespace clb::testing {

namespace {

rt::RtPolicy policy_of(const Scenario& s) {
  switch (s.balancer) {
    case BalancerKind::kNone: return rt::RtPolicy::kNone;
    case BalancerKind::kAllInAir: return rt::RtPolicy::kAllInAir;
    case BalancerKind::kStaleSq: return rt::RtPolicy::kStaleSq;
    case BalancerKind::kLocalSearch: return rt::RtPolicy::kLocalSearch;
    default: return rt::RtPolicy::kThreshold;
  }
}

/// A runtime scenario with overrides re-applied into the runtime envelope
/// (the shrinker's --n floor of 16 is below the runtime's n > 16 CHECK).
Scenario sanitized(const Scenario& in) {
  Scenario s = in;
  if (s.n < 32) s.n = 32;
  return s;
}

struct RtRun {
  std::unique_ptr<sim::LoadModel> model;
  std::unique_ptr<rt::Runtime> run;
};

RtRun build_rt(const Scenario& s, unsigned workers) {
  RtRun r;
  r.model = build_runtime(s).model;
  rt::RtConfig cfg;
  cfg.n = s.n;
  cfg.seed = s.engine_seed;
  cfg.workers = workers;
  cfg.deterministic = true;
  cfg.policy = policy_of(s);
  if (cfg.policy == rt::RtPolicy::kThreshold) {
    core::Fractions fr;
    fr.t_min = s.t_min;
    cfg.params = core::PhaseParams::from_n(s.n, fr);
    cfg.game = collision::CollisionConfig{s.a, s.b, s.c, 0};
    if (s.rt_latency) {
      cfg.latency = s.latency;
      cfg.link.jitter = s.link_jitter;
      cfg.link.bandwidth = s.link_bandwidth;
      cfg.link.loss_per_64k = s.link_loss;
      if (s.mutation == MutationKind::kDelaySkew) {
        // Deliver the very first fabric message a superstep early; the
        // dist-shadow lockstep below is what must notice.
        cfg.delay_skew_message = 1;
      }
      if (s.mutation == MutationKind::kLinkLossNoRetransmit) {
        // Drop a transfer payload's lost first attempt outright instead of
        // retransmitting; the conservation oracle must notice the tasks
        // leaving the system.
        cfg.link_loss_no_retransmit = true;
      }
      if (s.mutation == MutationKind::kDupDelivery) {
        // Replay a transfer command whose ack draw was lost; the dup stages
        // the same transfer twice, and the ledger / identity sweep against
        // the clean dist shadow must notice.
        cfg.dup_delivery = true;
      }
    }
  }
  cfg.stale = baselines::StaleSqConfig{s.stale_staleness, s.stale_gap};
  cfg.ls = baselines::LocalSearchConfig{s.ls_min_load};
  cfg.crashes = s.crashes;
  cfg.arena = s.rt_arena;
  if (s.rt_steal || s.mutation == MutationKind::kStealDuplicateTask) {
    cfg.steal.enabled = true;
  }
  if (s.mutation == MutationKind::kStealDuplicateTask) {
    // Stolen batches clone instead of move; conservation convicts (the
    // extra copies are booked nowhere) and the engine shadow's queues
    // diverge task-by-task.
    cfg.steal_duplicate_task = true;
  }
  if (s.mutation == MutationKind::kMailboxDrop) {
    // Drop the very first transfer the runtime sends; later ordinals risk
    // never firing on lightly loaded scenarios.
    cfg.drop_transfer_message = 1;
  }
  if (s.mutation == MutationKind::kCrashLoseQueue && !cfg.crashes.empty()) {
    // Crashed queues vanish instead of re-homing; runtime conservation
    // convicts it (the lost tasks are booked nowhere). Guarded on a
    // non-empty schedule: a crash-free scenario has nothing to lose, and
    // arming the flag without crashes trips the runtime's config check.
    cfg.crash_lose_queue = true;
  }
  if (s.mutation == MutationKind::kStaleFreeLunch) {
    // Stale-SQ decisions secretly read fresh loads; the honest engine
    // shadow's queues and ledger diverge (totals alone cannot convict —
    // transfers conserve load either way).
    cfg.stale_read_fresh = true;
  }
  r.run = std::make_unique<rt::Runtime>(cfg, r.model.get());
  return r;
}

void apply_rt_faults(const Scenario& s, rt::Runtime& run, std::uint64_t step) {
  for (const FaultEvent& ev : s.faults) {
    if (ev.step != step) continue;
    for (std::uint32_t i = 0; i < ev.tasks; ++i) {
      run.deposit(ev.proc,
                  sim::Task{static_cast<std::uint32_t>(step), ev.proc, 1});
    }
  }
}

/// Element-wise queue comparison (the FIFO/identity oracle).
bool queues_match(const sim::Engine& eng, const rt::Runtime& run,
                  std::uint64_t* bad_proc, std::string* what) {
  for (std::uint64_t p = 0; p < eng.n(); ++p) {
    const sim::Processor& sp = eng.processor(p);
    const rt::RtProcessor& rp = run.processor(p);
    if (sp.load() != rp.queue.size()) {
      *bad_proc = p;
      *what = "queue length " + std::to_string(rp.queue.size()) +
              " != engine's " + std::to_string(sp.load());
      return false;
    }
    for (std::uint64_t i = 0; i < sp.load(); ++i) {
      const sim::Task& a = sp.queue.at(i);
      const sim::Task& b = rp.queue[i].task;
      if (a.birth_step != b.birth_step || a.origin != b.origin) {
        *bad_proc = p;
        *what = "task identity diverges at FIFO position " +
                std::to_string(i);
        return false;
      }
    }
  }
  return true;
}

/// Order-insensitive state fingerprint for the determinism replay.
std::uint64_t fingerprint(const rt::Runtime& run) {
  std::uint64_t h = 0x5254464E47ULL;  // "RTFNG"
  for (std::uint64_t p = 0; p < run.n(); ++p) {
    const rt::RtProcessor& proc = run.processor(p);
    h = rng::hash_combine(h, proc.queue.size());
    for (const rt::RtTask& t : proc.queue) {
      h = rng::hash_combine(h, (static_cast<std::uint64_t>(t.task.birth_step)
                                << 32) |
                                   t.task.origin);
    }
    h = rng::hash_combine(h, proc.tasks_sent);
    h = rng::hash_combine(h, proc.tasks_received);
    h = rng::hash_combine(h, proc.consumed);
  }
  const sim::MessageCounters m = run.messages();
  h = rng::hash_combine(h, m.protocol_total());
  h = rng::hash_combine(h, m.transfers);
  h = rng::hash_combine(h, m.tasks_moved);
  for (const rt::LedgerEntry& e : run.ledger()) {
    h = rng::hash_combine(h, (static_cast<std::uint64_t>(e.from) << 32) |
                                 e.to);
    h = rng::hash_combine(h, (e.step << 16) | e.count);
  }
  return h;
}

OracleReport run_against_engine(const Scenario& s) {
  RtRun main = build_rt(s, s.threads);

  // The shadow engine: same model family, seed and (for threshold) phase
  // parameters. build_runtime already realises the scenario's threshold
  // balancer with the runtime-compatible options (clamp_to_runtime zeroed
  // the spread/preround/prune/streaming/weight dimensions), so it can be
  // reused verbatim; the capture wrapper replays the engine's clamp rule on
  // scheduled transfers into a ledger comparable with rt::Runtime's.
  // Latency scenarios instead shadow dist::DistThresholdBalancer — the
  // protocol the latency fabric mirrors message for message.
  ScenarioRuntime shadow = build_runtime(s);
  std::unique_ptr<dist::DistThresholdBalancer> dist_shadow;
  sim::Balancer* inner = shadow.balancer.get();
  if (s.rt_latency) {
    dist::DistConfig dc;
    core::Fractions fr;
    fr.t_min = s.t_min;
    dc.params = core::PhaseParams::from_n(s.n, fr);
    dc.a = s.a;
    dc.b = s.b;
    dc.c = s.c;
    dc.latency = s.latency;
    // Same link model as the runtime (the shadow stays clean: scenario
    // mutations only ever reach the rt side).
    dc.link.jitter = s.link_jitter;
    dc.link.bandwidth = s.link_bandwidth;
    dc.link.loss_per_64k = s.link_loss;
    dist_shadow = std::make_unique<dist::DistThresholdBalancer>(dc);
    inner = dist_shadow.get();
  }
  CaptureBalancer cap(inner);
  sim::EngineConfig ec{.n = s.n, .seed = s.engine_seed,
                       .liveness = shadow.liveness.get()};
  // The shadow steals with the same pure rule (the mutation, if any, only
  // ever reaches the rt side).
  if (s.rt_steal || s.mutation == MutationKind::kStealDuplicateTask) {
    ec.steal.enabled = true;
  }
  sim::Engine eng(ec, shadow.model.get(), &cap);

  std::vector<rt::LedgerEntry> engine_ledger;
  cap.set_post_capture_hook([&](sim::Engine& e) {
    for (const sim::Transfer& t : cap.captured()) {
      engine_ledger.push_back(
          {e.step(), t.from, t.to,
           static_cast<std::uint32_t>(
               std::min<std::uint64_t>(t.count, e.load(t.from)))});
    }
  });

  for (std::uint64_t step = 0; step < s.steps; ++step) {
    apply_rt_faults(s, *main.run, step);
    for (const FaultEvent& ev : s.faults) {
      if (ev.step != step) continue;
      for (std::uint32_t i = 0; i < ev.tasks; ++i) {
        eng.deposit(ev.proc,
                    sim::Task{static_cast<std::uint32_t>(step), ev.proc, 1});
      }
    }
    main.run->run(1);
    eng.step_once();

    if (!main.run->conservation_holds()) {
      return OracleReport::failure(
          step, "runtime count conservation violated: generated + deposited "
                "!= consumed + queued + dropped");
    }
    if (main.run->total_load() != eng.total_load()) {
      return OracleReport::failure(
          step, "runtime total load " +
                    std::to_string(main.run->total_load()) +
                    " != engine total load " +
                    std::to_string(eng.total_load()));
    }
    // Full identity sweep periodically and on the last step; O(total load),
    // so every 8th step keeps the fuzz sweep affordable while still
    // pinpointing a violation within one phase or two.
    if (step % 8 == 7 || step + 1 == s.steps) {
      std::uint64_t bad_proc = 0;
      std::string what;
      if (!queues_match(eng, *main.run, &bad_proc, &what)) {
        return OracleReport::failure(
            step, "FIFO/identity divergence on processor " +
                      std::to_string(bad_proc) + ": " + what);
      }
    }
  }

  const sim::MessageCounters& em = eng.messages();
  const sim::MessageCounters rm = main.run->messages();
  if (em.queries != rm.queries || em.accepts != rm.accepts ||
      em.id_messages != rm.id_messages || em.control != rm.control ||
      em.transfers != rm.transfers || em.tasks_moved != rm.tasks_moved) {
    return OracleReport::failure(s.steps,
                                 "message counters diverge from engine");
  }
  if (eng.clamped_transfers() != main.run->clamped_transfers()) {
    return OracleReport::failure(s.steps, "clamped-transfer counts diverge");
  }
  if (eng.rehomed_tasks() != main.run->rehomed_tasks() ||
      eng.rehomed_events() != main.run->rehomed_events()) {
    return OracleReport::failure(
        s.steps, "crash re-home accounting diverges from engine (" +
                     std::to_string(main.run->rehomed_tasks()) + "/" +
                     std::to_string(main.run->rehomed_events()) + " vs " +
                     std::to_string(eng.rehomed_tasks()) + "/" +
                     std::to_string(eng.rehomed_events()) + ")");
  }

  // Ledger comparison, both sides canonically sorted. The runtime books
  // steals into its ledger alongside balancer transfers; merge the engine's
  // steal log in before sorting so both sides carry the same event set.
  // A steal and a phase transfer may share (step, from, to), so `count`
  // joins the sort key to keep the order total.
  for (const sim::StealRecord& t : eng.steal_log()) {
    engine_ledger.push_back({t.step, t.from, t.to, t.count});
  }
  std::sort(engine_ledger.begin(), engine_ledger.end(),
            [](const rt::LedgerEntry& a, const rt::LedgerEntry& b) {
              if (a.step != b.step) return a.step < b.step;
              if (a.from != b.from) return a.from < b.from;
              if (a.to != b.to) return a.to < b.to;
              return a.count < b.count;
            });
  const std::vector<rt::LedgerEntry> rt_ledger = main.run->ledger();
  if (engine_ledger.size() != rt_ledger.size()) {
    return OracleReport::failure(s.steps, "transfer ledger sizes diverge");
  }
  for (std::size_t i = 0; i < rt_ledger.size(); ++i) {
    const rt::LedgerEntry& a = engine_ledger[i];
    const rt::LedgerEntry& b = rt_ledger[i];
    if (a.step != b.step || a.from != b.from || a.to != b.to ||
        a.count != b.count) {
      return OracleReport::failure(s.steps, "transfer ledger entry " +
                                               std::to_string(i) +
                                               " diverges from engine");
    }
  }

  if (dist_shadow != nullptr) {
    // Latency fabrics additionally agree phase by phase: same start/end
    // step (duration ∝ latency rides on this), same matching outcome.
    const std::vector<dist::DistPhaseRecord>& dl =
        dist_shadow->stats().phase_log;
    std::vector<const rt::RtPhaseSummary*> completed;
    for (const rt::RtPhaseSummary& ps : main.run->phases()) {
      if (ps.completed) completed.push_back(&ps);
    }
    if (completed.size() != dl.size()) {
      return OracleReport::failure(
          s.steps, "completed phase counts diverge from dist shadow (" +
                       std::to_string(completed.size()) + " vs " +
                       std::to_string(dl.size()) + ")");
    }
    for (std::size_t i = 0; i < dl.size(); ++i) {
      const dist::DistPhaseRecord& a = dl[i];
      const rt::RtPhaseSummary& b = *completed[i];
      if (a.phase_index != b.phase_index || a.start_step != b.start_step ||
          a.end_step != b.end_step || a.num_heavy != b.num_heavy ||
          a.matched != b.matched || a.unmatched != b.unmatched ||
          a.forced != b.forced) {
        return OracleReport::failure(s.steps,
                                     "phase record " + std::to_string(i) +
                                         " diverges from dist shadow");
      }
    }
  }
  return OracleReport{};
}

OracleReport run_air(const Scenario& s) {
  RtRun main = build_rt(s, s.threads);
  for (std::uint64_t step = 0; step < s.steps; ++step) {
    apply_rt_faults(s, *main.run, step);
    main.run->run(1);
    if (!main.run->conservation_holds()) {
      return OracleReport::failure(
          step, "runtime count conservation violated (all-in-air)");
    }
  }

  // Determinism: a fresh runtime with a different worker count must land on
  // the bit-identical state.
  RtRun replay = build_rt(s, s.threads_replay);
  for (std::uint64_t step = 0; step < s.steps; ++step) {
    apply_rt_faults(s, *replay.run, step);
    replay.run->run(1);
  }
  if (fingerprint(*main.run) != fingerprint(*replay.run)) {
    return OracleReport::failure(
        s.steps, "all-in-air runtime is not deterministic across worker "
                 "counts (" +
                     std::to_string(s.threads) + " vs " +
                     std::to_string(s.threads_replay) + ")");
  }
  return OracleReport{};
}

}  // namespace

OracleReport run_rt_scenario(const Scenario& in) {
  CLB_CHECK(in.runtime, "run_rt_scenario needs a runtime scenario");
  const Scenario s = sanitized(in);
  OracleReport r = policy_of(s) == rt::RtPolicy::kAllInAir
                       ? run_air(s)
                       : run_against_engine(s);
  if (s.mutation == MutationKind::kMailboxDrop) {
    // Report whether the fault actually fired — a scenario that never sends
    // a transfer cannot convict anything, and the harness counts such runs
    // separately. Deterministic mode makes the single-threaded replay land
    // on the same transfer schedule as the checked run, so its drop counter
    // answers the question; a second run is cheap at fuzz sizes.
    RtRun probe = build_rt(s, 1);
    for (std::uint64_t step = 0; step < s.steps; ++step) {
      apply_rt_faults(s, *probe.run, step);
      probe.run->run(1);
    }
    r.mutation_applied = probe.run->dropped_messages() > 0;
  }
  if (s.mutation == MutationKind::kDelaySkew) {
    // The skew rewrites the first fabric send's delivery step, so it fired
    // iff the fabric carried any message at all (latency >= 2 guarantees
    // the rewrite is not a no-op).
    RtRun probe = build_rt(s, 1);
    for (std::uint64_t step = 0; step < s.steps; ++step) {
      apply_rt_faults(s, *probe.run, step);
      probe.run->run(1);
    }
    r.mutation_applied = probe.run->fabric_sent() > 0;
  }
  if (s.mutation == MutationKind::kLinkLossNoRetransmit) {
    // Fired iff a transfer payload's first attempt actually drew a loss —
    // the runtime counts each unreplayed drop.
    RtRun probe = build_rt(s, 1);
    for (std::uint64_t step = 0; step < s.steps; ++step) {
      apply_rt_faults(s, *probe.run, step);
      probe.run->run(1);
    }
    r.mutation_applied = probe.run->link_lost_messages() > 0;
  }
  if (s.mutation == MutationKind::kDupDelivery) {
    // Fired iff some transfer command's ack draw was lost and the clone was
    // actually filed.
    RtRun probe = build_rt(s, 1);
    for (std::uint64_t step = 0; step < s.steps; ++step) {
      apply_rt_faults(s, *probe.run, step);
      probe.run->run(1);
    }
    r.mutation_applied = probe.run->dup_delivered() > 0;
  }
  if (s.mutation == MutationKind::kCrashLoseQueue) {
    // Fired iff some crashed queue actually held tasks when it vanished.
    RtRun probe = build_rt(s, 1);
    for (std::uint64_t step = 0; step < s.steps; ++step) {
      apply_rt_faults(s, *probe.run, step);
      probe.run->run(1);
    }
    r.mutation_applied = probe.run->crash_lost_tasks() > 0;
  }
  if (s.mutation == MutationKind::kStaleFreeLunch) {
    // Fired iff a cheating decision ever differed from the honest stale
    // rule (the runtime counts divergent transfer lists per step).
    RtRun probe = build_rt(s, 1);
    for (std::uint64_t step = 0; step < s.steps; ++step) {
      apply_rt_faults(s, *probe.run, step);
      probe.run->run(1);
    }
    r.mutation_applied = probe.run->stale_cheat_divergence() > 0;
  }
  if (s.mutation == MutationKind::kStealDuplicateTask) {
    // Fired iff a steal batch actually shipped — each one clones its newest
    // task back onto the victim, and the runtime counts the clones.
    RtRun probe = build_rt(s, 1);
    for (std::uint64_t step = 0; step < s.steps; ++step) {
      apply_rt_faults(s, *probe.run, step);
      probe.run->run(1);
    }
    r.mutation_applied = probe.run->steal_dup_tasks() > 0;
  }
  return r;
}

}  // namespace clb::testing
