// Fuzz driver: samples scenarios, runs each under the invariant oracle,
// and on failure shrinks to a minimal reproducer.
//
// Shrinking only ever changes the three override dimensions (n, steps,
// fault count) of a sampled scenario — everything else stays a pure
// function of (scenario_seed, index) — so a failure always reduces to one
// short command line:
//
//   clb_fuzz --scenario-seed=S --index=I --n=.. --steps=.. --max-faults=..
//
// `--mutate` forces a deliberately broken behaviour into every scenario;
// with `--expect-failure` the run succeeds iff the oracle catches at least
// one mutated scenario (the harness's self-test, registered in ctest).
#pragma once

#include <cstdint>
#include <string>

#include "testing/oracle.hpp"
#include "testing/scenario.hpp"

namespace clb::testing {

/// Sentinel for "no override".
inline constexpr std::uint64_t kNoOverride = ~0ULL;

struct FuzzOptions {
  std::uint64_t scenario_seed = 1;
  std::uint64_t count = 200;      ///< scenarios checked (indices 0..count-1)
  std::uint64_t index = kNoOverride;  ///< replay exactly one index
  // Shrinker override dimensions (kNoOverride = keep sampled value).
  std::uint64_t n = kNoOverride;
  std::uint64_t steps = kNoOverride;
  std::uint64_t max_faults = kNoOverride;
  MutationKind mutate = MutationKind::kNone;
  bool expect_failure = false;
  bool shrink = true;
  bool verbose = false;
  /// Force every scenario into rt::Runtime (the long-tier thread-sanitizer
  /// sweep uses this): engine scenarios are clamped into the runtime
  /// envelope and every other threshold scenario runs the latency fabric.
  bool runtime_only = false;
  /// Force every scenario into the workload zoo on rt::Runtime: zoo models
  /// and the information baselines rotate deterministically by index, and
  /// every third eligible scenario carries a crash/recovery schedule.
  bool workload_zoo = false;
};

/// Samples scenario (seed, index) and applies the option overrides plus the
/// mutation normalisation (a forced mutation needs a scenario shape the
/// oracle can convict: reorder needs per-queue order tracking, phantom
/// messages need the threshold balancer's phase attribution).
Scenario materialize(const FuzzOptions& opt, std::uint64_t index);

/// Greedily minimises a failing scenario along n, fault count, and steps,
/// re-checking after every candidate reduction. Returns the smallest still-
/// failing scenario found.
Scenario shrink_failure(const FuzzOptions& opt, const Scenario& failing);

/// Runs the whole fuzz campaign; prints progress and failures to stdout.
/// Returns a process exit code: 0 on success (no failures, or, with
/// expect_failure, at least one caught mutation), 1 otherwise.
int run_fuzz(const FuzzOptions& opt);

}  // namespace clb::testing
