#include "testing/fuzzer.hpp"

#include <cstdio>

namespace clb::testing {

Scenario materialize(const FuzzOptions& opt, std::uint64_t index) {
  Scenario s = Scenario::sample(opt.scenario_seed, index);

  if (opt.mutate != MutationKind::kNone) {
    s.mutation = opt.mutate;
    // Mutations are engine-state faults; collision games have none. A
    // scenario sampled as collision-only carries protocol constants from
    // the wider standalone-game ranges — clamp them back into the
    // threshold balancer's envelope (binary trees: b in {1, 2}).
    s.collision_only = false;
    if (s.a < 4) s.a = 5;
    if (s.b > 2) s.b = 2;
    if (s.c > 2) s.c = 2;
    if (opt.mutate == MutationKind::kMailboxDrop ||
        opt.mutate == MutationKind::kDelaySkew ||
        opt.mutate == MutationKind::kLinkLossNoRetransmit ||
        opt.mutate == MutationKind::kDupDelivery) {
      // These faults live in rt::Runtime; conviction needs the threshold
      // policy, whose rt runs are cross-validated task-by-task against the
      // simulator (mailbox-drop) / the dist shadow (the latency-fabric
      // mutations).
      s.balancer = BalancerKind::kThreshold;
      clamp_to_runtime(s);
      if (opt.mutate == MutationKind::kDelaySkew) {
        // The skewed fabric only exists in latency mode; a delay of 1 step
        // cannot be shortened, and the victim ordinal counts sends in
        // arrival order, so a single worker keeps the run replayable.
        s.rt_latency = true;
        if (s.a > 8) s.a = 8;
        if (s.latency < 2) s.latency = 2;
        s.threads = 1;
        s.threads_replay = 1;
      }
      if (opt.mutate == MutationKind::kLinkLossNoRetransmit ||
          opt.mutate == MutationKind::kDupDelivery) {
        // Link mutations need a lossy latency fabric: loss draws gate both
        // the dropped first attempt and the ack-loss duplicate. 50% loss
        // makes either fire within a handful of transfers; a single worker
        // keeps the mutated run replayable.
        s.rt_latency = true;
        if (s.a > 8) s.a = 8;
        s.link_loss = 32768;
        s.threads = 1;
        s.threads_replay = 1;
      }
    } else if (opt.mutate == MutationKind::kCrashLoseQueue) {
      // The vanished queue lives in rt::Runtime's crash handler; an
      // unbalanced run keeps conviction pure (count conservation alone must
      // notice the lost tasks). Force a mid-run crash with a fresh spike on
      // the doomed processor so its queue is guaranteed non-empty.
      s.balancer = BalancerKind::kNone;
      clamp_to_runtime(s);
      s.rt_latency = false;
      const std::uint64_t crash_step = s.steps > 2 ? s.steps / 2 : 1;
      const std::uint32_t victim =
          static_cast<std::uint32_t>(index % s.n);
      s.crashes.clear();
      s.crashes.push_back(core::CrashEvent{crash_step, victim, 8});
      s.faults.push_back(FaultEvent{crash_step - 1, victim, 32});
    } else if (opt.mutate == MutationKind::kStaleFreeLunch) {
      // The cheat lives in the rt stale-SQ policy; the honest engine-side
      // StaleShortestQueue shadow convicts it via queue identity / ledger
      // divergence (totals agree — transfers conserve load either way).
      // Staleness >= 4 guarantees stale and fresh boards actually differ;
      // a spike makes imbalance (and therefore decisions) certain.
      s.balancer = BalancerKind::kStaleSq;
      clamp_to_runtime(s);
      s.rt_latency = false;
      s.stale_staleness = 8;
      s.stale_gap = 2;
      s.crashes.clear();
      s.faults.push_back(FaultEvent{1, static_cast<std::uint32_t>(index % s.n),
                                    64});
    } else if (opt.mutate == MutationKind::kStealDuplicateTask) {
      // The clone lives in rt::Runtime's steal path; an unbalanced run keeps
      // conviction pure (count conservation and queue identity against the
      // engine shadow both notice the extra copies). A spike on one
      // processor guarantees a loaded victim while its neighbours run dry,
      // so steals are certain to fire.
      s.balancer = BalancerKind::kNone;
      clamp_to_runtime(s);
      s.rt_latency = false;
      s.rt_steal = true;
      s.crashes.clear();
      s.faults.push_back(FaultEvent{1, static_cast<std::uint32_t>(index % s.n),
                                    64});
    } else {
      // The remaining mutations inject through sim::Engine's test hooks,
      // which the runtime path never calls.
      s.runtime = false;
    }
    if (opt.mutate == MutationKind::kReorder &&
        s.balancer == BalancerKind::kAllInAir) {
      // AllInAir reshuffles queues wholesale, so the oracle runs in multiset
      // mode and cannot see ordering — give reorder a scheduled-transfer
      // balancer it can be convicted under.
      s.balancer = BalancerKind::kThreshold;
    }
    if (opt.mutate == MutationKind::kPhantomMessage) {
      // Only the threshold balancer's per-phase attribution can notice a
      // message smuggled in outside every phase window; atomic execution
      // guarantees no phase is left open at end of run.
      s.balancer = BalancerKind::kThreshold;
      s.spread_execution = false;
    }
  }

  if (opt.runtime_only) {
    // The TSan long tier: every scenario on real worker threads. Collision
    // games have no runtime form — fold them into engine scenarios first.
    s.collision_only = false;
    if (!s.runtime) clamp_to_runtime(s);
    // Keep the latency fabric under continuous sanitizer pressure: every
    // other eligible scenario runs it (deterministically by index).
    if (s.balancer == BalancerKind::kThreshold && index % 2 == 1) {
      s.rt_latency = true;
      if (s.a > 8) s.a = 8;
      // Rotate the link-model knobs so the sanitizer tier keeps every
      // fabric shape (plain, jittered, shaped, lossy) under pressure
      // regardless of what the organic draws picked.
      switch ((index / 2) % 4) {
        case 1: s.link_jitter = 2; break;
        case 2: s.link_bandwidth = 2; break;
        case 3: s.link_loss = 16384; break;
        default: break;
      }
    }
    // Rotate the scale knobs on top of the organic draws so this tier keeps
    // the arena queue layout and the steal path under sanitizer pressure
    // regardless of what the organic draws picked (stealing is instant-
    // fabric only; the sanitizer below drops it from latency scenarios).
    if ((index / 4) % 2 == 0) s.rt_arena = true;
    if (index % 4 == 2) s.rt_steal = true;
  }

  if (opt.workload_zoo) {
    // The workload-zoo tier: every scenario drives a production model on
    // rt::Runtime worker threads, rotating the information baselines (and
    // the threshold protocol as control) deterministically by index; every
    // third baseline scenario additionally carries a mid-run crash.
    s.collision_only = false;
    const ModelKind zoo_models[] = {
        ModelKind::kDiurnal, ModelKind::kFlashCrowd, ModelKind::kPareto,
        ModelKind::kZipf,    ModelKind::kHetero,
    };
    s.model = zoo_models[index % 5];
    s.weight_based = false;
    const BalancerKind rotation[] = {
        BalancerKind::kStaleSq, BalancerKind::kLocalSearch,
        BalancerKind::kNone,    BalancerKind::kStaleSq,
        BalancerKind::kLocalSearch, BalancerKind::kThreshold,
    };
    s.balancer = rotation[index % 6];
    s.rt_latency = false;
    s.link_jitter = 0;
    s.link_bandwidth = 0;
    s.link_loss = 0;
    clamp_to_runtime(s);
    s.crashes.clear();
    if (index % 3 == 0 && s.balancer != BalancerKind::kThreshold) {
      core::CrashEvent ev;
      ev.step = s.steps > 2 ? s.steps / 2 : 1;
      ev.proc = static_cast<std::uint32_t>(index % s.n);
      ev.down_steps = 4 + index % 12;
      s.crashes.push_back(ev);
    }
  }

  // Work stealing runs on the instant fabric only; any tier or mutation
  // branch that forced the latency fabric (or dropped back to sim::Engine)
  // on an organically steal-enabled scenario sheds the knob here.
  if (s.rt_latency || !s.runtime) s.rt_steal = false;

  if (opt.n != kNoOverride) {
    s.n = opt.n < 16 ? 16 : opt.n;
    for (FaultEvent& ev : s.faults) ev.proc %= static_cast<std::uint32_t>(s.n);
    for (core::CrashEvent& ev : s.crashes) {
      ev.proc %= static_cast<std::uint32_t>(s.n);
    }
  }
  if (opt.steps != kNoOverride) {
    s.steps = opt.steps < 1 ? 1 : opt.steps;
    std::vector<FaultEvent> kept;
    for (const FaultEvent& ev : s.faults) {
      if (ev.step < s.steps) kept.push_back(ev);
    }
    s.faults = std::move(kept);
    std::vector<core::CrashEvent> crashes_kept;
    for (const core::CrashEvent& ev : s.crashes) {
      if (ev.step < s.steps) crashes_kept.push_back(ev);
    }
    s.crashes = std::move(crashes_kept);
    if (opt.mutate == MutationKind::kCrashLoseQueue && s.crashes.empty()) {
      // Shrinking the horizon must not disarm the mutation: re-pin the
      // doomed crash (and the spike that fills its queue) inside the new
      // range instead of leaving crash_lose_queue armed with no schedule.
      const std::uint64_t crash_step = s.steps > 2 ? s.steps / 2 : 1;
      const std::uint32_t victim = static_cast<std::uint32_t>(index % s.n);
      s.crashes.push_back(core::CrashEvent{crash_step, victim, 8});
      s.faults.push_back(FaultEvent{crash_step - 1, victim, 32});
    }
    if (s.mutation_step >= s.steps) s.mutation_step = s.steps - 1;
  }
  if (opt.max_faults != kNoOverride && s.faults.size() > opt.max_faults) {
    s.faults.resize(opt.max_faults);
  }
  return s;
}

Scenario shrink_failure(const FuzzOptions& opt, const Scenario& failing) {
  const auto fails = [](const Scenario& c) { return !check_scenario(c).ok; };
  const auto candidate = [&](const Scenario& cur, std::uint64_t n,
                             std::uint64_t steps, std::uint64_t max_faults) {
    FuzzOptions o = opt;
    o.n = n;
    o.steps = steps;
    o.max_faults = max_faults;
    return materialize(o, cur.index);
  };

  Scenario cur = failing;

  // Halve n while the failure persists (floor 16 keeps every component's
  // preconditions — collision needs a < n, the threshold realisation needs
  // a non-degenerate machine).
  while (cur.n / 2 >= 16) {
    Scenario cand = candidate(cur, cur.n / 2, cur.steps, cur.faults.size());
    if (!fails(cand)) break;
    cur = cand;
  }

  // Drop fault events: find the smallest prefix that still fails.
  for (std::uint64_t k = 0; k < cur.faults.size(); ++k) {
    Scenario cand = candidate(cur, cur.n, cur.steps, k);
    if (fails(cand)) {
      cur = cand;
      break;
    }
  }

  // Bisect steps down to the earliest still-failing run length.
  std::uint64_t lo = 1, hi = cur.steps;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    Scenario cand = candidate(cur, cur.n, mid, cur.faults.size());
    if (fails(cand)) {
      cur = cand;
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return cur;
}

int run_fuzz(const FuzzOptions& opt) {
  std::uint64_t checked = 0;
  std::uint64_t failures = 0;
  std::uint64_t mutations_armed = 0;

  const auto run_one = [&](std::uint64_t index) {
    const Scenario s = materialize(opt, index);
    if (s.mutation != MutationKind::kNone) ++mutations_armed;
    const OracleReport r = check_scenario(s);
    ++checked;
    if (opt.verbose) {
      std::printf("[%s] #%llu %s\n", r.ok ? "ok" : "FAIL",
                  static_cast<unsigned long long>(index),
                  s.describe().c_str());
    }
    if (r.ok) return;
    ++failures;
    std::printf("FAIL scenario #%llu (step %llu): %s\n",
                static_cast<unsigned long long>(index),
                static_cast<unsigned long long>(r.fail_step), r.what.c_str());
    std::printf("  %s\n", s.describe().c_str());
    Scenario minimal = opt.shrink ? shrink_failure(opt, s) : s;
    if (opt.shrink) {
      const OracleReport mr = check_scenario(minimal);
      std::printf("  shrunk to: %s\n", minimal.describe().c_str());
      std::printf("  minimal failure (step %llu): %s\n",
                  static_cast<unsigned long long>(mr.fail_step),
                  mr.what.c_str());
    }
    std::printf("  repro: %s\n", minimal.repro_command().c_str());
  };

  if (opt.index != kNoOverride) {
    run_one(opt.index);
  } else {
    for (std::uint64_t i = 0; i < opt.count; ++i) run_one(i);
  }

  if (opt.expect_failure) {
    if (failures > 0) {
      std::printf("expect-failure: oracle convicted %llu of %llu mutated "
                  "scenarios — harness self-test passed\n",
                  static_cast<unsigned long long>(failures),
                  static_cast<unsigned long long>(checked));
      return 0;
    }
    std::printf("expect-failure: oracle caught NOTHING across %llu mutated "
                "scenarios (%llu armed) — the oracle is blind\n",
                static_cast<unsigned long long>(checked),
                static_cast<unsigned long long>(mutations_armed));
    return 1;
  }
  std::printf("fuzz: %llu scenarios checked, %llu failures\n",
              static_cast<unsigned long long>(checked),
              static_cast<unsigned long long>(failures));
  return failures == 0 ? 0 : 1;
}

}  // namespace clb::testing
