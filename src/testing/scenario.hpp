// Seed-driven scenario sampling for the fuzzing harness.
//
// A Scenario is a complete, value-typed description of one randomized run:
// machine size, load model (all six §1.2 models plus the weighted
// extension), balancing policy (the paper's algorithm in oracle and
// distributed form, every baseline, or none), protocol constants, latency,
// a fault schedule (load spikes deposited mid-run), and an optional
// deliberate mutation (a known-broken behaviour the invariant oracle must
// catch — the harness's self-test).
//
// Scenarios are sampled as a pure function of (scenario_seed, index), so
//   clb_fuzz --scenario-seed=S --index=I [--n=..] [--steps=..] ...
// replays any failure exactly; the shrinker only ever changes the three
// override dimensions (n, steps, fault count), which keeps repro command
// lines short.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/liveness.hpp"
#include "sim/balancer.hpp"
#include "sim/model.hpp"

namespace clb::testing {

enum class ModelKind {
  kSingle,
  kGeometric,
  kMulti,
  kAdversarial,
  kPoissonBatch,
  kOnOff,
  kWeighted,    // weighted extension; pairs with weight_based balancing
  kBurst,       // bursty hot-spot model (runtime scenarios)
  kDiurnal,     // workload zoo: sinusoidal day/night arrival rate
  kFlashCrowd,  // workload zoo: episodic correlated hot groups
  kPareto,      // workload zoo: heavy-tailed (Pareto) batch sizes
  kZipf,        // workload zoo: zipfian placement skew
  kHetero,      // workload zoo: heterogeneous processor speeds
};

enum class BalancerKind {
  kNone,
  kThreshold,
  kDist,
  kRsu,
  kLm,
  kRandomSeeking,
  kAllInAir,  // immediate-mode redistribution: oracle runs in multiset mode
  kStaleSq,       // workload zoo: stale shortest-queue baseline
  kLocalSearch,   // workload zoo: randomized pairwise local search
};

/// Deliberately broken behaviours, injected through the engine's test hooks
/// with *consistent-looking accounting* — count-based checks stay green and
/// only the identity/order-tracking oracle can object.
enum class MutationKind {
  kNone,
  kDropTask,        // lose one queued task in flight
  kDupTask,         // deliver one task twice
  kReorder,         // swap two tasks in one FIFO queue
  kPhantomMessage,  // bump a protocol counter outside any phase window
  kMailboxDrop,     // rt runtime: silently drop one transfer message
  kDelaySkew,       // rt latency fabric: deliver one message a step early
  kLinkLossNoRetransmit,  // lossy link: drop a first attempt, never resend
  kDupDelivery,           // lossy link: replay a transfer cmd on ack loss
  kCrashLoseQueue,        // rt runtime: a crashed queue vanishes un-rehomed
  kStaleFreeLunch,        // rt stale-sq: decisions secretly read fresh loads
  kStealDuplicateTask,    // rt stealing: a stolen batch clones, not moves
};

/// A load spike deposited onto one processor before `step` executes.
struct FaultEvent {
  std::uint64_t step = 0;
  std::uint32_t proc = 0;
  std::uint32_t tasks = 0;
};

struct Scenario {
  // Provenance (how to regenerate this scenario).
  std::uint64_t scenario_seed = 1;
  std::uint64_t index = 0;

  // Machine + run shape.
  std::uint64_t n = 64;
  std::uint64_t steps = 128;
  std::uint64_t engine_seed = 1;
  unsigned threads = 1;        // first run
  unsigned threads_replay = 1; // determinism re-run (may differ!)

  // Either a standalone collision game...
  bool collision_only = false;
  std::uint32_t a = 5, b = 2, c = 1;
  std::uint64_t collision_requests = 0;  // requester count (with repetition)

  // ...or a full engine run.
  ModelKind model = ModelKind::kSingle;
  double p = 0.4, eps = 0.1;      // Single / Weighted
  std::uint32_t geometric_k = 4;  // Geometric
  std::uint32_t multi_c = 3;      // Multi: pmf over {0..multi_c-1}
  double lambda = 0.5;            // PoissonBatch

  BalancerKind balancer = BalancerKind::kThreshold;
  /// Run on rt::Runtime (worker threads + mailboxes, deterministic mode)
  /// instead of sim::Engine. Runtime scenarios are clamped to the runtime's
  /// envelope (parallel-safe model, none/threshold/all-in-air policy, small
  /// n and steps); see clamp_to_runtime.
  bool runtime = false;
  /// Runtime scenarios only: run rt::Runtime's latency fabric (the dist::
  /// protocol over per-worker delay queues, delay = `latency`) instead of
  /// the instant fabric. The oracle then cross-validates against a shadow
  /// sim::Engine + dist::DistThresholdBalancer in lockstep. Requires the
  /// threshold policy with a <= 8.
  bool rt_latency = false;
  bool spread_execution = false;
  bool one_shot_preround = false;
  bool prune_satisfied = false;
  bool streaming_transfers = false;
  bool weight_based = false;
  std::uint64_t t_min = 16;
  std::uint32_t latency = 1;  // DistThresholdBalancer fabric latency
  // Link-model knobs for latency scenarios (net::NetConfig, applied to the
  // runtime and its dist lockstep shadow alike): extra per-link jitter span,
  // per-link bandwidth cap (messages/step, 0 = uncapped), and i.i.d. loss
  // probability as a /65536 numerator (0 = lossless).
  std::uint32_t link_jitter = 0;
  std::uint32_t link_bandwidth = 0;
  std::uint32_t link_loss = 0;

  std::vector<FaultEvent> faults;

  MutationKind mutation = MutationKind::kNone;
  std::uint64_t mutation_step = 0;  // applied at first opportunity >= this

  // Workload-zoo knobs (sampled after every older field, so pre-existing
  // (seed, index) pairs keep their exact scenarios).
  std::uint64_t stale_staleness = 8;  // kStaleSq: steps between broadcasts
  std::uint32_t stale_gap = 2;        // kStaleSq: minimum excess to act
  std::uint32_t ls_min_load = 2;      // kLocalSearch: probe threshold
  /// Crash/recovery schedule; only drawn for liveness-aware balancers
  /// (none / stale-sq / local-search) on the instant fabric.
  std::vector<core::CrashEvent> crashes;

  // Scale knobs (sampled after every older field, same stream-stability
  // contract as the zoo knobs). Runtime scenarios only.
  /// Arena-backed SoA shard queues instead of pointer-chasing FIFOs
  /// (RtConfig::arena); outputs must be bit-identical either way.
  bool rt_arena = false;
  /// Deterministic work stealing (RtConfig::steal); instant fabric only,
  /// so never drawn together with rt_latency.
  bool rt_steal = false;

  /// Pure function of (seed, index): every field above is derived with
  /// counter RNG, so the same pair always yields the same scenario.
  static Scenario sample(std::uint64_t scenario_seed, std::uint64_t index);

  /// One-line human summary (model/balancer/sizes/faults/mutation).
  [[nodiscard]] std::string describe() const;

  /// Exact command line that replays this scenario through clb_fuzz,
  /// including the shrinker's override dimensions.
  [[nodiscard]] std::string repro_command() const;
};

const char* to_string(ModelKind m);
const char* to_string(BalancerKind b);
const char* to_string(MutationKind m);
/// Inverse of to_string(MutationKind); returns kNone for unknown names.
MutationKind mutation_from_string(const std::string& name);

/// Forces `s` into rt::Runtime's envelope: a parallel-safe model, a policy
/// the runtime implements (none / threshold / all-in-air), protocol
/// constants within the runtime's query-width limit, and sizes small enough
/// that a phase-per-step schedule stays affordable under fuzzing. Called by
/// Scenario::sample for scenarios drawn as runtime, and by the fuzzer when
/// a runtime-only mutation (kMailboxDrop, kDelaySkew, or the link-model
/// mutations) is requested.
void clamp_to_runtime(Scenario& s);

/// Owns the model + balancer a scenario describes. The engine is built by
/// the oracle (which wraps the balancer to capture scheduled transfers), so
/// the runtime only carries the two plug-ins.
struct ScenarioRuntime {
  std::unique_ptr<sim::LoadModel> model;
  std::unique_ptr<sim::Balancer> balancer;  // null for BalancerKind::kNone
  /// Built from Scenario::crashes (null when empty); the engine config and
  /// any liveness-aware balancer borrow it, so it must outlive both.
  std::unique_ptr<core::LivenessSchedule> liveness;
};

/// Instantiates fresh model/balancer objects for `s` (stateful models make
/// reuse across runs unsound; always build a new runtime per run).
ScenarioRuntime build_runtime(const Scenario& s);

}  // namespace clb::testing
