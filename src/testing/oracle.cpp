#include "testing/oracle.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>

#include "collision/collision.hpp"
#include "core/threshold_balancer.hpp"
#include "rng/dist.hpp"
#include "rng/philox.hpp"

namespace clb::testing {

namespace {

/// Task identity: (birth_step, origin). Weight is checked separately via
/// weight_load consistency because generated weights are model-internal
/// randomness the oracle does not re-derive.
struct TaskId {
  std::uint32_t birth = 0;
  std::uint32_t origin = 0;

  friend bool operator==(const TaskId&, const TaskId&) = default;
  friend auto operator<=>(const TaskId&, const TaskId&) = default;
};

std::string fmt(const char* f, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof buf, f, args...);
  return buf;
}

/// Full-state fingerprint for the determinism check: every queue's exact
/// contents plus all counters. Any divergence between two runs of the same
/// scenario shows up here.
std::string fingerprint(const sim::Engine& e) {
  std::string out;
  out.reserve(4096);
  for (std::uint64_t p = 0; p < e.n(); ++p) {
    const auto& proc = e.processor(p);
    out += fmt("p%llu g%llu c%llu w%llu s%llu r%llu:",
               static_cast<unsigned long long>(p),
               static_cast<unsigned long long>(proc.generated),
               static_cast<unsigned long long>(proc.consumed),
               static_cast<unsigned long long>(proc.weight_load),
               static_cast<unsigned long long>(proc.tasks_sent),
               static_cast<unsigned long long>(proc.tasks_received));
    for (std::uint64_t i = 0; i < proc.queue.size(); ++i) {
      const sim::Task& t = proc.queue.at(i);
      out += fmt("(%u,%u,%u)", t.birth_step, t.origin, t.weight);
    }
    out += '\n';
  }
  const auto& m = e.messages();
  out += fmt("msg q%llu a%llu i%llu c%llu t%llu tm%llu clamp%llu\n",
             static_cast<unsigned long long>(m.queries),
             static_cast<unsigned long long>(m.accepts),
             static_cast<unsigned long long>(m.id_messages),
             static_cast<unsigned long long>(m.control),
             static_cast<unsigned long long>(m.transfers),
             static_cast<unsigned long long>(m.tasks_moved),
             static_cast<unsigned long long>(e.clamped_transfers()));
  return out;
}

/// Applies the scenario's fault deposits for `step` to the engine and, when
/// `shadow` is non-null, mirrors them into the oracle's shadow queues.
void apply_faults(const Scenario& s, sim::Engine& engine, std::uint64_t step,
                  std::vector<std::deque<TaskId>>* shadow) {
  for (const FaultEvent& ev : s.faults) {
    if (ev.step != step) continue;
    for (std::uint32_t i = 0; i < ev.tasks; ++i) {
      engine.deposit(ev.proc, sim::Task{static_cast<std::uint32_t>(step),
                                        ev.proc, 1});
      if (shadow != nullptr) {
        (*shadow)[ev.proc].push_back(
            TaskId{static_cast<std::uint32_t>(step), ev.proc});
      }
    }
  }
}

/// Installs the scenario's mutation as a post-capture hook. The hook keeps
/// trying from mutation_step onwards until the machine state lets the
/// mutation bite (e.g. drop needs a non-empty queue), then disarms.
void arm_mutation(const Scenario& s, CaptureBalancer& cap, bool* applied) {
  if (s.mutation == MutationKind::kNone) return;
  cap.set_post_capture_hook([&s, applied](sim::Engine& e) {
    if (*applied || e.step() < s.mutation_step) return;
    switch (s.mutation) {
      case MutationKind::kNone:
        break;
      case MutationKind::kDropTask:
        for (std::uint64_t p = 0; p < e.n(); ++p) {
          if (e.load(p) > 0) {
            e.steal_newest_for_test(static_cast<std::uint32_t>(p));
            *applied = true;
            return;
          }
        }
        break;
      case MutationKind::kDupTask:
        for (std::uint64_t p = 0; p < e.n(); ++p) {
          if (e.load(p) > 0) {
            // Deliver the newest task a second time; deposit() books it, so
            // count-based conservation still balances.
            e.deposit(static_cast<std::uint32_t>(p),
                      e.processor(p).queue.back());
            *applied = true;
            return;
          }
        }
        break;
      case MutationKind::kReorder:
        for (std::uint64_t p = 0; p < e.n(); ++p) {
          const auto& q = e.processor(p).queue;
          if (q.size() < 2) continue;
          const sim::Task& a = q.at(0);
          const sim::Task& b = q.at(q.size() - 1);
          if (a.birth_step == b.birth_step && a.origin == b.origin) continue;
          e.swap_queue_entries_for_test(static_cast<std::uint32_t>(p), 0,
                                        q.size() - 1);
          *applied = true;
          return;
        }
        break;
      case MutationKind::kPhantomMessage:
        // Lands between this phase's finalisation and the next begin, so it
        // escapes every per-phase attribution window.
        e.mutable_messages().control += 1;
        *applied = true;
        break;
      case MutationKind::kMailboxDrop:
      case MutationKind::kCrashLoseQueue:
      case MutationKind::kStaleFreeLunch:
        // Runtime-only faults; the fuzzer routes them through
        // run_rt_scenario (rt_oracle.cpp), so the engine hook never sees
        // them.
        break;
    }
  });
}

/// Runs the scenario start to finish with no checks; used for the
/// determinism replay (the checked run already validated the invariants).
std::string replay_fingerprint(const Scenario& s, unsigned threads) {
  ScenarioRuntime rt = build_runtime(s);
  sim::EngineConfig ec;
  ec.n = s.n;
  ec.seed = s.engine_seed;
  ec.threads = threads;
  ec.liveness = rt.liveness.get();
  sim::Engine engine(ec, rt.model.get(), rt.balancer.get());
  for (std::uint64_t step = 0; step < s.steps; ++step) {
    apply_faults(s, engine, step, nullptr);
    engine.step_once();
  }
  return fingerprint(engine);
}

}  // namespace

OracleReport run_engine_scenario(const Scenario& s) {
  ScenarioRuntime rt = build_runtime(s);
  CaptureBalancer cap(rt.balancer.get());
  bool mutation_applied = false;
  arm_mutation(s, cap, &mutation_applied);

  sim::EngineConfig ec;
  ec.n = s.n;
  ec.seed = s.engine_seed;
  ec.threads = s.threads;
  ec.liveness = rt.liveness.get();
  sim::Engine engine(ec, rt.model.get(), &cap);

  // AllInAir redistributes through drain_all/deposit, outside the transfer
  // API — exact per-queue prediction is impossible, so the oracle degrades
  // to multiset identity and resyncs the shadow from reality each step.
  const bool strict = s.balancer != BalancerKind::kAllInAir;

  std::vector<std::deque<TaskId>> shadow(s.n);
  std::vector<std::uint64_t> gen_before(s.n), con_before(s.n);

  // The whole check body runs inside an IIFE so every early failure return
  // still gets mutation_applied stamped on (the hook fires mid-loop, after
  // some failure exits would already have been taken).
  OracleReport rep = [&]() -> OracleReport {
  OracleReport ok_rep;

  for (std::uint64_t step = 0; step < s.steps; ++step) {
    apply_faults(s, engine, step, &shadow);
    for (std::uint64_t p = 0; p < s.n; ++p) {
      gen_before[p] = engine.processor(p).generated;
      con_before[p] = engine.processor(p).consumed;
    }

    engine.step_once();

    // Crash re-home runs at the top of the engine step, before generation
    // and consumption: the crashed queue moves FIFO-whole onto the re-home
    // target's back. Mirror that into the shadow first.
    if (rt.liveness != nullptr && rt.liveness->crash_step(step)) {
      for (const std::uint32_t c : rt.liveness->crashes_at(step)) {
        auto& src = shadow[c];
        auto& dst = shadow[rt.liveness->rehome_target(c, step)];
        dst.insert(dst.end(), src.begin(), src.end());
        src.clear();
      }
    }

    // Predict generation and consumption from the lifetime-counter deltas
    // (stateful models — Adversarial, OnOff — cannot be re-queried).
    // Within a processor-step the engine generates first, then consumes
    // from the front.
    for (std::uint64_t p = 0; p < s.n; ++p) {
      const std::uint64_t gen = engine.processor(p).generated - gen_before[p];
      const std::uint64_t con = engine.processor(p).consumed - con_before[p];
      for (std::uint64_t i = 0; i < gen; ++i) {
        shadow[p].push_back(TaskId{static_cast<std::uint32_t>(step),
                                   static_cast<std::uint32_t>(p)});
      }
      if (con > shadow[p].size()) {
        return OracleReport::failure(
            step, fmt("proc %llu consumed %llu tasks but only %zu were "
                      "queued",
                      static_cast<unsigned long long>(p),
                      static_cast<unsigned long long>(con),
                      shadow[p].size()));
      }
      shadow[p].erase(shadow[p].begin(),
                      shadow[p].begin() + static_cast<std::ptrdiff_t>(con));
    }

    if (strict) {
      // Replay the captured transfers against the shadow, exactly like
      // Engine::apply_transfers: newest `count` tasks, old order preserved,
      // clamped to the sender's load at application time.
      for (const sim::Transfer& t : cap.captured()) {
        auto& src = shadow[t.from];
        auto& dst = shadow[t.to];
        const std::uint64_t count =
            std::min<std::uint64_t>(t.count, src.size());
        const auto first = src.end() - static_cast<std::ptrdiff_t>(count);
        dst.insert(dst.end(), first, src.end());
        src.erase(first, src.end());
      }
      for (std::uint64_t p = 0; p < s.n; ++p) {
        const auto& q = engine.processor(p).queue;
        if (q.size() != shadow[p].size()) {
          return OracleReport::failure(
              step,
              fmt("task conservation by identity: proc %llu has %llu "
                  "queued tasks, oracle predicted %zu",
                  static_cast<unsigned long long>(p),
                  static_cast<unsigned long long>(q.size()),
                  shadow[p].size()));
        }
        for (std::uint64_t i = 0; i < q.size(); ++i) {
          const sim::Task& t = q.at(i);
          if (TaskId{t.birth_step, t.origin} != shadow[p][i]) {
            return OracleReport::failure(
                step,
                fmt("FIFO order violated: proc %llu position %llu holds "
                    "task (birth=%u origin=%u), oracle predicted "
                    "(birth=%u origin=%u)",
                    static_cast<unsigned long long>(p),
                    static_cast<unsigned long long>(i), t.birth_step,
                    t.origin, shadow[p][i].birth, shadow[p][i].origin));
          }
        }
      }
    } else {
      // Multiset identity: the global bag of task identities must match.
      std::vector<TaskId> expect, actual;
      for (std::uint64_t p = 0; p < s.n; ++p) {
        expect.insert(expect.end(), shadow[p].begin(), shadow[p].end());
        const auto& q = engine.processor(p).queue;
        for (std::uint64_t i = 0; i < q.size(); ++i) {
          const sim::Task& t = q.at(i);
          actual.push_back(TaskId{t.birth_step, t.origin});
        }
      }
      std::sort(expect.begin(), expect.end());
      std::sort(actual.begin(), actual.end());
      if (expect != actual) {
        return OracleReport::failure(
            step, fmt("task conservation by identity (multiset): %zu tasks "
                      "expected, %zu queued, or identities differ",
                      expect.size(), actual.size()));
      }
      // Resync for next step's consumption prediction.
      for (std::uint64_t p = 0; p < s.n; ++p) {
        shadow[p].clear();
        const auto& q = engine.processor(p).queue;
        for (std::uint64_t i = 0; i < q.size(); ++i) {
          const sim::Task& t = q.at(i);
          shadow[p].push_back(TaskId{t.birth_step, t.origin});
        }
      }
    }

    // Weight accounting: the cached weight_load must equal the sum of the
    // queued tasks' weights.
    for (std::uint64_t p = 0; p < s.n; ++p) {
      const auto& q = engine.processor(p).queue;
      std::uint64_t w = 0;
      for (std::uint64_t i = 0; i < q.size(); ++i) w += q.at(i).weight;
      if (w != engine.weight_load(p)) {
        return OracleReport::failure(
            step, fmt("weight accounting drift on proc %llu: cached %llu, "
                      "queue sums to %llu",
                      static_cast<unsigned long long>(p),
                      static_cast<unsigned long long>(engine.weight_load(p)),
                      static_cast<unsigned long long>(w)));
      }
    }

    if (!engine.conservation_holds()) {
      return OracleReport::failure(
          step, "count conservation violated: generated + deposited != "
                "consumed + queued + drained");
    }
  }

  // Per-phase message attribution: every protocol message the engine
  // counted must have been attributed to some finalised phase. Only
  // meaningful for the threshold balancer with no phase left open.
  if (auto* tb = dynamic_cast<core::ThresholdBalancer*>(rt.balancer.get())) {
    if (!tb->phase_open() &&
        tb->aggregate().total_messages != engine.messages().protocol_total()) {
      return OracleReport::failure(
          s.steps,
          fmt("message attribution mismatch: phases account for %llu "
              "protocol messages, engine counted %llu",
              static_cast<unsigned long long>(tb->aggregate().total_messages),
              static_cast<unsigned long long>(
                  engine.messages().protocol_total())));
    }
  }

  // Determinism: an unmutated scenario must replay bit-identically under a
  // different thread-pool size.
  if (s.mutation == MutationKind::kNone &&
      fingerprint(engine) != replay_fingerprint(s, s.threads_replay)) {
    return OracleReport::failure(
        s.steps, fmt("nondeterminism: replay with %u threads diverged from "
                     "the %u-thread run",
                     s.threads_replay, s.threads));
  }
  return ok_rep;
  }();
  rep.mutation_applied = mutation_applied;
  return rep;
}

OracleReport run_collision_scenario(const Scenario& s) {
  collision::CollisionConfig cfg{s.a, s.b, s.c, 0};
  collision::CollisionGame game(s.n, cfg);

  // Distinct requesters via a seeded partial Fisher-Yates shuffle.
  const std::uint64_t k = std::min<std::uint64_t>(s.collision_requests, s.n);
  std::vector<std::uint32_t> procs(s.n);
  for (std::uint64_t i = 0; i < s.n; ++i) {
    procs[i] = static_cast<std::uint32_t>(i);
  }
  rng::CounterRng rng(s.engine_seed, 0xC0111D, 0);
  for (std::uint64_t i = 0; i < k; ++i) {
    const std::uint64_t j = i + rng::bounded(rng, s.n - i);
    std::swap(procs[i], procs[j]);
  }
  std::vector<std::uint32_t> reqs(procs.begin(),
                                  procs.begin() + static_cast<std::ptrdiff_t>(k));

  const collision::CollisionOutcome o = game.run(reqs, s.engine_seed);

  if (o.accepted.size() != reqs.size()) {
    return OracleReport::failure(
        0, fmt("outcome has %zu accept lists for %zu requests",
               o.accepted.size(), reqs.size()));
  }
  std::uint64_t accepts_total = 0;
  for (std::size_t r = 0; r < reqs.size(); ++r) {
    const auto& acc = o.accepted[r];
    accepts_total += acc.size();
    if (o.valid && acc.size() < s.b) {
      return OracleReport::failure(
          0, fmt("protocol reported success but request %zu has only %zu "
                 "accepts (b=%u)",
                 r, acc.size(), s.b));
    }
    std::vector<std::uint32_t> sorted = acc;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return OracleReport::failure(
          0, fmt("request %zu was accepted twice by the same processor", r));
    }
    for (std::uint32_t p : acc) {
      if (p >= s.n) {
        return OracleReport::failure(
            0, fmt("request %zu accepted by out-of-range processor %u", r, p));
      }
      if (p == reqs[r]) {
        return OracleReport::failure(
            0, fmt("request %zu accepted by its own originator %u", r, p));
      }
    }
  }
  std::uint64_t per_proc_total = 0;
  for (const auto& [p, cnt] : o.per_proc_accepts) {
    per_proc_total += cnt;
    if (cnt > s.c) {
      return OracleReport::failure(
          0, fmt("processor %u accepted %u queries, capacity c=%u", p, cnt,
                 s.c));
    }
  }
  if (per_proc_total != accepts_total) {
    return OracleReport::failure(
        0, fmt("per-processor accepts sum to %llu but accept lists hold "
               "%llu entries",
               static_cast<unsigned long long>(per_proc_total),
               static_cast<unsigned long long>(accepts_total)));
  }
  if (o.rounds_used > game.paper_round_bound()) {
    return OracleReport::failure(
        0, fmt("game ran %u rounds, budget is %u", o.rounds_used,
               game.paper_round_bound()));
  }

  // Replay must be identical: same seed, same requesters.
  collision::CollisionGame game2(s.n, cfg);
  const collision::CollisionOutcome o2 = game2.run(reqs, s.engine_seed);
  if (o2.valid != o.valid || o2.rounds_used != o.rounds_used ||
      o2.query_messages != o.query_messages ||
      o2.accept_messages != o.accept_messages || o2.accepted != o.accepted) {
    return OracleReport::failure(0, "collision game replay diverged");
  }
  return OracleReport{};
}

OracleReport check_scenario(const Scenario& s) {
  if (s.collision_only) return run_collision_scenario(s);
  if (s.runtime) return run_rt_scenario(s);
  return run_engine_scenario(s);
}

}  // namespace clb::testing
