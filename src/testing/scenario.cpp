#include "testing/scenario.hpp"

#include <cstdio>

#include "baselines/all_in_air.hpp"
#include "baselines/lm.hpp"
#include "baselines/random_seeking.hpp"
#include "baselines/rsu.hpp"
#include "core/params.hpp"
#include "core/threshold_balancer.hpp"
#include "dist/dist_balancer.hpp"
#include "baselines/local_search.hpp"
#include "baselines/stale_shortest_queue.hpp"
#include "models/adversarial.hpp"
#include "models/burst.hpp"
#include "models/diurnal.hpp"
#include "models/flash_crowd.hpp"
#include "models/geometric.hpp"
#include "models/hetero.hpp"
#include "models/multi.hpp"
#include "models/onoff.hpp"
#include "models/pareto.hpp"
#include "models/poisson_batch.hpp"
#include "models/single.hpp"
#include "models/weighted.hpp"
#include "models/zipf.hpp"
#include "rng/dist.hpp"
#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "util/check.hpp"

namespace clb::testing {

namespace {
constexpr std::uint64_t kScenarioSalt = 0x7363656E6172ULL;  // "scenar"

std::uint64_t pick(rng::CounterRng& rng, std::uint64_t lo, std::uint64_t hi) {
  return lo + rng::bounded(rng, hi - lo + 1);
}
}  // namespace

const char* to_string(ModelKind m) {
  switch (m) {
    case ModelKind::kSingle: return "single";
    case ModelKind::kGeometric: return "geometric";
    case ModelKind::kMulti: return "multi";
    case ModelKind::kAdversarial: return "adversarial";
    case ModelKind::kPoissonBatch: return "poisson-batch";
    case ModelKind::kOnOff: return "on-off";
    case ModelKind::kWeighted: return "weighted";
    case ModelKind::kBurst: return "burst";
    case ModelKind::kDiurnal: return "diurnal";
    case ModelKind::kFlashCrowd: return "flash-crowd";
    case ModelKind::kPareto: return "pareto";
    case ModelKind::kZipf: return "zipf";
    case ModelKind::kHetero: return "hetero";
  }
  return "?";
}

const char* to_string(BalancerKind b) {
  switch (b) {
    case BalancerKind::kNone: return "none";
    case BalancerKind::kThreshold: return "threshold";
    case BalancerKind::kDist: return "dist";
    case BalancerKind::kRsu: return "rsu91";
    case BalancerKind::kLm: return "lm93";
    case BalancerKind::kRandomSeeking: return "random-seeking";
    case BalancerKind::kAllInAir: return "all-in-air";
    case BalancerKind::kStaleSq: return "stale-sq";
    case BalancerKind::kLocalSearch: return "local-search";
  }
  return "?";
}

const char* to_string(MutationKind m) {
  switch (m) {
    case MutationKind::kNone: return "none";
    case MutationKind::kDropTask: return "drop-task";
    case MutationKind::kDupTask: return "dup-task";
    case MutationKind::kReorder: return "reorder";
    case MutationKind::kPhantomMessage: return "phantom-msg";
    case MutationKind::kMailboxDrop: return "mailbox-drop";
    case MutationKind::kDelaySkew: return "delay-skew";
    case MutationKind::kLinkLossNoRetransmit: return "link-loss-no-retransmit";
    case MutationKind::kDupDelivery: return "dup-delivery";
    case MutationKind::kCrashLoseQueue: return "crash-lose-queue";
    case MutationKind::kStaleFreeLunch: return "stale-free-lunch";
    case MutationKind::kStealDuplicateTask: return "steal-duplicate-task";
  }
  return "?";
}

MutationKind mutation_from_string(const std::string& name) {
  if (name == "drop-task") return MutationKind::kDropTask;
  if (name == "dup-task") return MutationKind::kDupTask;
  if (name == "reorder") return MutationKind::kReorder;
  if (name == "phantom-msg") return MutationKind::kPhantomMessage;
  if (name == "mailbox-drop") return MutationKind::kMailboxDrop;
  if (name == "delay-skew") return MutationKind::kDelaySkew;
  if (name == "link-loss-no-retransmit") {
    return MutationKind::kLinkLossNoRetransmit;
  }
  if (name == "dup-delivery") return MutationKind::kDupDelivery;
  if (name == "crash-lose-queue") return MutationKind::kCrashLoseQueue;
  if (name == "stale-free-lunch") return MutationKind::kStaleFreeLunch;
  if (name == "steal-duplicate-task") return MutationKind::kStealDuplicateTask;
  return MutationKind::kNone;
}

void clamp_to_runtime(Scenario& s) {
  s.runtime = true;
  s.collision_only = false;
  // The runtime shares load models with the engine but runs generation on
  // worker threads, so serial-generation models are out; the weighted
  // extension has no runtime policy either. Adversarial pressure maps to
  // the bursty hot-spot model, which stresses the same trigger.
  switch (s.model) {
    case ModelKind::kAdversarial:
      s.model = ModelKind::kBurst;
      break;
    case ModelKind::kWeighted:
      s.model = ModelKind::kSingle;
      break;
    default:
      break;
  }
  switch (s.balancer) {
    case BalancerKind::kNone:
    case BalancerKind::kThreshold:
    case BalancerKind::kAllInAir:
    case BalancerKind::kStaleSq:
    case BalancerKind::kLocalSearch:
      break;
    default:
      s.balancer = BalancerKind::kThreshold;
      break;
  }
  s.spread_execution = false;
  s.one_shot_preround = false;
  s.prune_satisfied = false;
  s.streaming_transfers = false;
  s.weight_based = false;
  // A runtime step can cost dozens of barrier crossings (phase_len is 1 at
  // fuzz sizes); keep the grid small so 200-scenario sweeps stay fast.
  // Fault events sampled against the original machine must be remapped (and
  // truncated) into the clamped envelope.
  if (s.n > 256) s.n = 256;
  if (s.steps > 96) s.steps = 96;
  std::vector<FaultEvent> kept;
  for (FaultEvent ev : s.faults) {
    if (ev.step >= s.steps) continue;
    ev.proc %= static_cast<std::uint32_t>(s.n);
    kept.push_back(ev);
  }
  s.faults = std::move(kept);
  std::vector<core::CrashEvent> crashes_kept;
  for (core::CrashEvent ev : s.crashes) {
    if (ev.step >= s.steps) continue;
    ev.proc %= static_cast<std::uint32_t>(s.n);
    crashes_kept.push_back(ev);
  }
  s.crashes = std::move(crashes_kept);
  // Protocol constants within the runtime's query-width limit (a <= 16)
  // and the binary-tree envelope, mirroring the engine-mutation clamps.
  if (s.a < 4) s.a = 5;
  if (s.a > 16) s.a = 16;
  if (s.b < 1) s.b = 1;
  if (s.b > 2) s.b = 2;
  if (s.c < 1) s.c = 1;
}

Scenario Scenario::sample(std::uint64_t scenario_seed, std::uint64_t index) {
  Scenario s;
  s.scenario_seed = scenario_seed;
  s.index = index;
  rng::CounterRng rng(scenario_seed, kScenarioSalt, index);

  s.engine_seed = rng();
  s.n = 1ULL << pick(rng, 5, 9);  // 32 .. 512
  s.steps = pick(rng, 48, 320);
  const unsigned thread_choices[] = {1, 1, 2, 4, 8};
  s.threads = thread_choices[pick(rng, 0, 4)];
  s.threads_replay = thread_choices[pick(rng, 0, 4)];

  // Every 4th scenario is a standalone collision game (Figure 1 / Lemma 1
  // invariants); the rest drive the full engine.
  s.collision_only = (index % 4 == 3);
  if (s.collision_only) {
    s.a = static_cast<std::uint32_t>(pick(rng, 2, 6));
    s.b = static_cast<std::uint32_t>(pick(rng, 1, s.a - 1));
    s.c = static_cast<std::uint32_t>(pick(rng, 1, 3));
    // Request densities from sparse to over-saturated; the protocol must
    // keep its <= c acceptance invariant even when it cannot succeed.
    s.collision_requests = pick(rng, 1, s.n);
    return s;
  }

  const ModelKind models[] = {
      ModelKind::kSingle,       ModelKind::kGeometric,
      ModelKind::kMulti,        ModelKind::kAdversarial,
      ModelKind::kPoissonBatch, ModelKind::kOnOff,
      ModelKind::kWeighted,
  };
  s.model = models[pick(rng, 0, 6)];
  s.p = 0.2 + 0.05 * static_cast<double>(pick(rng, 0, 8));       // 0.2..0.6
  s.eps = 0.05 + 0.05 * static_cast<double>(pick(rng, 0, 3));    // 0.05..0.2
  if (s.p + s.eps > 0.95) s.p = 0.95 - s.eps;
  s.geometric_k = static_cast<std::uint32_t>(pick(rng, 2, 6));
  s.multi_c = static_cast<std::uint32_t>(pick(rng, 2, 4));
  s.lambda = 0.3 + 0.1 * static_cast<double>(pick(rng, 0, 4));   // 0.3..0.7

  const BalancerKind balancers[] = {
      BalancerKind::kNone,       BalancerKind::kThreshold,
      BalancerKind::kThreshold,  BalancerKind::kThreshold,
      BalancerKind::kDist,       BalancerKind::kRsu,
      BalancerKind::kLm,         BalancerKind::kRandomSeeking,
      BalancerKind::kAllInAir,
  };
  s.balancer = balancers[pick(rng, 0, 8)];
  s.a = static_cast<std::uint32_t>(pick(rng, 4, 6));
  s.b = static_cast<std::uint32_t>(pick(rng, 1, 2));
  s.c = static_cast<std::uint32_t>(pick(rng, 1, 2));
  s.spread_execution = pick(rng, 0, 3) == 0;
  s.one_shot_preround = pick(rng, 0, 3) == 0;
  s.prune_satisfied = pick(rng, 0, 1) == 0;
  s.streaming_transfers = pick(rng, 0, 3) == 0;
  s.weight_based = s.model == ModelKind::kWeighted && pick(rng, 0, 1) == 0;
  s.t_min = pick(rng, 0, 2) == 0 ? 8 : 16;
  s.latency = static_cast<std::uint32_t>(pick(rng, 1, 4));

  // Fault schedule: up to 4 spikes (adversarial rows come from the
  // Adversarial model itself).
  const std::uint64_t fault_count = pick(rng, 0, 4);
  for (std::uint64_t f = 0; f < fault_count; ++f) {
    FaultEvent ev;
    ev.step = pick(rng, 1, s.steps - 1);
    ev.proc = static_cast<std::uint32_t>(rng::bounded(rng, s.n));
    ev.tasks = static_cast<std::uint32_t>(pick(rng, 8, 96));
    s.faults.push_back(ev);
  }
  s.mutation_step = pick(rng, 1, s.steps > 8 ? s.steps - 4 : s.steps);

  // Every ~4th engine scenario exercises the concurrent runtime instead of
  // the simulator. Drawn last so the runtime dimension does not perturb the
  // sampling streams of pre-existing scenario fields.
  if (pick(rng, 0, 3) == 0) clamp_to_runtime(s);

  // A third of runtime threshold scenarios run the latency fabric (delay
  // queues + dist lockstep shadow). Appended after the runtime draw for the
  // same stream-stability reason; the dist protocol caps the query width.
  if (s.runtime && s.balancer == BalancerKind::kThreshold &&
      pick(rng, 0, 2) == 0) {
    s.rt_latency = true;
    if (s.a > 8) s.a = 8;
  }

  // Link-model knobs for latency scenarios: heterogeneous jitter, bandwidth
  // caps, and lossy links with retransmit. Gated on rt_latency and appended
  // after every other draw, so lossless scenarios keep their exact streams.
  if (s.rt_latency) {
    if (pick(rng, 0, 2) == 0) {
      s.link_jitter = static_cast<std::uint32_t>(pick(rng, 1, 3));
    }
    if (pick(rng, 0, 3) == 0) {
      s.link_bandwidth = static_cast<std::uint32_t>(pick(rng, 1, 4));
    }
    if (pick(rng, 0, 3) == 0) {
      s.link_loss = 8192u * static_cast<std::uint32_t>(pick(rng, 1, 4));
    }
  }

  // Workload zoo (appended after every earlier draw, so pre-zoo scenarios
  // keep their exact streams). A quarter of scenarios swap in one of the
  // five production models; non-latency scenarios may additionally swap in
  // an information-based baseline, and liveness-aware scenarios may draw a
  // crash schedule.
  if (pick(rng, 0, 3) == 0) {
    const ModelKind zoo_models[] = {
        ModelKind::kDiurnal, ModelKind::kFlashCrowd, ModelKind::kPareto,
        ModelKind::kZipf,    ModelKind::kHetero,
    };
    s.model = zoo_models[pick(rng, 0, 4)];
    s.weight_based = false;  // zoo models generate unit weights
  }
  s.stale_staleness = 1ULL << pick(rng, 0, 4);  // 1 .. 16
  s.stale_gap = static_cast<std::uint32_t>(pick(rng, 2, 4));
  s.ls_min_load = static_cast<std::uint32_t>(pick(rng, 2, 4));
  if (!s.rt_latency && pick(rng, 0, 4) == 0) {
    s.balancer = pick(rng, 0, 1) == 0 ? BalancerKind::kStaleSq
                                      : BalancerKind::kLocalSearch;
  }
  const bool liveness_aware = s.balancer == BalancerKind::kNone ||
                              s.balancer == BalancerKind::kStaleSq ||
                              s.balancer == BalancerKind::kLocalSearch;
  if (liveness_aware && !s.rt_latency && pick(rng, 0, 2) == 0) {
    const std::uint64_t crash_count = pick(rng, 1, 2);
    for (std::uint64_t i = 0; i < crash_count; ++i) {
      core::CrashEvent ev;
      ev.step = pick(rng, 1, s.steps > 4 ? s.steps - 2 : s.steps);
      ev.proc = static_cast<std::uint32_t>(rng::bounded(rng, s.n));
      ev.down_steps = pick(rng, 2, 16);
      s.crashes.push_back(ev);
    }
  }

  // Scale knobs (arena-backed queues, deterministic work stealing): drawn
  // after every older field so pre-existing (seed, index) pairs keep their
  // exact scenarios. Stealing needs the instant fabric, so it is never
  // combined with the latency dimension.
  if (s.runtime) {
    s.rt_arena = pick(rng, 0, 1) == 0;
    if (!s.rt_latency && pick(rng, 0, 2) == 0) s.rt_steal = true;
  }
  return s;
}

std::string Scenario::describe() const {
  char buf[256];
  if (collision_only) {
    std::snprintf(buf, sizeof buf,
                  "collision n=%llu a=%u b=%u c=%u requests=%llu seed=%llu",
                  static_cast<unsigned long long>(n), a, b, c,
                  static_cast<unsigned long long>(collision_requests),
                  static_cast<unsigned long long>(engine_seed));
    return buf;
  }
  std::string lat;
  if (rt_latency) {
    lat = " lat=" + std::to_string(latency);
    if (link_jitter != 0) lat += " jit=" + std::to_string(link_jitter);
    if (link_bandwidth != 0) lat += " bw=" + std::to_string(link_bandwidth);
    if (link_loss != 0) lat += " loss=" + std::to_string(link_loss);
  }
  if (!crashes.empty()) lat += " crashes=" + std::to_string(crashes.size());
  if (rt_arena) lat += " arena";
  if (rt_steal) lat += " steal";
  std::snprintf(
      buf, sizeof buf,
      "%s n=%llu steps=%llu model=%s balancer=%s threads=%u/%u "
      "faults=%zu%s%s%s mutation=%s",
      runtime ? (rt_latency ? "runtime-lat" : "runtime") : "engine",
      static_cast<unsigned long long>(n),
      static_cast<unsigned long long>(steps), to_string(model),
      to_string(balancer), threads, threads_replay, faults.size(),
      spread_execution ? " spread" : "", streaming_transfers ? " stream" : "",
      lat.c_str(), to_string(mutation));
  return buf;
}

std::string Scenario::repro_command() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "clb_fuzz --scenario-seed=%llu --index=%llu --n=%llu "
                "--steps=%llu --max-faults=%zu --mutate=%s",
                static_cast<unsigned long long>(scenario_seed),
                static_cast<unsigned long long>(index),
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(steps), faults.size(),
                to_string(mutation));
  return buf;
}

ScenarioRuntime build_runtime(const Scenario& s) {
  CLB_CHECK(!s.collision_only, "collision scenarios have no engine runtime");
  ScenarioRuntime rt;
  switch (s.model) {
    case ModelKind::kSingle:
      rt.model = std::make_unique<models::SingleModel>(s.p, s.eps);
      break;
    case ModelKind::kGeometric:
      rt.model = std::make_unique<models::GeometricModel>(s.geometric_k);
      break;
    case ModelKind::kMulti: {
      // pmf over {0..multi_c-1} with mean < 1: mass 0.6 on zero, the rest
      // split evenly.
      std::vector<double> pmf(s.multi_c, 0.0);
      pmf[0] = 0.6;
      for (std::size_t i = 1; i < pmf.size(); ++i) {
        pmf[i] = 0.4 / static_cast<double>(pmf.size() - 1);
      }
      rt.model = std::make_unique<models::MultiModel>(std::move(pmf));
      break;
    }
    case ModelKind::kAdversarial: {
      models::AdversarialConfig ac;
      ac.cap = 4 * s.n;
      rt.model = std::make_unique<models::AdversarialModel>(ac, s.n);
      break;
    }
    case ModelKind::kPoissonBatch:
      rt.model = std::make_unique<models::PoissonBatchModel>(s.lambda);
      break;
    case ModelKind::kOnOff:
      rt.model = std::make_unique<models::OnOffModel>(models::OnOffConfig{},
                                                      s.n);
      break;
    case ModelKind::kWeighted:
      rt.model = std::make_unique<models::WeightedSingleModel>(
          s.p, s.eps, std::vector<double>{0.5, 0.25, 0.15, 0.1});
      break;
    case ModelKind::kBurst: {
      models::BurstConfig bc;
      bc.period = 16;
      bc.burst_len = 8;
      bc.hot_fraction = 0.1;
      bc.burst_rate = 6;
      rt.model = std::make_unique<models::BurstModel>(bc, s.n);
      break;
    }
    case ModelKind::kDiurnal: {
      models::DiurnalConfig dc;
      dc.period = 32;
      dc.proc_skew = 1.0 / static_cast<double>(s.n);
      rt.model = std::make_unique<models::DiurnalModel>(dc);
      break;
    }
    case ModelKind::kFlashCrowd:
      rt.model = std::make_unique<models::FlashCrowdModel>(
          models::FlashCrowdConfig{}, s.n);
      break;
    case ModelKind::kPareto:
      rt.model = std::make_unique<models::ParetoModel>(models::ParetoConfig{});
      break;
    case ModelKind::kZipf: {
      models::ZipfConfig zc;
      zc.rotate_period = 24;
      rt.model = std::make_unique<models::ZipfModel>(zc, s.n);
      break;
    }
    case ModelKind::kHetero:
      rt.model = std::make_unique<models::HeteroModel>(models::HeteroConfig{});
      break;
  }

  if (!s.crashes.empty()) {
    rt.liveness = std::make_unique<core::LivenessSchedule>(s.n, s.crashes);
  }

  switch (s.balancer) {
    case BalancerKind::kNone:
      break;
    case BalancerKind::kThreshold: {
      core::ThresholdBalancerConfig cfg;
      core::Fractions fr;
      fr.t_min = s.t_min;
      cfg.params = core::PhaseParams::from_n(s.n, fr);
      cfg.game = collision::CollisionConfig{s.a, s.b, s.c, 0};
      cfg.execution = s.spread_execution ? core::PhaseExecution::kSpread
                                         : core::PhaseExecution::kAtomic;
      cfg.one_shot_preround = s.one_shot_preround;
      cfg.prune_satisfied = s.prune_satisfied;
      cfg.streaming_transfers = s.streaming_transfers;
      cfg.weight_based = s.weight_based;
      rt.balancer = std::make_unique<core::ThresholdBalancer>(cfg);
      break;
    }
    case BalancerKind::kDist: {
      dist::DistConfig cfg;
      cfg.params = core::PhaseParams::from_n(s.n);
      cfg.latency = s.latency;
      rt.balancer = std::make_unique<dist::DistThresholdBalancer>(cfg);
      break;
    }
    case BalancerKind::kRsu:
      rt.balancer = std::make_unique<baselines::RsuBalancer>();
      break;
    case BalancerKind::kLm:
      rt.balancer = std::make_unique<baselines::LmBalancer>();
      break;
    case BalancerKind::kRandomSeeking:
      rt.balancer = std::make_unique<baselines::RandomSeekingBalancer>();
      break;
    case BalancerKind::kAllInAir:
      rt.balancer = std::make_unique<baselines::AllInAirBalancer>();
      break;
    case BalancerKind::kStaleSq:
      rt.balancer = std::make_unique<baselines::StaleShortestQueue>(
          baselines::StaleSqConfig{s.stale_staleness, s.stale_gap}, s.n,
          rt.liveness.get());
      break;
    case BalancerKind::kLocalSearch:
      rt.balancer = std::make_unique<baselines::LocalSearchBalancer>(
          baselines::LocalSearchConfig{s.ls_min_load}, s.n,
          rt.liveness.get());
      break;
  }
  return rt;
}

}  // namespace clb::testing
