// clb_fuzz: scenario fuzzer + invariant oracle entry point.
//
// Default run checks `--count` scenarios sampled from `--scenario-seed`.
// A failing scenario is shrunk (n, fault count, steps) and reported as one
// replayable command line. `--mutate=<kind> --expect-failure` flips the
// harness into self-test mode: it PASSES iff the oracle catches the
// deliberately broken behaviour.
#include <cstdint>

#include "testing/fuzzer.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using clb::testing::FuzzOptions;
  using clb::testing::kNoOverride;

  clb::util::Cli cli(
      "clb_fuzz: randomized scenario fuzzer with a full-state invariant "
      "oracle (conservation by identity, FIFO order, collision-protocol "
      "invariants, message attribution, cross-thread determinism)");
  const auto* seed = cli.flag_u64("scenario-seed", 1, "scenario stream seed");
  const auto* count = cli.flag_u64("count", 200, "scenarios to check");
  const auto* index =
      cli.flag_u64("index", kNoOverride, "replay exactly this index");
  const auto* n = cli.flag_u64("n", kNoOverride, "override machine size");
  const auto* steps = cli.flag_u64("steps", kNoOverride, "override run length");
  const auto* max_faults =
      cli.flag_u64("max-faults", kNoOverride, "cap fault events");
  const auto* mutate = cli.flag_str(
      "mutate", "none",
      "inject a broken behaviour: drop-task|dup-task|reorder|phantom-msg|"
      "mailbox-drop|delay-skew|link-loss-no-retransmit|dup-delivery|"
      "crash-lose-queue|stale-free-lunch");
  const auto* expect_failure = cli.flag_bool(
      "expect-failure", false,
      "succeed iff the oracle catches at least one scenario (self-test)");
  const auto* runtime_only = cli.flag_bool(
      "runtime-only", false,
      "clamp every scenario onto rt::Runtime worker threads (TSan sweeps); "
      "every other threshold scenario runs the latency fabric");
  const auto* workload_zoo = cli.flag_bool(
      "workload-zoo", false,
      "drive every scenario through the production workload zoo on "
      "rt::Runtime: zoo models + information baselines rotate by index, "
      "every third baseline scenario crashes a processor mid-run");
  const auto* no_shrink =
      cli.flag_bool("no-shrink", false, "report failures without shrinking");
  const auto* verbose = cli.flag_bool("verbose", false, "per-scenario lines");
  cli.parse(argc, argv);

  FuzzOptions opt;
  opt.scenario_seed = *seed;
  opt.count = *count;
  opt.index = *index;
  opt.n = *n;
  opt.steps = *steps;
  opt.max_faults = *max_faults;
  opt.mutate = clb::testing::mutation_from_string(*mutate);
  opt.expect_failure = *expect_failure;
  opt.runtime_only = *runtime_only;
  opt.workload_zoo = *workload_zoo;
  opt.shrink = !*no_shrink;
  opt.verbose = *verbose;
  return clb::testing::run_fuzz(opt);
}
