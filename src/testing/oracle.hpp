// The invariant oracle: runs one scenario step by step against a shadow
// model of the machine and checks full-state invariants after every step.
//
// Checked per step:
//   * exact task conservation *by identity* — every (birth_step, origin)
//     pair the oracle knows about is present exactly once (count-based
//     conservation is checked by the engine itself; the identity check is
//     what catches a balancer that loses one task and books it as drained);
//   * FIFO order preservation — for scheduled-transfer balancers the oracle
//     predicts each queue's exact contents (generation appends, consumption
//     pops the front, each captured transfer moves the newest `count` tasks
//     to the receiver's back in their old order, clamped like the engine)
//     and compares element-wise;
//   * weight accounting — each processor's cached weight_load equals the
//     sum of its queued tasks' weights;
//   * the engine's own count conservation identity.
//
// Immediate-mode balancers (AllInAir: drain_all + deposit) reshuffle queues
// outside the transfer API, so per-queue prediction is impossible; the
// oracle falls back to *multiset* identity (the global bag of
// (birth, origin) pairs must match prediction) and resynchronises its
// shadow from the actual queues each step.
//
// End of run:
//   * per-phase message attribution — a threshold balancer's summed
//     PhaseStats::messages must equal the engine's global protocol_total()
//     (a message accounted outside any phase window escapes every per-phase
//     delta check; this is the only check that catches it);
//   * determinism — a fresh runtime re-runs the scenario with a different
//     thread-pool size and must produce a bit-identical state fingerprint.
//
// Scenarios with a MutationKind inject one deliberately broken behaviour
// with consistent-looking accounting; the oracle is expected to FAIL such
// runs (the harness's self-test, exercised via clb_fuzz --expect-failure).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/balancer.hpp"
#include "sim/engine.hpp"
#include "testing/scenario.hpp"

namespace clb::testing {

/// Verdict of one oracle run.
struct OracleReport {
  bool ok = true;
  /// Step at which the first violation was detected (meaningless when ok).
  std::uint64_t fail_step = 0;
  /// Human-readable description of the first violated invariant.
  std::string what;
  /// Whether the scenario's mutation actually fired (a mutation needs a
  /// non-empty queue to bite; degenerate runs may never offer one).
  bool mutation_applied = false;

  static OracleReport failure(std::uint64_t step, std::string what) {
    OracleReport r;
    r.ok = false;
    r.fail_step = step;
    r.what = std::move(what);
    return r;
  }
};

/// Balancer decorator: runs the inner policy, snapshots the transfers it
/// scheduled this step (Engine::pending_transfers is cleared once applied,
/// so the oracle must read it from inside on_step), then fires an optional
/// hook — the mutation injection point, deliberately placed *after* the
/// capture so a mutation can never rewrite the evidence it is judged by.
class CaptureBalancer final : public sim::Balancer {
 public:
  explicit CaptureBalancer(sim::Balancer* inner) : inner_(inner) {}

  [[nodiscard]] std::string name() const override {
    return inner_ ? "capture(" + inner_->name() + ")" : "capture(none)";
  }
  void on_step(sim::Engine& engine) override {
    if (inner_ != nullptr) inner_->on_step(engine);
    captured_ = engine.pending_transfers();
    if (hook_) hook_(engine);
  }
  void on_reset(sim::Engine& engine) override {
    captured_.clear();
    if (inner_ != nullptr) inner_->on_reset(engine);
  }

  [[nodiscard]] const std::vector<sim::Transfer>& captured() const {
    return captured_;
  }
  void set_post_capture_hook(std::function<void(sim::Engine&)> hook) {
    hook_ = std::move(hook);
  }

 private:
  sim::Balancer* inner_;
  std::vector<sim::Transfer> captured_;
  std::function<void(sim::Engine&)> hook_;
};

/// Runs an engine scenario under the oracle. Scenario must not be
/// collision_only.
OracleReport run_engine_scenario(const Scenario& s);

/// Runs a runtime (rt::Runtime) scenario. Threshold and unbalanced runs
/// execute in lockstep with a shadow sim::Engine and are compared
/// task-by-task (per-queue identity in FIFO order — the check that convicts
/// the kMailboxDrop mutation, whose sender-side books stay consistent);
/// all-in-air runs (whose per-processor scatter streams deliberately differ
/// from the serial baseline) are checked for count conservation and
/// bit-identical determinism under a different worker count.
OracleReport run_rt_scenario(const Scenario& s);

/// Runs a standalone collision-game scenario: <= c accepts per processor,
/// valid => >= b distinct non-self acceptors per request, round budget
/// respected, message counts consistent, and an identical replay.
OracleReport run_collision_scenario(const Scenario& s);

/// Dispatches on s.collision_only.
OracleReport check_scenario(const Scenario& s);

}  // namespace clb::testing
