// Umbrella public header for the clb library.
//
// Quickstart:
//   #include "clb.hpp"
//   auto model    = clb::models::SingleModel(0.4, 0.1);
//   auto params   = clb::core::PhaseParams::from_n(1 << 14);
//   auto balancer = clb::core::ThresholdBalancer({.params = params});
//   clb::sim::Engine eng({.n = 1 << 14, .seed = 42}, &model, &balancer);
//   eng.run(10'000);
//   // eng.running_max_load() <= ~(log2 log2 n)^2, per Theorem 1.
#pragma once

#include "analysis/bounds.hpp"
#include "analysis/collision_meanfield.hpp"
#include "analysis/markov.hpp"
#include "analysis/occupancy.hpp"
#include "baselines/all_in_air.hpp"
#include "baselines/lauer.hpp"
#include "baselines/lm.hpp"
#include "baselines/random_seeking.hpp"
#include "baselines/rsu.hpp"
#include "bib/bib.hpp"
#include "collision/collision.hpp"
#include "core/params.hpp"
#include "core/phase_stats.hpp"
#include "core/threshold_balancer.hpp"
#include "dist/dist_balancer.hpp"
#include "dist/network.hpp"
#include "gossip/push_sum.hpp"
#include "models/adversarial.hpp"
#include "models/burst.hpp"
#include "models/geometric.hpp"
#include "models/multi.hpp"
#include "models/onoff.hpp"
#include "models/poisson_batch.hpp"
#include "models/single.hpp"
#include "models/trace.hpp"
#include "models/weighted.hpp"
#include "net/topology.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "obs/views.hpp"
#include "queueing/event_queue.hpp"
#include "queueing/supermarket.hpp"
#include "rng/dist.hpp"
#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro.hpp"
#include "sim/engine.hpp"
#include "stats/histogram.hpp"
#include "stats/moments.hpp"
#include "stats/timeseries.hpp"
#include "stats/trial_set.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
