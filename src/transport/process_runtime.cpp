#include "transport/process_runtime.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace clb::transport {

ProcessRuntime::ProcessRuntime(ShardRunConfig cfg, WireKind wire)
    : cfg_(std::move(cfg)), wire_(wire) {
  CLB_CHECK(cfg_.workers >= 1, "transport: need at least one shard process");
  CLB_CHECK(cfg_.workers <= 64, "transport: shard-process fan-out capped at 64");
  CLB_CHECK(cfg_.workers <= cfg_.n, "transport: more shards than processors");
  chunk_ = cfg_.n / cfg_.workers;
  extra_ = cfg_.n % cfg_.workers;
  split_ = extra_ * (chunk_ + 1);
  spawn();
}

ProcessRuntime::ProcessRuntime(const rt::RtConfig& cfg, const ModelSpec& model)
    : ProcessRuntime(
          [&] {
            CLB_CHECK(cfg.transport != rt::Transport::kInProc,
                      "ProcessRuntime needs a socket transport "
                      "(RtConfig::transport kUds or kTcp)");
            CLB_CHECK(cfg.latency == 0,
                      "the cross-process transport runs the instant schedule");
            CLB_CHECK(cfg.crashes.empty() && cfg.drop_transfer_message == 0,
                      "rt fault hooks are not carried by this transport");
            CLB_CHECK(cfg.trace == nullptr && !cfg.telemetry,
                      "tracing/telemetry are in-proc runtime features");
            CLB_CHECK(!cfg.steal.enabled,
                      "work stealing is not carried by this transport yet");
            ShardRunConfig sc;
            sc.n = cfg.n;
            sc.seed = cfg.seed;
            sc.workers = cfg.workers != 0 ? cfg.workers : 1;
            sc.deterministic = cfg.deterministic;
            sc.policy = cfg.policy;
            sc.params = cfg.params;
            sc.game = cfg.game;
            sc.spin_work = cfg.spin_work;
            sc.track_sojourn = cfg.track_sojourn;
            sc.time_sojourn = cfg.time_sojourn;
            sc.model = model;
            return sc;
          }(),
          cfg.transport == rt::Transport::kTcp ? WireKind::kTcp
                                               : WireKind::kUds) {}

void ProcessRuntime::spawn() {
  const unsigned w = cfg_.workers;

  // Full pre-fork mesh: peer_ends[i][j] is child i's data link to child j.
  std::vector<std::vector<Endpoint>> peer_ends(w);
  for (unsigned i = 0; i < w; ++i) peer_ends[i].resize(w);
  for (unsigned i = 0; i < w; ++i) {
    for (unsigned j = i + 1; j < w; ++j) {
      auto [a, b] = make_stream_pair(wire_);
      peer_ends[i][j] = std::move(a);
      peer_ends[j][i] = std::move(b);
    }
  }
  std::vector<Endpoint> ctl_child(w);
  ctl_.resize(w);
  for (unsigned i = 0; i < w; ++i) {
    auto [parent, child] = make_stream_pair(wire_);
    ctl_[i] = std::move(parent);
    ctl_child[i] = std::move(child);
  }

  pids_.resize(w, -1);
  for (unsigned i = 0; i < w; ++i) {
    const pid_t pid = ::fork();
    CLB_CHECK(pid >= 0, "transport: fork failed");
    if (pid == 0) {
      // Child: keep only our own ends. Everything else is closed so a dead
      // peer surfaces as EOF instead of a hang.
      for (unsigned k = 0; k < w; ++k) {
        ctl_[k].close_fd();
        if (k == i) continue;
        ctl_child[k].close_fd();
        for (unsigned j = 0; j < w; ++j) peer_ends[k][j].close_fd();
      }
      shard_worker_main(std::move(ctl_child[i]), std::move(peer_ends[i]));
      ::_exit(0);
    }
    pids_[i] = pid;
  }
  // Coordinator: drop the child-side fds (peer_ends/ctl_child destructors
  // close them as these vectors go out of scope).

  for (unsigned i = 0; i < w; ++i) {
    ShardRunConfig child_cfg = cfg_;
    child_cfg.index = i;
    Writer payload;
    child_cfg.serialize(payload);
    ctl_[i].send_frame(FrameType::kConfig, payload.data());
  }
  for (unsigned i = 0; i < w; ++i) {
    const Frame f = ctl_[i].recv_frame();
    CLB_CHECK(f.type == FrameType::kConfigAck,
              "transport: expected kConfigAck from a shard worker");
  }
}

ProcessRuntime::~ProcessRuntime() {
  for (Endpoint& c : ctl_) {
    if (c.valid()) c.send_frame(FrameType::kShutdown, nullptr, 0);
  }
  for (std::size_t i = 0; i < pids_.size(); ++i) {
    if (pids_[i] < 0) continue;
    int status = 0;
    const pid_t r = ::waitpid(pids_[i], &status, 0);
    CLB_CHECK(r == pids_[i], "transport: waitpid failed");
    CLB_CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0,
              "transport: a shard worker exited abnormally");
  }
}

unsigned ProcessRuntime::owner_of(std::uint64_t p) const {
  if (p < split_) return static_cast<unsigned>(p / (chunk_ + 1));
  return static_cast<unsigned>(extra_ + (p - split_) / chunk_);
}

void ProcessRuntime::run(std::uint64_t steps) {
  if (steps == 0) return;
  CLB_CHECK(!collected_, "transport: run() after collect()");
  const auto t0 = std::chrono::steady_clock::now();
  Writer w;
  w.u64(steps);
  for (Endpoint& c : ctl_) c.send_frame(FrameType::kRun, w.data());

  // Barrier service: every child hits the same superstep schedule, so the
  // coordinator sees homogeneous waves — W kBarrier frames (answered with
  // one kRelease concatenating all blobs) until the W kDone frames land.
  std::vector<Frame> wave(cfg_.workers);
  for (;;) {
    for (unsigned i = 0; i < cfg_.workers; ++i) {
      wave[i] = ctl_[i].recv_frame();
      CLB_CHECK(wave[i].type == wave[0].type,
                "transport: superstep schedule divergence across workers");
    }
    if (wave[0].type == FrameType::kDone) break;
    CLB_CHECK(wave[0].type == FrameType::kBarrier,
              "transport: unexpected frame in the barrier service loop");
    Writer release;
    for (const Frame& f : wave) {
      release.bytes(f.payload.data(), f.payload.size());
    }
    for (Endpoint& c : ctl_) {
      c.send_frame(FrameType::kRelease, release.data());
    }
  }
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  step_base_ += steps;
  log_.push_back(Command{Command::Kind::kRun, steps, 0, {}});
}

void ProcessRuntime::deposit(std::uint32_t p, sim::Task t) {
  CLB_CHECK(!collected_, "transport: deposit() after collect()");
  CLB_CHECK(p < cfg_.n, "deposit target out of range");
  Writer w;
  w.u64(p);
  serialize_task(w, rt::RtTask{t, 0});
  ctl_[owner_of(p)].send_frame(FrameType::kDeposit, w.data());
  log_.push_back(Command{Command::Kind::kDeposit, 0, p, t});
}

void ProcessRuntime::collect() {
  if (collected_) return;
  for (Endpoint& c : ctl_) c.send_frame(FrameType::kCollect, nullptr, 0);

  procs_.clear();
  procs_.resize(cfg_.n);
  for (unsigned i = 0; i < cfg_.workers; ++i) {
    const Frame f = ctl_[i].recv_frame();
    CLB_CHECK(f.type == FrameType::kState,
              "transport: expected kState from a shard worker");
    Reader r(f.payload);
    ShardState st = ShardState::deserialize(r);
    CLB_CHECK(r.exhausted(), "transport: trailing bytes after kState payload");
    const auto [b, e] = util::block_range(cfg_.n, cfg_.workers, i);
    CLB_CHECK(st.begin == b && st.end == e && st.procs.size() == e - b,
              "transport: shard state does not match the partition");
    for (std::uint64_t p = b; p < e; ++p) {
      procs_[p] = std::move(st.procs[p - b]);
    }
    msg_.queries += st.msg.queries;
    msg_.accepts += st.msg.accepts;
    msg_.id_messages += st.msg.id_messages;
    msg_.control += st.msg.control;
    msg_.transfers += st.msg.transfers;
    msg_.tasks_moved += st.msg.tasks_moved;
    clamped_ += st.clamped;
    deposited_ += st.deposited;
    ledger_.insert(ledger_.end(), st.ledger.begin(), st.ledger.end());
    sojourn_steps_.merge(st.sojourn_steps);
    sojourn_us_.merge(st.sojourn_us);
    wire_stats_.merge(st.wire);
    if (i == 0) {
      running_max_ = st.running_max;
      phases_ = std::move(st.phases);
    }
  }
  std::sort(ledger_.begin(), ledger_.end(),
            [](const rt::LedgerEntry& a, const rt::LedgerEntry& b) {
              if (a.step != b.step) return a.step < b.step;
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });
  collected_ = true;
}

const rt::RtProcessor& ProcessRuntime::processor(std::uint64_t p) {
  collect();
  return procs_[p];
}

std::uint64_t ProcessRuntime::load(std::uint64_t p) {
  collect();
  return procs_[p].queue.size();
}

std::uint64_t ProcessRuntime::total_load() {
  collect();
  std::uint64_t sum = 0;
  for (const rt::RtProcessor& pr : procs_) sum += pr.queue.size();
  return sum;
}

std::uint64_t ProcessRuntime::total_generated() {
  collect();
  std::uint64_t sum = 0;
  for (const rt::RtProcessor& pr : procs_) sum += pr.generated;
  return sum;
}

std::uint64_t ProcessRuntime::total_consumed() {
  collect();
  std::uint64_t sum = 0;
  for (const rt::RtProcessor& pr : procs_) sum += pr.consumed;
  return sum;
}

std::uint64_t ProcessRuntime::running_max_load() {
  collect();
  return running_max_;
}

bool ProcessRuntime::conservation_holds() {
  collect();
  return total_generated() + deposited_ == total_consumed() + total_load();
}

sim::MessageCounters ProcessRuntime::messages() {
  collect();
  return msg_;
}

std::uint64_t ProcessRuntime::clamped_transfers() {
  collect();
  return clamped_;
}

std::vector<rt::LedgerEntry> ProcessRuntime::ledger() {
  collect();
  return ledger_;
}

const std::vector<rt::RtPhaseSummary>& ProcessRuntime::phases() {
  collect();
  return phases_;
}

stats::IntHistogram ProcessRuntime::sojourn_steps() {
  collect();
  return sojourn_steps_;
}

stats::IntHistogram ProcessRuntime::sojourn_us() {
  collect();
  return sojourn_us_;
}

std::uint64_t ProcessRuntime::deposited() {
  collect();
  return deposited_;
}

const obs::WireStats& ProcessRuntime::wire_stats() {
  collect();
  return wire_stats_;
}

}  // namespace clb::transport
