#include "transport/endpoint.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/check.hpp"

namespace clb::transport {

namespace {

// Generous kernel buffers: one superstep's all-to-all batch flush must fit
// in flight while every peer is still writing (blocking writes + full
// buffers on a cycle would deadlock; see docs/transport.md "Backpressure").
constexpr int kSockBuf = 1 << 20;

void tune_socket(int fd) {
  (void)setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &kSockBuf, sizeof(kSockBuf));
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &kSockBuf, sizeof(kSockBuf));
}

void write_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    // MSG_NOSIGNAL: a dead peer surfaces as EPIPE, not a process signal.
    const ssize_t w = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      CLB_CHECK(false, "transport: socket write failed (peer died?)");
    }
    off += static_cast<std::size_t>(w);
  }
}

}  // namespace

Endpoint::~Endpoint() { close_fd(); }

Endpoint& Endpoint::operator=(Endpoint&& o) noexcept {
  if (this != &o) {
    close_fd();
    fd_ = o.fd_;
    o.fd_ = -1;
    next_seq_ = o.next_seq_;
    bytes_sent_ = o.bytes_sent_;
    bytes_received_ = o.bytes_received_;
    frames_received_ = o.frames_received_;
    reader_ = std::move(o.reader_);
  }
  return *this;
}

int Endpoint::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Endpoint::close_fd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Endpoint::send_frame(FrameType type, const std::uint8_t* payload,
                          std::size_t len) {
  CLB_CHECK(fd_ >= 0, "transport: send on a closed endpoint");
  const std::vector<std::uint8_t> wire =
      encode_frame(type, ++next_seq_, payload, len);
  write_all(fd_, wire.data(), wire.size());
  bytes_sent_ += wire.size();
}

Frame Endpoint::recv_frame() {
  CLB_CHECK(fd_ >= 0, "transport: recv on a closed endpoint");
  Frame f;
  for (;;) {
    const DecodeStatus st = reader_.next(f);
    if (st == DecodeStatus::kOk) {
      ++frames_received_;
      return f;
    }
    if (st != DecodeStatus::kNeedMore) {
      CLB_CHECK(false, reader_.error().c_str());
    }
    std::uint8_t buf[64 * 1024];
    const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      CLB_CHECK(false, "transport: socket read failed");
    }
    CLB_CHECK(r != 0, "transport: peer closed the connection mid-stream");
    bytes_received_ += static_cast<std::uint64_t>(r);
    reader_.feed(buf, static_cast<std::size_t>(r));
  }
}

std::pair<Endpoint, Endpoint> make_stream_pair(WireKind kind) {
  if (kind == WireKind::kUds) {
    int fds[2];
    CLB_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
              "transport: socketpair(AF_UNIX) failed");
    tune_socket(fds[0]);
    tune_socket(fds[1]);
    return {Endpoint(fds[0]), Endpoint(fds[1])};
  }

  // TCP: ephemeral loopback listener, connect + accept, listener gone.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  CLB_CHECK(lfd >= 0, "transport: socket(AF_INET) failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  CLB_CHECK(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
            "transport: bind(127.0.0.1:0) failed");
  CLB_CHECK(::listen(lfd, 1) == 0, "transport: listen failed");
  socklen_t alen = sizeof(addr);
  CLB_CHECK(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen) == 0,
            "transport: getsockname failed");

  const int cfd = ::socket(AF_INET, SOCK_STREAM, 0);
  CLB_CHECK(cfd >= 0, "transport: socket(AF_INET) failed");
  CLB_CHECK(
      ::connect(cfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "transport: connect(127.0.0.1) failed");
  const int afd = ::accept(lfd, nullptr, nullptr);
  CLB_CHECK(afd >= 0, "transport: accept failed");
  ::close(lfd);

  const int one = 1;
  (void)setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  (void)setsockopt(afd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  tune_socket(cfd);
  tune_socket(afd);
  return {Endpoint(cfd), Endpoint(afd)};
}

}  // namespace clb::transport
