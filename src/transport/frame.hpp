// Length-prefixed frame codec for the cross-process transport.
//
// Every byte that crosses a socket travels inside one frame:
//
//   offset  size  field
//        0     4  magic   "CLBF" (little-endian 0x46424C43)
//        4     1  version (kWireVersion)
//        5     1  type    (FrameType)
//        6     2  channel (reserved, 0)
//        8     8  seq     per-connection stream sequence number, 1-based,
//                         strictly consecutive (net::SeqKey vocabulary:
//                         this is the frame's send_step on the link)
//       16     4  payload length in bytes
//       20     4  CRC-32 over the header (with this field zeroed) + payload
//       24     *  payload
//
// The decoder is incremental (feed partial reads, get frames out) and
// convicts, rather than tolerates, every malformed input: bad magic, bad
// version, bad CRC, oversized payload, and — at the Endpoint layer — a
// duplicate or out-of-order sequence number. A transport that silently
// resynchronised would let exactly the corruption the shadow-fabric
// cross-check exists to catch slip through as "noise".
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace clb::transport {

inline constexpr std::uint32_t kFrameMagic = 0x46424C43u;  // "CLBF"
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 24;
/// Safety valve against garbage length fields; generous for any batch the
/// protocol can produce (transfers are T/4 tasks of 16 bytes each).
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

enum class FrameType : std::uint8_t {
  kConfig = 1,    ///< coordinator -> worker: RtConfig + ModelSpec + seed
  kConfigAck = 2, ///< worker -> coordinator: handshake complete
  kRun = 3,       ///< coordinator -> worker: execute N steps
  kDeposit = 4,   ///< coordinator -> worker: append a task to an owned queue
  kCollect = 5,   ///< coordinator -> worker: ship final state
  kState = 6,     ///< worker -> coordinator: serialized shard state
  kShutdown = 7,  ///< coordinator -> worker: exit cleanly
  kBarrier = 8,   ///< worker -> coordinator: superstep barrier + blob
  kRelease = 9,   ///< coordinator -> worker: barrier release + all blobs
  kDone = 10,     ///< worker -> coordinator: run command finished
  kBatch = 11,    ///< worker -> worker: one superstep's protocol messages
};

struct Frame {
  FrameType type = FrameType::kBatch;
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;
};

enum class DecodeStatus : std::uint8_t {
  kOk,          ///< one frame decoded
  kNeedMore,    ///< buffer holds a prefix of a frame; feed more bytes
  kBadMagic,
  kBadVersion,
  kBadCrc,
  kTooLong,     ///< payload length exceeds kMaxFramePayload
};

[[nodiscard]] const char* decode_status_name(DecodeStatus s);

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMore;
  std::size_t consumed = 0;  ///< bytes to discard from the front on kOk
  Frame frame;
};

/// Encodes one frame (header + CRC + payload copy).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    FrameType type, std::uint64_t seq, const std::uint8_t* payload,
    std::size_t payload_len);

[[nodiscard]] inline std::vector<std::uint8_t> encode_frame(
    FrameType type, std::uint64_t seq,
    const std::vector<std::uint8_t>& payload) {
  return encode_frame(type, seq, payload.data(), payload.size());
}

/// Attempts to decode one frame from the front of [data, data+len).
[[nodiscard]] DecodeResult decode_frame(const std::uint8_t* data,
                                        std::size_t len);

/// Incremental decoder with sequence checking: feed() bytes as they arrive,
/// next() yields frames. The stream sequence must be exactly last+1 (first
/// frame: 1); anything else is a hard error naming the kind of violation.
class FrameReader {
 public:
  /// Appends raw bytes from the wire.
  void feed(const std::uint8_t* data, std::size_t len);

  /// Decodes the next complete frame into `out`. Returns kOk, kNeedMore, or
  /// a decode error. Sequence violations surface through error() and return
  /// kBadMagic-style hard failure via the dedicated statuses below.
  [[nodiscard]] DecodeStatus next(Frame& out);

  /// Human-readable description of the last hard error ("" when none).
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::uint64_t frames_decoded() const { return last_seq_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix, compacted lazily
  std::uint64_t last_seq_ = 0;
  std::string error_;
};

/// Sequence-violation statuses the FrameReader reports on top of the raw
/// decode errors. Kept in DecodeStatus's numeric space so one switch covers
/// both layers.
inline constexpr DecodeStatus kDupSeq = static_cast<DecodeStatus>(101);
inline constexpr DecodeStatus kGapSeq = static_cast<DecodeStatus>(102);

}  // namespace clb::transport
