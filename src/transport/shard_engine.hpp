// The per-process shard engine: one worker process's half of the
// cross-process runtime. Owns a contiguous processor shard, runs the exact
// instant-fabric protocol schedule of rt::Runtime (generate/consume, then
// for the threshold policy the classification / collision-round / query-tree
// / staged-transfer supersteps), but every cross-shard interaction crosses a
// real socket:
//
//   * protocol messages accumulate into one per-peer batch and are flushed
//     as a single kBatch frame at every barrier entry (per-link FIFO order
//     means a drain that has consumed k batches from a peer has seen every
//     message that peer sent before its k-th barrier — the superstep
//     quiescence PhaseBarrier provided in one address space);
//   * every barrier is an explicit control-plane exchange with the
//     coordinator: kBarrier carries this worker's reduction blob (a u64
//     vector), kRelease returns all workers' blobs — replacing the padded
//     Slot arrays (loads, classification counts, active requests, staged
//     counts) AND the leader scan: the scan lists ride the blobs and every
//     worker runs the same merge, so the global child numbering needs no
//     leader-owned memory.
//
// The schedule's determinism contract is unchanged: canonical-key sorts,
// count-based collision acceptance and prefix-scan transfer numbering make
// the run bit-identical to rt::Runtime (and therefore sim::Engine) for any
// shard count — which is precisely what lets the in-memory shadow convict a
// corrupted frame (see transport/shadow.hpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "collision/collision.hpp"
#include "core/params.hpp"
#include "obs/wire.hpp"
#include "rt/runtime.hpp"
#include "sim/counters.hpp"
#include "stats/histogram.hpp"
#include "transport/endpoint.hpp"
#include "transport/wire.hpp"

namespace clb::transport {

/// Everything a shard worker needs to run, distributed by the coordinator
/// in the kConfig handshake frame. Mirrors the supported subset of
/// rt::RtConfig plus the worker's own identity.
struct ShardRunConfig {
  std::uint64_t n = 1024;
  std::uint64_t seed = 1;
  std::uint32_t workers = 1;
  std::uint32_t index = 0;  ///< this worker's shard index
  bool deterministic = true;
  rt::RtPolicy policy = rt::RtPolicy::kThreshold;
  core::PhaseParams params{};
  collision::CollisionConfig game{};
  std::uint32_t spin_work = 0;
  bool track_sojourn = false;
  bool time_sojourn = false;
  /// Test-only fault injection: corrupt the k-th kTransfer message this
  /// worker serialises to a remote shard (1-based; 0 = off) by flipping the
  /// first payload task's birth_step low bit BEFORE the frame is signed —
  /// the CRC accepts it, all counters stay consistent, and only the
  /// shadow-fabric cross-check (queue identity / sojourn histogram) can
  /// convict it. The frame-corrupt mutation.
  std::uint64_t corrupt_transfer_frame = 0;
  ModelSpec model{};

  void serialize(Writer& w) const;
  [[nodiscard]] static ShardRunConfig deserialize(Reader& r);
};

/// A worker's end-of-run state, shipped to the coordinator on kCollect.
/// Histograms travel as sparse (value, count) pairs.
struct ShardState {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::vector<rt::RtProcessor> procs;  ///< [begin, end), protocol flags zeroed
  sim::MessageCounters msg;
  std::uint64_t clamped = 0;
  std::uint64_t deposited = 0;
  std::vector<rt::LedgerEntry> ledger;
  stats::IntHistogram sojourn_steps;
  stats::IntHistogram sojourn_us;
  std::uint64_t running_max = 0;               ///< worker 0 only
  std::vector<rt::RtPhaseSummary> phases;      ///< worker 0 only
  obs::WireStats wire;

  void serialize(Writer& w) const;
  [[nodiscard]] static ShardState deserialize(Reader& r);
};

/// Entry point for a forked shard worker: performs the kConfig handshake on
/// `control`, builds the engine, acks, and serves coordinator commands
/// (kRun / kDeposit / kCollect) until kShutdown. `peers[i]` is the data
/// link to worker i (invalid at this worker's own index). Never returns
/// normally — the caller _exit()s after it does.
void shard_worker_main(Endpoint control, std::vector<Endpoint> peers);

/// The engine itself. Exposed (rather than buried in shard_worker_main) so
/// unit tests can drive a single-worker instance in-process.
class ShardEngine {
 public:
  ShardEngine(ShardRunConfig cfg, Endpoint control,
              std::vector<Endpoint> peers);

  /// Sends kConfigAck, then blocks serving coordinator commands until
  /// kShutdown arrives.
  void serve();

 private:
  struct Node {
    std::uint64_t slot = 0;
    std::uint32_t proc = 0;
    std::uint32_t root = 0;
    std::uint32_t targets[16] = {};
    std::uint32_t accepted_mask = 0;
    std::uint32_t accept_count = 0;
    std::uint32_t round_replies = 0;
    bool active = false;
    std::uint8_t pending_children = 0;
    std::uint8_t status_nonapp = 0;
    std::vector<std::uint32_t> accepted;
  };

  struct ScanEntry {
    std::uint64_t g = 0;
    std::uint64_t base = 0;
    std::uint32_t root = 0;
    std::uint32_t count = 0;
    std::uint32_t child[2] = {};
  };

  struct Staged {
    std::uint32_t from = 0;
    std::uint32_t to = 0;
  };

  struct PeerChannel {
    Endpoint ep;
    Writer batch;                      // messages accumulated this superstep
    std::uint32_t batch_count = 0;
    std::uint64_t batches_consumed = 0;
  };

  void run(std::uint64_t steps);
  void step_once(std::uint64_t step);
  void run_phase(std::uint64_t step);
  std::uint64_t run_level(std::uint64_t step, std::uint64_t phase_index,
                          std::uint32_t level, std::uint64_t node_count);
  void send(std::uint32_t dest_proc, Msg&& m);
  void send_transfer(std::uint64_t step, std::uint32_t root,
                     std::uint32_t partner, std::uint64_t count);
  void apply_staged_transfers(std::uint64_t step, std::uint64_t base,
                              std::uint64_t total);
  void apply_transfer(const Msg& m);
  void drain(std::vector<Msg>& out);
  /// Barrier + allgather: flushes peer batches (threshold policy), sends
  /// kBarrier with `blob`, blocks on kRelease, returns all workers' blobs
  /// in worker order.
  std::vector<std::vector<std::uint64_t>> allgather(
      const std::vector<std::uint64_t>& blob);
  void collect_state();
  [[nodiscard]] unsigned owner_of(std::uint64_t p) const;
  [[nodiscard]] rt::RtProcessor& proc(std::uint64_t p);
  [[nodiscard]] std::uint32_t now_us() const;

  ShardRunConfig cfg_;
  std::unique_ptr<sim::LoadModel> model_;
  Endpoint control_;
  std::vector<PeerChannel> peers_;
  std::vector<rt::RtProcessor> procs_;  // own shard only, index p - begin_
  std::uint64_t begin_ = 0, end_ = 0;
  std::uint64_t chunk_ = 1, extra_ = 0, split_ = 0;
  bool flush_data_ = false;       // threshold policy keeps a data plane
  std::uint64_t data_rounds_ = 0; // flushing barriers passed so far

  // Lockstep protocol state (the exact Worker fields of rt::Runtime).
  std::uint64_t step_base_ = 0;
  std::uint64_t phase_epoch_ = 0, level_epoch_ = 0, round_epoch_ = 0;
  std::uint64_t phase_count_ = 0;
  std::uint64_t sys_load_ = 0;
  std::uint64_t ph_requests_ = 0;
  std::uint32_t ph_levels_ = 0, ph_rounds_ = 0;
  std::vector<Node> nodes_, next_nodes_;
  std::vector<std::uint32_t> heavy_local_;
  std::vector<ScanEntry> scan_;
  std::vector<Staged> staged_;
  std::uint64_t transfer_seen_ = 0;
  std::vector<Msg> self_pending_;
  std::vector<Msg> batch_;
  std::uint64_t phase_matched_ = 0;  // folded into the end-of-step blob

  // Worker-0 aggregates for the phase summary.
  std::vector<std::uint32_t> phase_heavy_all_;
  std::uint64_t phase_light_total_ = 0;
  std::vector<rt::RtPhaseSummary> phases_;
  std::uint64_t running_max_ = 0;

  // Outputs.
  sim::MessageCounters msg_;
  std::uint64_t clamped_ = 0;
  std::uint64_t deposited_ = 0;
  std::vector<rt::LedgerEntry> ledger_;
  stats::IntHistogram sojourn_steps_, sojourn_us_;
  obs::WireStats wire_;
  std::uint64_t corrupt_countdown_seen_ = 0;  // kTransfer frames serialised

  std::chrono::steady_clock::time_point start_tp_;
};

}  // namespace clb::transport
