#include "transport/shadow.hpp"

#include <sstream>

#include "util/check.hpp"

namespace clb::transport {

namespace {

/// Appends "name: transport=x shadow=y" and trips the report. Only the
/// first divergence is recorded; later ones are symptoms of the same split.
template <typename T>
bool diverge(ShadowReport& rep, const std::string& where, const T& got,
             const T& want) {
  if (rep.ok) {
    std::ostringstream os;
    os << where << ": transport=" << got << " shadow=" << want;
    rep.ok = false;
    rep.divergence = os.str();
  }
  return false;
}

template <typename T>
bool check_eq(ShadowReport& rep, const std::string& where, const T& got,
              const T& want) {
  if (got == want) return true;
  return diverge(rep, where, got, want);
}

}  // namespace

ShadowReport shadow_check(ProcessRuntime& pr) {
  const ShardRunConfig& cfg = pr.config();
  CLB_CHECK(cfg.deterministic,
            "the shadow cross-check requires a deterministic run");
  pr.collect();

  rt::RtConfig rc;
  rc.n = cfg.n;
  rc.seed = cfg.seed;
  rc.workers = cfg.workers;
  rc.deterministic = true;
  rc.policy = cfg.policy;
  rc.params = cfg.params;
  rc.game = cfg.game;
  rc.spin_work = 0;  // spin is wall-clock padding; identical outcomes
  rc.track_sojourn = cfg.track_sojourn;
  rc.time_sojourn = false;  // wall-clock sojourn can never be bit-compared

  const auto model = cfg.model.make(cfg.n);
  rt::Runtime shadow(rc, model.get());
  for (const Command& c : pr.command_log()) {
    if (c.kind == Command::Kind::kRun) {
      shadow.run(c.steps);
    } else {
      shadow.deposit(c.proc, c.task);
    }
  }

  ShadowReport rep;

  // Scalars first: the cheapest conviction names the broadest split.
  check_eq(rep, "running_max_load", pr.running_max_load(),
           shadow.running_max_load());
  check_eq(rep, "clamped_transfers", pr.clamped_transfers(),
           shadow.clamped_transfers());
  const sim::MessageCounters tm = pr.messages();
  const sim::MessageCounters sm = shadow.messages();
  check_eq(rep, "messages.queries", tm.queries, sm.queries);
  check_eq(rep, "messages.accepts", tm.accepts, sm.accepts);
  check_eq(rep, "messages.id_messages", tm.id_messages, sm.id_messages);
  check_eq(rep, "messages.control", tm.control, sm.control);
  check_eq(rep, "messages.transfers", tm.transfers, sm.transfers);
  check_eq(rep, "messages.tasks_moved", tm.tasks_moved, sm.tasks_moved);

  // Transfer ledger: entry-by-entry in the canonical (step, from, to) order.
  const std::vector<rt::LedgerEntry> tl = pr.ledger();
  const std::vector<rt::LedgerEntry> sl = shadow.ledger();
  if (check_eq(rep, "ledger.size", tl.size(), sl.size())) {
    for (std::size_t i = 0; i < tl.size(); ++i) {
      if (tl[i].step == sl[i].step && tl[i].from == sl[i].from &&
          tl[i].to == sl[i].to && tl[i].count == sl[i].count) {
        continue;
      }
      std::ostringstream os;
      os << "(step " << tl[i].step << " " << tl[i].from << "->" << tl[i].to
         << " x" << tl[i].count << ")";
      std::ostringstream ws;
      ws << "(step " << sl[i].step << " " << sl[i].from << "->" << sl[i].to
         << " x" << sl[i].count << ")";
      diverge(rep, "ledger[" + std::to_string(i) + "]", os.str(), ws.str());
      break;
    }
  }

  // Phase log, heavy lists included.
  const auto& tp = pr.phases();
  const auto& sp = shadow.phases();
  if (check_eq(rep, "phases.size", tp.size(), sp.size())) {
    for (std::size_t i = 0; i < tp.size(); ++i) {
      const std::string at = "phases[" + std::to_string(i) + "].";
      check_eq(rep, at + "phase_index", tp[i].phase_index, sp[i].phase_index);
      check_eq(rep, at + "start_step", tp[i].start_step, sp[i].start_step);
      check_eq(rep, at + "end_step", tp[i].end_step, sp[i].end_step);
      check_eq(rep, at + "num_heavy", tp[i].num_heavy, sp[i].num_heavy);
      check_eq(rep, at + "num_light", tp[i].num_light, sp[i].num_light);
      check_eq(rep, at + "matched", tp[i].matched, sp[i].matched);
      check_eq(rep, at + "unmatched", tp[i].unmatched, sp[i].unmatched);
      check_eq(rep, at + "requests", tp[i].requests, sp[i].requests);
      check_eq(rep, at + "levels_used", tp[i].levels_used, sp[i].levels_used);
      check_eq(rep, at + "collision_rounds", tp[i].collision_rounds,
               sp[i].collision_rounds);
      if (check_eq(rep, at + "heavy_procs.size", tp[i].heavy_procs.size(),
                   sp[i].heavy_procs.size())) {
        for (std::size_t k = 0; k < tp[i].heavy_procs.size(); ++k) {
          if (!check_eq(rep, at + "heavy_procs[" + std::to_string(k) + "]",
                        tp[i].heavy_procs[k], sp[i].heavy_procs[k])) {
            break;
          }
        }
      }
      if (!rep.ok) break;
    }
  }

  // Per-queue task identity: a corrupted payload lands here (or, if the
  // victim task was consumed, in the sojourn histogram below).
  for (std::uint64_t p = 0; p < cfg.n && rep.ok; ++p) {
    const rt::RtProcessor& a = pr.processor(p);
    const rt::RtProcessor& b = shadow.processor(p);
    const std::string at = "proc[" + std::to_string(p) + "].";
    check_eq(rep, at + "generated", a.generated, b.generated);
    check_eq(rep, at + "consumed", a.consumed, b.consumed);
    check_eq(rep, at + "consumed_on_origin", a.consumed_on_origin,
             b.consumed_on_origin);
    check_eq(rep, at + "tasks_sent", a.tasks_sent, b.tasks_sent);
    check_eq(rep, at + "tasks_received", a.tasks_received, b.tasks_received);
    check_eq(rep, at + "balance_initiations", a.balance_initiations,
             b.balance_initiations);
    if (!check_eq(rep, at + "queue.size", a.queue.size(), b.queue.size())) {
      continue;
    }
    for (std::size_t k = 0; k < a.queue.size(); ++k) {
      const sim::Task& x = a.queue[k].task;
      const sim::Task& y = b.queue[k].task;
      if (x.birth_step == y.birth_step && x.origin == y.origin &&
          x.weight == y.weight) {
        continue;
      }
      std::ostringstream os, ws;
      os << "(birth " << x.birth_step << " origin " << x.origin << " weight "
         << x.weight << ")";
      ws << "(birth " << y.birth_step << " origin " << y.origin << " weight "
         << y.weight << ")";
      diverge(rep, at + "queue[" + std::to_string(k) + "]", os.str(),
              ws.str());
      break;
    }
  }

  // Step-counted sojourn: convicts a corrupted-then-consumed task whose
  // queue slot has since drained.
  if (cfg.track_sojourn && rep.ok) {
    const stats::IntHistogram th = pr.sojourn_steps();
    const stats::IntHistogram sh = shadow.sojourn_steps();
    check_eq(rep, "sojourn_steps.total", th.total(), sh.total());
    if (rep.ok && th.counts() != sh.counts()) {
      diverge(rep, "sojourn_steps.counts", std::string("<histogram>"),
              std::string("<histogram>"));
    }
  }

  check_eq(rep, "conservation", pr.conservation_holds(), true);
  return rep;
}

}  // namespace clb::transport
