// transport::ProcessRuntime — the coordinator side of the cross-process
// runtime: forks one OS process per shard, wires a full data-plane mesh plus
// one control link per child BEFORE forking (children inherit connected
// sockets and never dial), distributes the run configuration in a kConfig
// handshake, services the superstep barrier as explicit control-plane
// messages (kBarrier in, kRelease with every worker's reduction blob out —
// the cross-process PhaseBarrier), and collects ledgers, counters, queues
// and phase logs at kCollect.
//
// The public surface mirrors rt::Runtime's inspection API so harnesses can
// swap transports without changing their measurement code, and every
// deposit/run is recorded in a command log so the shadow-fabric cross-check
// (transport/shadow.hpp) can replay the exact run on the in-memory runtime.
//
// Fork discipline: all forks happen in the constructor, which must run
// before the calling process spawns threads it cannot afford to lose (a
// forked child inherits only the calling thread). rt::Runtime joins its
// workers in its destructor, so "construct ProcessRuntime, then build the
// rt shadow" is always safe. Children exit via _exit(0) — no unwinding, no
// atexit — and the destructor reaps them, convicting any child that aborted.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "rt/runtime.hpp"
#include "transport/endpoint.hpp"
#include "transport/shard_engine.hpp"

namespace clb::transport {

/// One replayable coordinator action, for the shadow cross-check.
struct Command {
  enum class Kind : std::uint8_t { kRun, kDeposit };
  Kind kind = Kind::kRun;
  std::uint64_t steps = 0;   // kRun
  std::uint32_t proc = 0;    // kDeposit
  sim::Task task{};          // kDeposit
};

class ProcessRuntime {
 public:
  /// Forks cfg.workers shard processes over `wire`. cfg.index is ignored
  /// (stamped per child). Blocks until every child acked its config.
  ProcessRuntime(ShardRunConfig cfg, WireKind wire);

  /// Convenience seam from the rt vocabulary: maps RtConfig::transport to
  /// the wire kind (must not be kInProc) and checks that every rt feature
  /// this transport does not carry (latency fabric, crash schedules, drop
  /// injection, zoo policies, telemetry, tracing) is off.
  ProcessRuntime(const rt::RtConfig& cfg, const ModelSpec& model);

  ~ProcessRuntime();

  ProcessRuntime(const ProcessRuntime&) = delete;
  ProcessRuntime& operator=(const ProcessRuntime&) = delete;

  /// Executes `steps` on all shard processes, servicing their barriers
  /// until every child reports kDone. Callable repeatedly.
  void run(std::uint64_t steps);

  /// Appends a task to p's queue (routed to the owning child). Mirrors
  /// rt::Runtime::deposit; recorded in the command log.
  void deposit(std::uint32_t p, sim::Task t);

  /// Ships every child's final state to the coordinator and merges it.
  /// Idempotent; implied by the first inspection call. No run() or
  /// deposit() may follow.
  void collect();

  // ---- Inspection (after collect(); all mirror rt::Runtime) ----
  [[nodiscard]] const ShardRunConfig& config() const { return cfg_; }
  [[nodiscard]] WireKind wire() const { return wire_; }
  [[nodiscard]] std::uint64_t n() const { return cfg_.n; }
  [[nodiscard]] unsigned worker_count() const { return cfg_.workers; }
  [[nodiscard]] std::uint64_t step() const { return step_base_; }
  [[nodiscard]] const rt::RtProcessor& processor(std::uint64_t p);
  [[nodiscard]] std::uint64_t load(std::uint64_t p);
  [[nodiscard]] std::uint64_t total_load();
  [[nodiscard]] std::uint64_t total_generated();
  [[nodiscard]] std::uint64_t total_consumed();
  [[nodiscard]] std::uint64_t running_max_load();
  [[nodiscard]] bool conservation_holds();
  [[nodiscard]] sim::MessageCounters messages();
  [[nodiscard]] std::uint64_t clamped_transfers();
  [[nodiscard]] std::vector<rt::LedgerEntry> ledger();
  [[nodiscard]] const std::vector<rt::RtPhaseSummary>& phases();
  [[nodiscard]] stats::IntHistogram sojourn_steps();
  [[nodiscard]] stats::IntHistogram sojourn_us();
  [[nodiscard]] std::uint64_t deposited();
  /// Wire accounting merged over every child's links (bytes, frames,
  /// barrier count, barrier RTT histogram).
  [[nodiscard]] const obs::WireStats& wire_stats();
  /// Wall-clock seconds spent inside run() so far.
  [[nodiscard]] double wall_seconds() const { return wall_seconds_; }

  /// Every run()/deposit() issued, in order — the shadow replay script.
  [[nodiscard]] const std::vector<Command>& command_log() const {
    return log_;
  }

 private:
  void spawn();
  [[nodiscard]] unsigned owner_of(std::uint64_t p) const;

  ShardRunConfig cfg_;
  WireKind wire_ = WireKind::kUds;
  std::vector<Endpoint> ctl_;   // coordinator end of each child's control link
  std::vector<pid_t> pids_;
  std::uint64_t chunk_ = 1, extra_ = 0, split_ = 0;
  std::uint64_t step_base_ = 0;
  double wall_seconds_ = 0;
  std::vector<Command> log_;

  // Merged state (valid once collected_).
  bool collected_ = false;
  std::vector<rt::RtProcessor> procs_;
  sim::MessageCounters msg_;
  std::uint64_t clamped_ = 0;
  std::uint64_t deposited_ = 0;
  std::vector<rt::LedgerEntry> ledger_;
  stats::IntHistogram sojourn_steps_, sojourn_us_;
  std::uint64_t running_max_ = 0;
  std::vector<rt::RtPhaseSummary> phases_;
  obs::WireStats wire_stats_;
};

}  // namespace clb::transport
