// The shadow-fabric cross-check: every deterministic cross-process run is
// re-executed on the in-memory rt::Runtime (same config, same worker count,
// same command log of run()/deposit() calls) and the two outcomes are
// compared field by field — transfer ledger, message counters, phase log
// (heavy lists included), per-queue TASK IDENTITY (birth step, origin,
// weight — not just counts), clamp counter, running max load and the
// step-counted sojourn histogram.
//
// This is the conviction layer the wire CRC cannot provide: a frame whose
// payload was corrupted BEFORE signing carries a valid CRC and keeps every
// count self-consistent, but the shadow sees a task that was never born
// with that identity and names the first divergence (the frame-corrupt
// mutation test drives exactly this path).
#pragma once

#include <string>

#include "transport/process_runtime.hpp"

namespace clb::transport {

struct ShadowReport {
  bool ok = true;
  /// Human-readable description of the FIRST divergence ("" when ok).
  std::string divergence;
};

/// Replays `pr`'s command log on an in-proc rt::Runtime and compares.
/// Requires a deterministic config (bit-identity is only promised there).
/// Calls pr.collect() — no further run()/deposit() on pr afterwards.
[[nodiscard]] ShadowReport shadow_check(ProcessRuntime& pr);

}  // namespace clb::transport
