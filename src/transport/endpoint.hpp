// transport::Endpoint — one side of a framed, sequenced byte stream.
//
// Wraps a connected stream socket (AF_UNIX socketpair for kUds, a
// pre-connected loopback TCP pair for kTcp — same codec either way) and
// speaks the frame.hpp codec over it: send_frame() stamps the next stream
// sequence number and writes the whole encoded frame; recv_frame() blocks
// until one full frame is decoded, CRC- and sequence-checked. Any codec
// violation aborts the process — on this transport a malformed frame is
// always a bug or a corruption, never something to paper over.
//
// All pairs are created in the coordinator BEFORE fork, so workers inherit
// fully connected sockets and no child ever dials anything (no races, no
// listener lifetime, and the TCP path needs no port coordination).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "obs/wire.hpp"
#include "transport/frame.hpp"

namespace clb::transport {

/// Wire selection for a process pair. Mirrors rt::Transport minus kInProc.
enum class WireKind : std::uint8_t { kUds, kTcp };

class Endpoint {
 public:
  Endpoint() = default;
  explicit Endpoint(int fd) : fd_(fd) {}
  ~Endpoint();

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;
  Endpoint(Endpoint&& o) noexcept { *this = std::move(o); }
  Endpoint& operator=(Endpoint&& o) noexcept;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  /// Releases ownership of the fd without closing it.
  int release();
  void close_fd();

  /// Blocking full write of one encoded frame; stamps the next sequence.
  void send_frame(FrameType type, const std::uint8_t* payload,
                  std::size_t len);
  void send_frame(FrameType type, const std::vector<std::uint8_t>& payload) {
    send_frame(type, payload.data(), payload.size());
  }

  /// Blocking read of the next frame. Aborts on EOF (peer died) and on any
  /// codec or sequence violation.
  [[nodiscard]] Frame recv_frame();

  /// Byte/frame accounting for the wire gauges (RTT histograms are kept by
  /// the layer that knows what a round trip is).
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t bytes_received() const {
    return bytes_received_;
  }
  [[nodiscard]] std::uint64_t frames_sent() const { return next_seq_; }
  [[nodiscard]] std::uint64_t frames_received() const {
    return frames_received_;
  }
  void account_into(obs::WireStats& s) const {
    s.bytes_sent += bytes_sent_;
    s.bytes_received += bytes_received_;
    s.frames_sent += next_seq_;
    s.frames_received += frames_received_;
  }

 private:
  int fd_ = -1;
  std::uint64_t next_seq_ = 0;  // last sequence sent
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t frames_received_ = 0;
  FrameReader reader_;
};

/// Creates a connected stream pair of the given kind. kUds uses
/// socketpair(AF_UNIX, SOCK_STREAM); kTcp binds a 127.0.0.1 ephemeral
/// listener, connects, accepts, sets TCP_NODELAY and closes the listener.
/// Both ends get enlarged send/receive buffers (the all-to-all batch flush
/// relies on kernel buffering to stay deadlock-free; see docs/transport.md).
[[nodiscard]] std::pair<Endpoint, Endpoint> make_stream_pair(WireKind kind);

}  // namespace clb::transport
