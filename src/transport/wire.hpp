// Payload serialisation for the cross-process transport: a bounds-checked
// little-endian Writer/Reader pair (on top of net::wire), the subset of
// rt::RtConfig a shard worker needs, a serialisable load-model spec (the
// coordinator distributes the spec, each process constructs its own
// identical model), and the protocol-message / final-state encodings.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/params.hpp"
#include "collision/collision.hpp"
#include "models/burst.hpp"
#include "net/wire.hpp"
#include "rt/mailbox.hpp"
#include "sim/model.hpp"
#include "util/check.hpp"

namespace clb::transport {

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { net::wire::put_u32(buf_, v); }
  void u64(std::uint64_t v) { net::wire::put_u64(buf_, v); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void seq_key(const net::SeqKey& k) { net::wire::put_seq_key(buf_, k); }
  void bytes(const std::uint8_t* p, std::size_t n) {
    buf_.insert(buf_.end(), p, p + n);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  /// Direct mutable access, for test-only payload corruption hooks.
  [[nodiscard]] std::vector<std::uint8_t>& raw() { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Aborts on truncated input: the frame CRC already vouched for transport
/// integrity, so a short read here is a codec bug, not wire noise.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len)
      : data_(data), len_(len) {}
  explicit Reader(const std::vector<std::uint8_t>& v)
      : Reader(v.data(), v.size()) {}

  std::uint8_t u8() { return data_[need(1)]; }
  std::uint32_t u32() { return net::wire::get_u32(data_ + need(4)); }
  std::uint64_t u64() { return net::wire::get_u64(data_ + need(8)); }
  double f64() { return std::bit_cast<double>(u64()); }
  net::SeqKey seq_key() {
    return net::wire::get_seq_key(data_ + need(net::wire::kSeqKeyWireSize));
  }

  [[nodiscard]] bool exhausted() const { return pos_ == len_; }
  [[nodiscard]] std::size_t remaining() const { return len_ - pos_; }

 private:
  std::size_t need(std::size_t n) {
    CLB_CHECK(pos_ + n <= len_, "wire payload truncated");
    const std::size_t at = pos_;
    pos_ += n;
    return at;
  }

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

/// Serialisable load-model description. Only the parallel-safe counter-RNG
/// models the runtime accepts are representable; each process constructs
/// its model from the spec, so model state never crosses the wire.
struct ModelSpec {
  enum class Kind : std::uint8_t { kSingle = 1, kBurst = 2 };

  Kind kind = Kind::kSingle;
  double p = 0.45;    // Single
  double eps = 0.1;   // Single
  models::BurstConfig burst{};

  [[nodiscard]] static ModelSpec single(double p, double eps) {
    ModelSpec s;
    s.kind = Kind::kSingle;
    s.p = p;
    s.eps = eps;
    return s;
  }

  [[nodiscard]] static ModelSpec bursty(const models::BurstConfig& bc) {
    ModelSpec s;
    s.kind = Kind::kBurst;
    s.burst = bc;
    return s;
  }

  [[nodiscard]] std::unique_ptr<sim::LoadModel> make(std::uint64_t n) const;

  void serialize(Writer& w) const;
  [[nodiscard]] static ModelSpec deserialize(Reader& r);
};

/// One protocol message on the wire — the value-type twin of rt::Message
/// (no intrusive link; the fabric SeqKey rides along so the codec is
/// complete for latency-fabric vocabularies even though the instant-mode
/// protocol leaves it zero).
struct Msg {
  rt::MsgKind kind = rt::MsgKind::kQuery;
  std::uint64_t key = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
  net::SeqKey seq{};
  std::vector<rt::RtTask> payload;
};

void serialize_msg(Writer& w, const Msg& m);
[[nodiscard]] Msg deserialize_msg(Reader& r);

void serialize_task(Writer& w, const rt::RtTask& t);
[[nodiscard]] rt::RtTask deserialize_task(Reader& r);

void serialize_params(Writer& w, const core::PhaseParams& p);
[[nodiscard]] core::PhaseParams deserialize_params(Reader& r);

void serialize_game(Writer& w, const collision::CollisionConfig& g);
[[nodiscard]] collision::CollisionConfig deserialize_game(Reader& r);

}  // namespace clb::transport
