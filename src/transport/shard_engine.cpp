#include "transport/shard_engine.hpp"

#include <algorithm>

#include "rng/splitmix64.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace clb::transport {

namespace {

// Must match rt::Runtime (and the threshold balancer) bit for bit.
constexpr std::uint64_t kGameSalt = 0x70686173656761ULL;  // "phasega"
constexpr std::uint32_t kMaxA = 16;

/// Busy work standing in for a task's compute cost (same loop as rt).
inline void spin(std::uint32_t iters) {
  std::uint64_t x = 0x9E3779B97F4A7C15ULL;
  for (std::uint32_t i = 0; i < iters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
#if defined(__GNUC__) || defined(__clang__)
    asm volatile("" : "+r"(x));
#endif
  }
}

bool key_less(const Msg& a, const Msg& b) {
  if (a.key != b.key) return a.key < b.key;
  return static_cast<int>(a.kind) < static_cast<int>(b.kind);
}

void serialize_hist(Writer& w, const stats::IntHistogram& h) {
  // Sparse (value, count) pairs: sojourn_us values can reach the run's
  // wall-clock in microseconds, so a dense dump would dwarf the frame cap.
  const std::vector<std::uint64_t>& counts = h.counts();
  std::uint64_t pairs = 0;
  for (const std::uint64_t c : counts) {
    if (c != 0) ++pairs;
  }
  w.u64(pairs);
  for (std::uint64_t v = 0; v < counts.size(); ++v) {
    if (counts[v] != 0) {
      w.u64(v);
      w.u64(counts[v]);
    }
  }
}

stats::IntHistogram deserialize_hist(Reader& r) {
  stats::IntHistogram h;
  const std::uint64_t pairs = r.u64();
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const std::uint64_t v = r.u64();
    const std::uint64_t c = r.u64();
    h.add(v, c);
  }
  return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardRunConfig / ShardState wire codecs
// ---------------------------------------------------------------------------

void ShardRunConfig::serialize(Writer& w) const {
  w.u64(n);
  w.u64(seed);
  w.u32(workers);
  w.u32(index);
  w.u8(deterministic ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(policy));
  serialize_params(w, params);
  serialize_game(w, game);
  w.u32(spin_work);
  w.u8(track_sojourn ? 1 : 0);
  w.u8(time_sojourn ? 1 : 0);
  w.u64(corrupt_transfer_frame);
  model.serialize(w);
}

ShardRunConfig ShardRunConfig::deserialize(Reader& r) {
  ShardRunConfig c;
  c.n = r.u64();
  c.seed = r.u64();
  c.workers = r.u32();
  c.index = r.u32();
  c.deterministic = r.u8() != 0;
  c.policy = static_cast<rt::RtPolicy>(r.u8());
  c.params = deserialize_params(r);
  c.game = deserialize_game(r);
  c.spin_work = r.u32();
  c.track_sojourn = r.u8() != 0;
  c.time_sojourn = r.u8() != 0;
  c.corrupt_transfer_frame = r.u64();
  c.model = ModelSpec::deserialize(r);
  return c;
}

void ShardState::serialize(Writer& w) const {
  w.u64(begin);
  w.u64(end);
  w.u32(static_cast<std::uint32_t>(procs.size()));
  for (const rt::RtProcessor& p : procs) {
    w.u32(static_cast<std::uint32_t>(p.queue.size()));
    for (const rt::RtTask& t : p.queue) serialize_task(w, t);
    w.u64(p.generated);
    w.u64(p.consumed);
    w.u64(p.consumed_on_origin);
    w.u64(p.tasks_sent);
    w.u64(p.tasks_received);
    w.u64(p.balance_initiations);
  }
  w.u64(msg.queries);
  w.u64(msg.accepts);
  w.u64(msg.id_messages);
  w.u64(msg.control);
  w.u64(msg.transfers);
  w.u64(msg.tasks_moved);
  w.u64(clamped);
  w.u64(deposited);
  w.u32(static_cast<std::uint32_t>(ledger.size()));
  for (const rt::LedgerEntry& e : ledger) {
    w.u64(e.step);
    w.u32(e.from);
    w.u32(e.to);
    w.u32(e.count);
  }
  serialize_hist(w, sojourn_steps);
  serialize_hist(w, sojourn_us);
  w.u64(running_max);
  w.u32(static_cast<std::uint32_t>(phases.size()));
  for (const rt::RtPhaseSummary& ps : phases) {
    w.u64(ps.phase_index);
    w.u64(ps.start_step);
    w.u64(ps.end_step);
    w.u64(ps.num_heavy);
    w.u64(ps.num_light);
    w.u64(ps.matched);
    w.u64(ps.unmatched);
    w.u64(ps.requests);
    w.u32(ps.levels_used);
    w.u32(ps.collision_rounds);
    w.u8(ps.forced ? 1 : 0);
    w.u8(ps.completed ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(ps.heavy_procs.size()));
    for (const std::uint32_t h : ps.heavy_procs) w.u32(h);
  }
  w.u64(wire.bytes_sent);
  w.u64(wire.bytes_received);
  w.u64(wire.frames_sent);
  w.u64(wire.frames_received);
  w.u64(wire.barriers);
  serialize_hist(w, wire.barrier_rtt_us);
}

ShardState ShardState::deserialize(Reader& r) {
  ShardState s;
  s.begin = r.u64();
  s.end = r.u64();
  const std::uint32_t np = r.u32();
  s.procs.resize(np);
  for (rt::RtProcessor& p : s.procs) {
    const std::uint32_t q = r.u32();
    for (std::uint32_t i = 0; i < q; ++i) p.queue.push_back(deserialize_task(r));
    p.generated = r.u64();
    p.consumed = r.u64();
    p.consumed_on_origin = r.u64();
    p.tasks_sent = r.u64();
    p.tasks_received = r.u64();
    p.balance_initiations = r.u64();
  }
  s.msg.queries = r.u64();
  s.msg.accepts = r.u64();
  s.msg.id_messages = r.u64();
  s.msg.control = r.u64();
  s.msg.transfers = r.u64();
  s.msg.tasks_moved = r.u64();
  s.clamped = r.u64();
  s.deposited = r.u64();
  const std::uint32_t nl = r.u32();
  s.ledger.resize(nl);
  for (rt::LedgerEntry& e : s.ledger) {
    e.step = r.u64();
    e.from = r.u32();
    e.to = r.u32();
    e.count = r.u32();
  }
  s.sojourn_steps = deserialize_hist(r);
  s.sojourn_us = deserialize_hist(r);
  s.running_max = r.u64();
  const std::uint32_t nph = r.u32();
  s.phases.resize(nph);
  for (rt::RtPhaseSummary& ps : s.phases) {
    ps.phase_index = r.u64();
    ps.start_step = r.u64();
    ps.end_step = r.u64();
    ps.num_heavy = r.u64();
    ps.num_light = r.u64();
    ps.matched = r.u64();
    ps.unmatched = r.u64();
    ps.requests = r.u64();
    ps.levels_used = r.u32();
    ps.collision_rounds = r.u32();
    ps.forced = r.u8() != 0;
    ps.completed = r.u8() != 0;
    const std::uint32_t nh = r.u32();
    ps.heavy_procs.resize(nh);
    for (std::uint32_t& h : ps.heavy_procs) h = r.u32();
  }
  s.wire.bytes_sent = r.u64();
  s.wire.bytes_received = r.u64();
  s.wire.frames_sent = r.u64();
  s.wire.frames_received = r.u64();
  s.wire.barriers = r.u64();
  s.wire.barrier_rtt_us = deserialize_hist(r);
  return s;
}

// ---------------------------------------------------------------------------
// Worker entry point
// ---------------------------------------------------------------------------

void shard_worker_main(Endpoint control, std::vector<Endpoint> peers) {
  Frame f = control.recv_frame();
  CLB_CHECK(f.type == FrameType::kConfig,
            "transport: worker expected kConfig as the first control frame");
  Reader r(f.payload);
  ShardRunConfig cfg = ShardRunConfig::deserialize(r);
  CLB_CHECK(r.exhausted(), "transport: trailing bytes after kConfig payload");
  ShardEngine engine(std::move(cfg), std::move(control), std::move(peers));
  engine.serve();
}

// ---------------------------------------------------------------------------
// ShardEngine
// ---------------------------------------------------------------------------

ShardEngine::ShardEngine(ShardRunConfig cfg, Endpoint control,
                         std::vector<Endpoint> peers)
    : cfg_(std::move(cfg)),
      control_(std::move(control)),
      start_tp_(std::chrono::steady_clock::now()) {
  CLB_CHECK(cfg_.workers >= 1 && cfg_.index < cfg_.workers,
            "transport: worker index out of range");
  CLB_CHECK(cfg_.n >= 1 && cfg_.n <= (1ULL << 31),
            "transport: processor ids must fit comfortably in 32 bits");
  CLB_CHECK(cfg_.workers <= cfg_.n, "transport: more shards than processors");
  CLB_CHECK(cfg_.policy == rt::RtPolicy::kThreshold ||
                cfg_.policy == rt::RtPolicy::kNone,
            "the cross-process transport runs policies none and threshold");
  model_ = cfg_.model.make(cfg_.n);
  CLB_CHECK(!model_->serial_generation(),
            "transport requires a parallel-safe (counter-RNG) model");
  if (cfg_.policy == rt::RtPolicy::kThreshold) {
    CLB_CHECK(cfg_.params.n == cfg_.n,
              "phase params must be realised for this n (PhaseParams::from_n)");
    CLB_CHECK(cfg_.game.b >= 1 && cfg_.game.b <= 2,
              "query trees are binary: b must be 1 or 2");
    CLB_CHECK(cfg_.game.a >= 2 && cfg_.game.a <= kMaxA &&
                  static_cast<std::uint64_t>(cfg_.game.a) < cfg_.n,
              "collision fan-out a out of range");
    CLB_CHECK(cfg_.game.c >= 1, "collision capacity c must be >= 1");
  }
  flush_data_ = cfg_.policy == rt::RtPolicy::kThreshold;

  chunk_ = cfg_.n / cfg_.workers;
  extra_ = cfg_.n % cfg_.workers;
  split_ = extra_ * (chunk_ + 1);
  const auto [b, e] = util::block_range(cfg_.n, cfg_.workers, cfg_.index);
  begin_ = b;
  end_ = e;
  procs_.resize(end_ - begin_);

  peers_.reserve(peers.size());
  for (Endpoint& ep : peers) {
    PeerChannel ch;
    ch.ep = std::move(ep);
    peers_.push_back(std::move(ch));
  }
  for (unsigned i = 0; i < cfg_.workers; ++i) {
    if (i == cfg_.index) continue;
    CLB_CHECK(i < peers_.size() && peers_[i].ep.valid(),
              "transport: missing data link to a peer shard");
  }
}

unsigned ShardEngine::owner_of(std::uint64_t p) const {
  if (p < split_) return static_cast<unsigned>(p / (chunk_ + 1));
  return static_cast<unsigned>(extra_ + (p - split_) / chunk_);
}

rt::RtProcessor& ShardEngine::proc(std::uint64_t p) {
  CLB_DCHECK(p >= begin_ && p < end_, "processor outside the owned shard");
  return procs_[p - begin_];
}

std::uint32_t ShardEngine::now_us() const {
  return static_cast<std::uint32_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_tp_)
          .count());
}

void ShardEngine::serve() {
  control_.send_frame(FrameType::kConfigAck, nullptr, 0);
  for (;;) {
    Frame f = control_.recv_frame();
    switch (f.type) {
      case FrameType::kRun: {
        Reader r(f.payload);
        const std::uint64_t steps = r.u64();
        CLB_CHECK(r.exhausted(), "transport: malformed kRun payload");
        run(steps);
        control_.send_frame(FrameType::kDone, nullptr, 0);
        break;
      }
      case FrameType::kDeposit: {
        Reader r(f.payload);
        const std::uint64_t p = r.u64();
        rt::RtTask t = deserialize_task(r);
        CLB_CHECK(r.exhausted(), "transport: malformed kDeposit payload");
        CLB_CHECK(owner_of(p) == cfg_.index,
                  "transport: deposit routed to the wrong shard");
        t.birth_us = cfg_.time_sojourn ? now_us() : 0;
        proc(p).queue.push_back(t);
        ++deposited_;
        break;
      }
      case FrameType::kCollect:
        collect_state();
        break;
      case FrameType::kShutdown:
        return;
      default:
        CLB_CHECK(false, "transport: unexpected control frame in worker");
    }
  }
}

void ShardEngine::collect_state() {
  ShardState st;
  st.begin = begin_;
  st.end = end_;
  st.procs = procs_;
  st.msg = msg_;
  st.clamped = clamped_;
  st.deposited = deposited_;
  st.ledger = ledger_;
  st.sojourn_steps = sojourn_steps_;
  st.sojourn_us = sojourn_us_;
  st.running_max = running_max_;
  st.phases = phases_;
  st.wire = wire_;
  control_.account_into(st.wire);
  for (const PeerChannel& ch : peers_) {
    if (ch.ep.valid()) ch.ep.account_into(st.wire);
  }
  Writer w;
  st.serialize(w);
  control_.send_frame(FrameType::kState, w.data());
}

void ShardEngine::run(std::uint64_t steps) {
  for (std::uint64_t s = 0; s < steps; ++s) step_once(step_base_ + s);
  step_base_ += steps;
}

// ---------------------------------------------------------------------------
// Superstep plumbing
// ---------------------------------------------------------------------------

std::vector<std::vector<std::uint64_t>> ShardEngine::allgather(
    const std::vector<std::uint64_t>& blob) {
  if (flush_data_) {
    // Exactly one kBatch frame per peer per flushing barrier — possibly
    // empty. The receiver counts batches, not messages, so a drain knows
    // when it has everything (see drain()).
    for (unsigned i = 0; i < cfg_.workers; ++i) {
      if (i == cfg_.index) continue;
      PeerChannel& ch = peers_[i];
      Writer payload;
      payload.u32(ch.batch_count);
      payload.bytes(ch.batch.data().data(), ch.batch.size());
      ch.ep.send_frame(FrameType::kBatch, payload.data());
      ch.batch = Writer();
      ch.batch_count = 0;
    }
    ++data_rounds_;
  }
  Writer w;
  w.u32(static_cast<std::uint32_t>(blob.size()));
  for (const std::uint64_t v : blob) w.u64(v);
  const auto t0 = std::chrono::steady_clock::now();
  control_.send_frame(FrameType::kBarrier, w.data());
  Frame f = control_.recv_frame();
  CLB_CHECK(f.type == FrameType::kRelease,
            "transport: expected kRelease at a barrier");
  const auto rtt = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  wire_.barrier_rtt_us.add(std::min<std::uint64_t>(rtt, 1000000));
  ++wire_.barriers;

  Reader r(f.payload);
  std::vector<std::vector<std::uint64_t>> all(cfg_.workers);
  for (unsigned i = 0; i < cfg_.workers; ++i) {
    const std::uint32_t len = r.u32();
    all[i].resize(len);
    for (std::uint64_t& v : all[i]) v = r.u64();
  }
  CLB_CHECK(r.exhausted(), "transport: trailing bytes in a kRelease payload");
  return all;
}

void ShardEngine::send(std::uint32_t dest_proc, Msg&& m) {
  const unsigned owner = owner_of(dest_proc);
  if (owner == cfg_.index) {
    self_pending_.push_back(std::move(m));
    return;
  }
  if (m.kind == rt::MsgKind::kTransfer) {
    ++corrupt_countdown_seen_;
    if (cfg_.corrupt_transfer_frame != 0 &&
        corrupt_countdown_seen_ == cfg_.corrupt_transfer_frame &&
        !m.payload.empty()) {
      // The frame-corrupt mutation: flipped BEFORE the frame is signed, so
      // the CRC vouches for the corrupted bytes and every counter stays
      // self-consistent. Only the shadow fabric can tell.
      m.payload[0].task.birth_step ^= 1u;
    }
  }
  PeerChannel& ch = peers_[owner];
  serialize_msg(ch.batch, m);
  ++ch.batch_count;
}

void ShardEngine::apply_transfer(const Msg& m) {
  CLB_DCHECK(owner_of(m.b) == cfg_.index,
             "transfer routed to the wrong shard");
  rt::RtProcessor& dst = proc(m.b);
  dst.tasks_received += m.payload.size();
  for (const rt::RtTask& t : m.payload) dst.queue.push_back(t);
}

void ShardEngine::drain(std::vector<Msg>& out) {
  out.clear();
  for (Msg& m : self_pending_) {
    if (m.kind == rt::MsgKind::kTransfer) {
      apply_transfer(m);
    } else {
      out.push_back(std::move(m));
    }
  }
  self_pending_.clear();
  for (unsigned i = 0; i < cfg_.workers; ++i) {
    if (i == cfg_.index) continue;
    PeerChannel& ch = peers_[i];
    while (ch.batches_consumed < data_rounds_) {
      Frame f = ch.ep.recv_frame();
      CLB_CHECK(f.type == FrameType::kBatch,
                "transport: expected a kBatch frame on a data link");
      Reader r(f.payload);
      const std::uint32_t count = r.u32();
      for (std::uint32_t k = 0; k < count; ++k) {
        Msg m = deserialize_msg(r);
        if (m.kind == rt::MsgKind::kTransfer) {
          apply_transfer(m);
        } else {
          out.push_back(std::move(m));
        }
      }
      CLB_CHECK(r.exhausted(), "transport: trailing bytes in a kBatch frame");
      ++ch.batches_consumed;
    }
  }
}

// ---------------------------------------------------------------------------
// The protocol, ported verbatim from rt::Runtime's instant mode
// ---------------------------------------------------------------------------

void ShardEngine::step_once(std::uint64_t step) {
  // ---- generate / consume (mirrors Engine::generate_consume_block) ----
  const std::uint64_t system_load = sys_load_;
  for (std::uint64_t p = begin_; p < end_; ++p) {
    rt::RtProcessor& pr = proc(p);
    const sim::StepAction act = model_->step_action(
        cfg_.seed, p, step, pr.queue.size(), system_load);
    for (std::uint32_t i = 0; i < act.generate; ++i) {
      pr.queue.push_back(
          rt::RtTask{sim::Task{static_cast<std::uint32_t>(step),
                               static_cast<std::uint32_t>(p), act.weight},
                     cfg_.time_sojourn ? now_us() : 0});
    }
    pr.generated += act.generate;
    std::uint32_t c = act.consume;
    while (c > 0 && !pr.queue.empty()) {
      const rt::RtTask t = pr.queue.front();
      pr.queue.pop_front();
      ++pr.consumed;
      if (t.task.origin == p) ++pr.consumed_on_origin;
      if (cfg_.track_sojourn) sojourn_steps_.add(step - t.task.birth_step);
      if (cfg_.time_sojourn) sojourn_us_.add(now_us() - t.birth_us);
      if (cfg_.spin_work != 0) spin(cfg_.spin_work);
      --c;
    }
  }

  // ---- balancing policy ----
  bool phase_step = false;
  phase_matched_ = 0;
  if (cfg_.policy == rt::RtPolicy::kThreshold &&
      step % cfg_.params.phase_len == 0) {
    phase_step = true;
    run_phase(step);
  }

  // ---- end-of-step load reduction (one barrier, blob-borne) ----
  std::uint64_t local_load = 0, local_max = 0;
  for (std::uint64_t p = begin_; p < end_; ++p) {
    const std::uint64_t l = proc(p).queue.size();
    local_load += l;
    if (l > local_max) local_max = l;
  }
  const auto all = allgather({local_load, local_max, phase_matched_});
  std::uint64_t sys = 0, mx = 0, matched = 0;
  for (const std::vector<std::uint64_t>& b : all) {
    sys += b[0];
    if (b[1] > mx) mx = b[1];
    matched += b[2];
  }
  sys_load_ = sys;
  if (cfg_.index == 0) {
    if (mx > running_max_) running_max_ = mx;
    if (phase_step) {
      // Compose the phase summary from the classification blobs stashed in
      // run_phase plus the matched counts that rode this barrier. No extra
      // fence needed: the blobs already crossed the control plane.
      rt::RtPhaseSummary ps;
      ps.phase_index = phase_count_ - 1;
      ps.start_step = step;
      ps.end_step = step;  // instant-schedule phases resolve within the step
      ps.completed = true;
      ps.heavy_procs = phase_heavy_all_;
      ps.num_heavy = ps.heavy_procs.size();
      ps.num_light = phase_light_total_;
      ps.matched = matched;
      ps.unmatched = ps.num_heavy - matched;
      ps.requests = ph_requests_;
      ps.levels_used = ph_levels_;
      ps.collision_rounds = ph_rounds_;
      phases_.push_back(std::move(ps));
    }
  }
}

void ShardEngine::run_phase(std::uint64_t step) {
  ++phase_epoch_;
  const std::uint64_t phase_index = phase_count_++;
  const core::PhaseParams& pp = cfg_.params;
  ph_requests_ = 0;
  ph_levels_ = 0;
  ph_rounds_ = 0;

  // Classification from post-generation loads — the balancer's begin_phase.
  heavy_local_.clear();
  std::uint64_t light_count = 0;
  for (std::uint64_t p = begin_; p < end_; ++p) {
    const std::uint64_t load = proc(p).queue.size();
    if (load >= pp.heavy_threshold) {
      heavy_local_.push_back(static_cast<std::uint32_t>(p));
      ++proc(p).balance_initiations;
    } else if (load <= pp.light_threshold) {
      proc(p).light_epoch = phase_epoch_;
      ++light_count;
    }
  }
  // D1 blob: [heavy count, light count, heavy procs...]. The heavy lists
  // ride to worker 0 for the phase summary; everyone uses the counts for
  // the slot prefix.
  std::vector<std::uint64_t> blob;
  blob.reserve(2 + heavy_local_.size());
  blob.push_back(heavy_local_.size());
  blob.push_back(light_count);
  for (const std::uint32_t h : heavy_local_) blob.push_back(h);
  const auto all = allgather(blob);

  std::uint64_t heavy_base = 0, total_heavy = 0;
  for (unsigned i = 0; i < cfg_.workers; ++i) {
    if (i < cfg_.index) heavy_base += all[i][0];
    total_heavy += all[i][0];
  }
  if (cfg_.index == 0) {
    phase_heavy_all_.clear();
    phase_light_total_ = 0;
    for (unsigned i = 0; i < cfg_.workers; ++i) {
      phase_light_total_ += all[i][1];
      for (std::size_t k = 2; k < all[i].size(); ++k) {
        phase_heavy_all_.push_back(static_cast<std::uint32_t>(all[i][k]));
      }
    }
  }

  // Level-1 nodes: the heavy processors themselves, slots in ascending
  // processor order (shard order = processor order by construction).
  nodes_.clear();
  for (std::size_t i = 0; i < heavy_local_.size(); ++i) {
    Node node;
    node.slot = heavy_base + i;
    node.proc = heavy_local_[i];
    node.root = heavy_local_[i];
    nodes_.push_back(std::move(node));
  }

  std::uint64_t node_count = total_heavy;
  std::uint32_t level = 0;
  while (level < pp.tree_depth && node_count > 0) {
    ++level;
    node_count = run_level(step, phase_index, level, node_count);
  }

  std::uint64_t matched = 0;
  for (const std::uint32_t h : heavy_local_) {
    if (proc(h).matched_epoch == phase_epoch_) ++matched;
  }
  phase_matched_ = matched;  // published on the end-of-step barrier blob
}

std::uint64_t ShardEngine::run_level(std::uint64_t step,
                                     std::uint64_t phase_index,
                                     std::uint32_t level,
                                     std::uint64_t node_count) {
  const collision::CollisionConfig& game = cfg_.game;
  const std::uint64_t game_seed = rng::hash_combine(
      rng::hash_combine(cfg_.seed, kGameSalt),
      rng::hash_combine(phase_index, level));
  ++level_epoch_;
  ph_levels_ = level;
  ph_requests_ += node_count;

  for (Node& node : nodes_) {
    collision::draw_targets(cfg_.n, game_seed, node.slot, node.proc, game.a,
                            node.targets);
    node.accepted_mask = 0;
    node.accept_count = 0;
    node.round_replies = 0;
    node.active = true;
    node.pending_children = 0;
    node.status_nonapp = 0;
    node.accepted.clear();
  }

  // ---- collision rounds (Figure 1) as 3-superstep exchanges. Unlike the
  // in-proc runtime no extra anti-contamination fences are needed: the
  // batch-per-barrier accounting makes a drain complete and exact by
  // construction.
  const std::uint32_t max_rounds = collision::round_bound(cfg_.n, game);
  std::uint64_t active_total = node_count;
  std::uint32_t round = 0;
  while (round < max_rounds && active_total > 0) {
    ++round;
    ++round_epoch_;

    // R1: active requests query their not-yet-accepted targets.
    for (const Node& node : nodes_) {
      if (!node.active) continue;
      for (std::uint32_t j = 0; j < game.a; ++j) {
        if (node.accepted_mask & (1u << j)) continue;
        Msg m;
        m.kind = rt::MsgKind::kQuery;
        m.key = (node.slot << 4) | j;
        m.a = node.targets[j];
        m.b = node.proc;
        send(node.targets[j], std::move(m));
        ++msg_.queries;
      }
    }
    (void)allgather({});
    drain(batch_);

    // R2: each queried processor counts arrivals, then accepts all or none
    // (count-based, so no sort is needed for determinism), replying per
    // accepted query.
    for (const Msg& m : batch_) {
      CLB_DCHECK(m.kind == rt::MsgKind::kQuery, "unexpected message in R2");
      rt::RtProcessor& t = proc(m.a);
      if (t.incoming_epoch != round_epoch_) {
        t.incoming_epoch = round_epoch_;
        t.incoming = 0;
      }
      ++t.incoming;
    }
    for (const Msg& m : batch_) {
      rt::RtProcessor& t = proc(m.a);
      if (t.decide_epoch != round_epoch_) {
        t.decide_epoch = round_epoch_;
        const std::uint32_t prior =
            t.accept_epoch == level_epoch_ ? t.accepted_total : 0;
        t.accepts_round =
            t.incoming <= game.c && prior + t.incoming <= game.c;
        if (t.accepts_round) {
          t.accept_epoch = level_epoch_;
          t.accepted_total = prior + t.incoming;
          msg_.accepts += t.incoming;
        }
      }
      if (t.accepts_round) {
        Msg r;
        r.kind = rt::MsgKind::kAccept;
        r.key = m.key;
        r.a = m.b;  // route back to the requesting node's processor
        send(m.b, std::move(r));
      }
    }
    batch_.clear();
    (void)allgather({});
    drain(batch_);

    // R3: requests collect accepts — mark reply bits first, then append in
    // j order (the simulator's pass-3 order); >= b accepts leaves the game.
    for (const Msg& m : batch_) {
      CLB_DCHECK(m.kind == rt::MsgKind::kAccept, "unexpected message in R3");
      const std::uint64_t slot = m.key >> 4;
      auto it = std::lower_bound(
          nodes_.begin(), nodes_.end(), slot,
          [](const Node& n, std::uint64_t s) { return n.slot < s; });
      CLB_DCHECK(it != nodes_.end() && it->slot == slot,
                 "accept for unknown node");
      it->round_replies |= 1u << (m.key & 15);
    }
    batch_.clear();
    std::uint64_t local_active = 0;
    for (Node& node : nodes_) {
      if (!node.active) continue;
      if (node.round_replies != 0) {
        for (std::uint32_t j = 0; j < game.a; ++j) {
          if (node.round_replies & (1u << j)) {
            node.accepted_mask |= 1u << j;
            ++node.accept_count;
            node.accepted.push_back(node.targets[j]);
          }
        }
        node.round_replies = 0;
      }
      if (node.accept_count >= game.b) node.active = false;
      if (node.active) ++local_active;
    }
    const auto act = allgather({local_active});
    active_total = 0;
    for (const std::vector<std::uint64_t>& b : act) active_total += b[0];
  }
  ph_rounds_ += round;

  // ---- children announcement (first two accepts become tree children) ----
  for (Node& node : nodes_) {
    const auto k = static_cast<std::uint8_t>(
        std::min<std::size_t>(node.accepted.size(), 2));
    node.pending_children = k;
    for (std::uint8_t s = 0; s < k; ++s) {
      Msg m;
      m.kind = rt::MsgKind::kChild;
      m.key = (node.slot << 1) | s;
      m.a = node.accepted[s];
      m.b = node.root;
      m.c = node.proc;
      send(node.accepted[s], std::move(m));
    }
  }
  (void)allgather({});
  drain(batch_);

  // ---- applicative decision at the children (sorted by (g, s): the first
  // edge in global (request, child) order reserves a still-light,
  // still-unassigned processor — exactly the simulator's iteration order).
  if (cfg_.deterministic) std::sort(batch_.begin(), batch_.end(), key_less);
  for (const Msg& m : batch_) {
    CLB_DCHECK(m.kind == rt::MsgKind::kChild, "unexpected message in L2");
    const std::uint32_t q = m.a;
    rt::RtProcessor& qp = proc(q);
    const bool applicative = qp.light_epoch == phase_epoch_ &&
                             qp.assigned_epoch != phase_epoch_;
    if (applicative) {
      qp.assigned_epoch = phase_epoch_;
      Msg id;
      id.kind = rt::MsgKind::kId;
      id.key = m.key;
      id.a = m.b;  // root
      id.b = q;
      send(m.b, std::move(id));
      ++msg_.id_messages;
    }
    Msg st;
    st.kind = rt::MsgKind::kChildStatus;
    st.key = m.key;
    st.a = m.c;  // parent
    st.b = applicative ? 1 : 0;
    send(m.c, std::move(st));
  }
  batch_.clear();
  (void)allgather({});
  drain(batch_);

  // ---- roots match on the first id (sorted: lowest (g, s) edge wins, as
  // in the simulator); parents apply the sibling rule and stage forwards.
  if (cfg_.deterministic) std::sort(batch_.begin(), batch_.end(), key_less);
  for (const Msg& m : batch_) {
    if (m.kind == rt::MsgKind::kId) {
      rt::RtProcessor& root = proc(m.a);
      if (root.matched_epoch != phase_epoch_) {
        root.matched_epoch = phase_epoch_;
        root.matched_partner = m.b;
        staged_.push_back(Staged{m.a, m.b});
      }
    } else {
      CLB_DCHECK(m.kind == rt::MsgKind::kChildStatus,
                 "unexpected message in L3");
      const std::uint64_t g = m.key >> 1;
      auto it = std::lower_bound(
          nodes_.begin(), nodes_.end(), g,
          [](const Node& n, std::uint64_t s) { return n.slot < s; });
      CLB_DCHECK(it != nodes_.end() && it->slot == g,
                 "status for unknown node");
      if (m.b == 0) ++it->status_nonapp;
    }
  }
  batch_.clear();
  scan_.clear();
  for (Node& node : nodes_) {
    const std::uint8_t k = node.pending_children;
    std::uint32_t forward = 0;
    if (k == 2 && node.status_nonapp == 2) {
      // Sibling rule: both children learn (two control messages) that
      // neither was applicative and carry the search down.
      msg_.control += 2;
      forward = 2;
    } else if (k == 1 && node.status_nonapp == 1) {
      forward = 1;
    }
    if (forward != 0) {
      ScanEntry e;
      e.g = node.slot;
      e.root = node.root;
      e.count = forward;
      e.child[0] = node.accepted[0];
      if (forward == 2) e.child[1] = node.accepted[1];
      scan_.push_back(e);
    }
  }

  // D7 blob: [staged count, scan count, (g, count) pairs...]. Carries both
  // the transfer prefix scan AND the leader scan's input, so every worker
  // replays the same merge and the global child numbering needs no
  // leader-owned memory.
  std::vector<std::uint64_t> blob;
  blob.reserve(2 + 2 * scan_.size());
  blob.push_back(staged_.size());
  blob.push_back(scan_.size());
  for (const ScanEntry& e : scan_) {
    blob.push_back(e.g);
    blob.push_back(e.count);
  }
  const auto all = allgather(blob);

  std::uint64_t staged_base = transfer_seen_;
  std::uint64_t staged_total = 0;
  for (unsigned i = 0; i < cfg_.workers; ++i) {
    if (i < cfg_.index) staged_base += all[i][0];
    staged_total += all[i][0];
  }

  // Replicated leader scan: dense global numbering for next-level nodes,
  // merging the per-worker (g, count) lists by parent slot g.
  std::vector<std::size_t> pos(cfg_.workers, 0);
  std::uint64_t base = 0;
  for (;;) {
    unsigned best = cfg_.workers;
    std::uint64_t best_g = 0;
    for (unsigned i = 0; i < cfg_.workers; ++i) {
      if (pos[i] >= all[i][1]) continue;
      const std::uint64_t g = all[i][2 + 2 * pos[i]];
      if (best == cfg_.workers || g < best_g) {
        best = i;
        best_g = g;
      }
    }
    if (best == cfg_.workers) break;
    if (best == cfg_.index) scan_[pos[best]].base = base;
    base += all[best][3 + 2 * pos[best]];
    ++pos[best];
  }
  const std::uint64_t next_node_count = base;

  // ---- staged transfers under the replicated (step, source) numbering ----
  apply_staged_transfers(step, staged_base, staged_total);
  (void)allgather({});
  drain(batch_);
  CLB_CHECK(batch_.empty(), "only transfers may be in flight after L3");

  // ---- forward children into next-level nodes ----
  for (const ScanEntry& e : scan_) {
    for (std::uint32_t s = 0; s < e.count; ++s) {
      Msg m;
      m.kind = rt::MsgKind::kForward;
      m.key = e.base + s;
      m.a = e.child[s];
      m.b = e.root;
      send(e.child[s], std::move(m));
    }
  }
  (void)allgather({});
  drain(batch_);
  next_nodes_.clear();
  for (const Msg& m : batch_) {
    CLB_DCHECK(m.kind == rt::MsgKind::kForward, "unexpected message in L5");
    Node node;
    node.slot = m.key;
    node.proc = m.a;
    node.root = m.b;
    next_nodes_.push_back(std::move(node));
  }
  batch_.clear();
  std::sort(next_nodes_.begin(), next_nodes_.end(),
            [](const Node& a, const Node& b) { return a.slot < b.slot; });
  nodes_.swap(next_nodes_);
  return next_node_count;
}

void ShardEngine::send_transfer(std::uint64_t step, std::uint32_t root,
                                std::uint32_t partner, std::uint64_t count) {
  rt::RtProcessor& src = proc(root);
  if (count == 0) return;
  if (count > src.queue.size()) {
    count = src.queue.size();
    ++clamped_;
  }
  Msg m;
  m.kind = rt::MsgKind::kTransfer;
  m.key = root;
  m.a = root;
  m.b = partner;
  src.queue.extract_back(count, m.payload);
  src.tasks_sent += count;
  ++msg_.transfers;
  msg_.tasks_moved += count;
  ledger_.push_back(rt::LedgerEntry{step, root, partner,
                                    static_cast<std::uint32_t>(count)});
  send(partner, std::move(m));
}

void ShardEngine::apply_staged_transfers(std::uint64_t step,
                                         std::uint64_t base,
                                         std::uint64_t total) {
  // Canonical order: ascending source processor, as in rt. The global
  // ordinal (base + local index) exists here only to keep transfer_seen_
  // replicated; there is no drop hook on this transport.
  (void)base;
  std::sort(staged_.begin(), staged_.end(),
            [](const Staged& a, const Staged& b) { return a.from < b.from; });
  for (const Staged& st : staged_) {
    send_transfer(step, st.from, st.to, cfg_.params.transfer_amount);
  }
  staged_.clear();
  transfer_seen_ += total;
}

}  // namespace clb::transport
