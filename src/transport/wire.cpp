#include "transport/wire.hpp"

#include "models/single.hpp"

namespace clb::transport {

std::unique_ptr<sim::LoadModel> ModelSpec::make(std::uint64_t n) const {
  switch (kind) {
    case Kind::kSingle:
      return std::make_unique<models::SingleModel>(p, eps);
    case Kind::kBurst:
      return std::make_unique<models::BurstModel>(burst, n);
  }
  CLB_CHECK(false, "unknown model spec kind");
  return nullptr;
}

void ModelSpec::serialize(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(kind));
  w.f64(p);
  w.f64(eps);
  w.f64(burst.p_base);
  w.f64(burst.p_consume);
  w.u64(burst.period);
  w.u64(burst.burst_len);
  w.f64(burst.hot_fraction);
  w.u32(burst.burst_rate);
  w.u8(burst.rotate_hotspot ? 1 : 0);
}

ModelSpec ModelSpec::deserialize(Reader& r) {
  ModelSpec s;
  s.kind = static_cast<Kind>(r.u8());
  CLB_CHECK(s.kind == Kind::kSingle || s.kind == Kind::kBurst,
            "unknown model spec kind on the wire");
  s.p = r.f64();
  s.eps = r.f64();
  s.burst.p_base = r.f64();
  s.burst.p_consume = r.f64();
  s.burst.period = r.u64();
  s.burst.burst_len = r.u64();
  s.burst.hot_fraction = r.f64();
  s.burst.burst_rate = r.u32();
  s.burst.rotate_hotspot = r.u8() != 0;
  return s;
}

void serialize_task(Writer& w, const rt::RtTask& t) {
  w.u32(t.task.birth_step);
  w.u32(t.task.origin);
  w.u32(t.task.weight);
  w.u32(t.birth_us);
}

rt::RtTask deserialize_task(Reader& r) {
  rt::RtTask t;
  t.task.birth_step = r.u32();
  t.task.origin = r.u32();
  t.task.weight = r.u32();
  t.birth_us = r.u32();
  return t;
}

void serialize_msg(Writer& w, const Msg& m) {
  w.u8(static_cast<std::uint8_t>(m.kind));
  w.u64(m.key);
  w.u32(m.a);
  w.u32(m.b);
  w.u32(m.c);
  w.seq_key(m.seq);
  w.u32(static_cast<std::uint32_t>(m.payload.size()));
  for (const rt::RtTask& t : m.payload) serialize_task(w, t);
}

Msg deserialize_msg(Reader& r) {
  Msg m;
  m.kind = static_cast<rt::MsgKind>(r.u8());
  m.key = r.u64();
  m.a = r.u32();
  m.b = r.u32();
  m.c = r.u32();
  m.seq = r.seq_key();
  const std::uint32_t count = r.u32();
  m.payload.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    m.payload.push_back(deserialize_task(r));
  }
  return m;
}

void serialize_params(Writer& w, const core::PhaseParams& p) {
  w.u64(p.n);
  w.f64(p.T_real);
  w.u64(p.T);
  w.u64(p.phase_len);
  w.u64(p.heavy_threshold);
  w.u64(p.light_threshold);
  w.u32(p.transfer_amount);
  w.u32(p.tree_depth);
}

core::PhaseParams deserialize_params(Reader& r) {
  core::PhaseParams p;
  p.n = r.u64();
  p.T_real = r.f64();
  p.T = r.u64();
  p.phase_len = r.u64();
  p.heavy_threshold = r.u64();
  p.light_threshold = r.u64();
  p.transfer_amount = r.u32();
  p.tree_depth = r.u32();
  return p;
}

void serialize_game(Writer& w, const collision::CollisionConfig& g) {
  w.u32(g.a);
  w.u32(g.b);
  w.u32(g.c);
  w.u32(g.max_rounds);
}

collision::CollisionConfig deserialize_game(Reader& r) {
  collision::CollisionConfig g;
  g.a = r.u32();
  g.b = r.u32();
  g.c = r.u32();
  g.max_rounds = r.u32();
  return g;
}

}  // namespace clb::transport
