#include "transport/frame.hpp"

#include <cstring>

#include "net/wire.hpp"
#include "util/check.hpp"

namespace clb::transport {

const char* decode_status_name(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadCrc: return "bad-crc";
    case DecodeStatus::kTooLong: return "too-long";
    default: break;
  }
  if (s == kDupSeq) return "dup-seq";
  if (s == kGapSeq) return "gap-seq";
  return "?";
}

std::vector<std::uint8_t> encode_frame(FrameType type, std::uint64_t seq,
                                       const std::uint8_t* payload,
                                       std::size_t payload_len) {
  CLB_CHECK(payload_len <= kMaxFramePayload, "frame payload too large");
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderSize + payload_len);
  net::wire::put_u32(out, kFrameMagic);
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  net::wire::put_u16(out, 0);  // channel (reserved)
  net::wire::put_u64(out, seq);
  net::wire::put_u32(out, static_cast<std::uint32_t>(payload_len));
  net::wire::put_u32(out, 0);  // CRC placeholder
  if (payload_len != 0) {
    out.insert(out.end(), payload, payload + payload_len);
  }
  std::uint32_t crc = net::wire::crc32(out.data(), kFrameHeaderSize);
  if (payload_len != 0) {
    crc = net::wire::crc32(payload, payload_len, crc);
  }
  // Patch the CRC field in place (offset 20).
  out[20] = static_cast<std::uint8_t>(crc);
  out[21] = static_cast<std::uint8_t>(crc >> 8);
  out[22] = static_cast<std::uint8_t>(crc >> 16);
  out[23] = static_cast<std::uint8_t>(crc >> 24);
  return out;
}

DecodeResult decode_frame(const std::uint8_t* data, std::size_t len) {
  DecodeResult r;
  if (len < kFrameHeaderSize) return r;  // kNeedMore
  if (net::wire::get_u32(data) != kFrameMagic) {
    r.status = DecodeStatus::kBadMagic;
    return r;
  }
  if (data[4] != kWireVersion) {
    r.status = DecodeStatus::kBadVersion;
    return r;
  }
  const std::uint32_t payload_len = net::wire::get_u32(data + 16);
  if (payload_len > kMaxFramePayload) {
    r.status = DecodeStatus::kTooLong;
    return r;
  }
  if (len < kFrameHeaderSize + payload_len) return r;  // kNeedMore
  const std::uint32_t wire_crc = net::wire::get_u32(data + 20);
  // Recompute with the CRC field zeroed, exactly as the encoder signed it.
  std::uint8_t header[kFrameHeaderSize];
  std::memcpy(header, data, kFrameHeaderSize);
  header[20] = header[21] = header[22] = header[23] = 0;
  std::uint32_t crc = net::wire::crc32(header, kFrameHeaderSize);
  crc = net::wire::crc32(data + kFrameHeaderSize, payload_len, crc);
  if (crc != wire_crc) {
    r.status = DecodeStatus::kBadCrc;
    return r;
  }
  r.status = DecodeStatus::kOk;
  r.consumed = kFrameHeaderSize + payload_len;
  r.frame.type = static_cast<FrameType>(data[5]);
  r.frame.seq = net::wire::get_u64(data + 8);
  r.frame.payload.assign(data + kFrameHeaderSize,
                         data + kFrameHeaderSize + payload_len);
  return r;
}

void FrameReader::feed(const std::uint8_t* data, std::size_t len) {
  // Compact once the consumed prefix dominates, so the buffer cannot grow
  // without bound on a long-lived connection.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
}

DecodeStatus FrameReader::next(Frame& out) {
  if (!error_.empty()) return DecodeStatus::kBadMagic;  // stream is poisoned
  DecodeResult r = decode_frame(buf_.data() + pos_, buf_.size() - pos_);
  if (r.status != DecodeStatus::kOk) {
    if (r.status != DecodeStatus::kNeedMore) {
      error_ = std::string("frame decode failed: ") +
               decode_status_name(r.status);
    }
    return r.status;
  }
  if (r.frame.seq == last_seq_ ||
      (last_seq_ != 0 && r.frame.seq < last_seq_)) {
    error_ = "duplicate frame sequence " + std::to_string(r.frame.seq) +
             " (last " + std::to_string(last_seq_) + ")";
    return kDupSeq;
  }
  if (r.frame.seq != last_seq_ + 1) {
    error_ = "frame sequence gap: got " + std::to_string(r.frame.seq) +
             ", expected " + std::to_string(last_seq_ + 1);
    return kGapSeq;
  }
  last_seq_ = r.frame.seq;
  pos_ += r.consumed;
  out = std::move(r.frame);
  return DecodeStatus::kOk;
}

}  // namespace clb::transport
