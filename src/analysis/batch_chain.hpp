// Stationary analysis of batch-arrival load chains — Lemma 2 generalised to
// the Geometric / Multi / Poisson-batch models.
//
// Engine step semantics: generation lands first, then up to `consume` tasks
// are consumed, so the per-processor load chain is
//   L' = max(0, L + G - consume),   G ~ gen_pmf (i.i.d. per step).
// This module computes the stationary distribution of that chain on a
// truncated state space by power iteration (the truncation error is
// negligible once the tail has decayed below ~1e-12, which the geometric
// tail guarantees for subcritical models).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace clb::analysis {

/// Stationary pmf of L' = max(0, L + G - consume) with G ~ gen_pmf.
/// Requires E[G] < consume (subcritical). States 0..max_load (reflecting
/// truncation at the top).
inline std::vector<double> batch_chain_stationary(
    const std::vector<double>& gen_pmf, std::uint32_t consume,
    std::size_t max_load, double tol = 1e-12,
    std::uint64_t max_iters = 500000) {
  CLB_CHECK(!gen_pmf.empty(), "generation pmf must be non-empty");
  CLB_CHECK(consume >= 1, "consume >= 1");
  double mass = 0, mean = 0;
  for (std::size_t g = 0; g < gen_pmf.size(); ++g) {
    CLB_CHECK(gen_pmf[g] >= 0.0, "pmf entries non-negative");
    mass += gen_pmf[g];
    mean += static_cast<double>(g) * gen_pmf[g];
  }
  CLB_CHECK(mass > 0.999 && mass < 1.001, "generation pmf must sum to 1");
  CLB_CHECK(mean < consume, "chain must be subcritical (E[G] < consume)");

  const std::size_t m = max_load + 1;
  std::vector<double> v(m, 1.0 / static_cast<double>(m));
  std::vector<double> next(m);
  for (std::uint64_t iter = 0; iter < max_iters; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t l = 0; l < m; ++l) {
      if (v[l] == 0) continue;
      for (std::size_t g = 0; g < gen_pmf.size(); ++g) {
        if (gen_pmf[g] == 0) continue;
        const std::size_t raw = l + g;
        std::size_t dst = raw > consume ? raw - consume : 0;
        if (dst >= m) dst = m - 1;  // reflect at the truncation boundary
        next[dst] += v[l] * gen_pmf[g];
      }
    }
    double diff = 0;
    for (std::size_t l = 0; l < m; ++l) diff += std::abs(next[l] - v[l]);
    v.swap(next);
    if (diff < tol) break;
  }
  return v;
}

/// Mean of a pmf vector.
inline double pmf_mean(const std::vector<double>& pmf) {
  double mean = 0;
  for (std::size_t i = 0; i < pmf.size(); ++i) {
    mean += static_cast<double>(i) * pmf[i];
  }
  return mean;
}

/// P[X >= k] of a pmf vector.
inline double pmf_tail_at_least(const std::vector<double>& pmf,
                                std::size_t k) {
  double tail = 0;
  for (std::size_t i = k; i < pmf.size(); ++i) tail += pmf[i];
  return tail;
}

/// The Geometric(k) model's generation pmf: P[i] = 2^-(i+1) for i in 1..k,
/// remainder on 0.
inline std::vector<double> geometric_model_pmf(std::uint32_t k) {
  std::vector<double> pmf(k + 1, 0.0);
  double rest = 1.0;
  double p = 0.25;
  for (std::uint32_t i = 1; i <= k; ++i, p /= 2.0) {
    pmf[i] = p;
    rest -= p;
  }
  pmf[0] = rest;
  return pmf;
}

}  // namespace clb::analysis
