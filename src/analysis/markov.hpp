// Birth–death Markov chain analysis of the Single generation model (Lemma 2).
//
// In the unbalanced system a processor's load is a birth–death chain with
//   p_gain = p(1-q),  p_lose = q(1-p)   (q = p + eps, only when load > 0),
// whose stationary distribution is geometric: v_i = (1-rho) rho^i with
// rho = p_gain / p_lose < 1. This module provides both the closed form and a
// numerical power-iteration solver on the truncated chain so the two can be
// cross-checked in tests and printed next to empirical data in the benches.
#pragma once

#include <cstdint>
#include <vector>

namespace clb::analysis {

/// Closed-form and numeric stationary analysis for the Single(p, eps) model.
class SingleModelChain {
 public:
  /// Requires 0 < p, 0 < eps, and p + eps <= 1.
  SingleModelChain(double p, double eps);

  [[nodiscard]] double p_gain() const { return p_gain_; }
  [[nodiscard]] double p_lose() const { return p_lose_; }
  /// rho = p_gain / p_lose; stationary load is Geometric(1 - rho).
  [[nodiscard]] double rho() const { return rho_; }

  /// Closed-form stationary probability v_i = (1-rho) rho^i.
  [[nodiscard]] double stationary(std::uint64_t i) const;

  /// Closed-form stationary tail P[load >= k] = rho^k.
  [[nodiscard]] double tail_at_least(std::uint64_t k) const;

  /// Expected stationary load rho / (1-rho).
  [[nodiscard]] double expected_load() const;

  /// Load value L with n * P[load >= L] = 1: the expected max over n
  /// independent processors, i.e. the Theta(log n) unbalanced max load.
  [[nodiscard]] double expected_max_load(std::uint64_t n) const;

  /// Numerical stationary distribution of the chain truncated at `max_load`
  /// states, via power iteration to tolerance `tol`. Cross-checks the closed
  /// form; also usable for perturbed chains in tests.
  [[nodiscard]] std::vector<double> stationary_numeric(
      std::uint64_t max_load, double tol = 1e-12,
      std::uint64_t max_iters = 2'000'000) const;

 private:
  double p_;
  double q_;
  double p_gain_;
  double p_lose_;
  double rho_;
};

}  // namespace clb::analysis
