// Mean-field analysis of the (n, beta, a, b, c)-collision protocol.
//
// Tracks, round by round, the distribution of per-request state
// (pending queries, accepts collected) under the mean-field approximation
// that each pending query is accepted independently with probability
//   p_accept(lambda) = P[the target received no other query this round
//                        and still has capacity]
//                   ~= exp(-lambda) * survive,
// where lambda is the density of *other* pending queries per processor.
// For c = 1 a processor that ever accepted is consumed; the `occupied`
// fraction carries that depletion across rounds. Exact for n -> infinity at
// fixed beta; tests compare against the simulated protocol at n = 2^14.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace clb::analysis {

struct CollisionMeanField {
  /// fraction of requests still unfinished after each round (index 0 = after
  /// round 1).
  std::vector<double> unfinished;
  /// expected query messages per request, cumulative.
  double queries_per_request = 0;
  /// rounds needed to drop below `target_unfinished` (0 if never).
  std::uint32_t rounds_to_finish = 0;
};

/// Runs the mean-field recurrence for m requests over n processors with
/// parameters (a, b, c = 1), for `max_rounds` rounds.
inline CollisionMeanField collision_meanfield(
    std::uint64_t n, std::uint64_t m, std::uint32_t a, std::uint32_t b,
    std::uint32_t max_rounds, double target_unfinished = 1e-3) {
  CLB_CHECK(n >= 2 && m >= 1 && a >= 2 && b >= 1 && b < a, "bad parameters");
  // State distribution over (pending, accepts): requests start with
  // `a` pending queries and 0 accepts; finished requests leave the game.
  // Index: state[pending][accepts], accepts < b.
  std::vector<std::vector<double>> state(
      a + 1, std::vector<double>(b, 0.0));
  state[a][0] = 1.0;
  double active = 1.0;     // fraction of requests unfinished
  double occupied = 0.0;   // fraction of processors that already accepted

  CollisionMeanField out;
  const double density = static_cast<double>(m) / static_cast<double>(n);

  for (std::uint32_t round = 1; round <= max_rounds && active > 0; ++round) {
    // Pending queries per processor this round.
    double mean_pending = 0;
    for (std::uint32_t p = 0; p <= a; ++p) {
      for (std::uint32_t acc = 0; acc < b; ++acc) {
        mean_pending += state[p][acc] * p;
      }
    }
    const double lambda = density * mean_pending;
    out.queries_per_request += mean_pending;
    // A query is accepted iff its target is unoccupied and receives no
    // other query this round (c = 1).
    const double p_accept =
        (1.0 - occupied) * std::exp(-lambda);

    std::vector<std::vector<double>> next(
        a + 1, std::vector<double>(b, 0.0));
    double newly_finished = 0;
    double accepted_mass = 0;  // expected accepts per request this round
    for (std::uint32_t p = 0; p <= a; ++p) {
      for (std::uint32_t acc = 0; acc < b; ++acc) {
        const double mass = state[p][acc];
        if (mass == 0) continue;
        // Binomial(p, p_accept) accepts this round.
        double binom = std::pow(1.0 - p_accept, p);  // k = 0 term
        double coeff = 1.0;
        for (std::uint32_t k = 0; k <= p; ++k) {
          if (k > 0) {
            coeff *= static_cast<double>(p - k + 1) / static_cast<double>(k);
            binom = coeff * std::pow(p_accept, k) *
                    std::pow(1.0 - p_accept, p - k);
          }
          accepted_mass += mass * binom * k;
          if (acc + k >= b) {
            newly_finished += mass * binom;
          } else {
            next[p - k][acc + k] += mass * binom;
          }
        }
      }
    }
    occupied += density * accepted_mass;
    if (occupied > 1.0) occupied = 1.0;
    active -= newly_finished;
    if (active < 0) active = 0;
    state.swap(next);
    out.unfinished.push_back(active);
    if (out.rounds_to_finish == 0 && active <= target_unfinished) {
      out.rounds_to_finish = round;
    }
  }
  return out;
}

}  // namespace clb::analysis
