// The paper's asymptotic bounds as callable functions.
//
// Benches print these next to the measured quantities so the tables carry a
// "predicted shape" column. All logs are base 2 (the paper leaves the base
// unspecified; asymptotics are base-independent, see DESIGN.md §2).
#pragma once

#include <cmath>
#include <cstdint>

#include "util/math.hpp"

namespace clb::analysis {

/// The paper's T = (log log n)^2 (real-valued, base-2 logs).
inline double paper_T(std::uint64_t n) {
  const double ll = clb::util::log2log2(n);
  return ll * ll;
}

/// Theorem 1: maximum balanced load bound (log log n)^2.
inline double max_load_bound_single(std::uint64_t n) { return paper_T(n); }

/// §1.2: Geometric model bound k (log log n)^2, Multi model bound c T.
inline double max_load_bound_scaled(std::uint64_t n, double factor) {
  return factor * paper_T(n);
}

/// Unbalanced expected maximum load Theta(log n): log n / log(1/rho).
inline double unbalanced_max_load(std::uint64_t n, double rho) {
  return std::log2(static_cast<double>(n)) / std::log2(1.0 / rho);
}

/// Lemma 4 heavy-processor bound n / (log n)^{log log n} (base-2 logs).
/// Vanishes super-polynomially; returned as a fraction of n.
inline double heavy_fraction_bound(std::uint64_t n) {
  const double lg = std::log2(static_cast<double>(n));
  const double ll = clb::util::log2log2(n);
  return std::pow(lg, -ll);
}

/// Lemma 4 light-processor lower bound fraction 1 - 16c/T, with c the
/// system-load constant (expected load per processor).
inline double light_fraction_bound(std::uint64_t n, double load_per_proc) {
  return 1.0 - 16.0 * load_per_proc / paper_T(n);
}

/// Figure 1 round bound: log log n / log(c (a-b)) + 3. Requires c(a-b) >= 2
/// (otherwise the denominator is 0 and the protocol analysis does not apply).
inline double collision_round_bound(std::uint64_t n, std::uint32_t a,
                                    std::uint32_t b, std::uint32_t c) {
  const double denom = std::log2(static_cast<double>(c) * (a - b));
  return clb::util::log2log2(n) / denom + 3.0;
}

/// Lemma 1 step bound for (a,b,c) = (5,2,1): 5 log log n.
inline double collision_step_bound_lemma1(std::uint64_t n) {
  return 5.0 * clb::util::log2log2(n);
}

/// Lemma 7's geometric-series bound on the expected number of balancing
/// requests per heavy processor, for non-applicative probability `p_na`
/// (the paper uses p_na <= 1/4): sum over levels i of 2^{i+2} * (2 p_na^2)^{i-1}
/// ... evaluated numerically with the paper's structure
/// p(active node at level i) <= 2^{i-1} p_na^{2(i-1)}; requests at level i
/// cost 2^{i+2} in the paper's accounting.
inline double expected_requests_bound(std::uint64_t n, double p_na = 0.25) {
  const auto levels = static_cast<std::uint64_t>(
      std::ceil(clb::util::log2log2(n))) + 1;
  double total = 0;
  for (std::uint64_t i = 1; i <= levels; ++i) {
    const double p_active =
        std::pow(2.0, static_cast<double>(i - 1)) *
        std::pow(p_na, 2.0 * static_cast<double>(i - 1));
    total += std::pow(2.0, static_cast<double>(i) + 2.0) *
             std::min(1.0, p_active);
  }
  return total;
}

/// §1.2 communication claim: messages per phase O(n / (log n)^{log log n - 1}).
inline double messages_per_phase_bound(std::uint64_t n) {
  const double lg = std::log2(static_cast<double>(n));
  const double ll = clb::util::log2log2(n);
  return static_cast<double>(n) * std::pow(lg, -(ll - 1.0));
}

/// Known results (§1.1), m = n balls into n bins:
/// single choice Theta(log n / log log n).
inline double bib_single_choice_max(std::uint64_t n) {
  const double lg = std::log2(static_cast<double>(n));
  return lg / std::log2(lg);
}

/// ABKU greedy-d: log log n / log d + Theta(1).
inline double bib_greedy_d_max(std::uint64_t n, std::uint32_t d) {
  return clb::util::log2log2(n) / std::log2(static_cast<double>(d));
}

/// Chernoff–Hoeffding multiplicative upper tail for Binomial(n, p):
/// P[X >= (1+delta) np] <= exp(-np delta^2 / (2 + delta)).
inline double chernoff_upper(std::uint64_t n, double p, double delta) {
  const double mu = static_cast<double>(n) * p;
  return std::exp(-mu * delta * delta / (2.0 + delta));
}

/// Hoeffding two-sided bound for the mean of n [0,1] variables deviating by
/// t from its expectation: 2 exp(-2 n t^2).
inline double hoeffding(std::uint64_t n, double t) {
  return 2.0 * std::exp(-2.0 * static_cast<double>(n) * t * t);
}

}  // namespace clb::analysis
