#include "analysis/markov.hpp"

#include <cmath>

#include "util/check.hpp"

namespace clb::analysis {

SingleModelChain::SingleModelChain(double p, double eps) : p_(p), q_(p + eps) {
  CLB_CHECK(p > 0.0, "Single model needs p > 0");
  CLB_CHECK(eps > 0.0, "Single model needs eps > 0 for a steady state");
  CLB_CHECK(q_ <= 1.0, "Single model needs p + eps <= 1");
  p_gain_ = p_ * (1.0 - q_);
  p_lose_ = q_ * (1.0 - p_);
  rho_ = p_gain_ / p_lose_;
  CLB_CHECK(rho_ < 1.0, "rho must be < 1 (guaranteed by eps > 0)");
}

double SingleModelChain::stationary(std::uint64_t i) const {
  return (1.0 - rho_) * std::pow(rho_, static_cast<double>(i));
}

double SingleModelChain::tail_at_least(std::uint64_t k) const {
  return std::pow(rho_, static_cast<double>(k));
}

double SingleModelChain::expected_load() const { return rho_ / (1.0 - rho_); }

double SingleModelChain::expected_max_load(std::uint64_t n) const {
  // Solve n * rho^L = 1  =>  L = ln n / ln(1/rho).
  return std::log(static_cast<double>(n)) / std::log(1.0 / rho_);
}

std::vector<double> SingleModelChain::stationary_numeric(
    std::uint64_t max_load, double tol, std::uint64_t max_iters) const {
  CLB_CHECK(max_load >= 1, "need at least two states");
  const std::size_t m = max_load + 1;
  std::vector<double> v(m, 1.0 / static_cast<double>(m));
  std::vector<double> next(m, 0.0);
  // Transition structure: state 0 has no consumption (p_lose applies only
  // when a task is present); the top state reflects gains (truncation).
  for (std::uint64_t iter = 0; iter < max_iters; ++iter) {
    next.assign(m, 0.0);
    // From state 0: gain with probability p (generation, no consumption
    // possible before the task exists within the same step? The paper's
    // one-step net change at load 0 is +1 with probability p*(1-q) when
    // generated tasks can be consumed in the same step, which matches the
    // chain used in Lemma 2; we keep that convention).
    next[0] += v[0] * (1.0 - p_gain_);
    next[1] += v[0] * p_gain_;
    for (std::size_t i = 1; i < m; ++i) {
      const double up = (i + 1 < m) ? p_gain_ : 0.0;  // reflect at the top
      next[i - 1] += v[i] * p_lose_;
      next[i] += v[i] * (1.0 - up - p_lose_);
      if (i + 1 < m) next[i + 1] += v[i] * up;
    }
    double diff = 0;
    for (std::size_t i = 0; i < m; ++i) diff += std::abs(next[i] - v[i]);
    v.swap(next);
    if (diff < tol) break;
  }
  return v;
}

}  // namespace clb::analysis
