// Occupancy (balls-into-bins) predictions via Poissonization.
//
// The asymptotic Theta(log n / log log n) formula is off by a sizable
// constant at machine sizes; the Poisson heuristic
//   P[max load < k]  ~=  exp(-n * P[Poisson(m/n) >= k])
// is accurate to a fraction of a ball and gives the EXP-12 tables an honest
// "predicted" column.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/check.hpp"

namespace clb::analysis {

/// P[Poisson(lambda) >= k], computed by stable forward recursion.
inline double poisson_tail_at_least(double lambda, std::uint64_t k) {
  CLB_CHECK(lambda > 0.0, "poisson tail needs lambda > 0");
  if (k == 0) return 1.0;
  // Sum pmf terms 0..k-1 with the recurrence p_{i+1} = p_i * lambda/(i+1).
  double p = std::exp(-lambda);
  double cdf = p;
  for (std::uint64_t i = 0; i + 1 < k; ++i) {
    p *= lambda / static_cast<double>(i + 1);
    cdf += p;
  }
  return cdf >= 1.0 ? 0.0 : 1.0 - cdf;
}

/// Expected maximum bin load for m balls thrown i.u.a.r. into n bins.
inline double expected_max_single_choice(std::uint64_t m, std::uint64_t n) {
  CLB_CHECK(m >= 1 && n >= 1, "need m, n >= 1");
  const double lambda = static_cast<double>(m) / static_cast<double>(n);
  // E[max] = sum_{k >= 1} P[max >= k], with
  // P[max >= k] ~= 1 - exp(-n * Q(k)).
  double expectation = 0.0;
  for (std::uint64_t k = 1; k < m + 2; ++k) {
    const double q = poisson_tail_at_least(lambda, k);
    const double p_ge = 1.0 - std::exp(-static_cast<double>(n) * q);
    expectation += p_ge;
    if (p_ge < 1e-9) break;
  }
  return expectation;
}

/// The k with n * P[Poisson(m/n) >= k] ~ 1 (the classic "balanced level"),
/// i.e. the mode of the max-load distribution.
inline std::uint64_t typical_max_single_choice(std::uint64_t m,
                                               std::uint64_t n) {
  const double lambda = static_cast<double>(m) / static_cast<double>(n);
  for (std::uint64_t k = 1; k < m + 2; ++k) {
    if (static_cast<double>(n) * poisson_tail_at_least(lambda, k) < 1.0) {
      return k;  // first level expected to hold < 1 bin
    }
  }
  return m;
}

}  // namespace clb::analysis
