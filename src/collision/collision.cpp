#include "collision/collision.hpp"

#include <algorithm>
#include <cmath>

#include "rng/dist.hpp"
#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace clb::collision {

namespace {
constexpr std::uint64_t kTargetSalt = 0x636F6C6C696465ULL;  // "collide"
}

CollisionGame::CollisionGame(std::uint64_t n, CollisionConfig cfg)
    : n_(n), cfg_(cfg) {
  CLB_CHECK(n_ >= 2, "collision game needs n >= 2");
  CLB_CHECK(cfg_.a >= 2, "collision game needs a >= 2");
  CLB_CHECK(cfg_.b >= 1 && cfg_.b < cfg_.a, "collision game needs 1 <= b < a");
  CLB_CHECK(cfg_.c >= 1, "collision game needs c >= 1");
  CLB_CHECK(cfg_.a < n_, "need a < n so distinct targets exist");
  incoming_count_.resize(n_, 0);
  incoming_stamp_.resize(n_, 0);
  accepted_total_.resize(n_, 0);
  accepted_stamp_.resize(n_, 0);
}

void draw_targets(std::uint64_t n, std::uint64_t seed, std::uint64_t slot,
                  std::uint32_t requester, std::uint32_t a,
                  std::uint32_t* out_targets) {
  rng::CounterRng rng(seed, rng::hash_combine(kTargetSalt, slot), requester);
  for (std::uint32_t j = 0; j < a; ++j) {
    for (;;) {
      const auto cand = static_cast<std::uint32_t>(rng::bounded(rng, n));
      if (cand == requester) continue;
      bool dup = false;
      for (std::uint32_t k = 0; k < j; ++k) {
        if (out_targets[k] == cand) {
          dup = true;
          break;
        }
      }
      if (!dup) {
        out_targets[j] = cand;
        break;
      }
    }
  }
}

std::uint32_t round_bound(std::uint64_t n, const CollisionConfig& cfg) {
  if (cfg.max_rounds != 0) return cfg.max_rounds;
  const std::uint64_t spread =
      static_cast<std::uint64_t>(cfg.c) * (cfg.a - cfg.b);
  if (spread < 2 || n < 4) {
    // The analysis requires c(a-b) >= 2; fall back to a generous linear
    // budget so the protocol still terminates deterministically.
    return 32;
  }
  const double rounds =
      util::log2log2(n) / std::log2(static_cast<double>(spread)) + 3.0;
  return static_cast<std::uint32_t>(std::ceil(rounds));
}

std::uint32_t CollisionGame::paper_round_bound() const {
  CollisionConfig no_override = cfg_;
  no_override.max_rounds = 0;
  return round_bound(n_, no_override);
}

bool CollisionGame::conditions_hold(double beta, double xi) const {
  // Condition (1) of the paper: c^2 (a-b) / (c+1) > 1 + xi.
  const double lhs = static_cast<double>(cfg_.c) * cfg_.c * (cfg_.a - cfg_.b) /
                     (static_cast<double>(cfg_.c) + 1.0);
  if (!(lhs > 1.0 + xi)) return false;
  // Structural requirements stated alongside the protocol: a in
  // [2, sqrt(log n)], request fraction beta < 1, and c(a-b) >= 2 so the
  // round bound's denominator is positive. (Condition (2) of the paper is
  // typographically corrupted in the source text; it constrains beta for
  // fixed (a, b, c) and is subsumed here by requiring beta < 1 — the
  // Lemma 1 parameters satisfy it for suitably small beta, which the
  // empirical EXP-01 sweep verifies directly.)
  // The paper's asymptotic precondition a <= sqrt(log n) is meaningless at
  // machine-sized n (sqrt(log2 2^16) = 4 would already exclude Lemma 1's
  // a = 5); we apply it with the customary constant slack a <= 2 sqrt(log n).
  if (cfg_.a < 2) return false;
  if (static_cast<double>(cfg_.a) * cfg_.a >
      4.0 * std::log2(static_cast<double>(n_)) + 1e-9) {
    return false;
  }
  if (!(beta < 1.0)) return false;
  return static_cast<std::uint64_t>(cfg_.c) * (cfg_.a - cfg_.b) >= 2;
}

CollisionOutcome CollisionGame::run(
    const std::vector<std::uint32_t>& requesters, std::uint64_t seed) {
  const std::size_t m = requesters.size();
  CollisionOutcome out;
  out.accepted.resize(m);
  const std::uint32_t max_rounds =
      cfg_.max_rounds ? cfg_.max_rounds : paper_round_bound();
  if (m == 0) {
    out.valid = true;
    return out;
  }

  const std::uint32_t a = cfg_.a;
  // Fixed random target sets: a distinct processors per request, excluding
  // the requester itself; no fresh randomness in later rounds (Figure 1).
  std::vector<std::uint32_t> targets(m * a);
  for (std::size_t r = 0; r < m; ++r) {
    draw_targets(n_, seed, r, requesters[r], a, targets.data() + r * a);
  }

  std::vector<std::uint32_t> accepted_mask(m, 0);  // bit j: target j accepted
  std::vector<std::uint32_t> accept_count(m, 0);
  std::vector<std::uint32_t> active(m);
  for (std::size_t r = 0; r < m; ++r) active[r] = static_cast<std::uint32_t>(r);

  // Per-run acceptance totals use a fresh stamp epoch so the scratch arrays
  // need no O(n) clearing between runs. Guard against (theoretical) stamp
  // wrap-around by resetting the arrays well before UINT32_MAX.
  if (stamp_ > 0xFFFF0000u) {
    std::fill(incoming_stamp_.begin(), incoming_stamp_.end(), 0u);
    std::fill(accepted_stamp_.begin(), accepted_stamp_.end(), 0u);
    stamp_ = 0;
  }
  const std::uint32_t run_epoch = ++stamp_;
  std::vector<std::uint32_t> run_touched;
  auto accepted_total = [&](std::uint32_t p) -> std::uint32_t {
    return accepted_stamp_[p] == run_epoch ? accepted_total_[p] : 0;
  };
  auto bump_accepted_total = [&](std::uint32_t p, std::uint32_t by) {
    if (accepted_stamp_[p] != run_epoch) {
      accepted_stamp_[p] = run_epoch;
      accepted_total_[p] = 0;
      run_touched.push_back(p);
    }
    accepted_total_[p] += by;
  };

  std::vector<std::uint32_t> touched;
  for (std::uint32_t round = 1; round <= max_rounds && !active.empty();
       ++round) {
    out.rounds_used = round;
    [[maybe_unused]] const std::uint64_t round_queries_before =
        out.query_messages;
    [[maybe_unused]] const std::uint64_t round_accepts_before =
        out.accept_messages;
    [[maybe_unused]] const std::size_t round_active = active.size();
    const std::uint32_t round_stamp = ++stamp_;
    touched.clear();

    // Pass 1: deliver queries, counting per-processor arrivals.
    for (const std::uint32_t r : active) {
      for (std::uint32_t j = 0; j < a; ++j) {
        if (accepted_mask[r] & (1u << j)) continue;
        const std::uint32_t p = targets[r * a + j];
        if (incoming_stamp_[p] != round_stamp) {
          incoming_stamp_[p] = round_stamp;
          incoming_count_[p] = 0;
          touched.push_back(p);
        }
        ++incoming_count_[p];
        ++out.query_messages;
      }
    }

    // Pass 2: each touched processor decides: accept all (collision value
    // not exceeded and capacity remains) or none. Encode the decision by
    // leaving incoming_count_ > 0 only for accepting processors.
    for (const std::uint32_t p : touched) {
      const std::uint32_t incoming = incoming_count_[p];
      const bool accepts =
          incoming <= cfg_.c && accepted_total(p) + incoming <= cfg_.c;
      if (accepts) {
        bump_accepted_total(p, incoming);
        out.accept_messages += incoming;
      } else {
        incoming_count_[p] = 0;
      }
    }

    // Pass 3: requests collect accepts; those with >= b leave the game.
    std::size_t w = 0;
    for (std::size_t idx = 0; idx < active.size(); ++idx) {
      const std::uint32_t r = active[idx];
      for (std::uint32_t j = 0; j < a; ++j) {
        if (accepted_mask[r] & (1u << j)) continue;
        const std::uint32_t p = targets[r * a + j];
        if (incoming_stamp_[p] == round_stamp && incoming_count_[p] > 0) {
          accepted_mask[r] |= (1u << j);
          ++accept_count[r];
          out.accepted[r].push_back(p);
        }
      }
      if (accept_count[r] < cfg_.b) active[w++] = r;
    }
    active.resize(w);
    CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kCollisionRound,
                    trace_time_, round, 0, round_active,
                    out.query_messages - round_queries_before,
                    out.accept_messages - round_accepts_before);
  }

  out.valid = active.empty();
  // Export per-processor acceptance totals for invariant checking; only the
  // processors actually touched are visited (the balancer runs one game per
  // tree level, so this must stay sublinear in n).
  out.per_proc_accepts.reserve(run_touched.size());
  for (const std::uint32_t p : run_touched) {
    out.per_proc_accepts.emplace_back(p, accepted_total_[p]);
  }
  return out;
}

}  // namespace clb::collision
