// The (n, beta, a, b, c)-collision protocol — Figure 1 of the paper.
//
// Originating in shared-memory simulations [MSS95], the protocol assigns
// queries to processors such that (1) no processor answers more than c
// queries and (2) at least b < a of each request's queries are answered.
//
// Per round:
//   * every unfinished request sends queries to the targets (from its fixed
//     set of `a` i.u.a.r. choices — no fresh randomness after round one)
//     that have not yet accepted;
//   * a processor receiving at most c queries this round — and with total
//     accepted capacity c remaining — accepts all of them and replies with
//     accept messages; otherwise it answers none (the collision effect);
//   * a request with >= b accumulated accepts cancels its remaining queries
//     and leaves the game.
//
// The paper runs log log n / log(c(a-b)) + 3 rounds and shows the result is
// a valid assignment w.h.p. This implementation stops early once every
// request has finished, and reports rounds/messages used so Lemma 1 and the
// O(n/a)-messages claim can be measured.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace.hpp"

namespace clb::collision {

struct CollisionConfig {
  std::uint32_t a = 5;  ///< queries per request
  std::uint32_t b = 2;  ///< accepted queries required per request
  std::uint32_t c = 1;  ///< collision value (acceptance capacity)
  /// Round budget; 0 means the paper's bound log2 log2 n / log2(c(a-b)) + 3.
  std::uint32_t max_rounds = 0;
  /// Optional trace sink (borrowed): run() emits one kCollisionRound event
  /// per round with the active-request and message counts.
  obs::TraceSink* trace = nullptr;
};

struct CollisionOutcome {
  /// True iff every request accumulated >= b accepts within the round budget.
  bool valid = false;
  std::uint32_t rounds_used = 0;
  std::uint64_t query_messages = 0;
  std::uint64_t accept_messages = 0;
  /// accepted[r] = processors that accepted request r's queries (|.| >= b on
  /// success; the order is the order of acceptance).
  std::vector<std::vector<std::uint32_t>> accepted;
  /// Cumulative queries each *touched* processor accepted; untouched
  /// processors are absent. Used to verify the <= c invariant.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> per_proc_accepts;
};

/// Draws request `slot`'s fixed target set: `a` distinct processors in
/// [0, n), excluding `requester`, written to out_targets[0..a). This is the
/// exact keying (CounterRng(seed, hash(salt, slot), requester)) and rejection
/// loop CollisionGame::run uses — exported so the message-passing runtime
/// (src/rt) reproduces the simulator's randomness bit-for-bit. `slot` is the
/// request's index in the requesters vector, NOT its processor id; callers
/// that shard requests across threads must agree on a global slot numbering.
void draw_targets(std::uint64_t n, std::uint64_t seed, std::uint64_t slot,
                  std::uint32_t requester, std::uint32_t a,
                  std::uint32_t* out_targets);

/// The paper's round budget log2 log2 n / log2(c(a-b)) + 3 for this n and
/// config (32 when the analysis precondition c(a-b) >= 2 fails or n < 4).
/// cfg.max_rounds, when non-zero, overrides it.
[[nodiscard]] std::uint32_t round_bound(std::uint64_t n,
                                        const CollisionConfig& cfg);

/// One standalone collision game over `n` processors.
class CollisionGame {
 public:
  CollisionGame(std::uint64_t n, CollisionConfig cfg);

  /// Runs the protocol for the given requesters. `requesters[r]` is the
  /// processor originating request r; its own id is excluded from its random
  /// targets. `seed` keys all random choices; a fixed (seed, requesters)
  /// pair replays identically.
  CollisionOutcome run(const std::vector<std::uint32_t>& requesters,
                       std::uint64_t seed);

  /// Timestamp stamped onto trace events of subsequent run() calls (games
  /// are standalone, so the caller supplies the simulation step).
  void set_trace_time(std::uint64_t step) { trace_time_ = step; }

  /// The round budget the paper prescribes for this n and config.
  [[nodiscard]] std::uint32_t paper_round_bound() const;

  [[nodiscard]] const CollisionConfig& config() const { return cfg_; }

  /// Checks the paper's side conditions (1) and (2) on (a, b, c) for load
  /// fraction beta = requests/n; returns false when the analysis does not
  /// apply (the protocol still runs).
  [[nodiscard]] bool conditions_hold(double beta, double xi = 0.01) const;

 private:
  std::uint64_t n_;
  CollisionConfig cfg_;

  // Scratch reused across run() calls (stamp-based so no O(n) clears).
  std::vector<std::uint32_t> incoming_count_;
  std::vector<std::uint32_t> incoming_stamp_;
  std::vector<std::uint32_t> accepted_total_;
  std::vector<std::uint32_t> accepted_stamp_;
  std::uint32_t stamp_ = 0;
  std::uint64_t trace_time_ = 0;
};

}  // namespace clb::collision
