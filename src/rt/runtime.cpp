#include "rt/runtime.hpp"

#include <algorithm>
#include <chrono>

#include "rng/dist.hpp"
#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace clb::rt {

namespace {

// Must match the threshold balancer's game-seed derivation bit for bit.
constexpr std::uint64_t kGameSalt = 0x70686173656761ULL;  // "phasega"
// rt-only stream for all-in-air scatter targets (per processor, so the
// draw order is partition-invariant; the sim baseline draws from one global
// stream, which no sharded runtime can reproduce — documented non-goal).
constexpr std::uint64_t kScatterSalt = 0x727473636174ULL;  // "rtscat"

constexpr std::uint32_t kMaxA = 16;  // target slots per node (key packs j in 4 bits)

/// Busy work standing in for a task's compute cost. The asm constraint keeps
/// the loop from being optimised away without touching memory.
inline void spin(std::uint32_t iters) {
  std::uint64_t x = 0x9E3779B97F4A7C15ULL;
  for (std::uint32_t i = 0; i < iters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
#if defined(__GNUC__) || defined(__clang__)
    asm volatile("" : "+r"(x));
#endif
  }
}

bool key_less(const Message* a, const Message* b) {
  if (a->key != b->key) return a->key < b->key;
  return static_cast<int>(a->kind) < static_cast<int>(b->kind);
}

unsigned resolve_workers(const RtConfig& cfg) {
  unsigned w = cfg.workers != 0
                   ? cfg.workers
                   : std::max(1u, std::thread::hardware_concurrency());
  if (static_cast<std::uint64_t>(w) > cfg.n) {
    w = static_cast<unsigned>(cfg.n);
  }
  return w;
}

}  // namespace

const char* policy_name(RtPolicy p) {
  switch (p) {
    case RtPolicy::kNone: return "none";
    case RtPolicy::kThreshold: return "threshold";
    case RtPolicy::kAllInAir: return "all-in-air";
  }
  return "?";
}

/// One query-tree node hosted at owner(proc). `slot` is the node's global
/// index at its level (dense, ascending across workers), which keys the
/// collision game's target draws exactly like the simulator's requesters
/// vector index.
struct Runtime::RtNode {
  std::uint64_t slot = 0;
  std::uint32_t proc = 0;
  std::uint32_t root = 0;
  std::uint32_t targets[kMaxA] = {};
  std::uint32_t accepted_mask = 0;
  std::uint32_t accept_count = 0;
  std::uint32_t round_replies = 0;
  bool active = false;
  std::uint8_t pending_children = 0;
  std::uint8_t status_nonapp = 0;
  std::vector<std::uint32_t> accepted;  // acceptance order (round, then j)
};

/// A forwarding parent's contribution to the next level: the leader's scan
/// assigns `base` = the global slot of child s=0.
struct Runtime::ScanEntry {
  std::uint64_t g = 0;  // parent slot
  std::uint64_t base = 0;
  std::uint32_t root = 0;
  std::uint32_t count = 0;  // 1 or 2
  std::uint32_t child[2] = {};
};

struct alignas(64) Runtime::Worker {
  unsigned index = 0;
  std::uint64_t begin = 0, end = 0;  // owned processor shard [begin, end)
  Mailbox inbox;

  // Scratch.
  std::vector<Message*> batch;
  std::vector<RtNode> nodes, next_nodes;
  std::vector<std::uint32_t> heavy_local;
  std::vector<ScanEntry> scan;

  // Lockstep epochs — every worker advances these at the same points of the
  // superstep schedule, so a stamp comparison means the same thing anywhere.
  std::uint64_t phase_epoch = 0;
  std::uint64_t level_epoch = 0;
  std::uint64_t round_epoch = 0;
  std::uint64_t phase_count = 0;
  std::uint64_t sys_load = 0;  // total system load at start of current step
  std::uint64_t scatter_count = 0;

  // Per-phase stats tracked by all workers in lockstep (leader's copy is
  // the one that lands in RtPhaseSummary).
  std::uint64_t ph_requests = 0;
  std::uint32_t ph_levels = 0;
  std::uint32_t ph_rounds = 0;

  // Outputs, merged by the main thread after runs.
  sim::MessageCounters msg;
  std::uint64_t clamped = 0;
  std::vector<LedgerEntry> ledger;
  stats::IntHistogram sojourn_steps, sojourn_us;
  std::uint64_t remote_pushes = 0;
  std::uint64_t self_pushes = 0;

  std::thread thread;
};

Runtime::Runtime(RtConfig cfg, sim::LoadModel* model)
    : cfg_(cfg),
      model_(model),
      step_barrier_(resolve_workers(cfg)),
      cmd_barrier_(resolve_workers(cfg) + 1),
      start_tp_(std::chrono::steady_clock::now()) {
  CLB_CHECK(model_ != nullptr, "runtime needs a load model");
  CLB_CHECK(!model_->serial_generation(),
            "runtime requires a parallel-safe (counter-RNG) model");
  CLB_CHECK(cfg_.n >= 1 && cfg_.n <= (1ULL << 31),
            "runtime processor ids must fit comfortably in 32 bits");
  const unsigned w = resolve_workers(cfg_);
  cfg_.workers = w;
  if (cfg_.policy == RtPolicy::kThreshold) {
    CLB_CHECK(cfg_.params.n == cfg_.n,
              "phase params must be realised for this n (PhaseParams::from_n)");
    CLB_CHECK(cfg_.game.b >= 1 && cfg_.game.b <= 2,
              "query trees are binary: b must be 1 or 2");
    CLB_CHECK(cfg_.game.a >= 2 && cfg_.game.a <= kMaxA &&
                  static_cast<std::uint64_t>(cfg_.game.a) < cfg_.n,
              "collision fan-out a out of range");
    CLB_CHECK(cfg_.game.c >= 1, "collision capacity c must be >= 1");
  }
  if (cfg_.policy == RtPolicy::kAllInAir) {
    air_interval_ = cfg_.n >= 4
                        ? util::round_at_least(util::log2log2(cfg_.n), 1)
                        : 1;
  }

  procs_.resize(cfg_.n);
  chunk_ = cfg_.n / w;
  extra_ = cfg_.n % w;
  split_ = extra_ * (chunk_ + 1);
  load_slots_[0].resize(w);
  load_slots_[1].resize(w);
  class_slots_.resize(w);
  active_slots_.resize(w);
  match_slots_.resize(w);

  workers_.reserve(w);
  for (unsigned i = 0; i < w; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->index = i;
    auto [b, e] = util::block_range(cfg_.n, w, i);
    worker->begin = b;
    worker->end = e;
    workers_.push_back(std::move(worker));
  }
  for (unsigned i = 0; i < w; ++i) {
    Worker* wp = workers_[i].get();
    wp->thread = std::thread([this, wp] { worker_main(*wp); });
  }
}

Runtime::~Runtime() {
  cmd_stop_ = true;
  cmd_barrier_.arrive_and_wait();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void Runtime::run(std::uint64_t steps) {
  if (steps == 0) return;
  cmd_steps_ = steps;
  const auto t0 = std::chrono::steady_clock::now();
  cmd_barrier_.arrive_and_wait();  // release the workers
  cmd_barrier_.arrive_and_wait();  // wait for completion
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  step_base_ += steps;
}

void Runtime::worker_main(Worker& w) {
  for (;;) {
    cmd_barrier_.arrive_and_wait();
    if (cmd_stop_) return;
    const std::uint64_t base = step_base_;
    const std::uint64_t count = cmd_steps_;
    for (std::uint64_t s = 0; s < count; ++s) step_once(w, base + s);
    cmd_barrier_.arrive_and_wait();
  }
}

unsigned Runtime::owner_of(std::uint64_t p) const {
  if (p < split_) return static_cast<unsigned>(p / (chunk_ + 1));
  return static_cast<unsigned>(extra_ + (p - split_) / chunk_);
}

std::uint32_t Runtime::now_us() const {
  return static_cast<std::uint32_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_tp_)
          .count());
}

void Runtime::send(Worker& w, std::uint32_t dest_proc, Message* m) {
  Worker& dst = *workers_[owner_of(dest_proc)];
  if (&dst == &w) {
    ++w.self_pushes;
  } else {
    ++w.remote_pushes;
  }
  dst.inbox.push(m);
}

void Runtime::apply_transfer([[maybe_unused]] Worker& w, const Message& m) {
  RtProcessor& dst = procs_[m.b];
  CLB_DCHECK(m.b >= w.begin && m.b < w.end, "transfer routed to wrong worker");
  dst.tasks_received += m.payload.size();
  for (const RtTask& t : m.payload) dst.queue.push_back(t);
}

void Runtime::drain(Worker& w, std::vector<Message*>& out) {
  out.clear();
  while (Message* m = w.inbox.pop()) {
    if (m->kind == MsgKind::kTransfer) {
      // Order-insensitive: at most one transfer reaches a given light per
      // phase (the assigned flag), so applying on drain keeps determinism.
      apply_transfer(w, *m);
      delete m;
      continue;
    }
    out.push_back(m);
  }
}

void Runtime::send_transfer(Worker& w, std::uint64_t step, std::uint32_t root,
                            std::uint32_t partner) {
  RtProcessor& src = procs_[root];
  std::uint64_t count = cfg_.params.transfer_amount;
  if (count == 0) return;
  if (count > src.queue.size()) {
    count = src.queue.size();
    ++w.clamped;
  }
  auto* m = new Message;
  m->kind = MsgKind::kTransfer;
  m->key = root;
  m->a = root;
  m->b = partner;
  m->payload.assign(src.queue.end() - static_cast<std::ptrdiff_t>(count),
                    src.queue.end());
  src.queue.erase(src.queue.end() - static_cast<std::ptrdiff_t>(count),
                  src.queue.end());
  src.tasks_sent += count;
  ++w.msg.transfers;
  w.msg.tasks_moved += count;
  w.ledger.push_back(LedgerEntry{step, root, partner,
                                 static_cast<std::uint32_t>(count)});
  CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kTransfer, step, root, partner,
                  count);
  if (cfg_.drop_transfer_message != 0) {
    const std::uint64_t ordinal =
        transfer_send_ordinal_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (ordinal == cfg_.drop_transfer_message) {
      // The broken mailbox: the sender's books all say the transfer
      // happened, the receiver never sees it.
      dropped_messages_ += 1;
      dropped_tasks_ += count;
      delete m;
      return;
    }
  }
  send(w, partner, m);
}

void Runtime::step_once(Worker& w, std::uint64_t step) {
  // ---- generate / consume (mirrors Engine::generate_consume_block) ----
  const std::uint64_t system_load = w.sys_load;
  for (std::uint64_t p = w.begin; p < w.end; ++p) {
    RtProcessor& proc = procs_[p];
    const sim::StepAction act = model_->step_action(
        cfg_.seed, p, step, proc.queue.size(), system_load);
    for (std::uint32_t i = 0; i < act.generate; ++i) {
      proc.queue.push_back(
          RtTask{sim::Task{static_cast<std::uint32_t>(step),
                           static_cast<std::uint32_t>(p), act.weight},
                 cfg_.time_sojourn ? now_us() : 0});
    }
    proc.generated += act.generate;
    std::uint32_t c = act.consume;
    while (c > 0 && !proc.queue.empty()) {
      const RtTask t = proc.queue.front();
      proc.queue.pop_front();
      ++proc.consumed;
      if (t.task.origin == p) ++proc.consumed_on_origin;
      if (cfg_.track_sojourn) w.sojourn_steps.add(step - t.task.birth_step);
      if (cfg_.time_sojourn) w.sojourn_us.add(now_us() - t.birth_us);
      if (cfg_.spin_work != 0) spin(cfg_.spin_work);
      --c;
    }
  }

  // ---- balancing policy ----
  bool phase_step = false;
  std::uint64_t scattered = 0;
  if (cfg_.policy == RtPolicy::kThreshold &&
      step % cfg_.params.phase_len == 0) {
    phase_step = true;
    run_phase(w, step);
  } else if (cfg_.policy == RtPolicy::kAllInAir &&
             step % air_interval_ == 0) {
    run_scatter(w, step);
    scattered = w.scatter_count;
  }

  // ---- end-of-step load reduction (the engine's refresh_load_aggregates) --
  std::uint64_t local_load = 0, local_max = 0;
  for (std::uint64_t p = w.begin; p < w.end; ++p) {
    const std::uint64_t l = procs_[p].queue.size();
    local_load += l;
    if (l > local_max) local_max = l;
  }
  Slot& slot = load_slots_[step & 1][w.index];
  slot.v0 = local_load;
  slot.v1 = local_max;
  slot.v2 = scattered;
  step_barrier_.arrive_and_wait();
  std::uint64_t sys = 0, mx = 0, scat = 0;
  for (const Slot& s : load_slots_[step & 1]) {
    sys += s.v0;
    if (s.v1 > mx) mx = s.v1;
    scat += s.v2;
  }
  w.sys_load = sys;
  if (w.index == 0) {
    if (mx > running_max_load_) running_max_load_ = mx;
    if (scat > 0) ++w.msg.transfers;  // the sim baseline's one global action
  }
  if (phase_step) {
    if (w.index == 0) {
      // Compose the phase summary from the slots and per-worker heavy lists
      // published before the load barrier; the extra barrier below keeps the
      // other workers from mutating them until the leader is done.
      RtPhaseSummary ps;
      ps.phase_index = w.phase_count - 1;
      ps.start_step = step;
      for (const auto& worker : workers_) {
        ps.heavy_procs.insert(ps.heavy_procs.end(),
                              worker->heavy_local.begin(),
                              worker->heavy_local.end());
      }
      ps.num_heavy = ps.heavy_procs.size();
      std::uint64_t matched = 0, light = 0;
      for (unsigned i = 0; i < worker_count(); ++i) {
        matched += match_slots_[i].v0;
        light += class_slots_[i].v1;
      }
      ps.num_light = light;
      ps.matched = matched;
      ps.unmatched = ps.num_heavy - matched;
      ps.requests = w.ph_requests;
      ps.levels_used = w.ph_levels;
      ps.collision_rounds = w.ph_rounds;
      CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kPhaseEnd, step, 0, 0,
                      ps.phase_index, ps.matched, ps.unmatched);
      phases_.push_back(std::move(ps));
    }
    step_barrier_.arrive_and_wait();
  }
}

void Runtime::run_scatter(Worker& w, std::uint64_t step) {
  // Pop every task in the shard front-to-back and throw it at an i.u.a.r.
  // processor. Targets come from a per-processor counter stream keyed by
  // (proc, step) so the draw sequence is partition-invariant.
  std::uint64_t scattered = 0;
  for (std::uint64_t p = w.begin; p < w.end; ++p) {
    RtProcessor& proc = procs_[p];
    rng::CounterRng rng(cfg_.seed, rng::hash_combine(kScatterSalt, p), step);
    std::uint64_t seq = 0;
    while (!proc.queue.empty()) {
      RtTask t = proc.queue.front();
      proc.queue.pop_front();
      const auto target = static_cast<std::uint32_t>(rng::bounded(rng, cfg_.n));
      auto* m = new Message;
      m->kind = MsgKind::kScatter;
      m->key = (p << 32) | seq;
      m->a = static_cast<std::uint32_t>(p);
      m->b = target;
      m->payload.push_back(t);
      send(w, target, m);
      ++seq;
    }
    scattered += seq;
  }
  w.msg.control += scattered;     // one routing message per task (as in sim)
  w.msg.tasks_moved += scattered;
  step_barrier_.arrive_and_wait();
  drain(w, w.batch);
  if (cfg_.deterministic) {
    std::sort(w.batch.begin(), w.batch.end(), key_less);
  }
  for (Message* m : w.batch) {
    CLB_DCHECK(m->kind == MsgKind::kScatter, "unexpected message in scatter");
    procs_[m->b].queue.push_back(m->payload[0]);
    delete m;
  }
  w.batch.clear();
  // step_once folds scatter_count into the end-of-step slot publication so
  // the leader can count the one global balancing action.
  w.scatter_count = scattered;
}

void Runtime::run_phase(Worker& w, std::uint64_t step) {
  ++w.phase_epoch;
  const std::uint64_t phase_index = w.phase_count++;
  const core::PhaseParams& pp = cfg_.params;
  w.ph_requests = 0;
  w.ph_levels = 0;
  w.ph_rounds = 0;

  // Classification from post-generation loads — the balancer's begin_phase.
  w.heavy_local.clear();
  std::uint64_t light_count = 0;
  for (std::uint64_t p = w.begin; p < w.end; ++p) {
    const std::uint64_t load = procs_[p].queue.size();
    if (load >= pp.heavy_threshold) {
      w.heavy_local.push_back(static_cast<std::uint32_t>(p));
      ++procs_[p].balance_initiations;
    } else if (load <= pp.light_threshold) {
      procs_[p].light_epoch = w.phase_epoch;
      ++light_count;
    }
  }
  class_slots_[w.index].v0 = w.heavy_local.size();
  class_slots_[w.index].v1 = light_count;
  step_barrier_.arrive_and_wait();

  std::uint64_t heavy_base = 0, total_heavy = 0;
  for (unsigned i = 0; i < worker_count(); ++i) {
    if (i < w.index) heavy_base += class_slots_[i].v0;
    total_heavy += class_slots_[i].v0;
  }
  if (w.index == 0) {
    std::uint64_t total_light = 0;
    for (unsigned i = 0; i < worker_count(); ++i) {
      total_light += class_slots_[i].v1;
    }
    CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kPhaseBegin, step, 0, 0,
                    phase_index, total_heavy, total_light);
  }

  // Level-1 nodes: the heavy processors themselves, slots in ascending
  // processor order (worker order = processor order by construction).
  w.nodes.clear();
  for (std::size_t i = 0; i < w.heavy_local.size(); ++i) {
    RtNode node;
    node.slot = heavy_base + i;
    node.proc = w.heavy_local[i];
    node.root = w.heavy_local[i];
    w.nodes.push_back(std::move(node));
  }

  std::uint64_t node_count = total_heavy;
  std::uint32_t level = 0;
  while (level < pp.tree_depth && node_count > 0) {
    ++level;
    node_count = run_level(w, step, phase_index, level, node_count);
  }

  std::uint64_t matched = 0;
  for (const std::uint32_t h : w.heavy_local) {
    if (procs_[h].matched_epoch == w.phase_epoch) ++matched;
  }
  match_slots_[w.index].v0 = matched;
  // No barrier here: the end-of-step load barrier publishes these slots.
}

std::uint64_t Runtime::run_level(Worker& w, std::uint64_t step,
                                 std::uint64_t phase_index,
                                 std::uint32_t level,
                                 std::uint64_t node_count) {
  const collision::CollisionConfig& game = cfg_.game;
  const std::uint64_t game_seed = rng::hash_combine(
      rng::hash_combine(cfg_.seed, kGameSalt),
      rng::hash_combine(phase_index, level));
  ++w.level_epoch;
  w.ph_levels = level;
  w.ph_requests += node_count;

  for (RtNode& node : w.nodes) {
    collision::draw_targets(cfg_.n, game_seed, node.slot, node.proc, game.a,
                            node.targets);
    node.accepted_mask = 0;
    node.accept_count = 0;
    node.round_replies = 0;
    node.active = true;
    node.pending_children = 0;
    node.status_nonapp = 0;
    node.accepted.clear();
  }

  // ---- collision rounds (Figure 1) as 3-superstep exchanges ----
  const std::uint32_t max_rounds = collision::round_bound(cfg_.n, game);
  std::uint64_t active_total = node_count;
  std::uint32_t round = 0;
  while (round < max_rounds && active_total > 0) {
    ++round;
    ++w.round_epoch;

    // R1: active requests query their not-yet-accepted targets.
    for (const RtNode& node : w.nodes) {
      if (!node.active) continue;
      for (std::uint32_t j = 0; j < game.a; ++j) {
        if (node.accepted_mask & (1u << j)) continue;
        auto* m = new Message;
        m->kind = MsgKind::kQuery;
        m->key = (node.slot << 4) | j;
        m->a = node.targets[j];
        m->b = node.proc;
        send(w, node.targets[j], m);
        ++w.msg.queries;
      }
    }
    step_barrier_.arrive_and_wait();

    // R2: each queried processor counts arrivals, then accepts all or none
    // (count-based, so no sort is needed for determinism), replying per
    // accepted query.
    //
    // Every drain whose segment also *sends* must close with a barrier
    // before the first send: without it a fast worker's replies land in a
    // slow worker's still-draining inbox and contaminate the batch with
    // next-exchange messages (the entry barrier only orders the *previous*
    // segment's sends). Same pattern at L2, L3, L4 and L5 below.
    drain(w, w.batch);
    step_barrier_.arrive_and_wait();
    for (const Message* m : w.batch) {
      CLB_DCHECK(m->kind == MsgKind::kQuery, "unexpected message in R2");
      RtProcessor& t = procs_[m->a];
      if (t.incoming_epoch != w.round_epoch) {
        t.incoming_epoch = w.round_epoch;
        t.incoming = 0;
      }
      ++t.incoming;
    }
    for (Message* m : w.batch) {
      RtProcessor& t = procs_[m->a];
      if (t.decide_epoch != w.round_epoch) {
        t.decide_epoch = w.round_epoch;
        const std::uint32_t prior =
            t.accept_epoch == w.level_epoch ? t.accepted_total : 0;
        t.accepts_round =
            t.incoming <= game.c && prior + t.incoming <= game.c;
        if (t.accepts_round) {
          t.accept_epoch = w.level_epoch;
          t.accepted_total = prior + t.incoming;
          w.msg.accepts += t.incoming;
        }
      }
      if (t.accepts_round) {
        auto* r = new Message;
        r->kind = MsgKind::kAccept;
        r->key = m->key;
        r->a = m->b;  // route back to the requesting node's processor
        send(w, m->b, r);
      }
      delete m;
    }
    w.batch.clear();
    step_barrier_.arrive_and_wait();

    // R3: requests collect accepts — mark reply bits first, then append in
    // j order (the simulator's pass-3 order); >= b accepts leaves the game.
    drain(w, w.batch);
    for (Message* m : w.batch) {
      CLB_DCHECK(m->kind == MsgKind::kAccept, "unexpected message in R3");
      const std::uint64_t slot = m->key >> 4;
      auto it = std::lower_bound(
          w.nodes.begin(), w.nodes.end(), slot,
          [](const RtNode& n, std::uint64_t s) { return n.slot < s; });
      CLB_DCHECK(it != w.nodes.end() && it->slot == slot,
                 "accept for unknown node");
      it->round_replies |= 1u << (m->key & 15);
      delete m;
    }
    w.batch.clear();
    std::uint64_t local_active = 0;
    for (RtNode& node : w.nodes) {
      if (!node.active) continue;
      if (node.round_replies != 0) {
        for (std::uint32_t j = 0; j < game.a; ++j) {
          if (node.round_replies & (1u << j)) {
            node.accepted_mask |= 1u << j;
            ++node.accept_count;
            node.accepted.push_back(node.targets[j]);
          }
        }
        node.round_replies = 0;
      }
      if (node.accept_count >= game.b) node.active = false;
      if (node.active) ++local_active;
    }
    active_slots_[w.index].v0 = local_active;
    step_barrier_.arrive_and_wait();
    active_total = 0;
    for (unsigned i = 0; i < worker_count(); ++i) {
      active_total += active_slots_[i].v0;
    }
  }
  w.ph_rounds += round;

  // ---- children announcement (first two accepts become tree children) ----
  for (RtNode& node : w.nodes) {
    const auto k =
        static_cast<std::uint8_t>(std::min<std::size_t>(node.accepted.size(), 2));
    node.pending_children = k;
    for (std::uint8_t s = 0; s < k; ++s) {
      auto* m = new Message;
      m->kind = MsgKind::kChild;
      m->key = (node.slot << 1) | s;
      m->a = node.accepted[s];
      m->b = node.root;
      m->c = node.proc;
      send(w, node.accepted[s], m);
    }
  }
  step_barrier_.arrive_and_wait();

  // ---- applicative decision at the children (the balancer's set_assigned
  // walk). Sorted by (g, s): the first edge in global (request, child)
  // order reserves a still-light, still-unassigned processor — exactly the
  // simulator's iteration order.
  drain(w, w.batch);
  step_barrier_.arrive_and_wait();  // id/status sends below; see R2
  if (cfg_.deterministic) std::sort(w.batch.begin(), w.batch.end(), key_less);
  for (Message* m : w.batch) {
    CLB_DCHECK(m->kind == MsgKind::kChild, "unexpected message in L2");
    const std::uint32_t q = m->a;
    RtProcessor& qp = procs_[q];
    const bool applicative = qp.light_epoch == w.phase_epoch &&
                             qp.assigned_epoch != w.phase_epoch;
    if (applicative) {
      qp.assigned_epoch = w.phase_epoch;
      auto* id = new Message;
      id->kind = MsgKind::kId;
      id->key = m->key;
      id->a = m->b;  // root
      id->b = q;
      send(w, m->b, id);
      ++w.msg.id_messages;
    }
    auto* st = new Message;
    st->kind = MsgKind::kChildStatus;
    st->key = m->key;
    st->a = m->c;  // parent
    st->b = applicative ? 1 : 0;
    send(w, m->c, st);
    delete m;
  }
  w.batch.clear();
  step_barrier_.arrive_and_wait();

  // ---- roots match on the first id (sorted: lowest (g, s) edge wins, as
  // in the simulator); parents apply the sibling rule and stage forwards.
  drain(w, w.batch);
  step_barrier_.arrive_and_wait();  // transfer sends below; see R2
  if (cfg_.deterministic) std::sort(w.batch.begin(), w.batch.end(), key_less);
  for (Message* m : w.batch) {
    if (m->kind == MsgKind::kId) {
      RtProcessor& root = procs_[m->a];
      if (root.matched_epoch != w.phase_epoch) {
        root.matched_epoch = w.phase_epoch;
        root.matched_partner = m->b;
        send_transfer(w, step, m->a, m->b);
      }
    } else {
      CLB_DCHECK(m->kind == MsgKind::kChildStatus, "unexpected message in L3");
      const std::uint64_t g = m->key >> 1;
      auto it = std::lower_bound(
          w.nodes.begin(), w.nodes.end(), g,
          [](const RtNode& n, std::uint64_t s) { return n.slot < s; });
      CLB_DCHECK(it != w.nodes.end() && it->slot == g,
                 "status for unknown node");
      if (m->b == 0) ++it->status_nonapp;
    }
    delete m;
  }
  w.batch.clear();
  w.scan.clear();
  for (RtNode& node : w.nodes) {
    const std::uint8_t k = node.pending_children;
    std::uint32_t forward = 0;
    if (k == 2 && node.status_nonapp == 2) {
      // Sibling rule: both children learn (two control messages) that
      // neither was applicative and carry the search down.
      w.msg.control += 2;
      forward = 2;
    } else if (k == 1 && node.status_nonapp == 1) {
      forward = 1;
    }
    if (forward != 0) {
      ScanEntry e;
      e.g = node.slot;
      e.root = node.root;
      e.count = forward;
      e.child[0] = node.accepted[0];
      if (forward == 2) e.child[1] = node.accepted[1];
      w.scan.push_back(e);
    }
  }
  step_barrier_.arrive_and_wait();

  // ---- leader scan: dense global numbering for next-level nodes. Merging
  // the per-worker scan lists by parent slot g makes the child numbering
  // identical for every worker count.
  if (w.index == 0) {
    std::vector<std::size_t> idx(worker_count(), 0);
    std::uint64_t base = 0;
    for (;;) {
      std::size_t best = worker_count();
      std::uint64_t best_g = 0;
      for (std::size_t i = 0; i < worker_count(); ++i) {
        Worker& other = *workers_[i];
        if (idx[i] >= other.scan.size()) continue;
        const std::uint64_t g = other.scan[idx[i]].g;
        if (best == worker_count() || g < best_g) {
          best = i;
          best_g = g;
        }
      }
      if (best == worker_count()) break;
      ScanEntry& e = workers_[best]->scan[idx[best]++];
      e.base = base;
      base += e.count;
    }
    next_node_count_ = base;
  }
  step_barrier_.arrive_and_wait();

  // ---- forward children into next-level nodes (any transfers sent while
  // matching above are drained and applied here).
  drain(w, w.batch);
  CLB_DCHECK(w.batch.empty(), "only transfers may be in flight after L3");
  step_barrier_.arrive_and_wait();  // forward sends below; see R2
  for (const ScanEntry& e : w.scan) {
    for (std::uint32_t s = 0; s < e.count; ++s) {
      auto* m = new Message;
      m->kind = MsgKind::kForward;
      m->key = e.base + s;
      m->a = e.child[s];
      m->b = e.root;
      send(w, e.child[s], m);
    }
  }
  step_barrier_.arrive_and_wait();

  drain(w, w.batch);
  // The next level's queries go out with no intervening drain, so this
  // drain too must be fenced off from them; see R2.
  step_barrier_.arrive_and_wait();
  w.next_nodes.clear();
  for (Message* m : w.batch) {
    CLB_DCHECK(m->kind == MsgKind::kForward, "unexpected message in L5");
    RtNode node;
    node.slot = m->key;
    node.proc = m->a;
    node.root = m->b;
    w.next_nodes.push_back(std::move(node));
    delete m;
  }
  w.batch.clear();
  std::sort(w.next_nodes.begin(), w.next_nodes.end(),
            [](const RtNode& a, const RtNode& b) { return a.slot < b.slot; });
  w.nodes.swap(w.next_nodes);
  return next_node_count_;
}

// ---- main-thread aggregation ----

std::uint64_t Runtime::total_load() const {
  std::uint64_t s = 0;
  for (const auto& p : procs_) s += p.queue.size();
  return s;
}

std::uint64_t Runtime::total_generated() const {
  std::uint64_t s = 0;
  for (const auto& p : procs_) s += p.generated;
  return s;
}

std::uint64_t Runtime::total_consumed() const {
  std::uint64_t s = 0;
  for (const auto& p : procs_) s += p.consumed;
  return s;
}

bool Runtime::conservation_holds() const {
  return total_generated() + deposited_ ==
         total_consumed() + total_load() + dropped_tasks_;
}

sim::MessageCounters Runtime::messages() const {
  sim::MessageCounters total;
  for (const auto& w : workers_) {
    total.queries += w->msg.queries;
    total.accepts += w->msg.accepts;
    total.id_messages += w->msg.id_messages;
    total.control += w->msg.control;
    total.transfers += w->msg.transfers;
    total.tasks_moved += w->msg.tasks_moved;
  }
  return total;
}

std::uint64_t Runtime::clamped_transfers() const {
  std::uint64_t s = 0;
  for (const auto& w : workers_) s += w->clamped;
  return s;
}

std::vector<LedgerEntry> Runtime::ledger() const {
  std::vector<LedgerEntry> all;
  for (const auto& w : workers_) {
    all.insert(all.end(), w->ledger.begin(), w->ledger.end());
  }
  std::sort(all.begin(), all.end(),
            [](const LedgerEntry& a, const LedgerEntry& b) {
              if (a.step != b.step) return a.step < b.step;
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });
  return all;
}

stats::IntHistogram Runtime::sojourn_steps() const {
  stats::IntHistogram h;
  for (const auto& w : workers_) h.merge(w->sojourn_steps);
  return h;
}

stats::IntHistogram Runtime::sojourn_us() const {
  stats::IntHistogram h;
  for (const auto& w : workers_) h.merge(w->sojourn_us);
  return h;
}

std::uint64_t Runtime::remote_pushes() const {
  std::uint64_t s = 0;
  for (const auto& w : workers_) s += w->remote_pushes;
  return s;
}

std::uint64_t Runtime::self_pushes() const {
  std::uint64_t s = 0;
  for (const auto& w : workers_) s += w->self_pushes;
  return s;
}

void Runtime::deposit(std::uint32_t p, sim::Task t) {
  CLB_CHECK(p < cfg_.n, "deposit target out of range");
  procs_[p].queue.push_back(RtTask{t, cfg_.time_sojourn ? now_us() : 0});
  ++deposited_;
}

}  // namespace clb::rt
