#include "rt/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "analysis/bounds.hpp"
#include "rng/dist.hpp"
#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace clb::rt {

namespace {

// Must match the threshold balancer's game-seed derivation bit for bit.
constexpr std::uint64_t kGameSalt = 0x70686173656761ULL;  // "phasega"
// rt-only stream for all-in-air scatter targets (per processor, so the
// draw order is partition-invariant; the sim baseline draws from one global
// stream, which no sharded runtime can reproduce — documented non-goal).
constexpr std::uint64_t kScatterSalt = 0x727473636174ULL;  // "rtscat"

constexpr std::uint32_t kMaxA = 16;  // target slots per node (key packs j in 4 bits)

/// Busy work standing in for a task's compute cost. The asm constraint keeps
/// the loop from being optimised away without touching memory.
inline void spin(std::uint32_t iters) {
  std::uint64_t x = 0x9E3779B97F4A7C15ULL;
  for (std::uint32_t i = 0; i < iters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
#if defined(__GNUC__) || defined(__clang__)
    asm volatile("" : "+r"(x));
#endif
  }
}

bool key_less(const Message* a, const Message* b) {
  if (a->key != b->key) return a->key < b->key;
  return static_cast<int>(a->kind) < static_cast<int>(b->kind);
}

unsigned resolve_workers(const RtConfig& cfg) {
  unsigned w = cfg.workers != 0
                   ? cfg.workers
                   : std::max(1u, std::thread::hardware_concurrency());
  if (static_cast<std::uint64_t>(w) > cfg.n) {
    w = static_cast<unsigned>(cfg.n);
  }
  return w;
}

}  // namespace

const char* transport_name(Transport t) {
  switch (t) {
    case Transport::kInProc: return "inproc";
    case Transport::kUds: return "uds";
    case Transport::kTcp: return "tcp";
  }
  return "?";
}

const char* policy_name(RtPolicy p) {
  switch (p) {
    case RtPolicy::kNone: return "none";
    case RtPolicy::kThreshold: return "threshold";
    case RtPolicy::kAllInAir: return "all-in-air";
    case RtPolicy::kStaleSq: return "stale-sq";
    case RtPolicy::kLocalSearch: return "local-search";
  }
  return "?";
}

/// One query-tree node hosted at owner(proc). `slot` is the node's global
/// index at its level (dense, ascending across workers), which keys the
/// collision game's target draws exactly like the simulator's requesters
/// vector index.
struct Runtime::RtNode {
  std::uint64_t slot = 0;
  std::uint32_t proc = 0;
  std::uint32_t root = 0;
  std::uint32_t targets[kMaxA] = {};
  std::uint32_t accepted_mask = 0;
  std::uint32_t accept_count = 0;
  std::uint32_t round_replies = 0;
  bool active = false;
  std::uint8_t pending_children = 0;
  std::uint8_t status_nonapp = 0;
  std::vector<std::uint32_t> accepted;  // acceptance order (round, then j)
};

/// A forwarding parent's contribution to the next level: the leader's scan
/// assigns `base` = the global slot of child s=0.
struct Runtime::ScanEntry {
  std::uint64_t g = 0;  // parent slot
  std::uint64_t base = 0;
  std::uint32_t root = 0;
  std::uint32_t count = 0;  // 1 or 2
  std::uint32_t child[2] = {};
};

/// A matched (root, partner) pair awaiting its task move. Transfers are
/// staged when the match is decided and applied after a barrier, numbered
/// by a prefix scan over the worker shards — so the k-th transfer in
/// (step, source) order is the same protocol event at every worker count
/// (the drop_transfer_message victim selection relies on this).
struct StagedTransfer {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
};

/// State shared by the latency fabric (RtConfig::latency >= 1): the
/// delivery policy both fabrics derive timing from, the dist:: protocol
/// bounds, and the per-processor request state machines (each entry is
/// touched only by its shard's owner).
struct Runtime::LatencyShared {
  /// Mirrors dist::DistThresholdBalancer::Request field for field.
  struct LatReq {
    std::uint32_t targets[8] = {};
    std::uint32_t root = 0;
    std::uint64_t act_step = 0;
    std::uint64_t await_until = 0;
    std::uint8_t accepted_mask = 0;
    std::uint8_t accept_count = 0;
    std::uint8_t round = 1;
    std::uint8_t level = 1;
    std::uint32_t child[2] = {};
    bool child_applicative[2] = {false, false};
    bool active = false;
  };

  net::DeliveryPolicy policy;
  std::uint32_t round_budget = 0;
  std::uint64_t max_phase_steps = 0;
  std::vector<LatReq> req;

  explicit LatencyShared(net::DeliveryPolicy p) : policy(p) {}
};

struct alignas(64) Runtime::Worker {
  unsigned index = 0;
  std::uint64_t begin = 0, end = 0;  // owned processor shard [begin, end)
  Mailbox inbox;

  // Scratch.
  std::vector<Message*> batch;
  std::vector<RtNode> nodes, next_nodes;
  std::vector<std::uint32_t> heavy_local;
  std::vector<ScanEntry> scan;

  // Lockstep epochs — every worker advances these at the same points of the
  // superstep schedule, so a stamp comparison means the same thing anywhere.
  std::uint64_t phase_epoch = 0;
  std::uint64_t level_epoch = 0;
  std::uint64_t round_epoch = 0;
  std::uint64_t phase_count = 0;
  std::uint64_t sys_load = 0;  // total system load at start of current step
  std::uint64_t scatter_count = 0;

  // Per-phase stats tracked by all workers in lockstep (leader's copy is
  // the one that lands in RtPhaseSummary).
  std::uint64_t ph_requests = 0;
  std::uint32_t ph_levels = 0;
  std::uint32_t ph_rounds = 0;

  // Canonical transfer staging (both modes; see StagedTransfer).
  std::vector<StagedTransfer> staged;
  std::uint64_t transfer_seen = 0;  // replicated global transfer count

  // Latency fabric state (RtConfig::latency >= 1). Each worker owns one
  // shard of the unified substrate: a net::Fabric of the messages routed to
  // it and the net::LinkModel state of the links its processors send on
  // (every link (src, *) is planned by owner(src), in protocol order, so
  // the sharded link clocks replay the serial fabric's exactly).
  net::Fabric<Message*> fabric;
  net::LinkModel links;
  std::vector<Message*> due_batch;
  std::vector<const Message*> query_batch;
  std::vector<std::uint32_t> lat_active;  // own procs with live requests
  bool lat_running = false;               // replicated phase state
  std::uint64_t lat_phase_index = 0;
  std::uint64_t lat_phase_start = 0;
  std::uint64_t lat_next_phase = 0;
  std::uint64_t fab_sent = 0;       // protocol messages put on the fabric
  std::uint64_t fab_delivered = 0;  // ... matured or discarded
  std::uint64_t lat_failed = 0;     // requests that ran out of rounds
  std::uint64_t fab_lost_msgs = 0;  // link_loss_no_retransmit victims
  std::uint64_t dup_applied = 0;    // dup_delivery clones materialised
  net::SendStage seq_stage = net::SendStage::kDeliver;  // send context
  std::uint64_t seq_major = 0;
  std::uint32_t seq_minor = 0;

  // Telemetry (single-writer; see obs::WorkerTelemetry). `telem` is live,
  // `snap`/`snap_load` are the copies the snapshot emitter publishes so the
  // leader can read a consistent view while `telem` keeps moving.
  obs::WorkerTelemetry telem;
  obs::WorkerTelemetry snap;
  std::uint64_t snap_load = 0;
  std::uint64_t step_stall_ns = 0;  // barrier ns within the current step
  std::uint64_t cur_step = 0;       // step being executed (trace stamping)

  // Outputs, merged by the main thread after runs.
  sim::MessageCounters msg;
  std::uint64_t clamped = 0;
  std::vector<LedgerEntry> ledger;
  std::vector<LedgerEntry> dropped;  // drop_transfer_message victims
  std::uint64_t dropped_msgs = 0;
  std::uint64_t dropped_task_count = 0;
  std::uint64_t steal_sends = 0;  // own-victim steal batches shipped
  std::uint64_t stolen = 0;       // tasks those batches carried
  std::uint64_t steal_dups = 0;   // steal_duplicate_task clones left behind
  stats::IntHistogram sojourn_steps, sojourn_us;
  std::uint64_t remote_pushes = 0;
  std::uint64_t self_pushes = 0;

  std::thread thread;
};

Runtime::Runtime(RtConfig cfg, sim::LoadModel* model)
    : cfg_(cfg),
      model_(model),
      step_barrier_(resolve_workers(cfg)),
      cmd_barrier_(resolve_workers(cfg) + 1),
      start_tp_(std::chrono::steady_clock::now()) {
  CLB_CHECK(model_ != nullptr, "runtime needs a load model");
  CLB_CHECK(!model_->serial_generation(),
            "runtime requires a parallel-safe (counter-RNG) model");
  CLB_CHECK(cfg_.n >= 1 && cfg_.n <= (1ULL << 31),
            "runtime processor ids must fit comfortably in 32 bits");
  CLB_CHECK(cfg_.transport == Transport::kInProc,
            "rt::Runtime executes the in-proc substrate only; for kUds/kTcp "
            "construct a transport::ProcessRuntime from this config");
  const unsigned w = resolve_workers(cfg_);
  cfg_.workers = w;
  telemetry_ = cfg_.telemetry && obs::kTelemetryCompiled;
  if (cfg_.policy == RtPolicy::kThreshold) {
    CLB_CHECK(cfg_.params.n == cfg_.n,
              "phase params must be realised for this n (PhaseParams::from_n)");
    CLB_CHECK(cfg_.game.b >= 1 && cfg_.game.b <= 2,
              "query trees are binary: b must be 1 or 2");
    CLB_CHECK(cfg_.game.a >= 2 && cfg_.game.a <= kMaxA &&
                  static_cast<std::uint64_t>(cfg_.game.a) < cfg_.n,
              "collision fan-out a out of range");
    CLB_CHECK(cfg_.game.c >= 1, "collision capacity c must be >= 1");
  }
  if (cfg_.policy == RtPolicy::kAllInAir) {
    air_interval_ = cfg_.n >= 4
                        ? util::round_at_least(util::log2log2(cfg_.n), 1)
                        : 1;
  }
  if (cfg_.latency > 0) {
    CLB_CHECK(cfg_.policy == RtPolicy::kThreshold,
              "the latency fabric runs the threshold protocol only");
    CLB_CHECK(cfg_.game.a <= 8,
              "latency mode runs the dist protocol: a in [2, 8]");
    CLB_CHECK(static_cast<std::uint64_t>(cfg_.game.c) *
                      (cfg_.game.a - cfg_.game.b) >= 2,
              "latency mode: round bound needs c(a-b) >= 2");
    CLB_CHECK(cfg_.phase_gap >= 1, "latency mode: phase_gap must be >= 1");
    CLB_CHECK(!(cfg_.link_loss_no_retransmit || cfg_.dup_delivery) ||
                  cfg_.link.lossy(),
              "link mutations need a lossy link (link.loss_per_64k > 0)");
    lat_ = std::make_unique<LatencyShared>(
        cfg_.topology != nullptr
            ? net::DeliveryPolicy(cfg_.n, cfg_.latency, cfg_.topology,
                                  cfg_.link.jitter, cfg_.seed)
            : net::DeliveryPolicy(cfg_.n, cfg_.latency, cfg_.link.jitter,
                                  cfg_.seed));
    lat_->round_budget = static_cast<std::uint32_t>(
        std::ceil(analysis::collision_round_bound(cfg_.n, cfg_.game.a,
                                                  cfg_.game.b, cfg_.game.c)));
    lat_->max_phase_steps = cfg_.max_phase_steps;
    if (lat_->max_phase_steps == 0) {
      // The shared failsafe bound (dist:: derives the identical value).
      net::LinkModel probe;
      probe.configure(cfg_.link, cfg_.seed, lat_->policy.max_delay());
      lat_->max_phase_steps =
          net::phase_failsafe(cfg_.params.tree_depth, lat_->round_budget,
                              lat_->policy.max_delay(), probe.worst_extra());
    }
    lat_->req.assign(cfg_.n, LatencyShared::LatReq{});
  } else {
    CLB_CHECK(!cfg_.link.shaped(),
              "link-model knobs require the latency fabric (latency >= 1)");
    CLB_CHECK(!cfg_.link_loss_no_retransmit && !cfg_.dup_delivery,
              "link mutations require the latency fabric (latency >= 1)");
  }

  const bool zoo = cfg_.policy == RtPolicy::kStaleSq ||
                   cfg_.policy == RtPolicy::kLocalSearch;
  if (zoo) {
    CLB_CHECK(cfg_.latency == 0,
              "workload-zoo policies run on the instant fabric only");
    if (cfg_.policy == RtPolicy::kStaleSq) {
      CLB_CHECK(cfg_.stale.staleness >= 1, "stale-sq: staleness must be >= 1");
    }
    board_.resize(cfg_.n, 0);
    stale_board_.resize(cfg_.n, 0);
    alive_board_.resize(cfg_.n, 1);
  }
  CLB_CHECK(!cfg_.stale_read_fresh || cfg_.policy == RtPolicy::kStaleSq,
            "stale_read_fresh mutates the stale-sq policy only");
  if (!cfg_.crashes.empty()) {
    CLB_CHECK(cfg_.policy == RtPolicy::kNone || zoo,
              "a crash schedule requires a liveness-aware policy "
              "(none, stale-sq or local-search)");
    CLB_CHECK(cfg_.latency == 0,
              "crash/recovery runs on the instant fabric only");
    liveness_ = core::LivenessSchedule(cfg_.n, cfg_.crashes);
  }
  CLB_CHECK(!cfg_.crash_lose_queue || !cfg_.crashes.empty(),
            "crash_lose_queue needs a crash schedule");

  if (cfg_.steal.enabled) {
    CLB_CHECK(cfg_.latency == 0,
              "work stealing runs on the instant fabric only");
    steal_board_.resize(cfg_.n, 0);
    steal_dry_board_.resize(cfg_.n, 0);
    steal_alive_board_.resize(cfg_.n, 1);
  }
  CLB_CHECK(!cfg_.steal_duplicate_task || cfg_.steal.enabled,
            "steal_duplicate_task mutates the steal pass only");

  procs_.resize(cfg_.n);
  chunk_ = cfg_.n / w;
  extra_ = cfg_.n % w;
  split_ = extra_ * (chunk_ + 1);
  load_slots_[0].resize(w);
  load_slots_[1].resize(w);
  class_slots_.resize(w);
  active_slots_.resize(w);
  match_slots_.resize(w);
  if (lat_) {
    lat_flight_slots_.resize(w);
    lat_stage_slots_.resize(w);
  }

  workers_.reserve(w);
  for (unsigned i = 0; i < w; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->index = i;
    auto [b, e] = util::block_range(cfg_.n, w, i);
    worker->begin = b;
    worker->end = e;
    if (lat_) {
      worker->fabric.init(lat_->policy.max_delay());
      worker->links.configure(cfg_.link, cfg_.seed, lat_->policy.max_delay());
    }
    if (cfg_.arena) {
      // One bump arena per shard: consecutive processors' rings come from
      // consecutive arena bytes, so the owner's sequential step loop walks
      // its queue storage almost linearly (see rt/arena.hpp).
      arenas_.push_back(std::make_unique<TaskArena>());
      for (std::uint64_t p = b; p < e; ++p) {
        procs_[p].queue.use_arena(arenas_.back().get());
      }
    }
    workers_.push_back(std::move(worker));
  }
  for (unsigned i = 0; i < w; ++i) {
    Worker* wp = workers_[i].get();
    wp->thread = std::thread([this, wp] {
      // Adopt the shard index as this thread's worker ID so trace events
      // and telemetry emitted from here carry the right lane (the fix for
      // kTransfer/kPhase* events all reporting worker 0).
      util::ThreadPool::bind_worker_index(wp->index);
      worker_main(*wp);
    });
  }
}

Runtime::~Runtime() {
  cmd_stop_ = true;
  cmd_barrier_.arrive_and_wait();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  for (auto& w : workers_) {
    w->fabric.discard_pending([](Message* m) { delete m; });
  }
}

void Runtime::run(std::uint64_t steps) {
  if (steps == 0) return;
  cmd_steps_ = steps;
  const auto t0 = std::chrono::steady_clock::now();
  cmd_barrier_.arrive_and_wait();  // release the workers
  cmd_barrier_.arrive_and_wait();  // wait for completion
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  step_base_ += steps;
}

void Runtime::worker_main(Worker& w) {
  for (;;) {
    cmd_barrier_.arrive_and_wait();
    if (cmd_stop_) return;
    const std::uint64_t base = step_base_;
    const std::uint64_t count = cmd_steps_;
    for (std::uint64_t s = 0; s < count; ++s) step_once(w, base + s);
    cmd_barrier_.arrive_and_wait();
  }
}

unsigned Runtime::owner_of(std::uint64_t p) const {
  if (p < split_) return static_cast<unsigned>(p / (chunk_ + 1));
  return static_cast<unsigned>(extra_ + (p - split_) / chunk_);
}

std::uint32_t Runtime::now_us() const {
  return static_cast<std::uint32_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_tp_)
          .count());
}

void Runtime::send(Worker& w, std::uint32_t dest_proc, Message* m) {
  Worker& dst = *workers_[owner_of(dest_proc)];
  if (&dst == &w) {
    ++w.self_pushes;
#if CLB_TELEMETRY_ENABLED
    if (telemetry_) ++w.telem.enq_self;
#endif
  } else {
    ++w.remote_pushes;
#if CLB_TELEMETRY_ENABLED
    if (telemetry_) ++w.telem.enq_remote;
#endif
  }
  dst.inbox.push(m);
}

void Runtime::barrier(Worker& w) {
#if CLB_TELEMETRY_ENABLED
  if (telemetry_) {
    const std::uint64_t ns = step_barrier_.arrive_and_wait_timed();
    ++w.telem.barrier_waits;
    w.telem.stall_ns += ns;
    w.telem.stall_ns_hist.add(ns);
    w.step_stall_ns += ns;
    CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kBarrierWait, w.cur_step, 0, 0,
                    ns);
    return;
  }
#else
  (void)w;
#endif
  step_barrier_.arrive_and_wait();
}

void Runtime::apply_transfer([[maybe_unused]] Worker& w, const Message& m) {
  RtProcessor& dst = procs_[m.b];
  CLB_DCHECK(m.b >= w.begin && m.b < w.end, "transfer routed to wrong worker");
  dst.tasks_received += m.payload.size();
  for (const RtTask& t : m.payload) dst.queue.push_back(t);
}

void Runtime::drain(Worker& w, std::vector<Message*>& out) {
  out.clear();
  // Batched drain: one detach of the whole pending chain (drain_all) instead
  // of a per-message stub-cycling pop — FIFO order is identical, so the
  // outputs are bit-identical to the pop() loop this replaces.
  const std::uint64_t batch = w.inbox.drain_all([&](Message* m) {
    if (m->kind == MsgKind::kTransfer) {
      // Order-insensitive: at most one transfer reaches a given light per
      // phase (the assigned flag), so applying on drain keeps determinism.
      apply_transfer(w, *m);
      delete m;
      return;
    }
    out.push_back(m);
  });
#if CLB_TELEMETRY_ENABLED
  if (telemetry_) {
    ++w.telem.drains;
    w.telem.deq += batch;
    w.telem.drain_batch_hist.add(batch);
    CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kMailboxDrain, w.cur_step, 0, 0,
                    batch);
  }
#endif
}

void Runtime::drain_collect(Worker& w, std::vector<Message*>& out) {
  out.clear();
  const std::uint64_t batch =
      w.inbox.drain_all([&](Message* m) { out.push_back(m); });
#if CLB_TELEMETRY_ENABLED
  if (telemetry_) {
    ++w.telem.drains;
    w.telem.deq += batch;
    w.telem.drain_batch_hist.add(batch);
    CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kMailboxDrain, w.cur_step, 0, 0,
                    batch);
  }
#endif
}

void Runtime::process_crashes(Worker& w, std::uint64_t step) {
  if (liveness_.empty() || !liveness_.crash_step(step)) return;
  // Without the entry barrier a fast worker could already be generating
  // into this step's queues while the leader moves them; the exit barrier
  // publishes the moves before anyone reads the re-homed queues.
  barrier(w);
  if (w.index == 0) {
    for (const std::uint32_t c : liveness_.crashes_at(step)) {
      RtProcessor& src = procs_[c];
      if (cfg_.crash_lose_queue) {
        // Mutation: the orphaned queue vanishes, booked nowhere — the
        // conservation oracle's job to notice.
        crash_lost_tasks_ += src.queue.size();
        src.queue.clear();
        continue;
      }
      RtProcessor& dst = procs_[liveness_.rehome_target(c, step)];
      while (!src.queue.empty()) {
        dst.queue.push_back(src.queue.front());
        src.queue.pop_front();
        ++rehomed_tasks_;
      }
      ++rehomed_events_;
    }
  }
  barrier(w);
}

void Runtime::send_transfer(Worker& w, std::uint64_t step, std::uint32_t root,
                            std::uint32_t partner, std::uint64_t ordinal,
                            std::uint64_t count) {
  RtProcessor& src = procs_[root];
  if (count == 0) return;
  if (count > src.queue.size()) {
    count = src.queue.size();
    ++w.clamped;
  }
  auto* m = new Message;
  m->kind = MsgKind::kTransfer;
  m->key = root;
  m->a = root;
  m->b = partner;
  m->due = step;  // latency mode: payload hops mature the same step
  src.queue.extract_back(count, m->payload);
  src.tasks_sent += count;
  ++w.msg.transfers;
  w.msg.tasks_moved += count;
  w.ledger.push_back(LedgerEntry{step, root, partner,
                                 static_cast<std::uint32_t>(count)});
  CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kTransfer, step, root, partner,
                  count);
  if (ordinal != 0 && ordinal == cfg_.drop_transfer_message) {
    // The broken mailbox: the sender's books all say the transfer
    // happened, the receiver never sees it.
    ++w.dropped_msgs;
    w.dropped_task_count += count;
    w.dropped.push_back(LedgerEntry{step, root, partner,
                                    static_cast<std::uint32_t>(count)});
    delete m;
    return;
  }
  if (cfg_.link_loss_no_retransmit && lat_ &&
      w.links.mutation_lose_first_attempt(root, partner)) {
    // The lossy wire without retransmit: the payload evaporates mid-flight
    // and NOTHING books the loss — the tasks are gone from every account,
    // which is exactly what the conservation oracle must convict.
    ++w.fab_lost_msgs;
    delete m;
    return;
  }
  send(w, partner, m);
}

void Runtime::apply_staged_transfers(Worker& w, std::uint64_t step,
                                     std::uint64_t base, std::uint64_t total) {
  // Canonical order: ascending source processor. Shards are contiguous, so
  // base + local index is the transfer's global (step, source) ordinal.
  std::sort(w.staged.begin(), w.staged.end(),
            [](const StagedTransfer& a, const StagedTransfer& b) {
              return a.from < b.from;
            });
  std::uint64_t k = 0;
  for (const StagedTransfer& st : w.staged) {
    send_transfer(w, step, st.from, st.to, base + (++k),
                  cfg_.params.transfer_amount);
  }
  w.staged.clear();
  w.transfer_seen += total;
}

void Runtime::step_once(Worker& w, std::uint64_t step) {
  w.cur_step = step;
#if CLB_TELEMETRY_ENABLED
  std::chrono::steady_clock::time_point step_t0;
  if (telemetry_) {
    step_t0 = std::chrono::steady_clock::now();
    w.step_stall_ns = 0;
  }
#endif
  // Tracked unconditionally (two register adds per processor); folded into
  // the telemetry struct once per step below.
  std::uint64_t gen_total = 0, cons_total = 0;

  // ---- crash re-home (mirrors Engine::process_crashes) ----
  process_crashes(w, step);

  // ---- generate / consume (mirrors Engine::generate_consume_block) ----
  const std::uint64_t system_load = w.sys_load;
  const bool steal_on = cfg_.steal.enabled;
  for (std::uint64_t p = w.begin; p < w.end; ++p) {
    if (steal_on) steal_dry_board_[p] = 0;  // dead procs are never dry
    if (!liveness_.empty() && !liveness_.alive(p, step)) continue;
    RtProcessor& proc = procs_[p];
    const sim::StepAction act = model_->step_action(
        cfg_.seed, p, step, proc.queue.size(), system_load);
    for (std::uint32_t i = 0; i < act.generate; ++i) {
      proc.queue.push_back(
          RtTask{sim::Task{static_cast<std::uint32_t>(step),
                           static_cast<std::uint32_t>(p), act.weight},
                 cfg_.time_sojourn ? now_us() : 0});
    }
    proc.generated += act.generate;
    gen_total += act.generate;
    std::uint32_t c = act.consume;
    while (c > 0 && !proc.queue.empty()) {
      const RtTask t = proc.queue.front();
      proc.queue.pop_front();
      ++proc.consumed;
      ++cons_total;
      if (t.task.origin == p) ++proc.consumed_on_origin;
      if (cfg_.track_sojourn) w.sojourn_steps.add(step - t.task.birth_step);
      if (cfg_.time_sojourn) w.sojourn_us.add(now_us() - t.birth_us);
      if (cfg_.spin_work != 0) spin(cfg_.spin_work);
      --c;
    }
    // Dry = leftover consume budget (the loop invariant makes c > 0 imply
    // an emptied queue): this processor is a steal thief this step.
    if (steal_on && c > 0) steal_dry_board_[p] = 1;
  }

  // ---- work stealing (mirrors Engine::apply_steals) ----
  if (steal_on) run_steal(w, step);

  // ---- balancing policy ----
  bool phase_step = false;
  std::uint64_t scattered = 0;
  if (lat_) {
    run_lat_protocol(w, step);
  } else if (cfg_.policy == RtPolicy::kThreshold &&
             step % cfg_.params.phase_len == 0) {
    phase_step = true;
    run_phase(w, step);
  } else if (cfg_.policy == RtPolicy::kAllInAir &&
             step % air_interval_ == 0) {
    run_scatter(w, step);
    scattered = w.scatter_count;
  } else if (cfg_.policy == RtPolicy::kStaleSq ||
             cfg_.policy == RtPolicy::kLocalSearch) {
    run_zoo(w, step);
  }

  // ---- end-of-step load reduction (the engine's refresh_load_aggregates) --
  std::uint64_t local_load = 0, local_max = 0;
  for (std::uint64_t p = w.begin; p < w.end; ++p) {
    const std::uint64_t l = procs_[p].queue.size();
    local_load += l;
    if (l > local_max) local_max = l;
  }
  Slot& slot = load_slots_[step & 1][w.index];
  slot.v0 = local_load;
  slot.v1 = local_max;
  slot.v2 = scattered;
  barrier(w);
  std::uint64_t sys = 0, mx = 0, scat = 0;
  for (const Slot& s : load_slots_[step & 1]) {
    sys += s.v0;
    if (s.v1 > mx) mx = s.v1;
    scat += s.v2;
  }
  w.sys_load = sys;
  if (w.index == 0) {
    if (mx > running_max_load_) running_max_load_ = mx;
    if (scat > 0) ++w.msg.transfers;  // the sim baseline's one global action
  }
  if (phase_step) {
    if (w.index == 0) {
      // Compose the phase summary from the slots and per-worker heavy lists
      // published before the load barrier; the extra barrier below keeps the
      // other workers from mutating them until the leader is done.
      RtPhaseSummary ps;
      ps.phase_index = w.phase_count - 1;
      ps.start_step = step;
      ps.end_step = step;  // instant-fabric phases resolve within the step
      ps.completed = true;
      for (const auto& worker : workers_) {
        ps.heavy_procs.insert(ps.heavy_procs.end(),
                              worker->heavy_local.begin(),
                              worker->heavy_local.end());
      }
      ps.num_heavy = ps.heavy_procs.size();
      std::uint64_t matched = 0, light = 0;
      for (unsigned i = 0; i < worker_count(); ++i) {
        matched += match_slots_[i].v0;
        light += class_slots_[i].v1;
      }
      ps.num_light = light;
      ps.matched = matched;
      ps.unmatched = ps.num_heavy - matched;
      ps.requests = w.ph_requests;
      ps.levels_used = w.ph_levels;
      ps.collision_rounds = w.ph_rounds;
      CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kPhaseEnd, step, 0, 0,
                      ps.phase_index, ps.matched, ps.unmatched);
      phases_.push_back(std::move(ps));
    }
    barrier(w);
  }

#if CLB_TELEMETRY_ENABLED
  if (telemetry_) {
    w.telem.generated += gen_total;
    w.telem.consumed += cons_total;
    if (phase_step) {
      // Instant fabric: the phase resolved within this step (0 extra steps
      // to drain). Latency mode records its real durations in S3 instead.
      ++w.telem.phases;
      w.telem.phase_steps_hist.add(0);
    }
    const auto step_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - step_t0)
            .count());
    ++w.telem.steps;
    w.telem.step_ns += step_ns;
    w.telem.step_ns_hist.add(step_ns);
    CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kWorkerStep, step, 0, 0,
                    step_ns,
                    step_ns >= w.step_stall_ns ? step_ns - w.step_stall_ns : 0);

    // Snapshot emitter: publish a consistent copy behind a barrier, let the
    // leader serialise all workers, and fence the read with a second barrier
    // so no worker can overwrite its copy (at the next snapshot) while the
    // leader is still reading. Plain barriers on purpose: the emitter is
    // telemetry overhead, not a protocol stall.
    if (cfg_.telemetry_interval != 0 &&
        (step + 1) % cfg_.telemetry_interval == 0) {
      w.snap = w.telem;
      w.snap_load = local_load;
      step_barrier_.arrive_and_wait();
      if (w.index == 0) append_snapshots(step);
      step_barrier_.arrive_and_wait();
    }
  }
#else
  (void)gen_total;
  (void)cons_total;
#endif
}

void Runtime::run_scatter(Worker& w, std::uint64_t step) {
  // Pop every task in the shard front-to-back and throw it at an i.u.a.r.
  // processor. Targets come from a per-processor counter stream keyed by
  // (proc, step) so the draw sequence is partition-invariant.
  std::uint64_t scattered = 0;
  for (std::uint64_t p = w.begin; p < w.end; ++p) {
    RtProcessor& proc = procs_[p];
    rng::CounterRng rng(cfg_.seed, rng::hash_combine(kScatterSalt, p), step);
    std::uint64_t seq = 0;
    while (!proc.queue.empty()) {
      RtTask t = proc.queue.front();
      proc.queue.pop_front();
      const auto target = static_cast<std::uint32_t>(rng::bounded(rng, cfg_.n));
      auto* m = new Message;
      m->kind = MsgKind::kScatter;
      m->key = (p << 32) | seq;
      m->a = static_cast<std::uint32_t>(p);
      m->b = target;
      m->payload.push_back(t);
      send(w, target, m);
      ++seq;
    }
    scattered += seq;
  }
  w.msg.control += scattered;     // one routing message per task (as in sim)
  w.msg.tasks_moved += scattered;
  barrier(w);
  drain(w, w.batch);
  if (cfg_.deterministic) {
    std::sort(w.batch.begin(), w.batch.end(), key_less);
  }
  for (Message* m : w.batch) {
    CLB_DCHECK(m->kind == MsgKind::kScatter, "unexpected message in scatter");
    procs_[m->b].queue.push_back(m->payload[0]);
    delete m;
  }
  w.batch.clear();
  // step_once folds scatter_count into the end-of-step slot publication so
  // the leader can count the one global balancing action.
  w.scatter_count = scattered;
}

void Runtime::run_zoo(Worker& w, std::uint64_t step) {
  // Publish the fresh shard board: post-generation loads and liveness,
  // disjoint writes sealed by the barrier.
  for (std::uint64_t p = w.begin; p < w.end; ++p) {
    board_[p] = static_cast<std::uint32_t>(procs_[p].queue.size());
    alive_board_[p] = liveness_.alive(p, step) ? 1 : 0;
  }
  barrier(w);
  if (cfg_.policy == RtPolicy::kStaleSq &&
      step % cfg_.stale.staleness == 0) {
    // Broadcast step: refresh own shard of the stale board; the leader
    // books the n control messages, as the serial balancer does. Every
    // worker takes this branch or none does, so the barrier count matches.
    std::copy(board_.begin() + static_cast<std::ptrdiff_t>(w.begin),
              board_.begin() + static_cast<std::ptrdiff_t>(w.end),
              stale_board_.begin() + static_cast<std::ptrdiff_t>(w.begin));
    if (w.index == 0) w.msg.control += cfg_.n;
    barrier(w);
  }

  // Replicated decisions: every worker evaluates the same pure rule on the
  // same sealed boards, so the list — and the canonical ascending-sender
  // transfer numbering derived from it — is identical everywhere with no
  // leader scan.
  std::vector<sim::Transfer> ds;
  if (cfg_.policy == RtPolicy::kStaleSq) {
    ds = baselines::stale_sq_decisions(
        cfg_.n, board_, cfg_.stale_read_fresh ? board_ : stale_board_,
        alive_board_, cfg_.stale);
    if (cfg_.stale_read_fresh && w.index == 0) {
      // Mutation probe: count the steps on which the free lunch actually
      // changed the decisions (the fuzzer's mutation_applied witness).
      const std::vector<sim::Transfer> honest = baselines::stale_sq_decisions(
          cfg_.n, board_, stale_board_, alive_board_, cfg_.stale);
      bool same = honest.size() == ds.size();
      for (std::size_t i = 0; same && i < ds.size(); ++i) {
        same = honest[i].from == ds[i].from && honest[i].to == ds[i].to &&
               honest[i].count == ds[i].count;
      }
      if (!same) ++stale_cheat_divergence_;
    }
  } else {
    std::vector<std::uint32_t> probed;
    ds = baselines::local_search_decisions(cfg_.n, cfg_.seed, step, board_,
                                           alive_board_, cfg_.ls, &probed);
    if (w.index == 0) w.msg.queries += probed.size();
  }

  // Own-shard sends under the global numbering (list order == ascending
  // sender; shards are contiguous, so filtering by ownership keeps it).
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const sim::Transfer& d = ds[i];
    if (d.from < w.begin || d.from >= w.end) continue;
    ++procs_[d.from].balance_initiations;
    send_transfer(w, step, d.from, d.to, w.transfer_seen + i + 1, d.count);
  }
  w.transfer_seen += ds.size();
  barrier(w);

  // Arrivals: collect, order by sender, apply. Several senders may target
  // one receiver, so arrival order is not canonical — unlike the threshold
  // protocol's one-transfer-per-light, which is why drain()'s apply-on-
  // arrival shortcut cannot be used here. The decision rule's suppression
  // (no sender is also a receiver) makes send-time pops and sorted pushes
  // reproduce the engine's schedule-order application exactly.
  drain_collect(w, w.batch);
  std::sort(w.batch.begin(), w.batch.end(),
            [](const Message* x, const Message* y) { return x->a < y->a; });
  for (Message* m : w.batch) {
    CLB_DCHECK(m->kind == MsgKind::kTransfer, "unexpected message in zoo step");
    apply_transfer(w, *m);
    delete m;
  }
  w.batch.clear();
}

void Runtime::run_steal(Worker& w, std::uint64_t step) {
  // Publish the post-consume load and liveness boards; the dry board was
  // already written in place by this worker's consume loop. The barrier
  // seals all three before anyone evaluates the rule.
  for (std::uint64_t p = w.begin; p < w.end; ++p) {
    steal_board_[p] = static_cast<std::uint32_t>(procs_[p].queue.size());
    steal_alive_board_[p] = liveness_.alive(p, step) ? 1 : 0;
  }
  barrier(w);

  // Replicated decisions over sealed boards — the run_zoo discipline. The
  // list, and therefore the canonical transfer numbering derived from its
  // order, is identical on every worker for every worker count (the same
  // ordinal stream drop_transfer_message victims are chosen from).
  const std::vector<sim::Transfer> ds = sim::steal_decisions(
      cfg_.n, steal_board_, steal_dry_board_, steal_alive_board_, cfg_.steal);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const sim::Transfer& d = ds[i];
    // The thief initiated this move (mirrors the engine's booking).
    if (d.to >= w.begin && d.to < w.end) ++procs_[d.to].balance_initiations;
    if (d.from < w.begin || d.from >= w.end) continue;
    RtProcessor& src = procs_[d.from];
    RtTask dup{};
    if (cfg_.steal_duplicate_task) {
      // Mutation: remember the newest task about to ship...
      dup = src.queue[src.queue.size() - 1];
    }
    send_transfer(w, step, d.from, d.to, w.transfer_seen + i + 1, d.count);
    if (cfg_.steal_duplicate_task) {
      // ... and clone it back onto the victim — the steal that copies
      // instead of moving. Conservation breaks by one task per steal;
      // nothing books it. The oracle's job to convict.
      src.queue.push_back(dup);
      ++w.steal_dups;
    }
    ++w.steal_sends;
    w.stolen += d.count;
#if CLB_TELEMETRY_ENABLED
    if (telemetry_) {
      ++w.telem.steals;
      w.telem.stolen_tasks += d.count;
    }
#endif
  }
  w.transfer_seen += ds.size();
  barrier(w);

  // Arrivals in ascending-victim order, exactly like the zoo policies (a
  // thief receives at most one batch, but sorting keeps the application
  // order canonical regardless).
  drain_collect(w, w.batch);
  std::sort(w.batch.begin(), w.batch.end(),
            [](const Message* x, const Message* y) { return x->a < y->a; });
  for (Message* m : w.batch) {
    CLB_DCHECK(m->kind == MsgKind::kTransfer,
               "unexpected message in steal step");
    apply_transfer(w, *m);
    delete m;
  }
  w.batch.clear();
}

void Runtime::run_phase(Worker& w, std::uint64_t step) {
  ++w.phase_epoch;
  const std::uint64_t phase_index = w.phase_count++;
  const core::PhaseParams& pp = cfg_.params;
  w.ph_requests = 0;
  w.ph_levels = 0;
  w.ph_rounds = 0;

  // Classification from post-generation loads — the balancer's begin_phase.
  w.heavy_local.clear();
  std::uint64_t light_count = 0;
  for (std::uint64_t p = w.begin; p < w.end; ++p) {
    const std::uint64_t load = procs_[p].queue.size();
    if (load >= pp.heavy_threshold) {
      w.heavy_local.push_back(static_cast<std::uint32_t>(p));
      ++procs_[p].balance_initiations;
    } else if (load <= pp.light_threshold) {
      procs_[p].light_epoch = w.phase_epoch;
      ++light_count;
    }
  }
  class_slots_[w.index].v0 = w.heavy_local.size();
  class_slots_[w.index].v1 = light_count;
  barrier(w);

  std::uint64_t heavy_base = 0, total_heavy = 0;
  for (unsigned i = 0; i < worker_count(); ++i) {
    if (i < w.index) heavy_base += class_slots_[i].v0;
    total_heavy += class_slots_[i].v0;
  }
  if (w.index == 0) {
    std::uint64_t total_light = 0;
    for (unsigned i = 0; i < worker_count(); ++i) {
      total_light += class_slots_[i].v1;
    }
    CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kPhaseBegin, step, 0, 0,
                    phase_index, total_heavy, total_light);
  }

  // Level-1 nodes: the heavy processors themselves, slots in ascending
  // processor order (worker order = processor order by construction).
  w.nodes.clear();
  for (std::size_t i = 0; i < w.heavy_local.size(); ++i) {
    RtNode node;
    node.slot = heavy_base + i;
    node.proc = w.heavy_local[i];
    node.root = w.heavy_local[i];
    w.nodes.push_back(std::move(node));
  }

  std::uint64_t node_count = total_heavy;
  std::uint32_t level = 0;
  while (level < pp.tree_depth && node_count > 0) {
    ++level;
    node_count = run_level(w, step, phase_index, level, node_count);
  }

  std::uint64_t matched = 0;
  for (const std::uint32_t h : w.heavy_local) {
    if (procs_[h].matched_epoch == w.phase_epoch) ++matched;
  }
  match_slots_[w.index].v0 = matched;
  // No barrier here: the end-of-step load barrier publishes these slots.
}

std::uint64_t Runtime::run_level(Worker& w, std::uint64_t step,
                                 std::uint64_t phase_index,
                                 std::uint32_t level,
                                 std::uint64_t node_count) {
  const collision::CollisionConfig& game = cfg_.game;
  const std::uint64_t game_seed = rng::hash_combine(
      rng::hash_combine(cfg_.seed, kGameSalt),
      rng::hash_combine(phase_index, level));
  ++w.level_epoch;
  w.ph_levels = level;
  w.ph_requests += node_count;

  for (RtNode& node : w.nodes) {
    collision::draw_targets(cfg_.n, game_seed, node.slot, node.proc, game.a,
                            node.targets);
    node.accepted_mask = 0;
    node.accept_count = 0;
    node.round_replies = 0;
    node.active = true;
    node.pending_children = 0;
    node.status_nonapp = 0;
    node.accepted.clear();
  }

  // ---- collision rounds (Figure 1) as 3-superstep exchanges ----
  const std::uint32_t max_rounds = collision::round_bound(cfg_.n, game);
  std::uint64_t active_total = node_count;
  std::uint32_t round = 0;
  while (round < max_rounds && active_total > 0) {
    ++round;
    ++w.round_epoch;

    // R1: active requests query their not-yet-accepted targets.
    for (const RtNode& node : w.nodes) {
      if (!node.active) continue;
      for (std::uint32_t j = 0; j < game.a; ++j) {
        if (node.accepted_mask & (1u << j)) continue;
        auto* m = new Message;
        m->kind = MsgKind::kQuery;
        m->key = (node.slot << 4) | j;
        m->a = node.targets[j];
        m->b = node.proc;
        send(w, node.targets[j], m);
        ++w.msg.queries;
      }
    }
    barrier(w);

    // R2: each queried processor counts arrivals, then accepts all or none
    // (count-based, so no sort is needed for determinism), replying per
    // accepted query.
    //
    // Every drain whose segment also *sends* must close with a barrier
    // before the first send: without it a fast worker's replies land in a
    // slow worker's still-draining inbox and contaminate the batch with
    // next-exchange messages (the entry barrier only orders the *previous*
    // segment's sends). Same pattern at L2, L3, L4 and L5 below.
    drain(w, w.batch);
    barrier(w);
    for (const Message* m : w.batch) {
      CLB_DCHECK(m->kind == MsgKind::kQuery, "unexpected message in R2");
      RtProcessor& t = procs_[m->a];
      if (t.incoming_epoch != w.round_epoch) {
        t.incoming_epoch = w.round_epoch;
        t.incoming = 0;
      }
      ++t.incoming;
    }
    for (Message* m : w.batch) {
      RtProcessor& t = procs_[m->a];
      if (t.decide_epoch != w.round_epoch) {
        t.decide_epoch = w.round_epoch;
        const std::uint32_t prior =
            t.accept_epoch == w.level_epoch ? t.accepted_total : 0;
        t.accepts_round =
            t.incoming <= game.c && prior + t.incoming <= game.c;
        if (t.accepts_round) {
          t.accept_epoch = w.level_epoch;
          t.accepted_total = prior + t.incoming;
          w.msg.accepts += t.incoming;
        }
      }
      if (t.accepts_round) {
        auto* r = new Message;
        r->kind = MsgKind::kAccept;
        r->key = m->key;
        r->a = m->b;  // route back to the requesting node's processor
        send(w, m->b, r);
      }
      delete m;
    }
    w.batch.clear();
    barrier(w);

    // R3: requests collect accepts — mark reply bits first, then append in
    // j order (the simulator's pass-3 order); >= b accepts leaves the game.
    drain(w, w.batch);
    for (Message* m : w.batch) {
      CLB_DCHECK(m->kind == MsgKind::kAccept, "unexpected message in R3");
      const std::uint64_t slot = m->key >> 4;
      auto it = std::lower_bound(
          w.nodes.begin(), w.nodes.end(), slot,
          [](const RtNode& n, std::uint64_t s) { return n.slot < s; });
      CLB_DCHECK(it != w.nodes.end() && it->slot == slot,
                 "accept for unknown node");
      it->round_replies |= 1u << (m->key & 15);
      delete m;
    }
    w.batch.clear();
    std::uint64_t local_active = 0;
    for (RtNode& node : w.nodes) {
      if (!node.active) continue;
      if (node.round_replies != 0) {
        for (std::uint32_t j = 0; j < game.a; ++j) {
          if (node.round_replies & (1u << j)) {
            node.accepted_mask |= 1u << j;
            ++node.accept_count;
            node.accepted.push_back(node.targets[j]);
          }
        }
        node.round_replies = 0;
      }
      if (node.accept_count >= game.b) node.active = false;
      if (node.active) ++local_active;
    }
    active_slots_[w.index].v0 = local_active;
    barrier(w);
    active_total = 0;
    for (unsigned i = 0; i < worker_count(); ++i) {
      active_total += active_slots_[i].v0;
    }
  }
  w.ph_rounds += round;

  // ---- children announcement (first two accepts become tree children) ----
  for (RtNode& node : w.nodes) {
    const auto k =
        static_cast<std::uint8_t>(std::min<std::size_t>(node.accepted.size(), 2));
    node.pending_children = k;
    for (std::uint8_t s = 0; s < k; ++s) {
      auto* m = new Message;
      m->kind = MsgKind::kChild;
      m->key = (node.slot << 1) | s;
      m->a = node.accepted[s];
      m->b = node.root;
      m->c = node.proc;
      send(w, node.accepted[s], m);
    }
  }
  barrier(w);

  // ---- applicative decision at the children (the balancer's set_assigned
  // walk). Sorted by (g, s): the first edge in global (request, child)
  // order reserves a still-light, still-unassigned processor — exactly the
  // simulator's iteration order.
  drain(w, w.batch);
  barrier(w);  // id/status sends below; see R2
  if (cfg_.deterministic) std::sort(w.batch.begin(), w.batch.end(), key_less);
  for (Message* m : w.batch) {
    CLB_DCHECK(m->kind == MsgKind::kChild, "unexpected message in L2");
    const std::uint32_t q = m->a;
    RtProcessor& qp = procs_[q];
    const bool applicative = qp.light_epoch == w.phase_epoch &&
                             qp.assigned_epoch != w.phase_epoch;
    if (applicative) {
      qp.assigned_epoch = w.phase_epoch;
      auto* id = new Message;
      id->kind = MsgKind::kId;
      id->key = m->key;
      id->a = m->b;  // root
      id->b = q;
      send(w, m->b, id);
      ++w.msg.id_messages;
    }
    auto* st = new Message;
    st->kind = MsgKind::kChildStatus;
    st->key = m->key;
    st->a = m->c;  // parent
    st->b = applicative ? 1 : 0;
    send(w, m->c, st);
    delete m;
  }
  w.batch.clear();
  barrier(w);

  // ---- roots match on the first id (sorted: lowest (g, s) edge wins, as
  // in the simulator); parents apply the sibling rule and stage forwards.
  drain(w, w.batch);
  barrier(w);  // transfer sends below; see R2
  if (cfg_.deterministic) std::sort(w.batch.begin(), w.batch.end(), key_less);
  for (Message* m : w.batch) {
    if (m->kind == MsgKind::kId) {
      RtProcessor& root = procs_[m->a];
      if (root.matched_epoch != w.phase_epoch) {
        root.matched_epoch = w.phase_epoch;
        root.matched_partner = m->b;
        // Stage the task move; it is applied after the scan barrier below
        // under a canonical (step, source) numbering (see StagedTransfer).
        w.staged.push_back(StagedTransfer{m->a, m->b});
      }
    } else {
      CLB_DCHECK(m->kind == MsgKind::kChildStatus, "unexpected message in L3");
      const std::uint64_t g = m->key >> 1;
      auto it = std::lower_bound(
          w.nodes.begin(), w.nodes.end(), g,
          [](const RtNode& n, std::uint64_t s) { return n.slot < s; });
      CLB_DCHECK(it != w.nodes.end() && it->slot == g,
                 "status for unknown node");
      if (m->b == 0) ++it->status_nonapp;
    }
    delete m;
  }
  w.batch.clear();
  w.scan.clear();
  for (RtNode& node : w.nodes) {
    const std::uint8_t k = node.pending_children;
    std::uint32_t forward = 0;
    if (k == 2 && node.status_nonapp == 2) {
      // Sibling rule: both children learn (two control messages) that
      // neither was applicative and carry the search down.
      w.msg.control += 2;
      forward = 2;
    } else if (k == 1 && node.status_nonapp == 1) {
      forward = 1;
    }
    if (forward != 0) {
      ScanEntry e;
      e.g = node.slot;
      e.root = node.root;
      e.count = forward;
      e.child[0] = node.accepted[0];
      if (forward == 2) e.child[1] = node.accepted[1];
      w.scan.push_back(e);
    }
  }
  active_slots_[w.index].v1 = w.staged.size();
  barrier(w);

  // ---- staged transfers: every worker derives the same global numbering
  // from the published per-worker counts (prefix over the shards), then
  // pops and ships its own pairs. The sends land in mailboxes and are
  // drained at the transfer drain below, after the next barrier.
  std::uint64_t staged_base = w.transfer_seen;
  std::uint64_t staged_total = 0;
  for (unsigned i = 0; i < worker_count(); ++i) {
    if (i < w.index) staged_base += active_slots_[i].v1;
    staged_total += active_slots_[i].v1;
  }
  apply_staged_transfers(w, step, staged_base, staged_total);

  // ---- leader scan: dense global numbering for next-level nodes. Merging
  // the per-worker scan lists by parent slot g makes the child numbering
  // identical for every worker count.
  if (w.index == 0) {
    std::vector<std::size_t> idx(worker_count(), 0);
    std::uint64_t base = 0;
    for (;;) {
      std::size_t best = worker_count();
      std::uint64_t best_g = 0;
      for (std::size_t i = 0; i < worker_count(); ++i) {
        Worker& other = *workers_[i];
        if (idx[i] >= other.scan.size()) continue;
        const std::uint64_t g = other.scan[idx[i]].g;
        if (best == worker_count() || g < best_g) {
          best = i;
          best_g = g;
        }
      }
      if (best == worker_count()) break;
      ScanEntry& e = workers_[best]->scan[idx[best]++];
      e.base = base;
      base += e.count;
    }
    next_node_count_ = base;
  }
  barrier(w);

  // ---- forward children into next-level nodes (any transfers sent while
  // matching above are drained and applied here).
  drain(w, w.batch);
  CLB_DCHECK(w.batch.empty(), "only transfers may be in flight after L3");
  barrier(w);  // forward sends below; see R2
  for (const ScanEntry& e : w.scan) {
    for (std::uint32_t s = 0; s < e.count; ++s) {
      auto* m = new Message;
      m->kind = MsgKind::kForward;
      m->key = e.base + s;
      m->a = e.child[s];
      m->b = e.root;
      send(w, e.child[s], m);
    }
  }
  barrier(w);

  drain(w, w.batch);
  // The next level's queries go out with no intervening drain, so this
  // drain too must be fenced off from them; see R2.
  barrier(w);
  w.next_nodes.clear();
  for (Message* m : w.batch) {
    CLB_DCHECK(m->kind == MsgKind::kForward, "unexpected message in L5");
    RtNode node;
    node.slot = m->key;
    node.proc = m->a;
    node.root = m->b;
    w.next_nodes.push_back(std::move(node));
    delete m;
  }
  w.batch.clear();
  std::sort(w.next_nodes.begin(), w.next_nodes.end(),
            [](const RtNode& a, const RtNode& b) { return a.slot < b.slot; });
  w.nodes.swap(w.next_nodes);
  return next_node_count_;
}

// ===========================================================================
// Latency fabric (RtConfig::latency >= 1): the dist:: threshold protocol on
// real threads. Every protocol message is stamped with its delivery step
// (due = LinkModel::plan over the DeliveryPolicy wire delay) and its
// canonical net::SeqKey; the recipient's owner files it into its shard of
// the unified net::Fabric and only processes it once its step matures — so
// phases take real time and their duration scales with the latency (and
// the link model's queueing and retransmit schedules), exactly as in dist::.
//
// One latency step (mirrors dist::DistThresholdBalancer::on_step against
// sim::Engine's step schedule; barriers marked):
//
//   S1  process own ring slot due == step (handle_deliveries): queries are
//       batched per recipient, accepts/ids/forwards handled inline, transfer
//       commands staged. Sends stamped (kDeliver, recipient, k).
//   S2  evaluate own outstanding requests (timeouts, retries, forwards),
//       stamped (kEvaluate, (activation step, proc), k).
//       publish {active, fab_sent, fab_delivered} and {staged, matched}.
//   --- barrier A ---
//   S3  replicated phase decision: finish when drained (no active requests,
//       nothing in flight) or overdue (forced: every worker discards its
//       undelivered messages — dist's net reset — behind an extra barrier).
//   S4  start a phase when idle and past the gap: classify own shard from
//       current queue sizes (pre-transfer, as the engine's balancer sees
//       them), stamp lights, launch requests for own heavy processors.
//   S5  apply staged transfers in canonical (step, source) order via the
//       published prefix counts; payload messages (due = step) carry the
//       tasks to the partner's owner.
//   --- barrier B ---   (leader assembles the phase-start summary here)
//   S6  drain own mailbox: apply due-now payloads, file everything else
//       into the fabric by due step.
//
// The closing load-reduction barrier in step_once seals the step: messages
// sent in S1/S2/S4 were all filed by their owner in S6, so the next step's
// S1 sees a complete, quiescent fabric.
// ===========================================================================

void Runtime::lat_send(Worker& w, std::uint64_t step, Message* m) {
  m->seq = net::SeqKey{step, w.seq_stage, w.seq_major, w.seq_minor++};
  // The link model decides when the send matures (wire delay plus queueing
  // and retransmit schedule); `m->from` is always owned by this worker, so
  // the sharded per-link clocks replay the serial fabric's exactly.
  const net::SendPlan plan =
      w.links.plan(m->from, m->to, step, lat_->policy.delay(m->from, m->to));
  std::uint64_t due = plan.due;
  if (cfg_.delay_skew_message != 0) {
    const std::uint64_t ord =
        skew_send_ordinal_.fetch_add(1, std::memory_order_relaxed) + 1;
    // The skewed fabric: one message matures a superstep early.
    if (ord == cfg_.delay_skew_message && due > step + 1) --due;
  }
  m->due = due;
  ++w.fab_sent;
  // Transfer commands are staged (and popped) at the source's owner; every
  // other kind goes to its protocol recipient.
  const std::uint32_t route =
      m->kind == MsgKind::kTransferCmd ? m->from : m->to;
  if (plan.dup && cfg_.dup_delivery && m->kind == MsgKind::kTransferCmd) {
    // The dup-delivery mutation: materialise the ack-loss duplicate the
    // clean fabric suppresses. The clone matures one rto later, stages the
    // same transfer a second time, and the ledger diverges from the shadow.
    auto* d = new Message;
    d->kind = m->kind;
    d->from = m->from;
    d->to = m->to;
    d->seq = m->seq;
    d->due = plan.dup_due;
    ++w.fab_sent;  // the clone matures too; drain detection stays exact
    ++w.dup_applied;
    send(w, route, d);
  }
  send(w, route, m);
}

void Runtime::lat_send_pending_queries(Worker& w, std::uint64_t step,
                                       std::uint32_t proc) {
  auto& r = lat_->req[proc];
  // The round ends when the slowest outstanding target could have replied.
  std::uint64_t worst_delay = 1;
  for (std::uint32_t j = 0; j < cfg_.game.a; ++j) {
    if (r.accepted_mask & (1u << j)) continue;
    auto* m = new Message;
    m->kind = MsgKind::kQuery;
    m->from = proc;
    m->to = r.targets[j];
    m->a = r.root;
    m->b = r.level;
    lat_send(w, step, m);
    ++w.msg.queries;
    worst_delay = std::max(worst_delay, lat_->policy.delay(proc, r.targets[j]));
  }
  r.await_until = step + 2ULL * worst_delay;
}

void Runtime::lat_start_request(Worker& w, std::uint64_t step,
                                std::uint32_t proc, std::uint32_t root,
                                std::uint32_t level) {
  auto& r = lat_->req[proc];
  CLB_DCHECK(!r.active, "processor already runs a request this phase");
  r = LatencyShared::LatReq{};
  r.root = root;
  r.act_step = step;
  r.level = static_cast<std::uint8_t>(level);
  r.active = true;
  // Fixed i.u.a.r. target set, excluding self — the same counter stream as
  // dist::DistThresholdBalancer::start_request, draw for draw.
  rng::CounterRng rng(cfg_.seed,
                      rng::hash_combine(net::kDistTargetSalt,
                                        rng::hash_combine(proc, level)),
                      w.lat_phase_index);
  for (std::uint32_t j = 0; j < cfg_.game.a; ++j) {
    for (;;) {
      const auto cand = static_cast<std::uint32_t>(rng::bounded(rng, cfg_.n));
      if (cand == proc) continue;
      bool dup = false;
      for (std::uint32_t k = 0; k < j; ++k) {
        if (r.targets[k] == cand) {
          dup = true;
          break;
        }
      }
      if (!dup) {
        r.targets[j] = cand;
        break;
      }
    }
  }
  w.lat_active.push_back(proc);
  lat_send_pending_queries(w, step, proc);
}

void Runtime::lat_process_due(Worker& w, std::uint64_t step) {
  w.due_batch.clear();
  w.fabric.take_due(step, w.due_batch);
  auto& due = w.due_batch;
  w.fab_delivered += due.size();
  // Group by the processor whose state the message updates (the source for
  // staged transfer commands, the recipient otherwise); the canonical seq
  // stamp orders processing within a group in deterministic mode — the
  // exact sort dist::Network::deliver runs.
  const auto group_of = [](const Message* m) {
    return m->kind == MsgKind::kTransferCmd ? m->from : m->to;
  };
  net::sort_due_batch(
      due, group_of,
      [](const Message* m) -> const net::SeqKey& { return m->seq; },
      cfg_.deterministic);
  std::size_t i = 0;
  while (i < due.size()) {
    const std::uint32_t recipient = group_of(due[i]);
    w.seq_stage = net::SendStage::kDeliver;
    w.seq_major = recipient;
    w.seq_minor = 0;
    w.query_batch.clear();
    std::size_t j = i;
    for (; j < due.size() && group_of(due[j]) == recipient; ++j) {
      const Message* m = due[j];
      CLB_DCHECK(m->due == step, "ring slot held a message for another step");
      switch (m->kind) {
        case MsgKind::kQuery:
          w.query_batch.push_back(m);
          break;
        case MsgKind::kAccept: {
          auto& r = lat_->req[recipient];
          if (!r.active) break;  // stale accept after request resolved
          for (std::uint32_t t = 0; t < cfg_.game.a; ++t) {
            if (r.targets[t] == m->from && !(r.accepted_mask & (1u << t))) {
              r.accepted_mask = static_cast<std::uint8_t>(
                  r.accepted_mask | (1u << t));
              if (r.accept_count < 2) {
                r.child[r.accept_count] = m->from;
                r.child_applicative[r.accept_count] = m->b != 0;
              }
              ++r.accept_count;
              break;
            }
          }
          break;
        }
        case MsgKind::kId: {
          RtProcessor& root = procs_[recipient];
          if (root.matched_epoch != w.phase_epoch) {
            root.matched_epoch = w.phase_epoch;
            root.matched_partner = m->from;
            // Ship the block: the command matures delay(root, partner)
            // steps from now at this same owner, which then pops the tasks.
            auto* cmd = new Message;
            cmd->kind = MsgKind::kTransferCmd;
            cmd->from = recipient;
            cmd->to = m->from;
            lat_send(w, step, cmd);
          }
          break;
        }
        case MsgKind::kForward:
          if (!lat_->req[recipient].active) {
            lat_start_request(w, step, recipient, m->a, m->b);
          }
          ++w.msg.control;
          break;
        case MsgKind::kTransferCmd:
          w.staged.push_back(StagedTransfer{m->from, m->to});
          break;
        default:
          CLB_DCHECK(false, "unexpected message kind in latency drain");
          break;
      }
    }
    if (!w.query_batch.empty()) {
      // Collision rule: answer all queries of this step iff they fit within
      // the remaining per-phase capacity c; otherwise answer none (the
      // requesters time out and retry).
      RtProcessor& tp = procs_[recipient];
      const std::uint32_t already =
          tp.accept_epoch == w.phase_epoch ? tp.accepted_total : 0;
      const std::size_t count = w.query_batch.size();
      if (count <= cfg_.game.c && already + count <= cfg_.game.c) {
        tp.accept_epoch = w.phase_epoch;
        tp.accepted_total = already + static_cast<std::uint32_t>(count);
        for (const Message* q : w.query_batch) {
          bool applicative = false;
          if (tp.light_epoch == w.phase_epoch &&
              tp.assigned_epoch != w.phase_epoch) {
            applicative = true;
            tp.assigned_epoch = w.phase_epoch;
            // Announce directly to the boss (its id rode in the query).
            auto* id = new Message;
            id->kind = MsgKind::kId;
            id->from = recipient;
            id->to = q->a;
            lat_send(w, step, id);
            ++w.msg.id_messages;
          }
          auto* ac = new Message;
          ac->kind = MsgKind::kAccept;
          ac->from = recipient;
          ac->to = q->from;
          ac->a = q->a;
          ac->b = applicative ? 1u : 0u;
          lat_send(w, step, ac);
          ++w.msg.accepts;
        }
      }
    }
    i = j;
  }
  for (Message* m : due) delete m;
  due.clear();
}

void Runtime::lat_evaluate(Worker& w, std::uint64_t step) {
  std::size_t wr = 0;
  for (std::size_t idx = 0; idx < w.lat_active.size(); ++idx) {
    const std::uint32_t proc = w.lat_active[idx];
    auto& r = lat_->req[proc];
    if (!r.active) continue;  // resolved elsewhere (defensive)
    if (step < r.await_until) {
      w.lat_active[wr++] = proc;
      continue;
    }
    w.seq_stage = net::SendStage::kEvaluate;
    w.seq_major = net::evaluate_major(r.act_step, proc);
    w.seq_minor = 0;
    if (r.accept_count >= cfg_.game.b) {
      // Request complete. Applicative children already announced
      // themselves; a fully non-applicative pair forwards the search.
      const std::uint32_t kids = std::min<std::uint32_t>(r.accept_count, 2);
      bool any_applicative = false;
      for (std::uint32_t k = 0; k < kids; ++k) {
        any_applicative |= r.child_applicative[k];
      }
      if (!any_applicative && r.level < cfg_.params.tree_depth) {
        for (std::uint32_t k = 0; k < kids; ++k) {
          auto* m = new Message;
          m->kind = MsgKind::kForward;
          m->from = proc;
          m->to = r.child[k];
          m->a = r.root;
          m->b = static_cast<std::uint32_t>(r.level + 1);
          lat_send(w, step, m);
        }
      }
      r.active = false;
    } else if (r.round < lat_->round_budget) {
      ++r.round;
      lat_send_pending_queries(w, step, proc);
      w.lat_active[wr++] = proc;
    } else {
      ++w.lat_failed;
      r.active = false;
    }
  }
  w.lat_active.resize(wr);
}

void Runtime::lat_discard_undelivered(Worker& w) {
  // dist's forced net reset, shard by shard: every undelivered message is
  // either in its owner's fabric or still in a mailbox (sent this step, not
  // yet filed); the owner discards both and books them as delivered so the
  // fabric reads as drained everywhere. The link clocks reset with it — a
  // forced end abandons the wire (dist::Network::reset does the same).
  w.fabric.discard_pending([&](Message* m) {
    ++w.fab_delivered;
    delete m;
  });
  w.links.reset();
  while (Message* m = w.inbox.pop()) {
    CLB_DCHECK(m->kind != MsgKind::kTransfer,
               "payloads cannot be in flight at the phase decision");
    ++w.fab_delivered;
#if CLB_TELEMETRY_ENABLED
    // Book the pop so enqueue == dequeue stays an invariant (messages filed
    // into rings were already counted at their lat_drain_and_file pop).
    if (telemetry_) ++w.telem.deq;
#endif
    delete m;
  }
}

void Runtime::lat_drain_and_file(Worker& w, std::uint64_t step) {
  std::uint64_t batch = 0;
  while (Message* m = w.inbox.pop()) {
    ++batch;
    if (m->kind == MsgKind::kTransfer) {
      // Due-now payload: the partner's owner appends the tasks, closing the
      // move the source's owner started in S5 this step.
      CLB_DCHECK(m->due == step, "stale transfer payload");
      apply_transfer(w, *m);
      delete m;
      continue;
    }
    // Fabric::file DCHECKs due > now — the deterministic-replay guarantee.
    w.fabric.file(step, m->due, m);
  }
#if CLB_TELEMETRY_ENABLED
  if (telemetry_) {
    ++w.telem.drains;
    w.telem.deq += batch;
    w.telem.drain_batch_hist.add(batch);
    CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kMailboxDrain, step, 0, 0,
                    batch);
  }
#else
  (void)batch;
#endif
}

void Runtime::run_lat_protocol(Worker& w, std::uint64_t step) {
  // S1 + S2: deliveries, then request evaluation (dist's on_step order).
  lat_process_due(w, step);
  lat_evaluate(w, step);

  // Publish the replicated decision inputs and per-phase tallies.
  Slot& fs = lat_flight_slots_[w.index];
  fs.v0 = w.lat_active.size();
  fs.v1 = w.fab_sent;
  fs.v2 = w.fab_delivered;
  std::uint64_t matched_local = 0;
  for (const std::uint32_t h : w.heavy_local) {
    if (procs_[h].matched_epoch == w.phase_epoch) ++matched_local;
  }
  Slot& ss = lat_stage_slots_[w.index];
  ss.v0 = w.staged.size();
  ss.v1 = matched_local;
  barrier(w);  // barrier A

  // S3: the replicated phase decision — every worker computes the same
  // totals from the published slots, so every worker takes the same branch.
  std::uint64_t active_total = 0, sent = 0, delivered = 0;
  std::uint64_t staged_total = 0, staged_base = w.transfer_seen;
  std::uint64_t matched_total = 0;
  for (unsigned i = 0; i < worker_count(); ++i) {
    active_total += lat_flight_slots_[i].v0;
    sent += lat_flight_slots_[i].v1;
    delivered += lat_flight_slots_[i].v2;
    staged_total += lat_stage_slots_[i].v0;
    if (i < w.index) staged_base += lat_stage_slots_[i].v0;
    matched_total += lat_stage_slots_[i].v1;
  }
#if CLB_TELEMETRY_ENABLED
  // Fabric depth sampling. The totals are replicated (every worker computes
  // the same sums), so only the leader records them — merging would multiply
  // the sums by the worker count.
  if (telemetry_ && w.index == 0) {
    const std::uint64_t flight = sent - delivered;
    if (flight > w.telem.fabric_max_in_flight) {
      w.telem.fabric_max_in_flight = flight;
    }
    w.telem.fabric_flight_sum += flight;
    ++w.telem.fabric_flight_samples;
  }
#endif
  if (w.lat_running) {
    const bool drained = active_total == 0 && sent == delivered;
    const bool overdue = step - w.lat_phase_start >= lat_->max_phase_steps;
    if (drained || overdue) {
      const bool forced = overdue && !drained;
#if CLB_TELEMETRY_ENABLED
      // Replicated branch: every worker records the (identical) phase
      // duration, keeping `phases` a lockstep per-worker count.
      if (telemetry_) {
        ++w.telem.phases;
        w.telem.phase_steps_hist.add(step - w.lat_phase_start);
      }
#endif
      if (forced) {
        for (const std::uint32_t proc : w.lat_active) {
          lat_->req[proc].active = false;
        }
        w.lat_active.clear();
        lat_discard_undelivered(w);
      }
      if (w.index == 0) {
        RtPhaseSummary& ps = phases_.back();
        ps.end_step = step;
        ps.matched = matched_total;
        ps.unmatched = ps.num_heavy - matched_total;
        ps.forced = forced;
        ps.completed = true;
        CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kPhaseEnd, step, 0, 0,
                        ps.phase_index, ps.matched, ps.unmatched);
      }
      w.lat_running = false;
      w.lat_next_phase = step + cfg_.phase_gap;
      if (forced) {
        // Fence the discards from the payload sends of S5: a replicated
        // branch, so either every worker arrives here or none does.
        barrier(w);
      }
    }
  }

  // S4: start a phase. Classification reads the queues before this step's
  // transfers are applied — the engine's balancer sees exactly that state.
  if (!w.lat_running && step >= w.lat_next_phase) {
    ++w.phase_epoch;
    ++w.lat_phase_index;
    w.lat_running = true;
    w.lat_phase_start = step;
    const core::PhaseParams& pp = cfg_.params;
    w.heavy_local.clear();
    std::uint64_t light_count = 0;
    for (std::uint64_t p = w.begin; p < w.end; ++p) {
      const std::uint64_t load = procs_[p].queue.size();
      if (load >= pp.heavy_threshold) {
        w.heavy_local.push_back(static_cast<std::uint32_t>(p));
        ++procs_[p].balance_initiations;
      } else if (load <= pp.light_threshold) {
        procs_[p].light_epoch = w.phase_epoch;
        ++light_count;
      }
    }
    class_slots_[w.index].v0 = w.heavy_local.size();
    class_slots_[w.index].v1 = light_count;
    for (const std::uint32_t h : w.heavy_local) {
      w.seq_stage = net::SendStage::kPhaseStart;
      w.seq_major = h;
      w.seq_minor = 0;
      lat_start_request(w, step, h, h, 1);
    }
  }

  // S5: apply this step's staged transfers under the canonical numbering.
  apply_staged_transfers(w, step, staged_base, staged_total);
  barrier(w);  // barrier B

  if (w.index == 0 && w.lat_running && w.lat_phase_start == step) {
    // Leader assembles the phase-start summary from the classification
    // slots and heavy lists published before barrier B. No worker mutates
    // them again before the next phase start, which is behind barrier A of
    // a later step — the leader is long done by then.
    RtPhaseSummary ps;
    ps.phase_index = w.lat_phase_index;
    ps.start_step = step;
    std::uint64_t total_light = 0;
    for (unsigned i = 0; i < worker_count(); ++i) {
      const Worker& other = *workers_[i];
      ps.heavy_procs.insert(ps.heavy_procs.end(), other.heavy_local.begin(),
                            other.heavy_local.end());
      total_light += class_slots_[i].v1;
    }
    ps.num_heavy = ps.heavy_procs.size();
    ps.num_light = total_light;
    CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kPhaseBegin, step, 0, 0,
                    ps.phase_index, ps.num_heavy, ps.num_light);
    phases_.push_back(std::move(ps));
  }

  // S6: drain the mailbox — apply due-now payloads, file the rest.
  lat_drain_and_file(w, step);
}

// ---- main-thread aggregation ----

std::uint64_t Runtime::total_load() const {
  std::uint64_t s = 0;
  for (const auto& p : procs_) s += p.queue.size();
  return s;
}

std::uint64_t Runtime::total_generated() const {
  std::uint64_t s = 0;
  for (const auto& p : procs_) s += p.generated;
  return s;
}

std::uint64_t Runtime::total_consumed() const {
  std::uint64_t s = 0;
  for (const auto& p : procs_) s += p.consumed;
  return s;
}

bool Runtime::conservation_holds() const {
  return total_generated() + deposited_ ==
         total_consumed() + total_load() + dropped_tasks();
}

std::uint64_t Runtime::dropped_messages() const {
  std::uint64_t s = 0;
  for (const auto& w : workers_) s += w->dropped_msgs;
  return s;
}

std::uint64_t Runtime::dropped_tasks() const {
  std::uint64_t s = 0;
  for (const auto& w : workers_) s += w->dropped_task_count;
  return s;
}

std::vector<LedgerEntry> Runtime::dropped_log() const {
  std::vector<LedgerEntry> all;
  for (const auto& w : workers_) {
    all.insert(all.end(), w->dropped.begin(), w->dropped.end());
  }
  std::sort(all.begin(), all.end(),
            [](const LedgerEntry& a, const LedgerEntry& b) {
              if (a.step != b.step) return a.step < b.step;
              return a.from < b.from;
            });
  return all;
}

std::uint64_t Runtime::fabric_sent() const {
  std::uint64_t s = 0;
  for (const auto& w : workers_) s += w->fab_sent;
  return s;
}

std::uint64_t Runtime::fabric_in_flight() const {
  std::uint64_t sent = 0, delivered = 0;
  for (const auto& w : workers_) {
    sent += w->fab_sent;
    delivered += w->fab_delivered;
  }
  return sent - delivered;
}

std::uint64_t Runtime::fabric_retransmits() const {
  std::uint64_t s = 0;
  for (const auto& w : workers_) s += w->links.retransmits();
  return s;
}

std::uint64_t Runtime::fabric_dup_suppressed() const {
  std::uint64_t s = 0;
  for (const auto& w : workers_) s += w->links.dup_suppressed();
  return s;
}

std::uint64_t Runtime::fabric_queued_delay() const {
  std::uint64_t s = 0;
  for (const auto& w : workers_) s += w->links.queued_delay();
  return s;
}

std::uint64_t Runtime::link_lost_messages() const {
  std::uint64_t s = 0;
  for (const auto& w : workers_) s += w->fab_lost_msgs;
  return s;
}

std::uint64_t Runtime::dup_delivered() const {
  std::uint64_t s = 0;
  for (const auto& w : workers_) s += w->dup_applied;
  return s;
}

std::uint64_t Runtime::steal_events() const {
  std::uint64_t s = 0;
  for (const auto& w : workers_) s += w->steal_sends;
  return s;
}

std::uint64_t Runtime::stolen_tasks() const {
  std::uint64_t s = 0;
  for (const auto& w : workers_) s += w->stolen;
  return s;
}

std::uint64_t Runtime::steal_dup_tasks() const {
  std::uint64_t s = 0;
  for (const auto& w : workers_) s += w->steal_dups;
  return s;
}

std::uint64_t Runtime::arena_bytes_used() const {
  std::uint64_t s = 0;
  for (const auto& a : arenas_) s += a->bytes_used();
  return s;
}

void Runtime::append_snapshots(std::uint64_t step) {
  for (const auto& worker : workers_) {
    obs::append_telemetry_snapshot(telemetry_jsonl_, cfg_.telemetry_tag, step,
                                   worker->index, worker_count(),
                                   worker->snap_load, worker->snap);
  }
}

const obs::WorkerTelemetry& Runtime::worker_telemetry(unsigned i) const {
  return workers_[i]->telem;
}

obs::WorkerTelemetry Runtime::telemetry_total() const {
  obs::WorkerTelemetry total;
  for (const auto& w : workers_) total.merge(w->telem);
  return total;
}

void Runtime::export_telemetry(obs::MetricsRegistry& m,
                               const std::string& prefix) const {
  const obs::WorkerTelemetry total = telemetry_total();
  obs::merge_worker_telemetry(m, total, prefix);
  double util_sum = 0.0;
  std::uint64_t max_consumed = 0;
  for (const auto& w : workers_) {
    obs::merge_worker_telemetry(
        m, w->telem, prefix + "w" + std::to_string(w->index) + ".");
    util_sum += w->telem.utilization();
    if (w->telem.consumed > max_consumed) max_consumed = w->telem.consumed;
  }
  const auto workers = static_cast<double>(worker_count());
  const double mean_consumed = static_cast<double>(total.consumed) / workers;
  m.gauge(prefix + "workers") = workers;
  m.gauge(prefix + "utilization_mean") = util_sum / workers;
  m.gauge(prefix + "barrier_stall_fraction") = total.stall_fraction();
  // max/mean consumed tasks over workers; 1.0 = perfectly even shards.
  m.gauge(prefix + "queue_imbalance") =
      mean_consumed > 0.0 ? static_cast<double>(max_consumed) / mean_consumed
                          : 0.0;
  if (lat_) {
    // Leader-sampled fabric depth, named like the dist.net.* gauges so the
    // two execution models export comparable telemetry.
    const obs::WorkerTelemetry& lead = workers_[0]->telem;
    m.gauge(prefix + "fabric_max_in_flight") =
        static_cast<double>(lead.fabric_max_in_flight);
    m.gauge(prefix + "fabric_mean_in_flight") =
        lead.fabric_flight_samples == 0
            ? 0.0
            : static_cast<double>(lead.fabric_flight_sum) /
                  static_cast<double>(lead.fabric_flight_samples);
  }
}

sim::MessageCounters Runtime::messages() const {
  sim::MessageCounters total;
  for (const auto& w : workers_) {
    total.queries += w->msg.queries;
    total.accepts += w->msg.accepts;
    total.id_messages += w->msg.id_messages;
    total.control += w->msg.control;
    total.transfers += w->msg.transfers;
    total.tasks_moved += w->msg.tasks_moved;
  }
  return total;
}

std::uint64_t Runtime::clamped_transfers() const {
  std::uint64_t s = 0;
  for (const auto& w : workers_) s += w->clamped;
  return s;
}

std::vector<LedgerEntry> Runtime::ledger() const {
  std::vector<LedgerEntry> all;
  for (const auto& w : workers_) {
    all.insert(all.end(), w->ledger.begin(), w->ledger.end());
  }
  std::sort(all.begin(), all.end(),
            [](const LedgerEntry& a, const LedgerEntry& b) {
              if (a.step != b.step) return a.step < b.step;
              if (a.from != b.from) return a.from < b.from;
              if (a.to != b.to) return a.to < b.to;
              // A steal and a phase transfer may share (step, from, to);
              // count keeps the canonical order total.
              return a.count < b.count;
            });
  return all;
}

stats::IntHistogram Runtime::sojourn_steps() const {
  stats::IntHistogram h;
  for (const auto& w : workers_) h.merge(w->sojourn_steps);
  return h;
}

stats::IntHistogram Runtime::sojourn_us() const {
  stats::IntHistogram h;
  for (const auto& w : workers_) h.merge(w->sojourn_us);
  return h;
}

std::uint64_t Runtime::remote_pushes() const {
  std::uint64_t s = 0;
  for (const auto& w : workers_) s += w->remote_pushes;
  return s;
}

std::uint64_t Runtime::self_pushes() const {
  std::uint64_t s = 0;
  for (const auto& w : workers_) s += w->self_pushes;
  return s;
}

void Runtime::deposit(std::uint32_t p, sim::Task t) {
  CLB_CHECK(p < cfg_.n, "deposit target out of range");
  procs_[p].queue.push_back(RtTask{t, cfg_.time_sojourn ? now_us() : 0});
  ++deposited_;
}

}  // namespace clb::rt
