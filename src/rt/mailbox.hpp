// Lock-free MPSC mailbox (Vyukov-style intrusive queue) and the message
// vocabulary of the concurrent runtime.
//
// Every worker owns exactly one mailbox; any worker (including the owner)
// may push, only the owner pops. Push is a single XCHG on the head plus one
// release store to link the predecessor — wait-free, no CAS loop, no locks.
// Pop is single-consumer and lock-free. The runtime drains mailboxes only at
// superstep boundaries (after a barrier, when all producers have quiesced),
// so the transient "pushed but not yet linked" window Vyukov's pop can
// observe never makes drain() miss a message.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "net/delivery.hpp"
#include "sim/task.hpp"
#include "util/check.hpp"

namespace clb::rt {

/// A task in flight through the runtime. Wraps the simulator's Task (so
/// equivalence checks compare the exact same identity triple) and adds the
/// wall-clock birth stamp free-running mode needs for sojourn latency.
struct RtTask {
  sim::Task task;
  std::uint32_t birth_us = 0;  ///< microseconds since Runtime construction
};

enum class MsgKind : std::uint8_t {
  kQuery,        ///< collision game: request slot queries a target
  kAccept,       ///< collision game: target accepted the query
  kChild,        ///< tree: parent node announces child q (coordination)
  kChildStatus,  ///< tree: child reports applicative / non-applicative
  kId,           ///< an applicative light sends its id to the root
  kForward,      ///< tree: child becomes a node at the next level
  kTransfer,     ///< T/4 tasks moving from a matched root to its light
  kScatter,      ///< all-in-air: one task thrown to a random processor
  kTransferCmd,  ///< latency fabric: delayed "ship the block" command,
                 ///< staged at the source owner, applied end of its due step
};

/// One runtime message. `key` is the message's canonical processing key —
/// a total order that depends only on protocol state (slots, tree edges),
/// never on which worker sent it or when it arrived — so deterministic mode
/// can sort a drained batch into a partition-invariant order. Field use per
/// kind (slots/edges are recovered from `key`):
///
///   kQuery        key = slot<<4 | j      a = target, b = requester proc
///   kAccept       key = slot<<4 | j      a = requester proc (routing)
///   kChild        key = g<<1 | s         a = child q, b = root, c = parent
///   kChildStatus  key = g<<1 | s         a = parent, b = applicative flag
///   kId           key = g<<1 | s         a = root, b = partner (light)
///   kForward      key = child slot       a = child proc, b = root
///   kTransfer     key = from             a = from, b = to, payload = tasks
///   kScatter      key = from<<32 | seq   a = from, b = to, payload = task
///
/// Latency mode (RtConfig::latency >= 1) runs the dist:: protocol instead;
/// its messages use the `from`/`to` endpoints, the delivery step `due`, and
/// the shared canonical `seq` stamp (net/delivery.hpp), with `a`/`b`
/// carrying the dist Message payloads (root/count, level/applicative).
struct Message {
  std::atomic<Message*> next{nullptr};  // intrusive MPSC link
  MsgKind kind = MsgKind::kQuery;
  std::uint64_t key = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
  std::uint32_t from = 0;       // latency mode: protocol sender
  std::uint32_t to = 0;         // latency mode: protocol recipient
  std::uint64_t due = 0;        // latency mode: step the message matures
  net::SeqKey seq{};            // latency mode: canonical send position
  std::vector<RtTask> payload;  // kTransfer / kScatter only
};

/// Intrusive multi-producer single-consumer queue after Vyukov. The queue
/// does not own messages in steady state (producers allocate, the consumer
/// deletes after processing); the destructor deletes anything still queued.
class Mailbox {
 public:
  Mailbox() : head_(&stub_), tail_(&stub_) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  ~Mailbox() {
    while (Message* m = pop()) delete m;
  }

  /// Wait-free from any thread.
  void push(Message* m) {
    m->next.store(nullptr, std::memory_order_relaxed);
    Message* prev = head_.exchange(m, std::memory_order_acq_rel);
    // Between the exchange and this store the chain is broken; pop() reports
    // empty rather than blocking if it catches the window.
    prev->next.store(m, std::memory_order_release);
  }

  /// Owner thread only. Returns nullptr when empty — or when a producer is
  /// mid-push (the runtime never pops concurrently with pushes, so there a
  /// null really means empty).
  Message* pop() {
    Message* tail = tail_;
    Message* next = tail->next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      if (next == nullptr) return nullptr;
      tail_ = next;
      tail = next;
      next = next->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      tail_ = next;
      return tail;
    }
    // tail is the last linked node. If a producer has exchanged head_ but
    // not linked yet, report empty; otherwise re-insert the stub behind the
    // final node so it can be handed out.
    if (tail != head_.load(std::memory_order_acquire)) return nullptr;
    push(&stub_);
    next = tail->next.load(std::memory_order_acquire);
    if (next != nullptr) {
      tail_ = next;
      return tail;
    }
    return nullptr;
  }

  /// Batched drain: detaches the entire pending chain and invokes `f` on
  /// every message in FIFO order (identical to the order a pop() loop would
  /// deliver — the bit-identity of batched vs per-message draining is by
  /// construction). Returns the batch size.
  ///
  /// Owner thread only, and ONLY at a quiescent point: all producers must
  /// have passed a barrier since their last push. That is exactly when the
  /// runtime drains (see the file header), and it is what lets this replace
  /// a pop() loop's per-message acquire/stub-cycling with one head read and
  /// a plain pointer walk — the batched-drain amortisation of the scaling
  /// work. `f` may delete the message; the next link is read first.
  template <typename F>
  std::uint64_t drain_all(F&& f) {
    Message* const last = head_.load(std::memory_order_acquire);
    if (last == &stub_ && tail_ == &stub_) return 0;
    Message* cur = tail_;
    if (cur == &stub_) cur = stub_.next.load(std::memory_order_acquire);
    // Reset to the empty state before processing; at a quiescent point no
    // producer can observe the intermediate states.
    stub_.next.store(nullptr, std::memory_order_relaxed);
    tail_ = &stub_;
    head_.store(&stub_, std::memory_order_release);
    std::uint64_t count = 0;
    while (cur != nullptr) {
      Message* const next = cur->next.load(std::memory_order_acquire);
      const bool done = cur == last;
      f(cur);
      ++count;
      if (done) break;
      cur = next;
    }
    return count;
  }

 private:
  alignas(64) std::atomic<Message*> head_;  // producers XCHG here
  alignas(64) Message* tail_;               // consumer-private cursor
  Message stub_;
};

}  // namespace clb::rt
