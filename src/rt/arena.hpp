// Cache-conscious task storage for the million-processor regime.
//
// At n = 2^20..2^24 the runtime's hot loop touches every processor's queue
// every step. With std::deque each queue is a separately malloc'd 512-byte
// chunk plus a chunk map — 2^20 pointer-chasing islands scattered across the
// heap, one cache miss per processor just to reach the FIFO. TaskArena fixes
// the *placement*: one bump allocator per worker shard, so the ring buffers
// of consecutive processors are laid out consecutively in memory and the
// sequential per-shard step loop walks the arena almost linearly. TaskQueue
// fixes the *layout*: a power-of-two ring holding the task record as SoA —
// birth_step / origin / weight / birth_us in four parallel contiguous
// arrays — so scans that need one field (load boards, weight sums) stream
// 4-byte lanes instead of 16-byte records.
//
// TaskQueue is dual-mode behind RtConfig::arena:
//   * fifo mode (default): a lazily allocated std::deque<RtTask> — exactly
//     the pre-existing pointer-chasing FIFO, kept as the measured baseline
//     (bench_rt --scaling-grid runs both columns; EXP-27 gates arena >= fifo
//     throughput).
//   * arena mode (use_arena()): the SoA ring over the shard's bump arena.
// Both modes implement the same FIFO contract (push_back at the tail,
// pop_front at the head, transfers extracted from the back), so ledgers,
// counters and phase logs are bit-identical arena on or off — a property
// test_rt_equivalence asserts rather than assumes.
//
// Threading: a queue (and its arena) is owned by the shard's worker; the
// leader's crash re-home and the main thread's deposit() run at barrier /
// between-run quiescent points, the same discipline RtProcessor already has.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <vector>

#include "rt/mailbox.hpp"
#include "util/check.hpp"

namespace clb::rt {

/// Bump allocator for one worker shard's queue storage. Never frees
/// individual allocations (rings are grow-only per run, like std::deque
/// chunks); memory is reclaimed when the arena dies with the runtime.
class TaskArena {
 public:
  explicit TaskArena(std::size_t chunk_bytes = 1u << 18)
      : chunk_bytes_(chunk_bytes) {}

  TaskArena(const TaskArena&) = delete;
  TaskArena& operator=(const TaskArena&) = delete;

  /// Returns `bytes` of 64-byte-aligned storage. Allocations within a chunk
  /// are contiguous in call order — the locality the file header describes.
  [[nodiscard]] std::byte* allocate(std::size_t bytes) {
    bytes = (bytes + 63) & ~std::size_t{63};
    if (bytes > static_cast<std::size_t>(end_ - cur_)) {
      const std::size_t chunk = bytes > chunk_bytes_ ? bytes : chunk_bytes_;
      chunks_.push_back(std::make_unique<std::byte[]>(chunk + 63));
      auto base = reinterpret_cast<std::uintptr_t>(chunks_.back().get());
      cur_ = reinterpret_cast<std::byte*>((base + 63) & ~std::uintptr_t{63});
      end_ = cur_ + chunk;
      bytes_reserved_ += chunk;
    }
    std::byte* p = cur_;
    cur_ += bytes;
    bytes_used_ += bytes;
    return p;
  }

  [[nodiscard]] std::size_t bytes_used() const { return bytes_used_; }
  [[nodiscard]] std::size_t bytes_reserved() const { return bytes_reserved_; }
  [[nodiscard]] std::size_t chunks() const { return chunks_.size(); }

 private:
  std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::byte* cur_ = nullptr;
  std::byte* end_ = nullptr;
  std::size_t bytes_used_ = 0;
  std::size_t bytes_reserved_ = 0;
};

/// FIFO task queue, dual-mode (see file header). The arena-mode ring keeps
/// head_/tail_ as free-running counters masked on access, exactly like
/// sim::FifoQueue, so FIFO semantics match the simulator by construction.
class TaskQueue {
 public:
  TaskQueue() = default;

  TaskQueue(TaskQueue&&) = default;
  TaskQueue& operator=(TaskQueue&&) = default;

  TaskQueue(const TaskQueue& o) { *this = o; }
  TaskQueue& operator=(const TaskQueue& o) {
    if (this == &o) return *this;
    // Deep copy in the source's mode (transport state shipping copies
    // fifo-mode processors; arena-mode copies re-bump from the same arena).
    arena_ = o.arena_;
    if (o.arena_) {
      head_ = tail_ = 0;
      mask_ = 0;
      birth_step_ = origin_ = weight_ = birth_us_ = nullptr;
      if (o.size() > 0) {
        reserve_ring(o.size());
        for (std::uint64_t i = 0; i < o.size(); ++i) push_back(o[i]);
      }
      deq_.reset();
    } else {
      deq_ = o.deq_ ? std::make_unique<std::deque<RtTask>>(*o.deq_) : nullptr;
    }
    return *this;
  }

  /// Switches this (empty) queue to the SoA ring over `arena`. Called once
  /// per processor at Runtime construction when RtConfig::arena is set.
  void use_arena(TaskArena* arena) {
    CLB_CHECK(empty(), "use_arena requires an empty queue");
    arena_ = arena;
    deq_.reset();
  }

  [[nodiscard]] std::uint64_t size() const {
    return arena_ ? tail_ - head_ : (deq_ ? deq_->size() : 0);
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  void push_back(const RtTask& t) {
    if (!arena_) {
      deq()->push_back(t);
      return;
    }
    if (tail_ - head_ == mask_ + 1 || birth_step_ == nullptr) grow();
    const std::uint64_t i = tail_ & mask_;
    birth_step_[i] = t.task.birth_step;
    origin_[i] = t.task.origin;
    weight_[i] = t.task.weight;
    birth_us_[i] = t.birth_us;
    ++tail_;
  }

  [[nodiscard]] RtTask operator[](std::uint64_t i) const {
    if (!arena_) return (*deq_)[i];
    const std::uint64_t j = (head_ + i) & mask_;
    return RtTask{sim::Task{birth_step_[j], origin_[j], weight_[j]},
                  birth_us_[j]};
  }

  [[nodiscard]] RtTask front() const { return (*this)[0]; }

  void pop_front() {
    if (!arena_) {
      deq_->pop_front();
      return;
    }
    CLB_DCHECK(tail_ != head_, "pop_front on empty TaskQueue");
    ++head_;
  }

  /// Moves the newest `count` tasks (oldest-first among them, i.e. original
  /// relative order) into `out`. Replaces the deque assign+erase idiom in
  /// send_transfer — transfers always take from the back of the FIFO.
  void extract_back(std::uint64_t count, std::vector<RtTask>& out) {
    CLB_DCHECK(count <= size(), "extract_back past queue head");
    const std::uint64_t start = size() - count;
    for (std::uint64_t i = start; i < size(); ++i) out.push_back((*this)[i]);
    if (arena_) {
      tail_ -= count;
    } else if (count > 0) {
      deq_->erase(deq_->end() - static_cast<std::ptrdiff_t>(count),
                  deq_->end());
    }
  }

  void clear() {
    if (arena_) {
      head_ = tail_ = 0;
    } else if (deq_) {
      deq_->clear();
    }
  }

  /// Forward iteration yielding RtTask by value (both modes); supports the
  /// pre-existing `for (const rt::RtTask& t : proc.queue)` call sites — the
  /// const reference binds to the materialised temporary per iteration.
  class const_iterator {
   public:
    const_iterator(const TaskQueue* q, std::uint64_t i) : q_(q), i_(i) {}
    RtTask operator*() const { return (*q_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }

   private:
    const TaskQueue* q_;
    std::uint64_t i_;
  };
  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, size()}; }

 private:
  std::deque<RtTask>* deq() {
    if (!deq_) deq_ = std::make_unique<std::deque<RtTask>>();
    return deq_.get();
  }

  void reserve_ring(std::uint64_t at_least) {
    std::uint64_t cap = mask_ ? (mask_ + 1) * 2 : 8;
    while (cap < at_least) cap *= 2;
    grow_to(cap);
  }

  void grow() { reserve_ring(mask_ ? (mask_ + 1) * 2 : 8); }

  void grow_to(std::uint64_t cap) {
    // One bump allocation for all four lanes keeps a queue's SoA arrays on
    // adjacent cache lines.
    auto* block = reinterpret_cast<std::uint32_t*>(
        arena_->allocate(cap * 4 * sizeof(std::uint32_t)));
    std::uint32_t* nb = block;
    std::uint32_t* no = block + cap;
    std::uint32_t* nw = block + 2 * cap;
    std::uint32_t* nu = block + 3 * cap;
    const std::uint64_t sz = tail_ - head_;
    for (std::uint64_t i = 0; i < sz; ++i) {
      const std::uint64_t j = (head_ + i) & mask_;
      nb[i] = birth_step_[j];
      no[i] = origin_[j];
      nw[i] = weight_[j];
      nu[i] = birth_us_[j];
    }
    birth_step_ = nb;
    origin_ = no;
    weight_ = nw;
    birth_us_ = nu;
    head_ = 0;
    tail_ = sz;
    mask_ = cap - 1;
  }

  // SoA ring (arena mode). The lanes are views into arena storage.
  TaskArena* arena_ = nullptr;
  std::uint32_t* birth_step_ = nullptr;
  std::uint32_t* origin_ = nullptr;
  std::uint32_t* weight_ = nullptr;
  std::uint32_t* birth_us_ = nullptr;
  std::uint64_t mask_ = 0;
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;

  // fifo mode: lazily allocated so arena-mode processors never pay the
  // deque's eager chunk allocation (512 bytes x 2^20 procs would dwarf the
  // arena itself).
  std::unique_ptr<std::deque<RtTask>> deq_;
};

}  // namespace clb::rt
