// The concurrent runtime: the paper's protocol on real worker threads.
//
// Shared-nothing design: the n logical processors are split into contiguous
// groups, each owned by one worker thread (util::block_range, so worker
// order = ascending processor order). Workers exchange protocol messages
// through lock-free MPSC mailboxes and advance in supersteps separated by a
// util::PhaseBarrier — messages sent in one superstep are drained at the
// start of the next, and there is no global lock anywhere on the hot path.
//
// One runtime step executes the same schedule as sim::Engine::step_once:
// generate/consume over the own shard (identical code path, identical
// per-processor Philox streams), then the balancing policy as message
// exchanges — for the threshold balancer on a phase boundary: classify
// heavy/light from post-generation loads, run the query tree level by level
// (each collision round = query superstep, accept superstep, collect
// superstep), deliver id messages to roots, move T/4 tasks per match — then
// one closing barrier that doubles as the total-load reduction (each worker
// publishes its shard load to a padded slot; everyone sums all slots, which
// reproduces the engine's start-of-step system_load snapshot).
//
// Determinism contract (RtConfig::deterministic): drained batches whose
// processing order matters (child assignment, id matching, scatter arrival)
// are sorted by the message's canonical key before processing. Those keys
// encode protocol positions (global node slots, tree edges (g, s)), and the
// global node numbering is computed by leader-assisted prefix scans over the
// per-worker counts — so the order is partition-invariant and a run is
// bit-for-bit reproducible for ANY worker count, matching sim::Engine with
// the same seed (heavy/light classifications, transfer ledger, message
// counters; verified by test_rt_equivalence). Free-running mode skips the
// sorts (arrival order wins), attaches spin-work to each consumed task so
// "consume" costs real CPU, and measures wall-clock throughput and sojourn.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/local_search.hpp"
#include "baselines/stale_shortest_queue.hpp"
#include "collision/collision.hpp"
#include "core/liveness.hpp"
#include "core/params.hpp"
#include "net/delivery.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "rt/arena.hpp"
#include "rt/mailbox.hpp"
#include "sim/counters.hpp"
#include "sim/model.hpp"
#include "sim/steal.hpp"
#include "stats/histogram.hpp"
#include "util/thread_pool.hpp"

namespace clb::rt {

enum class RtPolicy {
  kNone,         ///< no balancing; the scaling baseline
  kThreshold,    ///< the paper's threshold balancer (atomic phases, defaults)
  kAllInAir,     ///< periodic global scatter (Concluding Remarks baseline)
  kStaleSq,      ///< stale shortest-queue (periodic load broadcasts)
  kLocalSearch,  ///< randomized pairwise local search (arXiv:1706.09997)
};

[[nodiscard]] const char* policy_name(RtPolicy p);

/// Message substrate selection. kInProc is this runtime's native mode
/// (threads + mailboxes in one address space). kUds/kTcp request the
/// cross-process transport: rt::Runtime itself refuses them — construct a
/// transport::ProcessRuntime from the same RtConfig instead (it forks one
/// process per shard and speaks the frame codec over Unix-domain or
/// loopback-TCP sockets; see src/transport/).
enum class Transport : std::uint8_t { kInProc, kUds, kTcp };

[[nodiscard]] const char* transport_name(Transport t);

struct RtConfig {
  std::uint64_t n = 1024;
  std::uint64_t seed = 1;
  /// Worker threads; 0 = hardware_concurrency, clamped to n.
  unsigned workers = 1;
  /// Sequenced message delivery + canonical tie-breaks (see file header).
  bool deterministic = true;
  /// Which substrate carries the protocol (see Transport). This runtime
  /// only executes kInProc; the socket transports are selected through
  /// transport::ProcessRuntime, which consumes the same config.
  Transport transport = Transport::kInProc;
  RtPolicy policy = RtPolicy::kThreshold;
  /// Realised phase parameters; required (from_n) when policy==kThreshold.
  core::PhaseParams params{};
  collision::CollisionConfig game{};
  /// Iterations of register-churn work per consumed task (free-running mode;
  /// 0 = consume is just the queue pop, as in the simulator).
  std::uint32_t spin_work = 0;
  /// Record step-counted sojourn (consume step - birth step) per task.
  bool track_sojourn = false;
  /// Record wall-clock sojourn in microseconds per task (one steady_clock
  /// read per generated and consumed task; meant for free-running benches).
  bool time_sojourn = false;
  /// Optional trace sink (borrowed); emits kPhaseBegin/kPhaseEnd/kTransfer.
  obs::TraceSink* trace = nullptr;
  /// Test-only fault injection: silently drop the k-th kTransfer message
  /// (1-based; 0 = off). The sender's side-effects (pop, counters, ledger)
  /// stay — exactly the "broken mailbox" a conservation oracle must convict.
  /// The ordinal counts transfers in canonical (step, source processor)
  /// order — transfers are staged per superstep and numbered by a prefix
  /// scan over the worker shards — so the chosen victim is identical for
  /// every worker count (see dropped_log()). Free-running mode keeps the
  /// same numbering; only WHICH partner a root matched may differ there.
  std::uint64_t drop_transfer_message = 0;
  /// Message latency in steps (0 = the idealised instant fabric of PR 4).
  /// With latency >= 1 the runtime executes the dist:: protocol over
  /// per-worker delay queues: a message sent in superstep t is only
  /// drainable at superstep t + delay(src, dst), with the delay coming
  /// from the same net::DeliveryPolicy dist::Network uses (uniform, or
  /// per-hop routing when `topology` is set). Requires policy kThreshold
  /// and game.a <= 8 (the dist protocol's fan-out cap).
  std::uint32_t latency = 0;
  /// Optional machine graph for per-hop routing (borrowed; must outlive
  /// the runtime). Latency mode only.
  const net::Topology* topology = nullptr;
  /// Link-model knobs (heterogeneous per-link jitter, bandwidth caps,
  /// loss + retransmit), keyed off `seed` — the exact same net::LinkModel
  /// dist::Network runs, sharded per worker. Latency mode only; defaults
  /// are the uniform/lossless degenerate case.
  net::NetConfig link{};
  /// Idle steps between phase completion and the next classification
  /// (latency mode; must be >= 1, as in dist::DistConfig).
  std::uint64_t phase_gap = 1;
  /// Failsafe phase duration; 0 derives the dist:: bound from depth, the
  /// Lemma 1 round budget and the latency.
  std::uint64_t max_phase_steps = 0;
  /// Test-only fault injection (latency mode): deliver the k-th fabric
  /// message (1-based send order; 0 = off) one superstep EARLY — a fabric
  /// that violates the delivery-time contract. No-op when the victim's
  /// delay is already 1. The ordinal counts sends in arrival order across
  /// workers, so pin workers = 1 for a replayable victim (the fuzzer's
  /// delay-skew scenarios do).
  std::uint64_t delay_skew_message = 0;
  /// Test-only fault injection (latency mode, lossy link): when the link
  /// model would lose a transfer payload's first attempt, drop the message
  /// outright instead of retransmitting — tasks vanish from the system
  /// without a dropped_tasks booking, exactly what the conservation oracle
  /// must convict (the link-loss-no-retransmit mutation).
  bool link_loss_no_retransmit = false;
  /// Test-only fault injection (latency mode, lossy link): materialise the
  /// suppressed ack-loss duplicate of every transfer command instead of
  /// counting it — the transfer applies twice, diverging the ledger and the
  /// queues from the dist shadow (the dup-delivery mutation).
  bool dup_delivery = false;
  /// Stale shortest-queue knobs (policy == kStaleSq). Instant fabric only.
  baselines::StaleSqConfig stale{};
  /// Local-search knobs (policy == kLocalSearch). Instant fabric only.
  baselines::LocalSearchConfig ls{};
  /// Crash/recovery schedule: at the start of each listed step the crashed
  /// processor's queue is re-homed (FIFO order, nearest alive processor
  /// scanning upward — see core::LivenessSchedule) by the leader worker
  /// behind a pair of barriers, and while down the processor neither
  /// generates, consumes, nor participates in balancing. Requires a
  /// liveness-aware policy (kNone, kStaleSq or kLocalSearch) on the instant
  /// fabric; the schedule is configuration, not randomness, so lockstep
  /// bit-identity against sim::Engine survives the crash.
  std::vector<core::CrashEvent> crashes;
  /// Test-only fault injection: a crashed processor's queue is *cleared*
  /// instead of re-homed, with no booking anywhere — the orphaned tasks
  /// vanish from every account, exactly what the conservation oracle must
  /// convict (the crash-lose-queue mutation).
  bool crash_lose_queue = false;
  /// Test-only fault injection (policy kStaleSq): the decision rule secretly
  /// reads the *fresh* load board instead of the stale broadcast snapshot —
  /// a baseline quietly enjoying information it should not have. Counters
  /// stay self-consistent; only the engine lockstep shadow (which plays the
  /// honest rule) can convict it (the stale-free-lunch mutation).
  bool stale_read_fresh = false;
  /// Cache-conscious queue layout (see rt/arena.hpp): per-worker bump
  /// arenas holding each shard's queues as SoA rings, replacing the
  /// pointer-chasing per-queue std::deque. Pure layout change — ledgers,
  /// counters and phase logs are bit-identical on or off (asserted by
  /// test_rt_equivalence's arena grid).
  bool arena = false;
  /// Deterministic work stealing (see sim/steal.hpp): when a processor's
  /// consume budget outlives its queue inside a step, it steals a batch
  /// from the most-loaded processor via the pure shared decision rule,
  /// replicated from sealed load/dry boards on every worker — the same
  /// worker-count-invariant ordinal discipline as drop_transfer_message.
  /// Instant fabric only; off by default so all lockstep tiers that predate
  /// it are untouched.
  sim::StealConfig steal{};
  /// Test-only fault injection (steal.enabled): the steal *clones* one task
  /// of every stolen batch instead of moving it — the task runs on the
  /// thief while a copy stays on the victim, breaking conservation exactly
  /// the way a buggy steal would (the steal-duplicate-task mutation; the
  /// conservation/ledger oracle must convict it).
  bool steal_duplicate_task = false;
  /// Per-worker hot-path telemetry (obs::WorkerTelemetry): superstep and
  /// barrier timing, mailbox traffic, drain batch sizes. Observation only —
  /// deterministic outputs are bit-identical on or off. Ignored (forced
  /// false) when the binary was built with -DCLB_TELEMETRY=OFF.
  bool telemetry = false;
  /// Snapshot emitter: every `telemetry_interval` steps the leader appends
  /// one JSONL line per worker (cumulative counters + shard load) to
  /// telemetry_jsonl(). 0 = no snapshots. Requires `telemetry`.
  std::uint64_t telemetry_interval = 0;
  /// Tag stamped into every snapshot line, so benches can concatenate the
  /// timelines of several runs into one file and still group them.
  std::string telemetry_tag;
};

/// One applied transfer, for cross-validation against the simulator.
struct LedgerEntry {
  std::uint64_t step = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint32_t count = 0;
};

/// Per-phase record the leader worker assembles (threshold policy).
/// Instant mode: phases are single-step, end_step == start_step. Latency
/// mode: phases span steps (duration = end_step - start_step), directly
/// comparable against dist::DistPhaseRecord.
struct RtPhaseSummary {
  std::uint64_t phase_index = 0;
  std::uint64_t start_step = 0;
  std::uint64_t end_step = 0;
  std::uint64_t num_heavy = 0;
  std::uint64_t num_light = 0;
  std::uint64_t matched = 0;    ///< heavy roots that found a light partner
  std::uint64_t unmatched = 0;
  std::uint64_t requests = 0;   ///< collision-game requests over all levels
  std::uint32_t levels_used = 0;
  std::uint32_t collision_rounds = 0;
  bool forced = false;          ///< latency mode: ended by the failsafe
  bool completed = false;       ///< end-of-phase fields are valid
  std::vector<std::uint32_t> heavy_procs;  ///< ascending processor ids
};

/// Per-processor state. Owned exclusively by the shard's worker while a
/// run() is in flight; the main thread may inspect between runs (the
/// command barrier orders the accesses).
struct RtProcessor {
  TaskQueue queue;
  std::uint64_t generated = 0;
  std::uint64_t consumed = 0;
  std::uint64_t consumed_on_origin = 0;
  std::uint64_t tasks_sent = 0;
  std::uint64_t tasks_received = 0;
  std::uint64_t balance_initiations = 0;
  // Protocol flags, stamped with lockstep epochs so phases need no clears.
  std::uint64_t light_epoch = 0;     ///< light at phase start
  std::uint64_t assigned_epoch = 0;  ///< reserved by an id message
  std::uint64_t matched_epoch = 0;   ///< (roots) matched this phase
  std::uint32_t matched_partner = 0;
  std::uint64_t accept_epoch = 0;    ///< collision: accepted_total validity
  std::uint32_t accepted_total = 0;
  std::uint64_t incoming_epoch = 0;  ///< collision: incoming validity
  std::uint32_t incoming = 0;
  std::uint64_t decide_epoch = 0;    ///< collision: round decision validity
  bool accepts_round = false;
};

class Runtime {
 public:
  /// Spawns cfg.workers threads, each parked on the command barrier. The
  /// model must be parallel-safe (!serial_generation()); it is shared by all
  /// workers and must therefore be stateless across step_action calls, which
  /// every counter-RNG model in src/models is.
  Runtime(RtConfig cfg, sim::LoadModel* model);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Executes `steps` runtime steps on the worker threads; blocks until
  /// done. Callable repeatedly; state carries over (step numbering included).
  void run(std::uint64_t steps);

  // ---- Inspection (main thread, between run() calls) ----
  [[nodiscard]] const RtConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t n() const { return cfg_.n; }
  [[nodiscard]] unsigned worker_count() const {
    return static_cast<unsigned>(workers_.size());
  }
  [[nodiscard]] std::uint64_t step() const { return step_base_; }
  [[nodiscard]] std::uint64_t load(std::uint64_t p) const {
    return procs_[p].queue.size();
  }
  [[nodiscard]] const RtProcessor& processor(std::uint64_t p) const {
    return procs_[p];
  }
  [[nodiscard]] std::uint64_t total_load() const;
  [[nodiscard]] std::uint64_t total_generated() const;
  [[nodiscard]] std::uint64_t total_consumed() const;
  [[nodiscard]] std::uint64_t running_max_load() const {
    return running_max_load_;
  }
  /// generated + deposited == consumed + queued + dropped? Count-based only
  /// — identity-blind, which is precisely why the fuzzer's FIFO oracle and
  /// not this check must convict the mailbox-drop mutation.
  [[nodiscard]] bool conservation_holds() const;

  /// Message counters summed over workers (same attribution rules as the
  /// simulator: queries/accepts/ids/control from the protocol, transfers
  /// and tasks_moved from applied transfers).
  [[nodiscard]] sim::MessageCounters messages() const;
  [[nodiscard]] std::uint64_t clamped_transfers() const;

  /// All applied transfers, sorted by (step, from, to). Within one step
  /// sources are unique, so this order is canonical and directly comparable
  /// against the engine's per-step pending-transfer capture.
  [[nodiscard]] std::vector<LedgerEntry> ledger() const;

  [[nodiscard]] const std::vector<RtPhaseSummary>& phases() const {
    return phases_;
  }

  [[nodiscard]] stats::IntHistogram sojourn_steps() const;
  [[nodiscard]] stats::IntHistogram sojourn_us() const;

  /// Wall-clock seconds spent inside run() so far.
  [[nodiscard]] double wall_seconds() const { return wall_seconds_; }

  /// Mailbox traffic: messages pushed to another worker's mailbox vs the
  /// sender's own. The remote fraction is the contention exposure.
  [[nodiscard]] std::uint64_t remote_pushes() const;
  [[nodiscard]] std::uint64_t self_pushes() const;

  /// Fault-injection bookkeeping (drop_transfer_message).
  [[nodiscard]] std::uint64_t dropped_messages() const;
  [[nodiscard]] std::uint64_t dropped_tasks() const;
  /// The dropped victims themselves, sorted like ledger() — in
  /// deterministic mode the victim identity is worker-count-invariant.
  [[nodiscard]] std::vector<LedgerEntry> dropped_log() const;

  /// Latency-mode fabric counters (0 in instant mode).
  [[nodiscard]] std::uint64_t fabric_sent() const;
  [[nodiscard]] std::uint64_t fabric_in_flight() const;
  /// Link-model counters summed over workers (all 0 on an unshaped fabric;
  /// comparable against dist::Network's identically-named stats).
  [[nodiscard]] std::uint64_t fabric_retransmits() const;
  [[nodiscard]] std::uint64_t fabric_dup_suppressed() const;
  [[nodiscard]] std::uint64_t fabric_queued_delay() const;
  /// Mutation bookkeeping: messages destroyed by link_loss_no_retransmit
  /// and duplicates applied by dup_delivery (the fuzzer's mutation_applied
  /// probes).
  [[nodiscard]] std::uint64_t link_lost_messages() const;
  [[nodiscard]] std::uint64_t dup_delivered() const;

  // ---- telemetry (RtConfig::telemetry; all readable between runs) ----
  /// True when telemetry was requested AND compiled in.
  [[nodiscard]] bool telemetry_enabled() const { return telemetry_; }
  /// Worker i's own counters (zeroed struct when telemetry is off).
  [[nodiscard]] const obs::WorkerTelemetry& worker_telemetry(unsigned i) const;
  /// All workers merged (counter totals conserved; phases is per-worker
  /// lockstep, so the merged value is workers x phase count).
  [[nodiscard]] obs::WorkerTelemetry telemetry_total() const;
  /// Snapshot timeline accumulated so far (one JSONL object per line; see
  /// obs::append_telemetry_snapshot). Empty without telemetry_interval.
  [[nodiscard]] const std::string& telemetry_jsonl() const {
    return telemetry_jsonl_;
  }
  /// Exports merged totals under `prefix`, per-worker blocks under
  /// `prefix`w<i>., and the cross-worker derived gauges the rt report
  /// keys on: utilization_mean, barrier_stall_fraction, queue_imbalance
  /// (max/mean consumed over workers) and workers.
  void export_telemetry(obs::MetricsRegistry& m,
                        const std::string& prefix) const;

  /// Appends a task to p's queue (main thread, between runs) — the fault
  /// hook the fuzzer's load spikes use, mirroring sim::Engine::deposit.
  void deposit(std::uint32_t p, sim::Task t);

  // ---- crash/recovery bookkeeping (RtConfig::crashes) ----
  /// Tasks moved off crashed processors so far; mirrors
  /// sim::Engine::rehomed_tasks (re-homes are queue moves, booked here and
  /// nowhere else — not in the ledger or message counters).
  [[nodiscard]] std::uint64_t rehomed_tasks() const { return rehomed_tasks_; }
  [[nodiscard]] std::uint64_t rehomed_events() const {
    return rehomed_events_;
  }
  /// Mutation bookkeeping: tasks destroyed by crash_lose_queue and steps on
  /// which stale_read_fresh changed the decision list (the fuzzer's
  /// mutation_applied probes).
  [[nodiscard]] std::uint64_t crash_lost_tasks() const {
    return crash_lost_tasks_;
  }
  [[nodiscard]] std::uint64_t stale_cheat_divergence() const {
    return stale_cheat_divergence_;
  }

  // ---- work stealing (RtConfig::steal) ---------------------------------
  /// Thief/victim pairs executed and tasks moved by the steal pass (steals
  /// ship as regular kTransfer messages, so they also appear in ledger(),
  /// messages().transfers and tasks_moved — same attribution as the engine).
  [[nodiscard]] std::uint64_t steal_events() const;
  [[nodiscard]] std::uint64_t stolen_tasks() const;
  /// Mutation bookkeeping: tasks cloned by steal_duplicate_task (the
  /// fuzzer's mutation_applied probe).
  [[nodiscard]] std::uint64_t steal_dup_tasks() const;

  // ---- arena bookkeeping (RtConfig::arena) -----------------------------
  /// Bytes bump-allocated across all per-worker arenas (0 in fifo mode).
  [[nodiscard]] std::uint64_t arena_bytes_used() const;

 private:
  struct alignas(64) Slot {
    std::uint64_t v0 = 0;
    std::uint64_t v1 = 0;
    std::uint64_t v2 = 0;
  };

  struct RtNode;
  struct ScanEntry;
  struct Worker;

  struct LatencyShared;

  void worker_main(Worker& w);
  void step_once(Worker& w, std::uint64_t step);
  void run_phase(Worker& w, std::uint64_t step);
  std::uint64_t run_level(Worker& w, std::uint64_t step,
                          std::uint64_t phase_index, std::uint32_t level,
                          std::uint64_t node_count);
  void run_scatter(Worker& w, std::uint64_t step);
  /// The workload-zoo policies (kStaleSq / kLocalSearch): publish the fresh
  /// load board, replicate the shared pure decision rule on every worker,
  /// ship own-shard transfers, and apply arrivals in ascending-sender order.
  void run_zoo(Worker& w, std::uint64_t step);
  /// The steal superstep (RtConfig::steal, instant fabric): publish the
  /// post-consume load + dry boards, replicate sim::steal_decisions on
  /// every worker, ship own-victim batches as kTransfer messages with
  /// canonical ordinals, and apply arrivals in ascending-sender order —
  /// the run_zoo discipline applied to stealing.
  void run_steal(Worker& w, std::uint64_t step);
  /// Crash re-home at the start of a crash step: leader-serial queue moves
  /// behind a pair of barriers (no-op on other steps).
  void process_crashes(Worker& w, std::uint64_t step);
  void send(Worker& w, std::uint32_t dest_proc, Message* m);
  void send_transfer(Worker& w, std::uint64_t step, std::uint32_t root,
                     std::uint32_t partner, std::uint64_t ordinal,
                     std::uint64_t count);
  void apply_staged_transfers(Worker& w, std::uint64_t step,
                              std::uint64_t base, std::uint64_t total);
  void drain(Worker& w, std::vector<Message*>& out);
  /// drain() variant that collects kTransfer messages into `out` instead of
  /// applying them on arrival — the zoo policies sort arrivals by sender
  /// before applying (several senders may target one receiver, so arrival
  /// order is not canonical there).
  void drain_collect(Worker& w, std::vector<Message*>& out);
  void apply_transfer(Worker& w, const Message& m);
  /// step_barrier_ arrival on the superstep path. With telemetry on it uses
  /// the timed variant and books the wait into the worker's stall accounts;
  /// otherwise it is exactly arrive_and_wait().
  void barrier(Worker& w);
  /// Leader-only: appends one snapshot line per worker (reads the `snap`
  /// copies published by the preceding barrier).
  void append_snapshots(std::uint64_t step);
  [[nodiscard]] unsigned owner_of(std::uint64_t p) const;
  [[nodiscard]] std::uint32_t now_us() const;

  // ---- latency fabric (RtConfig::latency >= 1; see rt/latency section
  // of runtime.cpp) ----
  void run_lat_protocol(Worker& w, std::uint64_t step);
  void lat_send(Worker& w, std::uint64_t step, Message* m);
  void lat_start_request(Worker& w, std::uint64_t step, std::uint32_t proc,
                         std::uint32_t root, std::uint32_t level);
  void lat_send_pending_queries(Worker& w, std::uint64_t step,
                                std::uint32_t proc);
  void lat_process_due(Worker& w, std::uint64_t step);
  void lat_evaluate(Worker& w, std::uint64_t step);
  void lat_discard_undelivered(Worker& w);
  void lat_drain_and_file(Worker& w, std::uint64_t step);

  RtConfig cfg_;
  sim::LoadModel* model_;
  std::vector<RtProcessor> procs_;
  std::vector<std::unique_ptr<Worker>> workers_;

  // Shard partition (block_range layout, precomputed for owner_of).
  std::uint64_t chunk_ = 1;
  std::uint64_t extra_ = 0;
  std::uint64_t split_ = 0;

  // Superstep coordination.
  util::PhaseBarrier step_barrier_;  // workers only
  util::PhaseBarrier cmd_barrier_;   // workers + main
  std::uint64_t cmd_steps_ = 0;
  bool cmd_stop_ = false;
  std::uint64_t step_base_ = 0;

  // Published reduction slots (plain values; the barriers order them).
  std::vector<Slot> load_slots_[2];  // parity by step: v0 load, v1 max, v2 scattered
  std::vector<Slot> class_slots_;    // v0 heavy count, v1 light count
  std::vector<Slot> active_slots_;   // v0 active collision requests
  std::vector<Slot> match_slots_;    // v0 matched roots
  std::uint64_t next_node_count_ = 0;  // leader-written between scan barriers

  // Leader-owned aggregates (worker 0 writes, main reads between runs).
  std::vector<RtPhaseSummary> phases_;
  std::uint64_t running_max_load_ = 0;
  std::uint64_t air_interval_ = 1;

  // Latency fabric (null in instant mode).
  std::unique_ptr<LatencyShared> lat_;
  std::vector<Slot> lat_flight_slots_;  // v0 active, v1 fab sent, v2 fab delivered
  std::vector<Slot> lat_stage_slots_;   // v0 staged transfers, v1 matched heavy

  // Fault injection (delay_skew_message; arrival-order by design, see
  // RtConfig).
  std::atomic<std::uint64_t> skew_send_ordinal_{0};

  // Telemetry (RtConfig::telemetry, forced off when compiled out).
  bool telemetry_ = false;
  std::string telemetry_jsonl_;  // leader-written behind snapshot barriers

  // Workload zoo (policies kStaleSq/kLocalSearch and RtConfig::crashes).
  // The boards are published by shard owners behind barriers; the stale
  // board is refreshed on broadcast steps only. Counters are leader-written
  // between barriers, main-read between runs.
  core::LivenessSchedule liveness_;
  std::vector<std::uint32_t> board_;        // fresh loads, post-generation
  std::vector<std::uint32_t> stale_board_;  // last broadcast (kStaleSq)
  std::vector<std::uint8_t> alive_board_;   // liveness at the current step
  std::uint64_t rehomed_tasks_ = 0;
  std::uint64_t rehomed_events_ = 0;
  std::uint64_t crash_lost_tasks_ = 0;
  std::uint64_t stale_cheat_divergence_ = 0;

  // Work stealing (RtConfig::steal). Boards published by shard owners
  // behind barriers, exactly like the zoo boards above; the dry board is
  // written during each worker's own consume loop.
  std::vector<std::uint32_t> steal_board_;      // post-consume loads
  std::vector<std::uint8_t> steal_dry_board_;   // consume budget left over
  std::vector<std::uint8_t> steal_alive_board_;

  // Cache-conscious storage (RtConfig::arena): one bump arena per worker
  // shard, so consecutive processors' rings are consecutive in memory.
  std::vector<std::unique_ptr<TaskArena>> arenas_;

  std::uint64_t deposited_ = 0;
  double wall_seconds_ = 0;
  std::chrono::steady_clock::time_point start_tp_;
};

}  // namespace clb::rt
