// Per-processor state: the task queue plus contention-free local counters.
#pragma once

#include <cstdint>

#include "sim/task.hpp"

namespace clb::sim {

/// One simulated processor. All counters are written only by the step loop
/// for this processor's index (or by the serially-executed balancer), so no
/// synchronisation is needed; aggregation scans them on demand.
struct Processor {
  FifoQueue queue;

  /// Total weight of queued tasks (== queue length for unit weights);
  /// maintained by the engine on every push/pop/transfer.
  std::uint64_t weight_load = 0;

  // Lifetime counters (never reset within a run).
  std::uint64_t generated = 0;
  std::uint64_t consumed = 0;
  std::uint64_t consumed_on_origin = 0;  // consumed tasks born on this proc
  std::uint64_t balance_initiations = 0;  // phases in which it acted as heavy
  std::uint64_t tasks_sent = 0;
  std::uint64_t tasks_received = 0;

  [[nodiscard]] std::uint64_t load() const { return queue.size(); }
};

}  // namespace clb::sim
