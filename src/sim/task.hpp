// Task representation and the FIFO queue each processor owns.
//
// The paper's model stores yet-to-be-performed tasks "in a FIFO like
// manner"; balancing transfers take tasks from the *back* of the sender's
// queue and append them to the *back* of the receiver's queue in their old
// order (Section 3). Both operations are first-class here.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/math.hpp"

namespace clb::sim {

/// One unit of load. Tasks carry their birth step (for sojourn-time
/// statistics, Corollary 1), the processor that generated them (for the
/// locality metric the paper motivates: keeping related tasks together),
/// and a weight (1 for the paper's unit tasks; the weighted extension
/// follows [BMS97]'s weighted balls into the continuous setting).
struct Task {
  std::uint32_t birth_step = 0;
  std::uint32_t origin = 0;
  std::uint32_t weight = 1;
};

static_assert(sizeof(Task) <= 16, "Task must stay compact");

/// Power-of-two ring buffer FIFO of Tasks with O(1) push/pop at both ends
/// and amortised growth. Not thread-safe; each processor owns exactly one.
class FifoQueue {
 public:
  FifoQueue() = default;

  [[nodiscard]] std::uint64_t size() const { return tail_ - head_; }
  [[nodiscard]] bool empty() const { return head_ == tail_; }

  void push_back(Task t) {
    if (size() == capacity()) grow();
    buf_[tail_ & mask_] = t;
    ++tail_;
  }

  /// Removes and returns the oldest task. Queue must be non-empty.
  Task pop_front() {
    CLB_DCHECK(!empty(), "pop_front on empty queue");
    Task t = buf_[head_ & mask_];
    ++head_;
    return t;
  }

  /// Removes the newest task (used by transfer extraction).
  Task pop_back() {
    CLB_DCHECK(!empty(), "pop_back on empty queue");
    --tail_;
    return buf_[tail_ & mask_];
  }

  [[nodiscard]] const Task& front() const {
    CLB_DCHECK(!empty(), "front on empty queue");
    return buf_[head_ & mask_];
  }

  [[nodiscard]] const Task& back() const {
    CLB_DCHECK(!empty(), "back on empty queue");
    return buf_[(tail_ - 1) & mask_];
  }

  /// Task at FIFO position i (0 = front). For tests and inspection.
  [[nodiscard]] const Task& at(std::uint64_t i) const {
    CLB_DCHECK(i < size(), "at() out of range");
    return buf_[(head_ + i) & mask_];
  }

  /// Moves the `count` newest tasks of `from` onto the back of this queue,
  /// preserving their relative (old) order — the paper's transfer rule.
  /// Returns the total weight moved.
  std::uint64_t append_from_back_of(FifoQueue& from, std::uint64_t count) {
    CLB_CHECK(count <= from.size(), "transfer larger than sender load");
    // The moved block starts `count` before the sender's tail.
    const std::uint64_t first = from.tail_ - count;
    std::uint64_t weight = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      const Task& t = from.buf_[(first + i) & from.mask_];
      weight += t.weight;
      push_back(t);
    }
    from.tail_ = first;
    return weight;
  }

  /// Number of newest tasks whose cumulative weight first reaches
  /// `target_weight` (at least 1 when non-empty, at most size()). Used by
  /// the weighted balancer to translate a weight budget into a task count.
  [[nodiscard]] std::uint64_t count_from_back_for_weight(
      std::uint64_t target_weight) const {
    std::uint64_t acc = 0, cnt = 0;
    while (cnt < size()) {
      acc += buf_[(tail_ - 1 - cnt) & mask_].weight;
      ++cnt;
      if (acc >= target_weight) break;
    }
    return cnt;
  }

  /// Swaps the tasks at FIFO positions i and j (0 = front). Deliberately
  /// breaks FIFO order — exists for the testing subsystem's fault injection
  /// (sim::Engine::swap_queue_entries_for_test); no production caller.
  void swap_positions(std::uint64_t i, std::uint64_t j) {
    CLB_DCHECK(i < size() && j < size(), "swap_positions out of range");
    std::swap(buf_[(head_ + i) & mask_], buf_[(head_ + j) & mask_]);
  }

  void clear() { head_ = tail_ = 0; }

 private:
  [[nodiscard]] std::uint64_t capacity() const { return buf_.size(); }

  void grow() {
    const std::uint64_t old_cap = capacity();
    const std::uint64_t new_cap = old_cap == 0 ? 8 : old_cap * 2;
    std::vector<Task> fresh(new_cap);
    const std::uint64_t n = size();
    for (std::uint64_t i = 0; i < n; ++i) {
      fresh[i] = buf_[(head_ + i) & mask_];
    }
    buf_ = std::move(fresh);
    head_ = 0;
    tail_ = n;
    mask_ = new_cap - 1;
  }

  std::vector<Task> buf_;
  std::uint64_t mask_ = 0;
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
};

}  // namespace clb::sim
