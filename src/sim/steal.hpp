// Deterministic work stealing: the pure decision rule shared by the serial
// engine and the concurrent runtime (the same engine<->rt sharing discipline
// as baselines::stale_sq_decisions / local_search_decisions).
//
// A processor is "dry" when its consume budget outlived its queue inside the
// current step — it had cycles to burn and nothing to run. Stealing pairs
// each dry processor with a canonically-ordered victim (most-loaded alive
// processor, ties broken by ascending id) and moves a small batch from the
// back of the victim's FIFO, exactly like a balancer transfer. The rule is a
// function of (loads, dry flags, liveness) only — never of worker count,
// arrival order, or wall clock — so a runtime shard can replicate it from
// sealed boards and stay bit-identical to the engine for any partition.
#pragma once

#include <cstdint>
#include <vector>

namespace clb::sim {

struct Transfer;  // sim/engine.hpp

/// Knobs for the steal pass (RtConfig::steal / EngineConfig::steal).
struct StealConfig {
  /// Master switch; default off so every existing lockstep tier is
  /// untouched byte-for-byte.
  bool enabled = false;
  /// Victims must hold at least this many tasks (stealing a 1-task queue
  /// just moves the imbalance). Must be >= 2 so count >= 1 below.
  std::uint32_t min_victim_load = 4;
  /// At most this many thief/victim pairs per step.
  std::uint32_t max_steals_per_step = 8;
  /// Per-steal batch cap; the actual count is min(max_batch, load/2).
  std::uint32_t max_batch = 4;
};

/// The pure rule. Thieves are the dry alive processors in ascending id
/// order (capped at max_steals_per_step); victims are the top-loaded alive
/// processors with load >= min_victim_load (descending load, ascending id on
/// ties), paired one-to-one by rank. Returned transfers are sorted ascending
/// by sender with at most one per sender, no sender that is also a receiver
/// (a dry processor has load 0 and can never qualify as a victim), and
/// counts <= load[from] / 2 — so engine-side application never clamps and
/// rt-side send-time pops see exactly the loads the decision assumed,
/// independent of application order.
[[nodiscard]] std::vector<Transfer> steal_decisions(
    std::uint64_t n, const std::vector<std::uint32_t>& load,
    const std::vector<std::uint8_t>& dry, const std::vector<std::uint8_t>& alive,
    const StealConfig& cfg);

}  // namespace clb::sim
