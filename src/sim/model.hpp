// Load generation/consumption model interface (the paper's §1.2 models are
// implemented in src/models; this is the contract the engine drives).
#pragma once

#include <cstdint>
#include <string>

namespace clb::sim {

/// One processor-step of a model: how many tasks appear and how many the
/// processor may consume (the engine clamps consumption to queue length
/// after this step's generation lands).
struct StepAction {
  std::uint32_t generate = 0;
  std::uint32_t consume = 0;
  /// Weight of each task generated this step (1 = the paper's unit tasks).
  std::uint32_t weight = 1;
};

/// A load model answers, per processor and step, how many tasks are
/// generated and how many the processor is allowed to consume. The answer
/// must be a deterministic function of (seed, proc, step) — plus, for
/// adversarial models, the supplied load/system_load snapshot — so that the
/// engine's parallel step loop reproduces identical runs for any worker
/// count. Generation and consumption are answered in ONE call so the model
/// pays a single counter-RNG setup per processor-step.
class LoadModel {
 public:
  virtual ~LoadModel() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Tasks generated/consumable by `proc` at `step`. `load` is the
  /// processor's queue length at the start of the step and `system_load` the
  /// total system load at the start of the step (only adversarial models
  /// consult these).
  virtual StepAction step_action(std::uint64_t seed, std::uint64_t proc,
                                 std::uint64_t step, std::uint64_t load,
                                 std::uint64_t system_load) = 0;

  /// Models whose generation depends on `system_load` (the adversarial cap)
  /// must run serially to stay deterministic; others may be parallelised.
  [[nodiscard]] virtual bool serial_generation() const { return false; }

  /// Expected steady-state load per processor, if the model defines one
  /// (used for predicted-value columns); NaN when not applicable.
  [[nodiscard]] virtual double expected_load_per_processor() const = 0;
};

}  // namespace clb::sim
