#include "sim/engine.hpp"

#include <algorithm>

#include "core/liveness.hpp"
#include "util/check.hpp"

namespace clb::sim {

Engine::Engine(EngineConfig cfg, LoadModel* model, Balancer* balancer)
    : cfg_(cfg), model_(model), balancer_(balancer) {
  CLB_CHECK(cfg_.n >= 1, "engine needs at least one processor");
  CLB_CHECK(cfg_.n <= (1ULL << 32), "processor ids must fit in 32 bits");
  CLB_CHECK(model_ != nullptr, "engine needs a load model");
  procs_.resize(cfg_.n);
  if (cfg_.steal.enabled) {
    dry_.resize(cfg_.n, 0);
    steal_load_.resize(cfg_.n, 0);
    steal_alive_.resize(cfg_.n, 1);
  }
  const bool must_be_serial = cfg_.track_sojourn || model_->serial_generation();
  if (!must_be_serial && cfg_.threads != 1) {
    pool_ = std::make_unique<util::ThreadPool>(cfg_.threads);
  }
  reset();
}

void Engine::reset() {
  for (auto& p : procs_) p = Processor{};
  pending_.clear();
  msg_.reset();
  sojourn_.clear();
  step_ = 0;
  total_load_ = 0;
  step_max_load_ = 0;
  running_max_load_ = 0;
  total_weight_ = 0;
  step_max_weight_ = 0;
  running_max_weight_ = 0;
  clamped_ = 0;
  deposited_ = 0;
  drained_ = 0;
  rehomed_tasks_ = 0;
  rehomed_events_ = 0;
  std::fill(dry_.begin(), dry_.end(), std::uint8_t{0});
  steal_log_.clear();
  stolen_tasks_ = 0;
  if (balancer_ != nullptr) balancer_->on_reset(*this);
}

void Engine::run(std::uint64_t steps) {
  for (std::uint64_t s = 0; s < steps; ++s) step_once();
}

void Engine::generate_consume_block(std::uint64_t begin, std::uint64_t end,
                                    std::uint64_t step) {
  const std::uint64_t system_load = total_load_;  // start-of-step snapshot
  const bool steal_on = cfg_.steal.enabled;
  for (std::uint64_t p = begin; p < end; ++p) {
    if (steal_on) dry_[p] = 0;  // dead processors are never dry
    if (cfg_.liveness != nullptr && !cfg_.liveness->alive(p, step)) continue;
    Processor& proc = procs_[p];
    const StepAction act =
        model_->step_action(cfg_.seed, p, step, proc.load(), system_load);
    for (std::uint32_t i = 0; i < act.generate; ++i) {
      proc.queue.push_back(Task{static_cast<std::uint32_t>(step),
                                static_cast<std::uint32_t>(p), act.weight});
      proc.weight_load += act.weight;
    }
    proc.generated += act.generate;
    std::uint32_t c = act.consume;
    while (c > 0 && !proc.queue.empty()) {
      const Task t = proc.queue.pop_front();
      proc.weight_load -= t.weight;
      ++proc.consumed;
      if (t.origin == p) ++proc.consumed_on_origin;
      if (cfg_.track_sojourn) {
        sojourn_.add(step - t.birth_step);
      }
      --c;
    }
    // Dry = consume budget outlived the queue (the loop invariant makes
    // c > 0 imply the queue emptied): this processor is a steal thief.
    if (steal_on && c > 0) dry_[p] = 1;
  }
}

void Engine::process_crashes(std::uint64_t step) {
  if (cfg_.liveness == nullptr || !cfg_.liveness->crash_step(step)) return;
  for (const std::uint32_t c : cfg_.liveness->crashes_at(step)) {
    const std::uint32_t target = cfg_.liveness->rehome_target(c, step);
    Processor& src = procs_[c];
    Processor& dst = procs_[target];
    while (!src.queue.empty()) {
      const Task t = src.queue.pop_front();
      src.weight_load -= t.weight;
      dst.queue.push_back(t);
      dst.weight_load += t.weight;
      ++rehomed_tasks_;
    }
    ++rehomed_events_;
  }
}

void Engine::apply_steals(std::uint64_t step) {
  if (!cfg_.steal.enabled) return;
  for (std::uint64_t p = 0; p < cfg_.n; ++p) {
    steal_load_[p] = static_cast<std::uint32_t>(procs_[p].load());
    steal_alive_[p] = cfg_.liveness == nullptr ||
                              cfg_.liveness->alive(p, step)
                          ? 1
                          : 0;
  }
  const std::vector<Transfer> ds =
      steal_decisions(cfg_.n, steal_load_, dry_, steal_alive_, cfg_.steal);
  for (const Transfer& t : ds) {
    Processor& src = procs_[t.from];
    Processor& dst = procs_[t.to];
    // The rule guarantees count <= load/2, so this never clamps.
    const std::uint64_t weight =
        dst.queue.append_from_back_of(src.queue, t.count);
    src.weight_load -= weight;
    dst.weight_load += weight;
    src.tasks_sent += t.count;
    dst.tasks_received += t.count;
    ++dst.balance_initiations;  // the thief initiated this move
    ++msg_.transfers;
    msg_.tasks_moved += t.count;
    stolen_tasks_ += t.count;
    steal_log_.push_back(StealRecord{step, t.from, t.to, t.count});
    CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kTransfer, step_, t.from, t.to,
                    t.count);
  }
}

void Engine::step_once() {
  const std::uint64_t step = step_;
  process_crashes(step);
  if (pool_) {
    pool_->parallel_for(cfg_.n, [this, step](std::uint64_t b, std::uint64_t e) {
      generate_consume_block(b, e, step);
    });
  } else {
    generate_consume_block(0, cfg_.n, step);
  }
  apply_steals(step);
  if (balancer_ != nullptr) balancer_->on_step(*this);
  apply_transfers();
  refresh_load_aggregates();
  ++step_;
  // Per-step conservation is debug-only (O(n) counter scan every step);
  // phase-structured balancers call check_conservation() on their own cold
  // phase boundaries, which stays on in release builds.
  CLB_DCHECK(conservation_holds(), "task conservation violated after step");
}

bool Engine::conservation_holds() const {
  std::uint64_t queued = 0, generated = 0, consumed = 0;
  for (const auto& p : procs_) {
    queued += p.load();
    generated += p.generated;
    consumed += p.consumed;
  }
  return generated + deposited_ == consumed + queued + drained_;
}

void Engine::check_conservation() const {
  CLB_CHECK(conservation_holds(),
            "task conservation violated: generated + deposited != "
            "consumed + queued + drained");
}

bool Engine::steal_newest_for_test(std::uint32_t p) {
  CLB_CHECK(p < cfg_.n, "steal target out of range");
  Processor& proc = procs_[p];
  if (proc.queue.empty()) return false;
  const Task t = proc.queue.pop_back();
  proc.weight_load -= t.weight;
  ++drained_;  // books the loss as a drain so count checks stay green
  return true;
}

void Engine::swap_queue_entries_for_test(std::uint32_t p, std::uint64_t i,
                                         std::uint64_t j) {
  CLB_CHECK(p < cfg_.n, "swap target out of range");
  procs_[p].queue.swap_positions(i, j);
}

void Engine::schedule_transfer(std::uint32_t from, std::uint32_t to,
                               std::uint32_t count) {
  CLB_CHECK(from < cfg_.n && to < cfg_.n, "transfer endpoint out of range");
  CLB_CHECK(from != to, "transfer to self");
  if (count == 0) return;
  pending_.push_back(Transfer{from, to, count});
}

void Engine::apply_transfers() {
  for (const Transfer& t : pending_) {
    Processor& src = procs_[t.from];
    Processor& dst = procs_[t.to];
    std::uint64_t count = t.count;
    if (count > src.load()) {
      count = src.load();
      ++clamped_;
    }
    const std::uint64_t weight = dst.queue.append_from_back_of(src.queue, count);
    src.weight_load -= weight;
    dst.weight_load += weight;
    src.tasks_sent += count;
    dst.tasks_received += count;
    ++msg_.transfers;
    msg_.tasks_moved += count;
    CLB_TRACE_EVENT(cfg_.trace, obs::EventKind::kTransfer, step_, t.from, t.to,
                    count);
  }
  pending_.clear();
}

void Engine::refresh_load_aggregates() {
  std::uint64_t total = 0;
  std::uint64_t mx = 0;
  std::uint64_t total_w = 0;
  std::uint64_t mx_w = 0;
  for (const auto& p : procs_) {
    const std::uint64_t l = p.load();
    total += l;
    if (l > mx) mx = l;
    total_w += p.weight_load;
    if (p.weight_load > mx_w) mx_w = p.weight_load;
  }
  total_load_ = total;
  step_max_load_ = mx;
  if (mx > running_max_load_) running_max_load_ = mx;
  total_weight_ = total_w;
  step_max_weight_ = mx_w;
  if (mx_w > running_max_weight_) running_max_weight_ = mx_w;
}

std::vector<Task> Engine::drain_all() {
  std::vector<Task> all;
  all.reserve(total_load_);
  for (auto& p : procs_) {
    while (!p.queue.empty()) all.push_back(p.queue.pop_front());
    p.weight_load = 0;
  }
  drained_ += all.size();
  return all;
}

void Engine::deposit(std::uint32_t p, Task t) {
  CLB_CHECK(p < cfg_.n, "deposit target out of range");
  procs_[p].queue.push_back(t);
  procs_[p].weight_load += t.weight;
  ++deposited_;
}

stats::IntHistogram Engine::load_histogram() const {
  stats::IntHistogram h;
  for (const auto& p : procs_) h.add(p.load());
  return h;
}

std::uint64_t Engine::total_generated() const {
  std::uint64_t s = 0;
  for (const auto& p : procs_) s += p.generated;
  return s;
}

std::uint64_t Engine::total_consumed() const {
  std::uint64_t s = 0;
  for (const auto& p : procs_) s += p.consumed;
  return s;
}

double Engine::locality_fraction() const {
  std::uint64_t consumed = 0, on_origin = 0;
  for (const auto& p : procs_) {
    consumed += p.consumed;
    on_origin += p.consumed_on_origin;
  }
  return consumed == 0 ? 1.0
                       : static_cast<double>(on_origin) /
                             static_cast<double>(consumed);
}

}  // namespace clb::sim
