// The synchronous parallel-machine simulator.
//
// Time advances in discrete steps; each step performs the paper's sub-steps
// in order (Concluding Remarks: "a time step in our model actually consists
// of four steps — generate and consume load, perform balancing decisions,
// and actually move load"):
//
//   1. generation + consumption, per processor (data-parallel; randomness is
//      a counter-RNG function of (seed, proc, step), so results are
//      identical for any thread count),
//   2. the balancer's decision logic (serial),
//   3. application of the transfers the balancer scheduled.
//
// The engine owns processor state and global accounting; models and
// balancers are plugged in via the LoadModel / Balancer interfaces.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/trace.hpp"
#include "sim/balancer.hpp"
#include "sim/counters.hpp"
#include "sim/model.hpp"
#include "sim/processor.hpp"
#include "sim/steal.hpp"
#include "stats/histogram.hpp"
#include "util/thread_pool.hpp"

namespace clb::core {
class LivenessSchedule;
}  // namespace clb::core

namespace clb::sim {

struct EngineConfig {
  /// Number of processors.
  std::uint64_t n = 1024;
  /// Master seed; every random decision in the run derives from it.
  std::uint64_t seed = 1;
  /// Worker threads for the generation pass (1 = serial; 0 = hardware).
  unsigned threads = 1;
  /// Record task sojourn (waiting) times into a histogram. Costs one
  /// histogram update per consumed task and forces the serial path.
  bool track_sojourn = false;
  /// Optional event-trace sink (borrowed; must outlive the engine). Null or
  /// disabled costs one pointer test per traced site; see obs/trace.hpp.
  obs::TraceSink* trace = nullptr;
  /// Optional crash/recovery schedule (borrowed; must outlive the engine).
  /// Null = every processor alive forever. At the start of a crash step the
  /// crashed processor's queue is re-homed in FIFO order onto the schedule's
  /// target; while dead it neither generates nor consumes. Liveness-aware
  /// balancers must consult the same schedule.
  const core::LivenessSchedule* liveness = nullptr;
  /// Deterministic work stealing (see sim/steal.hpp): after the
  /// generate/consume pass, processors whose consume budget outlived their
  /// queue steal from the most-loaded processors via the pure shared rule.
  /// Off by default; the runtime's RtConfig::steal mirrors this knob.
  StealConfig steal{};
};

struct Transfer {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint32_t count = 0;
};

/// One applied steal (EngineConfig::steal), stamped with its step so
/// equivalence tests can merge the steal log into the balancer-transfer
/// ledger for cross-validation against the runtime's ledger().
struct StealRecord {
  std::uint64_t step = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint32_t count = 0;
};

class Engine {
 public:
  /// The model is required; the balancer may be null (unbalanced system).
  Engine(EngineConfig cfg, LoadModel* model, Balancer* balancer);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Clears all queues and counters and restarts at step 0.
  void reset();

  /// Advances the simulation by `steps` time steps.
  void run(std::uint64_t steps);
  void step_once();

  // ---- Read-only state -------------------------------------------------
  [[nodiscard]] std::uint64_t n() const { return cfg_.n; }
  [[nodiscard]] std::uint64_t seed() const { return cfg_.seed; }
  /// Number of completed steps (== the next step index to execute).
  [[nodiscard]] std::uint64_t step() const { return step_; }
  [[nodiscard]] std::uint64_t load(std::uint64_t p) const {
    return procs_[p].load();
  }
  /// Total weight of processor p's queued tasks (== load for unit weights).
  [[nodiscard]] std::uint64_t weight_load(std::uint64_t p) const {
    return procs_[p].weight_load;
  }
  [[nodiscard]] const Processor& processor(std::uint64_t p) const {
    return procs_[p];
  }
  /// Total system load at the last step boundary.
  [[nodiscard]] std::uint64_t total_load() const { return total_load_; }
  /// Maximum processor load at the last step boundary.
  [[nodiscard]] std::uint64_t step_max_load() const { return step_max_load_; }
  /// Maximum processor load seen at any step boundary so far.
  [[nodiscard]] std::uint64_t running_max_load() const {
    return running_max_load_;
  }
  /// Weighted counterparts (identical to the unweighted ones when every
  /// task has weight 1).
  [[nodiscard]] std::uint64_t total_weight() const { return total_weight_; }
  [[nodiscard]] std::uint64_t step_max_weight() const {
    return step_max_weight_;
  }
  [[nodiscard]] std::uint64_t running_max_weight() const {
    return running_max_weight_;
  }
  /// Number of newest tasks on p whose cumulative weight reaches `weight`
  /// (the weighted balancer's transfer-count helper).
  [[nodiscard]] std::uint64_t transfer_count_for_weight(
      std::uint64_t p, std::uint64_t weight) const {
    return procs_[p].queue.count_from_back_for_weight(weight);
  }
  [[nodiscard]] const MessageCounters& messages() const { return msg_; }
  /// The engine's trace sink (null when tracing is not wired up).
  [[nodiscard]] obs::TraceSink* trace() const { return cfg_.trace; }
  [[nodiscard]] const stats::IntHistogram& sojourn_histogram() const {
    return sojourn_;
  }

  /// Snapshot of the current load distribution as a histogram.
  [[nodiscard]] stats::IntHistogram load_histogram() const;

  /// Sums of per-processor lifetime counters.
  [[nodiscard]] std::uint64_t total_generated() const;
  [[nodiscard]] std::uint64_t total_consumed() const;
  /// Fraction of consumed tasks that were executed on their origin
  /// processor (the paper's locality motivation). 1.0 when nothing consumed.
  [[nodiscard]] double locality_fraction() const;

  // ---- Balancer API (valid during Balancer::on_step) -------------------
  /// Schedules `count` tasks to move from the back of `from`'s queue to the
  /// back of `to`'s queue after on_step returns. Counts are clamped to the
  /// sender's load at application time (clamps are counted).
  void schedule_transfer(std::uint32_t from, std::uint32_t to,
                         std::uint32_t count);
  /// Message accounting hook for balancers.
  MessageCounters& mutable_messages() { return msg_; }
  /// Lets a balancer bump the per-processor initiation counter.
  void note_balance_initiation(std::uint64_t p) {
    ++procs_[p].balance_initiations;
  }

  /// Number of transfers whose count had to be clamped (sender had fewer
  /// tasks at application time than when the transfer was scheduled).
  [[nodiscard]] std::uint64_t clamped_transfers() const { return clamped_; }

  /// Transfers scheduled so far this step, in schedule order. Valid during
  /// Balancer::on_step (the invariant oracle snapshots it from a wrapping
  /// balancer after the inner policy has run); cleared once applied.
  [[nodiscard]] const std::vector<Transfer>& pending_transfers() const {
    return pending_;
  }

  // ---- Conservation ----------------------------------------------------
  /// True iff every task ever injected is still accounted for:
  ///   generated + deposited == consumed + queued + drained.
  /// O(n); intended for step boundaries and cold paths.
  [[nodiscard]] bool conservation_holds() const;
  /// Always-on conservation check (CLB_CHECK). Balancers with a phase
  /// structure call this once per phase boundary — a cold path, so the O(n)
  /// scan is free relative to the phase itself; the per-step variant stays
  /// debug-only inside step_once.
  void check_conservation() const;

  // ---- Test-only fault injection (the fuzzer's mutation checks) --------
  /// Removes the newest task on `p` with *deliberately consistent-looking*
  /// accounting (the task is booked as drained), simulating a balancer that
  /// loses a task in flight while its counters still add up. Count-based
  /// conservation checks stay green; only identity-tracking oracles can
  /// catch it. Returns false when p's queue is empty.
  bool steal_newest_for_test(std::uint32_t p);
  /// Swaps two queue positions on `p`, violating FIFO order preservation.
  void swap_queue_entries_for_test(std::uint32_t p, std::uint64_t i,
                                   std::uint64_t j);

  // ---- Immediate-mode redistribution (global policies only) ------------
  /// Removes every task from every queue, in (processor, FIFO) order.
  /// Used by global redistribution baselines (AllInAir); message accounting
  /// is the caller's responsibility. Drained tasks are tracked so the
  /// conservation check stays exact while they are held outside the engine.
  [[nodiscard]] std::vector<Task> drain_all();
  /// Appends a task to the back of processor `p`'s queue. Counted as an
  /// external injection for conservation purposes (spike harnesses deposit
  /// tasks the engine never generated).
  void deposit(std::uint32_t p, Task t);
  /// Lifetime totals of the immediate-mode API, for conservation checks.
  [[nodiscard]] std::uint64_t total_deposited() const { return deposited_; }
  [[nodiscard]] std::uint64_t total_drained() const { return drained_; }

  // ---- Work stealing (EngineConfig::steal) -----------------------------
  /// Every steal applied so far, in application order (within a step that
  /// is ascending victim id, by the decision rule's contract).
  [[nodiscard]] const std::vector<StealRecord>& steal_log() const {
    return steal_log_;
  }
  [[nodiscard]] std::uint64_t steal_events() const {
    return steal_log_.size();
  }
  [[nodiscard]] std::uint64_t stolen_tasks() const { return stolen_tasks_; }

  // ---- Crash/recovery (EngineConfig::liveness) -------------------------
  /// Tasks moved off crashed processors so far (conserved: re-homing is a
  /// queue move, booked here and nowhere else — not in the transfer ledger,
  /// which records only balancing decisions).
  [[nodiscard]] std::uint64_t rehomed_tasks() const { return rehomed_tasks_; }
  /// Crash events whose re-home actually ran (== accepted crashes seen).
  [[nodiscard]] std::uint64_t rehomed_events() const {
    return rehomed_events_;
  }

 private:
  void generate_consume_block(std::uint64_t begin, std::uint64_t end,
                              std::uint64_t step);
  void process_crashes(std::uint64_t step);
  /// Replays the pure steal rule over the post-generation loads and applies
  /// the batches immediately (before the balancer sees the loads), exactly
  /// where the runtime's run_steal superstep sits.
  void apply_steals(std::uint64_t step);
  void apply_transfers();
  void refresh_load_aggregates();

  EngineConfig cfg_;
  LoadModel* model_;
  Balancer* balancer_;
  std::vector<Processor> procs_;
  std::vector<Transfer> pending_;
  MessageCounters msg_;
  stats::IntHistogram sojourn_;
  std::unique_ptr<util::ThreadPool> pool_;  // null when serial

  std::uint64_t step_ = 0;
  std::uint64_t total_load_ = 0;
  std::uint64_t step_max_load_ = 0;
  std::uint64_t running_max_load_ = 0;
  std::uint64_t total_weight_ = 0;
  std::uint64_t step_max_weight_ = 0;
  std::uint64_t running_max_weight_ = 0;
  std::uint64_t clamped_ = 0;
  std::uint64_t deposited_ = 0;
  std::uint64_t drained_ = 0;
  std::uint64_t rehomed_tasks_ = 0;
  std::uint64_t rehomed_events_ = 0;

  // Work stealing (EngineConfig::steal). dry_ is written by the
  // generate/consume pass (disjoint ranges under the pool, so no races) and
  // consumed serially by apply_steals.
  std::vector<std::uint8_t> dry_;
  std::vector<std::uint32_t> steal_load_;
  std::vector<std::uint8_t> steal_alive_;
  std::vector<StealRecord> steal_log_;
  std::uint64_t stolen_tasks_ = 0;
};

}  // namespace clb::sim
