// Global simulation counters, mostly message accounting.
//
// The paper's communication claims (Section 1.2) count messages: queries,
// accepts, id messages, and task movements. Balancers attribute every
// message they "send" to one of these categories so benches can reproduce
// the O(n / (log n)^{log log n - 1}) messages-per-phase claim and the
// comparison against Theta(n)-message balls-into-bins allocation.
#pragma once

#include <cstdint>

namespace clb::sim {

struct MessageCounters {
  std::uint64_t queries = 0;       // collision-protocol queries
  std::uint64_t accepts = 0;       // collision-protocol accept replies
  std::uint64_t id_messages = 0;   // applicative -> boss id messages
  std::uint64_t control = 0;       // everything else (probes, polls, ...)
  std::uint64_t transfers = 0;     // balancing actions that moved load
  std::uint64_t tasks_moved = 0;   // total task payload moved

  [[nodiscard]] std::uint64_t protocol_total() const {
    return queries + accepts + id_messages + control;
  }

  void reset() { *this = MessageCounters{}; }
};

}  // namespace clb::sim
