// Balancing policy interface.
#pragma once

#include <cstdint>
#include <string>

namespace clb::sim {

class Engine;

/// A balancer observes the system after each step's generation/consumption
/// and may schedule task transfers and account messages through the Engine
/// API. `on_step` runs single-threaded; the engine applies scheduled
/// transfers after it returns.
class Balancer {
 public:
  virtual ~Balancer() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once per time step, after generation/consumption.
  virtual void on_step(Engine& engine) = 0;

  /// Called when the engine (re)starts a run, before step 0.
  virtual void on_reset(Engine& engine) { (void)engine; }
};

/// The trivial policy: no balancing at all (the paper's "unbalanced system",
/// Section 4.1).
class NoBalancer final : public Balancer {
 public:
  [[nodiscard]] std::string name() const override { return "none"; }
  void on_step(Engine&) override {}
};

}  // namespace clb::sim
