#include "sim/steal.hpp"

#include <algorithm>

#include "sim/engine.hpp"
#include "util/check.hpp"

namespace clb::sim {

std::vector<Transfer> steal_decisions(std::uint64_t n,
                                      const std::vector<std::uint32_t>& load,
                                      const std::vector<std::uint8_t>& dry,
                                      const std::vector<std::uint8_t>& alive,
                                      const StealConfig& cfg) {
  std::vector<Transfer> out;
  if (!cfg.enabled) return out;
  CLB_CHECK(cfg.min_victim_load >= 2, "min_victim_load must be >= 2");

  // Thieves: dry alive processors, ascending id.
  std::vector<std::uint32_t> thieves;
  for (std::uint64_t p = 0; p < n; ++p) {
    if (dry[p] && alive[p]) {
      thieves.push_back(static_cast<std::uint32_t>(p));
      if (thieves.size() >= cfg.max_steals_per_step) break;
    }
  }
  if (thieves.empty()) return out;

  // Victims: top-K loaded alive processors (load descending, id ascending on
  // ties). K is tiny (<= max_steals_per_step), so an O(n * K) insertion
  // selection beats sorting all n loads.
  std::vector<std::uint32_t> victims;
  victims.reserve(thieves.size());
  for (std::uint64_t p = 0; p < n; ++p) {
    if (!alive[p] || load[p] < cfg.min_victim_load) continue;
    const std::uint32_t id = static_cast<std::uint32_t>(p);
    // Find the insertion point among the current candidates. Scanning p in
    // ascending order makes "id ascending" the natural tie-break: an equal
    // load never displaces an earlier candidate.
    std::size_t i = victims.size();
    while (i > 0 && load[victims[i - 1]] < load[id]) --i;
    if (i >= thieves.size()) continue;
    victims.insert(victims.begin() + static_cast<std::ptrdiff_t>(i), id);
    if (victims.size() > thieves.size()) victims.pop_back();
  }
  if (victims.empty()) return out;

  // Pair by rank: the lowest-id thief takes the most-loaded victim. Emit
  // sorted ascending by sender so the runtime's canonical send ordinals
  // (list position) match the engine's application order.
  const std::size_t pairs = std::min(thieves.size(), victims.size());
  for (std::size_t i = 0; i < pairs; ++i) {
    const std::uint32_t count =
        std::min<std::uint32_t>(cfg.max_batch, load[victims[i]] / 2);
    if (count == 0) continue;
    out.push_back(Transfer{victims[i], thieves[i], count});
  }
  std::sort(out.begin(), out.end(),
            [](const Transfer& a, const Transfer& b) { return a.from < b.from; });
  return out;
}

}  // namespace clb::sim
