#include "queueing/supermarket.hpp"

#include <deque>
#include <vector>

#include "queueing/event_queue.hpp"
#include "rng/dist.hpp"
#include "rng/xoshiro.hpp"
#include "util/check.hpp"

namespace clb::queueing {

namespace {

struct State {
  SupermarketConfig cfg;
  EventQueue events;
  rng::Xoshiro256 rng;
  std::vector<std::deque<double>> queues;  // arrival time per waiting customer
  SupermarketResult res;
  double queue_time_integral = 0;  // sum over queues of len * dt, post-warmup
  double last_accounting = 0;
  std::uint64_t total_in_system = 0;
  double sojourn_sum = 0;
  std::uint64_t sojourn_count = 0;

  explicit State(const SupermarketConfig& c) : cfg(c), rng(c.seed) {
    queues.resize(c.n);
  }

  void account() {
    const double now = events.now();
    if (now > cfg.warmup) {
      const double from = last_accounting > cfg.warmup ? last_accounting
                                                       : cfg.warmup;
      queue_time_integral +=
          static_cast<double>(total_in_system) * (now - from);
    }
    last_accounting = now;
  }

  double service_time() {
    return cfg.deterministic_service ? 1.0 : rng::exponential(rng, 1.0);
  }

  void depart(std::uint64_t q) {
    account();
    auto& queue = queues[q];
    CLB_CHECK(!queue.empty(), "departure from empty queue");
    const double arrived = queue.front();
    queue.pop_front();
    --total_in_system;
    ++res.departures;
    if (events.now() > cfg.warmup) {
      sojourn_sum += events.now() - arrived;
      ++sojourn_count;
    }
    if (!queue.empty()) {
      events.schedule_in(service_time(), [this, q] { depart(q); });
    }
  }

  void arrive() {
    account();
    ++res.arrivals;
    // d i.u.a.r. probes; join the shortest (ties to first probed).
    std::uint64_t best = rng::bounded(rng, cfg.n);
    res.messages += cfg.d + 1;
    for (std::uint32_t j = 1; j < cfg.d; ++j) {
      const std::uint64_t cand = rng::bounded(rng, cfg.n);
      if (queues[cand].size() < queues[best].size()) best = cand;
    }
    queues[best].push_back(events.now());
    ++total_in_system;
    if (events.now() > cfg.warmup && queues[best].size() > res.max_queue) {
      res.max_queue = queues[best].size();
    }
    if (queues[best].size() == 1) {
      events.schedule_in(service_time(), [this, q = best] { depart(q); });
    }
    schedule_next_arrival();
  }

  void schedule_next_arrival() {
    const double rate = cfg.lambda * static_cast<double>(cfg.n);
    const double gap = rng::exponential(rng, rate);
    if (events.now() + gap <= cfg.horizon) {
      events.schedule_in(gap, [this] { arrive(); });
    }
  }
};

}  // namespace

SupermarketResult run_supermarket(const SupermarketConfig& cfg) {
  CLB_CHECK(cfg.lambda > 0.0 && cfg.lambda < 1.0,
            "supermarket: lambda in (0,1)");
  CLB_CHECK(cfg.d >= 1 && cfg.n >= cfg.d, "supermarket: 1 <= d <= n");
  CLB_CHECK(cfg.warmup < cfg.horizon, "supermarket: warmup < horizon");
  State st(cfg);
  st.schedule_next_arrival();
  st.events.run_until(cfg.horizon);
  st.account();
  const double window = cfg.horizon - cfg.warmup;
  st.res.mean_queue = st.queue_time_integral /
                      (window * static_cast<double>(cfg.n));
  st.res.mean_sojourn =
      st.sojourn_count ? st.sojourn_sum / static_cast<double>(st.sojourn_count)
                       : 0.0;
  return st.res;
}

}  // namespace clb::queueing
