// Mitzenmacher's supermarket model [Mit96, Mit97]: customers arrive as a
// Poisson stream of rate lambda * n (lambda < 1), each samples d queues
// i.u.a.r. and joins the shortest; service is exponential with mean 1 (or
// deterministic 1, the [Mit97] constant-service variant). The classic
// continuous-time sequential d-choice comparator: max queue length is
// O(log log n) over constant horizons.
#pragma once

#include <cstdint>

namespace clb::queueing {

struct SupermarketConfig {
  std::uint64_t n = 1024;   ///< number of queues (servers)
  double lambda = 0.9;      ///< arrival rate per queue; must be < 1
  std::uint32_t d = 2;      ///< choices per arrival
  bool deterministic_service = false;  ///< service = 1 instead of Exp(1)
  double horizon = 100.0;   ///< simulated time units
  double warmup = 20.0;     ///< stats ignored before this time
  std::uint64_t seed = 1;
};

struct SupermarketResult {
  std::uint64_t max_queue = 0;     ///< max queue length after warmup
  double mean_queue = 0;           ///< time-averaged queue length
  double mean_sojourn = 0;         ///< mean customer time in system
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
  std::uint64_t messages = 0;      ///< d probes + 1 join per arrival
};

/// Runs the supermarket model on the DES kernel.
SupermarketResult run_supermarket(const SupermarketConfig& cfg);

}  // namespace clb::queueing
