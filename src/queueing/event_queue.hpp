// Minimal discrete-event simulation kernel: a time-ordered event heap with
// stable FIFO tie-breaking. Continuous-time comparators (the supermarket
// model) run on this instead of the synchronous engine.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/check.hpp"

namespace clb::queueing {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `t` (>= now).
  void schedule(double t, Action action) {
    CLB_CHECK(t >= now_, "cannot schedule into the past");
    heap_.push(Entry{t, seq_++, std::move(action)});
  }

  /// Schedules `action` `dt` time units from now.
  void schedule_in(double dt, Action action) {
    schedule(now_ + dt, std::move(action));
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Executes the earliest event; returns false when none remain.
  bool run_next() {
    if (heap_.empty()) return false;
    // priority_queue has no non-const top-extract; the const_cast move is
    // safe because the entry is popped immediately after.
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    now_ = e.time;
    ++executed_;
    e.action();
    return true;
  }

  /// Runs events until simulated time exceeds `t_end` (events at > t_end
  /// stay queued) or the queue drains.
  void run_until(double t_end) {
    while (!heap_.empty() && heap_.top().time <= t_end) run_next();
    if (now_ < t_end) now_ = t_end;
  }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    Action action;
    bool operator>(const Entry& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  double now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace clb::queueing
